// Dataset ingestion driver: turns the checked-in catalog
// (bench/catalog.json) into on-disk binary edge lists and keeps them
// honest.
//
//   ingest --describe                 list catalog recipes + cache state
//   ingest --generate                 get-or-generate every dataset
//   ingest --verify                   full re-checksum against the pins
//   ingest --pin                      generate + write actual edge counts
//                                     and checksums back into the catalog
//   ingest --bench                    read-throughput: plain vs prefetched
//
//   --catalog=FILE    catalog path (default bench/catalog.json)
//   --dir=DIR         dataset cache dir (default bench/.datasets)
//   --name=NAME       restrict to one dataset (repeatable)
//   --format=F        override the on-disk encoding (raw | compressed)
//                     for --generate/--verify/--bench; with --pin the
//                     catalog is rewritten to the chosen format
//   --chunk-edges=N   generation chunk buffer, in edges (default 1Mi)
//   --threads=N       with --bench: additionally run an out-of-core
//                     parallel 2PS-L over each dataset on N execution-
//                     engine workers and report time + replication
//   --spill=DIR       with --bench --threads: stream the partition
//                     assignments back to DIR as one binary edge list
//                     per partition (the full storage-to-storage
//                     out-of-core loop); reports bytes written
//   --trace=FILE      record spans while running (any mode) and export
//                     Chrome trace-event JSON to FILE on exit (load in
//                     ui.perfetto.dev or chrome://tracing)
//   --verbose         emit debug-severity log lines too
//
// CI runs --generate (cache-backed via actions/cache keyed on the
// catalog hash) and --verify before the bench_runner perf gate.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "benchkit/measure.h"
#include "core/parallel_two_phase.h"
#include "graph/binary_edge_list.h"
#include "ingest/catalog.h"
#include "ingest/prefetching_edge_stream.h"
#include "io/edge_file.h"
#include "io/mmap_edge_stream.h"
#include "obs/trace.h"
#include "partition/runner.h"
#include "util/logging.h"
#include "util/status.h"
#include "util/timer.h"

namespace {

using tpsl::Status;
using tpsl::ingest::Catalog;
using tpsl::ingest::CatalogEntry;
using tpsl::ingest::DatasetPath;
using tpsl::ingest::EnsureDataset;
using tpsl::ingest::EnsureResult;
using tpsl::ingest::LoadCatalog;
using tpsl::ingest::PrefetchingEdgeStream;
using tpsl::ingest::SaveCatalog;
using tpsl::ingest::VerifyDataset;

struct Options {
  enum class Mode { kNone, kDescribe, kGenerate, kVerify, kPin, kBench };
  Mode mode = Mode::kNone;
  std::string catalog_path = "bench/catalog.json";
  std::string dir = "bench/.datasets";
  std::vector<std::string> names;
  int format_override = -1;  // -1 = catalog's; 0 = raw; 1 = compressed
  size_t chunk_edges = 1 << 20;
  uint32_t threads = 0;  // --bench: partition on N workers (0 = scan only)
  std::string spill_dir;  // --bench: spill partitions to disk when set
  std::string trace_path;  // --trace (empty = tracing off)
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--describe | --generate | --verify | --pin |"
               " --bench) [--catalog=FILE] [--dir=DIR] [--name=NAME ...]"
               " [--format=raw|compressed] [--chunk-edges=N] [--threads=N]"
               " [--spill=DIR] [--trace=FILE] [--verbose]\n",
               argv0);
  return 2;
}

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') {
    return false;
  }
  *value = arg + len + 1;
  return true;
}

/// Re-targets entries at the --format override. Changing the encoding
/// invalidates the physical (file-byte) pin — the logical edge pins
/// stay, which is the whole point of keeping them format-independent.
void ApplyFormatOverride(const Options& options,
                         std::vector<CatalogEntry>* entries) {
  if (options.format_override < 0) {
    return;
  }
  const uint32_t format = static_cast<uint32_t>(options.format_override);
  for (CatalogEntry& entry : *entries) {
    if (entry.format_version != format) {
      entry.format_version = format;
      entry.expected_file_checksum.clear();
    }
  }
}

/// Catalog entries selected by --name filters (all when none given).
bool SelectEntries(const Catalog& catalog, const Options& options,
                   std::vector<CatalogEntry>* selected) {
  if (options.names.empty()) {
    *selected = catalog.entries;
  } else {
    for (const std::string& name : options.names) {
      const CatalogEntry* entry = catalog.Find(name);
      if (entry == nullptr) {
        TPSL_LOG(Error) << "unknown dataset '" << name
                        << "' (see --describe)";
        return false;
      }
      selected->push_back(*entry);
    }
  }
  ApplyFormatOverride(options, selected);
  return !selected->empty();
}

/// Opens a dataset for scanning with read-ahead appropriate to its
/// sniffed format: decode-ahead mmap for compressed block files, the
/// fread prefetcher for raw ones.
tpsl::StatusOr<std::unique_ptr<tpsl::EdgeStream>> OpenOverlapped(
    const std::string& path) {
  TPSL_ASSIGN_OR_RETURN(const tpsl::io::EdgeFileFormat format,
                        tpsl::io::SniffEdgeFileFormat(path));
  if (format == tpsl::io::EdgeFileFormat::kCompressedBlocks) {
    TPSL_ASSIGN_OR_RETURN(std::unique_ptr<tpsl::io::MmapEdgeStream> stream,
                          tpsl::io::MmapEdgeStream::Open(path));
    return std::unique_ptr<tpsl::EdgeStream>(std::move(stream));
  }
  TPSL_ASSIGN_OR_RETURN(std::unique_ptr<tpsl::BinaryFileEdgeStream> file,
                        tpsl::BinaryFileEdgeStream::Open(path));
  return std::unique_ptr<tpsl::EdgeStream>(
      std::make_unique<PrefetchingEdgeStream>(std::move(file)));
}

int Describe(const Catalog& catalog, const Options& options) {
  std::vector<CatalogEntry> entries;
  if (!SelectEntries(catalog, options, &entries)) {
    return 2;
  }
  std::printf("%-14s %-18s %5s %4s %8s %14s %-8s %-24s %s\n", "name", "kind",
              "scale", "ef", "seed", "edges", "format", "checksum", "cache");
  for (const CatalogEntry& entry : entries) {
    const std::string path = DatasetPath(options.dir, entry.recipe.name);
    std::FILE* probe = std::fopen(path.c_str(), "rb");
    const char* cache = "absent";
    if (probe != nullptr) {
      std::fclose(probe);
      cache = "present";
    }
    std::printf("%-14s %-18s %5u %4u %8" PRIu64 " %14" PRIu64
                " %-8s %-24s %s\n",
                entry.recipe.name.c_str(), entry.recipe.kind.c_str(),
                entry.recipe.scale, entry.recipe.edge_factor,
                entry.recipe.seed, entry.expected_edges,
                tpsl::io::EdgeFileFormatName(
                    entry.format_version == 1
                        ? tpsl::io::EdgeFileFormat::kCompressedBlocks
                        : tpsl::io::EdgeFileFormat::kRaw),
                entry.expected_checksum.empty()
                    ? "(unpinned)"
                    : entry.expected_checksum.c_str(),
                cache);
  }
  std::printf(
      "\nformats: raw = headerless u32 endpoint pairs; blocks1 = the\n"
      "compressed edge-block format (delta/bit-packed columns in checksummed\n"
      "blocks — see README \"On-disk format\"). checksum is the logical\n"
      "FNV-1a over decoded edge bytes, identical across formats.\n");
  return 0;
}

int Generate(const Catalog& catalog, const Options& options) {
  std::vector<CatalogEntry> entries;
  if (!SelectEntries(catalog, options, &entries)) {
    return 2;
  }
  for (const CatalogEntry& entry : entries) {
    auto result = EnsureDataset(entry, options.dir, options.chunk_edges);
    if (!result.ok()) {
      TPSL_LOG(Error) << result.status().ToString();
      return 1;
    }
    std::string timing;
    if (result->generated) {
      char buf[48];
      std::snprintf(buf, sizeof(buf), " (%.2fs)", result->generate_seconds);
      timing = buf;
    }
    std::printf("%-14s %s  %" PRIu64 " edges, %" PRIu64 " bytes, %s%s\n",
                entry.recipe.name.c_str(),
                result->generated ? "generated" : "cached   ",
                result->num_edges, result->file_bytes,
                result->checksum.c_str(), timing.c_str());
  }
  return 0;
}

int Verify(const Catalog& catalog, const Options& options) {
  std::vector<CatalogEntry> entries;
  if (!SelectEntries(catalog, options, &entries)) {
    return 2;
  }
  bool ok = true;
  for (const CatalogEntry& entry : entries) {
    const Status status = VerifyDataset(entry, options.dir);
    std::printf("%-14s %s\n", entry.recipe.name.c_str(),
                status.ok() ? "ok" : status.ToString().c_str());
    ok = ok && status.ok();
  }
  return ok ? 0 : 1;
}

int Pin(Catalog catalog, const Options& options) {
  // Pinning ignores --name filters: a half-pinned catalog is worse
  // than an unpinned one. --format does apply — it rewrites the whole
  // catalog to the chosen encoding.
  ApplyFormatOverride(options, &catalog.entries);
  for (CatalogEntry& entry : catalog.entries) {
    // Pinning exists to capture what the *current* generator produces,
    // so never trust the cache: a cached file from before a generator
    // change matches its manifest and would silently re-pin the old
    // bytes. Drop it and regenerate.
    std::remove(DatasetPath(options.dir, entry.recipe.name).c_str());
    std::remove(
        tpsl::ingest::ManifestPath(options.dir, entry.recipe.name).c_str());
    // Generate against a pin-free copy so stale pins don't block the
    // regeneration they are being updated from.
    CatalogEntry unpinned = entry;
    unpinned.expected_edges = 0;
    unpinned.expected_checksum.clear();
    unpinned.expected_file_checksum.clear();
    auto result = EnsureDataset(unpinned, options.dir, options.chunk_edges);
    if (!result.ok()) {
      TPSL_LOG(Error) << result.status().ToString();
      return 1;
    }
    entry.expected_edges = result->num_edges;
    entry.expected_checksum = result->checksum;
    entry.expected_file_checksum = result->file_checksum;
    std::printf("pinned %-14s %" PRIu64 " edges %s file %s (%" PRIu64
                " bytes)\n",
                entry.recipe.name.c_str(), result->num_edges,
                result->checksum.c_str(), result->file_checksum.c_str(),
                result->file_bytes);
  }
  const Status status = SaveCatalog(catalog, options.catalog_path);
  if (!status.ok()) {
    TPSL_LOG(Error) << status.ToString();
    return 1;
  }
  std::printf("wrote %s\n", options.catalog_path.c_str());
  return 0;
}

int Bench(const Catalog& catalog, const Options& options) {
  std::vector<CatalogEntry> entries;
  if (!SelectEntries(catalog, options, &entries)) {
    return 2;
  }
  std::printf("%-14s %14s %12s %12s %10s %10s\n", "name", "edges",
              "plain MB/s", "prefetch MB/s", "plain s", "prefetch s");
  for (const CatalogEntry& entry : entries) {
    auto ensured = EnsureDataset(entry, options.dir, options.chunk_edges);
    if (!ensured.ok()) {
      TPSL_LOG(Error) << ensured.status().ToString();
      return 1;
    }
    auto time_scan = [&](tpsl::EdgeStream& stream,
                         double* out_seconds) -> Status {
      uint64_t count = 0;
      tpsl::WallTimer timer;
      TPSL_RETURN_IF_ERROR(
          tpsl::ForEachEdge(stream, [&count](const tpsl::Edge&) { ++count; }));
      *out_seconds = timer.ElapsedSeconds();
      if (count != ensured->num_edges) {
        return Status::Internal("scan delivered " + std::to_string(count) +
                                " of " + std::to_string(ensured->num_edges) +
                                " edges");
      }
      return Status::OK();
    };

    double plain_seconds = 0.0;
    double prefetch_seconds = 0.0;
    {
      // Sniffing open, no read-ahead: raw fread or synchronous block
      // decode.
      auto plain = tpsl::io::OpenEdgeFile(ensured->path);
      if (!plain.ok()) {
        TPSL_LOG(Error) << plain.status().ToString();
        return 1;
      }
      const Status status = time_scan(**plain, &plain_seconds);
      if (!status.ok()) {
        TPSL_LOG(Error) << status.ToString();
        return 1;
      }
    }
    {
      auto overlapped = OpenOverlapped(ensured->path);
      if (!overlapped.ok()) {
        TPSL_LOG(Error) << overlapped.status().ToString();
        return 1;
      }
      const Status status = time_scan(**overlapped, &prefetch_seconds);
      if (!status.ok()) {
        TPSL_LOG(Error) << status.ToString();
        return 1;
      }
    }
    const double mb = static_cast<double>(ensured->file_bytes) / 1e6;
    std::printf("%-14s %14" PRIu64 " %12.1f %12.1f %10.3f %10.3f\n",
                entry.recipe.name.c_str(), ensured->num_edges,
                plain_seconds > 0 ? mb / plain_seconds : 0.0,
                prefetch_seconds > 0 ? mb / prefetch_seconds : 0.0,
                plain_seconds, prefetch_seconds);

    if (options.threads != 0) {
      // Out-of-core parallel 2PS-L: the format-appropriate read-ahead
      // reader feeding the execution engine's workers — the full
      // pipeline the 2psl_par disk scenarios gate, on demand for any
      // dataset.
      auto overlapped = OpenOverlapped(ensured->path);
      if (!overlapped.ok()) {
        TPSL_LOG(Error) << overlapped.status().ToString();
        return 1;
      }
      tpsl::ParallelTwoPhasePartitioner partitioner;
      tpsl::PartitionConfig config;
      config.exec.threads = options.threads;
      tpsl::RunOptions run_options;
      if (!options.spill_dir.empty()) {
        run_options.spill_dir = options.spill_dir;
        run_options.spill_stem = entry.recipe.name;
      }
      auto run = tpsl::RunPartitioner(partitioner, **overlapped, config,
                                      run_options);
      if (!run.ok()) {
        TPSL_LOG(Error) << run.status().ToString();
        return 1;
      }
      std::printf("%-14s 2PS-L(par) k=%u threads=%u: %.3fs, rf %.3f\n",
                  entry.recipe.name.c_str(), config.num_partitions,
                  options.threads, run->stats.TotalSeconds(),
                  run->quality.replication_factor);
      if (run->spill.spilled()) {
        std::printf("%-14s spilled %.1f MB to %s.part*.bin\n",
                    entry.recipe.name.c_str(),
                    static_cast<double>(run->spill.bytes_written) / 1e6,
                    run->spill.prefix.c_str());
      }
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    std::string value;
    if (std::strcmp(arg, "--describe") == 0) {
      options.mode = Options::Mode::kDescribe;
    } else if (std::strcmp(arg, "--generate") == 0) {
      options.mode = Options::Mode::kGenerate;
    } else if (std::strcmp(arg, "--verify") == 0) {
      options.mode = Options::Mode::kVerify;
    } else if (std::strcmp(arg, "--pin") == 0) {
      options.mode = Options::Mode::kPin;
    } else if (std::strcmp(arg, "--bench") == 0) {
      options.mode = Options::Mode::kBench;
    } else if (ParseFlag(arg, "--catalog", &value)) {
      options.catalog_path = value;
    } else if (ParseFlag(arg, "--dir", &value)) {
      options.dir = value;
    } else if (ParseFlag(arg, "--name", &value)) {
      options.names.push_back(value);
    } else if (ParseFlag(arg, "--format", &value)) {
      if (value == "raw") {
        options.format_override = 0;
      } else if (value == "compressed" || value == "blocks1") {
        options.format_override = 1;
      } else {
        TPSL_LOG(Error) << "bad --format '" << value
                        << "' (want raw | compressed)";
        return Usage(argv[0]);
      }
    } else if (ParseFlag(arg, "--threads", &value)) {
      if (!tpsl::benchkit::ParseThreadCount(value.c_str(),
                                            &options.threads)) {
        TPSL_LOG(Error) << "bad --threads '" << value << "' (want 1..1024)";
        return Usage(argv[0]);
      }
    } else if (ParseFlag(arg, "--spill", &value)) {
      options.spill_dir = value;
    } else if (ParseFlag(arg, "--trace", &value)) {
      options.trace_path = value;
    } else if (std::strcmp(arg, "--trace") == 0 && i + 1 < argc) {
      options.trace_path = argv[++i];
    } else if (std::strcmp(arg, "--verbose") == 0) {
      tpsl::SetMinLogSeverity(tpsl::LogSeverity::kDebug);
    } else if (ParseFlag(arg, "--chunk-edges", &value)) {
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || parsed == 0) {
        TPSL_LOG(Error) << "bad --chunk-edges '" << value << "'";
        return Usage(argv[0]);
      }
      options.chunk_edges = static_cast<size_t>(parsed);
    } else {
      TPSL_LOG(Error) << "unknown argument '" << arg << "'";
      return Usage(argv[0]);
    }
  }
  if (options.mode == Options::Mode::kNone) {
    return Usage(argv[0]);
  }
  auto catalog = LoadCatalog(options.catalog_path);
  if (!catalog.ok()) {
    TPSL_LOG(Error) << catalog.status().ToString();
    return 1;
  }
  if (!options.trace_path.empty()) {
    tpsl::obs::SetTracingEnabled(true);
  }
  int rc = 0;
  switch (options.mode) {
    case Options::Mode::kDescribe:
      rc = Describe(*catalog, options);
      break;
    case Options::Mode::kGenerate:
      rc = Generate(*catalog, options);
      break;
    case Options::Mode::kVerify:
      rc = Verify(*catalog, options);
      break;
    case Options::Mode::kPin:
      rc = Pin(std::move(*catalog), options);
      break;
    case Options::Mode::kBench:
      rc = Bench(*catalog, options);
      break;
    case Options::Mode::kNone:
      return Usage(argv[0]);
  }
  if (!options.trace_path.empty()) {
    tpsl::obs::SetTracingEnabled(false);
    const Status status = tpsl::obs::WriteChromeTrace(options.trace_path);
    if (!status.ok()) {
      TPSL_LOG(Error) << "trace export failed: " << status.ToString();
      return rc != 0 ? rc : 1;
    }
    const tpsl::obs::TraceStats stats = tpsl::obs::GetTraceStats();
    TPSL_LOG(Info) << "wrote " << options.trace_path << " ("
                   << stats.emitted << " events from " << stats.threads
                   << " threads, " << stats.dropped
                   << " dropped by ring wrap) — open in ui.perfetto.dev";
  }
  return rc;
}

// benchkit driver: turns the pinned scenario registry into emitted
// JSON perf records and a CI-gradeable baseline diff.
//
//   bench_runner --list                      enumerate pinned scenarios
//                                            (kind/threads + gated metrics)
//   bench_runner --emit [--out=DIR]          run + write BENCH_<name>.json
//   bench_runner --check=DIR [--out=DIR]     run, diff against baselines in
//                                            DIR, exit 1 on regression
//   bench_runner --smoke                     tiny run of every scenario;
//                                            verifies metrics, no baselines
//   bench_runner --run=NAME                  run one scenario once and dump
//                                            every metric (incl. obs/) to
//                                            stdout; pairs with --trace
//
//   --scenario=NAME   restrict --emit/--check/--smoke to one scenario
//                     (repeatable)
//   --trace=FILE      record spans while running (any mode) and export
//                     them as Chrome trace-event JSON to FILE on exit —
//                     load in Perfetto (ui.perfetto.dev) or
//                     chrome://tracing
//   --verbose         emit debug-severity log lines too
//   --catalog=FILE    ingest catalog for disk-backed scenarios
//                     (default bench/catalog.json)
//   --datasets=DIR    dataset cache dir for disk-backed scenarios,
//                     generated on demand (default bench/.datasets)
//   --spill-dir=DIR   where spill-to-disk scenarios write their
//                     per-partition files (default bench/.spill;
//                     deleted after measurement)
//   --threads=N       override every scenario's pinned worker count
//                     (records carry the override, so --check flags it
//                     as config drift — exploration only)
//   --repeat=N        run each measured scenario N times and report
//                     the fastest repeat (default: the runner's pinned
//                     repeat count; micro-kernel CI gates raise this to
//                     squeeze out scheduler noise)
//   --time-budget=S   fail if any single scenario takes more than S
//                     wall seconds (CI's runtime guard for the larger
//                     scenario tier)
//
// --smoke skips larger-tier scenarios (scenario.large) unless they are
// named explicitly with --scenario; the CI perf gate runs them.
//
// To (re)pin baselines after an intentional perf or quality change:
//   bench_runner --emit --out=bench/baselines && git diff bench/baselines
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "benchkit/comparator.h"
#include "benchkit/measure.h"
#include "benchkit/micro_kernels.h"
#include "benchkit/obs_kernels.h"
#include "benchkit/record.h"
#include "benchkit/runner.h"
#include "benchkit/scenario.h"
#include "ingest/scenario_runner.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/status.h"
#include "util/timer.h"

namespace {

using tpsl::benchkit::BenchRecord;
using tpsl::benchkit::ComparisonReport;
using tpsl::benchkit::PinnedScenarios;
using tpsl::benchkit::RecordFileName;
using tpsl::benchkit::RunScenarioOptions;
using tpsl::benchkit::Scenario;
using tpsl::benchkit::ScenarioKind;
using tpsl::benchkit::ScenarioKindLabel;
using tpsl::ingest::RunScenarioWithIngest;
using tpsl::ingest::ScenarioRunContext;

struct Options {
  enum class Mode { kNone, kList, kEmit, kCheck, kSmoke, kRun } mode =
      Mode::kNone;
  std::string baseline_dir;              // --check
  std::string out_dir;                   // --emit/--check output
  std::string run_scenario;              // --run
  std::vector<std::string> scenarios;    // --scenario filters
  std::string catalog_path = "bench/catalog.json";
  std::string dataset_dir = "bench/.datasets";
  std::string spill_dir = "bench/.spill";
  std::string trace_path;                // --trace (empty = tracing off)
  uint32_t threads = 0;                  // --threads override (0 = pinned)
  uint32_t repeats = 0;                  // --repeat override (0 = default)
  double time_budget_seconds = 0.0;      // --time-budget (0 = no guard)
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--list | --emit | --check=BASELINE_DIR | --smoke |"
               " --run=NAME)"
               " [--out=DIR] [--scenario=NAME ...] [--catalog=FILE]"
               " [--datasets=DIR] [--spill-dir=DIR] [--threads=N]"
               " [--repeat=N] [--time-budget=SECONDS] [--trace=FILE]"
               " [--verbose]\n",
               argv0);
  return 2;
}

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') {
    return false;
  }
  *value = arg + len + 1;
  return true;
}

/// Shared unknown-scenario diagnostic for --scenario and --run: the
/// error plus the registry's closest names, so a typo'd CI config tells
/// the reader what it was probably meant to say.
void ReportUnknownScenario(const std::string& name) {
  std::string hint;
  for (const std::string& suggestion :
       tpsl::benchkit::SuggestScenarioNames(name)) {
    hint += hint.empty() ? " — did you mean " : ", ";
    hint += "'" + suggestion + "'";
  }
  if (!hint.empty()) {
    hint += "?";
  }
  TPSL_LOG(Error) << "unknown scenario '" << name << "'" << hint
                  << " (see --list)";
}

/// The scenarios selected by --scenario filters (all when none given).
/// Returns false on an unknown name.
bool SelectScenarios(const Options& options, std::vector<Scenario>* selected) {
  if (options.scenarios.empty()) {
    *selected = PinnedScenarios();
    return true;
  }
  for (const std::string& name : options.scenarios) {
    const Scenario* scenario = tpsl::benchkit::FindScenario(name);
    if (scenario == nullptr) {
      ReportUnknownScenario(name);
      return false;
    }
    selected->push_back(*scenario);
  }
  return true;
}

int ListScenarios() {
  std::printf("%-26s %-7s %-12s %-8s %5s %6s %6s %4s %5s  %s\n", "name",
              "kind", "partitioner", "dataset", "k", "shift", "seed", "thr",
              "tier", "description");
  for (const Scenario& s : PinnedScenarios()) {
    std::printf("%-26s %-7s %-12s %-8s %5u %6d %6llu %4u %5s  %s\n",
                s.name.c_str(), ScenarioKindLabel(s.kind),
                s.partitioner.c_str(), s.dataset.c_str(), s.k, s.scale_shift,
                static_cast<unsigned long long>(s.seed), s.threads,
                s.large ? (s.spill ? "lg+sp" : "large")
                        : (s.spill ? "spill" : "std"),
                s.description.c_str());
    // What --check enforces for this scenario, straight from the
    // tolerance policy — the registry self-documents its gate.
    std::string gated;
    for (const std::string& metric :
         tpsl::benchkit::GatedMetricsForScenario(s)) {
      if (!gated.empty()) {
        gated += ", ";
      }
      gated += metric;
    }
    std::printf("%-26s   gated: %s\n", "",
                gated.empty() ? "(none)" : gated.c_str());
  }
  return 0;
}

/// Runs the selection, printing one progress line per scenario.
/// Returns false only when a scenario fails to run. The time budget
/// guards each scenario's full wall time (all repeats + harness work,
/// not just the reported fastest repeat) — the larger scenario tier
/// only stays in CI while it stays affordable — but a violation is
/// reported through `within_budget` instead of aborting, so the
/// records still get written and compared (the emitted JSON is what a
/// CI debugging session needs most).
bool RunAll(const std::vector<Scenario>& scenarios, const Options& options,
            const RunScenarioOptions& run_options,
            std::vector<BenchRecord>* records, bool* within_budget) {
  ScenarioRunContext context;
  context.catalog_path = options.catalog_path;
  context.dataset_dir = options.dataset_dir;
  context.spill_dir = options.spill_dir;
  context.options = run_options;
  context.options.threads_override = options.threads;
  if (options.repeats > 0) {
    context.options.repeats = static_cast<int>(options.repeats);
  }
  for (const Scenario& scenario : scenarios) {
    TPSL_LOG(Debug) << "running " << scenario.name;
    tpsl::WallTimer timer;
    auto record = RunScenarioWithIngest(scenario, context);
    const double wall = timer.ElapsedSeconds();
    if (!record.ok()) {
      TPSL_LOG(Error) << scenario.name << " failed: "
                      << record.status().ToString();
      return false;
    }
    const double* seconds = record->FindMetric("seconds");
    TPSL_LOG(Info) << "ran " << scenario.name << " in "
                   << (seconds != nullptr ? *seconds : 0.0) << "s ("
                   << wall << "s wall)";
    if (options.time_budget_seconds > 0.0 &&
        wall > options.time_budget_seconds) {
      TPSL_LOG(Error) << "time budget exceeded: " << scenario.name
                      << " took " << wall << "s wall (--time-budget="
                      << options.time_budget_seconds
                      << ") — shrink the scenario or raise the budget";
      *within_budget = false;
    }
    records->push_back(std::move(record).value());
  }
  return true;
}

bool WriteRecords(const std::vector<BenchRecord>& records,
                  const std::string& out_dir) {
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    TPSL_LOG(Error) << "cannot create " << out_dir << ": " << ec.message();
    return false;
  }
  for (const BenchRecord& record : records) {
    const std::string path =
        (std::filesystem::path(out_dir) / RecordFileName(record.scenario))
            .string();
    const tpsl::Status status = WriteRecordFile(record, path);
    if (!status.ok()) {
      TPSL_LOG(Error) << status.ToString();
      return false;
    }
    std::printf("wrote %s\n", path.c_str());
  }
  return true;
}

int Emit(const Options& options) {
  std::vector<Scenario> scenarios;
  if (!SelectScenarios(options, &scenarios)) {
    return 2;
  }
  std::vector<BenchRecord> records;
  bool within_budget = true;
  if (!RunAll(scenarios, options, {}, &records, &within_budget)) {
    return 1;
  }
  if (!WriteRecords(records,
                    options.out_dir.empty() ? "." : options.out_dir)) {
    return 1;
  }
  return within_budget ? 0 : 1;
}

int Check(const Options& options) {
  std::vector<Scenario> scenarios;
  if (!SelectScenarios(options, &scenarios)) {
    return 2;
  }
  auto baselines = tpsl::benchkit::ReadRecordDir(options.baseline_dir);
  if (!baselines.ok()) {
    TPSL_LOG(Error) << baselines.status().ToString();
    return 1;
  }
  std::vector<BenchRecord> records;
  bool within_budget = true;
  if (!RunAll(scenarios, options, {}, &records, &within_budget)) {
    return 1;
  }
  // Write and diff what we measured even when the budget tripped: the
  // uploaded records are the evidence of where the time went.
  if (!options.out_dir.empty() && !WriteRecords(records, options.out_dir)) {
    return 1;
  }
  const ComparisonReport report =
      tpsl::benchkit::CompareRecords(*baselines, records);
  std::printf("%s", report.ToString().c_str());
  if (!within_budget) {
    std::printf("FAIL (time budget exceeded, see stderr)\n");
  }
  return report.passed && within_budget ? 0 : 1;
}

int Smoke(const Options& options) {
  std::vector<Scenario> scenarios;
  if (!SelectScenarios(options, &scenarios)) {
    return 2;
  }
  // Larger-tier scenarios would make tier-1 ctest generate and stream
  // multi-hundred-MB datasets; the CI perf gate covers them. An
  // explicit --scenario selection still runs them.
  if (options.scenarios.empty()) {
    size_t kept = 0, skipped = 0;
    for (const Scenario& scenario : scenarios) {
      if (scenario.large) {
        ++skipped;
      } else {
        scenarios[kept++] = scenario;
      }
    }
    scenarios.resize(kept);
    if (skipped > 0) {
      TPSL_LOG(Info) << "smoke: skipping " << skipped
                     << " large-tier scenario(s); run them via --scenario or "
                        "the perf gate";
    }
  }
  // Shrink far below the pinned scale: the smoke run exercises the
  // subsystem end to end in tier-1 ctest, it does not measure.
  RunScenarioOptions run_options;
  run_options.extra_scale_shift = 3;
  run_options.repeats = 1;  // smoke exercises the path, it doesn't time
  std::vector<BenchRecord> records;
  bool within_budget = true;
  if (!RunAll(scenarios, options, run_options, &records, &within_budget)) {
    return 1;
  }
  // Per-kind metric contract (ingest scans have no partition quality;
  // micro-kernels have no dataset or quality at all).
  const std::vector<const char*> partition_required = {
      "seconds", "replication_factor", "measured_alpha",
      "state_bytes", "num_edges", "peak_rss_bytes"};
  const std::vector<const char*> scan_required = {
      "seconds", "num_edges", "file_bytes", "edges_per_second",
      "peak_rss_bytes"};
  const std::vector<const char*> serve_required = {
      "seconds", "num_edges", "live_edges", "replication_factor",
      "measured_alpha", "state_bytes", "lookup_qps", "mutation_qps",
      "lookup_p50_seconds", "lookup_p99_seconds", "peak_rss_bytes"};
  std::vector<std::string> micro_required = {"seconds", "num_edges",
                                             "checksum_low32"};
  for (const std::string& kernel : tpsl::benchkit::MicroKernelNames()) {
    micro_required.push_back("phase_seconds/" + kernel);
    micro_required.push_back("edges_per_sec/" + kernel);
  }
  std::vector<std::string> obs_required = {"seconds", "num_edges",
                                           "checksum_low32"};
  for (const std::string& kernel : tpsl::benchkit::ObsKernelNames()) {
    obs_required.push_back("phase_seconds/" + kernel);
    obs_required.push_back("edges_per_sec/" + kernel);
  }
  bool ok = true;
  for (size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& record = records[i];
    if (scenarios[i].kind == ScenarioKind::kMicroKernel ||
        scenarios[i].kind == ScenarioKind::kMicroObs) {
      const std::vector<std::string>& required =
          scenarios[i].kind == ScenarioKind::kMicroKernel ? micro_required
                                                          : obs_required;
      for (const std::string& name : required) {
        const double* value = record.FindMetric(name);
        if (value == nullptr || !std::isfinite(*value)) {
          TPSL_LOG(Error) << "smoke: " << record.scenario << " metric '"
                          << name << "' missing or non-finite";
          ok = false;
        }
      }
      continue;
    }
    const std::vector<const char*>& kind_required =
        scenarios[i].kind == ScenarioKind::kIngestScan ? scan_required
        : scenarios[i].kind == ScenarioKind::kServe    ? serve_required
                                                       : partition_required;
    for (const char* name : kind_required) {
      const double* value = record.FindMetric(name);
      if (value == nullptr || !std::isfinite(*value)) {
        TPSL_LOG(Error) << "smoke: " << record.scenario << " metric '"
                        << name << "' missing or non-finite";
        ok = false;
      }
    }
  }
  std::printf("smoke: %zu scenarios ran, metrics %s\n", records.size(),
              ok ? "ok" : "BROKEN");
  return ok && within_budget ? 0 : 1;
}

/// --run=NAME: one full-scale pass of a single scenario with every
/// metric (including the informational obs/ snapshot) dumped to
/// stdout. The sidecar mode for --trace: one scenario, one trace.
int RunOne(const Options& options) {
  const Scenario* scenario =
      tpsl::benchkit::FindScenario(options.run_scenario);
  if (scenario == nullptr) {
    ReportUnknownScenario(options.run_scenario);
    return 2;
  }
  ScenarioRunContext context;
  context.catalog_path = options.catalog_path;
  context.dataset_dir = options.dataset_dir;
  context.spill_dir = options.spill_dir;
  // One observable pass by default (one scenario, one trace); --repeat
  // turns the dump into a fastest-of-N measurement.
  context.options.repeats =
      options.repeats > 0 ? static_cast<int>(options.repeats) : 1;
  context.options.threads_override = options.threads;
  tpsl::WallTimer timer;
  auto record = RunScenarioWithIngest(*scenario, context);
  if (!record.ok()) {
    TPSL_LOG(Error) << scenario->name << " failed: "
                    << record.status().ToString();
    return 1;
  }
  std::printf("scenario %s  kind=%s partitioner=%s dataset=%s k=%u "
              "shift=%d seed=%llu threads=%u  (%.3fs wall)\n",
              record->scenario.c_str(), ScenarioKindLabel(scenario->kind),
              record->partitioner.c_str(), record->dataset.c_str(),
              record->k, record->scale_shift,
              static_cast<unsigned long long>(record->seed),
              record->threads, timer.ElapsedSeconds());
  for (const auto& [name, value] : record->metrics) {
    std::printf("  %-44s %.17g\n", name.c_str(), value);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    std::string value;
    if (std::strcmp(arg, "--list") == 0) {
      options.mode = Options::Mode::kList;
    } else if (std::strcmp(arg, "--emit") == 0) {
      options.mode = Options::Mode::kEmit;
    } else if (std::strcmp(arg, "--smoke") == 0) {
      options.mode = Options::Mode::kSmoke;
    } else if (ParseFlag(arg, "--check", &value)) {
      options.mode = Options::Mode::kCheck;
      options.baseline_dir = value;
    } else if (std::strcmp(arg, "--check") == 0 && i + 1 < argc) {
      options.mode = Options::Mode::kCheck;
      options.baseline_dir = argv[++i];
    } else if (ParseFlag(arg, "--run", &value)) {
      options.mode = Options::Mode::kRun;
      options.run_scenario = value;
    } else if (std::strcmp(arg, "--run") == 0 && i + 1 < argc) {
      options.mode = Options::Mode::kRun;
      options.run_scenario = argv[++i];
    } else if (ParseFlag(arg, "--trace", &value)) {
      options.trace_path = value;
    } else if (std::strcmp(arg, "--trace") == 0 && i + 1 < argc) {
      options.trace_path = argv[++i];
    } else if (std::strcmp(arg, "--verbose") == 0) {
      tpsl::SetMinLogSeverity(tpsl::LogSeverity::kDebug);
    } else if (ParseFlag(arg, "--out", &value)) {
      options.out_dir = value;
    } else if (std::strcmp(arg, "--out") == 0 && i + 1 < argc) {
      options.out_dir = argv[++i];
    } else if (ParseFlag(arg, "--scenario", &value)) {
      options.scenarios.push_back(value);
    } else if (std::strcmp(arg, "--scenario") == 0 && i + 1 < argc) {
      options.scenarios.push_back(argv[++i]);
    } else if (ParseFlag(arg, "--catalog", &value)) {
      options.catalog_path = value;
    } else if (ParseFlag(arg, "--datasets", &value)) {
      options.dataset_dir = value;
    } else if (ParseFlag(arg, "--spill-dir", &value)) {
      options.spill_dir = value;
    } else if (ParseFlag(arg, "--threads", &value)) {
      if (!tpsl::benchkit::ParseThreadCount(value.c_str(),
                                            &options.threads)) {
        TPSL_LOG(Error) << "bad --threads '" << value << "' (want 1..1024)";
        return Usage(argv[0]);
      }
    } else if (ParseFlag(arg, "--repeat", &value)) {
      char* end = nullptr;
      const unsigned long parsed = std::strtoul(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || parsed == 0 ||
          parsed > 1000) {
        TPSL_LOG(Error) << "bad --repeat '" << value << "' (want 1..1000)";
        return Usage(argv[0]);
      }
      options.repeats = static_cast<uint32_t>(parsed);
    } else if (ParseFlag(arg, "--time-budget", &value)) {
      char* end = nullptr;
      const double parsed = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0' || !(parsed > 0.0)) {
        TPSL_LOG(Error) << "bad --time-budget '" << value
                        << "' (want seconds > 0)";
        return Usage(argv[0]);
      }
      options.time_budget_seconds = parsed;
    } else {
      TPSL_LOG(Error) << "unknown argument '" << arg << "'";
      return Usage(argv[0]);
    }
  }
  if (!options.trace_path.empty()) {
    tpsl::obs::SetTracingEnabled(true);
  }
  int rc = 0;
  switch (options.mode) {
    case Options::Mode::kList:
      rc = ListScenarios();
      break;
    case Options::Mode::kEmit:
      rc = Emit(options);
      break;
    case Options::Mode::kCheck:
      rc = Check(options);
      break;
    case Options::Mode::kSmoke:
      rc = Smoke(options);
      break;
    case Options::Mode::kRun:
      rc = RunOne(options);
      break;
    case Options::Mode::kNone:
      return Usage(argv[0]);
  }
  if (!options.trace_path.empty()) {
    tpsl::obs::SetTracingEnabled(false);
    const tpsl::Status status =
        tpsl::obs::WriteChromeTrace(options.trace_path);
    if (!status.ok()) {
      TPSL_LOG(Error) << "trace export failed: " << status.ToString();
      return rc != 0 ? rc : 1;
    }
    const tpsl::obs::TraceStats stats = tpsl::obs::GetTraceStats();
    TPSL_LOG(Info) << "wrote " << options.trace_path << " ("
                   << stats.emitted << " events from " << stats.threads
                   << " threads, " << stats.dropped
                   << " dropped by ring wrap) — open in ui.perfetto.dev";
  }
  return rc;
}

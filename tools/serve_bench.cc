// Standalone driver for the online PartitionService: bootstrap a
// dataset, then hammer it with reader lookups while a writer thread
// plays a live add/remove stream (epoch publishes + re-bootstraps).
//
//   serve_bench                        default traffic run (OK, 4 readers)
//   serve_bench --smoke                tiny fixed-shape run that verifies
//                                      the result invariants (incl. at
//                                      least one live re-bootstrap) and
//                                      exits non-zero on violation; the
//                                      tier-1/tsan entry point
//
//   --dataset=CODE        Table III dataset code (default OK)
//   --shift=N             scale shift applied to the dataset (default 2)
//   --k=N                 partition count (default 32)
//   --seed=N              placement + traffic seed (default 42)
//   --readers=N           reader threads (default 4; 0 = hardware)
//   --lookups=N           lookups per reader (default 1<<18)
//   --batch=N             mutations per epoch publish (default 256)
//   --threshold=F         staleness ratio that forks a re-bootstrap
//                         (default 0.1; "inf" disables)
//   --adopt-lag=N         publishes between fork and adoption (default 4;
//                         0 = adopt whenever the job finishes)
//   --mutation-fraction=F fraction of edges held back as the live
//                         stream (default 0.2)
//   --removal-interval=N  every Nth mutation is a removal (default 8;
//                         0 disables removals)
//   --trace=FILE          export a Chrome trace of the run to FILE
//   --verbose             emit debug-severity log lines too
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "graph/datasets.h"
#include "graph/types.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/partition_service.h"
#include "serve/traffic.h"
#include "util/logging.h"
#include "util/status.h"
#include "util/timer.h"

namespace {

using tpsl::serve::TrafficOptions;
using tpsl::serve::TrafficResult;

struct Options {
  bool smoke = false;
  std::string dataset = "OK";
  int shift = 2;
  uint32_t k = 32;
  uint64_t seed = 42;
  uint32_t readers = 4;
  uint64_t lookups = uint64_t{1} << 18;
  uint32_t batch = 256;
  double threshold = 0.1;
  uint32_t adopt_lag = 4;
  double mutation_fraction = 0.2;
  uint32_t removal_interval = 8;
  std::string trace_path;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--smoke] [--dataset=CODE] [--shift=N] [--k=N]"
               " [--seed=N] [--readers=N] [--lookups=N] [--batch=N]"
               " [--threshold=F|inf] [--adopt-lag=N] [--mutation-fraction=F]"
               " [--removal-interval=N] [--trace=FILE] [--verbose]\n",
               argv0);
  return 2;
}

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') {
    return false;
  }
  *value = arg + len + 1;
  return true;
}

bool ParseU64(const std::string& value, uint64_t* out) {
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    return false;
  }
  *out = parsed;
  return true;
}

bool ParseU32(const std::string& value, uint32_t* out) {
  uint64_t wide = 0;
  if (!ParseU64(value, &wide) || wide > std::numeric_limits<uint32_t>::max()) {
    return false;
  }
  *out = static_cast<uint32_t>(wide);
  return true;
}

bool ParseDouble(const std::string& value, double* out) {
  if (value == "inf") {
    *out = tpsl::serve::PartitionService::kNeverRebootstrap;
    return true;
  }
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0' || !(parsed >= 0.0)) {
    return false;
  }
  *out = parsed;
  return true;
}

void PrintResult(const TrafficResult& result) {
  std::printf("traffic result\n");
  std::printf("  base_edges          %llu\n",
              static_cast<unsigned long long>(result.base_edges));
  std::printf("  adds                %llu\n",
              static_cast<unsigned long long>(result.adds));
  std::printf("  removals            %llu\n",
              static_cast<unsigned long long>(result.removals));
  std::printf("  skipped_mutations   %llu\n",
              static_cast<unsigned long long>(result.skipped_mutations));
  std::printf("  live_edges          %llu\n",
              static_cast<unsigned long long>(result.live_edges));
  std::printf("  epochs_published    %llu\n",
              static_cast<unsigned long long>(result.epochs_published));
  std::printf("  rebootstraps        %llu\n",
              static_cast<unsigned long long>(result.rebootstraps));
  std::printf("  lookups             %llu (hits %llu)\n",
              static_cast<unsigned long long>(result.lookups),
              static_cast<unsigned long long>(result.lookup_hits));
  std::printf("  lookup_qps          %.3e (%.3fs slowest reader)\n",
              result.lookup_qps, result.reader_seconds);
  std::printf("  mutation_qps        %.3e (%.3fs writer)\n",
              result.mutation_qps, result.writer_seconds);
  std::printf("  replication_factor  %.4f\n", result.replication_factor);
  std::printf("  measured_alpha      %.4f\n", result.measured_alpha);
  std::printf("  staleness_ratio     %.4f\n", result.staleness_ratio);
  std::printf("  state_bytes         %llu\n",
              static_cast<unsigned long long>(result.state_bytes));
}

/// Invariants every healthy run satisfies; the smoke contract. Checked
/// rather than eyeballed so the tsan CI step fails loudly on logic
/// breakage, not just on data races.
bool CheckSmokeResult(const Options& options, const TrafficResult& result) {
  bool ok = true;
  const auto fail = [&ok](const char* what) {
    TPSL_LOG(Error) << "smoke: " << what;
    ok = false;
  };
  const uint64_t expected_lookups =
      static_cast<uint64_t>(options.readers) * options.lookups;
  if (result.lookups != expected_lookups) {
    fail("reader lookup count does not match readers * lookups");
  }
  if (result.base_edges == 0 || result.live_edges == 0) {
    fail("no live edges after traffic");
  }
  if (result.adds == 0 || result.removals == 0) {
    fail("mutation stream did not exercise both adds and removals");
  }
  if (result.epochs_published < 2) {
    fail("publishing never advanced past the bootstrap epoch");
  }
  if (result.rebootstraps == 0) {
    fail("staleness never triggered a re-bootstrap");
  }
  if (!(result.replication_factor >= 1.0) ||
      !std::isfinite(result.replication_factor)) {
    fail("replication factor below 1 or non-finite");
  }
  if (!(result.measured_alpha > 0.0) || !std::isfinite(result.measured_alpha)) {
    fail("measured alpha non-positive or non-finite");
  }
  if (result.state_bytes == 0) {
    fail("state bytes reported as zero");
  }
  return ok;
}

int Run(const Options& options) {
  auto edges = tpsl::LoadDataset(options.dataset, options.shift);
  if (!edges.ok()) {
    TPSL_LOG(Error) << edges.status().ToString();
    return 1;
  }
  TrafficOptions traffic;
  traffic.config.num_partitions = options.k;
  traffic.config.seed = options.seed;
  traffic.config.exec.threads = 1;
  traffic.readers = options.readers;
  traffic.lookups_per_reader = options.lookups;
  traffic.mutation_fraction = options.mutation_fraction;
  traffic.removal_interval = options.removal_interval;
  traffic.publish_batch_edges = options.batch;
  traffic.rebootstrap_threshold = options.threshold;
  traffic.adopt_after_publishes = options.adopt_lag;
  traffic.seed = options.seed;
  tpsl::obs::MetricsRegistry& registry = tpsl::obs::MetricsRegistry::Default();
  registry.Reset();
  traffic.lookup_histogram = registry.GetHistogram("serve.lookup_seconds");

  tpsl::WallTimer timer;
  auto result = tpsl::serve::RunTraffic(*edges, traffic);
  if (!result.ok()) {
    TPSL_LOG(Error) << result.status().ToString();
    return 1;
  }
  std::printf("serve_bench dataset=%s shift=%d k=%u seed=%llu readers=%u "
              "(%.3fs wall)\n",
              options.dataset.c_str(), options.shift, options.k,
              static_cast<unsigned long long>(options.seed), options.readers,
              timer.ElapsedSeconds());
  PrintResult(*result);
  std::printf("\nobs snapshot\n%s", registry.Snapshot().ToString().c_str());
  if (options.smoke) {
    const bool ok = CheckSmokeResult(options, *result);
    std::printf("smoke: %s\n", ok ? "ok" : "BROKEN");
    return ok ? 0 : 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    std::string value;
    bool parsed = true;
    if (std::strcmp(arg, "--smoke") == 0) {
      options.smoke = true;
    } else if (std::strcmp(arg, "--verbose") == 0) {
      tpsl::SetMinLogSeverity(tpsl::LogSeverity::kDebug);
    } else if (ParseFlag(arg, "--dataset", &value)) {
      options.dataset = value;
    } else if (ParseFlag(arg, "--trace", &value)) {
      options.trace_path = value;
    } else if (ParseFlag(arg, "--shift", &value)) {
      uint32_t shift = 0;
      parsed = ParseU32(value, &shift) && shift <= 30;
      options.shift = static_cast<int>(shift);
    } else if (ParseFlag(arg, "--k", &value)) {
      parsed = ParseU32(value, &options.k) && options.k > 0;
    } else if (ParseFlag(arg, "--seed", &value)) {
      parsed = ParseU64(value, &options.seed);
    } else if (ParseFlag(arg, "--readers", &value)) {
      parsed = ParseU32(value, &options.readers);
    } else if (ParseFlag(arg, "--lookups", &value)) {
      parsed = ParseU64(value, &options.lookups) && options.lookups > 0;
    } else if (ParseFlag(arg, "--batch", &value)) {
      parsed = ParseU32(value, &options.batch) && options.batch > 0;
    } else if (ParseFlag(arg, "--threshold", &value)) {
      parsed = ParseDouble(value, &options.threshold);
    } else if (ParseFlag(arg, "--adopt-lag", &value)) {
      parsed = ParseU32(value, &options.adopt_lag);
    } else if (ParseFlag(arg, "--mutation-fraction", &value)) {
      parsed = ParseDouble(value, &options.mutation_fraction) &&
               options.mutation_fraction < 1.0;
    } else if (ParseFlag(arg, "--removal-interval", &value)) {
      parsed = ParseU32(value, &options.removal_interval);
    } else {
      TPSL_LOG(Error) << "unknown argument '" << arg << "'";
      return Usage(argv[0]);
    }
    if (!parsed) {
      TPSL_LOG(Error) << "bad value in '" << arg << "'";
      return Usage(argv[0]);
    }
  }
  if (options.smoke) {
    // Fixed tiny shape: big enough that the 20% mutation tail crosses
    // the fork threshold several times (live re-bootstraps under
    // concurrent lookups — the shape the tsan job exists to race), and
    // small enough to finish in seconds under sanitizers.
    options.dataset = "OK";
    options.shift = 5;
    options.k = 8;
    options.readers = options.readers != 0 ? options.readers : 4;
    options.lookups = 1 << 13;
    options.batch = 64;
    options.threshold = 0.05;
    options.adopt_lag = 2;
    options.mutation_fraction = 0.2;
    options.removal_interval = 8;
  }
  if (!options.trace_path.empty()) {
    tpsl::obs::SetTracingEnabled(true);
  }
  const int rc = Run(options);
  if (!options.trace_path.empty()) {
    tpsl::obs::SetTracingEnabled(false);
    const tpsl::Status status =
        tpsl::obs::WriteChromeTrace(options.trace_path);
    if (!status.ok()) {
      TPSL_LOG(Error) << "trace export failed: " << status.ToString();
      return rc != 0 ? rc : 1;
    }
    TPSL_LOG(Info) << "wrote " << options.trace_path;
  }
  return rc;
}

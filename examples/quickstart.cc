// Quickstart: generate a small power-law graph, partition it with
// 2PS-L into 8 parts, and print the quality metrics. This is the
// 60-second tour of the public API:
//   EdgeStream -> Partitioner -> RunPartitioner -> PartitionQuality.
#include <cstdio>

#include "core/two_phase_partitioner.h"
#include "graph/generators.h"
#include "graph/in_memory_edge_stream.h"
#include "partition/runner.h"

int main() {
  // 1. A graph. Any EdgeStream works; here an in-memory R-MAT graph.
  tpsl::RmatConfig graph_config;
  graph_config.scale = 14;        // 16k vertices
  graph_config.edge_factor = 16;  // ~260k edges
  tpsl::InMemoryEdgeStream stream(tpsl::GenerateRmat(graph_config));

  // 2. A partitioner. TwoPhasePartitioner is the paper's 2PS-L.
  tpsl::TwoPhasePartitioner partitioner;

  // 3. Partition into k=8 parts with the default balance factor 1.05.
  tpsl::PartitionConfig config;
  config.num_partitions = 8;
  auto result = tpsl::RunPartitioner(partitioner, stream, config);
  if (!result.ok()) {
    std::fprintf(stderr, "partitioning failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // 4. Inspect the outcome.
  std::printf("partitioner      : %s\n", result->partitioner_name.c_str());
  std::printf("edges            : %llu\n",
              static_cast<unsigned long long>(result->quality.num_edges));
  std::printf("replication fact.: %.3f\n",
              result->quality.replication_factor);
  std::printf("measured alpha   : %.3f\n", result->quality.measured_alpha);
  std::printf("run-time         : %.3f s\n", result->stats.TotalSeconds());
  std::printf("stream passes    : %u\n", result->stats.stream_passes);
  std::printf("state memory     : %.1f MiB\n",
              static_cast<double>(result->stats.state_bytes) / (1 << 20));
  for (const auto& [phase, seconds] : result->stats.phase_seconds) {
    std::printf("  phase %-12s: %.3f s\n", phase.c_str(), seconds);
  }
  return 0;
}

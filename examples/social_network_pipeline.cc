// Social-network scenario (the paper's OK/TW/FR motivation): a skewed
// power-law graph must be split across 32 workers for distributed
// processing. Compares the streaming partitioner roster on replication
// factor vs run-time, the paper's central trade-off — quality is
// computed by the runner's streaming sink, so the sweep never
// materializes a partitioning — and then re-runs the winner with the
// spill sink to write per-partition binary edge lists, the hand-off
// format for a downstream loader.
#include <cstdio>
#include <string>

#include "baselines/registry.h"
#include "graph/datasets.h"
#include "graph/in_memory_edge_stream.h"
#include "partition/runner.h"

int main() {
  auto edges_or = tpsl::LoadDataset("OK", /*scale_shift=*/2);
  if (!edges_or.ok()) {
    std::fprintf(stderr, "%s\n", edges_or.status().ToString().c_str());
    return 1;
  }
  std::printf("OK-like social graph: %zu edges\n\n", edges_or->size());
  std::printf("%-10s %10s %12s %10s\n", "name", "rf", "time(s)", "alpha");

  std::string best_name;
  double best_rf = 1e30;

  for (const std::string& name : tpsl::StreamingPartitionerNames()) {
    auto partitioner_or = tpsl::MakePartitioner(name);
    if (!partitioner_or.ok()) {
      continue;
    }
    tpsl::InMemoryEdgeStream stream(*edges_or);
    tpsl::PartitionConfig config;
    config.num_partitions = 32;
    auto result = tpsl::RunPartitioner(**partitioner_or, stream, config);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", name.c_str(),
                   result.status().ToString().c_str());
      continue;
    }
    std::printf("%-10s %10.3f %12.3f %10.3f\n", name.c_str(),
                result->quality.replication_factor,
                result->stats.TotalSeconds(),
                result->quality.measured_alpha);
    if (result->quality.replication_factor < best_rf) {
      best_rf = result->quality.replication_factor;
      best_name = name;
    }
  }

  // Persist the best partitioning: re-run the winner with the
  // disk-backed spill sink, which streams each assignment straight to
  // its partition file as it is made.
  std::printf("\nbest streaming partitioner: %s (rf=%.3f)\n",
              best_name.c_str(), best_rf);
  auto winner_or = tpsl::MakePartitioner(best_name);
  if (!winner_or.ok()) {
    return 1;
  }
  tpsl::InMemoryEdgeStream stream(*edges_or);
  tpsl::PartitionConfig config;
  config.num_partitions = 32;
  tpsl::RunOptions options;
  options.spill_dir = "/tmp/tpsl_social_spill";
  options.spill_stem = "social";
  auto spilled = tpsl::RunPartitioner(**winner_or, stream, config, options);
  if (!spilled.ok()) {
    std::fprintf(stderr, "%s\n", spilled.status().ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu partition files (%.1f MB) to %s.part*.bin\n",
              spilled->spill.partition_paths.size(),
              static_cast<double>(spilled->spill.bytes_written) / 1e6,
              spilled->spill.prefix.c_str());
  return 0;
}

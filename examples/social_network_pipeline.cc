// Social-network scenario (the paper's OK/TW/FR motivation): a skewed
// power-law graph must be split across 32 workers for distributed
// processing. Compares the streaming partitioner roster on replication
// factor vs run-time, the paper's central trade-off, and writes the
// winning partitioning to per-partition binary edge lists — the
// hand-off format for a downstream loader.
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "graph/binary_edge_list.h"
#include "graph/datasets.h"
#include "graph/in_memory_edge_stream.h"
#include "partition/runner.h"

int main() {
  auto edges_or = tpsl::LoadDataset("OK", /*scale_shift=*/2);
  if (!edges_or.ok()) {
    std::fprintf(stderr, "%s\n", edges_or.status().ToString().c_str());
    return 1;
  }
  std::printf("OK-like social graph: %zu edges\n\n", edges_or->size());
  std::printf("%-10s %10s %12s %10s\n", "name", "rf", "time(s)", "alpha");

  std::string best_name;
  double best_rf = 1e30;
  std::vector<std::vector<tpsl::Edge>> best_partitions;

  for (const std::string& name : tpsl::StreamingPartitionerNames()) {
    auto partitioner_or = tpsl::MakePartitioner(name);
    if (!partitioner_or.ok()) {
      continue;
    }
    tpsl::InMemoryEdgeStream stream(*edges_or);
    tpsl::PartitionConfig config;
    config.num_partitions = 32;
    tpsl::RunOptions options;
    options.keep_partitions = true;
    auto result =
        tpsl::RunPartitioner(**partitioner_or, stream, config, options);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", name.c_str(),
                   result.status().ToString().c_str());
      continue;
    }
    std::printf("%-10s %10.3f %12.3f %10.3f\n", name.c_str(),
                result->quality.replication_factor,
                result->stats.TotalSeconds(),
                result->quality.measured_alpha);
    if (result->quality.replication_factor < best_rf) {
      best_rf = result->quality.replication_factor;
      best_name = name;
      best_partitions = std::move(result->partitions);
    }
  }

  // Persist the best partitioning: one binary edge list per partition,
  // ready for ingestion by a distributed processing framework.
  std::printf("\nbest streaming partitioner: %s (rf=%.3f)\n",
              best_name.c_str(), best_rf);
  for (size_t p = 0; p < best_partitions.size(); ++p) {
    const std::string path =
        "/tmp/tpsl_social_part_" + std::to_string(p) + ".bin";
    if (!tpsl::WriteBinaryEdgeList(path, best_partitions[p]).ok()) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
  }
  std::printf("wrote %zu partition files to /tmp/tpsl_social_part_*.bin\n",
              best_partitions.size());
  return 0;
}

// Command-line partitioner: the paper's deployment workflow as a tool.
// Reads a graph from a binary (.bin) or ASCII (.txt) edge list,
// partitions it out-of-core with the selected algorithm, writes one
// binary edge list per partition plus a manifest, and prints the
// quality report.
//
// Usage:
//   partition_cli <input> <output-prefix> [--partitioner=2PS-L] [--k=32]
//                 [--alpha=1.05] [--seed=42] [--demo]
// With --demo (or no arguments), a synthetic graph is generated and
// staged to a temporary file first, so the binary is runnable anywhere.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "baselines/registry.h"
#include "graph/generators.h"
#include "graph/text_edge_list.h"
#include "io/edge_file.h"
#include "partition/partitioned_writer.h"
#include "partition/partitioner.h"
#include "util/timer.h"

namespace {

struct CliOptions {
  std::string input;
  std::string output_prefix = "/tmp/tpsl_cli";
  std::string partitioner = "2PS-L";
  uint32_t k = 32;
  double alpha = 1.05;
  uint64_t seed = 42;
  bool demo = false;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  return false;
}

CliOptions ParseArgs(int argc, char** argv) {
  CliOptions options;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (std::strcmp(argv[i], "--demo") == 0) {
      options.demo = true;
    } else if (ParseFlag(argv[i], "--partitioner", &value)) {
      options.partitioner = value;
    } else if (ParseFlag(argv[i], "--k", &value)) {
      options.k = static_cast<uint32_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(argv[i], "--alpha", &value)) {
      options.alpha = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "--seed", &value)) {
      options.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (positional == 0) {
      options.input = argv[i];
      ++positional;
    } else if (positional == 1) {
      options.output_prefix = argv[i];
      ++positional;
    }
  }
  if (options.input.empty()) {
    options.demo = true;
  }
  return options;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options = ParseArgs(argc, argv);

  if (options.demo) {
    std::printf("demo mode: staging a synthetic social graph\n");
    tpsl::SocialNetworkConfig config;
    config.num_vertices = 1 << 14;
    config.seed = options.seed;
    // Derive from the output prefix rather than a fixed /tmp name, so runs
    // with distinct prefixes (e.g. parallel ctest) don't truncate each
    // other's staged file. Bare runs share the default prefix and outputs.
    options.input = options.output_prefix + ".demo.bin";
    const tpsl::Status staged = tpsl::io::WriteEdgeFile(
        options.input, tpsl::GenerateSocialNetwork(config),
        tpsl::io::EdgeFileFormat::kCompressedBlocks);
    if (!staged.ok()) {
      std::fprintf(stderr, "cannot stage demo graph: %s\n",
                   staged.ToString().c_str());
      return 1;
    }
  }

  // Text inputs are converted to a staged binary file so that the
  // partitioning itself always runs out-of-core over the binary format.
  if (EndsWith(options.input, ".txt")) {
    auto edges = tpsl::ReadTextEdgeList(options.input);
    if (!edges.ok()) {
      std::fprintf(stderr, "%s\n", edges.status().ToString().c_str());
      return 1;
    }
    const std::string staged = options.output_prefix + ".staged.bin";
    const tpsl::Status stage_status = tpsl::io::WriteEdgeFile(
        staged, *edges, tpsl::io::EdgeFileFormat::kCompressedBlocks);
    if (!stage_status.ok()) {
      std::fprintf(stderr, "cannot stage %s: %s\n", staged.c_str(),
                   stage_status.ToString().c_str());
      return 1;
    }
    options.input = staged;
  }

  // Sniffs the format: raw u32-pair files and compressed block files
  // both work here.
  auto stream = tpsl::io::OpenEdgeFile(options.input);
  if (!stream.ok()) {
    std::fprintf(stderr, "%s\n", stream.status().ToString().c_str());
    return 1;
  }
  auto partitioner = tpsl::MakePartitioner(options.partitioner);
  if (!partitioner.ok()) {
    std::fprintf(stderr, "%s\n", partitioner.status().ToString().c_str());
    return 1;
  }

  tpsl::PartitionConfig config;
  config.num_partitions = options.k;
  config.balance_factor = options.alpha;
  config.seed = options.seed;

  tpsl::PartitionedWriter writer(options.output_prefix, options.k);
  if (!writer.status().ok()) {
    std::fprintf(stderr, "%s\n", writer.status().ToString().c_str());
    return 1;
  }

  std::printf("partitioning %s (%llu edges) with %s into k=%u parts\n",
              options.input.c_str(),
              static_cast<unsigned long long>((*stream)->NumEdgesHint()),
              options.partitioner.c_str(), options.k);
  tpsl::WallTimer timer;
  tpsl::PartitionStats stats;
  const tpsl::Status status =
      (*partitioner)->Partition(**stream, config, writer, &stats);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  const tpsl::Status finish_status = writer.Finish();
  if (!finish_status.ok()) {
    std::fprintf(stderr, "write-back failed: %s\n",
                 finish_status.ToString().c_str());
    return 1;
  }

  uint64_t max_load = 0, total = 0;
  for (const uint64_t count : writer.edge_counts()) {
    max_load = std::max(max_load, count);
    total += count;
  }
  std::printf("done in %.3f s (%u stream passes, %.1f MiB state)\n",
              timer.ElapsedSeconds(), stats.stream_passes,
              static_cast<double>(stats.state_bytes) / (1 << 20));
  std::printf("balance: max %llu of avg %.0f edges (alpha=%.3f)\n",
              static_cast<unsigned long long>(max_load),
              static_cast<double>(total) / options.k,
              static_cast<double>(max_load) * options.k /
                  static_cast<double>(total));
  std::printf("outputs: %s.part<0..%u>.bin + %s.manifest\n",
              options.output_prefix.c_str(), options.k - 1,
              options.output_prefix.c_str());
  return 0;
}

// Out-of-core scenario (the paper's UK/GSH/WDC motivation): the graph
// lives on disk as a binary edge list and never fits in memory as a
// whole. 2PS-L streams it in 4 sequential passes with O(|V|*k) state.
// The example also prices the run on slower storage with the
// ThrottledEdgeStream (paper Table V): multi-pass streaming is cheap
// from page cache, noticeable on SSD, painful on HDD.
#include <cstdio>
#include <string>

#include "core/two_phase_partitioner.h"
#include "graph/datasets.h"
#include "io/mmap_edge_stream.h"
#include "io/edge_file.h"
#include "io/throttled_edge_stream.h"
#include "partition/runner.h"

int main() {
  // Stage the "web crawl" on disk.
  auto edges_or = tpsl::LoadDataset("UK", /*scale_shift=*/2);
  if (!edges_or.ok()) {
    std::fprintf(stderr, "%s\n", edges_or.status().ToString().c_str());
    return 1;
  }
  const std::string path = "/tmp/tpsl_web_graph.bin";
  if (!tpsl::io::WriteEdgeFile(path, *edges_or,
                               tpsl::io::EdgeFileFormat::kCompressedBlocks)
           .ok()) {
    std::fprintf(stderr, "cannot stage graph at %s\n", path.c_str());
    return 1;
  }
  const double gib =
      static_cast<double>(edges_or->size() * sizeof(tpsl::Edge)) / (1 << 30);

  // Partition straight from the mapping: blocks decode ahead of the
  // consumer and consumed pages are dropped, so resident memory stays
  // bounded no matter how large the file is.
  auto file_or = tpsl::io::MmapEdgeStream::Open(path);
  if (!file_or.ok()) {
    std::fprintf(stderr, "%s\n", file_or.status().ToString().c_str());
    return 1;
  }
  const double disk_gib =
      static_cast<double>((*file_or)->file_bytes()) / (1 << 30);
  std::printf(
      "staged UK-like web graph: %zu edges (%.3f GiB decoded, %.3f GiB "
      "on disk, %.2fx) at %s\n",
      edges_or->size(), gib, disk_gib, gib / disk_gib, path.c_str());
  tpsl::ThrottledEdgeStream metered(file_or->get(), tpsl::kHddProfile);

  tpsl::TwoPhasePartitioner partitioner;
  tpsl::PartitionConfig config;
  config.num_partitions = 128;
  // The full storage-to-storage loop: quality and validation run as
  // streaming sinks (no edge lists), and the spill sink writes the
  // partitioned graph straight back to disk as it is assigned.
  tpsl::RunOptions options;
  options.spill_dir = "/tmp/tpsl_web_graph_spill";
  options.spill_stem = "web";
  auto result = tpsl::RunPartitioner(partitioner, metered, config, options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  const double compute = result->stats.TotalSeconds();
  std::printf("\nk=128 out-of-core partitioning\n");
  std::printf("replication factor : %.3f\n",
              result->quality.replication_factor);
  std::printf("compute time       : %.3f s\n", compute);
  std::printf("stream passes      : %llu (degree, clustering, "
              "pre-partition, scoring)\n",
              static_cast<unsigned long long>(metered.passes()));
  std::printf("bytes streamed     : %.3f GiB\n",
              static_cast<double>(metered.bytes_read()) / (1 << 30));
  std::printf("run state          : %.1f MiB incl. metric/writer sinks "
              "(vs %.3f GiB edge data)\n",
              static_cast<double>(result->stats.state_bytes) / (1 << 20),
              gib);
  std::printf("spilled partitions : %.3f GiB at %s.part*.bin\n",
              static_cast<double>(result->spill.bytes_written) / (1 << 30),
              result->spill.prefix.c_str());
  tpsl::RemoveSpilledFiles(result->spill);
  std::printf("\nstorage cost model (paper Table V):\n");
  std::printf("  page cache : %.3f s\n", compute);
  const double ssd_io = static_cast<double>(metered.bytes_read()) /
                        tpsl::kSsdProfile.bytes_per_second;
  std::printf("  SSD        : %.3f s (+%.0f%%)\n", compute + ssd_io,
              100.0 * ssd_io / compute);
  const double hdd_io = metered.SimulatedIoSeconds();
  std::printf("  HDD        : %.3f s (+%.0f%%)\n", compute + hdd_io,
              100.0 * hdd_io / compute);

  std::remove(path.c_str());
  return 0;
}

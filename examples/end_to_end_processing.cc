// End-to-end scenario (the paper's Table IV argument): choosing a
// partitioner by partitioning speed alone, or by quality alone, both
// lose. This example partitions a graph with three strategies and runs
// 100 iterations of distributed PageRank on the simulated cluster; the
// total (partitioning + processing) decides.
//
// The pipeline is the full out-of-core loop: the runner's streaming
// sinks compute quality single-pass and spill the partitions to disk,
// then PageRank executes from the spilled per-partition files — no
// materialized edge lists anywhere between partitioner and processing.
#include <cstdio>
#include <string>

#include "baselines/registry.h"
#include "graph/datasets.h"
#include "graph/in_memory_edge_stream.h"
#include "partition/runner.h"
#include "procsim/distributed_pagerank.h"

int main() {
  auto edges_or = tpsl::LoadDataset("WI", /*scale_shift=*/2);
  if (!edges_or.ok()) {
    std::fprintf(stderr, "%s\n", edges_or.status().ToString().c_str());
    return 1;
  }
  std::printf("WI-like graph: %zu edges, 32-worker simulated cluster, "
              "PageRank x100 from spilled partition files\n\n",
              edges_or->size());
  std::printf("%-10s %8s %14s %14s %12s\n", "name", "rf", "partition(s)",
              "pagerank(s)", "total(s)");

  double best_total = 1e30;
  std::string best_name;
  for (const char* name : {"DBH", "HDRF", "2PS-L"}) {
    auto partitioner_or = tpsl::MakePartitioner(name);
    if (!partitioner_or.ok()) {
      return 1;
    }
    tpsl::InMemoryEdgeStream stream(*edges_or);
    tpsl::PartitionConfig config;
    config.num_partitions = 32;
    tpsl::RunOptions options;
    options.validate = false;
    // Spill instead of keep_partitions: partitions land on disk as one
    // binary edge list each, ready for the processing layer.
    options.spill_dir = "/tmp/tpsl_e2e_spill";
    options.spill_stem = name;
    auto run_or =
        tpsl::RunPartitioner(**partitioner_or, stream, config, options);
    if (!run_or.ok()) {
      std::fprintf(stderr, "%s: %s\n", name,
                   run_or.status().ToString().c_str());
      return 1;
    }

    auto streams_or = tpsl::OpenSpilledPartitions(run_or->spill);
    if (!streams_or.ok()) {
      std::fprintf(stderr, "%s\n", streams_or.status().ToString().c_str());
      return 1;
    }
    tpsl::PageRankConfig pagerank;
    pagerank.iterations = 100;
    auto sim_or = tpsl::SimulateDistributedPageRank(
        tpsl::StreamPointers(*streams_or), pagerank, {});
    if (!sim_or.ok()) {
      std::fprintf(stderr, "%s\n", sim_or.status().ToString().c_str());
      return 1;
    }
    streams_or->clear();
    tpsl::RemoveSpilledFiles(run_or->spill);
    const double partition_seconds = run_or->stats.TotalSeconds();
    const double total = partition_seconds + sim_or->simulated_seconds;
    std::printf("%-10s %8.2f %14.3f %14.3f %12.3f\n", name,
                run_or->quality.replication_factor, partition_seconds,
                sim_or->simulated_seconds, total);
    if (total < best_total) {
      best_total = total;
      best_name = name;
    }
  }
  std::printf("\nwinner end-to-end: %s — fast partitioning alone (DBH) "
              "pays in PageRank sync traffic;\nexpensive scoring (HDRF) "
              "pays upfront; 2PS-L balances both.\n",
              best_name.c_str());
  return 0;
}

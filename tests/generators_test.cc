#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "graph/datasets.h"
#include "graph/degrees.h"
#include "graph/generators.h"
#include "graph/in_memory_edge_stream.h"

namespace tpsl {
namespace {

uint32_t MaxDegree(const std::vector<Edge>& edges) {
  InMemoryEdgeStream stream(edges);
  auto table = ComputeDegrees(stream);
  uint32_t max_degree = 0;
  for (const uint32_t d : table->degrees) {
    max_degree = std::max(max_degree, d);
  }
  return max_degree;
}

TEST(RmatTest, DeterministicForSeed) {
  RmatConfig config;
  config.scale = 10;
  config.edge_factor = 8;
  EXPECT_EQ(GenerateRmat(config), GenerateRmat(config));
  RmatConfig other = config;
  other.seed = config.seed + 1;
  EXPECT_NE(GenerateRmat(config), GenerateRmat(other));
}

TEST(RmatTest, ApproximateEdgeCount) {
  RmatConfig config;
  config.scale = 12;
  config.edge_factor = 8;
  const auto edges = GenerateRmat(config);
  const uint64_t target = uint64_t{8} << 12;
  // Self-loop removal discards a few edges.
  EXPECT_LE(edges.size(), target);
  EXPECT_GT(edges.size(), target * 95 / 100);
}

TEST(RmatTest, ProducesSkewedDegrees) {
  RmatConfig config;
  config.scale = 14;
  config.edge_factor = 16;
  const auto edges = GenerateRmat(config);
  const uint64_t mean_degree = 2 * edges.size() / (uint64_t{1} << 14);
  // Power-law-ish skew: the hub should dwarf the mean.
  EXPECT_GT(MaxDegree(edges), 10 * mean_degree);
}

TEST(RmatTest, VertexIdsWithinRange) {
  RmatConfig config;
  config.scale = 9;
  for (const Edge& e : GenerateRmat(config)) {
    EXPECT_LT(e.first, 1u << 9);
    EXPECT_LT(e.second, 1u << 9);
  }
}

TEST(RmatTest, NoSelfLoopsByDefault) {
  RmatConfig config;
  config.scale = 10;
  for (const Edge& e : GenerateRmat(config)) {
    EXPECT_NE(e.first, e.second);
  }
}

TEST(ErdosRenyiTest, ExactEdgeCountAndRange) {
  ErdosRenyiConfig config;
  config.num_vertices = 500;
  config.num_edges = 2000;
  const auto edges = GenerateErdosRenyi(config);
  EXPECT_EQ(edges.size(), 2000u);
  for (const Edge& e : edges) {
    EXPECT_LT(e.first, 500u);
    EXPECT_LT(e.second, 500u);
    EXPECT_NE(e.first, e.second);
  }
}

TEST(ErdosRenyiTest, Deterministic) {
  ErdosRenyiConfig config;
  EXPECT_EQ(GenerateErdosRenyi(config), GenerateErdosRenyi(config));
}

TEST(BarabasiAlbertTest, MinimumDegreeHolds) {
  BarabasiAlbertConfig config;
  config.num_vertices = 2000;
  config.attachment = 4;
  const auto edges = GenerateBarabasiAlbert(config);
  InMemoryEdgeStream stream(edges);
  auto table = ComputeDegrees(stream);
  ASSERT_TRUE(table.ok());
  for (VertexId v = 0; v < config.num_vertices; ++v) {
    EXPECT_GE(table->degree(v), config.attachment) << "vertex " << v;
  }
}

TEST(BarabasiAlbertTest, HubsEmerge) {
  BarabasiAlbertConfig config;
  config.num_vertices = 5000;
  config.attachment = 4;
  const auto edges = GenerateBarabasiAlbert(config);
  EXPECT_GT(MaxDegree(edges), 20u * config.attachment);
}

TEST(PlantedPartitionTest, IntraFractionApproximatelyHolds) {
  PlantedPartitionConfig config;
  config.num_vertices = 4096;
  config.num_edges = 100000;
  config.num_communities = 16;
  config.intra_fraction = 0.9;
  config.size_skew = 0.0;  // equal-size communities simplify the check
  const auto edges = GeneratePlantedPartition(config);
  ASSERT_EQ(edges.size(), 100000u);

  // With equal-sized contiguous communities, the community of a vertex
  // is id / community_size.
  const VertexId community_size = 4096 / 16;
  uint64_t intra = 0;
  for (const Edge& e : edges) {
    if (e.first / community_size == e.second / community_size) {
      ++intra;
    }
  }
  const double fraction = static_cast<double>(intra) / edges.size();
  EXPECT_GT(fraction, 0.85);
}

TEST(PlantedPartitionTest, Deterministic) {
  PlantedPartitionConfig config;
  config.num_vertices = 1024;
  config.num_edges = 5000;
  EXPECT_EQ(GeneratePlantedPartition(config),
            GeneratePlantedPartition(config));
}

TEST(CleanupTest, RemoveSelfLoops) {
  std::vector<Edge> edges = {{0, 1}, {2, 2}, {1, 0}, {3, 3}};
  RemoveSelfLoops(&edges);
  EXPECT_EQ(edges, (std::vector<Edge>{{0, 1}, {1, 0}}));
}

TEST(CleanupTest, DeduplicateUndirected) {
  std::vector<Edge> edges = {{1, 0}, {0, 1}, {2, 3}, {3, 2}, {2, 3}};
  DeduplicateUndirected(&edges);
  EXPECT_EQ(edges, (std::vector<Edge>{{0, 1}, {2, 3}}));
}

TEST(CleanupTest, ShuffleIsPermutation) {
  std::vector<Edge> edges;
  for (uint32_t i = 0; i < 100; ++i) {
    edges.push_back(Edge{i, i + 1});
  }
  std::vector<Edge> shuffled = edges;
  ShuffleEdges(&shuffled, 42);
  EXPECT_NE(shuffled, edges);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, edges);
}

TEST(DatasetsTest, AllDatasetsLoadAndFollowSizeOrdering) {
  uint64_t previous_size = 0;
  for (const DatasetSpec& spec : AllDatasets()) {
    auto edges_or = LoadDataset(spec.name, /*scale_shift=*/4);
    ASSERT_TRUE(edges_or.ok()) << spec.name;
    EXPECT_GT(edges_or->size(), 0u) << spec.name;
    // Paper Table III ordering: each dataset at least as large as the
    // previous one (weak monotonicity at small scales).
    EXPECT_GE(edges_or->size(), previous_size * 9 / 10) << spec.name;
    previous_size = edges_or->size();
  }
}

TEST(DatasetsTest, UnknownNameIsNotFound) {
  auto result = LoadDataset("NOPE");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(DatasetsTest, NegativeScaleShiftRejected) {
  auto result = LoadDataset("OK", -1);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(DatasetsTest, ScaleShiftShrinks) {
  auto big = LoadDataset("OK", 3);
  auto small = LoadDataset("OK", 5);
  ASSERT_TRUE(big.ok());
  ASSERT_TRUE(small.ok());
  EXPECT_GT(big->size(), small->size());
}

TEST(DatasetsTest, RestreamingStudyHasFourGraphs) {
  const auto& specs = RestreamingStudyDatasets();
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].name, "OK");
  EXPECT_EQ(specs[1].name, "IT");
  EXPECT_EQ(specs[2].name, "TW");
  EXPECT_EQ(specs[3].name, "FR");
}

}  // namespace
}  // namespace tpsl

#include <gtest/gtest.h>

#include <vector>

#include "graph/in_memory_edge_stream.h"
#include "io/throttled_edge_stream.h"

namespace tpsl {
namespace {

std::vector<Edge> SomeEdges(size_t n) {
  std::vector<Edge> edges;
  for (uint32_t i = 0; i < n; ++i) {
    edges.push_back(Edge{i, i + 1});
  }
  return edges;
}

TEST(ThrottledEdgeStreamTest, DeliversIdenticalEdges) {
  InMemoryEdgeStream inner(SomeEdges(100));
  ThrottledEdgeStream throttled(&inner, kHddProfile);
  std::vector<Edge> got;
  ASSERT_TRUE(
      ForEachEdge(throttled, [&](const Edge& e) { got.push_back(e); }).ok());
  EXPECT_EQ(got, SomeEdges(100));
}

TEST(ThrottledEdgeStreamTest, AccountsBytesAcrossPasses) {
  InMemoryEdgeStream inner(SomeEdges(1000));
  ThrottledEdgeStream throttled(&inner, kSsdProfile);
  for (int pass = 0; pass < 3; ++pass) {
    ASSERT_TRUE(ForEachEdge(throttled, [](const Edge&) {}).ok());
  }
  EXPECT_EQ(throttled.bytes_read(), 3 * 1000 * sizeof(Edge));
  EXPECT_EQ(throttled.passes(), 3u);
}

TEST(ThrottledEdgeStreamTest, SimulatedIoTimeMatchesBandwidth) {
  InMemoryEdgeStream inner(SomeEdges(1000));
  ThrottledEdgeStream throttled(&inner, StorageProfile{"Test", 8000});
  ASSERT_TRUE(ForEachEdge(throttled, [](const Edge&) {}).ok());
  // 8000 bytes at 8000 B/s = 1 second.
  EXPECT_DOUBLE_EQ(throttled.SimulatedIoSeconds(), 1.0);
}

TEST(ThrottledEdgeStreamTest, PageCacheProfileIsFree) {
  InMemoryEdgeStream inner(SomeEdges(1000));
  ThrottledEdgeStream throttled(&inner, kPageCacheProfile);
  ASSERT_TRUE(ForEachEdge(throttled, [](const Edge&) {}).ok());
  EXPECT_DOUBLE_EQ(throttled.SimulatedIoSeconds(), 0.0);
}

TEST(ThrottledEdgeStreamTest, HddSlowerThanSsd) {
  InMemoryEdgeStream inner_a(SomeEdges(5000));
  InMemoryEdgeStream inner_b(SomeEdges(5000));
  ThrottledEdgeStream ssd(&inner_a, kSsdProfile);
  ThrottledEdgeStream hdd(&inner_b, kHddProfile);
  ASSERT_TRUE(ForEachEdge(ssd, [](const Edge&) {}).ok());
  ASSERT_TRUE(ForEachEdge(hdd, [](const Edge&) {}).ok());
  EXPECT_GT(hdd.SimulatedIoSeconds(), ssd.SimulatedIoSeconds());
}

TEST(ThrottledEdgeStreamTest, ForwardsHint) {
  InMemoryEdgeStream inner(SomeEdges(42));
  ThrottledEdgeStream throttled(&inner, kSsdProfile);
  EXPECT_EQ(throttled.NumEdgesHint(), 42u);
}

TEST(ThrottledEdgeStreamTest, PerPassByteAccounting) {
  InMemoryEdgeStream inner(SomeEdges(250));
  ThrottledEdgeStream throttled(&inner, kSsdProfile);
  for (int pass = 0; pass < 4; ++pass) {
    ASSERT_TRUE(ForEachEdge(throttled, [](const Edge&) {}).ok());
    // The per-pass account covers exactly one pass...
    EXPECT_EQ(throttled.bytes_this_pass(), 250 * sizeof(Edge));
    // ...while the cumulative account keeps growing across passes.
    EXPECT_EQ(throttled.bytes_read(), (pass + 1) * 250 * sizeof(Edge));
  }
}

TEST(ThrottledEdgeStreamTest, ResetDropsPerPassAccountOnly) {
  // Reset() models a dropped page cache: the new pass starts at zero
  // bytes, but the device-time account keeps the full history (every
  // pass pays full I/O cost).
  InMemoryEdgeStream inner(SomeEdges(100));
  ThrottledEdgeStream throttled(&inner, StorageProfile{"Test", 800});
  ASSERT_TRUE(ForEachEdge(throttled, [](const Edge&) {}).ok());
  const double io_after_one_pass = throttled.SimulatedIoSeconds();
  EXPECT_GT(io_after_one_pass, 0.0);

  ASSERT_TRUE(throttled.Reset().ok());
  EXPECT_EQ(throttled.bytes_this_pass(), 0u);
  EXPECT_EQ(throttled.bytes_read(), 100 * sizeof(Edge));
  EXPECT_DOUBLE_EQ(throttled.SimulatedIoSeconds(), io_after_one_pass);
  EXPECT_EQ(throttled.passes(), 2u);
}

TEST(ThrottledEdgeStreamTest, SimulatedStallTime) {
  InMemoryEdgeStream inner(SomeEdges(1000));
  // 8000 bytes at 8000 B/s = 1 s of device time for one pass.
  ThrottledEdgeStream throttled(&inner, StorageProfile{"Test", 8000});
  ASSERT_TRUE(ForEachEdge(throttled, [](const Edge&) {}).ok());
  // Compute slower than the device: I/O fully hidden, no stall.
  EXPECT_DOUBLE_EQ(throttled.SimulatedStallSeconds(2.0), 0.0);
  // Compute faster than the device: stall for the remainder.
  EXPECT_DOUBLE_EQ(throttled.SimulatedStallSeconds(0.25), 0.75);
  // Degenerate case: no compute at all stalls for the full I/O time.
  EXPECT_DOUBLE_EQ(throttled.SimulatedStallSeconds(0.0),
                   throttled.SimulatedIoSeconds());
}

TEST(ThrottledEdgeStreamTest, ForwardsHealth) {
  InMemoryEdgeStream inner(SomeEdges(10));
  ThrottledEdgeStream throttled(&inner, kSsdProfile);
  EXPECT_TRUE(throttled.Health().ok());
}

}  // namespace
}  // namespace tpsl

#include <gtest/gtest.h>

#include <vector>

#include "graph/in_memory_edge_stream.h"
#include "io/throttled_edge_stream.h"

namespace tpsl {
namespace {

std::vector<Edge> SomeEdges(size_t n) {
  std::vector<Edge> edges;
  for (uint32_t i = 0; i < n; ++i) {
    edges.push_back(Edge{i, i + 1});
  }
  return edges;
}

TEST(ThrottledEdgeStreamTest, DeliversIdenticalEdges) {
  InMemoryEdgeStream inner(SomeEdges(100));
  ThrottledEdgeStream throttled(&inner, kHddProfile);
  std::vector<Edge> got;
  ASSERT_TRUE(
      ForEachEdge(throttled, [&](const Edge& e) { got.push_back(e); }).ok());
  EXPECT_EQ(got, SomeEdges(100));
}

TEST(ThrottledEdgeStreamTest, AccountsBytesAcrossPasses) {
  InMemoryEdgeStream inner(SomeEdges(1000));
  ThrottledEdgeStream throttled(&inner, kSsdProfile);
  for (int pass = 0; pass < 3; ++pass) {
    ASSERT_TRUE(ForEachEdge(throttled, [](const Edge&) {}).ok());
  }
  EXPECT_EQ(throttled.bytes_read(), 3 * 1000 * sizeof(Edge));
  EXPECT_EQ(throttled.passes(), 3u);
}

TEST(ThrottledEdgeStreamTest, SimulatedIoTimeMatchesBandwidth) {
  InMemoryEdgeStream inner(SomeEdges(1000));
  ThrottledEdgeStream throttled(&inner, StorageProfile{"Test", 8000});
  ASSERT_TRUE(ForEachEdge(throttled, [](const Edge&) {}).ok());
  // 8000 bytes at 8000 B/s = 1 second.
  EXPECT_DOUBLE_EQ(throttled.SimulatedIoSeconds(), 1.0);
}

TEST(ThrottledEdgeStreamTest, PageCacheProfileIsFree) {
  InMemoryEdgeStream inner(SomeEdges(1000));
  ThrottledEdgeStream throttled(&inner, kPageCacheProfile);
  ASSERT_TRUE(ForEachEdge(throttled, [](const Edge&) {}).ok());
  EXPECT_DOUBLE_EQ(throttled.SimulatedIoSeconds(), 0.0);
}

TEST(ThrottledEdgeStreamTest, HddSlowerThanSsd) {
  InMemoryEdgeStream inner_a(SomeEdges(5000));
  InMemoryEdgeStream inner_b(SomeEdges(5000));
  ThrottledEdgeStream ssd(&inner_a, kSsdProfile);
  ThrottledEdgeStream hdd(&inner_b, kHddProfile);
  ASSERT_TRUE(ForEachEdge(ssd, [](const Edge&) {}).ok());
  ASSERT_TRUE(ForEachEdge(hdd, [](const Edge&) {}).ok());
  EXPECT_GT(hdd.SimulatedIoSeconds(), ssd.SimulatedIoSeconds());
}

TEST(ThrottledEdgeStreamTest, ForwardsHint) {
  InMemoryEdgeStream inner(SomeEdges(42));
  ThrottledEdgeStream throttled(&inner, kSsdProfile);
  EXPECT_EQ(throttled.NumEdgesHint(), 42u);
}

}  // namespace
}  // namespace tpsl

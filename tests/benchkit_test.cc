#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "benchkit/comparator.h"
#include "benchkit/json.h"
#include "benchkit/measure.h"
#include "benchkit/record.h"
#include "benchkit/runner.h"
#include "benchkit/scenario.h"

namespace tpsl {
namespace benchkit {
namespace {

// ---------------------------------------------------------------------------
// JSON writer/reader
// ---------------------------------------------------------------------------

TEST(JsonTest, WriteParseRoundTrip) {
  JsonValue object = JsonValue::Object();
  object.Set("name", JsonValue::String("2psl_ok_k32"));
  object.Set("k", JsonValue::Number(32));
  object.Set("fraction", JsonValue::Number(0.125));
  object.Set("flag", JsonValue::Bool(true));
  object.Set("nothing", JsonValue::Null());
  JsonValue array = JsonValue::Array();
  array.Append(JsonValue::Number(1));
  array.Append(JsonValue::String("quote\" backslash\\ newline\n"));
  array.Append(JsonValue::Object());
  object.Set("items", std::move(array));

  for (const int indent : {0, 2, 4}) {
    auto parsed = ParseJson(object.Write(indent));
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_EQ(*parsed, object) << "indent=" << indent;
  }
}

TEST(JsonTest, ObjectsPreserveInsertionOrderAndSetReplaces) {
  JsonValue object = JsonValue::Object();
  object.Set("z", JsonValue::Number(1));
  object.Set("a", JsonValue::Number(2));
  object.Set("z", JsonValue::Number(3));
  ASSERT_EQ(object.members().size(), 2u);
  EXPECT_EQ(object.members()[0].first, "z");
  EXPECT_EQ(object.members()[0].second.number_value(), 3);
  EXPECT_EQ(object.members()[1].first, "a");
}

TEST(JsonTest, ParsesEscapesAndUnicode) {
  auto parsed = ParseJson(R"({"s": "tab\thex\u0041 pair\ud83d\ude00"})");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const JsonValue* s = parsed->Find("s");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->string_value(), "tab\thexA pair\xF0\x9F\x98\x80");
}

TEST(JsonTest, IntegralNumbersWriteWithoutFraction) {
  JsonValue object = JsonValue::Object();
  object.Set("state_bytes", JsonValue::Number(1234567890.0));
  EXPECT_EQ(object.Write(0), R"({"state_bytes":1234567890})");
}

TEST(JsonTest, RejectsMalformedInput) {
  const char* bad[] = {
      "",        "{",        "[1,",      "{\"a\" 1}",  "{\"a\":}",
      "nul",     "1 2",      "{} trailing",
      "\"unterminated",      "{\"a\":\"\\q\"}",  "+5",
  };
  for (const char* text : bad) {
    EXPECT_FALSE(ParseJson(text).ok()) << "accepted: " << text;
  }
}

TEST(JsonTest, RejectsDeepNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(ParseJson(deep).ok());
}

// ---------------------------------------------------------------------------
// BenchRecord round trip
// ---------------------------------------------------------------------------

BenchRecord MakeRecord() {
  BenchRecord record;
  record.scenario = "2psl_ok_k32";
  record.partitioner = "2PS-L";
  record.dataset = "OK";
  record.k = 32;
  record.scale_shift = 2;
  record.seed = 42;
  record.SetMetric("seconds", 0.125);
  record.SetMetric("replication_factor", 2.375);
  record.SetMetric("measured_alpha", 1.05);
  record.SetMetric("state_bytes", 1 << 20);
  record.SetMetric("num_edges", 60000);
  record.SetMetric("peak_rss_bytes", 12345678);
  record.SetMetric("phase_seconds/clustering", 0.0625);
  return record;
}

TEST(RecordTest, JsonRoundTrip) {
  const BenchRecord record = MakeRecord();
  auto reparsed = ParseJson(record.ToJson().Write());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  auto back = BenchRecord::FromJson(*reparsed);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, record);
}

TEST(RecordTest, FileRoundTrip) {
  const BenchRecord record = MakeRecord();
  const std::string path =
      testing::TempDir() + "/" + RecordFileName(record.scenario);
  ASSERT_TRUE(WriteRecordFile(record, path).ok());
  auto back = ReadRecordFile(path);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, record);
}

TEST(RecordTest, FromJsonRejectsOutOfRangeIntegerFields) {
  // Hand-edited baselines can hold anything; the reader must reject
  // values whose narrowing cast would be UB instead of passing them on.
  struct Case {
    const char* field;
    double value;
  } cases[] = {{"k", -1}, {"k", 1e20},      {"k", 2.5},
               {"seed", -1}, {"scale_shift", 1e10}};
  for (const Case& c : cases) {
    JsonValue json = MakeRecord().ToJson();
    json.Set(c.field, JsonValue::Number(c.value));
    EXPECT_FALSE(BenchRecord::FromJson(json).ok())
        << c.field << " = " << c.value;
  }
}

TEST(RecordTest, FromJsonRejectsMissingFields) {
  JsonValue json = MakeRecord().ToJson();
  JsonValue no_metrics = json;
  no_metrics.Set("metrics", JsonValue::Null());
  EXPECT_FALSE(BenchRecord::FromJson(no_metrics).ok());
  JsonValue bad_version = json;
  bad_version.Set("benchkit_version", JsonValue::Number(99));
  EXPECT_FALSE(BenchRecord::FromJson(bad_version).ok());
  EXPECT_FALSE(BenchRecord::FromJson(JsonValue::Array()).ok());
}

TEST(RecordTest, ReadRecordDirRequiresRecords) {
  EXPECT_FALSE(ReadRecordDir(testing::TempDir() + "/does_not_exist").ok());
}

TEST(RecordTest, ThreadsDimensionRoundTripsAndDefaultsToOne) {
  BenchRecord record = MakeRecord();
  record.threads = 4;
  auto back = BenchRecord::FromJson(record.ToJson());
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->threads, 4u);

  // Pre-thread-aware baselines have no "threads" key; they were
  // single-threaded runs and must parse as threads=1, not fail.
  JsonValue legacy = JsonValue::Object();
  const JsonValue with_threads = MakeRecord().ToJson();
  for (const auto& [key, value] : with_threads.members()) {
    if (key != "threads") {
      legacy.Set(key, value);
    }
  }
  auto parsed = BenchRecord::FromJson(legacy);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->threads, 1u);

  JsonValue bad = MakeRecord().ToJson();
  bad.Set("threads", JsonValue::Number(0));
  EXPECT_FALSE(BenchRecord::FromJson(bad).ok());
}

// ---------------------------------------------------------------------------
// Comparator tolerance edges
// ---------------------------------------------------------------------------

TEST(ComparatorTest, ExactMatchPasses) {
  const BenchRecord record = MakeRecord();
  const ScenarioComparison comparison = CompareRecord(record, record);
  EXPECT_TRUE(comparison.passed);
  for (const MetricCheck& check : comparison.checks) {
    EXPECT_EQ(check.status, MetricStatus::kOk) << check.metric;
  }
}

TEST(ComparatorTest, WithinTolerancePasses) {
  const BenchRecord baseline = MakeRecord();
  BenchRecord current = baseline;
  current.SetMetric("seconds", 0.125 * 2.5);              // < 3x, tol +200%
  current.SetMetric("replication_factor", 2.375 * 1.01);  // < 2%
  current.SetMetric("state_bytes", (1 << 20) * 1.2);      // < 25%
  EXPECT_TRUE(CompareRecord(baseline, current).passed);
}

TEST(ComparatorTest, TimeRegressionFails) {
  const BenchRecord baseline = MakeRecord();
  BenchRecord current = baseline;
  current.SetMetric("seconds", 1.5);  // 12x the 0.125 s baseline
  const ScenarioComparison comparison = CompareRecord(baseline, current);
  EXPECT_FALSE(comparison.passed);
  for (const MetricCheck& check : comparison.checks) {
    if (check.metric == "seconds") {
      EXPECT_EQ(check.status, MetricStatus::kRegressed);
      EXPECT_TRUE(check.failed);
    }
  }
}

TEST(ComparatorTest, TimeImprovementPasses) {
  const BenchRecord baseline = MakeRecord();
  BenchRecord current = baseline;
  current.SetMetric("seconds", 0.001);
  const ScenarioComparison comparison = CompareRecord(baseline, current);
  EXPECT_TRUE(comparison.passed);
}

TEST(ComparatorTest, SmallAbsoluteTimeNoiseIsIgnored) {
  // 0.01 s -> 0.05 s is 5x relative but within the 0.05 s absolute
  // floor: cross-machine variance, not a regression. 0.07 s clears
  // both bars and fails.
  BenchRecord baseline = MakeRecord();
  baseline.SetMetric("seconds", 0.01);
  BenchRecord current = baseline;
  current.SetMetric("seconds", 0.05);
  EXPECT_TRUE(CompareRecord(baseline, current).passed);
  current.SetMetric("seconds", 0.07);
  EXPECT_FALSE(CompareRecord(baseline, current).passed);
}

TEST(ComparatorTest, QualityDriftFailsBothDirections) {
  const BenchRecord baseline = MakeRecord();
  BenchRecord worse = baseline;
  worse.SetMetric("replication_factor", 2.375 * 1.10);
  EXPECT_FALSE(CompareRecord(baseline, worse).passed);
  BenchRecord better = baseline;
  better.SetMetric("replication_factor", 2.375 * 0.90);
  const ScenarioComparison comparison = CompareRecord(baseline, better);
  EXPECT_FALSE(comparison.passed);  // unexpected change: re-pin the baseline
  for (const MetricCheck& check : comparison.checks) {
    if (check.metric == "replication_factor") {
      EXPECT_EQ(check.status, MetricStatus::kDrifted);
    }
  }
}

TEST(ComparatorTest, MissingMetricFails) {
  const BenchRecord baseline = MakeRecord();
  BenchRecord current = baseline;
  current.metrics.erase(current.metrics.begin());  // drop "seconds"
  const ScenarioComparison comparison = CompareRecord(baseline, current);
  EXPECT_FALSE(comparison.passed);
  EXPECT_EQ(comparison.checks.front().status, MetricStatus::kMissing);
}

TEST(ComparatorTest, ExtraMetricIsNotedNotFailed) {
  const BenchRecord baseline = MakeRecord();
  BenchRecord current = baseline;
  current.SetMetric("brand_new_metric", 1.0);
  const ScenarioComparison comparison = CompareRecord(baseline, current);
  EXPECT_TRUE(comparison.passed);
  bool saw_new = false;
  for (const MetricCheck& check : comparison.checks) {
    saw_new = saw_new || check.status == MetricStatus::kNewMetric;
  }
  EXPECT_TRUE(saw_new);
}

TEST(ComparatorTest, InformationalMetricsNeverFail) {
  const BenchRecord baseline = MakeRecord();
  BenchRecord current = baseline;
  current.SetMetric("peak_rss_bytes", 12345678.0 * 100);
  current.SetMetric("phase_seconds/clustering", 50.0);
  EXPECT_TRUE(CompareRecord(baseline, current).passed);
}

TEST(ComparatorTest, ConfigDriftFails) {
  const BenchRecord baseline = MakeRecord();
  BenchRecord current = baseline;
  current.k = 64;
  const ScenarioComparison comparison = CompareRecord(baseline, current);
  EXPECT_FALSE(comparison.passed);
  ASSERT_FALSE(comparison.notes.empty());
}

TEST(ComparatorTest, ThreadMismatchIsConfigDrift) {
  const BenchRecord baseline = MakeRecord();
  BenchRecord current = baseline;
  current.threads = 4;
  const ScenarioComparison comparison = CompareRecord(baseline, current);
  EXPECT_FALSE(comparison.passed);
  ASSERT_FALSE(comparison.notes.empty());
  EXPECT_NE(comparison.notes[0].find("threads"), std::string::npos);
}

TEST(ComparatorTest, MaxRssGatesOutOfCoreRegressions) {
  // max_rss_bytes is the out-of-core honesty gate: upper-only, wide
  // band + absolute floor for allocator noise, but an O(|E|)-sized
  // rematerialization must fail.
  const ToleranceSpec spec = DefaultToleranceFor("max_rss_bytes");
  EXPECT_FALSE(spec.informational);
  EXPECT_TRUE(spec.upper_only);

  BenchRecord baseline = MakeRecord();
  baseline.SetMetric("max_rss_bytes", 64.0 * 1024 * 1024);

  // +10 MB: under the absolute floor — allocator/platform noise.
  BenchRecord noisy = baseline;
  noisy.SetMetric("max_rss_bytes", 74.0 * 1024 * 1024);
  EXPECT_TRUE(CompareRecord(baseline, noisy).passed);

  // Leaner run: improvement, never a failure (upper-only).
  BenchRecord leaner = baseline;
  leaner.SetMetric("max_rss_bytes", 16.0 * 1024 * 1024);
  EXPECT_TRUE(CompareRecord(baseline, leaner).passed);

  // 4x resident memory: the edge set came back — regression.
  BenchRecord bloated = baseline;
  bloated.SetMetric("max_rss_bytes", 256.0 * 1024 * 1024);
  const ScenarioComparison comparison = CompareRecord(baseline, bloated);
  EXPECT_FALSE(comparison.passed);
}

TEST(ComparatorTest, ParallelWallTimeIsGatedOneSided) {
  // A gross wall-time blowup at threads=4 is a regression (a parallel
  // path that re-serialized shows up as a multiple); the engine clamps
  // workers to the pool, so the worst case on any machine shape is the
  // sequential algorithm and the one-sided band stays meaningful.
  BenchRecord baseline = MakeRecord();
  baseline.threads = 4;
  BenchRecord current = baseline;
  current.SetMetric("seconds", 0.125 * 50);
  EXPECT_FALSE(CompareRecord(baseline, current).passed);

  // Within the generous rel band (and faster runs) still pass.
  BenchRecord mild = baseline;
  mild.SetMetric("seconds", 0.125 * 2.5);
  EXPECT_TRUE(CompareRecord(baseline, mild).passed);
  BenchRecord faster = baseline;
  faster.SetMetric("seconds", 0.125 * 0.3);
  EXPECT_TRUE(CompareRecord(baseline, faster).passed);

  const ToleranceSpec parallel = DefaultToleranceFor("seconds", 4);
  EXPECT_FALSE(parallel.informational);
  EXPECT_TRUE(parallel.upper_only);
  const ToleranceSpec sequential = DefaultToleranceFor("seconds", 1);
  EXPECT_FALSE(sequential.informational);
  EXPECT_EQ(parallel.rel, sequential.rel);
}

TEST(ComparatorTest, ParallelQualityStillGatedTwoSided) {
  BenchRecord baseline = MakeRecord();
  baseline.threads = 4;
  // 5% rf noise from interleaving: inside the widened parallel band.
  BenchRecord noisy = baseline;
  noisy.SetMetric("replication_factor", 2.375 * 1.05);
  EXPECT_TRUE(CompareRecord(baseline, noisy).passed);
  // A 15% move in either direction is a real quality change.
  BenchRecord worse = baseline;
  worse.SetMetric("replication_factor", 2.375 * 1.15);
  EXPECT_FALSE(CompareRecord(baseline, worse).passed);
  BenchRecord better = baseline;
  better.SetMetric("replication_factor", 2.375 * 0.85);
  EXPECT_FALSE(CompareRecord(baseline, better).passed);
  // The widened band is parallel-only: at threads=1 quality is
  // deterministic and 5% would already fail.
  EXPECT_FALSE(CompareRecord(MakeRecord(), [] {
                 BenchRecord record = MakeRecord();
                 record.SetMetric("replication_factor", 2.375 * 1.05);
                 return record;
               }()).passed);
}

TEST(ComparatorTest, NewScenarioPassesAndStaleBaselineIsFlagged) {
  BenchRecord baseline = MakeRecord();
  baseline.scenario = "retired_scenario";
  BenchRecord current = MakeRecord();
  const ComparisonReport report = CompareRecords({baseline}, {current});
  EXPECT_TRUE(report.passed);
  ASSERT_EQ(report.scenarios.size(), 1u);
  EXPECT_TRUE(report.scenarios[0].is_new);
  ASSERT_EQ(report.stale_baselines.size(), 1u);
  EXPECT_EQ(report.stale_baselines[0], "retired_scenario");
  EXPECT_NE(report.ToString().find("PASS"), std::string::npos);
}

// ---------------------------------------------------------------------------
// ScaleShift env parsing (hardened against silent atoi garbage)
// ---------------------------------------------------------------------------

TEST(ParseThreadCountTest, AcceptsRangeRejectsGarbage) {
  uint32_t threads = 0;
  EXPECT_TRUE(ParseThreadCount("1", &threads));
  EXPECT_EQ(threads, 1u);
  EXPECT_TRUE(ParseThreadCount("1024", &threads));
  EXPECT_EQ(threads, 1024u);
  for (const char* bad :
       {"0", "-1", "1025", "abc", "4abc", "", " ", "1e2"}) {
    EXPECT_FALSE(ParseThreadCount(bad, &threads)) << "'" << bad << "'";
  }
  EXPECT_FALSE(ParseThreadCount(nullptr, &threads));
}

TEST(ScaleShiftTest, ParsesValidValuesAndRejectsGarbage) {
  unsetenv("TPSL_SCALE_SHIFT");
  EXPECT_EQ(ScaleShift(2), 2);
  setenv("TPSL_SCALE_SHIFT", "5", 1);
  EXPECT_EQ(ScaleShift(2), 5);
  setenv("TPSL_SCALE_SHIFT", "0", 1);
  EXPECT_EQ(ScaleShift(2), 0);
  for (const char* garbage : {"abc", "3abc", "", " ", "-1", "31", "1e3"}) {
    setenv("TPSL_SCALE_SHIFT", garbage, 1);
    EXPECT_EQ(ScaleShift(2), 2) << "value: '" << garbage << "'";
  }
  unsetenv("TPSL_SCALE_SHIFT");
}

// ---------------------------------------------------------------------------
// End-to-end scenario run
// ---------------------------------------------------------------------------

TEST(RunnerTest, RegistryHasTheContractedCoverage) {
  const std::vector<Scenario>& scenarios = PinnedScenarios();
  EXPECT_GE(scenarios.size(), 8u);
  bool has_2psl = false;
  std::set<std::string> baselines;
  for (const Scenario& scenario : scenarios) {
    has_2psl = has_2psl || scenario.partitioner == "2PS-L";
    if (scenario.partitioner != "2PS-L") {
      baselines.insert(scenario.partitioner);
    }
    EXPECT_NE(FindScenario(scenario.name), nullptr);
  }
  EXPECT_TRUE(has_2psl);
  EXPECT_GE(baselines.size(), 3u);
  EXPECT_EQ(FindScenario("no_such_scenario"), nullptr);
}

TEST(RunnerTest, EndToEndScenarioPopulatesFiniteMetrics) {
  const Scenario* scenario = FindScenario("2psl_ok_k32");
  ASSERT_NE(scenario, nullptr);
  RunScenarioOptions options;
  options.extra_scale_shift = 4;  // keep the unit test in milliseconds
  auto record = RunScenario(*scenario, options);
  ASSERT_TRUE(record.ok()) << record.status();

  EXPECT_EQ(record->scenario, scenario->name);
  EXPECT_EQ(record->partitioner, "2PS-L");
  EXPECT_EQ(record->k, 32u);
  EXPECT_EQ(record->scale_shift, scenario->scale_shift + 4);
  EXPECT_EQ(record->threads, scenario->threads);
  for (const char* name : {"seconds", "replication_factor", "measured_alpha",
                           "state_bytes", "num_edges", "peak_rss_bytes"}) {
    const double* value = record->FindMetric(name);
    ASSERT_NE(value, nullptr) << name;
    EXPECT_TRUE(std::isfinite(*value)) << name;
    EXPECT_GE(*value, 0.0) << name;
  }
  EXPECT_GE(*record->FindMetric("replication_factor"), 1.0);
  EXPECT_GT(*record->FindMetric("num_edges"), 0.0);
  EXPECT_GT(*record->FindMetric("peak_rss_bytes"), 0.0);
  // The 2PS partitioners account at least one named phase.
  bool has_phase = false;
  for (const auto& [name, value] : record->metrics) {
    has_phase = has_phase || name.starts_with("phase_seconds/");
  }
  EXPECT_TRUE(has_phase);

  // A fresh run of the same pinned scenario reproduces every
  // deterministic metric bit-for-bit — the property the baseline gate
  // stands on.
  auto again = RunScenario(*scenario, options);
  ASSERT_TRUE(again.ok()) << again.status();
  for (const char* name :
       {"replication_factor", "measured_alpha", "num_edges"}) {
    EXPECT_EQ(*record->FindMetric(name), *again->FindMetric(name)) << name;
  }
}

TEST(ScenarioRegistryTest, SuggestsClosestNamesForTypos) {
  // One edit away from a pinned name resolves to it first.
  const auto close = SuggestScenarioNames("serve_ok_k32_r44");
  ASSERT_FALSE(close.empty());
  EXPECT_EQ(close.front(), "serve_ok_k32_r4");
  // A substring matches even when the full name is many edits away.
  const auto substring = SuggestScenarioNames("serve_ok");
  ASSERT_FALSE(substring.empty());
  EXPECT_TRUE(substring.front().starts_with("serve_ok_k32"));
  // Garbage nowhere near the registry suggests nothing.
  EXPECT_TRUE(SuggestScenarioNames("xqzzjvwpf").empty());
  EXPECT_LE(SuggestScenarioNames("2psl").size(), 3u);
}

TEST(ScenarioRegistryTest, ServeScenariosGateServingMetrics) {
  const Scenario* scenario = FindScenario("serve_ok_k32_r4");
  ASSERT_NE(scenario, nullptr);
  EXPECT_EQ(scenario->kind, ScenarioKind::kServe);
  const std::vector<std::string> gated = GatedMetricsForScenario(*scenario);
  for (const char* required :
       {"lookup_qps", "mutation_qps", "lookup_p50_seconds",
        "lookup_p99_seconds", "live_edges", "replication_factor",
        "epochs_published", "rebootstraps"}) {
    EXPECT_NE(std::find(gated.begin(), gated.end(), required), gated.end())
        << required;
  }
}

}  // namespace
}  // namespace benchkit
}  // namespace tpsl

// The parallel pipeline's exactness contracts: the sharded quality
// sink must agree with the sequential StreamingQualitySink oracle to
// the last bit under any interleaving, the async handoff must deliver
// every assignment (in order for a single producer), and the parallel
// clustering pass must be byte-identical to the sequential Algorithm 1
// when inline (threads=1). The concurrent tests double as the tsan
// hammer for the sink protocol.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "baselines/ne.h"
#include "baselines/registry.h"
#include "core/streaming_clustering.h"
#include "core/two_phase_partitioner.h"
#include "exec/thread_pool.h"
#include "graph/degrees.h"
#include "graph/generators.h"
#include "graph/in_memory_edge_stream.h"
#include "partition/runner.h"
#include "partition/sink_pipeline.h"

namespace tpsl {
namespace {

/// Same three seeded families as the state-kernel identity oracle:
/// skewed social (R-MAT), strong communities (planted partition), and
/// uniform (Erdős–Rényi).
std::vector<Edge> MakeFamily(const std::string& family) {
  if (family == "social") {
    RmatConfig config;
    config.scale = 11;
    config.edge_factor = 8;
    return GenerateRmat(config);
  }
  if (family == "community") {
    PlantedPartitionConfig config;
    config.num_vertices = 2048;
    config.num_edges = 16000;
    config.num_communities = 32;
    return GeneratePlantedPartition(config);
  }
  ErdosRenyiConfig config;
  config.num_vertices = 2048;
  config.num_edges = 16000;
  return GenerateErdosRenyi(config);
}

/// Materializes the assignment stream so the same decisions can be fed
/// to both quality sinks.
class RecordingSink : public AssignmentSink {
 public:
  void Assign(const Edge& edge, PartitionId partition) override {
    assignments_.push_back({edge, partition});
  }
  const std::vector<Assignment>& assignments() const { return assignments_; }

 private:
  std::vector<Assignment> assignments_;
};

/// Feeds the recorded stream to a ShardedQualitySink from
/// `num_threads` concurrent producers (work-stealing over fixed
/// chunks, so the shard interleaving differs run to run) and returns
/// the merged quality.
PartitionQuality FeedSharded(const std::vector<Assignment>& assignments,
                             uint32_t k, uint32_t num_threads) {
  ShardedQualitySink sink(k, num_threads);
  constexpr size_t kChunk = 512;
  const size_t num_chunks = (assignments.size() + kChunk - 1) / kChunk;
  std::atomic<size_t> next_chunk{0};
  std::vector<std::thread> producers;
  producers.reserve(num_threads);
  for (uint32_t t = 0; t < num_threads; ++t) {
    producers.emplace_back([&]() {
      for (;;) {
        const size_t c = next_chunk.fetch_add(1);
        if (c >= num_chunks) {
          return;
        }
        const size_t lo = c * kChunk;
        const size_t hi = std::min(assignments.size(), lo + kChunk);
        sink.AssignBatch(assignments.data() + lo, hi - lo);
      }
    });
  }
  for (std::thread& producer : producers) {
    producer.join();
  }
  return sink.Quality();
}

void ExpectExactlyEqual(const PartitionQuality& a, const PartitionQuality& b,
                        const std::string& label) {
  EXPECT_EQ(a.replication_factor, b.replication_factor) << label;
  EXPECT_EQ(a.measured_alpha, b.measured_alpha) << label;
  EXPECT_EQ(a.num_edges, b.num_edges) << label;
  EXPECT_EQ(a.num_covered_vertices, b.num_covered_vertices) << label;
  EXPECT_EQ(a.max_partition_size, b.max_partition_size) << label;
  EXPECT_EQ(a.min_partition_size, b.min_partition_size) << label;
  EXPECT_EQ(a.partition_sizes, b.partition_sizes) << label;
}

/// The exactness property the runner's parallel path rests on: for the
/// real assignment stream of each registry partitioner, the sharded
/// sink fed from 1, 2 or 4 concurrent producers matches the sequential
/// oracle field for field, bit for bit — replication bits are
/// idempotent and loads are sums, so the merge is order-independent
/// and the final arithmetic is shared.
TEST(ShardedQualitySinkTest, MatchesSequentialOracleExactly) {
  const std::vector<std::string> partitioners = {
      "2PS-L", "2PS-HDRF", "HDRF", "DBH", "Greedy", "NE"};
  const std::vector<std::string> families = {"social", "community",
                                             "uniform"};
  const uint32_t k = 8;
  for (const std::string& family : families) {
    const std::vector<Edge> edges = MakeFamily(family);
    for (const std::string& name : partitioners) {
      auto partitioner = MakePartitioner(name);
      ASSERT_TRUE(partitioner.ok()) << name;
      InMemoryEdgeStream stream(edges);
      PartitionConfig config;
      config.num_partitions = k;
      config.exec.threads = 1;
      RecordingSink recorded;
      ASSERT_TRUE(
          (*partitioner)->Partition(stream, config, recorded, nullptr).ok())
          << name << " on " << family;

      StreamingQualitySink sequential(k);
      sequential.AssignBatch(recorded.assignments().data(),
                             recorded.assignments().size());
      const PartitionQuality oracle = sequential.Quality();
      for (const uint32_t threads : {1u, 2u, 4u}) {
        ExpectExactlyEqual(
            FeedSharded(recorded.assignments(), k, threads), oracle,
            name + "/" + family + "/t" + std::to_string(threads));
      }
    }
  }
}

TEST(ShardedQualitySinkTest, EmptyAndSingleAssignment) {
  ShardedQualitySink empty(4, 2);
  const PartitionQuality none = empty.Quality();
  EXPECT_EQ(none.num_edges, 0u);
  EXPECT_EQ(none.replication_factor, 0.0);

  ShardedQualitySink one(4, 2);
  one.Assign({7, 9}, 2);
  const PartitionQuality q = one.Quality();
  EXPECT_EQ(q.num_edges, 1u);
  EXPECT_EQ(q.num_covered_vertices, 2u);
  EXPECT_EQ(q.replication_factor, 1.0);
}

/// A single sequential producer through the handoff must reach the
/// downstream sink complete and in submission order: the queue is
/// FIFO and one drainer delivers chunk by chunk.
TEST(AsyncHandoffSinkTest, PreservesOrderForSequentialProducer) {
  RecordingSink downstream;
  AsyncHandoffSink handoff(&downstream, /*max_queued_chunks=*/4);
  constexpr uint32_t kTotal = 10000;
  std::vector<Assignment> batch;
  for (uint32_t i = 0; i < kTotal; ++i) {
    batch.push_back({{i, i + 1}, static_cast<PartitionId>(i % 7)});
    if (batch.size() == 256) {
      handoff.AssignBatch(batch.data(), batch.size());
      batch.clear();
    }
  }
  handoff.AssignBatch(batch.data(), batch.size());
  handoff.Finish();
  ASSERT_EQ(downstream.assignments().size(), kTotal);
  for (uint32_t i = 0; i < kTotal; ++i) {
    EXPECT_EQ(downstream.assignments()[i].edge.first, i);
    EXPECT_EQ(downstream.assignments()[i].partition,
              static_cast<PartitionId>(i % 7));
  }
}

/// A downstream that silently drops assignments past a budget and
/// latches the failure in Health() — the shape of a spill writer
/// hitting a full disk (Assign has no error channel).
class FailingSink : public AssignmentSink {
 public:
  explicit FailingSink(uint64_t capacity) : capacity_(capacity) {}

  void Assign(const Edge& edge, PartitionId partition) override {
    (void)edge;
    (void)partition;
    if (accepted_ >= capacity_) {
      failed_ = true;
      return;
    }
    ++accepted_;
  }

  Status Health() const override {
    return failed_ ? Status::IoError("simulated disk full") : Status::OK();
  }

  uint64_t accepted() const { return accepted_; }

 private:
  const uint64_t capacity_;
  uint64_t accepted_ = 0;
  bool failed_ = false;
};

/// The handoff's drainer is the only thread that sees the downstream
/// mid-pass, so it must latch the downstream's failure and surface it
/// through the handoff's own Health() — the runner polls the pipeline,
/// never the wrapped sink.
TEST(AsyncHandoffSinkTest, PropagatesDownstreamFailureMidDrain) {
  FailingSink failing(/*capacity=*/1000);
  AsyncHandoffSink handoff(&failing, /*max_queued_chunks=*/4);
  std::vector<Assignment> chunk(256);
  for (uint32_t c = 0; c < 32; ++c) {
    for (uint32_t i = 0; i < chunk.size(); ++i) {
      const uint32_t n = c * 256 + i;
      chunk[i] = {{n, n + 1}, static_cast<PartitionId>(n % 4)};
    }
    handoff.AssignBatch(chunk.data(), chunk.size());
  }
  handoff.Finish();
  // 32 × 256 = 8192 submitted against a 1000-capacity downstream: the
  // failure latched mid-drain must be visible after Finish() and stay
  // sticky on repeated queries.
  EXPECT_FALSE(handoff.Health().ok());
  EXPECT_FALSE(handoff.Health().ok());
  EXPECT_EQ(failing.accepted(), 1000u);
}

/// Before any batch is queued there is no drainer; Health() must fall
/// through to the downstream directly so a pre-failed sink is visible
/// without pushing a single assignment.
TEST(AsyncHandoffSinkTest, ReportsDownstreamFailureWithoutDrainer) {
  FailingSink failing(/*capacity=*/0);
  failing.Assign({1, 2}, 0);  // trip the failure directly
  AsyncHandoffSink handoff(&failing, /*max_queued_chunks=*/4);
  EXPECT_FALSE(handoff.Health().ok());
}

/// A healthy downstream keeps the handoff healthy across the full
/// produce/drain/finish cycle.
TEST(AsyncHandoffSinkTest, HealthyDownstreamStaysHealthy) {
  CountingSink counting(4);
  AsyncHandoffSink handoff(&counting, /*max_queued_chunks=*/4);
  std::vector<Assignment> chunk(128);
  for (uint32_t i = 0; i < chunk.size(); ++i) {
    chunk[i] = {{i, i + 1}, static_cast<PartitionId>(i % 4)};
  }
  handoff.AssignBatch(chunk.data(), chunk.size());
  EXPECT_TRUE(handoff.Health().ok());
  handoff.Finish();
  EXPECT_TRUE(handoff.Health().ok());
  EXPECT_EQ(counting.total(), chunk.size());
}

/// The tsan hammer for the runner's threads>1 pipeline shape: four
/// producers slam a TeeSink fanning to a sharded quality sink and an
/// async handoff over a sequential counting sink, exactly the
/// concurrent half of the runner's assembly. Every assignment must be
/// counted once on both branches.
TEST(ParallelPipelineTest, ConcurrentProducersThroughTeeAndHandoff) {
  const uint32_t k = 16;
  constexpr uint32_t kProducers = 4;
  constexpr uint32_t kChunksPerProducer = 64;
  constexpr uint32_t kChunkSize = 384;

  ShardedQualitySink sharded(k, kProducers);
  CountingSink counting(k);
  AsyncHandoffSink handoff(&counting, /*max_queued_chunks=*/8);
  TeeSink tee{&sharded, &handoff};
  ASSERT_TRUE(tee.ConcurrentSafe());

  std::vector<std::thread> producers;
  for (uint32_t t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t]() {
      std::vector<Assignment> chunk(kChunkSize);
      for (uint32_t c = 0; c < kChunksPerProducer; ++c) {
        for (uint32_t i = 0; i < kChunkSize; ++i) {
          const uint32_t n = (t * kChunksPerProducer + c) * kChunkSize + i;
          chunk[i] = {{n % 1024, (n / 2) % 1024},
                      static_cast<PartitionId>(n % k)};
        }
        tee.AssignBatch(chunk.data(), chunk.size());
      }
    });
  }
  for (std::thread& producer : producers) {
    producer.join();
  }
  handoff.Finish();

  const uint64_t expected =
      uint64_t{kProducers} * kChunksPerProducer * kChunkSize;
  EXPECT_EQ(counting.total(), expected);
  EXPECT_EQ(sharded.Quality().num_edges, expected);
}

/// End-to-end exactness through RunPartitioner: NE's assignment stream
/// is identical at any thread count (the parallel adjacency build is a
/// stable counting sort), so the threads=4 run — which scores through
/// the sharded sink and validates through the async handoff — must
/// reproduce the threads=1 quality to the last bit.
TEST(ParallelPipelineTest, RunnerParallelQualityMatchesSequentialForNe) {
  RmatConfig rmat;
  rmat.scale = 12;
  rmat.edge_factor = 8;
  const auto edges = GenerateRmat(rmat);

  NePartitioner sequential_ne;
  InMemoryEdgeStream stream_a(edges);
  PartitionConfig config_t1;
  config_t1.num_partitions = 16;
  config_t1.exec.threads = 1;
  auto t1 = RunPartitioner(sequential_ne, stream_a, config_t1);
  ASSERT_TRUE(t1.ok()) << t1.status().ToString();

  exec::ThreadPool pool(4);
  NePartitioner parallel_ne;
  InMemoryEdgeStream stream_b(edges);
  PartitionConfig config_t4;
  config_t4.num_partitions = 16;
  config_t4.exec.threads = 4;
  config_t4.exec.pool = &pool;
  auto t4 = RunPartitioner(parallel_ne, stream_b, config_t4);
  ASSERT_TRUE(t4.ok()) << t4.status().ToString();

  ExpectExactlyEqual(t4->quality, t1->quality, "NE t4 vs t1");
}

/// The parallel 2PS-L partitioner through the full threads=4 runner
/// pipeline (sharded quality + handoff validation) must still satisfy
/// the partitioning contract on a real pool.
TEST(ParallelPipelineTest, RunnerParallel2pslSatisfiesContract) {
  RmatConfig rmat;
  rmat.scale = 12;
  rmat.edge_factor = 8;
  const auto edges = GenerateRmat(rmat);

  auto partitioner = MakePartitioner("2PS-L(par)");
  ASSERT_TRUE(partitioner.ok());
  exec::ThreadPool pool(4);
  InMemoryEdgeStream stream(edges);
  PartitionConfig config;
  config.num_partitions = 32;
  config.exec.threads = 4;
  config.exec.pool = &pool;
  auto result = RunPartitioner(**partitioner, stream, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->quality.num_edges, edges.size());
  EXPECT_GE(result->quality.replication_factor, 1.0);
}

/// The inline identity behind the unchanged 2psl golden digests: with
/// threads=1 the engine runs in order, and the founding-vertex
/// labeling compacts to exactly the allocation-order labels of the
/// sequential pass — the whole Clustering must match, not just its
/// quality, across passes and cap settings.
TEST(ParallelClusteringTest, InlineMatchesSequentialExactly) {
  struct Variant {
    const char* label;
    ClusteringConfig config;
  };
  std::vector<Variant> variants;
  variants.push_back({"default", {}});
  {
    ClusteringConfig two_passes;
    two_passes.num_passes = 2;
    variants.push_back({"two-pass", two_passes});
  }
  {
    ClusteringConfig uncapped;
    uncapped.enforce_volume_cap = false;
    variants.push_back({"uncapped", uncapped});
  }

  for (const std::string family : {"social", "community", "uniform"}) {
    const std::vector<Edge> edges = MakeFamily(family);
    InMemoryEdgeStream stream(edges);
    auto degrees = ComputeDegrees(stream);
    ASSERT_TRUE(degrees.ok());
    for (const Variant& variant : variants) {
      auto sequential =
          StreamingClustering(stream, *degrees, 8, variant.config);
      ASSERT_TRUE(sequential.ok()) << variant.label;
      exec::ExecContext inline_exec;
      inline_exec.threads = 1;
      auto parallel = ParallelStreamingClustering(stream, *degrees, 8,
                                                  variant.config, inline_exec);
      ASSERT_TRUE(parallel.ok()) << variant.label;
      EXPECT_EQ(parallel->vertex_cluster, sequential->vertex_cluster)
          << family << "/" << variant.label;
      EXPECT_EQ(parallel->cluster_volumes, sequential->cluster_volumes)
          << family << "/" << variant.label;
    }
  }
}

/// With real concurrency the clustering may drift in quality but never
/// in correctness: every non-isolated vertex lands in exactly one
/// compacted cluster, and the returned volumes are the exact member
/// degree sums (they are recomputed from final membership, not from
/// the racy accumulators).
TEST(ParallelClusteringTest, ManyThreadInvariants) {
  RmatConfig rmat;
  rmat.scale = 12;
  rmat.edge_factor = 8;
  const auto edges = GenerateRmat(rmat);
  InMemoryEdgeStream stream(edges);
  auto degrees = ComputeDegrees(stream);
  ASSERT_TRUE(degrees.ok());

  exec::ThreadPool pool(4);
  exec::ExecContext exec;
  exec.threads = 4;
  exec.pool = &pool;
  exec.batch_size = 1024;
  auto clustering =
      ParallelStreamingClustering(stream, *degrees, 8, {}, exec);
  ASSERT_TRUE(clustering.ok()) << clustering.status().ToString();

  std::vector<uint64_t> recomputed(clustering->num_clusters(), 0);
  uint64_t clustered_volume = 0;
  ASSERT_EQ(clustering->vertex_cluster.size(), degrees->degrees.size());
  for (VertexId v = 0; v < clustering->vertex_cluster.size(); ++v) {
    const ClusterId c = clustering->vertex_cluster[v];
    if (c == kInvalidCluster) {
      EXPECT_EQ(degrees->degree(v), 0u) << v;
      continue;
    }
    ASSERT_LT(c, clustering->num_clusters());
    recomputed[c] += degrees->degree(v);
    clustered_volume += degrees->degree(v);
  }
  EXPECT_EQ(recomputed, clustering->cluster_volumes);
  EXPECT_EQ(clustered_volume, degrees->TotalVolume());
}

}  // namespace
}  // namespace tpsl

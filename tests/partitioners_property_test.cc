#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "baselines/registry.h"
#include "graph/generators.h"
#include "graph/in_memory_edge_stream.h"
#include "partition/runner.h"

namespace tpsl {
namespace {

/// Contract properties every partitioner must satisfy on every graph
/// and every k (paper §II-A):
///  (a) each edge assigned exactly once,
///  (b) the hard cap α·|E|/k respected (when the partitioner promises
///      it),
///  (c) RF >= 1 and RF <= min(k, max-degree bound),
///  (d) deterministic output under a fixed seed.
/// Parameterized sweep: partitioner name × graph kind × k.

enum class GraphKind { kSocial, kCommunity, kUniform, kTiny };

std::vector<Edge> MakeGraph(GraphKind kind) {
  switch (kind) {
    case GraphKind::kSocial: {
      RmatConfig config;
      config.scale = 11;
      config.edge_factor = 8;
      return GenerateRmat(config);
    }
    case GraphKind::kCommunity: {
      PlantedPartitionConfig config;
      config.num_vertices = 2048;
      config.num_edges = 16000;
      config.num_communities = 32;
      return GeneratePlantedPartition(config);
    }
    case GraphKind::kUniform: {
      ErdosRenyiConfig config;
      config.num_vertices = 2048;
      config.num_edges = 16000;
      return GenerateErdosRenyi(config);
    }
    case GraphKind::kTiny:
      return {{0, 1}, {1, 2}, {2, 0}, {0, 3}, {3, 3}};
  }
  return {};
}

const char* GraphKindName(GraphKind kind) {
  switch (kind) {
    case GraphKind::kSocial:
      return "social";
    case GraphKind::kCommunity:
      return "community";
    case GraphKind::kUniform:
      return "uniform";
    case GraphKind::kTiny:
      return "tiny";
  }
  return "?";
}

using ParamType = std::tuple<std::string, GraphKind, uint32_t>;

class PartitionerContractTest : public testing::TestWithParam<ParamType> {};

TEST_P(PartitionerContractTest, SatisfiesPartitioningContract) {
  const auto& [name, kind, k] = GetParam();
  auto partitioner_or = MakePartitioner(name);
  ASSERT_TRUE(partitioner_or.ok());

  const std::vector<Edge> edges = MakeGraph(kind);
  InMemoryEdgeStream stream(edges);
  PartitionConfig config;
  config.num_partitions = k;

  // RunPartitioner validates (a) every edge assigned once and (b) the
  // capacity bound for cap-enforcing partitioners.
  auto result = RunPartitioner(**partitioner_or, stream, config);
  ASSERT_TRUE(result.ok()) << name << ": " << result.status().ToString();

  // (c) replication factor bounds.
  if (!edges.empty()) {
    EXPECT_GE(result->quality.replication_factor, 1.0) << name;
    EXPECT_LE(result->quality.replication_factor, static_cast<double>(k))
        << name;
  }
  EXPECT_EQ(result->quality.partition_sizes.size(), k) << name;
}

TEST_P(PartitionerContractTest, DeterministicUnderFixedSeed) {
  const auto& [name, kind, k] = GetParam();
  if (name == "DNE") {
    GTEST_SKIP() << "DNE is parallel; thread interleaving is not seeded";
  }
  auto partitioner_or = MakePartitioner(name);
  ASSERT_TRUE(partitioner_or.ok());

  const std::vector<Edge> edges = MakeGraph(kind);
  InMemoryEdgeStream stream(edges);
  PartitionConfig config;
  config.num_partitions = k;

  EdgeListSink sink_a(k), sink_b(k);
  ASSERT_TRUE(
      (*partitioner_or)->Partition(stream, config, sink_a, nullptr).ok());
  ASSERT_TRUE(
      (*partitioner_or)->Partition(stream, config, sink_b, nullptr).ok());
  EXPECT_EQ(sink_a.partitions(), sink_b.partitions()) << name;
}

TEST_P(PartitionerContractTest, StreamingQualityMatchesOracleExactly) {
  // The runner's default quality now comes from StreamingQualitySink
  // (online loads + replication bitsets, no edge lists). ComputeQuality
  // over the materialized partitions of the SAME run is the
  // independent oracle; the two must agree bit for bit — same integer
  // tallies, same double arithmetic — for every registry partitioner
  // on every graph family and k. (DNE is scheduling-dependent across
  // runs, but oracle and sink observe one identical run here.)
  const auto& [name, kind, k] = GetParam();
  auto partitioner_or = MakePartitioner(name);
  ASSERT_TRUE(partitioner_or.ok());

  const std::vector<Edge> edges = MakeGraph(kind);
  InMemoryEdgeStream stream(edges);
  PartitionConfig config;
  config.num_partitions = k;
  RunOptions options;
  options.keep_partitions = true;

  auto result = RunPartitioner(**partitioner_or, stream, config, options);
  ASSERT_TRUE(result.ok()) << name << ": " << result.status().ToString();

  const PartitionQuality oracle = ComputeQuality(result->partitions);
  EXPECT_DOUBLE_EQ(result->quality.replication_factor,
                   oracle.replication_factor)
      << name;
  EXPECT_DOUBLE_EQ(result->quality.measured_alpha, oracle.measured_alpha)
      << name;
  EXPECT_EQ(result->quality.num_edges, oracle.num_edges) << name;
  EXPECT_EQ(result->quality.num_covered_vertices,
            oracle.num_covered_vertices)
      << name;
  EXPECT_EQ(result->quality.max_partition_size, oracle.max_partition_size)
      << name;
  EXPECT_EQ(result->quality.min_partition_size, oracle.min_partition_size)
      << name;
  EXPECT_EQ(result->quality.partition_sizes, oracle.partition_sizes) << name;
}

std::string ParamName(const testing::TestParamInfo<ParamType>& info) {
  std::string name = std::get<0>(info.param);
  for (char& c : name) {
    if (c == '-' || c == '*') {
      c = '_';
    }
  }
  return name + "_" + GraphKindName(std::get<1>(info.param)) + "_k" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllPartitioners, PartitionerContractTest,
    testing::Combine(
        testing::Values("2PS-L", "2PS-HDRF", "HDRF", "DBH", "Grid", "Hash",
                        "Greedy", "ADWISE", "NE", "SNE", "DNE", "HEP-1",
                        "HEP-10", "HEP-100", "METIS*"),
        testing::Values(GraphKind::kSocial, GraphKind::kCommunity,
                        GraphKind::kUniform, GraphKind::kTiny),
        testing::Values(2u, 5u, 32u)),
    ParamName);

TEST(RegistryTest, UnknownNameIsNotFound) {
  auto result = MakePartitioner("FancyNewThing");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(RegistryTest, RosterNamesAllResolve) {
  for (const std::string& name : Fig4PartitionerNames()) {
    EXPECT_TRUE(MakePartitioner(name).ok()) << name;
  }
  for (const std::string& name : StreamingPartitionerNames()) {
    EXPECT_TRUE(MakePartitioner(name).ok()) << name;
  }
}

/// Quality ordering sanity (weak form of the paper's Fig. 4): on a
/// community graph, clustering/expansion-aware partitioners beat plain
/// hashing by a clear margin.
TEST(QualityOrderingTest, StatefulBeatsStatelessOnCommunityGraph) {
  const std::vector<Edge> edges = MakeGraph(GraphKind::kCommunity);
  PartitionConfig config;
  config.num_partitions = 32;

  const auto rf = [&](const std::string& name) {
    auto partitioner = MakePartitioner(name);
    EXPECT_TRUE(partitioner.ok());
    InMemoryEdgeStream stream(edges);
    auto result = RunPartitioner(**partitioner, stream, config);
    EXPECT_TRUE(result.ok()) << name << ": " << result.status().ToString();
    return result->quality.replication_factor;
  };

  const double hash_rf = rf("Hash");
  EXPECT_LT(rf("2PS-L"), hash_rf);
  EXPECT_LT(rf("HDRF"), hash_rf);
  EXPECT_LT(rf("NE"), hash_rf);
}

}  // namespace
}  // namespace tpsl

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "hypergraph/hypergraph.h"
#include "hypergraph/hypergraph_partitioner.h"

namespace tpsl {
namespace {

Hypergraph TestHypergraph() {
  PlantedHypergraphConfig config;
  config.num_vertices = 1 << 12;
  config.num_hyperedges = 20000;
  config.num_communities = 128;
  config.intra_fraction = 0.9;
  config.seed = 3;
  return GeneratePlantedHypergraph(config);
}

TEST(HypergraphTest, GeneratorBasics) {
  const Hypergraph hg = TestHypergraph();
  EXPECT_GT(hg.edges.size(), 19000u);  // few dropped by pin dedup
  EXPECT_LE(hg.NumVertices(), 1u << 12);
  EXPECT_GT(hg.NumPins(), 2 * hg.edges.size());
  for (const Hyperedge& e : hg.edges) {
    EXPECT_GE(e.pins.size(), 2u);
    EXPECT_LE(e.pins.size(), 8u);
    // Pins are distinct.
    for (size_t i = 0; i < e.pins.size(); ++i) {
      for (size_t j = i + 1; j < e.pins.size(); ++j) {
        EXPECT_NE(e.pins[i], e.pins[j]);
      }
    }
  }
}

TEST(HypergraphTest, GeneratorIsDeterministic) {
  PlantedHypergraphConfig config;
  config.num_hyperedges = 500;
  const Hypergraph a = GeneratePlantedHypergraph(config);
  const Hypergraph b = GeneratePlantedHypergraph(config);
  ASSERT_EQ(a.edges.size(), b.edges.size());
  EXPECT_EQ(a.edges[17], b.edges[17]);
}

TEST(HypergraphTest, StarExpansionEmitsPinMinusOneEdges) {
  Hypergraph hg;
  hg.edges.push_back(Hyperedge{{0, 1, 2, 3}});
  hg.edges.push_back(Hyperedge{{7, 9}});
  StarExpansionStream star(&hg);
  EXPECT_EQ(star.NumEdgesHint(), 4u);
  std::vector<Edge> got;
  ASSERT_TRUE(ForEachEdge(star, [&](const Edge& e) { got.push_back(e); })
                  .ok());
  EXPECT_EQ(got, (std::vector<Edge>{{0, 1}, {0, 2}, {0, 3}, {7, 9}}));
}

TEST(HypergraphTest, StarExpansionSupportsSmallBatches) {
  Hypergraph hg;
  hg.edges.push_back(Hyperedge{{0, 1, 2, 3, 4}});
  StarExpansionStream star(&hg);
  ASSERT_TRUE(star.Reset().ok());
  Edge buffer[2];
  size_t total = 0, n;
  while ((n = star.Next(buffer, 2)) > 0) {
    total += n;
  }
  EXPECT_EQ(total, 4u);
}

struct PartitionerCase {
  const char* name;
  StatusOr<std::vector<PartitionId>> (*run)(
      const Hypergraph&, const HypergraphPartitionConfig&);
};

StatusOr<std::vector<PartitionId>> RunTwoPhase(
    const Hypergraph& hg, const HypergraphPartitionConfig& config) {
  return TwoPhasePartitionHypergraph(hg, config);
}

class HypergraphContractTest
    : public testing::TestWithParam<PartitionerCase> {};

TEST_P(HypergraphContractTest, AssignsAllWithinCap) {
  const Hypergraph hg = TestHypergraph();
  HypergraphPartitionConfig config;
  config.num_partitions = 16;
  auto assignment_or = GetParam().run(hg, config);
  ASSERT_TRUE(assignment_or.ok());
  ASSERT_EQ(assignment_or->size(), hg.edges.size());

  std::vector<uint64_t> loads(16, 0);
  for (const PartitionId p : *assignment_or) {
    ASSERT_LT(p, 16u);
    ++loads[p];
  }
  const uint64_t capacity = config.PartitionCapacity(hg.edges.size());
  const bool enforces_cap = std::string(GetParam().name) != "hash";
  if (enforces_cap) {
    for (const uint64_t load : loads) {
      EXPECT_LE(load, capacity);
    }
  }
}

TEST_P(HypergraphContractTest, RejectsZeroPartitions) {
  const Hypergraph hg = TestHypergraph();
  HypergraphPartitionConfig config;
  config.num_partitions = 0;
  EXPECT_FALSE(GetParam().run(hg, config).ok());
}

INSTANTIATE_TEST_SUITE_P(
    AllHypergraphPartitioners, HypergraphContractTest,
    testing::Values(PartitionerCase{"hash", &HashPartitionHypergraph},
                    PartitionerCase{"minmax", &MinMaxPartitionHypergraph},
                    PartitionerCase{"twophase", &RunTwoPhase}),
    [](const testing::TestParamInfo<PartitionerCase>& info) {
      return std::string(info.param.name);
    });

TEST(HypergraphQualityTest, TwoPhaseBeatsHashing) {
  const Hypergraph hg = TestHypergraph();
  HypergraphPartitionConfig config;
  config.num_partitions = 16;

  auto hash = HashPartitionHypergraph(hg, config);
  auto two_phase = TwoPhasePartitionHypergraph(hg, config);
  ASSERT_TRUE(hash.ok());
  ASSERT_TRUE(two_phase.ok());

  const auto hash_quality = ComputeHypergraphQuality(hg, *hash, 16);
  const auto two_phase_quality =
      ComputeHypergraphQuality(hg, *two_phase, 16);
  EXPECT_LT(two_phase_quality.replication_factor,
            hash_quality.replication_factor);
}

TEST(HypergraphQualityTest, MinMaxBeatsHashing) {
  const Hypergraph hg = TestHypergraph();
  HypergraphPartitionConfig config;
  config.num_partitions = 16;
  auto hash = HashPartitionHypergraph(hg, config);
  auto minmax = MinMaxPartitionHypergraph(hg, config);
  ASSERT_TRUE(hash.ok());
  ASSERT_TRUE(minmax.ok());
  EXPECT_LT(ComputeHypergraphQuality(hg, *minmax, 16).replication_factor,
            ComputeHypergraphQuality(hg, *hash, 16).replication_factor);
}

TEST(HypergraphQualityTest, QualityMetricsOnKnownInstance) {
  Hypergraph hg;
  hg.edges.push_back(Hyperedge{{0, 1, 2}});
  hg.edges.push_back(Hyperedge{{2, 3}});
  const std::vector<PartitionId> assignment = {0, 1};
  const auto quality = ComputeHypergraphQuality(hg, assignment, 2);
  // Covers: {0,1,2} and {2,3} -> 5 pin-replicas over 4 vertices.
  EXPECT_DOUBLE_EQ(quality.replication_factor, 1.25);
  EXPECT_EQ(quality.num_hyperedges, 2u);
  EXPECT_DOUBLE_EQ(quality.measured_alpha, 1.0);
}

}  // namespace
}  // namespace tpsl

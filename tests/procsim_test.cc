#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "baselines/hash.h"
#include "core/two_phase_partitioner.h"
#include "graph/csr.h"
#include "graph/generators.h"
#include "graph/in_memory_edge_stream.h"
#include "partition/runner.h"
#include "procsim/distributed_pagerank.h"
#include "procsim/reference_pagerank.h"

namespace tpsl {
namespace {

std::vector<Edge> TestGraph() {
  PlantedPartitionConfig config;
  config.num_vertices = 1024;
  config.num_edges = 8000;
  config.num_communities = 16;
  return GeneratePlantedPartition(config);
}

std::vector<std::vector<Edge>> PartitionWith(Partitioner& partitioner,
                                             const std::vector<Edge>& edges,
                                             uint32_t k) {
  InMemoryEdgeStream stream(edges);
  PartitionConfig config;
  config.num_partitions = k;
  RunOptions options;
  options.keep_partitions = true;
  auto result = RunPartitioner(partitioner, stream, config, options);
  EXPECT_TRUE(result.ok());
  return std::move(result)->partitions;
}

TEST(ReferencePageRankTest, RanksSumToOne) {
  const auto edges = TestGraph();
  const CsrGraph graph = CsrGraph::FromEdges(edges);
  PageRankConfig config;
  config.iterations = 30;
  const std::vector<double> ranks = ReferencePageRank(graph, config);
  double sum = 0;
  for (const double r : ranks) {
    sum += r;
  }
  // Undirected graphs have no dangling mass loss.
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(ReferencePageRankTest, StarCenterRanksHighest) {
  // Star graph: center 0 connected to 1..9.
  std::vector<Edge> edges;
  for (VertexId v = 1; v < 10; ++v) {
    edges.push_back(Edge{0, v});
  }
  const CsrGraph graph = CsrGraph::FromEdges(edges);
  const std::vector<double> ranks = ReferencePageRank(graph, {});
  for (VertexId v = 1; v < 10; ++v) {
    EXPECT_GT(ranks[0], ranks[v]);
  }
}

TEST(ReferencePageRankTest, EmptyGraph) {
  const CsrGraph graph = CsrGraph::FromEdges({});
  EXPECT_TRUE(ReferencePageRank(graph, {}).empty());
}

TEST(DistributedPageRankTest, MatchesReferenceValues) {
  const auto edges = TestGraph();
  TwoPhasePartitioner partitioner;
  const auto partitions = PartitionWith(partitioner, edges, 8);

  PageRankConfig pr;
  pr.iterations = 25;
  auto result = SimulateDistributedPageRank(partitions, pr, {});
  ASSERT_TRUE(result.ok());

  const CsrGraph graph = CsrGraph::FromEdges(edges);
  const std::vector<double> reference = ReferencePageRank(graph, pr);
  ASSERT_EQ(result->ranks.size(), reference.size());
  for (size_t v = 0; v < reference.size(); ++v) {
    EXPECT_NEAR(result->ranks[v], reference[v], 1e-9) << "vertex " << v;
  }
}

TEST(DistributedPageRankTest, HigherReplicationCostsMoreTime) {
  const auto edges = TestGraph();
  TwoPhasePartitioner good;
  HashPartitioner bad;
  const auto good_parts = PartitionWith(good, edges, 16);
  const auto bad_parts = PartitionWith(bad, edges, 16);

  PageRankConfig pr;
  pr.iterations = 10;
  auto good_result = SimulateDistributedPageRank(good_parts, pr, {});
  auto bad_result = SimulateDistributedPageRank(bad_parts, pr, {});
  ASSERT_TRUE(good_result.ok());
  ASSERT_TRUE(bad_result.ok());

  EXPECT_LT(good_result->total_replicas, bad_result->total_replicas);
  EXPECT_LT(good_result->total_messages, bad_result->total_messages);
  EXPECT_LT(good_result->simulated_seconds, bad_result->simulated_seconds);
}

TEST(DistributedPageRankTest, MessageCountMatchesMirrors) {
  // Two partitions sharing exactly one vertex (1): one mirror.
  std::vector<std::vector<Edge>> partitions = {
      {{0, 1}},
      {{1, 2}},
  };
  PageRankConfig pr;
  pr.iterations = 5;
  auto result = SimulateDistributedPageRank(partitions, pr, {});
  ASSERT_TRUE(result.ok());
  // 1 mirror -> 2 messages per iteration * 5 iterations.
  EXPECT_EQ(result->total_messages, 10u);
  EXPECT_EQ(result->total_replicas, 4u);  // v0:1, v1:2, v2:1
}

TEST(DistributedPageRankTest, InvalidInputsRejected) {
  const std::vector<std::vector<Edge>> none;
  EXPECT_FALSE(SimulateDistributedPageRank(none, {}, {}).ok());
  const std::vector<std::vector<Edge>> empties = {{}, {}};
  EXPECT_FALSE(SimulateDistributedPageRank(empties, {}, {}).ok());
  ClusterModel broken;
  broken.num_workers = 0;
  const std::vector<std::vector<Edge>> one = {{{0, 1}}};
  EXPECT_FALSE(SimulateDistributedPageRank(one, {}, broken).ok());
}

TEST(DistributedPageRankTest, SpilledFilesMatchInMemoryExactly) {
  // The acceptance bar for the disk-backed processing path: PageRank
  // from the spilled per-partition files is bit-identical to PageRank
  // from the materialized partitions of the same run.
  const auto edges = TestGraph();
  TwoPhasePartitioner partitioner;
  InMemoryEdgeStream stream(edges);
  PartitionConfig config;
  config.num_partitions = 8;
  RunOptions options;
  options.keep_partitions = true;
  options.spill_dir = testing::TempDir() + "/procsim_spill";
  options.spill_stem = "pr";
  auto run = RunPartitioner(partitioner, stream, config, options);
  ASSERT_TRUE(run.ok());

  PageRankConfig pr;
  pr.iterations = 20;
  auto mem = SimulateDistributedPageRank(run->partitions, pr, {});
  ASSERT_TRUE(mem.ok());

  auto streams = OpenSpilledPartitions(run->spill);
  ASSERT_TRUE(streams.ok()) << streams.status().ToString();
  auto disk = SimulateDistributedPageRank(StreamPointers(*streams), pr, {});
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();

  EXPECT_EQ(mem->ranks, disk->ranks);  // bit-identical, not just close
  EXPECT_EQ(mem->total_messages, disk->total_messages);
  EXPECT_EQ(mem->total_replicas, disk->total_replicas);
  EXPECT_EQ(mem->num_edges, disk->num_edges);
  EXPECT_DOUBLE_EQ(mem->simulated_seconds, disk->simulated_seconds);

  streams->clear();  // close the files before deleting them
  RemoveSpilledFiles(run->spill);
}

TEST(DistributedPageRankTest, MoreWorkersReduceComputeTime) {
  const auto edges = TestGraph();
  TwoPhasePartitioner partitioner;
  const auto partitions = PartitionWith(partitioner, edges, 32);
  PageRankConfig pr;
  pr.iterations = 10;

  ClusterModel small;
  small.num_workers = 2;
  small.per_iteration_ms = 0.0;  // isolate compute + network scaling
  ClusterModel large = small;
  large.num_workers = 32;

  auto slow = SimulateDistributedPageRank(partitions, pr, small);
  auto fast = SimulateDistributedPageRank(partitions, pr, large);
  ASSERT_TRUE(slow.ok());
  ASSERT_TRUE(fast.ok());
  EXPECT_LT(fast->simulated_seconds, slow->simulated_seconds);
}

}  // namespace
}  // namespace tpsl

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "dynamic/incremental_partitioner.h"
#include "graph/generators.h"
#include "graph/in_memory_edge_stream.h"
#include "partition/assignment_sink.h"
#include "serve/partition_service.h"
#include "serve/serving_table.h"
#include "serve/traffic.h"
#include "util/random.h"

namespace tpsl {
namespace serve {
namespace {

constexpr VertexId kBaseVertices = 1 << 12;

std::vector<Edge> BaseGraph() {
  SocialNetworkConfig config;
  config.num_vertices = kBaseVertices;
  config.clique_size = 8;
  config.seed = 99;
  return GenerateSocialNetwork(config);
}

PartitionConfig Config(uint32_t k) {
  PartitionConfig config;
  config.num_partitions = k;
  config.seed = 42;
  config.exec.threads = 1;
  return config;
}

void ExpectTableMatchesOracle(const ServingTable& table,
                              const IncrementalPartitioner& state,
                              const std::vector<Edge>& probe_edges) {
  const ReplicationTable& replicas = *state.replicas();
  ASSERT_EQ(table.num_vertices(), replicas.num_vertices());
  for (VertexId v = 0; v < table.num_vertices(); ++v) {
    const VertexLookup got = table.LookupVertex(v);
    const VertexLookup want = OracleLookupVertex(replicas, v);
    ASSERT_EQ(got.found, want.found) << "vertex " << v;
    ASSERT_EQ(got.replica_count, want.replica_count) << "vertex " << v;
    ASSERT_EQ(got.primary, want.primary) << "vertex " << v;
  }
  const uint64_t seed = state.config().seed;
  for (const Edge& e : probe_edges) {
    ASSERT_EQ(table.RouteEdge(e), OracleRouteEdge(replicas, e, seed))
        << "edge (" << e.first << "," << e.second << ")";
  }
}

/// A probe mix: the base edges themselves, plus pairs where one or
/// both endpoints are unknown to the table.
std::vector<Edge> ProbeEdges(const std::vector<Edge>& base) {
  std::vector<Edge> probes(base.begin(),
                           base.begin() + std::min<size_t>(base.size(), 4096));
  SplitMix64 rng(123);
  for (int i = 0; i < 4096; ++i) {
    const VertexId u = static_cast<VertexId>(rng.NextBounded(kBaseVertices * 2));
    const VertexId v = static_cast<VertexId>(rng.NextBounded(kBaseVertices * 2));
    if (u != v) {
      probes.push_back(Edge{u, v});
    }
  }
  return probes;
}

TEST(ServingTableTest, BuildMatchesOracleEverywhere) {
  const auto edges = BaseGraph();
  InMemoryEdgeStream stream(edges);
  IncrementalPartitioner partitioner(Config(16));
  CountingSink sink(16);
  ASSERT_TRUE(partitioner.Bootstrap(stream, sink).ok());

  const auto table = BuildServingTable(partitioner, /*epoch=*/1);
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->epoch(), 1u);
  EXPECT_EQ(table->live_edges(), partitioner.num_edges());
  EXPECT_EQ(table->loads(), partitioner.loads());
  ExpectTableMatchesOracle(*table, partitioner, ProbeEdges(edges));
}

TEST(ServingTableTest, LookupOutsideTableIsNotFound) {
  const auto edges = BaseGraph();
  InMemoryEdgeStream stream(edges);
  IncrementalPartitioner partitioner(Config(8));
  CountingSink sink(8);
  ASSERT_TRUE(partitioner.Bootstrap(stream, sink).ok());
  const auto table = BuildServingTable(partitioner, 1);
  const VertexLookup miss = table->LookupVertex(kBaseVertices * 16);
  EXPECT_FALSE(miss.found);
  EXPECT_EQ(miss.replica_count, 0u);
  EXPECT_EQ(miss.primary, kInvalidPartition);
}

TEST(PartitionServiceTest, PatchedSnapshotEqualsFullRebuild) {
  const auto edges = BaseGraph();
  InMemoryEdgeStream stream(edges);
  PartitionService::Options options;
  options.publish_batch_edges = 32;  // force many delta patches
  options.rebootstrap_threshold = PartitionService::kNeverRebootstrap;
  PartitionService service(Config(16), options);
  ASSERT_TRUE(service.Bootstrap(stream).ok());

  // A few hundred adds (new vertices force chunk growth) and removals
  // of a slice of them, spread across many publish boundaries.
  SplitMix64 rng(7);
  std::vector<Edge> added;
  for (int i = 0; i < 500; ++i) {
    const Edge e{static_cast<VertexId>(rng.NextBounded(kBaseVertices)),
                 kBaseVertices + static_cast<VertexId>(i)};
    ASSERT_TRUE(service.AddEdge(e).ok());
    added.push_back(e);
  }
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(service.RemoveEdge(added[static_cast<size_t>(i) * 2]).ok());
  }
  ASSERT_TRUE(service.Flush().ok());

  const auto patched = service.CurrentSnapshot();
  ASSERT_NE(patched, nullptr);
  const auto rebuilt =
      BuildServingTable(service.partitioner_for_test(), patched->epoch());
  ASSERT_EQ(patched->num_vertices(), rebuilt->num_vertices());
  EXPECT_EQ(patched->live_edges(), rebuilt->live_edges());
  EXPECT_EQ(patched->loads(), rebuilt->loads());
  for (VertexId v = 0; v < patched->num_vertices(); ++v) {
    const VertexLookup a = patched->LookupVertex(v);
    const VertexLookup b = rebuilt->LookupVertex(v);
    ASSERT_EQ(a.found, b.found) << "vertex " << v;
    ASSERT_EQ(a.replica_count, b.replica_count) << "vertex " << v;
    ASSERT_EQ(a.primary, b.primary) << "vertex " << v;
  }
}

TEST(PartitionServiceTest, PlacementsMatchFromScratchPartitioner) {
  // The service must be a pure serving shell: the placements it makes
  // and the snapshot it publishes must equal an IncrementalPartitioner
  // driven with the identical operation sequence, with no drift from
  // batching, publishing, or ledger bookkeeping.
  const auto edges = BaseGraph();
  PartitionService::Options options;
  options.publish_batch_edges = 64;
  options.rebootstrap_threshold = PartitionService::kNeverRebootstrap;
  PartitionService service(Config(16), options);
  {
    InMemoryEdgeStream stream(edges);
    ASSERT_TRUE(service.Bootstrap(stream).ok());
  }
  IncrementalPartitioner oracle(Config(16));
  {
    InMemoryEdgeStream stream(edges);
    CountingSink sink(16);
    ASSERT_TRUE(oracle.Bootstrap(stream, sink).ok());
  }

  SplitMix64 rng(11);
  std::vector<std::pair<Edge, PartitionId>> added;
  for (int i = 0; i < 800; ++i) {
    // Unique edges (fresh second endpoint), so removal order cannot
    // be ambiguous between the two drivers.
    const Edge e{static_cast<VertexId>(rng.NextBounded(kBaseVertices)),
                 kBaseVertices + static_cast<VertexId>(i)};
    const auto service_placed = service.AddEdge(e);
    const auto oracle_placed = oracle.AddEdge(e);
    ASSERT_TRUE(service_placed.ok());
    ASSERT_TRUE(oracle_placed.ok());
    ASSERT_EQ(*service_placed, *oracle_placed) << "add #" << i;
    added.push_back({e, *service_placed});
    if (i % 5 == 4) {
      const auto& [victim, partition] = added[added.size() - 3];
      const auto looked_up = service.LookupPlacement(victim);
      ASSERT_TRUE(looked_up.ok());
      ASSERT_EQ(*looked_up, partition);
      ASSERT_TRUE(service.RemoveEdge(victim).ok());
      ASSERT_TRUE(oracle.RemoveEdge(victim, partition).ok());
      added.erase(added.end() - 3);
    }
  }
  ASSERT_TRUE(service.Flush().ok());

  EXPECT_EQ(service.partitioner_for_test().num_edges(), oracle.num_edges());
  EXPECT_EQ(service.partitioner_for_test().loads(), oracle.loads());
  const auto snapshot = service.CurrentSnapshot();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->live_edges(), oracle.num_edges());
  ExpectTableMatchesOracle(*snapshot, oracle, ProbeEdges(edges));
}

TEST(PartitionServiceTest, RebootstrapAdoptionPublishesFreshState) {
  const auto edges = BaseGraph();
  InMemoryEdgeStream stream(edges);
  PartitionService::Options options;
  options.publish_batch_edges = 64;
  options.rebootstrap_threshold = 0.05;
  options.adopt_after_publishes = 2;
  PartitionService service(Config(16), options);
  ASSERT_TRUE(service.Bootstrap(stream).ok());

  SplitMix64 rng(13);
  for (int i = 0; i < 4000; ++i) {
    const VertexId u = static_cast<VertexId>(rng.NextBounded(kBaseVertices));
    VertexId v = static_cast<VertexId>(rng.NextBounded(kBaseVertices));
    if (u == v) {
      v = (v + 1) % kBaseVertices;
    }
    ASSERT_TRUE(service.AddEdge(Edge{u, v}).ok());
  }
  ASSERT_TRUE(service.Flush().ok());
  ASSERT_FALSE(service.RebootstrapInFlight());
  EXPECT_GE(service.Rebootstraps(), 1u);

  const PartitionService::Stats stats = service.GetStats();
  EXPECT_EQ(stats.rebootstraps, service.Rebootstraps());
  // The adopted partitioner was re-bootstrapped recently; only the
  // post-fork replay still counts as drift.
  EXPECT_LT(stats.staleness_ratio, 0.05);
  // The published snapshot is exactly the adopted partitioner's state.
  const auto snapshot = service.CurrentSnapshot();
  const auto rebuilt =
      BuildServingTable(service.partitioner_for_test(), snapshot->epoch());
  EXPECT_EQ(snapshot->live_edges(), rebuilt->live_edges());
  EXPECT_EQ(snapshot->loads(), rebuilt->loads());
  ExpectTableMatchesOracle(*snapshot, service.partitioner_for_test(),
                           ProbeEdges(edges));
}

// The acceptance hammer: reader threads stream lookups through epoch
// swaps while the writer mutates and at least one full re-bootstrap
// forks, runs, and is adopted mid-traffic. Run under tsan this is the
// data-race proof for the pin/publish/reclaim protocol; the counters
// prove lookups really completed while a re-bootstrap was in flight.
TEST(PartitionServiceTest, LookupsSurviveConcurrentRebootstrap) {
  const auto edges = BaseGraph();
  InMemoryEdgeStream stream(edges);
  PartitionService::Options options;
  options.publish_batch_edges = 32;
  options.rebootstrap_threshold = 0.02;
  options.adopt_after_publishes = 0;  // adopt on the job's schedule
  options.max_readers = 8;
  PartitionService service(Config(16), options);
  ASSERT_TRUE(service.Bootstrap(stream).ok());

  constexpr int kReaders = 4;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> lookups_during_rebootstrap{0};
  std::atomic<uint64_t> total_lookups{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&service, &stop, &lookups_during_rebootstrap,
                          &total_lookups, r] {
      auto reader = service.CreateReader();
      ASSERT_TRUE(reader.ok());
      SplitMix64 rng(1000 + static_cast<uint64_t>(r));
      uint64_t local = 0, during = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const bool in_flight_before = service.RebootstrapInFlight();
        const VertexId v =
            static_cast<VertexId>(rng.NextBounded(kBaseVertices + 4096));
        const VertexLookup lookup = (*reader)->LookupVertex(v);
        const PartitionId route = (*reader)->RouteEdge(
            Edge{v, static_cast<VertexId>(rng.NextBounded(kBaseVertices))});
        ASSERT_LT(route, 16u);
        if (lookup.found) {
          ASSERT_GT(lookup.replica_count, 0u);
          ASSERT_LT(lookup.primary, 16u);
        }
        local += 2;
        if (in_flight_before && service.RebootstrapInFlight()) {
          during += 2;
        }
      }
      total_lookups.fetch_add(local);
      lookups_during_rebootstrap.fetch_add(during);
    });
  }

  // Mutate until at least one re-bootstrap has been adopted AND the
  // readers demonstrably overlapped one, with a generous op cap so a
  // logic bug fails the assertions below instead of hanging.
  SplitMix64 rng(17);
  uint64_t mutations = 0;
  while (mutations < 500'000 &&
         (service.Rebootstraps() < 1 ||
          lookups_during_rebootstrap.load() == 0)) {
    const VertexId u = static_cast<VertexId>(rng.NextBounded(kBaseVertices));
    VertexId v = static_cast<VertexId>(rng.NextBounded(kBaseVertices));
    if (u == v) {
      v = (v + 1) % kBaseVertices;
    }
    ASSERT_TRUE(service.AddEdge(Edge{u, v}).ok());
    ++mutations;
  }
  ASSERT_TRUE(service.Flush().ok());
  stop.store(true);
  for (std::thread& t : readers) {
    t.join();
  }

  EXPECT_GE(service.Rebootstraps(), 1u);
  EXPECT_GT(total_lookups.load(), 0u);
  // Lookups completed while a re-bootstrap was in flight — the "never
  // drop reads during offline rebuilds" contract, observed directly.
  EXPECT_GT(lookups_during_rebootstrap.load(), 0u);
  EXPECT_GT(service.epoch(), 1u);
}

TEST(PartitionServiceTest, MutationHardeningAndReaderSlots) {
  const auto edges = BaseGraph();
  InMemoryEdgeStream stream(edges);
  PartitionService::Options options;
  options.rebootstrap_threshold = PartitionService::kNeverRebootstrap;
  options.max_readers = 2;
  PartitionService service(Config(8), options);

  EXPECT_EQ(service.CreateReader().status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.AddEdge(Edge{1, 2}).status().code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(service.Bootstrap(stream).ok());

  EXPECT_EQ(service.AddEdge(Edge{5, 5}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service.AddEdge(Edge{kInvalidVertex, 3}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service.RemoveEdge(Edge{kBaseVertices + 7, kBaseVertices + 8})
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(service.LookupPlacement(Edge{kBaseVertices + 7, kBaseVertices + 8})
                .status()
                .code(),
            StatusCode::kNotFound);

  // An add/remove round-trip leaves no live occurrence behind.
  const Edge fresh{1, kBaseVertices + 1};
  ASSERT_TRUE(service.AddEdge(fresh).ok());
  ASSERT_TRUE(service.RemoveEdge(fresh).ok());
  EXPECT_EQ(service.RemoveEdge(fresh).code(), StatusCode::kNotFound);

  auto r1 = service.CreateReader();
  auto r2 = service.CreateReader();
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(service.CreateReader().status().code(), StatusCode::kOutOfRange);
  r1->reset();  // releasing a slot makes it reusable
  EXPECT_TRUE(service.CreateReader().ok());
}

TEST(IncrementalStalenessTest, RemovalsCountAsDrift) {
  const auto edges = BaseGraph();
  InMemoryEdgeStream stream(edges);
  IncrementalPartitioner partitioner(Config(8));
  CountingSink sink(8);
  ASSERT_TRUE(partitioner.Bootstrap(stream, sink).ok());
  ASSERT_DOUBLE_EQ(partitioner.StalenessRatio(), 0.0);

  // 300 adds then 300 removals of those same edges: the live edge
  // count is back at baseline, but the structures have absorbed 600
  // ops of churn — exactly what the ratio must report.
  std::vector<std::pair<Edge, PartitionId>> added;
  for (int i = 0; i < 300; ++i) {
    const Edge e{static_cast<VertexId>(i % kBaseVertices),
                 kBaseVertices + static_cast<VertexId>(i)};
    const auto placed = partitioner.AddEdge(e);
    ASSERT_TRUE(placed.ok());
    added.push_back({e, *placed});
  }
  for (const auto& [e, p] : added) {
    ASSERT_TRUE(partitioner.RemoveEdge(e, p).ok());
  }
  EXPECT_EQ(partitioner.num_edges(), edges.size());
  EXPECT_DOUBLE_EQ(partitioner.StalenessRatio(),
                   600.0 / static_cast<double>(edges.size()));
}

TEST(TrafficTest, DeterministicPlacementSideResults) {
  SocialNetworkConfig config;
  config.num_vertices = 1 << 10;
  config.clique_size = 8;
  config.seed = 3;
  const auto edges = GenerateSocialNetwork(config);

  TrafficOptions traffic;
  traffic.config = Config(8);
  traffic.readers = 2;
  traffic.lookups_per_reader = 2048;
  traffic.mutation_fraction = 0.2;
  traffic.removal_interval = 8;
  traffic.publish_batch_edges = 64;
  traffic.rebootstrap_threshold = 0.05;
  traffic.adopt_after_publishes = 2;

  const auto first = RunTraffic(edges, traffic);
  const auto second = RunTraffic(edges, traffic);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_GT(first->adds, 0u);
  EXPECT_GT(first->removals, 0u);
  EXPECT_GE(first->rebootstraps, 1u);
  EXPECT_EQ(first->lookups,
            static_cast<uint64_t>(traffic.readers) *
                traffic.lookups_per_reader);
  EXPECT_EQ(first->adds, second->adds);
  EXPECT_EQ(first->removals, second->removals);
  EXPECT_EQ(first->live_edges, second->live_edges);
  EXPECT_EQ(first->epochs_published, second->epochs_published);
  EXPECT_EQ(first->rebootstraps, second->rebootstraps);
  EXPECT_EQ(first->replication_factor, second->replication_factor);
  EXPECT_EQ(first->measured_alpha, second->measured_alpha);
  EXPECT_EQ(first->state_bytes, second->state_bytes);
}

}  // namespace
}  // namespace serve
}  // namespace tpsl

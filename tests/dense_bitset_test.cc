// DenseBitset: unit tests for every word-parallel operation plus a
// randomized property sweep against a std::vector<bool> oracle — the
// bitset underneath the whole partitioner-state kernel, so an
// off-by-one in the tail-word masking here would silently corrupt
// every replication table in the repo.
#include "partition/dense_bitset.h"

#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "util/random.h"

namespace tpsl {
namespace {

TEST(DenseBitsetTest, StartsEmpty) {
  DenseBitset bits(130);
  EXPECT_EQ(bits.size(), 130u);
  EXPECT_EQ(bits.Count(), 0u);
  EXPECT_FALSE(bits.Any());
  for (uint64_t i = 0; i < 130; ++i) {
    EXPECT_FALSE(bits.Test(i));
  }
}

TEST(DenseBitsetTest, SetTestReset) {
  DenseBitset bits(200);
  bits.Set(0);
  bits.Set(63);
  bits.Set(64);
  bits.Set(199);
  EXPECT_TRUE(bits.Test(0));
  EXPECT_TRUE(bits.Test(63));
  EXPECT_TRUE(bits.Test(64));
  EXPECT_TRUE(bits.Test(199));
  EXPECT_FALSE(bits.Test(1));
  EXPECT_FALSE(bits.Test(198));
  EXPECT_EQ(bits.Count(), 4u);
  EXPECT_TRUE(bits.Any());

  bits.Reset(63);
  EXPECT_FALSE(bits.Test(63));
  EXPECT_EQ(bits.Count(), 3u);
}

TEST(DenseBitsetTest, TestAndSetReportsPriorState) {
  DenseBitset bits(70);
  EXPECT_TRUE(bits.TestAndSet(65));   // was clear -> true
  EXPECT_FALSE(bits.TestAndSet(65));  // already set -> false
  EXPECT_TRUE(bits.Test(65));
  EXPECT_EQ(bits.Count(), 1u);
}

TEST(DenseBitsetTest, ClearAll) {
  DenseBitset bits(100);
  for (uint64_t i = 0; i < 100; i += 7) {
    bits.Set(i);
  }
  ASSERT_GT(bits.Count(), 0u);
  bits.ClearAll();
  EXPECT_EQ(bits.Count(), 0u);
  EXPECT_FALSE(bits.Any());
}

TEST(DenseBitsetTest, ResizeGrowsClearAndKeepsSetBits) {
  DenseBitset bits(10);
  bits.Set(3);
  bits.Set(9);
  bits.Resize(300);
  EXPECT_EQ(bits.size(), 300u);
  EXPECT_TRUE(bits.Test(3));
  EXPECT_TRUE(bits.Test(9));
  EXPECT_EQ(bits.Count(), 2u);
  for (uint64_t i = 10; i < 300; ++i) {
    EXPECT_FALSE(bits.Test(i));
  }
}

TEST(DenseBitsetTest, ResizeShrinkMasksTail) {
  // Shrinking must clear the bits beyond the new size inside the
  // surviving tail word, or Count/Any would see ghosts.
  DenseBitset bits(128);
  for (uint64_t i = 0; i < 128; ++i) {
    bits.Set(i);
  }
  bits.Resize(70);
  EXPECT_EQ(bits.size(), 70u);
  EXPECT_EQ(bits.Count(), 70u);
  bits.Resize(128);
  for (uint64_t i = 70; i < 128; ++i) {
    EXPECT_FALSE(bits.Test(i)) << i;
  }
}

TEST(DenseBitsetTest, IntersectionCount) {
  DenseBitset a(150);
  DenseBitset b(150);
  a.Set(1);
  a.Set(64);
  a.Set(149);
  b.Set(64);
  b.Set(100);
  b.Set(149);
  EXPECT_EQ(a.IntersectionCount(b), 2u);
  EXPECT_EQ(b.IntersectionCount(a), 2u);
}

TEST(DenseBitsetTest, InplaceOps) {
  DenseBitset a(96);
  DenseBitset b(96);
  a.Set(0);
  a.Set(70);
  b.Set(70);
  b.Set(95);

  DenseBitset or_ab = a;
  or_ab.InplaceOr(b);
  EXPECT_TRUE(or_ab.Test(0));
  EXPECT_TRUE(or_ab.Test(70));
  EXPECT_TRUE(or_ab.Test(95));
  EXPECT_EQ(or_ab.Count(), 3u);

  DenseBitset and_ab = a;
  and_ab.InplaceAnd(b);
  EXPECT_EQ(and_ab.Count(), 1u);
  EXPECT_TRUE(and_ab.Test(70));

  DenseBitset diff_ab = a;
  diff_ab.InplaceAndNot(b);
  EXPECT_EQ(diff_ab.Count(), 1u);
  EXPECT_TRUE(diff_ab.Test(0));
}

TEST(DenseBitsetTest, ForEachSetBitVisitsInOrder) {
  DenseBitset bits(200);
  const std::vector<uint64_t> expected = {0, 5, 63, 64, 65, 127, 128, 199};
  for (const uint64_t i : expected) {
    bits.Set(i);
  }
  std::vector<uint64_t> visited;
  bits.ForEachSetBit([&visited](uint64_t i) { visited.push_back(i); });
  EXPECT_EQ(visited, expected);
}

TEST(DenseBitsetTest, HeapBytesMatchesWordStorage) {
  DenseBitset bits(129);  // 3 words
  EXPECT_EQ(bits.HeapBytes(), 3 * sizeof(uint64_t));
  EXPECT_EQ(bits.words().size(), 3u);
}

// Property sweep: a random mix of every mutating operation, mirrored
// into a std::vector<bool> oracle; after each phase the full state and
// the aggregate queries must agree bit for bit. Sizes straddle word
// boundaries (the classic masking bug surface).
TEST(DenseBitsetPropertyTest, AgreesWithVectorBoolOracle) {
  SplitMix64 rng(0x5eedb175ULL);
  const uint64_t sizes[] = {1, 63, 64, 65, 127, 128, 129, 1000, 4096, 4100};
  for (const uint64_t size : sizes) {
    DenseBitset bits(size);
    std::vector<bool> oracle(size, false);

    for (int op = 0; op < 2000; ++op) {
      const uint64_t i = rng.NextBounded(size);
      switch (rng.NextBounded(4)) {
        case 0:
          bits.Set(i);
          oracle[i] = true;
          break;
        case 1:
          bits.Reset(i);
          oracle[i] = false;
          break;
        case 2: {
          const bool was_clear = !oracle[i];
          EXPECT_EQ(bits.TestAndSet(i), was_clear);
          oracle[i] = true;
          break;
        }
        default:
          EXPECT_EQ(bits.Test(i), oracle[i]);
          break;
      }
    }

    uint64_t oracle_count = 0;
    for (uint64_t i = 0; i < size; ++i) {
      EXPECT_EQ(bits.Test(i), oracle[i]) << "size=" << size << " bit=" << i;
      oracle_count += oracle[i] ? 1 : 0;
    }
    EXPECT_EQ(bits.Count(), oracle_count) << "size=" << size;
    EXPECT_EQ(bits.Any(), oracle_count > 0) << "size=" << size;

    std::vector<uint64_t> visited;
    bits.ForEachSetBit([&visited](uint64_t i) { visited.push_back(i); });
    EXPECT_EQ(visited.size(), oracle_count);
    for (const uint64_t i : visited) {
      EXPECT_TRUE(oracle[i]);
    }
  }
}

// Word-parallel binary ops against the oracle, including the tail word.
TEST(DenseBitsetPropertyTest, BinaryOpsAgreeWithOracle) {
  SplitMix64 rng(0xb0075ULL);
  const uint64_t sizes[] = {64, 100, 129, 513};
  for (const uint64_t size : sizes) {
    DenseBitset a(size);
    DenseBitset b(size);
    std::vector<bool> oa(size, false);
    std::vector<bool> ob(size, false);
    for (uint64_t i = 0; i < size; ++i) {
      if (rng.NextDouble() < 0.4) {
        a.Set(i);
        oa[i] = true;
      }
      if (rng.NextDouble() < 0.4) {
        b.Set(i);
        ob[i] = true;
      }
    }

    uint64_t expected_intersection = 0;
    for (uint64_t i = 0; i < size; ++i) {
      expected_intersection += (oa[i] && ob[i]) ? 1 : 0;
    }
    EXPECT_EQ(a.IntersectionCount(b), expected_intersection);

    DenseBitset or_ab = a;
    or_ab.InplaceOr(b);
    DenseBitset and_ab = a;
    and_ab.InplaceAnd(b);
    DenseBitset andnot_ab = a;
    andnot_ab.InplaceAndNot(b);
    for (uint64_t i = 0; i < size; ++i) {
      EXPECT_EQ(or_ab.Test(i), oa[i] || ob[i]);
      EXPECT_EQ(and_ab.Test(i), oa[i] && ob[i]);
      EXPECT_EQ(andnot_ab.Test(i), oa[i] && !ob[i]);
    }
  }
}

}  // namespace
}  // namespace tpsl

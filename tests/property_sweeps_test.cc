#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/streaming_clustering.h"
#include "core/two_phase_partitioner.h"
#include "graph/generators.h"
#include "graph/in_memory_edge_stream.h"
#include "hypergraph/hypergraph.h"
#include "hypergraph/hypergraph_partitioner.h"
#include "partition/runner.h"

namespace tpsl {
namespace {

/// Parameterized invariant sweeps over the configuration spaces the
/// paper's evaluation varies: clustering (passes × cap × k), the full
/// 2PS-L pipeline (k × alpha), and the hypergraph generalization (k).

using ClusteringParam = std::tuple<uint32_t, double, uint32_t>;

class ClusteringSweepTest : public testing::TestWithParam<ClusteringParam> {
 protected:
  static const std::vector<Edge>& Edges() {
    static const std::vector<Edge>* edges = [] {
      SocialNetworkConfig config;
      config.num_vertices = 1 << 12;
      config.clique_size = 8;
      config.seed = 21;
      return new std::vector<Edge>(GenerateSocialNetwork(config));
    }();
    return *edges;
  }
};

TEST_P(ClusteringSweepTest, VolumeInvariantsHold) {
  const auto& [passes, cap_factor, k] = GetParam();
  InMemoryEdgeStream stream(Edges());
  auto degrees = ComputeDegrees(stream);
  ASSERT_TRUE(degrees.ok());

  ClusteringConfig config;
  config.num_passes = passes;
  config.volume_cap_factor = cap_factor;
  auto clustering = StreamingClustering(stream, *degrees, k, config);
  ASSERT_TRUE(clustering.ok());

  // (a) total volume conservation: Σ cluster volumes == 2|E|.
  uint64_t total = 0;
  for (const uint64_t volume : clustering->cluster_volumes) {
    ASSERT_GT(volume, 0u);  // compacted ids leave no empty clusters
    total += volume;
  }
  EXPECT_EQ(total, degrees->TotalVolume());

  // (b) every vertex with degree > 0 is clustered, and its cluster id
  // is dense.
  for (VertexId v = 0; v < clustering->vertex_cluster.size(); ++v) {
    const ClusterId c = clustering->vertex_cluster[v];
    if (degrees->degree(v) > 0) {
      ASSERT_NE(c, kInvalidCluster);
      ASSERT_LT(c, clustering->num_clusters());
    } else {
      ASSERT_EQ(c, kInvalidCluster);
    }
  }

  // (c) the volume cap holds up to single-vertex exceptions.
  uint32_t max_degree = 0;
  for (const uint32_t d : degrees->degrees) {
    max_degree = std::max(max_degree, d);
  }
  const uint64_t cap = static_cast<uint64_t>(
      cap_factor * static_cast<double>(degrees->TotalVolume()) / k);
  for (const uint64_t volume : clustering->cluster_volumes) {
    EXPECT_LE(volume, std::max<uint64_t>(cap, max_degree));
  }
}

INSTANTIATE_TEST_SUITE_P(
    PassesCapK, ClusteringSweepTest,
    testing::Combine(testing::Values(1u, 2u, 4u),
                     testing::Values(0.1, 0.25, 1.0),
                     testing::Values(2u, 16u, 128u)),
    [](const testing::TestParamInfo<ClusteringParam>& info) {
      // Built with += (not operator+) to dodge GCC 12's bogus -Wrestrict
      // diagnostic on `const char* + std::string&&` (GCC PR 105329).
      std::string name = "p";
      name += std::to_string(std::get<0>(info.param));
      name += "_cap";
      name += std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
      name += "_k";
      name += std::to_string(std::get<2>(info.param));
      return name;
    });

using PipelineParam = std::tuple<uint32_t, double>;

class PipelineSweepTest : public testing::TestWithParam<PipelineParam> {};

TEST_P(PipelineSweepTest, ContractAcrossKAndAlpha) {
  const auto& [k, alpha] = GetParam();
  PlantedPartitionConfig graph_config;
  graph_config.num_vertices = 1 << 12;
  graph_config.num_edges = 30000;
  graph_config.num_communities = 256;
  const auto edges = GeneratePlantedPartition(graph_config);

  TwoPhasePartitioner partitioner;
  InMemoryEdgeStream stream(edges);
  PartitionConfig config;
  config.num_partitions = k;
  config.balance_factor = alpha;
  auto result = RunPartitioner(partitioner, stream, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->quality.num_edges, edges.size());
  EXPECT_LE(result->quality.max_partition_size,
            config.PartitionCapacity(edges.size()));
  // Replication factor can never exceed min(k, covered vertices).
  EXPECT_LE(result->quality.replication_factor, static_cast<double>(k));
}

INSTANTIATE_TEST_SUITE_P(
    KAlpha, PipelineSweepTest,
    testing::Combine(testing::Values(2u, 3u, 17u, 64u, 256u),
                     testing::Values(1.0, 1.05, 1.5)),
    [](const testing::TestParamInfo<PipelineParam>& info) {
      // += instead of operator+ — see the note on the sweep above.
      std::string name = "k";
      name += std::to_string(std::get<0>(info.param));
      name += "_a";
      name += std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
      return name;
    });

class HypergraphSweepTest : public testing::TestWithParam<uint32_t> {};

TEST_P(HypergraphSweepTest, TwoPhaseContractAcrossK) {
  const uint32_t k = GetParam();
  PlantedHypergraphConfig config;
  config.num_vertices = 1 << 11;
  config.num_hyperedges = 8000;
  config.num_communities = 64;
  const Hypergraph hg = GeneratePlantedHypergraph(config);

  HypergraphPartitionConfig partition_config;
  partition_config.num_partitions = k;
  auto assignment = TwoPhasePartitionHypergraph(hg, partition_config);
  ASSERT_TRUE(assignment.ok());

  const auto quality = ComputeHypergraphQuality(hg, *assignment, k);
  EXPECT_EQ(quality.num_hyperedges, hg.edges.size());
  const uint64_t capacity =
      partition_config.PartitionCapacity(hg.edges.size());
  for (const uint64_t size : quality.partition_sizes) {
    EXPECT_LE(size, capacity);
  }
  EXPECT_GE(quality.replication_factor, 1.0);
}

INSTANTIATE_TEST_SUITE_P(K, HypergraphSweepTest,
                         testing::Values(2u, 5u, 16u, 64u, 128u),
                         [](const testing::TestParamInfo<uint32_t>& info) {
                           // += instead of operator+ — see the first sweep.
                           std::string name = "k";
                           name += std::to_string(info.param);
                           return name;
                         });

}  // namespace
}  // namespace tpsl

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "baselines/hash.h"
#include "core/two_phase_partitioner.h"
#include "graph/binary_edge_list.h"
#include "graph/generators.h"
#include "graph/in_memory_edge_stream.h"
#include "partition/runner.h"

namespace tpsl {
namespace {

std::vector<Edge> CommunityGraph() {
  PlantedPartitionConfig config;
  config.num_vertices = 4096;
  config.num_edges = 40000;
  config.num_communities = 64;
  config.intra_fraction = 0.95;
  return GeneratePlantedPartition(config);
}

std::vector<Edge> SocialGraph() {
  RmatConfig config;
  config.scale = 12;
  config.edge_factor = 10;
  return GenerateRmat(config);
}

RunResult MustRun(Partitioner& partitioner, const std::vector<Edge>& edges,
                  uint32_t k) {
  InMemoryEdgeStream stream(edges);
  PartitionConfig config;
  config.num_partitions = k;
  auto result = RunPartitioner(partitioner, stream, config);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST(TwoPhaseTest, AssignsEveryEdgeWithinCap) {
  TwoPhasePartitioner partitioner;
  const auto edges = CommunityGraph();
  const RunResult result = MustRun(partitioner, edges, 32);
  EXPECT_EQ(result.quality.num_edges, edges.size());
  // RunPartitioner validated the hard cap ceil(α·|E|/k); the measured
  // alpha can exceed α by at most the ceiling rounding.
  PartitionConfig config;
  config.num_partitions = 32;
  EXPECT_LE(result.quality.max_partition_size,
            config.PartitionCapacity(edges.size()));
}

TEST(TwoPhaseTest, PrepartitionPlusRemainingCoversStream) {
  TwoPhasePartitioner partitioner;
  const auto edges = CommunityGraph();
  InMemoryEdgeStream stream(edges);
  PartitionConfig config;
  config.num_partitions = 16;
  EdgeListSink sink(16);
  PartitionStats stats;
  ASSERT_TRUE(partitioner.Partition(stream, config, sink, &stats).ok());
  EXPECT_EQ(stats.prepartitioned_edges + stats.remaining_edges, edges.size());

  // Paper Fig. 6's qualitative claim: community-structured (web-like)
  // graphs pre-partition a much larger share than structure-free
  // graphs.
  ErdosRenyiConfig er;
  er.num_vertices = 4096;
  er.num_edges = 40000;
  InMemoryEdgeStream er_stream(GenerateErdosRenyi(er));
  EdgeListSink er_sink(16);
  PartitionStats er_stats;
  ASSERT_TRUE(
      partitioner.Partition(er_stream, config, er_sink, &er_stats).ok());
  const double community_ratio =
      static_cast<double>(stats.prepartitioned_edges) / edges.size();
  const double uniform_ratio =
      static_cast<double>(er_stats.prepartitioned_edges) / er.num_edges;
  EXPECT_GT(community_ratio, uniform_ratio);
}

TEST(TwoPhaseTest, ReportsAllThreePhases) {
  TwoPhasePartitioner partitioner;
  const auto edges = SocialGraph();
  InMemoryEdgeStream stream(edges);
  PartitionConfig config;
  config.num_partitions = 8;
  CountingSink sink(8);
  PartitionStats stats;
  ASSERT_TRUE(partitioner.Partition(stream, config, sink, &stats).ok());
  EXPECT_TRUE(stats.phase_seconds.contains("degree"));
  EXPECT_TRUE(stats.phase_seconds.contains("clustering"));
  EXPECT_TRUE(stats.phase_seconds.contains("partitioning"));
  // degree(1) + clustering(1) + prepartition(1) + scoring(1).
  EXPECT_EQ(stats.stream_passes, 4u);
  EXPECT_GT(stats.state_bytes, 0u);
}

TEST(TwoPhaseTest, BeatsHashingOnCommunityGraphs) {
  TwoPhasePartitioner twops;
  HashPartitioner hash;
  const auto edges = CommunityGraph();
  const RunResult a = MustRun(twops, edges, 32);
  const RunResult b = MustRun(hash, edges, 32);
  // The headline claim at laptop scale: clustering-aware partitioning
  // replicates far less than hashing on community-structured graphs.
  EXPECT_LT(a.quality.replication_factor,
            0.6 * b.quality.replication_factor);
}

TEST(TwoPhaseTest, HdrfScoringModeImprovesReplication) {
  TwoPhasePartitioner linear;
  TwoPhasePartitioner::Options hdrf_options;
  hdrf_options.scoring = TwoPhasePartitioner::ScoringMode::kHdrf;
  TwoPhasePartitioner hdrf(hdrf_options);
  EXPECT_EQ(hdrf.name(), "2PS-HDRF");

  const auto edges = SocialGraph();
  const RunResult a = MustRun(linear, edges, 32);
  const RunResult b = MustRun(hdrf, edges, 32);
  // Paper §V-D: HDRF scoring in phase 2 improves RF (up to 50%); allow
  // equality margin for small graphs.
  EXPECT_LE(b.quality.replication_factor,
            a.quality.replication_factor * 1.05);
}

TEST(TwoPhaseTest, RestreamingKeepsContract) {
  for (const uint32_t passes : {1u, 3u, 8u}) {
    TwoPhasePartitioner::Options options;
    options.clustering.num_passes = passes;
    TwoPhasePartitioner partitioner(options);
    const auto edges = SocialGraph();
    const RunResult result = MustRun(partitioner, edges, 8);
    EXPECT_EQ(result.quality.num_edges, edges.size());
    EXPECT_EQ(result.stats.stream_passes, 3 + passes);
  }
}

TEST(TwoPhaseTest, RoundRobinSchedulingIsWorseOrEqual) {
  TwoPhasePartitioner::Options rr_options;
  rr_options.scheduling = TwoPhasePartitioner::SchedulingMode::kRoundRobin;
  TwoPhasePartitioner graham;
  TwoPhasePartitioner round_robin(rr_options);
  const auto edges = CommunityGraph();
  const RunResult a = MustRun(graham, edges, 32);
  const RunResult b = MustRun(round_robin, edges, 32);
  // Volume-aware scheduling should not hurt quality.
  EXPECT_LE(a.quality.replication_factor,
            b.quality.replication_factor * 1.10);
}

TEST(TwoPhaseTest, DeterministicAcrossRuns) {
  TwoPhasePartitioner partitioner;
  const auto edges = SocialGraph();
  InMemoryEdgeStream stream(edges);
  PartitionConfig config;
  config.num_partitions = 16;

  EdgeListSink sink_a(16), sink_b(16);
  ASSERT_TRUE(partitioner.Partition(stream, config, sink_a, nullptr).ok());
  ASSERT_TRUE(partitioner.Partition(stream, config, sink_b, nullptr).ok());
  EXPECT_EQ(sink_a.partitions(), sink_b.partitions());
}

TEST(TwoPhaseTest, FileStreamMatchesMemoryStream) {
  const auto edges = SocialGraph();
  const std::string path = testing::TempDir() + "/twops_file.bin";
  ASSERT_TRUE(WriteBinaryEdgeList(path, edges).ok());
  auto file_stream_or = BinaryFileEdgeStream::Open(path, 777);
  ASSERT_TRUE(file_stream_or.ok());

  TwoPhasePartitioner partitioner;
  PartitionConfig config;
  config.num_partitions = 8;
  EdgeListSink file_sink(8), mem_sink(8);
  ASSERT_TRUE(
      partitioner.Partition(**file_stream_or, config, file_sink, nullptr)
          .ok());
  InMemoryEdgeStream mem_stream(edges);
  ASSERT_TRUE(
      partitioner.Partition(mem_stream, config, mem_sink, nullptr).ok());
  EXPECT_EQ(file_sink.partitions(), mem_sink.partitions());
  std::remove(path.c_str());
}

TEST(TwoPhaseTest, TightBalanceFactorStillFeasible) {
  TwoPhasePartitioner partitioner;
  const auto edges = SocialGraph();
  InMemoryEdgeStream stream(edges);
  PartitionConfig config;
  config.num_partitions = 7;  // non-divisor k
  config.balance_factor = 1.0;
  auto result = RunPartitioner(partitioner, stream, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->quality.num_edges, edges.size());
}

TEST(TwoPhaseTest, KEqualsOneDegeneratesGracefully) {
  TwoPhasePartitioner partitioner;
  const RunResult result = MustRun(partitioner, SocialGraph(), 1);
  EXPECT_DOUBLE_EQ(result.quality.replication_factor, 1.0);
}

TEST(TwoPhaseTest, ZeroPartitionsRejected) {
  TwoPhasePartitioner partitioner;
  InMemoryEdgeStream stream({{0, 1}});
  PartitionConfig config;
  config.num_partitions = 0;
  CountingSink sink(1);
  EXPECT_FALSE(partitioner.Partition(stream, config, sink, nullptr).ok());
}

TEST(TwoPhaseTest, ClusterVolumeTermAblationRuns) {
  TwoPhasePartitioner::Options options;
  options.use_cluster_volume_term = false;
  TwoPhasePartitioner partitioner(options);
  const RunResult result = MustRun(partitioner, SocialGraph(), 16);
  EXPECT_GE(result.quality.replication_factor, 1.0);
}

}  // namespace
}  // namespace tpsl

#include <gtest/gtest.h>

#include <vector>

#include "core/parallel_two_phase.h"
#include "core/two_phase_partitioner.h"
#include "graph/datasets.h"
#include "graph/in_memory_edge_stream.h"
#include "partition/runner.h"

namespace tpsl {
namespace {

std::vector<Edge> TestGraph() {
  auto edges = LoadDataset("OK", /*scale_shift=*/3);
  EXPECT_TRUE(edges.ok());
  return std::move(edges).value();
}

TEST(ParallelTwoPhaseTest, SatisfiesContract) {
  ParallelTwoPhasePartitioner partitioner;
  const auto edges = TestGraph();
  InMemoryEdgeStream stream(edges);
  PartitionConfig config;
  config.num_partitions = 32;
  auto result = RunPartitioner(partitioner, stream, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->quality.num_edges, edges.size());
  EXPECT_GE(result->quality.replication_factor, 1.0);
}

TEST(ParallelTwoPhaseTest, QualityCloseToSequential) {
  const auto edges = TestGraph();
  PartitionConfig config;
  config.num_partitions = 32;

  TwoPhasePartitioner sequential;
  InMemoryEdgeStream stream_a(edges);
  auto serial = RunPartitioner(sequential, stream_a, config);
  ASSERT_TRUE(serial.ok());

  ParallelTwoPhasePartitioner::Options options;
  options.num_threads = 8;
  ParallelTwoPhasePartitioner parallel(options);
  InMemoryEdgeStream stream_b(edges);
  auto concurrent = RunPartitioner(parallel, stream_b, config);
  ASSERT_TRUE(concurrent.ok());

  // Stale replica reads cost a little quality; the paper predicts
  // "lower partitioning quality" from parallel staleness, but it must
  // stay in the same class.
  EXPECT_LT(concurrent->quality.replication_factor,
            serial->quality.replication_factor * 1.25);
}

TEST(ParallelTwoPhaseTest, SingleThreadWorks) {
  ParallelTwoPhasePartitioner::Options options;
  options.num_threads = 1;
  ParallelTwoPhasePartitioner partitioner(options);
  const auto edges = TestGraph();
  InMemoryEdgeStream stream(edges);
  PartitionConfig config;
  config.num_partitions = 8;
  auto result = RunPartitioner(partitioner, stream, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

TEST(ParallelTwoPhaseTest, CoversAllEdgesAcrossThreadCounts) {
  const auto edges = TestGraph();
  for (const uint32_t threads : {2u, 4u, 16u}) {
    ParallelTwoPhasePartitioner::Options options;
    options.num_threads = threads;
    options.batch_size = 1024;
    ParallelTwoPhasePartitioner partitioner(options);
    InMemoryEdgeStream stream(edges);
    PartitionConfig config;
    config.num_partitions = 16;
    EdgeListSink sink(16);
    PartitionStats stats;
    ASSERT_TRUE(partitioner.Partition(stream, config, sink, &stats).ok());
    EXPECT_EQ(stats.prepartitioned_edges + stats.remaining_edges,
              edges.size())
        << threads;
  }
}

TEST(ParallelTwoPhaseTest, RejectsBadOptions) {
  ParallelTwoPhasePartitioner::Options options;
  options.batch_size = 0;
  ParallelTwoPhasePartitioner partitioner(options);
  InMemoryEdgeStream stream({{0, 1}});
  PartitionConfig config;
  CountingSink sink(config.num_partitions);
  EXPECT_FALSE(partitioner.Partition(stream, config, sink, nullptr).ok());
}

}  // namespace
}  // namespace tpsl

#include <gtest/gtest.h>

#include <vector>

#include "core/parallel_two_phase.h"
#include "core/two_phase_partitioner.h"
#include "exec/thread_pool.h"
#include "graph/datasets.h"
#include "graph/in_memory_edge_stream.h"
#include "partition/runner.h"

namespace tpsl {
namespace {

std::vector<Edge> TestGraph() {
  auto edges = LoadDataset("OK", /*scale_shift=*/3);
  EXPECT_TRUE(edges.ok());
  return std::move(edges).value();
}

PartitionConfig ConfigWithThreads(uint32_t k, uint32_t threads) {
  PartitionConfig config;
  config.num_partitions = k;
  config.exec.threads = threads;
  return config;
}

TEST(ParallelTwoPhaseTest, SatisfiesContract) {
  ParallelTwoPhasePartitioner partitioner;
  const auto edges = TestGraph();
  InMemoryEdgeStream stream(edges);
  PartitionConfig config;
  config.num_partitions = 32;
  auto result = RunPartitioner(partitioner, stream, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->quality.num_edges, edges.size());
  EXPECT_GE(result->quality.replication_factor, 1.0);
}

TEST(ParallelTwoPhaseTest, QualityCloseToSequential) {
  const auto edges = TestGraph();

  TwoPhasePartitioner sequential;
  InMemoryEdgeStream stream_a(edges);
  auto serial = RunPartitioner(sequential, stream_a,
                               ConfigWithThreads(32, 1));
  ASSERT_TRUE(serial.ok());

  ParallelTwoPhasePartitioner parallel;
  InMemoryEdgeStream stream_b(edges);
  auto concurrent = RunPartitioner(parallel, stream_b,
                                   ConfigWithThreads(32, 8));
  ASSERT_TRUE(concurrent.ok());

  // Stale replica reads cost a little quality; the paper predicts
  // "lower partitioning quality" from parallel staleness, but it must
  // stay in the same class.
  EXPECT_LT(concurrent->quality.replication_factor,
            serial->quality.replication_factor * 1.25);
}

TEST(ParallelTwoPhaseTest, SingleThreadWorks) {
  ParallelTwoPhasePartitioner partitioner;
  const auto edges = TestGraph();
  InMemoryEdgeStream stream(edges);
  auto result =
      RunPartitioner(partitioner, stream, ConfigWithThreads(8, 1));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

/// The engine contract the 2psl_par_*_t1 baseline anchor relies on:
/// with one worker ParallelForEdges degrades to an in-order inline
/// loop and the parallel partitioner's per-edge decision chain
/// (scoring, overflow hashing, least-loaded fallback) matches the
/// sequential implementation step for step — so the produced
/// partitions must be byte-identical, not merely equal in quality.
TEST(ParallelTwoPhaseTest, SingleThreadMatchesSequential2pslExactly) {
  const auto edges = TestGraph();

  RunOptions keep;
  keep.keep_partitions = true;
  TwoPhasePartitioner sequential;
  InMemoryEdgeStream stream_a(edges);
  auto serial = RunPartitioner(sequential, stream_a, ConfigWithThreads(32, 1),
                               keep);
  ASSERT_TRUE(serial.ok());

  ParallelTwoPhasePartitioner parallel;
  InMemoryEdgeStream stream_b(edges);
  auto single = RunPartitioner(parallel, stream_b, ConfigWithThreads(32, 1),
                               keep);
  ASSERT_TRUE(single.ok());

  ASSERT_EQ(serial->partitions.size(), single->partitions.size());
  for (size_t p = 0; p < serial->partitions.size(); ++p) {
    EXPECT_EQ(serial->partitions[p], single->partitions[p])
        << "partition " << p << " differs";
  }
  EXPECT_EQ(serial->quality.replication_factor,
            single->quality.replication_factor);
}

/// Same anchor for the HDRF scoring mode (2PS-HDRF(par) vs 2PS-HDRF).
TEST(ParallelTwoPhaseTest, SingleThreadMatchesSequentialHdrfExactly) {
  const auto edges = TestGraph();

  TwoPhasePartitioner::Options seq_options;
  seq_options.scoring = TwoPhasePartitioner::ScoringMode::kHdrf;
  RunOptions keep;
  keep.keep_partitions = true;
  TwoPhasePartitioner sequential(seq_options);
  InMemoryEdgeStream stream_a(edges);
  auto serial = RunPartitioner(sequential, stream_a, ConfigWithThreads(16, 1),
                               keep);
  ASSERT_TRUE(serial.ok());

  ParallelTwoPhasePartitioner::Options par_options;
  par_options.scoring = ParallelTwoPhasePartitioner::ScoringMode::kHdrf;
  ParallelTwoPhasePartitioner parallel(par_options);
  InMemoryEdgeStream stream_b(edges);
  auto single = RunPartitioner(parallel, stream_b, ConfigWithThreads(16, 1),
                               keep);
  ASSERT_TRUE(single.ok());

  ASSERT_EQ(serial->partitions.size(), single->partitions.size());
  for (size_t p = 0; p < serial->partitions.size(); ++p) {
    EXPECT_EQ(serial->partitions[p], single->partitions[p])
        << "partition " << p << " differs";
  }
}

TEST(ParallelTwoPhaseTest, CoversAllEdgesAcrossThreadCounts) {
  const auto edges = TestGraph();
  for (const uint32_t threads : {2u, 4u, 16u}) {
    ParallelTwoPhasePartitioner partitioner;
    InMemoryEdgeStream stream(edges);
    PartitionConfig config = ConfigWithThreads(16, threads);
    config.exec.batch_size = 1024;
    EdgeListSink sink(16);
    PartitionStats stats;
    ASSERT_TRUE(partitioner.Partition(stream, config, sink, &stats).ok());
    EXPECT_EQ(stats.prepartitioned_edges + stats.remaining_edges,
              edges.size())
        << threads;
  }
}

TEST(ParallelTwoPhaseTest, RunsOnAnOwnedPool) {
  exec::ThreadPool pool(3);
  ParallelTwoPhasePartitioner partitioner;
  const auto edges = TestGraph();
  InMemoryEdgeStream stream(edges);
  PartitionConfig config = ConfigWithThreads(16, 3);
  config.exec.pool = &pool;
  auto result = RunPartitioner(partitioner, stream, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->quality.num_edges, edges.size());
}

TEST(ParallelTwoPhaseTest, RejectsBadExecConfig) {
  ParallelTwoPhasePartitioner partitioner;
  InMemoryEdgeStream stream({{0, 1}});
  PartitionConfig config;
  config.exec.batch_size = 0;
  CountingSink sink(config.num_partitions);
  EXPECT_FALSE(partitioner.Partition(stream, config, sink, nullptr).ok());
}

}  // namespace
}  // namespace tpsl

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "graph/csr.h"
#include "graph/degrees.h"
#include "graph/in_memory_edge_stream.h"
#include "graph/types.h"

namespace tpsl {
namespace {

TEST(DegreesTest, TriangleDegrees) {
  InMemoryEdgeStream stream({{0, 1}, {1, 2}, {2, 0}});
  auto table_or = ComputeDegrees(stream);
  ASSERT_TRUE(table_or.ok());
  EXPECT_EQ(table_or->num_vertices(), 3u);
  EXPECT_EQ(table_or->num_edges, 3u);
  EXPECT_EQ(table_or->degree(0), 2u);
  EXPECT_EQ(table_or->degree(1), 2u);
  EXPECT_EQ(table_or->degree(2), 2u);
  EXPECT_EQ(table_or->TotalVolume(), 6u);
}

TEST(DegreesTest, SelfLoopCountsTwice) {
  InMemoryEdgeStream stream({{5, 5}});
  auto table_or = ComputeDegrees(stream);
  ASSERT_TRUE(table_or.ok());
  EXPECT_EQ(table_or->degree(5), 2u);
  EXPECT_EQ(table_or->num_vertices(), 6u);  // ids 0..5
}

TEST(DegreesTest, EmptyStream) {
  InMemoryEdgeStream stream;
  auto table_or = ComputeDegrees(stream);
  ASSERT_TRUE(table_or.ok());
  EXPECT_EQ(table_or->num_vertices(), 0u);
  EXPECT_EQ(table_or->num_edges, 0u);
}

TEST(DegreesTest, MultiEdgesAccumulate) {
  InMemoryEdgeStream stream({{0, 1}, {0, 1}, {1, 0}});
  auto table_or = ComputeDegrees(stream);
  ASSERT_TRUE(table_or.ok());
  EXPECT_EQ(table_or->degree(0), 3u);
  EXPECT_EQ(table_or->degree(1), 3u);
}

TEST(CsrTest, NeighborsOfSquareGraph) {
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
  const CsrGraph graph = CsrGraph::FromEdges(edges);
  EXPECT_EQ(graph.num_vertices(), 4u);
  EXPECT_EQ(graph.num_edges(), 4u);
  for (VertexId v = 0; v < 4; ++v) {
    EXPECT_EQ(graph.degree(v), 2u);
  }
  const auto n0 = graph.neighbors(0);
  const std::set<VertexId> neighbors0(n0.begin(), n0.end());
  EXPECT_EQ(neighbors0, (std::set<VertexId>{1, 3}));
}

TEST(CsrTest, FromStreamMatchesFromEdges) {
  std::vector<Edge> edges;
  for (uint32_t i = 0; i < 200; ++i) {
    edges.push_back(Edge{i % 17, (i * 3) % 23});
  }
  const CsrGraph from_edges = CsrGraph::FromEdges(edges);
  InMemoryEdgeStream stream(edges);
  auto from_stream_or = CsrGraph::FromStream(stream);
  ASSERT_TRUE(from_stream_or.ok());
  const CsrGraph& from_stream = *from_stream_or;

  ASSERT_EQ(from_stream.num_vertices(), from_edges.num_vertices());
  ASSERT_EQ(from_stream.num_edges(), from_edges.num_edges());
  for (VertexId v = 0; v < from_edges.num_vertices(); ++v) {
    const auto a = from_edges.neighbors(v);
    const auto b = from_stream.neighbors(v);
    std::vector<VertexId> va(a.begin(), a.end());
    std::vector<VertexId> vb(b.begin(), b.end());
    std::sort(va.begin(), va.end());
    std::sort(vb.begin(), vb.end());
    EXPECT_EQ(va, vb) << "vertex " << v;
  }
}

TEST(CsrTest, SelfLoopAppearsTwiceInAdjacency) {
  const CsrGraph graph = CsrGraph::FromEdges({{0, 0}});
  EXPECT_EQ(graph.degree(0), 2u);
  for (const VertexId v : graph.neighbors(0)) {
    EXPECT_EQ(v, 0u);
  }
}

TEST(CsrTest, HeapBytesIsPositive) {
  const CsrGraph graph = CsrGraph::FromEdges({{0, 1}, {1, 2}});
  EXPECT_GT(graph.HeapBytes(), 0u);
}

TEST(CsrTest, EmptyGraph) {
  const CsrGraph graph = CsrGraph::FromEdges({});
  EXPECT_EQ(graph.num_vertices(), 0u);
  EXPECT_EQ(graph.num_edges(), 0u);
}

}  // namespace
}  // namespace tpsl

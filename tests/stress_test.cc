#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "baselines/registry.h"
#include "graph/edge_stream.h"
#include "graph/in_memory_edge_stream.h"
#include "partition/runner.h"

namespace tpsl {
namespace {

/// Stream that fails on the Nth Reset() — injects I/O failures into
/// arbitrary passes of multi-pass partitioners.
class FailingStream : public EdgeStream {
 public:
  FailingStream(std::vector<Edge> edges, int fail_on_reset)
      : inner_(std::move(edges)), fail_on_reset_(fail_on_reset) {}

  Status Reset() override {
    ++resets_;
    if (resets_ == fail_on_reset_) {
      return Status::IoError("injected failure on reset #" +
                             std::to_string(resets_));
    }
    return inner_.Reset();
  }

  size_t Next(Edge* out, size_t capacity) override {
    return inner_.Next(out, capacity);
  }

  uint64_t NumEdgesHint() const override { return inner_.NumEdgesHint(); }

 private:
  InMemoryEdgeStream inner_;
  int fail_on_reset_;
  int resets_ = 0;
};

std::vector<Edge> SmallGraph() {
  std::vector<Edge> edges;
  for (uint32_t i = 0; i < 500; ++i) {
    edges.push_back(Edge{i % 37, (i * 13) % 41});
  }
  for (Edge& e : edges) {
    if (e.first == e.second) {
      e.second += 1;
    }
  }
  return edges;
}

TEST(FailureInjectionTest, TwoPhasePropagatesIoErrorsFromEveryPass) {
  // 2PS-L makes 4 passes; failing any of them must surface the error.
  for (int failing_pass = 1; failing_pass <= 4; ++failing_pass) {
    FailingStream stream(SmallGraph(), failing_pass);
    auto partitioner = MakePartitioner("2PS-L");
    ASSERT_TRUE(partitioner.ok());
    PartitionConfig config;
    config.num_partitions = 4;
    CountingSink sink(4);
    const Status status =
        (*partitioner)->Partition(stream, config, sink, nullptr);
    EXPECT_EQ(status.code(), StatusCode::kIoError)
        << "pass " << failing_pass;
  }
}

TEST(FailureInjectionTest, SinglePassPartitionersPropagateToo) {
  for (const char* name : {"Hash", "DBH", "HDRF", "Greedy"}) {
    FailingStream stream(SmallGraph(), 1);
    auto partitioner = MakePartitioner(name);
    ASSERT_TRUE(partitioner.ok());
    PartitionConfig config;
    config.num_partitions = 4;
    CountingSink sink(4);
    EXPECT_FALSE(
        (*partitioner)->Partition(stream, config, sink, nullptr).ok())
        << name;
  }
}

/// Degenerate graph shapes every partitioner must survive.
class DegenerateGraphTest
    : public testing::TestWithParam<std::string> {};

TEST_P(DegenerateGraphTest, EmptyGraph) {
  auto partitioner = MakePartitioner(GetParam());
  ASSERT_TRUE(partitioner.ok());
  InMemoryEdgeStream stream;
  PartitionConfig config;
  config.num_partitions = 4;
  auto result = RunPartitioner(**partitioner, stream, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->quality.num_edges, 0u);
}

TEST_P(DegenerateGraphTest, SingleEdge) {
  auto partitioner = MakePartitioner(GetParam());
  ASSERT_TRUE(partitioner.ok());
  InMemoryEdgeStream stream({{0, 1}});
  PartitionConfig config;
  config.num_partitions = 4;
  auto result = RunPartitioner(**partitioner, stream, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->quality.num_edges, 1u);
  EXPECT_DOUBLE_EQ(result->quality.replication_factor, 1.0);
}

TEST_P(DegenerateGraphTest, SelfLoopsOnly) {
  auto partitioner = MakePartitioner(GetParam());
  ASSERT_TRUE(partitioner.ok());
  InMemoryEdgeStream stream({{3, 3}, {3, 3}, {5, 5}});
  PartitionConfig config;
  config.num_partitions = 2;
  auto result = RunPartitioner(**partitioner, stream, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->quality.num_edges, 3u);
}

TEST_P(DegenerateGraphTest, StarGraph) {
  // One hub: every partition must replicate it; RF stays modest for
  // the leaves.
  std::vector<Edge> edges;
  for (VertexId v = 1; v <= 400; ++v) {
    edges.push_back(Edge{0, v});
  }
  auto partitioner = MakePartitioner(GetParam());
  ASSERT_TRUE(partitioner.ok());
  InMemoryEdgeStream stream(edges);
  PartitionConfig config;
  config.num_partitions = 8;
  auto result = RunPartitioner(**partitioner, stream, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->quality.num_edges, 400u);
  // 401 vertices; hub replicas add at most k-1 extras.
  EXPECT_LE(result->quality.replication_factor, 1.1);
}

TEST_P(DegenerateGraphTest, SparseVertexIdSpace) {
  // Huge gaps between ids stress the O(|V|) arrays.
  std::vector<Edge> edges = {
      {0, 1000000}, {1000000, 2000000}, {2000000, 0}, {5, 2000000}};
  auto partitioner = MakePartitioner(GetParam());
  ASSERT_TRUE(partitioner.ok());
  InMemoryEdgeStream stream(edges);
  PartitionConfig config;
  config.num_partitions = 2;
  auto result = RunPartitioner(**partitioner, stream, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->quality.num_edges, edges.size());
}

TEST_P(DegenerateGraphTest, HeavyMultiEdges) {
  // The same edge repeated many times must still respect the cap.
  std::vector<Edge> edges(300, Edge{1, 2});
  for (uint32_t i = 0; i < 100; ++i) {
    edges.push_back(Edge{i, i + 1});
  }
  auto partitioner = MakePartitioner(GetParam());
  ASSERT_TRUE(partitioner.ok());
  InMemoryEdgeStream stream(edges);
  PartitionConfig config;
  config.num_partitions = 8;
  auto result = RunPartitioner(**partitioner, stream, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->quality.num_edges, 400u);
}

INSTANTIATE_TEST_SUITE_P(
    CapEnforcingPartitioners, DegenerateGraphTest,
    testing::Values("2PS-L", "2PS-HDRF", "2PS-L(par)", "HDRF", "Greedy",
                    "ADWISE", "NE", "SNE", "DNE", "HEP-10", "METIS*"),
    [](const testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-' || c == '*' || c == '(' || c == ')') {
          c = '_';
        }
      }
      return name;
    });

TEST(CapStressTest, TightAlphaWithAwkwardK) {
  // alpha = 1.0 and k that does not divide |E|: feasibility must come
  // from the ceil in PartitionCapacity.
  const auto edges = SmallGraph();  // 500 edges
  for (const uint32_t k : {3u, 7u, 11u, 13u}) {
    for (const char* name : {"2PS-L", "HDRF", "Greedy"}) {
      auto partitioner = MakePartitioner(name);
      ASSERT_TRUE(partitioner.ok());
      InMemoryEdgeStream stream(edges);
      PartitionConfig config;
      config.num_partitions = k;
      config.balance_factor = 1.0;
      auto result = RunPartitioner(**partitioner, stream, config);
      ASSERT_TRUE(result.ok())
          << name << " k=" << k << ": " << result.status().ToString();
    }
  }
}

TEST(CapStressTest, MoreParitionsThanEdges) {
  InMemoryEdgeStream stream({{0, 1}, {1, 2}});
  for (const char* name : {"2PS-L", "HDRF", "DBH"}) {
    auto partitioner = MakePartitioner(name);
    ASSERT_TRUE(partitioner.ok());
    PartitionConfig config;
    config.num_partitions = 16;
    auto result = RunPartitioner(**partitioner, stream, config);
    ASSERT_TRUE(result.ok()) << name;
    EXPECT_EQ(result->quality.num_edges, 2u);
  }
}

}  // namespace
}  // namespace tpsl

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

#include "graph/csr.h"
#include "graph/generators.h"
#include "graph/reorder.h"

namespace tpsl {
namespace {

bool IsPermutation(const std::vector<VertexId>& ids) {
  std::vector<VertexId> sorted = ids;
  std::sort(sorted.begin(), sorted.end());
  for (VertexId i = 0; i < sorted.size(); ++i) {
    if (sorted[i] != i) {
      return false;
    }
  }
  return true;
}

TEST(ReorderTest, BfsOrderIsPermutation) {
  SocialNetworkConfig config;
  config.num_vertices = 1 << 10;
  const auto edges = GenerateSocialNetwork(config);
  const CsrGraph graph = CsrGraph::FromEdges(edges);
  EXPECT_TRUE(IsPermutation(BfsOrder(graph)));
}

TEST(ReorderTest, BfsOrderGivesNeighborsNearbyIds) {
  // Path graph: BFS from 0 must produce identity (already optimal).
  std::vector<Edge> path;
  for (VertexId v = 0; v + 1 < 50; ++v) {
    path.push_back(Edge{v, v + 1});
  }
  const CsrGraph graph = CsrGraph::FromEdges(path);
  const std::vector<VertexId> order = BfsOrder(graph);
  for (VertexId v = 0; v < 50; ++v) {
    EXPECT_EQ(order[v], v);
  }
}

TEST(ReorderTest, BfsCoversDisconnectedComponents) {
  const CsrGraph graph = CsrGraph::FromEdges({{0, 1}, {5, 6}});
  EXPECT_TRUE(IsPermutation(BfsOrder(graph)));
}

TEST(ReorderTest, DegreeOrderPutsHubsFirst) {
  // Star with hub 9.
  std::vector<Edge> edges;
  for (VertexId v = 0; v < 9; ++v) {
    edges.push_back(Edge{9, v});
  }
  const CsrGraph graph = CsrGraph::FromEdges(edges);
  const std::vector<VertexId> order = DegreeOrder(graph);
  EXPECT_TRUE(IsPermutation(order));
  EXPECT_EQ(order[9], 0u);  // hub gets id 0
}

TEST(ReorderTest, RandomOrderIsSeededPermutation) {
  const auto a = RandomOrder(1000, 7);
  const auto b = RandomOrder(1000, 7);
  const auto c = RandomOrder(1000, 8);
  EXPECT_TRUE(IsPermutation(a));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(ReorderTest, RelabelPreservesStructure) {
  std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 0}};
  const std::vector<VertexId> permutation = {2, 0, 1};
  ASSERT_TRUE(RelabelEdges(permutation, &edges).ok());
  EXPECT_EQ(edges, (std::vector<Edge>{{2, 0}, {0, 1}, {1, 2}}));
  // Degree multiset is invariant under relabeling.
  const CsrGraph graph = CsrGraph::FromEdges(edges);
  for (VertexId v = 0; v < 3; ++v) {
    EXPECT_EQ(graph.degree(v), 2u);
  }
}

TEST(ReorderTest, RelabelRejectsOutOfRange) {
  std::vector<Edge> edges = {{0, 5}};
  const std::vector<VertexId> permutation = {0, 1};
  EXPECT_FALSE(RelabelEdges(permutation, &edges).ok());
}

}  // namespace
}  // namespace tpsl

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "exec/parallel_for_edges.h"
#include "exec/thread_pool.h"
#include "graph/binary_edge_list.h"
#include "graph/generators.h"
#include "io/compressed_edge_writer.h"
#include "io/edge_block_format.h"
#include "io/edge_file.h"
#include "io/mmap_edge_stream.h"
#include "io/throttled_edge_stream.h"
#include "util/random.h"

namespace tpsl {
namespace io {
namespace {

std::string TempPath(const std::string& stem) {
  return testing::TempDir() + "/" + stem + ".bin";
}

uint64_t FileBytes(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  EXPECT_NE(file, nullptr);
  std::fseek(file, 0, SEEK_END);
  const long bytes = std::ftell(file);
  std::fclose(file);
  return static_cast<uint64_t>(bytes);
}

/// Round-trips `edges` through the compressed format and checks exact
/// edge recovery plus the trailer's logical digest against the raw
/// byte digest (the property that keeps raw-era catalog pins valid).
void RoundTrip(const std::vector<Edge>& edges, const std::string& stem) {
  const std::string path = TempPath(stem);
  ASSERT_TRUE(WriteEdgeFile(path, edges, EdgeFileFormat::kCompressedBlocks)
                  .ok());
  auto format = SniffEdgeFileFormat(path);
  ASSERT_TRUE(format.ok());
  EXPECT_EQ(*format, EdgeFileFormat::kCompressedBlocks);

  auto readback = ReadEdgeFile(path);
  ASSERT_TRUE(readback.ok()) << readback.status().ToString();
  EXPECT_EQ(*readback, edges) << stem;

  // The mmap reader agrees in both access modes, across two passes.
  for (const bool decode_ahead : {false, true}) {
    MmapEdgeStream::Options options;
    options.decode_ahead = decode_ahead;
    auto stream = MmapEdgeStream::Open(path, options);
    ASSERT_TRUE(stream.ok()) << stream.status().ToString();
    for (int pass = 0; pass < 2; ++pass) {
      std::vector<Edge> got;
      ASSERT_TRUE(
          ForEachEdge(**stream, [&](const Edge& e) { got.push_back(e); })
              .ok());
      EXPECT_EQ(got, edges) << stem << " decode_ahead=" << decode_ahead;
      ASSERT_TRUE((*stream)->Health().ok());
    }
    EXPECT_EQ((*stream)->NumEdgesHint(), edges.size());
  }
  std::remove(path.c_str());
}

TEST(EdgeBlockFormatTest, RoundTripsGeneratedFamilies) {
  RmatConfig rmat;
  rmat.scale = 12;
  RoundTrip(GenerateRmat(rmat), "rt_rmat");

  ErdosRenyiConfig er;
  er.num_vertices = 1 << 12;
  er.num_edges = 1 << 16;
  RoundTrip(GenerateErdosRenyi(er), "rt_er");

  BarabasiAlbertConfig ba;
  ba.num_vertices = 1 << 12;
  RoundTrip(GenerateBarabasiAlbert(ba), "rt_ba");

  PlantedPartitionConfig pp;
  pp.num_vertices = 1 << 12;
  pp.num_edges = 1 << 16;
  RoundTrip(GeneratePlantedPartition(pp), "rt_pp");

  SocialNetworkConfig sn;
  sn.num_vertices = 1 << 13;
  RoundTrip(GenerateSocialNetwork(sn), "rt_sn");
}

TEST(EdgeBlockFormatTest, RoundTripsAdversarialInputs) {
  // Duplicate edges (deltas of zero in both columns).
  std::vector<Edge> duplicates(5000, Edge{7, 7});
  RoundTrip(duplicates, "rt_dup");

  // Self-loop-adjacent ids: both columns track each other closely, so
  // the delta coder sees tiny oscillating values.
  std::vector<Edge> loops;
  for (uint32_t i = 0; i < 5000; ++i) {
    loops.push_back(Edge{i, i});
    loops.push_back(Edge{i, i + 1});
  }
  RoundTrip(loops, "rt_loops");

  // Max-u32 endpoints: full 32-bit raw widths and 33-bit zigzag deltas.
  const uint32_t max = std::numeric_limits<uint32_t>::max();
  std::vector<Edge> extremes;
  for (uint32_t i = 0; i < 2000; ++i) {
    extremes.push_back(Edge{(i % 2 == 0) ? max : 0, max - i});
    extremes.push_back(Edge{0, (i % 3 == 0) ? max : i});
  }
  RoundTrip(extremes, "rt_extreme");

  // Alternating extremes defeat delta coding entirely (ties go raw).
  std::vector<Edge> alternating;
  for (uint32_t i = 0; i < 3000; ++i) {
    alternating.push_back(Edge{i % 2 == 0 ? 0 : max, i % 2 == 0 ? max : 0});
  }
  RoundTrip(alternating, "rt_alt");

  // Empty and single-edge files.
  RoundTrip({}, "rt_empty");
  RoundTrip({Edge{3, 9}}, "rt_one");

  // Exactly one full default block, one edge more, one edge less.
  std::vector<Edge> exact;
  SplitMix64 rng(42);
  for (uint32_t i = 0; i < kDefaultBlockEdges; ++i) {
    exact.push_back(Edge{static_cast<uint32_t>(rng.Next()),
                         static_cast<uint32_t>(rng.Next())});
  }
  RoundTrip(exact, "rt_block_exact");
  std::vector<Edge> over = exact;
  over.push_back(Edge{1, 2});
  RoundTrip(over, "rt_block_over");
  std::vector<Edge> under(exact.begin(), exact.end() - 1);
  RoundTrip(under, "rt_block_under");
}

TEST(EdgeBlockFormatTest, LogicalChecksumMatchesRawDigest) {
  // The trailer digest is FNV-1a over the decoded edge bytes — exactly
  // the digest the catalog pins for a raw file of the same edges.
  RmatConfig rmat;
  rmat.scale = 10;
  const auto edges = GenerateRmat(rmat);
  const uint64_t raw_digest =
      Fnv1a64(edges.data(), edges.size() * sizeof(Edge));

  const std::string path = TempPath("digest");
  auto writer = CompressedEdgeWriter::Open(path);
  ASSERT_TRUE(writer.ok());
  (*writer)->Append(edges);
  ASSERT_TRUE((*writer)->Finish().ok());
  EXPECT_EQ((*writer)->edge_checksum(), raw_digest);
  EXPECT_EQ((*writer)->edges_written(), edges.size());
  EXPECT_EQ((*writer)->bytes_written(), FileBytes(path));
  std::remove(path.c_str());
}

TEST(EdgeBlockFormatTest, CompressesClusteredGraphs) {
  // Generated graphs have locally clustered ids; the block coder must
  // beat raw comfortably (the catalog gate demands ≥1.5× on rmat).
  RmatConfig rmat;
  rmat.scale = 14;
  const auto edges = GenerateRmat(rmat);
  const std::string path = TempPath("ratio");
  ASSERT_TRUE(
      WriteEdgeFile(path, edges, EdgeFileFormat::kCompressedBlocks).ok());
  const uint64_t raw_bytes = edges.size() * sizeof(Edge);
  const uint64_t compressed = FileBytes(path);
  EXPECT_LT(compressed * 3, raw_bytes * 2)
      << "compression ratio below 1.5x: " << compressed << " vs "
      << raw_bytes;
  std::remove(path.c_str());
}

TEST(EdgeBlockFormatTest, SniffsRawFiles) {
  const std::vector<Edge> edges = {{1, 2}, {3, 4}, {5, 6}};
  const std::string path = TempPath("sniff_raw");
  ASSERT_TRUE(WriteBinaryEdgeList(path, edges).ok());
  auto format = SniffEdgeFileFormat(path);
  ASSERT_TRUE(format.ok());
  EXPECT_EQ(*format, EdgeFileFormat::kRaw);
  auto readback = ReadEdgeFile(path);
  ASSERT_TRUE(readback.ok());
  EXPECT_EQ(*readback, edges);
  std::remove(path.c_str());
}

TEST(EdgeBlockFormatTest, DetectsCorruptedBlockPayload) {
  RmatConfig rmat;
  rmat.scale = 10;
  const auto edges = GenerateRmat(rmat);
  const std::string path = TempPath("corrupt");
  ASSERT_TRUE(
      WriteEdgeFile(path, edges, EdgeFileFormat::kCompressedBlocks).ok());

  // Flip one payload byte in the middle of the file — past the first
  // block header, before the trailer.
  std::FILE* file = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(file, nullptr);
  const long offset = static_cast<long>(kEdgeFileHeaderBytes +
                                        kEdgeBlockHeaderBytes + 100);
  ASSERT_EQ(std::fseek(file, offset, SEEK_SET), 0);
  int byte = std::fgetc(file);
  ASSERT_NE(byte, EOF);
  ASSERT_EQ(std::fseek(file, offset, SEEK_SET), 0);
  std::fputc(byte ^ 0xff, file);
  std::fclose(file);

  for (const bool decode_ahead : {false, true}) {
    MmapEdgeStream::Options options;
    options.decode_ahead = decode_ahead;
    auto stream = MmapEdgeStream::Open(path, options);
    ASSERT_TRUE(stream.ok());
    std::vector<Edge> got;
    Edge buf[512];
    for (;;) {
      const size_t n = (*stream)->Next(buf, 512);
      if (n == 0) {
        break;
      }
      got.insert(got.end(), buf, buf + n);
    }
    // The checksum mismatch is a sticky Health() error, not silent
    // short delivery.
    EXPECT_FALSE((*stream)->Health().ok())
        << "decode_ahead=" << decode_ahead;
    EXPECT_LT(got.size(), edges.size());
  }

  // The catalog's full-file reader refuses too.
  EXPECT_FALSE(ReadEdgeFile(path).ok());
  std::remove(path.c_str());
}

TEST(EdgeBlockFormatTest, DetectsTruncation) {
  RmatConfig rmat;
  rmat.scale = 10;
  const auto edges = GenerateRmat(rmat);
  const std::string path = TempPath("truncate");
  ASSERT_TRUE(
      WriteEdgeFile(path, edges, EdgeFileFormat::kCompressedBlocks).ok());
  const uint64_t full = FileBytes(path);

  // Chop off the trailer plus a bit of the last block.
  ASSERT_EQ(truncate(path.c_str(),
                     static_cast<off_t>(full - kEdgeFileTrailerBytes - 7)),
            0);
  auto stream = MmapEdgeStream::Open(path);
  EXPECT_FALSE(stream.ok());
  EXPECT_FALSE(ReadEdgeFile(path).ok());
  std::remove(path.c_str());
}

TEST(EdgeBlockFormatTest, ParallelBlockDecodeMatchesSequential) {
  // ParallelForEdges takes the BlockEdgeStream path for mmap streams:
  // workers decode blocks concurrently. The multiset of delivered
  // edges must match the sequential pass exactly.
  RmatConfig rmat;
  rmat.scale = 13;
  const auto edges = GenerateRmat(rmat);
  const std::string path = TempPath("parallel");
  ASSERT_TRUE(
      WriteEdgeFile(path, edges, EdgeFileFormat::kCompressedBlocks).ok());

  uint64_t want_sum = 0;
  for (const Edge& e : edges) {
    want_sum += e.first * 2654435761u + e.second;
  }

  auto stream = MmapEdgeStream::Open(path);
  ASSERT_TRUE(stream.ok());
  exec::ThreadPool pool(4);
  exec::ParallelForEdgesOptions options;
  options.workers = 4;
  std::atomic<uint64_t> got_sum{0};
  std::atomic<uint64_t> got_count{0};
  ASSERT_TRUE(exec::ParallelForEdges(
                  **stream, pool, options,
                  [&](const Edge* batch, size_t count) {
                    uint64_t sum = 0;
                    for (size_t i = 0; i < count; ++i) {
                      sum += batch[i].first * 2654435761u + batch[i].second;
                    }
                    got_sum.fetch_add(sum, std::memory_order_relaxed);
                    got_count.fetch_add(count, std::memory_order_relaxed);
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(got_count.load(), edges.size());
  EXPECT_EQ(got_sum.load(), want_sum);
  ASSERT_TRUE((*stream)->Health().ok());
  std::remove(path.c_str());
}

TEST(EdgeBlockFormatTest, IoStatsReportCompressedBytes) {
  RmatConfig rmat;
  rmat.scale = 12;
  const auto edges = GenerateRmat(rmat);
  const std::string path = TempPath("iostats");
  ASSERT_TRUE(
      WriteEdgeFile(path, edges, EdgeFileFormat::kCompressedBlocks).ok());
  const uint64_t file_bytes = FileBytes(path);

  auto stream = MmapEdgeStream::Open(path);
  ASSERT_TRUE(stream.ok());
  for (int pass = 1; pass <= 2; ++pass) {
    ASSERT_TRUE(ForEachEdge(**stream, [](const Edge&) {}).ok());
    const StreamIoStats io = (*stream)->Io();
    EXPECT_TRUE(io.disk_backed);
    // A full pass reads exactly the file: every block once plus the
    // fixed framing.
    EXPECT_EQ(io.disk_bytes_this_pass, file_bytes);
    EXPECT_EQ(io.disk_bytes_total, file_bytes * pass);
    EXPECT_EQ(io.passes, static_cast<uint64_t>(pass));
  }
  std::remove(path.c_str());
}

TEST(ThrottledCompressedTest, ChargesOnDiskBytesNotDecodedBytes) {
  // Satellite: a throttled pass over a compressed file must bill the
  // simulated device for the compressed (on-disk) bytes, not the
  // decoded edge volume.
  RmatConfig rmat;
  rmat.scale = 12;
  const auto edges = GenerateRmat(rmat);
  const std::string path = TempPath("throttle");
  ASSERT_TRUE(
      WriteEdgeFile(path, edges, EdgeFileFormat::kCompressedBlocks).ok());
  const uint64_t file_bytes = FileBytes(path);
  const uint64_t decoded_bytes = edges.size() * sizeof(Edge);
  ASSERT_LT(file_bytes, decoded_bytes);

  auto stream = MmapEdgeStream::Open(path);
  ASSERT_TRUE(stream.ok());
  ThrottledEdgeStream throttled(stream->get(), kHddProfile);
  for (int pass = 1; pass <= 3; ++pass) {
    ASSERT_TRUE(ForEachEdge(throttled, [](const Edge&) {}).ok());
    EXPECT_EQ(throttled.bytes_this_pass(), file_bytes);
    EXPECT_EQ(throttled.bytes_read(), file_bytes * pass);
  }
  // Simulated device time follows the compressed account.
  EXPECT_DOUBLE_EQ(
      throttled.SimulatedIoSeconds(),
      static_cast<double>(3 * file_bytes) /
          static_cast<double>(kHddProfile.bytes_per_second));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace io
}  // namespace tpsl

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/exec_context.h"
#include "exec/parallel_for_edges.h"
#include "exec/thread_pool.h"
#include "graph/in_memory_edge_stream.h"

namespace tpsl {
namespace exec {
namespace {

TEST(ResolveThreadCountTest, ZeroMeansHardwareConcurrency) {
  const uint32_t resolved = ResolveThreadCount(0);
  EXPECT_GE(resolved, 1u);
  const uint32_t hardware = std::thread::hardware_concurrency();
  if (hardware != 0) {
    EXPECT_EQ(resolved, hardware);
  }
}

TEST(ResolveThreadCountTest, ExplicitCountPassesThrough) {
  EXPECT_EQ(ResolveThreadCount(3), 3u);
  EXPECT_EQ(ResolveThreadCount(1), 1u);
}

TEST(ResolveThreadCountTest, CapBounds) {
  EXPECT_EQ(ResolveThreadCount(16, 4), 4u);
  EXPECT_EQ(ResolveThreadCount(2, 4), 2u);
  EXPECT_EQ(ResolveThreadCount(0, 1), 1u);
}

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter]() { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // never started, nothing pending
  EXPECT_EQ(pool.num_threads(), 2u);
}

TEST(ThreadPoolTest, ShutdownUnderPendingWorkDrainsEverything) {
  // More tasks than workers, each slow enough that the queue is still
  // full when the destructor runs: shutdown must complete every
  // submitted task (drain semantics), then join cleanly.
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&counter]() {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        counter.fetch_add(1);
      });
    }
    // No Wait(): destruction races with a mostly unconsumed queue.
  }
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughWait) {
  ThreadPool pool(2);
  std::atomic<int> survivors{0};
  pool.Submit([]() { throw std::runtime_error("task boom"); });
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&survivors]() { survivors.fetch_add(1); });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The throwing task took down neither its worker nor the pool.
  EXPECT_EQ(survivors.load(), 8);
  pool.Submit([&survivors]() { survivors.fetch_add(1); });
  pool.Wait();  // exception was cleared by the previous Wait
  EXPECT_EQ(survivors.load(), 9);
}

TEST(ThreadPoolTest, GlobalPoolIsShared) {
  ThreadPool& a = ThreadPool::Global();
  ThreadPool& b = ThreadPool::Global();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.num_threads(), 1u);
}

TEST(TaskGroupTest, WaitCoversOnlyOwnTasks) {
  ThreadPool pool(4);
  std::atomic<int> mine{0};
  std::atomic<int> theirs{0};
  // A slow foreign task submitted directly to the pool must not block
  // the group's Wait().
  pool.Submit([&theirs]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    theirs.fetch_add(1);
  });
  TaskGroup group(pool);
  for (int i = 0; i < 16; ++i) {
    group.Submit([&mine]() { mine.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(mine.load(), 16);
  pool.Wait();
  EXPECT_EQ(theirs.load(), 1);
}

TEST(TaskGroupTest, ExceptionPropagatesThroughGroupWait) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  group.Submit([]() { throw std::runtime_error("group boom"); });
  EXPECT_THROW(group.Wait(), std::runtime_error);
  pool.Wait();  // the group caught the exception before the pool saw it
}

TEST(ExecContextTest, DefaultsToGlobalPool) {
  ExecContext context;
  EXPECT_EQ(&context.pool_or_global(), &ThreadPool::Global());
  ThreadPool owned(2);
  context.pool = &owned;
  EXPECT_EQ(&context.pool_or_global(), &owned);
  context.threads = 7;
  EXPECT_EQ(context.ResolveThreads(), 7u);
  EXPECT_EQ(context.ResolveThreads(/*cap=*/3), 3u);
}

std::vector<Edge> MakeEdges(size_t count) {
  std::vector<Edge> edges;
  edges.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    edges.push_back({static_cast<VertexId>(i),
                     static_cast<VertexId>(i + 1)});
  }
  return edges;
}

TEST(ParallelForEdgesTest, VisitsEveryEdgeExactlyOnce) {
  const auto edges = MakeEdges(10000);
  InMemoryEdgeStream stream(edges);
  ThreadPool pool(4);
  ParallelForEdgesOptions options;
  options.batch_size = 256;
  options.workers = 4;
  std::mutex mutex;
  std::set<VertexId> seen;
  std::atomic<uint64_t> total{0};
  const Status status = ParallelForEdges(
      stream, pool, options, [&](const Edge* batch, size_t n) -> Status {
        total.fetch_add(n);
        std::lock_guard<std::mutex> lock(mutex);
        for (size_t i = 0; i < n; ++i) {
          seen.insert(batch[i].first);
        }
        return Status::OK();
      });
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(total.load(), edges.size());
  EXPECT_EQ(seen.size(), edges.size());  // no duplicates, no gaps
}

TEST(ParallelForEdgesTest, SingleWorkerPreservesStreamOrder) {
  const auto edges = MakeEdges(5000);
  InMemoryEdgeStream stream(edges);
  ThreadPool pool(4);  // pool size must not matter for workers=1
  ParallelForEdgesOptions options;
  options.batch_size = 128;
  options.workers = 1;
  std::vector<VertexId> order;
  const Status status = ParallelForEdges(
      stream, pool, options, [&](const Edge* batch, size_t n) -> Status {
        for (size_t i = 0; i < n; ++i) {
          order.push_back(batch[i].first);
        }
        return Status::OK();
      });
  ASSERT_TRUE(status.ok());
  ASSERT_EQ(order.size(), edges.size());
  for (size_t i = 0; i < order.size(); ++i) {
    ASSERT_EQ(order[i], static_cast<VertexId>(i));
  }
}

TEST(ParallelForEdgesTest, ReachesRequestedConcurrency) {
  // The scaling claim the 2psl_par_* scenarios stand on: with enough
  // batches of slow work, the in-flight bound is actually reached —
  // `workers` callbacks run simultaneously (sleeps overlap even on a
  // single hardware core, so this holds in 1-CPU CI containers too).
  const auto edges = MakeEdges(10000);
  for (const uint32_t workers : {2u, 4u}) {
    InMemoryEdgeStream stream(edges);
    ThreadPool pool(4);
    ParallelForEdgesOptions options;
    options.batch_size = 100;  // 100 batches per pass
    options.workers = workers;
    std::atomic<int> in_flight{0};
    std::atomic<int> peak{0};
    const Status status = ParallelForEdges(
        stream, pool, options, [&](const Edge*, size_t) -> Status {
          const int now = in_flight.fetch_add(1) + 1;
          int seen = peak.load();
          while (now > seen && !peak.compare_exchange_weak(seen, now)) {
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          in_flight.fetch_sub(1);
          return Status::OK();
        });
    ASSERT_TRUE(status.ok()) << workers;
    EXPECT_EQ(peak.load(), static_cast<int>(workers)) << workers;
  }
}

TEST(ParallelForEdgesTest, WorkerErrorStopsDispatchAndPropagates) {
  const auto edges = MakeEdges(100000);
  InMemoryEdgeStream stream(edges);
  ThreadPool pool(4);
  ParallelForEdgesOptions options;
  options.batch_size = 64;
  options.workers = 4;
  std::atomic<uint64_t> processed{0};
  const Status status = ParallelForEdges(
      stream, pool, options, [&](const Edge* batch, size_t n) -> Status {
        if (batch[0].first == 0) {
          return Status::Internal("first batch fails");
        }
        processed.fetch_add(n);
        return Status::OK();
      });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  // Dispatch stopped early: nowhere near the full stream was handed out.
  EXPECT_LT(processed.load(), edges.size());
}

TEST(ParallelForEdgesTest, WorkerExceptionBecomesStatus) {
  const auto edges = MakeEdges(1000);
  for (const uint32_t workers : {1u, 4u}) {
    InMemoryEdgeStream stream(edges);
    ThreadPool pool(4);
    ParallelForEdgesOptions options;
    options.batch_size = 64;
    options.workers = workers;
    const Status status = ParallelForEdges(
        stream, pool, options, [&](const Edge*, size_t) -> Status {
          throw std::runtime_error("worker exploded");
        });
    EXPECT_FALSE(status.ok()) << workers;
    EXPECT_EQ(status.code(), StatusCode::kInternal) << workers;
  }
}

/// A stream that fails sticky mid-pass: delivers `good_batches` calls
/// worth of edges, then starts returning 0 with a non-OK Health — the
/// file-stream failure mode ParallelForEdges must surface.
class FailingStream : public EdgeStream {
 public:
  explicit FailingStream(size_t good_edges) : good_edges_(good_edges) {}

  Status Reset() override {
    delivered_ = 0;
    return Status::OK();
  }

  size_t Next(Edge* out, size_t capacity) override {
    if (delivered_ >= good_edges_) {
      failed_ = true;
      return 0;
    }
    const size_t n = std::min(capacity, good_edges_ - delivered_);
    for (size_t i = 0; i < n; ++i) {
      out[i] = {static_cast<VertexId>(delivered_ + i),
                static_cast<VertexId>(delivered_ + i + 1)};
    }
    delivered_ += n;
    return n;
  }

  Status Health() const override {
    return failed_ ? Status::IoError("disk on fire") : Status::OK();
  }

 private:
  size_t good_edges_;
  size_t delivered_ = 0;
  bool failed_ = false;
};

TEST(ParallelForEdgesTest, PropagatesStickyStreamHealth) {
  for (const uint32_t workers : {1u, 4u}) {
    FailingStream stream(1000);
    ThreadPool pool(4);
    ParallelForEdgesOptions options;
    options.batch_size = 128;
    options.workers = workers;
    std::atomic<uint64_t> total{0};
    const Status status = ParallelForEdges(
        stream, pool, options, [&](const Edge*, size_t n) -> Status {
          total.fetch_add(n);
          return Status::OK();
        });
    EXPECT_FALSE(status.ok()) << workers;
    EXPECT_EQ(status.code(), StatusCode::kIoError) << workers;
    EXPECT_EQ(total.load(), 1000u) << workers;  // everything before the fail
  }
}

TEST(ParallelForEdgesTest, RejectsZeroBatchSize) {
  InMemoryEdgeStream stream({{0, 1}});
  ThreadPool pool(2);
  ParallelForEdgesOptions options;
  options.batch_size = 0;
  const Status status = ParallelForEdges(
      stream, pool, options,
      [](const Edge*, size_t) -> Status { return Status::OK(); });
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(ParallelForEdgesTest, EmptyStreamIsFine) {
  for (const uint32_t workers : {1u, 4u}) {
    InMemoryEdgeStream stream(std::vector<Edge>{});
    ThreadPool pool(4);
    ParallelForEdgesOptions options;
    options.workers = workers;
    std::atomic<int> calls{0};
    const Status status = ParallelForEdges(
        stream, pool, options, [&](const Edge*, size_t) -> Status {
          calls.fetch_add(1);
          return Status::OK();
        });
    EXPECT_TRUE(status.ok()) << workers;
    EXPECT_EQ(calls.load(), 0) << workers;
  }
}

}  // namespace
}  // namespace exec
}  // namespace tpsl

#include <gtest/gtest.h>

#include <vector>

#include "dynamic/incremental_partitioner.h"
#include "graph/generators.h"
#include "graph/in_memory_edge_stream.h"
#include "partition/assignment_sink.h"
#include "partition/metrics.h"
#include "util/random.h"

namespace tpsl {
namespace {

std::vector<Edge> BaseGraph() {
  SocialNetworkConfig config;
  config.num_vertices = 1 << 12;
  config.clique_size = 8;
  config.seed = 99;
  return GenerateSocialNetwork(config);
}

TEST(IncrementalTest, BootstrapAssignsEveryEdgeWithinCap) {
  const auto edges = BaseGraph();
  InMemoryEdgeStream stream(edges);
  PartitionConfig config;
  config.num_partitions = 16;
  IncrementalPartitioner partitioner(config);
  EdgeListSink sink(16);
  ASSERT_TRUE(partitioner.Bootstrap(stream, sink).ok());

  const PartitionQuality quality = ComputeQuality(sink.partitions());
  EXPECT_EQ(quality.num_edges, edges.size());
  EXPECT_LE(quality.max_partition_size,
            config.PartitionCapacity(edges.size()));
  EXPECT_EQ(partitioner.num_edges(), edges.size());
  EXPECT_DOUBLE_EQ(partitioner.StalenessRatio(), 0.0);
}

TEST(IncrementalTest, AddEdgeKeepsBalance) {
  const auto edges = BaseGraph();
  InMemoryEdgeStream stream(edges);
  PartitionConfig config;
  config.num_partitions = 8;
  IncrementalPartitioner partitioner(config);
  CountingSink sink(8);
  ASSERT_TRUE(partitioner.Bootstrap(stream, sink).ok());

  // Insert a burst of fresh edges, including brand-new vertices.
  SplitMix64 rng(5);
  const VertexId base_vertices = 1 << 12;
  for (int i = 0; i < 5000; ++i) {
    const VertexId u = static_cast<VertexId>(
        rng.NextBounded(base_vertices + 500));
    VertexId v =
        static_cast<VertexId>(rng.NextBounded(base_vertices + 500));
    if (u == v) {
      v = (v + 1) % (base_vertices + 500);
    }
    auto placed = partitioner.AddEdge(Edge{u, v});
    ASSERT_TRUE(placed.ok());
    EXPECT_LT(*placed, 8u);
  }

  const uint64_t capacity = static_cast<uint64_t>(
      config.balance_factor * partitioner.num_edges() / 8) + 1;
  for (const uint64_t load : partitioner.loads()) {
    EXPECT_LE(load, capacity);
  }
  EXPECT_GT(partitioner.StalenessRatio(), 0.0);
  EXPECT_LT(partitioner.StalenessRatio(), 1.0);
}

TEST(IncrementalTest, IncrementalQualityTracksClusters) {
  // Edges added between same-clique vertices should land where the
  // clique already lives — the maintained RF must stay near the
  // bootstrap RF.
  const auto edges = BaseGraph();
  InMemoryEdgeStream stream(edges);
  PartitionConfig config;
  config.num_partitions = 16;
  IncrementalPartitioner partitioner(config);
  CountingSink sink(16);
  ASSERT_TRUE(partitioner.Bootstrap(stream, sink).ok());
  const double rf_before = partitioner.CurrentReplicationFactor();

  SplitMix64 rng(7);
  for (int i = 0; i < 2000; ++i) {
    const VertexId base =
        static_cast<VertexId>(rng.NextBounded((1 << 12) / 8)) * 8;
    const VertexId u = base + static_cast<VertexId>(rng.NextBounded(8));
    VertexId v = base + static_cast<VertexId>(rng.NextBounded(8));
    if (u == v) {
      v = base + ((v - base + 1) % 8);
    }
    ASSERT_TRUE(partitioner.AddEdge(Edge{u, v}).ok());
  }
  // Intra-clique insertions must not inflate replication much.
  EXPECT_LT(partitioner.CurrentReplicationFactor(), rf_before * 1.15);
}

TEST(IncrementalTest, RemoveEdgeReleasesLoad) {
  const auto edges = BaseGraph();
  InMemoryEdgeStream stream(edges);
  PartitionConfig config;
  config.num_partitions = 4;
  IncrementalPartitioner partitioner(config);
  EdgeListSink sink(4);
  ASSERT_TRUE(partitioner.Bootstrap(stream, sink).ok());

  PartitionId victim_partition = 0;
  while (sink.partitions()[victim_partition].empty()) {
    ++victim_partition;
  }
  const uint64_t before = partitioner.loads()[victim_partition];
  ASSERT_GT(before, 0u);
  const Edge victim = sink.partitions()[victim_partition][0];
  ASSERT_TRUE(partitioner.RemoveEdge(victim, victim_partition).ok());
  EXPECT_EQ(partitioner.loads()[victim_partition], before - 1);
  EXPECT_EQ(partitioner.num_edges(), edges.size() - 1);
}

TEST(IncrementalTest, ApiMisuseIsRejected) {
  PartitionConfig config;
  config.num_partitions = 4;
  IncrementalPartitioner partitioner(config);
  EXPECT_FALSE(partitioner.AddEdge(Edge{0, 1}).ok());
  EXPECT_FALSE(partitioner.RemoveEdge(Edge{0, 1}, 0).ok());

  InMemoryEdgeStream stream({{0, 1}, {1, 2}});
  CountingSink sink(4);
  ASSERT_TRUE(partitioner.Bootstrap(stream, sink).ok());
  EXPECT_FALSE(partitioner.Bootstrap(stream, sink).ok());  // twice
  EXPECT_FALSE(partitioner.RemoveEdge(Edge{0, 1}, 99).ok());
  EXPECT_FALSE(partitioner.RemoveEdge(Edge{500, 501}, 0).ok());
}

}  // namespace
}  // namespace tpsl

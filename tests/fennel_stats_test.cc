#include <gtest/gtest.h>

#include <vector>

#include "baselines/fennel.h"
#include "graph/csr.h"
#include "graph/generators.h"
#include "graph/stats.h"

namespace tpsl {
namespace {

TEST(FennelTest, AssignsEveryVertexWithinCap) {
  SocialNetworkConfig config;
  config.num_vertices = 1 << 12;
  const auto edges = GenerateSocialNetwork(config);
  const CsrGraph graph = CsrGraph::FromEdges(edges);

  FennelConfig fennel;
  fennel.num_partitions = 16;
  auto result = FennelPartition(graph, fennel);
  ASSERT_TRUE(result.ok());

  uint64_t total_vertices = 0;
  const uint64_t capacity = static_cast<uint64_t>(
      fennel.balance_factor * graph.num_vertices() / 16) + 1;
  for (const uint64_t size : result->partition_sizes) {
    EXPECT_LE(size, capacity);
    total_vertices += size;
  }
  EXPECT_EQ(total_vertices, graph.num_vertices());
  for (const PartitionId p : result->vertex_partition) {
    EXPECT_LT(p, 16u);
  }
}

TEST(FennelTest, BeatsRandomCutOnCommunityGraph) {
  PlantedPartitionConfig config;
  config.num_vertices = 1 << 12;
  config.num_edges = 40000;
  config.num_communities = 256;  // dense 16-vertex communities
  config.intra_fraction = 0.95;
  const auto edges = GeneratePlantedPartition(config);
  const CsrGraph graph = CsrGraph::FromEdges(edges);

  FennelConfig fennel;
  fennel.num_partitions = 8;
  auto result = FennelPartition(graph, fennel);
  ASSERT_TRUE(result.ok());
  // Random 8-way vertex partition would cut ~7/8 = 0.875 of edges.
  EXPECT_LT(result->CutFraction(), 0.6);
}

TEST(FennelTest, EmptyGraph) {
  const CsrGraph graph = CsrGraph::FromEdges({});
  auto result = FennelPartition(graph, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_edges, 0u);
  EXPECT_DOUBLE_EQ(result->CutFraction(), 0.0);
}

TEST(FennelTest, InvalidConfigRejected) {
  const CsrGraph graph = CsrGraph::FromEdges({{0, 1}});
  FennelConfig config;
  config.num_partitions = 0;
  EXPECT_FALSE(FennelPartition(graph, config).ok());
  config.num_partitions = 2;
  config.gamma = 1.0;
  EXPECT_FALSE(FennelPartition(graph, config).ok());
}

TEST(DegreeStatsTest, UniformDegreesHaveZeroGini) {
  const DegreeStats stats = ComputeDegreeStats({5, 5, 5, 5});
  EXPECT_EQ(stats.max_degree, 5u);
  EXPECT_DOUBLE_EQ(stats.mean_degree, 5.0);
  EXPECT_NEAR(stats.gini, 0.0, 1e-9);
}

TEST(DegreeStatsTest, ExtremeSkewApproachesOne) {
  std::vector<uint32_t> degrees(1000, 0);
  degrees[0] = 100000;
  const DegreeStats stats = ComputeDegreeStats(degrees);
  EXPECT_GT(stats.gini, 0.99);
  EXPECT_EQ(stats.max_degree, 100000u);
}

TEST(DegreeStatsTest, EmptyInput) {
  const DegreeStats stats = ComputeDegreeStats({});
  EXPECT_EQ(stats.max_degree, 0u);
  EXPECT_DOUBLE_EQ(stats.gini, 0.0);
}

TEST(DegreeStatsTest, SocialGeneratorHasHeavyTailErDoesNot) {
  SocialNetworkConfig social;
  social.num_vertices = 1 << 13;
  const auto social_edges = GenerateSocialNetwork(social);
  ErdosRenyiConfig er;
  er.num_vertices = 1 << 13;
  er.num_edges = social_edges.size();
  const auto er_edges = GenerateErdosRenyi(er);

  const auto degree_stats = [](const std::vector<Edge>& edges) {
    const CsrGraph graph = CsrGraph::FromEdges(edges);
    std::vector<uint32_t> degrees(graph.num_vertices());
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      degrees[v] = graph.degree(v);
    }
    return ComputeDegreeStats(degrees);
  };
  // The hub overlay concentrates on few vertices: the tail (max
  // degree), not the bulk, carries the skew — max should dwarf ER's
  // Poisson maximum while the means are comparable.
  const DegreeStats social_stats = degree_stats(social_edges);
  const DegreeStats er_stats = degree_stats(er_edges);
  EXPECT_GT(social_stats.max_degree, 10 * er_stats.max_degree);
  EXPECT_GT(social_stats.max_degree, 30 * social_stats.mean_degree);
}

TEST(ClusteringCoefficientTest, CliqueIsFullyClosed) {
  // K5: every wedge closes.
  std::vector<Edge> edges;
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = u + 1; v < 5; ++v) {
      edges.push_back(Edge{u, v});
    }
  }
  const CsrGraph graph = CsrGraph::FromEdges(edges);
  EXPECT_DOUBLE_EQ(EstimateClusteringCoefficient(graph, 500, 1), 1.0);
}

TEST(ClusteringCoefficientTest, StarHasNoTriangles) {
  std::vector<Edge> edges;
  for (VertexId v = 1; v <= 20; ++v) {
    edges.push_back(Edge{0, v});
  }
  const CsrGraph graph = CsrGraph::FromEdges(edges);
  EXPECT_DOUBLE_EQ(EstimateClusteringCoefficient(graph, 500, 1), 0.0);
}

TEST(ClusteringCoefficientTest, SocialGeneratorIsLocallyDense) {
  // The caveman-based social generator must out-cluster ER by an order
  // of magnitude — the property the clustering phase exploits
  // (DESIGN.md §4).
  SocialNetworkConfig social;
  social.num_vertices = 1 << 13;
  const auto social_edges = GenerateSocialNetwork(social);
  const CsrGraph social_graph = CsrGraph::FromEdges(social_edges);

  ErdosRenyiConfig er;
  er.num_vertices = 1 << 13;
  er.num_edges = social_edges.size();
  const CsrGraph er_graph = CsrGraph::FromEdges(GenerateErdosRenyi(er));

  const double social_cc =
      EstimateClusteringCoefficient(social_graph, 20000, 7);
  const double er_cc = EstimateClusteringCoefficient(er_graph, 20000, 7);
  EXPECT_GT(social_cc, 10 * er_cc);
  EXPECT_GT(social_cc, 0.2);
}

}  // namespace
}  // namespace tpsl

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "graph/binary_edge_list.h"
#include "graph/datasets.h"
#include "graph/in_memory_edge_stream.h"
#include "io/throttled_edge_stream.h"
#include "partition/runner.h"
#include "procsim/distributed_pagerank.h"

namespace tpsl {
namespace {

/// Full out-of-core pipeline, as the paper describes its framework:
/// graph on disk (binary edge list) -> streaming partitioner -> quality
/// metrics -> simulated distributed processing.
TEST(IntegrationTest, OutOfCorePipelineEndToEnd) {
  auto edges_or = LoadDataset("OK", /*scale_shift=*/5);
  ASSERT_TRUE(edges_or.ok());
  const std::string path = testing::TempDir() + "/integration_ok.bin";
  ASSERT_TRUE(WriteBinaryEdgeList(path, *edges_or).ok());

  auto stream_or = BinaryFileEdgeStream::Open(path);
  ASSERT_TRUE(stream_or.ok());

  auto partitioner_or = MakePartitioner("2PS-L");
  ASSERT_TRUE(partitioner_or.ok());

  PartitionConfig config;
  config.num_partitions = 32;
  RunOptions options;
  options.keep_partitions = true;
  auto run_or = RunPartitioner(**partitioner_or, **stream_or, config,
                               options);
  ASSERT_TRUE(run_or.ok()) << run_or.status().ToString();
  EXPECT_EQ(run_or->quality.num_edges, edges_or->size());
  EXPECT_GE(run_or->quality.replication_factor, 1.0);
  EXPECT_LE(run_or->quality.max_partition_size,
            config.PartitionCapacity(edges_or->size()));

  PageRankConfig pr;
  pr.iterations = 10;
  auto sim_or = SimulateDistributedPageRank(run_or->partitions, pr, {});
  ASSERT_TRUE(sim_or.ok());
  EXPECT_GT(sim_or->simulated_seconds, 0.0);
  EXPECT_EQ(sim_or->num_edges, edges_or->size());
  std::remove(path.c_str());
}

/// The paper's Table V scenario: a throttled stream charges virtual
/// I/O per pass; multi-pass 2PS-L pays more I/O than single-pass DBH.
TEST(IntegrationTest, ThrottledPipelineCountsPassCost) {
  auto edges_or = LoadDataset("OK", /*scale_shift=*/6);
  ASSERT_TRUE(edges_or.ok());
  const std::string path = testing::TempDir() + "/integration_hdd.bin";
  ASSERT_TRUE(WriteBinaryEdgeList(path, *edges_or).ok());

  auto stream_or = BinaryFileEdgeStream::Open(path);
  ASSERT_TRUE(stream_or.ok());
  ThrottledEdgeStream hdd(stream_or->get(), kHddProfile);

  auto partitioner_or = MakePartitioner("2PS-L");
  ASSERT_TRUE(partitioner_or.ok());
  PartitionConfig config;
  config.num_partitions = 8;
  auto run_or = RunPartitioner(**partitioner_or, hdd, config);
  ASSERT_TRUE(run_or.ok());

  // 4 passes (degree, clustering, prepartition, scoring) over the file.
  EXPECT_EQ(hdd.passes(), 4u);
  EXPECT_EQ(hdd.bytes_read(), 4 * edges_or->size() * sizeof(Edge));
  EXPECT_GT(hdd.SimulatedIoSeconds(), 0.0);
  std::remove(path.c_str());
}

/// A file truncated underneath an open stream must fail the whole
/// streaming pipeline (quality/validation/spill sinks included) with
/// the stream's health error — never measure a quietly shorter graph.
TEST(IntegrationTest, TruncatedFileFailsTheSinkPipeline) {
  auto edges_or = LoadDataset("OK", /*scale_shift=*/6);
  ASSERT_TRUE(edges_or.ok());
  const std::string path = testing::TempDir() + "/integration_truncated.bin";
  ASSERT_TRUE(WriteBinaryEdgeList(path, *edges_or).ok());

  auto stream_or = BinaryFileEdgeStream::Open(path);
  ASSERT_TRUE(stream_or.ok());
  // Truncate to half the edges after Open() recorded the full count.
  std::filesystem::resize_file(path,
                               (edges_or->size() / 2) * sizeof(Edge));

  auto partitioner_or = MakePartitioner("2PS-L");
  ASSERT_TRUE(partitioner_or.ok());
  PartitionConfig config;
  config.num_partitions = 8;
  RunOptions options;
  options.spill_dir = testing::TempDir() + "/integration_truncated_spill";
  auto run_or = RunPartitioner(**partitioner_or, **stream_or, config,
                               options);
  ASSERT_FALSE(run_or.ok());
  EXPECT_FALSE((*stream_or)->Health().ok());
  // A failed spill run cleans up after itself: no partial partition
  // files are left behind for a run that produced no result.
  EXPECT_TRUE(std::filesystem::is_empty(options.spill_dir));
  std::remove(path.c_str());
  std::filesystem::remove_all(options.spill_dir);
}

/// Streaming partitioners agree between file-backed and in-memory
/// streams (the partitioner cannot tell storage apart).
TEST(IntegrationTest, StorageAgnosticAssignments) {
  auto edges_or = LoadDataset("IT", /*scale_shift=*/6);
  ASSERT_TRUE(edges_or.ok());
  const std::string path = testing::TempDir() + "/integration_agnostic.bin";
  ASSERT_TRUE(WriteBinaryEdgeList(path, *edges_or).ok());

  const std::vector<std::string> names = {"2PS-L", "HDRF", "DBH", "Greedy"};
  for (const std::string& name : names) {
    auto partitioner_or = MakePartitioner(name);
    ASSERT_TRUE(partitioner_or.ok());
    PartitionConfig config;
    config.num_partitions = 16;

    InMemoryEdgeStream mem_stream(*edges_or);
    EdgeListSink mem_sink(16);
    ASSERT_TRUE((*partitioner_or)
                    ->Partition(mem_stream, config, mem_sink, nullptr)
                    .ok());

    auto file_stream_or = BinaryFileEdgeStream::Open(path, 333);
    ASSERT_TRUE(file_stream_or.ok());
    EdgeListSink file_sink(16);
    ASSERT_TRUE((*partitioner_or)
                    ->Partition(**file_stream_or, config, file_sink, nullptr)
                    .ok());
    EXPECT_EQ(mem_sink.partitions(), file_sink.partitions()) << name;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tpsl

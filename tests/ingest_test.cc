#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "graph/binary_edge_list.h"
#include "graph/generators.h"
#include "graph/in_memory_edge_stream.h"
#include "ingest/catalog.h"
#include "ingest/checksum.h"
#include "ingest/external_generator.h"
#include "ingest/prefetching_edge_stream.h"
#include "io/throttled_edge_stream.h"

namespace tpsl {
namespace ingest {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

/// A per-test scratch directory (removed on destruction) so catalog
/// tests cannot see each other's cached datasets.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : path_(TempPath(name + "." + std::to_string(::getpid()))) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~ScratchDir() { std::filesystem::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

DatasetRecipe SmallRmatRecipe() {
  DatasetRecipe recipe;
  recipe.name = "tiny_rmat";
  recipe.kind = "rmat";
  recipe.scale = 10;
  recipe.edge_factor = 8;
  recipe.skew = 0.57;
  recipe.seed = 7;
  return recipe;
}

// --- chunked generator <-> in-memory generator equivalence ----------------

TEST(ChunkedGeneratorTest, RmatChunkedMatchesInMemoryAcrossChunkSizes) {
  RmatConfig config;
  config.scale = 10;
  config.edge_factor = 4;
  config.seed = 123;
  const std::vector<Edge> expected = GenerateRmat(config);
  for (const size_t chunk : {1ul, 7ul, 1024ul, 1ul << 20}) {
    std::vector<Edge> got;
    size_t max_chunk = 0;
    GenerateRmatChunked(config, chunk,
                        [&](const Edge* edges, size_t count) {
                          got.insert(got.end(), edges, edges + count);
                          max_chunk = std::max(max_chunk, count);
                        });
    EXPECT_EQ(got, expected) << "chunk=" << chunk;
    EXPECT_LE(max_chunk, chunk);
  }
}

TEST(ChunkedGeneratorTest, ErdosRenyiChunkedMatchesInMemory) {
  ErdosRenyiConfig config;
  config.num_vertices = 1 << 10;
  config.num_edges = 5000;
  config.seed = 99;
  const std::vector<Edge> expected = GenerateErdosRenyi(config);
  std::vector<Edge> got;
  GenerateErdosRenyiChunked(config, 333,
                            [&](const Edge* edges, size_t count) {
                              got.insert(got.end(), edges, edges + count);
                            });
  EXPECT_EQ(got, expected);
}

TEST(ChunkedGeneratorTest, PlantedPartitionChunkedMatchesInMemory) {
  PlantedPartitionConfig config;
  config.num_vertices = 1 << 10;
  config.num_edges = 5000;
  config.num_communities = 16;
  config.seed = 5;
  const std::vector<Edge> expected = GeneratePlantedPartition(config);
  std::vector<Edge> got;
  GeneratePlantedPartitionChunked(config, 100,
                                  [&](const Edge* edges, size_t count) {
                                    got.insert(got.end(), edges,
                                               edges + count);
                                  });
  EXPECT_EQ(got, expected);
}

// --- external generation --------------------------------------------------

TEST(ExternalGeneratorTest, FileMatchesInMemoryGeneration) {
  // The on-disk dataset must be byte-identical to what the in-memory
  // generator + one-shot writer would have produced.
  const DatasetRecipe recipe = SmallRmatRecipe();
  ScratchDir dir("extgen_match");
  const std::string path = dir.path() + "/tiny.bin";
  auto result = GenerateDatasetFile(recipe, path, /*chunk_edges=*/512);
  ASSERT_TRUE(result.ok()) << result.status();

  RmatConfig config;
  config.scale = recipe.scale;
  config.edge_factor = recipe.edge_factor;
  config.a = recipe.skew;
  config.b = (1.0 - recipe.skew) / 3.0;
  config.c = (1.0 - recipe.skew) / 3.0;
  config.seed = recipe.seed;
  const std::vector<Edge> expected = GenerateRmat(config);

  auto read_back = ReadBinaryEdgeList(path);
  ASSERT_TRUE(read_back.ok()) << read_back.status();
  EXPECT_EQ(*read_back, expected);
  EXPECT_EQ(result->num_edges, expected.size());
  EXPECT_EQ(result->file_bytes, expected.size() * sizeof(Edge));

  // The checksum computed while writing matches a from-scratch pass
  // over the final file.
  auto checksum = ChecksumFile(path);
  ASSERT_TRUE(checksum.ok()) << checksum.status();
  EXPECT_EQ(*checksum, result->checksum);
}

TEST(ExternalGeneratorTest, MemoryBoundedByChunkBuffer) {
  // A dataset far larger than the chunk buffer: the writer's entire
  // working set is the one chunk buffer it reports, so datasets of any
  // size — multi-GB included — generate in bounded memory.
  DatasetRecipe recipe = SmallRmatRecipe();
  recipe.name = "bounded";
  recipe.scale = 13;       // ~65k edges * 8 B = ~512 KiB of output...
  recipe.edge_factor = 8;
  ScratchDir dir("extgen_bounded");
  const std::string path = dir.path() + "/bounded.bin";
  const size_t chunk_edges = 1024;  // ...through a 8 KiB buffer
  auto result = GenerateDatasetFile(recipe, path, chunk_edges);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->peak_buffer_bytes, chunk_edges * sizeof(Edge));
  EXPECT_GT(result->file_bytes, 10 * result->peak_buffer_bytes)
      << "dataset must dwarf the buffer for this test to mean anything";
}

TEST(ExternalGeneratorTest, RejectsUnknownKindAndBadParams) {
  ScratchDir dir("extgen_bad");
  DatasetRecipe recipe = SmallRmatRecipe();
  recipe.kind = "barabasi_albert";  // not streamable
  EXPECT_EQ(GenerateDatasetFile(recipe, dir.path() + "/x.bin").status().code(),
            StatusCode::kInvalidArgument);

  recipe = SmallRmatRecipe();
  recipe.kind = "planted_partition";
  recipe.communities = 1;
  EXPECT_EQ(GenerateDatasetFile(recipe, dir.path() + "/y.bin").status().code(),
            StatusCode::kInvalidArgument);
}

// --- catalog --------------------------------------------------------------

CatalogEntry UnpinnedEntry() {
  CatalogEntry entry;
  entry.recipe = SmallRmatRecipe();
  return entry;
}

TEST(CatalogTest, RoundtripsThroughJsonFile) {
  ScratchDir dir("catalog_roundtrip");
  Catalog catalog;
  catalog.entries.push_back(UnpinnedEntry());
  catalog.entries[0].expected_edges = 42;
  catalog.entries[0].expected_checksum = "fnv1a64:0123456789abcdef";
  const std::string path = dir.path() + "/catalog.json";
  ASSERT_TRUE(SaveCatalog(catalog, path).ok());
  auto loaded = LoadCatalog(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->entries.size(), 1u);
  EXPECT_EQ(loaded->entries[0], catalog.entries[0]);
}

TEST(CatalogTest, GetOrGenerateCachesSecondCall) {
  ScratchDir dir("catalog_cache");
  const CatalogEntry entry = UnpinnedEntry();
  auto first = EnsureDataset(entry, dir.path());
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_TRUE(first->generated);

  auto second = EnsureDataset(entry, dir.path());
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_FALSE(second->generated) << "second call must hit the cache";
  EXPECT_EQ(second->checksum, first->checksum);
  EXPECT_EQ(second->num_edges, first->num_edges);
}

TEST(CatalogTest, RecipeDriftRegenerates) {
  ScratchDir dir("catalog_drift");
  CatalogEntry entry = UnpinnedEntry();
  auto first = EnsureDataset(entry, dir.path());
  ASSERT_TRUE(first.ok()) << first.status();

  entry.recipe.seed += 1;  // same name, different content
  auto second = EnsureDataset(entry, dir.path());
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_TRUE(second->generated) << "changed recipe must regenerate";
  EXPECT_NE(second->checksum, first->checksum);
}

TEST(CatalogTest, VerifyDetectsCorruptedFile) {
  ScratchDir dir("catalog_corrupt");
  CatalogEntry entry = UnpinnedEntry();
  auto generated = EnsureDataset(entry, dir.path());
  ASSERT_TRUE(generated.ok()) << generated.status();
  entry.expected_edges = generated->num_edges;
  entry.expected_checksum = generated->checksum;
  ASSERT_TRUE(VerifyDataset(entry, dir.path()).ok());

  // Flip one byte in the middle of the file; size is unchanged, so
  // only the checksum can catch it.
  const std::string path = DatasetPath(dir.path(), entry.recipe.name);
  std::FILE* file = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(file, nullptr);
  ASSERT_EQ(std::fseek(file, static_cast<long>(generated->file_bytes / 2),
                       SEEK_SET),
            0);
  ASSERT_EQ(std::fputc(0x5a, file), 0x5a);
  ASSERT_EQ(std::fclose(file), 0);

  const Status status = VerifyDataset(entry, dir.path());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

TEST(CatalogTest, PinnedChecksumMismatchFailsGeneration) {
  ScratchDir dir("catalog_pin_mismatch");
  CatalogEntry entry = UnpinnedEntry();
  entry.expected_checksum = "fnv1a64:ffffffffffffffff";  // wrong on purpose
  const auto result = EnsureDataset(entry, dir.path());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

// --- prefetching reader ---------------------------------------------------

std::vector<Edge> PatternEdges(size_t n) {
  std::vector<Edge> edges;
  edges.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    edges.push_back(Edge{i, i * 31 + 5});
  }
  return edges;
}

TEST(PrefetchingEdgeStreamTest, MatchesInnerAcrossBufferSizes) {
  const std::vector<Edge> edges = PatternEdges(10000);
  const std::string path = TempPath("prefetch_match.bin");
  ASSERT_TRUE(WriteBinaryEdgeList(path, edges).ok());
  for (const size_t buffer_edges : {1ul, 3ul, 64ul, 4096ul, 65536ul}) {
    auto file = BinaryFileEdgeStream::Open(path, 128);
    ASSERT_TRUE(file.ok());
    PrefetchingEdgeStream stream(std::move(*file), buffer_edges);
    EXPECT_EQ(stream.NumEdgesHint(), edges.size());
    std::vector<Edge> got;
    ASSERT_TRUE(
        ForEachEdge(stream, [&](const Edge& e) { got.push_back(e); }).ok());
    EXPECT_EQ(got, edges) << "buffer_edges=" << buffer_edges;
  }
  std::remove(path.c_str());
}

TEST(PrefetchingEdgeStreamTest, MultiplePassesAndByteAccounting) {
  const std::vector<Edge> edges = PatternEdges(5000);
  const std::string path = TempPath("prefetch_passes.bin");
  ASSERT_TRUE(WriteBinaryEdgeList(path, edges).ok());
  auto file = BinaryFileEdgeStream::Open(path);
  ASSERT_TRUE(file.ok());
  PrefetchingEdgeStream stream(std::move(*file), 512);
  for (int pass = 0; pass < 3; ++pass) {
    uint64_t count = 0;
    ASSERT_TRUE(ForEachEdge(stream, [&](const Edge&) { ++count; }).ok());
    EXPECT_EQ(count, edges.size());
    EXPECT_EQ(stream.bytes_this_pass(), edges.size() * sizeof(Edge));
  }
  EXPECT_EQ(stream.passes(), 3u);
  EXPECT_EQ(stream.bytes_read(), 3 * edges.size() * sizeof(Edge));
  std::remove(path.c_str());
}

TEST(PrefetchingEdgeStreamTest, ResetMidStreamRestarts) {
  const std::vector<Edge> edges = PatternEdges(1000);
  const std::string path = TempPath("prefetch_reset.bin");
  ASSERT_TRUE(WriteBinaryEdgeList(path, edges).ok());
  auto file = BinaryFileEdgeStream::Open(path, 64);
  ASSERT_TRUE(file.ok());
  PrefetchingEdgeStream stream(std::move(*file), 128);

  ASSERT_TRUE(stream.Reset().ok());
  Edge buffer[300];
  ASSERT_EQ(stream.Next(buffer, 300), 300u);
  // Abandon the pass mid-flight; the next pass must start clean.
  std::vector<Edge> got;
  ASSERT_TRUE(
      ForEachEdge(stream, [&](const Edge& e) { got.push_back(e); }).ok());
  EXPECT_EQ(got, edges);
  std::remove(path.c_str());
}

TEST(PrefetchingEdgeStreamTest, ComposesWithThrottledAccounting) {
  // Throttled-over-prefetched: the virtual-I/O account sees exactly
  // the bytes the prefetcher delivered.
  const std::vector<Edge> edges = PatternEdges(2000);
  const std::string path = TempPath("prefetch_throttle.bin");
  ASSERT_TRUE(WriteBinaryEdgeList(path, edges).ok());
  auto file = BinaryFileEdgeStream::Open(path);
  ASSERT_TRUE(file.ok());
  PrefetchingEdgeStream prefetched(std::move(*file), 256);
  ThrottledEdgeStream throttled(&prefetched, kHddProfile);
  uint64_t count = 0;
  ASSERT_TRUE(ForEachEdge(throttled, [&](const Edge&) { ++count; }).ok());
  EXPECT_EQ(count, edges.size());
  EXPECT_EQ(throttled.bytes_read(), edges.size() * sizeof(Edge));
  EXPECT_EQ(throttled.bytes_read(), prefetched.bytes_read());
  EXPECT_GT(throttled.SimulatedIoSeconds(), 0.0);
  std::remove(path.c_str());
}

TEST(PrefetchingEdgeStreamTest, WorksOverInMemoryStream) {
  const std::vector<Edge> edges = PatternEdges(777);
  PrefetchingEdgeStream stream(
      std::make_unique<InMemoryEdgeStream>(edges), 100);
  std::vector<Edge> got;
  ASSERT_TRUE(
      ForEachEdge(stream, [&](const Edge& e) { got.push_back(e); }).ok());
  EXPECT_EQ(got, edges);
}

// --- sticky I/O errors (satellite: fread error surfacing) -----------------

TEST(BinaryFileEdgeStreamHealthTest, TruncationAfterOpenIsAnError) {
  const std::vector<Edge> edges = PatternEdges(1000);
  const std::string path = TempPath("truncate_after_open.bin");
  ASSERT_TRUE(WriteBinaryEdgeList(path, edges).ok());
  auto stream = BinaryFileEdgeStream::Open(path, 64);
  ASSERT_TRUE(stream.ok());
  // Shrink the file behind the open stream's back: fread just hits a
  // clean-looking early EOF, which used to yield a silently shorter
  // graph.
  ASSERT_EQ(::truncate(path.c_str(), 100 * sizeof(Edge)), 0);

  uint64_t count = 0;
  const Status status =
      ForEachEdge(**stream, [&](const Edge&) { ++count; });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_LE(count, 100u);
  // Sticky: the stream refuses another pass rather than serving the
  // shorter graph.
  EXPECT_FALSE((*stream)->Reset().ok());
  EXPECT_FALSE((*stream)->Health().ok());
  std::remove(path.c_str());
}

TEST(BinaryFileEdgeStreamHealthTest, PrefetcherPropagatesInnerFailure) {
  const std::vector<Edge> edges = PatternEdges(1000);
  const std::string path = TempPath("truncate_prefetch.bin");
  ASSERT_TRUE(WriteBinaryEdgeList(path, edges).ok());
  auto file = BinaryFileEdgeStream::Open(path, 64);
  ASSERT_TRUE(file.ok());
  PrefetchingEdgeStream stream(std::move(*file), 128);
  ASSERT_EQ(::truncate(path.c_str(), 100 * sizeof(Edge)), 0);

  uint64_t count = 0;
  const Status status = ForEachEdge(stream, [&](const Edge&) { ++count; });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(BinaryFileEdgeStreamHealthTest, HealthyStreamStaysOk) {
  const std::vector<Edge> edges = PatternEdges(100);
  const std::string path = TempPath("healthy.bin");
  ASSERT_TRUE(WriteBinaryEdgeList(path, edges).ok());
  auto stream = BinaryFileEdgeStream::Open(path);
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE(ForEachEdge(**stream, [](const Edge&) {}).ok());
  EXPECT_TRUE((*stream)->Health().ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ingest
}  // namespace tpsl

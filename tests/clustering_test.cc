#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/cluster_schedule.h"
#include "core/streaming_clustering.h"
#include "graph/generators.h"
#include "graph/in_memory_edge_stream.h"
#include "util/random.h"

namespace tpsl {
namespace {

Clustering ClusterEdges(const std::vector<Edge>& edges,
                        uint32_t num_partitions,
                        const ClusteringConfig& config = {}) {
  InMemoryEdgeStream stream(edges);
  auto degrees = ComputeDegrees(stream);
  EXPECT_TRUE(degrees.ok());
  auto clustering =
      StreamingClustering(stream, *degrees, num_partitions, config);
  EXPECT_TRUE(clustering.ok());
  return std::move(clustering).value();
}

/// Two disjoint triangles must land in two distinct clusters. The cap
/// is widened to one partition volume: at this toy scale the default
/// sub-partition cap (0.25x) is below a single vertex degree.
TEST(StreamingClusteringTest, SeparatesDisjointTriangles) {
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 0},
                                   {3, 4}, {4, 5}, {5, 3}};
  ClusteringConfig config;
  config.volume_cap_factor = 1.0;
  const Clustering clustering = ClusterEdges(edges, 2, config);
  EXPECT_EQ(clustering.num_clusters(), 2u);
  EXPECT_EQ(clustering.vertex_cluster[0], clustering.vertex_cluster[1]);
  EXPECT_EQ(clustering.vertex_cluster[1], clustering.vertex_cluster[2]);
  EXPECT_EQ(clustering.vertex_cluster[3], clustering.vertex_cluster[4]);
  EXPECT_EQ(clustering.vertex_cluster[4], clustering.vertex_cluster[5]);
  EXPECT_NE(clustering.vertex_cluster[0], clustering.vertex_cluster[3]);
}

TEST(StreamingClusteringTest, VolumesEqualMemberDegreeSums) {
  RmatConfig config;
  config.scale = 10;
  config.edge_factor = 8;
  const auto edges = GenerateRmat(config);
  const Clustering clustering = ClusterEdges(edges, 8);

  InMemoryEdgeStream stream(edges);
  auto degrees = ComputeDegrees(stream);
  ASSERT_TRUE(degrees.ok());

  std::vector<uint64_t> recomputed(clustering.num_clusters(), 0);
  uint64_t clustered_volume = 0;
  for (VertexId v = 0; v < clustering.vertex_cluster.size(); ++v) {
    const ClusterId c = clustering.vertex_cluster[v];
    if (c == kInvalidCluster) {
      EXPECT_EQ(degrees->degree(v), 0u);  // only isolated vertices
      continue;
    }
    recomputed[c] += degrees->degree(v);
    clustered_volume += degrees->degree(v);
  }
  EXPECT_EQ(recomputed, clustering.cluster_volumes);
  EXPECT_EQ(clustered_volume, degrees->TotalVolume());
}

TEST(StreamingClusteringTest, VolumeCapIsRespected) {
  RmatConfig rmat;
  rmat.scale = 12;
  rmat.edge_factor = 8;
  const auto edges = GenerateRmat(rmat);
  const uint32_t k = 8;
  const Clustering clustering = ClusterEdges(edges, k);

  InMemoryEdgeStream stream(edges);
  auto degrees = ComputeDegrees(stream);
  const uint64_t cap = degrees->TotalVolume() / k;
  uint32_t max_degree = 0;
  for (const uint32_t d : degrees->degrees) {
    max_degree = std::max(max_degree, d);
  }
  // A cluster can exceed the cap only by containing a single vertex
  // whose own degree exceeds it (clusters are created unconditionally).
  for (const uint64_t volume : clustering.cluster_volumes) {
    EXPECT_LE(volume, std::max<uint64_t>(cap, max_degree) + max_degree);
  }
}

TEST(StreamingClusteringTest, UncappedMergesMore) {
  PlantedPartitionConfig pp;
  pp.num_vertices = 2048;
  pp.num_edges = 20000;
  pp.num_communities = 8;
  const auto edges = GeneratePlantedPartition(pp);

  ClusteringConfig capped;
  ClusteringConfig uncapped;
  uncapped.enforce_volume_cap = false;
  const Clustering with_cap = ClusterEdges(edges, 64, capped);
  const Clustering without_cap = ClusterEdges(edges, 64, uncapped);
  // Without the cap, clusters can swallow whole communities, so there
  // are at most as many clusters.
  EXPECT_LE(without_cap.num_clusters(), with_cap.num_clusters());
}

TEST(StreamingClusteringTest, RestreamingDoesNotBreakInvariants) {
  RmatConfig rmat;
  rmat.scale = 10;
  const auto edges = GenerateRmat(rmat);
  for (const uint32_t passes : {1u, 2u, 4u, 8u}) {
    ClusteringConfig config;
    config.num_passes = passes;
    const Clustering clustering = ClusterEdges(edges, 4, config);
    uint64_t total = 0;
    for (const uint64_t volume : clustering.cluster_volumes) {
      EXPECT_GT(volume, 0u);
      total += volume;
    }
    EXPECT_EQ(total, 2 * edges.size());
  }
}

TEST(StreamingClusteringTest, DeterministicAcrossRuns) {
  RmatConfig rmat;
  rmat.scale = 10;
  const auto edges = GenerateRmat(rmat);
  const Clustering a = ClusterEdges(edges, 4);
  const Clustering b = ClusterEdges(edges, 4);
  EXPECT_EQ(a.vertex_cluster, b.vertex_cluster);
  EXPECT_EQ(a.cluster_volumes, b.cluster_volumes);
}

TEST(StreamingClusteringTest, InvalidArgumentsRejected) {
  InMemoryEdgeStream stream({{0, 1}});
  auto degrees = ComputeDegrees(stream);
  ASSERT_TRUE(degrees.ok());
  ClusteringConfig config;
  EXPECT_FALSE(StreamingClustering(stream, *degrees, 0, config).ok());
  config.num_passes = 0;
  EXPECT_FALSE(StreamingClustering(stream, *degrees, 2, config).ok());
}

TEST(StreamingClusteringTest, SelfLoopOnlyGraph) {
  const Clustering clustering = ClusterEdges({{3, 3}, {3, 3}}, 2);
  EXPECT_EQ(clustering.num_clusters(), 1u);
  EXPECT_EQ(clustering.cluster_volumes[0], 4u);
}

TEST(ClusterScheduleTest, GrahamAssignsAllClusters) {
  const std::vector<uint64_t> volumes = {10, 8, 7, 3, 3, 2, 2, 1};
  const ClusterSchedule schedule = ScheduleClustersGraham(volumes, 3);
  ASSERT_EQ(schedule.cluster_partition.size(), volumes.size());
  for (const PartitionId p : schedule.cluster_partition) {
    EXPECT_LT(p, 3u);
  }
  uint64_t total = 0;
  for (const uint64_t volume : schedule.partition_volumes) {
    total += volume;
  }
  EXPECT_EQ(total, 36u);
}

TEST(ClusterScheduleTest, GrahamRespectsApproximationBound) {
  // LPT is a 4/3 - 1/(3k) approximation; check against the LP lower
  // bound max(max_volume, total/k) on randomized instances.
  SplitMix64 rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const uint32_t k = 2 + static_cast<uint32_t>(rng.NextBounded(14));
    std::vector<uint64_t> volumes(1 + rng.NextBounded(100));
    uint64_t total = 0, max_volume = 0;
    for (uint64_t& v : volumes) {
      v = 1 + rng.NextBounded(1000);
      total += v;
      max_volume = std::max(max_volume, v);
    }
    const ClusterSchedule schedule = ScheduleClustersGraham(volumes, k);
    const uint64_t makespan = *std::max_element(
        schedule.partition_volumes.begin(), schedule.partition_volumes.end());
    const double lower_bound = std::max<double>(
        static_cast<double>(max_volume), static_cast<double>(total) / k);
    EXPECT_LE(static_cast<double>(makespan),
              lower_bound * (4.0 / 3.0) + 1e-9)
        << "k=" << k << " jobs=" << volumes.size();
  }
}

TEST(ClusterScheduleTest, GrahamBeatsOrMatchesRoundRobin) {
  SplitMix64 rng(11);
  std::vector<uint64_t> volumes(200);
  for (uint64_t& v : volumes) {
    v = 1 + rng.NextBounded(500);
  }
  const auto graham = ScheduleClustersGraham(volumes, 8);
  const auto round_robin = ScheduleClustersRoundRobin(volumes, 8);
  const uint64_t graham_makespan = *std::max_element(
      graham.partition_volumes.begin(), graham.partition_volumes.end());
  const uint64_t rr_makespan =
      *std::max_element(round_robin.partition_volumes.begin(),
                        round_robin.partition_volumes.end());
  EXPECT_LE(graham_makespan, rr_makespan);
}

TEST(ClusterScheduleTest, EmptyVolumes) {
  const ClusterSchedule schedule = ScheduleClustersGraham({}, 4);
  EXPECT_TRUE(schedule.cluster_partition.empty());
  EXPECT_EQ(schedule.partition_volumes,
            (std::vector<uint64_t>{0, 0, 0, 0}));
}

TEST(ClusterScheduleTest, SingleHugeJobDominates) {
  const ClusterSchedule schedule = ScheduleClustersGraham({100, 1, 1}, 2);
  // Huge job alone; the small ones share the other machine.
  const PartitionId huge = schedule.cluster_partition[0];
  EXPECT_NE(schedule.cluster_partition[1], huge);
  EXPECT_NE(schedule.cluster_partition[2], huge);
}

}  // namespace
}  // namespace tpsl

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/two_phase_partitioner.h"
#include "graph/binary_edge_list.h"
#include "graph/generators.h"
#include "graph/in_memory_edge_stream.h"
#include "partition/partitioned_writer.h"
#include "partition/runner.h"
#include "procsim/distributed_components.h"

namespace tpsl {
namespace {

TEST(PartitionedWriterTest, WritesPerPartitionFilesAndManifest) {
  const std::string prefix = testing::TempDir() + "/writer_test";
  PartitionedWriter writer(prefix, 3);
  ASSERT_TRUE(writer.status().ok());
  writer.Assign(Edge{0, 1}, 0);
  writer.Assign(Edge{1, 2}, 0);
  writer.Assign(Edge{2, 3}, 2);
  ASSERT_TRUE(writer.Finish().ok());
  EXPECT_EQ(writer.edge_counts(), (std::vector<uint64_t>{2, 0, 1}));

  auto part0 = ReadBinaryEdgeList(writer.PartitionPath(0));
  ASSERT_TRUE(part0.ok());
  EXPECT_EQ(*part0, (std::vector<Edge>{{0, 1}, {1, 2}}));
  auto part1 = ReadBinaryEdgeList(writer.PartitionPath(1));
  ASSERT_TRUE(part1.ok());
  EXPECT_TRUE(part1->empty());

  // Manifest exists and mentions the counts.
  std::FILE* manifest = std::fopen((prefix + ".manifest").c_str(), "r");
  ASSERT_NE(manifest, nullptr);
  char line[256];
  ASSERT_NE(std::fgets(line, sizeof(line), manifest), nullptr);
  EXPECT_STREQ(line, "partitions 3\n");
  std::fclose(manifest);

  for (PartitionId p = 0; p < 3; ++p) {
    std::remove(writer.PartitionPath(p).c_str());
  }
  std::remove((prefix + ".manifest").c_str());
}

TEST(PartitionedWriterTest, FinishTwiceFails) {
  const std::string prefix = testing::TempDir() + "/writer_twice";
  PartitionedWriter writer(prefix, 1);
  ASSERT_TRUE(writer.Finish().ok());
  EXPECT_FALSE(writer.Finish().ok());
  std::remove(writer.PartitionPath(0).c_str());
  std::remove((prefix + ".manifest").c_str());
}

TEST(PartitionedWriterTest, EndToEndWithPartitioner) {
  RmatConfig rmat;
  rmat.scale = 10;
  const auto edges = GenerateRmat(rmat);
  InMemoryEdgeStream stream(edges);
  const std::string prefix = testing::TempDir() + "/writer_e2e";

  PartitionedWriter writer(prefix, 4);
  ASSERT_TRUE(writer.status().ok());
  TwoPhasePartitioner partitioner;
  PartitionConfig config;
  config.num_partitions = 4;
  ASSERT_TRUE(partitioner.Partition(stream, config, writer, nullptr).ok());
  ASSERT_TRUE(writer.Finish().ok());

  uint64_t total = 0;
  for (PartitionId p = 0; p < 4; ++p) {
    auto part = ReadBinaryEdgeList(writer.PartitionPath(p));
    ASSERT_TRUE(part.ok());
    total += part->size();
    std::remove(writer.PartitionPath(p).c_str());
  }
  EXPECT_EQ(total, edges.size());
  std::remove((prefix + ".manifest").c_str());
}

TEST(DistributedComponentsTest, MatchesUnionFindReference) {
  PlantedPartitionConfig pp;
  pp.num_vertices = 2048;
  pp.num_edges = 6000;
  pp.num_communities = 64;
  pp.intra_fraction = 1.0;  // likely several real components
  const auto edges = GeneratePlantedPartition(pp);

  TwoPhasePartitioner partitioner;
  InMemoryEdgeStream stream(edges);
  PartitionConfig config;
  config.num_partitions = 8;
  RunOptions options;
  options.keep_partitions = true;
  auto run = RunPartitioner(partitioner, stream, config, options);
  ASSERT_TRUE(run.ok());

  auto sim = SimulateDistributedComponents(run->partitions, {});
  ASSERT_TRUE(sim.ok());
  VertexId n = 0;
  for (const Edge& e : edges) {
    n = std::max({n, e.first, e.second});
  }
  const auto reference = ReferenceComponents(edges, n + 1);
  ASSERT_EQ(sim->labels.size(), reference.size());
  EXPECT_EQ(sim->labels, reference);
  EXPECT_GT(sim->iterations, 0u);
  EXPECT_GT(sim->simulated_seconds, 0.0);
}

TEST(DistributedComponentsTest, SingleChainTakesManyIterations) {
  // A path graph stresses propagation depth.
  std::vector<Edge> chain;
  for (VertexId v = 0; v + 1 < 64; ++v) {
    chain.push_back(Edge{v + 1, v});  // reversed to slow min-propagation
  }
  std::vector<std::vector<Edge>> partitions = {chain};
  auto sim = SimulateDistributedComponents(partitions, {});
  ASSERT_TRUE(sim.ok());
  for (const VertexId label : sim->labels) {
    EXPECT_EQ(label, 0u);
  }
}

TEST(DistributedComponentsTest, InvalidInputs) {
  const std::vector<std::vector<Edge>> none;
  EXPECT_FALSE(SimulateDistributedComponents(none, {}).ok());
  const std::vector<std::vector<Edge>> empties = {{}, {}};
  EXPECT_FALSE(SimulateDistributedComponents(empties, {}).ok());
}

TEST(SpillRunTest, SpilledFilesMatchKeptPartitionsExactly) {
  // One run, two sinks: the EdgeListSink materialization and the
  // PartitionedWriter spill see the same assignments, so the files on
  // disk must read back as exactly the kept partitions.
  RmatConfig rmat;
  rmat.scale = 10;
  const auto edges = GenerateRmat(rmat);
  InMemoryEdgeStream stream(edges);
  TwoPhasePartitioner partitioner;
  PartitionConfig config;
  config.num_partitions = 4;
  RunOptions options;
  options.keep_partitions = true;
  options.spill_dir = testing::TempDir() + "/spill_run";
  options.spill_stem = "rmat";
  auto run = RunPartitioner(partitioner, stream, config, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  ASSERT_TRUE(run->spill.spilled());
  ASSERT_EQ(run->spill.partition_paths.size(), 4u);
  uint64_t total = 0;
  for (PartitionId p = 0; p < 4; ++p) {
    auto part = ReadBinaryEdgeList(run->spill.partition_paths[p]);
    ASSERT_TRUE(part.ok());
    EXPECT_EQ(*part, run->partitions[p]) << "partition " << p;
    EXPECT_EQ(run->spill.edge_counts[p], part->size());
    total += part->size();
  }
  EXPECT_EQ(total, edges.size());
  EXPECT_EQ(run->spill.bytes_written, edges.size() * sizeof(Edge));

  RemoveSpilledFiles(run->spill);
}

TEST(SpillRunTest, ComponentsFromSpilledFilesMatchInMemory) {
  PlantedPartitionConfig pp;
  pp.num_vertices = 1024;
  pp.num_edges = 4000;
  pp.num_communities = 32;
  pp.intra_fraction = 1.0;
  const auto edges = GeneratePlantedPartition(pp);

  TwoPhasePartitioner partitioner;
  InMemoryEdgeStream stream(edges);
  PartitionConfig config;
  config.num_partitions = 8;
  RunOptions options;
  options.keep_partitions = true;
  options.spill_dir = testing::TempDir() + "/spill_cc";
  options.spill_stem = "cc";
  auto run = RunPartitioner(partitioner, stream, config, options);
  ASSERT_TRUE(run.ok());

  auto mem = SimulateDistributedComponents(run->partitions, {});
  ASSERT_TRUE(mem.ok());

  auto streams = OpenSpilledPartitions(run->spill);
  ASSERT_TRUE(streams.ok()) << streams.status().ToString();
  auto disk = SimulateDistributedComponents(StreamPointers(*streams), {});
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();

  EXPECT_EQ(mem->labels, disk->labels);
  EXPECT_EQ(mem->iterations, disk->iterations);
  EXPECT_EQ(mem->total_messages, disk->total_messages);
  EXPECT_DOUBLE_EQ(mem->simulated_seconds, disk->simulated_seconds);

  streams->clear();
  RemoveSpilledFiles(run->spill);
}

}  // namespace
}  // namespace tpsl

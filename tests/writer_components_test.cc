#include <gtest/gtest.h>
#include <sys/resource.h>

#include <csignal>
#include <cstdio>
#include <string>
#include <vector>

#include "core/two_phase_partitioner.h"
#include "graph/binary_edge_list.h"
#include "graph/generators.h"
#include "graph/in_memory_edge_stream.h"
#include "io/edge_file.h"
#include "partition/partitioned_writer.h"
#include "partition/runner.h"
#include "procsim/distributed_components.h"

namespace tpsl {
namespace {

TEST(PartitionedWriterTest, WritesPerPartitionFilesAndManifest) {
  const std::string prefix = testing::TempDir() + "/writer_test";
  PartitionedWriter writer(prefix, 3);
  ASSERT_TRUE(writer.status().ok());
  writer.Assign(Edge{0, 1}, 0);
  writer.Assign(Edge{1, 2}, 0);
  writer.Assign(Edge{2, 3}, 2);
  ASSERT_TRUE(writer.Finish().ok());
  EXPECT_EQ(writer.edge_counts(), (std::vector<uint64_t>{2, 0, 1}));

  // Spilled files are compressed edge-block files; the sniffing reader
  // decodes them back to the exact assignments.
  EXPECT_EQ(io::SniffEdgeFileFormat(writer.PartitionPath(0)).value(),
            io::EdgeFileFormat::kCompressedBlocks);
  auto part0 = io::ReadEdgeFile(writer.PartitionPath(0));
  ASSERT_TRUE(part0.ok());
  EXPECT_EQ(*part0, (std::vector<Edge>{{0, 1}, {1, 2}}));
  auto part1 = io::ReadEdgeFile(writer.PartitionPath(1));
  ASSERT_TRUE(part1.ok());
  EXPECT_TRUE(part1->empty());

  // Manifest exists and mentions the counts.
  std::FILE* manifest = std::fopen((prefix + ".manifest").c_str(), "r");
  ASSERT_NE(manifest, nullptr);
  char line[256];
  ASSERT_NE(std::fgets(line, sizeof(line), manifest), nullptr);
  EXPECT_STREQ(line, "partitions 3\n");
  std::fclose(manifest);

  for (PartitionId p = 0; p < 3; ++p) {
    std::remove(writer.PartitionPath(p).c_str());
  }
  std::remove((prefix + ".manifest").c_str());
}

TEST(PartitionedWriterTest, FinishTwiceFails) {
  const std::string prefix = testing::TempDir() + "/writer_twice";
  PartitionedWriter writer(prefix, 1);
  ASSERT_TRUE(writer.Finish().ok());
  EXPECT_FALSE(writer.Finish().ok());
  std::remove(writer.PartitionPath(0).c_str());
  std::remove((prefix + ".manifest").c_str());
}

/// Caps the process file-size limit so writes past the cap fail with
/// EFBIG instead of killing the process — the portable way to make
/// fwrite fail mid-stream like a full disk. Restores on destruction.
class ScopedFileSizeLimit {
 public:
  explicit ScopedFileSizeLimit(rlim_t bytes) {
    getrlimit(RLIMIT_FSIZE, &old_limit_);
    old_handler_ = std::signal(SIGXFSZ, SIG_IGN);
    struct rlimit tight = old_limit_;
    tight.rlim_cur = bytes;
    setrlimit(RLIMIT_FSIZE, &tight);
  }
  ~ScopedFileSizeLimit() {
    setrlimit(RLIMIT_FSIZE, &old_limit_);
    std::signal(SIGXFSZ, old_handler_);
  }

 private:
  struct rlimit old_limit_;
  void (*old_handler_)(int);
};

std::vector<Edge> IncompressibleEdges(size_t n) {
  // Pseudo-random endpoints over a 2^20-vertex range: small enough
  // that dense per-vertex partitioner state stays cheap, random enough
  // that blocks pack at ~20 bits per id — the on-disk volume tracks
  // the edge count and a small RLIMIT_FSIZE cap trips mid-write.
  std::vector<Edge> edges;
  edges.reserve(n);
  uint64_t state = 0x9e3779b97f4a7c15ULL;
  for (size_t i = 0; i < n; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    edges.push_back(Edge{static_cast<uint32_t>(state >> 32) & 0xfffffu,
                         static_cast<uint32_t>(state) & 0xfffffu});
  }
  return edges;
}

TEST(PartitionedWriterTest, WriteFailureLatchesHealthAndFailsFinish) {
  const std::string prefix = testing::TempDir() + "/writer_full";
  const auto edges = IncompressibleEdges(200000);
  Status finish;
  {
    ScopedFileSizeLimit limit(16 * 1024);
    PartitionedWriter writer(prefix, 2);
    ASSERT_TRUE(writer.status().ok());
    for (size_t i = 0; i < edges.size(); ++i) {
      writer.Assign(edges[i], static_cast<PartitionId>(i % 2));
    }
    finish = writer.Finish();
    // The failed fwrite latched sticky; Finish() reports it and
    // Health() keeps reporting it.
    EXPECT_FALSE(writer.Health().ok());
    for (PartitionId p = 0; p < 2; ++p) {
      std::remove(writer.PartitionPath(p).c_str());
    }
  }
  EXPECT_FALSE(finish.ok());
  std::remove((prefix + ".manifest").c_str());
}

TEST(SpillRunTest, RunnerSurfacesSpillWriteFailure) {
  // The runner polls pipeline health after the pass: a spill writer
  // that hit the cap must fail the whole run, not silently drop edges.
  const auto edges = IncompressibleEdges(200000);
  InMemoryEdgeStream stream(edges);
  TwoPhasePartitioner partitioner;
  PartitionConfig config;
  config.num_partitions = 4;
  RunOptions options;
  options.spill_dir = testing::TempDir() + "/spill_full";
  options.spill_stem = "full";
  Status run_status;
  {
    ScopedFileSizeLimit limit(16 * 1024);
    auto run = RunPartitioner(partitioner, stream, config, options);
    run_status = run.status();
    if (run.ok()) {
      RemoveSpilledFiles(run->spill);
    }
  }
  EXPECT_FALSE(run_status.ok());
}

TEST(PartitionedWriterTest, EndToEndWithPartitioner) {
  RmatConfig rmat;
  rmat.scale = 10;
  const auto edges = GenerateRmat(rmat);
  InMemoryEdgeStream stream(edges);
  const std::string prefix = testing::TempDir() + "/writer_e2e";

  PartitionedWriter writer(prefix, 4);
  ASSERT_TRUE(writer.status().ok());
  TwoPhasePartitioner partitioner;
  PartitionConfig config;
  config.num_partitions = 4;
  ASSERT_TRUE(partitioner.Partition(stream, config, writer, nullptr).ok());
  ASSERT_TRUE(writer.Finish().ok());

  uint64_t total = 0;
  for (PartitionId p = 0; p < 4; ++p) {
    auto part = io::ReadEdgeFile(writer.PartitionPath(p));
    ASSERT_TRUE(part.ok());
    total += part->size();
    std::remove(writer.PartitionPath(p).c_str());
  }
  EXPECT_EQ(total, edges.size());
  std::remove((prefix + ".manifest").c_str());
}

TEST(DistributedComponentsTest, MatchesUnionFindReference) {
  PlantedPartitionConfig pp;
  pp.num_vertices = 2048;
  pp.num_edges = 6000;
  pp.num_communities = 64;
  pp.intra_fraction = 1.0;  // likely several real components
  const auto edges = GeneratePlantedPartition(pp);

  TwoPhasePartitioner partitioner;
  InMemoryEdgeStream stream(edges);
  PartitionConfig config;
  config.num_partitions = 8;
  RunOptions options;
  options.keep_partitions = true;
  auto run = RunPartitioner(partitioner, stream, config, options);
  ASSERT_TRUE(run.ok());

  auto sim = SimulateDistributedComponents(run->partitions, {});
  ASSERT_TRUE(sim.ok());
  VertexId n = 0;
  for (const Edge& e : edges) {
    n = std::max({n, e.first, e.second});
  }
  const auto reference = ReferenceComponents(edges, n + 1);
  ASSERT_EQ(sim->labels.size(), reference.size());
  EXPECT_EQ(sim->labels, reference);
  EXPECT_GT(sim->iterations, 0u);
  EXPECT_GT(sim->simulated_seconds, 0.0);
}

TEST(DistributedComponentsTest, SingleChainTakesManyIterations) {
  // A path graph stresses propagation depth.
  std::vector<Edge> chain;
  for (VertexId v = 0; v + 1 < 64; ++v) {
    chain.push_back(Edge{v + 1, v});  // reversed to slow min-propagation
  }
  std::vector<std::vector<Edge>> partitions = {chain};
  auto sim = SimulateDistributedComponents(partitions, {});
  ASSERT_TRUE(sim.ok());
  for (const VertexId label : sim->labels) {
    EXPECT_EQ(label, 0u);
  }
}

TEST(DistributedComponentsTest, InvalidInputs) {
  const std::vector<std::vector<Edge>> none;
  EXPECT_FALSE(SimulateDistributedComponents(none, {}).ok());
  const std::vector<std::vector<Edge>> empties = {{}, {}};
  EXPECT_FALSE(SimulateDistributedComponents(empties, {}).ok());
}

TEST(SpillRunTest, SpilledFilesMatchKeptPartitionsExactly) {
  // One run, two sinks: the EdgeListSink materialization and the
  // PartitionedWriter spill see the same assignments, so the files on
  // disk must read back as exactly the kept partitions.
  RmatConfig rmat;
  rmat.scale = 10;
  const auto edges = GenerateRmat(rmat);
  InMemoryEdgeStream stream(edges);
  TwoPhasePartitioner partitioner;
  PartitionConfig config;
  config.num_partitions = 4;
  RunOptions options;
  options.keep_partitions = true;
  options.spill_dir = testing::TempDir() + "/spill_run";
  options.spill_stem = "rmat";
  auto run = RunPartitioner(partitioner, stream, config, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  ASSERT_TRUE(run->spill.spilled());
  ASSERT_EQ(run->spill.partition_paths.size(), 4u);
  uint64_t total = 0;
  for (PartitionId p = 0; p < 4; ++p) {
    auto part = io::ReadEdgeFile(run->spill.partition_paths[p]);
    ASSERT_TRUE(part.ok());
    EXPECT_EQ(*part, run->partitions[p]) << "partition " << p;
    EXPECT_EQ(run->spill.edge_counts[p], part->size());
    total += part->size();
  }
  EXPECT_EQ(total, edges.size());
  // The spill is block-compressed: the device sees strictly fewer
  // bytes than the decoded edge volume (plus per-file framing, far
  // smaller than the savings on any real graph).
  EXPECT_GT(run->spill.bytes_written, 0u);
  EXPECT_LT(run->spill.bytes_written, edges.size() * sizeof(Edge));

  RemoveSpilledFiles(run->spill);
}

TEST(SpillRunTest, ComponentsFromSpilledFilesMatchInMemory) {
  PlantedPartitionConfig pp;
  pp.num_vertices = 1024;
  pp.num_edges = 4000;
  pp.num_communities = 32;
  pp.intra_fraction = 1.0;
  const auto edges = GeneratePlantedPartition(pp);

  TwoPhasePartitioner partitioner;
  InMemoryEdgeStream stream(edges);
  PartitionConfig config;
  config.num_partitions = 8;
  RunOptions options;
  options.keep_partitions = true;
  options.spill_dir = testing::TempDir() + "/spill_cc";
  options.spill_stem = "cc";
  auto run = RunPartitioner(partitioner, stream, config, options);
  ASSERT_TRUE(run.ok());

  auto mem = SimulateDistributedComponents(run->partitions, {});
  ASSERT_TRUE(mem.ok());

  auto streams = OpenSpilledPartitions(run->spill);
  ASSERT_TRUE(streams.ok()) << streams.status().ToString();
  auto disk = SimulateDistributedComponents(StreamPointers(*streams), {});
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();

  EXPECT_EQ(mem->labels, disk->labels);
  EXPECT_EQ(mem->iterations, disk->iterations);
  EXPECT_EQ(mem->total_messages, disk->total_messages);
  EXPECT_DOUBLE_EQ(mem->simulated_seconds, disk->simulated_seconds);

  streams->clear();
  RemoveSpilledFiles(run->spill);
}

}  // namespace
}  // namespace tpsl

#include <gtest/gtest.h>

#include <vector>

#include "graph/in_memory_edge_stream.h"
#include "partition/assignment_sink.h"
#include "partition/metrics.h"
#include "partition/partitioner.h"
#include "partition/replication_table.h"
#include "partition/runner.h"
#include "partition/sink_pipeline.h"

namespace tpsl {
namespace {

TEST(PartitionConfigTest, CapacityMatchesFormula) {
  PartitionConfig config;
  config.num_partitions = 4;
  config.balance_factor = 1.05;
  // ceil(1.05 * 100 / 4) = 27 (1.05*25 = 26.25).
  EXPECT_EQ(config.PartitionCapacity(100), 27u);
}

TEST(PartitionConfigTest, CapacityNeverBelowPerfectBalance) {
  PartitionConfig config;
  config.num_partitions = 3;
  config.balance_factor = 1.0;
  // ceil(10/3) = 4; a cap of 3 would be infeasible.
  EXPECT_EQ(config.PartitionCapacity(10), 4u);
}

TEST(PartitionConfigTest, CapacityWithKOne) {
  PartitionConfig config;
  config.num_partitions = 1;
  EXPECT_GE(config.PartitionCapacity(50), 50u);
}

TEST(ReplicationTableTest, SetIsIdempotent) {
  ReplicationTable table(10, 4);
  EXPECT_FALSE(table.Test(3, 2));
  table.Set(3, 2);
  EXPECT_TRUE(table.Test(3, 2));
  EXPECT_EQ(table.CoverSize(2), 1u);
  table.Set(3, 2);
  EXPECT_EQ(table.CoverSize(2), 1u);
  EXPECT_EQ(table.ReplicaCount(3), 1u);
}

TEST(ReplicationTableTest, CoverAndReplicaBookkeeping) {
  ReplicationTable table(5, 3);
  table.Set(0, 0);
  table.Set(0, 1);
  table.Set(0, 2);
  table.Set(1, 1);
  EXPECT_EQ(table.ReplicaCount(0), 3u);
  EXPECT_EQ(table.ReplicaCount(1), 1u);
  EXPECT_EQ(table.CoverSize(0), 1u);
  EXPECT_EQ(table.CoverSize(1), 2u);
  EXPECT_EQ(table.CoveredVertices(), 2u);
  // RF = (3 + 1) / 2 covered vertices.
  EXPECT_DOUBLE_EQ(table.ReplicationFactor(), 2.0);
}

TEST(ReplicationTableTest, EmptyTableHasZeroRf) {
  ReplicationTable table(10, 4);
  EXPECT_DOUBLE_EQ(table.ReplicationFactor(), 0.0);
  EXPECT_EQ(table.CoveredVertices(), 0u);
}

TEST(ReplicationTableTest, LargeIndicesDoNotAlias) {
  // Bit-matrix indexing across word boundaries.
  ReplicationTable table(1000, 37);
  table.Set(999, 36);
  table.Set(998, 0);
  EXPECT_TRUE(table.Test(999, 36));
  EXPECT_TRUE(table.Test(998, 0));
  EXPECT_FALSE(table.Test(999, 35));
  EXPECT_FALSE(table.Test(998, 36));
}

TEST(SinkTest, CountingSinkCounts) {
  CountingSink sink(3);
  sink.Assign(Edge{0, 1}, 0);
  sink.Assign(Edge{1, 2}, 0);
  sink.Assign(Edge{2, 3}, 2);
  EXPECT_EQ(sink.loads(), (std::vector<uint64_t>{2, 0, 1}));
  EXPECT_EQ(sink.total(), 3u);
}

TEST(SinkTest, EdgeListSinkMaterializes) {
  EdgeListSink sink(2);
  sink.Assign(Edge{0, 1}, 1);
  sink.Assign(Edge{1, 2}, 0);
  EXPECT_EQ(sink.partitions()[0], (std::vector<Edge>{{1, 2}}));
  EXPECT_EQ(sink.partitions()[1], (std::vector<Edge>{{0, 1}}));
  auto taken = sink.TakePartitions();
  EXPECT_EQ(taken.size(), 2u);
}

TEST(SinkTest, TeeSinkFansOutToEverySink) {
  CountingSink a(2), b(2), c(2);
  TeeSink tee({&a, &b});
  tee.Add(&c);
  EXPECT_EQ(tee.num_sinks(), 3u);
  tee.Assign(Edge{0, 1}, 1);
  EXPECT_EQ(a.loads()[1], 1u);
  EXPECT_EQ(b.loads()[1], 1u);
  EXPECT_EQ(c.loads()[1], 1u);
}

TEST(SinkTest, TeeSinkStateIsSumOfChildren) {
  CountingSink a(4), b(4);
  TeeSink tee({&a, &b});
  EXPECT_GE(tee.StateBytes(), a.StateBytes() + b.StateBytes());
}

TEST(SinkTest, EmptyTeeSinkIsANoOp) {
  TeeSink tee;
  tee.Assign(Edge{0, 1}, 0);  // must not crash
  EXPECT_EQ(tee.num_sinks(), 0u);
}

TEST(StreamingQualitySinkTest, MatchesOracleOnKnownPartitioning) {
  // Same fixture as MetricsTest.QualityOfKnownPartitioning below.
  std::vector<std::vector<Edge>> parts = {
      {{0, 1}, {1, 2}, {2, 0}},
      {{2, 3}},
  };
  StreamingQualitySink sink(2);
  for (PartitionId p = 0; p < parts.size(); ++p) {
    for (const Edge& e : parts[p]) {
      sink.Assign(e, p);
    }
  }
  const PartitionQuality streamed = sink.Quality();
  const PartitionQuality oracle = ComputeQuality(parts);
  EXPECT_DOUBLE_EQ(streamed.replication_factor, oracle.replication_factor);
  EXPECT_DOUBLE_EQ(streamed.measured_alpha, oracle.measured_alpha);
  EXPECT_EQ(streamed.num_edges, oracle.num_edges);
  EXPECT_EQ(streamed.num_covered_vertices, oracle.num_covered_vertices);
  EXPECT_EQ(streamed.max_partition_size, oracle.max_partition_size);
  EXPECT_EQ(streamed.min_partition_size, oracle.min_partition_size);
  EXPECT_EQ(streamed.partition_sizes, oracle.partition_sizes);
}

TEST(StreamingQualitySinkTest, EmptyQualityIsZero) {
  StreamingQualitySink sink(3);
  const PartitionQuality quality = sink.Quality();
  EXPECT_DOUBLE_EQ(quality.replication_factor, 0.0);
  EXPECT_EQ(quality.num_edges, 0u);
  EXPECT_EQ(quality.partition_sizes, (std::vector<uint64_t>{0, 0, 0}));
}

TEST(StreamingQualitySinkTest, StateGrowsWithVerticesNotEdges) {
  StreamingQualitySink sink(4);
  for (int repeat = 0; repeat < 1000; ++repeat) {
    sink.Assign(Edge{0, 1}, 0);  // same two vertices, many edges
  }
  const uint64_t bytes_small_v = sink.StateBytes();
  sink.Assign(Edge{50000, 50001}, 1);
  EXPECT_GT(sink.StateBytes(), bytes_small_v);
  // O(|V|*k) bitset + O(|V|) counts, nowhere near edge-list scale.
  EXPECT_LT(sink.StateBytes(), uint64_t{50002} * 4 / 8 + 50002 * 8 + 4096);
}

TEST(ValidatingSinkTest, LatchesMidStreamCapViolation) {
  ValidatingSink sink(2, /*streaming_capacity=*/2);
  sink.Assign(Edge{0, 1}, 0);
  sink.Assign(Edge{1, 2}, 0);
  EXPECT_TRUE(sink.status().ok());
  sink.Assign(Edge{2, 3}, 0);
  EXPECT_EQ(sink.status().code(), StatusCode::kFailedPrecondition);
  // Finish reports the latched violation regardless of final totals.
  EXPECT_EQ(sink.Finish(3, 100).code(), StatusCode::kFailedPrecondition);
}

TEST(ValidatingSinkTest, FinishChecksTotalsAndLateCapacity) {
  ValidatingSink sink(2, ValidatingSink::kNoCapacity);
  sink.Assign(Edge{0, 1}, 0);
  sink.Assign(Edge{1, 2}, 1);
  EXPECT_TRUE(sink.status().ok());
  EXPECT_TRUE(sink.Finish(2, 1).ok());
  EXPECT_EQ(sink.Finish(3, 1).code(), StatusCode::kFailedPrecondition);
  sink.Assign(Edge{2, 3}, 0);
  // Capacity only computable at the end (hint-less stream): Finish
  // still enforces it.
  EXPECT_EQ(sink.Finish(3, 1).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(sink.total(), 3u);
}

TEST(MetricsTest, QualityOfKnownPartitioning) {
  // Partition 0: triangle {0,1,2}; partition 1: edge {2,3}.
  // Covers: |{0,1,2}| + |{2,3}| = 5; covered vertices = 4 -> RF 1.25.
  std::vector<std::vector<Edge>> parts = {
      {{0, 1}, {1, 2}, {2, 0}},
      {{2, 3}},
  };
  const PartitionQuality quality = ComputeQuality(parts);
  EXPECT_DOUBLE_EQ(quality.replication_factor, 1.25);
  EXPECT_EQ(quality.num_edges, 4u);
  EXPECT_EQ(quality.num_covered_vertices, 4u);
  EXPECT_EQ(quality.max_partition_size, 3u);
  EXPECT_EQ(quality.min_partition_size, 1u);
  // alpha = 3 / (4/2) = 1.5.
  EXPECT_DOUBLE_EQ(quality.measured_alpha, 1.5);
}

TEST(MetricsTest, EmptyPartitioning) {
  const PartitionQuality quality = ComputeQuality({{}, {}});
  EXPECT_DOUBLE_EQ(quality.replication_factor, 0.0);
  EXPECT_EQ(quality.num_edges, 0u);
}

TEST(MetricsTest, ValidateDetectsCapacityViolation) {
  std::vector<std::vector<Edge>> parts = {{{0, 1}, {1, 2}}, {}};
  EXPECT_TRUE(ValidatePartitioning(parts, 2, 2).ok());
  const Status status = ValidatePartitioning(parts, 2, 1);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(MetricsTest, ValidateDetectsLostEdges) {
  std::vector<std::vector<Edge>> parts = {{{0, 1}}, {}};
  const Status status = ValidatePartitioning(parts, 2, 10);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

/// A deliberately broken partitioner that drops every edge; the runner
/// must flag it.
class DroppingPartitioner : public Partitioner {
 public:
  std::string name() const override { return "Dropper"; }
  Status Partition(EdgeStream& stream, const PartitionConfig&,
                   AssignmentSink&, PartitionStats*) override {
    return ForEachEdge(stream, [](const Edge&) {});
  }
};

TEST(RunnerTest, CatchesEdgeLoss) {
  InMemoryEdgeStream stream({{0, 1}, {1, 2}});
  DroppingPartitioner partitioner;
  PartitionConfig config;
  config.num_partitions = 2;
  auto result = RunPartitioner(partitioner, stream, config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

/// Overloads one partition; the runner must flag the cap violation.
class OverloadingPartitioner : public Partitioner {
 public:
  std::string name() const override { return "Overloader"; }
  Status Partition(EdgeStream& stream, const PartitionConfig&,
                   AssignmentSink& sink, PartitionStats*) override {
    return ForEachEdge(stream,
                       [&sink](const Edge& e) { sink.Assign(e, 0); });
  }
};

TEST(RunnerTest, CatchesCapViolation) {
  std::vector<Edge> edges;
  for (uint32_t i = 0; i < 100; ++i) {
    edges.push_back(Edge{i, i + 1});
  }
  InMemoryEdgeStream stream(edges);
  OverloadingPartitioner partitioner;
  PartitionConfig config;
  config.num_partitions = 4;
  auto result = RunPartitioner(partitioner, stream, config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(RunnerTest, StreamingQualityMatchesOracleWithoutKeptPartitions) {
  // The default measurement path: no edge lists kept, quality from the
  // streaming sink must equal the from-scratch oracle on the same run.
  std::vector<Edge> edges;
  for (uint32_t i = 0; i < 500; ++i) {
    edges.push_back(Edge{i % 97, (i * 7 + 3) % 89});
  }
  InMemoryEdgeStream stream(edges);
  OverloadingPartitioner all_in_one;  // deterministic sink pattern
  PartitionConfig config;
  config.num_partitions = 3;
  RunOptions options;
  options.validate = false;  // Overloader ignores the cap by design
  options.keep_partitions = true;
  auto result = RunPartitioner(all_in_one, stream, config, options);
  ASSERT_TRUE(result.ok());
  const PartitionQuality oracle = ComputeQuality(result->partitions);
  EXPECT_DOUBLE_EQ(result->quality.replication_factor,
                   oracle.replication_factor);
  EXPECT_DOUBLE_EQ(result->quality.measured_alpha, oracle.measured_alpha);
  EXPECT_EQ(result->quality.partition_sizes, oracle.partition_sizes);
}

TEST(RunnerTest, SinkStateCountsTowardStateBytes) {
  std::vector<Edge> edges;
  for (uint32_t i = 0; i < 200; ++i) {
    edges.push_back(Edge{i, i + 1});
  }
  OverloadingPartitioner partitioner;  // reports no state of its own
  PartitionConfig config;
  config.num_partitions = 4;
  RunOptions options;
  options.validate = false;

  InMemoryEdgeStream stream_a(edges);
  auto streaming = RunPartitioner(partitioner, stream_a, config, options);
  ASSERT_TRUE(streaming.ok());
  // The quality sink's replication bitsets are real state: reported.
  EXPECT_GT(streaming->stats.state_bytes, 0u);

  InMemoryEdgeStream stream_b(edges);
  options.keep_partitions = true;
  auto kept = RunPartitioner(partitioner, stream_b, config, options);
  ASSERT_TRUE(kept.ok());
  // Opting into materialization must show up in the accounting.
  EXPECT_GT(kept->stats.state_bytes,
            streaming->stats.state_bytes + 200 * sizeof(Edge) - 1);
}

/// Stream whose pass "fails" after a few edges: Next() returns 0 and
/// Health() latches an I/O error, like a truncated or unreadable file.
class FailingEdgeStream : public EdgeStream {
 public:
  explicit FailingEdgeStream(size_t fail_after) : fail_after_(fail_after) {}

  Status Reset() override {
    delivered_ = 0;
    return Status::OK();
  }

  size_t Next(Edge* out, size_t capacity) override {
    if (delivered_ >= fail_after_) {
      health_ = Status::IoError("simulated read failure");
      return 0;
    }
    const size_t n = std::min(capacity, fail_after_ - delivered_);
    for (size_t i = 0; i < n; ++i) {
      const VertexId v = static_cast<VertexId>(delivered_ + i);
      out[i] = Edge{v, v + 1};
    }
    delivered_ += n;
    return n;
  }

  uint64_t NumEdgesHint() const override { return 1000; }  // lies: fails first

  Status Health() const override { return health_; }

 private:
  size_t fail_after_;
  size_t delivered_ = 0;
  Status health_;
};

TEST(RunnerTest, FailingStreamSurfacesHealthNotShortGraph) {
  // A mid-pass stream failure must fail the run with the stream's I/O
  // error — never quietly measure a shorter graph through the pipeline.
  FailingEdgeStream stream(/*fail_after=*/64);
  OverloadingPartitioner partitioner;
  PartitionConfig config;
  config.num_partitions = 2;
  RunOptions options;
  options.validate = false;
  auto result = RunPartitioner(partitioner, stream, config, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace tpsl

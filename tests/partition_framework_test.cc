#include <gtest/gtest.h>

#include <vector>

#include "graph/in_memory_edge_stream.h"
#include "partition/assignment_sink.h"
#include "partition/metrics.h"
#include "partition/partitioner.h"
#include "partition/replication_table.h"
#include "partition/runner.h"

namespace tpsl {
namespace {

TEST(PartitionConfigTest, CapacityMatchesFormula) {
  PartitionConfig config;
  config.num_partitions = 4;
  config.balance_factor = 1.05;
  // ceil(1.05 * 100 / 4) = 27 (1.05*25 = 26.25).
  EXPECT_EQ(config.PartitionCapacity(100), 27u);
}

TEST(PartitionConfigTest, CapacityNeverBelowPerfectBalance) {
  PartitionConfig config;
  config.num_partitions = 3;
  config.balance_factor = 1.0;
  // ceil(10/3) = 4; a cap of 3 would be infeasible.
  EXPECT_EQ(config.PartitionCapacity(10), 4u);
}

TEST(PartitionConfigTest, CapacityWithKOne) {
  PartitionConfig config;
  config.num_partitions = 1;
  EXPECT_GE(config.PartitionCapacity(50), 50u);
}

TEST(ReplicationTableTest, SetIsIdempotent) {
  ReplicationTable table(10, 4);
  EXPECT_FALSE(table.Test(3, 2));
  table.Set(3, 2);
  EXPECT_TRUE(table.Test(3, 2));
  EXPECT_EQ(table.CoverSize(2), 1u);
  table.Set(3, 2);
  EXPECT_EQ(table.CoverSize(2), 1u);
  EXPECT_EQ(table.ReplicaCount(3), 1u);
}

TEST(ReplicationTableTest, CoverAndReplicaBookkeeping) {
  ReplicationTable table(5, 3);
  table.Set(0, 0);
  table.Set(0, 1);
  table.Set(0, 2);
  table.Set(1, 1);
  EXPECT_EQ(table.ReplicaCount(0), 3u);
  EXPECT_EQ(table.ReplicaCount(1), 1u);
  EXPECT_EQ(table.CoverSize(0), 1u);
  EXPECT_EQ(table.CoverSize(1), 2u);
  EXPECT_EQ(table.CoveredVertices(), 2u);
  // RF = (3 + 1) / 2 covered vertices.
  EXPECT_DOUBLE_EQ(table.ReplicationFactor(), 2.0);
}

TEST(ReplicationTableTest, EmptyTableHasZeroRf) {
  ReplicationTable table(10, 4);
  EXPECT_DOUBLE_EQ(table.ReplicationFactor(), 0.0);
  EXPECT_EQ(table.CoveredVertices(), 0u);
}

TEST(ReplicationTableTest, LargeIndicesDoNotAlias) {
  // Bit-matrix indexing across word boundaries.
  ReplicationTable table(1000, 37);
  table.Set(999, 36);
  table.Set(998, 0);
  EXPECT_TRUE(table.Test(999, 36));
  EXPECT_TRUE(table.Test(998, 0));
  EXPECT_FALSE(table.Test(999, 35));
  EXPECT_FALSE(table.Test(998, 36));
}

TEST(SinkTest, CountingSinkCounts) {
  CountingSink sink(3);
  sink.Assign(Edge{0, 1}, 0);
  sink.Assign(Edge{1, 2}, 0);
  sink.Assign(Edge{2, 3}, 2);
  EXPECT_EQ(sink.loads(), (std::vector<uint64_t>{2, 0, 1}));
  EXPECT_EQ(sink.total(), 3u);
}

TEST(SinkTest, EdgeListSinkMaterializes) {
  EdgeListSink sink(2);
  sink.Assign(Edge{0, 1}, 1);
  sink.Assign(Edge{1, 2}, 0);
  EXPECT_EQ(sink.partitions()[0], (std::vector<Edge>{{1, 2}}));
  EXPECT_EQ(sink.partitions()[1], (std::vector<Edge>{{0, 1}}));
  auto taken = sink.TakePartitions();
  EXPECT_EQ(taken.size(), 2u);
}

TEST(SinkTest, TeeSinkForwardsToBoth) {
  CountingSink a(2), b(2);
  TeeSink tee(&a, &b);
  tee.Assign(Edge{0, 1}, 1);
  EXPECT_EQ(a.loads()[1], 1u);
  EXPECT_EQ(b.loads()[1], 1u);
}

TEST(MetricsTest, QualityOfKnownPartitioning) {
  // Partition 0: triangle {0,1,2}; partition 1: edge {2,3}.
  // Covers: |{0,1,2}| + |{2,3}| = 5; covered vertices = 4 -> RF 1.25.
  std::vector<std::vector<Edge>> parts = {
      {{0, 1}, {1, 2}, {2, 0}},
      {{2, 3}},
  };
  const PartitionQuality quality = ComputeQuality(parts);
  EXPECT_DOUBLE_EQ(quality.replication_factor, 1.25);
  EXPECT_EQ(quality.num_edges, 4u);
  EXPECT_EQ(quality.num_covered_vertices, 4u);
  EXPECT_EQ(quality.max_partition_size, 3u);
  EXPECT_EQ(quality.min_partition_size, 1u);
  // alpha = 3 / (4/2) = 1.5.
  EXPECT_DOUBLE_EQ(quality.measured_alpha, 1.5);
}

TEST(MetricsTest, EmptyPartitioning) {
  const PartitionQuality quality = ComputeQuality({{}, {}});
  EXPECT_DOUBLE_EQ(quality.replication_factor, 0.0);
  EXPECT_EQ(quality.num_edges, 0u);
}

TEST(MetricsTest, ValidateDetectsCapacityViolation) {
  std::vector<std::vector<Edge>> parts = {{{0, 1}, {1, 2}}, {}};
  EXPECT_TRUE(ValidatePartitioning(parts, 2, 2).ok());
  const Status status = ValidatePartitioning(parts, 2, 1);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(MetricsTest, ValidateDetectsLostEdges) {
  std::vector<std::vector<Edge>> parts = {{{0, 1}}, {}};
  const Status status = ValidatePartitioning(parts, 2, 10);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

/// A deliberately broken partitioner that drops every edge; the runner
/// must flag it.
class DroppingPartitioner : public Partitioner {
 public:
  std::string name() const override { return "Dropper"; }
  Status Partition(EdgeStream& stream, const PartitionConfig&,
                   AssignmentSink&, PartitionStats*) override {
    return ForEachEdge(stream, [](const Edge&) {});
  }
};

TEST(RunnerTest, CatchesEdgeLoss) {
  InMemoryEdgeStream stream({{0, 1}, {1, 2}});
  DroppingPartitioner partitioner;
  PartitionConfig config;
  config.num_partitions = 2;
  auto result = RunPartitioner(partitioner, stream, config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

/// Overloads one partition; the runner must flag the cap violation.
class OverloadingPartitioner : public Partitioner {
 public:
  std::string name() const override { return "Overloader"; }
  Status Partition(EdgeStream& stream, const PartitionConfig&,
                   AssignmentSink& sink, PartitionStats*) override {
    return ForEachEdge(stream,
                       [&sink](const Edge& e) { sink.Assign(e, 0); });
  }
};

TEST(RunnerTest, CatchesCapViolation) {
  std::vector<Edge> edges;
  for (uint32_t i = 0; i < 100; ++i) {
    edges.push_back(Edge{i, i + 1});
  }
  InMemoryEdgeStream stream(edges);
  OverloadingPartitioner partitioner;
  PartitionConfig config;
  config.num_partitions = 4;
  auto result = RunPartitioner(partitioner, stream, config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace tpsl

#include <gtest/gtest.h>

#include "core/scoring.h"
#include "partition/replication_table.h"

namespace tpsl {
namespace {

TEST(TwopsScoringTest, ReplicationTermZeroWhenNotReplicated) {
  EXPECT_DOUBLE_EQ(TwopsReplicationTerm(false, 10, 30), 0.0);
}

TEST(TwopsScoringTest, ReplicationTermFormula) {
  // g = 1 + (1 - d_self / (d_u + d_v)).
  EXPECT_DOUBLE_EQ(TwopsReplicationTerm(true, 10, 40), 1.0 + (1.0 - 0.25));
  EXPECT_DOUBLE_EQ(TwopsReplicationTerm(true, 40, 40), 1.0);  // d == sum
}

TEST(TwopsScoringTest, LowDegreeEndpointScoresHigher) {
  // Replicating the low-degree endpoint is worth more (it is cheaper
  // to keep it local than a hub that is replicated anyway).
  const double low = TwopsReplicationTerm(true, 2, 100);
  const double high = TwopsReplicationTerm(true, 98, 100);
  EXPECT_GT(low, high);
}

TEST(TwopsScoringTest, ClusterTermProportionalToVolume) {
  EXPECT_DOUBLE_EQ(TwopsClusterTerm(true, 30, 100), 0.3);
  EXPECT_DOUBLE_EQ(TwopsClusterTerm(false, 30, 100), 0.0);
  EXPECT_DOUBLE_EQ(TwopsClusterTerm(true, 30, 0), 0.0);  // guard
}

TEST(TwopsScoringTest, FullScoreRange) {
  // Max per endpoint: g < 2, sc <= 1 -> total < 6 for two endpoints.
  ReplicationTable replicas(4, 2);
  replicas.Set(0, 0);
  replicas.Set(1, 0);
  const double score =
      TwopsScore(replicas, 0, 1, 1, 1, 50, 50, true, true, 0);
  EXPECT_GT(score, 0.0);
  EXPECT_LT(score, 6.0);
}

TEST(TwopsScoringTest, PrefersPartitionWithBothReplicas) {
  ReplicationTable replicas(4, 2);
  replicas.Set(0, 0);
  replicas.Set(1, 0);
  replicas.Set(0, 1);  // only one endpoint on partition 1
  const double both =
      TwopsScore(replicas, 0, 1, 5, 5, 10, 10, true, false, 0);
  const double one =
      TwopsScore(replicas, 0, 1, 5, 5, 10, 10, false, true, 1);
  EXPECT_GT(both, one);
}

TEST(HdrfScoringTest, NoReplicasNoScore) {
  EXPECT_DOUBLE_EQ(HdrfReplicationScore(false, false, 5, 5), 0.0);
}

TEST(HdrfScoringTest, DegreeWeighting) {
  // θ_u = d_u / (d_u + d_v); replicated endpoint contributes
  // 1 + (1 - θ_self). The lower-degree endpoint contributes more.
  const double low_degree_on = HdrfReplicationScore(true, false, 10, 90);
  const double high_degree_on = HdrfReplicationScore(false, true, 10, 90);
  EXPECT_DOUBLE_EQ(low_degree_on, 1.0 + 0.9);
  EXPECT_DOUBLE_EQ(high_degree_on, 1.0 + 0.1);
}

TEST(HdrfScoringTest, BothReplicatedIsMax) {
  const double both = HdrfReplicationScore(true, true, 10, 10);
  EXPECT_DOUBLE_EQ(both, 3.0);  // 2 * (1 + 0.5)
}

TEST(HdrfScoringTest, BalanceScorePrefersEmptyPartition) {
  const double empty = HdrfBalanceScore(0, 100, 0, 1.1);
  const double full = HdrfBalanceScore(100, 100, 0, 1.1);
  EXPECT_GT(empty, full);
  EXPECT_DOUBLE_EQ(full, 0.0);
}

TEST(HdrfScoringTest, BalanceScoreScalesWithLambda) {
  EXPECT_GT(HdrfBalanceScore(0, 100, 0, 2.0),
            HdrfBalanceScore(0, 100, 0, 1.0));
}

TEST(HdrfScoringTest, BalanceScoreBoundedByLambda) {
  // C_BAL <= λ (ε = 1 keeps it strictly below).
  for (uint64_t load = 0; load <= 100; load += 10) {
    EXPECT_LE(HdrfBalanceScore(load, 100, 0, 1.1), 1.1);
  }
}

TEST(HdrfScoringTest, ZeroDegreesAreSafe) {
  // Degenerate but must not divide by zero.
  EXPECT_DOUBLE_EQ(HdrfReplicationScore(true, false, 0, 0), 1.0);
}

}  // namespace
}  // namespace tpsl

// Registry-wide byte-identity oracle for the partitioner-state kernel.
//
// The golden table below was captured from the pre-refactor tree (the
// commit before every scoring loop moved onto ScoreTables /
// DenseBitset): an FNV-1a 64 digest of the exact (u, v, partition)
// assignment stream of every registry partitioner, at threads=1,
// across three graph families and three partition counts. The refactor
// contract is that these digests never move — same edges, same order,
// same partitions, byte for byte. A mismatch here means the kernel
// changed an iteration order, a tie-break, or a score formula, which
// is a correctness bug even when quality metrics look unchanged.
//
// To re-pin after an INTENTIONAL assignment change: rebuild the table
// with the loop below printing digests (family, k, name fixed), and
// say so loudly in the PR — this table moving is the whole point of
// the test.
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "graph/generators.h"
#include "graph/in_memory_edge_stream.h"
#include "graph/types.h"
#include "gtest/gtest.h"
#include "partition/partitioner.h"

namespace tpsl {
namespace {

/// FNV-1a 64 over the raw assignment stream, identical to the capture
/// harness (offset 0xcbf29ce484222325, prime 0x100000001b3, bytes of
/// u, v, p in stream order).
class ChecksumSink : public AssignmentSink {
 public:
  void Assign(const Edge& edge, PartitionId partition) override {
    Fold(&edge.first, sizeof(edge.first));
    Fold(&edge.second, sizeof(edge.second));
    Fold(&partition, sizeof(partition));
  }
  uint64_t digest() const { return state_; }

 private:
  void Fold(const void* data, size_t bytes) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < bytes; ++i) {
      state_ ^= p[i];
      state_ *= 0x100000001b3ULL;
    }
  }
  uint64_t state_ = 0xcbf29ce484222325ULL;
};

/// The three graph families of the oracle grid: an R-MAT social-style
/// graph (skewed degrees), a planted-partition community graph, and a
/// uniform Erdős–Rényi graph. Generators are seeded, so the edge
/// streams are bit-identical to the capture run.
std::vector<Edge> MakeFamily(const std::string& family) {
  if (family == "social") {
    RmatConfig config;
    config.scale = 11;
    config.edge_factor = 8;
    return GenerateRmat(config);
  }
  if (family == "community") {
    PlantedPartitionConfig config;
    config.num_vertices = 2048;
    config.num_edges = 16000;
    config.num_communities = 32;
    return GeneratePlantedPartition(config);
  }
  ErdosRenyiConfig config;
  config.num_vertices = 2048;
  config.num_edges = 16000;
  return GenerateErdosRenyi(config);
}

struct GoldenRow {
  const char* partitioner;
  const char* family;
  uint32_t k;
  uint64_t digest;
};

// Captured at the pre-refactor seed (threads=1, default
// PartitionConfig otherwise). 17 partitioners × 3 families × 3 k.
const GoldenRow kGoldenRows[] = {
    {"2PS-L", "social", 2, 0x9cb24bdf78b48c37ULL},
    {"2PS-L", "social", 5, 0xc42e7f7e84f0cfefULL},
    {"2PS-L", "social", 32, 0x7535ab33db6b8717ULL},
    {"2PS-HDRF", "social", 2, 0x98da071c1c690a3bULL},
    {"2PS-HDRF", "social", 5, 0xb8a35d37f173871bULL},
    {"2PS-HDRF", "social", 32, 0xcb13a0a60e33f370ULL},
    {"2PS-L(par)", "social", 2, 0x9cb24bdf78b48c37ULL},
    {"2PS-L(par)", "social", 5, 0xc42e7f7e84f0cfefULL},
    {"2PS-L(par)", "social", 32, 0x7535ab33db6b8717ULL},
    {"2PS-HDRF(par)", "social", 2, 0x98da071c1c690a3bULL},
    {"2PS-HDRF(par)", "social", 5, 0xb8a35d37f173871bULL},
    {"2PS-HDRF(par)", "social", 32, 0xcb13a0a60e33f370ULL},
    {"HDRF", "social", 2, 0xa7ea1be94ae7a613ULL},
    {"HDRF", "social", 5, 0x3a15aea084ba3025ULL},
    {"HDRF", "social", 32, 0x0e253983d8b7a718ULL},
    {"DBH", "social", 2, 0x021525828f93b497ULL},
    {"DBH", "social", 5, 0xe87579194101ae16ULL},
    {"DBH", "social", 32, 0x5b708a891de8fa21ULL},
    {"Grid", "social", 2, 0x0686cdba17e4f6e6ULL},
    {"Grid", "social", 5, 0x472bbe7c96f5c968ULL},
    {"Grid", "social", 32, 0x9f46df806fe27a0bULL},
    {"Hash", "social", 2, 0x532c944922df5ce2ULL},
    {"Hash", "social", 5, 0x67d765a195b25f00ULL},
    {"Hash", "social", 32, 0xcb261fbc05cf175cULL},
    {"Greedy", "social", 2, 0x5b204ec2bd2f029bULL},
    {"Greedy", "social", 5, 0xb3f0c0b11b7b4a8bULL},
    {"Greedy", "social", 32, 0x79f2407031bfd357ULL},
    {"ADWISE", "social", 2, 0x81f7aebb4d488c9fULL},
    {"ADWISE", "social", 5, 0xe60f39172ee24738ULL},
    {"ADWISE", "social", 32, 0x9eaeaba14c0ee9deULL},
    {"NE", "social", 2, 0xa6dff1baeeb0410bULL},
    {"NE", "social", 5, 0xc7a17365864fc1c7ULL},
    {"NE", "social", 32, 0x235f1e2949855be8ULL},
    {"SNE", "social", 2, 0xf7d1c8af97333507ULL},
    {"SNE", "social", 5, 0xd153b005af72713bULL},
    {"SNE", "social", 32, 0x23e9554ae825d9bbULL},
    {"DNE", "social", 2, 0xdf6c61a4f6e1bc9fULL},
    {"DNE", "social", 5, 0x27b19571497bf0f7ULL},
    {"DNE", "social", 32, 0xe0776f1f1e58ccc4ULL},
    {"HEP-1", "social", 2, 0x79ad24099724f30fULL},
    {"HEP-1", "social", 5, 0x6ba150bbe4210803ULL},
    {"HEP-1", "social", 32, 0x8105d265a89a94f0ULL},
    {"HEP-10", "social", 2, 0xe4227431cfc9082fULL},
    {"HEP-10", "social", 5, 0x9fdf978a8b6f2f67ULL},
    {"HEP-10", "social", 32, 0x3e15712efaf9b640ULL},
    {"HEP-100", "social", 2, 0xa6dff1baeeb0410bULL},
    {"HEP-100", "social", 5, 0xc7a17365864fc1c7ULL},
    {"HEP-100", "social", 32, 0x235f1e2949855be8ULL},
    {"METIS*", "social", 2, 0x211bcd973eb09cb2ULL},
    {"METIS*", "social", 5, 0x5e36d9b9efffbbbfULL},
    {"METIS*", "social", 32, 0xb8977e18b23d2725ULL},
    {"2PS-L", "community", 2, 0xe747a3be17b1209cULL},
    {"2PS-L", "community", 5, 0x1781d62fc049f4cdULL},
    {"2PS-L", "community", 32, 0x9e1ebf92fca015c3ULL},
    {"2PS-HDRF", "community", 2, 0xdbb91a8c048c5361ULL},
    {"2PS-HDRF", "community", 5, 0xc92690bc73909a4eULL},
    {"2PS-HDRF", "community", 32, 0x412ec61f33b70979ULL},
    {"2PS-L(par)", "community", 2, 0xe747a3be17b1209cULL},
    {"2PS-L(par)", "community", 5, 0x1781d62fc049f4cdULL},
    {"2PS-L(par)", "community", 32, 0x9e1ebf92fca015c3ULL},
    {"2PS-HDRF(par)", "community", 2, 0xdbb91a8c048c5361ULL},
    {"2PS-HDRF(par)", "community", 5, 0xc92690bc73909a4eULL},
    {"2PS-HDRF(par)", "community", 32, 0x412ec61f33b70979ULL},
    {"HDRF", "community", 2, 0x9226fa6672c67dbdULL},
    {"HDRF", "community", 5, 0x7d1c6c789a0da1d7ULL},
    {"HDRF", "community", 32, 0x705b11e1492b19b2ULL},
    {"DBH", "community", 2, 0x5013a9341fdb9281ULL},
    {"DBH", "community", 5, 0xf40ee0d87761eabaULL},
    {"DBH", "community", 32, 0xd1a688835a9f240fULL},
    {"Grid", "community", 2, 0xf68e5863af473779ULL},
    {"Grid", "community", 5, 0xe17dd40943e55bd0ULL},
    {"Grid", "community", 32, 0x4190ac74d5bf2d20ULL},
    {"Hash", "community", 2, 0x9e75f1516fa8422cULL},
    {"Hash", "community", 5, 0x879aa0d36ec786b9ULL},
    {"Hash", "community", 32, 0xf30308a65197ae56ULL},
    {"Greedy", "community", 2, 0x7344b6b1145c5f21ULL},
    {"Greedy", "community", 5, 0x307d7bcc96e796caULL},
    {"Greedy", "community", 32, 0x0be215b62ff5b9d9ULL},
    {"ADWISE", "community", 2, 0x2afcbc0a3c0dc325ULL},
    {"ADWISE", "community", 5, 0x0d88698e30eb959cULL},
    {"ADWISE", "community", 32, 0xa5440bae36b999b5ULL},
    {"NE", "community", 2, 0xc6565f764d388e55ULL},
    {"NE", "community", 5, 0x413923304e6984f9ULL},
    {"NE", "community", 32, 0xaf08135c817dc571ULL},
    {"SNE", "community", 2, 0x019ce9f8a0bfbd61ULL},
    {"SNE", "community", 5, 0x321ede1906e5bf90ULL},
    {"SNE", "community", 32, 0xe8ba445364928ce5ULL},
    {"DNE", "community", 2, 0x59f43977ed9824b5ULL},
    {"DNE", "community", 5, 0x156beed122360b15ULL},
    {"DNE", "community", 32, 0xfab13443fcc47089ULL},
    {"HEP-1", "community", 2, 0xbf83b4cebc108904ULL},
    {"HEP-1", "community", 5, 0x33f6e24344cab087ULL},
    {"HEP-1", "community", 32, 0x3b7a0344222f3594ULL},
    {"HEP-10", "community", 2, 0xc6565f764d388e55ULL},
    {"HEP-10", "community", 5, 0x413923304e6984f9ULL},
    {"HEP-10", "community", 32, 0xaf08135c817dc571ULL},
    {"HEP-100", "community", 2, 0xc6565f764d388e55ULL},
    {"HEP-100", "community", 5, 0x413923304e6984f9ULL},
    {"HEP-100", "community", 32, 0xaf08135c817dc571ULL},
    {"METIS*", "community", 2, 0x9573ca3b71ad776dULL},
    {"METIS*", "community", 5, 0x7a5a524a07fe427dULL},
    {"METIS*", "community", 32, 0xd68f14ea591ea20fULL},
    {"2PS-L", "uniform", 2, 0xb2d0ac628d33b56fULL},
    {"2PS-L", "uniform", 5, 0x2feeae7a9f38c77fULL},
    {"2PS-L", "uniform", 32, 0x0e6492a26f946694ULL},
    {"2PS-HDRF", "uniform", 2, 0x6e6a28278dd874ebULL},
    {"2PS-HDRF", "uniform", 5, 0x023a7bf31215c714ULL},
    {"2PS-HDRF", "uniform", 32, 0x5566ff5b311d6d49ULL},
    {"2PS-L(par)", "uniform", 2, 0xb2d0ac628d33b56fULL},
    {"2PS-L(par)", "uniform", 5, 0x2feeae7a9f38c77fULL},
    {"2PS-L(par)", "uniform", 32, 0x0e6492a26f946694ULL},
    {"2PS-HDRF(par)", "uniform", 2, 0x6e6a28278dd874ebULL},
    {"2PS-HDRF(par)", "uniform", 5, 0x023a7bf31215c714ULL},
    {"2PS-HDRF(par)", "uniform", 32, 0x5566ff5b311d6d49ULL},
    {"HDRF", "uniform", 2, 0x9bb1b37cd6d6798bULL},
    {"HDRF", "uniform", 5, 0xd572996b8c272e3cULL},
    {"HDRF", "uniform", 32, 0x9e43f9792d2fb1d0ULL},
    {"DBH", "uniform", 2, 0x0f69d86739250b46ULL},
    {"DBH", "uniform", 5, 0x0fa1588232d8afffULL},
    {"DBH", "uniform", 32, 0x69eba1457f980426ULL},
    {"Grid", "uniform", 2, 0x75358918045eed06ULL},
    {"Grid", "uniform", 5, 0xeea36d8c10892aa4ULL},
    {"Grid", "uniform", 32, 0x0c372b2955afa0d3ULL},
    {"Hash", "uniform", 2, 0x8229660fd9180112ULL},
    {"Hash", "uniform", 5, 0xe07c4b4cd32b6289ULL},
    {"Hash", "uniform", 32, 0x3893fec2d33ddeaaULL},
    {"Greedy", "uniform", 2, 0x4c87cfde98b80c2bULL},
    {"Greedy", "uniform", 5, 0x4e211b93d2afb343ULL},
    {"Greedy", "uniform", 32, 0xe726e3b34b27ea18ULL},
    {"ADWISE", "uniform", 2, 0x0ab357fb917486beULL},
    {"ADWISE", "uniform", 5, 0xc2418c248dc876c7ULL},
    {"ADWISE", "uniform", 32, 0xba73b5da6710a8edULL},
    {"NE", "uniform", 2, 0x37e1ed483d561b27ULL},
    {"NE", "uniform", 5, 0xdf16f62e7a5c8f83ULL},
    {"NE", "uniform", 32, 0xc9aebdb1e4bbb1bfULL},
    {"SNE", "uniform", 2, 0xbbf0619b9453d4c7ULL},
    {"SNE", "uniform", 5, 0x93f8a427989ebbfeULL},
    {"SNE", "uniform", 32, 0x35a57c8a99903d4fULL},
    {"DNE", "uniform", 2, 0x9a953fcea6ba5d93ULL},
    {"DNE", "uniform", 5, 0xf0c4922af0364ddfULL},
    {"DNE", "uniform", 32, 0xf847b3722d8ac277ULL},
    {"HEP-1", "uniform", 2, 0x432a82928a854cbfULL},
    {"HEP-1", "uniform", 5, 0xd6dbde465d97d604ULL},
    {"HEP-1", "uniform", 32, 0xd6011261b8aee3adULL},
    {"HEP-10", "uniform", 2, 0x37e1ed483d561b27ULL},
    {"HEP-10", "uniform", 5, 0xdf16f62e7a5c8f83ULL},
    {"HEP-10", "uniform", 32, 0xc9aebdb1e4bbb1bfULL},
    {"HEP-100", "uniform", 2, 0x37e1ed483d561b27ULL},
    {"HEP-100", "uniform", 5, 0xdf16f62e7a5c8f83ULL},
    {"HEP-100", "uniform", 32, 0xc9aebdb1e4bbb1bfULL},
    {"METIS*", "uniform", 2, 0xc0dfaeb8a402f7abULL},
    {"METIS*", "uniform", 5, 0xb78eb0c24bcce56bULL},
    {"METIS*", "uniform", 32, 0xc18eb4d0a6ba261aULL},
};

/// Every name MakePartitioner accepts. The registry has no single
/// enumerator; the published rosters (Fig. 4 + streaming) plus the two
/// parallel cores cover it, and the coverage test cross-checks that
/// each name actually constructs.
std::vector<std::string> FullRegistry() {
  std::vector<std::string> names = Fig4PartitionerNames();
  for (const std::string& name : StreamingPartitionerNames()) {
    bool seen = false;
    for (const std::string& have : names) {
      seen = seen || have == name;
    }
    if (!seen) {
      names.push_back(name);
    }
  }
  names.push_back("Hash");
  names.push_back("2PS-L(par)");
  names.push_back("2PS-HDRF(par)");
  return names;
}

TEST(StateKernelIdentityTest, GoldenTableCoversWholeRegistry) {
  // Every registered partitioner must appear in the oracle grid: a new
  // baseline added without golden rows would otherwise silently skip
  // identity coverage.
  std::map<std::string, int> rows_per_name;
  for (const GoldenRow& row : kGoldenRows) {
    ++rows_per_name[row.partitioner];
  }
  const std::vector<std::string> registry = FullRegistry();
  for (const std::string& name : registry) {
    EXPECT_TRUE(MakePartitioner(name).ok()) << name;
    EXPECT_EQ(rows_per_name[name], 9)
        << "partitioner '" << name
        << "' needs 9 golden rows (3 families x 3 k); re-capture the table";
  }
  EXPECT_EQ(std::size(kGoldenRows), 9 * registry.size());
}

TEST(StateKernelIdentityTest, AssignmentStreamsMatchPreRefactorDigests) {
  // Group by family so each graph is generated once (DNE/NE at scale
  // are the slow rows; the whole grid is a few seconds in release).
  std::map<std::string, std::vector<const GoldenRow*>> by_family;
  for (const GoldenRow& row : kGoldenRows) {
    by_family[row.family].push_back(&row);
  }
  for (const auto& [family, rows] : by_family) {
    const std::vector<Edge> edges = MakeFamily(family);
    ASSERT_FALSE(edges.empty());
    InMemoryEdgeStream stream(edges);
    for (const GoldenRow* row : rows) {
      auto partitioner = MakePartitioner(row->partitioner);
      ASSERT_TRUE(partitioner.ok()) << row->partitioner;
      PartitionConfig config;
      config.num_partitions = row->k;
      config.exec.threads = 1;
      ChecksumSink sink;
      const Status status =
          (*partitioner)->Partition(stream, config, sink, nullptr);
      ASSERT_TRUE(status.ok())
          << row->partitioner << " on " << family << ": " << status.ToString();
      EXPECT_EQ(sink.digest(), row->digest)
          << row->partitioner << " k=" << row->k << " family=" << family
          << ": assignment stream diverged from the pre-refactor oracle";
    }
  }
}

}  // namespace
}  // namespace tpsl

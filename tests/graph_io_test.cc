#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "graph/binary_edge_list.h"
#include "graph/edge_stream.h"
#include "graph/in_memory_edge_stream.h"
#include "graph/text_edge_list.h"
#include "graph/types.h"

namespace tpsl {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::vector<Edge> SampleEdges() {
  return {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}, {7, 7}};
}

TEST(InMemoryEdgeStreamTest, DeliversAllEdgesInOrder) {
  InMemoryEdgeStream stream(SampleEdges());
  std::vector<Edge> got;
  ASSERT_TRUE(ForEachEdge(stream, [&](const Edge& e) { got.push_back(e); })
                  .ok());
  EXPECT_EQ(got, SampleEdges());
}

TEST(InMemoryEdgeStreamTest, SupportsMultiplePasses) {
  InMemoryEdgeStream stream(SampleEdges());
  for (int pass = 0; pass < 3; ++pass) {
    uint64_t count = 0;
    ASSERT_TRUE(ForEachEdge(stream, [&](const Edge&) { ++count; }).ok());
    EXPECT_EQ(count, SampleEdges().size());
  }
}

TEST(InMemoryEdgeStreamTest, NextRespectsCapacity) {
  InMemoryEdgeStream stream(SampleEdges());
  ASSERT_TRUE(stream.Reset().ok());
  Edge buffer[2];
  EXPECT_EQ(stream.Next(buffer, 2), 2u);
  EXPECT_EQ(buffer[0], (Edge{0, 1}));
  EXPECT_EQ(stream.Next(buffer, 2), 2u);
  EXPECT_EQ(stream.Next(buffer, 2), 2u);
  EXPECT_EQ(stream.Next(buffer, 2), 0u);
}

TEST(InMemoryEdgeStreamTest, EmptyStream) {
  InMemoryEdgeStream stream;
  EXPECT_EQ(stream.NumEdgesHint(), 0u);
  uint64_t count = 0;
  ASSERT_TRUE(ForEachEdge(stream, [&](const Edge&) { ++count; }).ok());
  EXPECT_EQ(count, 0u);
}

TEST(BinaryEdgeListTest, Roundtrip) {
  const std::string path = TempPath("roundtrip.bin");
  ASSERT_TRUE(WriteBinaryEdgeList(path, SampleEdges()).ok());
  auto edges_or = ReadBinaryEdgeList(path);
  ASSERT_TRUE(edges_or.ok());
  EXPECT_EQ(*edges_or, SampleEdges());
  std::remove(path.c_str());
}

TEST(BinaryEdgeListTest, EmptyFileRoundtrip) {
  const std::string path = TempPath("empty.bin");
  ASSERT_TRUE(WriteBinaryEdgeList(path, {}).ok());
  auto edges_or = ReadBinaryEdgeList(path);
  ASSERT_TRUE(edges_or.ok());
  EXPECT_TRUE(edges_or->empty());
  std::remove(path.c_str());
}

TEST(BinaryEdgeListTest, MissingFileIsNotFound) {
  auto result = BinaryFileEdgeStream::Open(TempPath("no_such_file.bin"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(BinaryEdgeListTest, TruncatedFileIsRejected) {
  const std::string path = TempPath("truncated.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char garbage[5] = {1, 2, 3, 4, 5};
  std::fwrite(garbage, 1, sizeof(garbage), f);
  std::fclose(f);

  auto result = BinaryFileEdgeStream::Open(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(BinaryEdgeListTest, ZeroBufferRejected) {
  auto result = BinaryFileEdgeStream::Open(TempPath("x.bin"), 0);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(BinaryFileEdgeStreamTest, MatchesInMemoryAcrossBufferSizes) {
  // Many edges so batches straddle buffer boundaries.
  std::vector<Edge> edges;
  for (uint32_t i = 0; i < 1000; ++i) {
    edges.push_back(Edge{i, i * 7 + 1});
  }
  const std::string path = TempPath("buffered.bin");
  ASSERT_TRUE(WriteBinaryEdgeList(path, edges).ok());

  for (const size_t buffer_edges : {1ul, 3ul, 64ul, 1000ul, 5000ul}) {
    auto stream_or = BinaryFileEdgeStream::Open(path, buffer_edges);
    ASSERT_TRUE(stream_or.ok());
    EXPECT_EQ((*stream_or)->NumEdgesHint(), edges.size());
    std::vector<Edge> got;
    ASSERT_TRUE(
        ForEachEdge(**stream_or, [&](const Edge& e) { got.push_back(e); })
            .ok());
    EXPECT_EQ(got, edges) << "buffer_edges=" << buffer_edges;
  }
  std::remove(path.c_str());
}

TEST(BinaryFileEdgeStreamTest, ResetMidStreamRestarts) {
  const std::string path = TempPath("reset.bin");
  ASSERT_TRUE(WriteBinaryEdgeList(path, SampleEdges()).ok());
  auto stream_or = BinaryFileEdgeStream::Open(path, 2);
  ASSERT_TRUE(stream_or.ok());
  EdgeStream& stream = **stream_or;

  ASSERT_TRUE(stream.Reset().ok());
  Edge buffer[3];
  ASSERT_EQ(stream.Next(buffer, 3), 3u);
  // Restart before exhausting.
  ASSERT_TRUE(stream.Reset().ok());
  std::vector<Edge> got;
  ASSERT_TRUE(
      ForEachEdge(stream, [&](const Edge& e) { got.push_back(e); }).ok());
  EXPECT_EQ(got, SampleEdges());
  std::remove(path.c_str());
}

TEST(TextEdgeListTest, Roundtrip) {
  const std::string path = TempPath("roundtrip.txt");
  ASSERT_TRUE(WriteTextEdgeList(path, SampleEdges()).ok());
  auto edges_or = ReadTextEdgeList(path);
  ASSERT_TRUE(edges_or.ok());
  EXPECT_EQ(*edges_or, SampleEdges());
  std::remove(path.c_str());
}

TEST(TextEdgeListTest, SkipsCommentsAndBlankLines) {
  const std::string path = TempPath("comments.txt");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("# SNAP-style comment\n% KONECT-style comment\n\n1 2\n  3 4\n",
             f);
  std::fclose(f);

  auto edges_or = ReadTextEdgeList(path);
  ASSERT_TRUE(edges_or.ok());
  EXPECT_EQ(*edges_or, (std::vector<Edge>{{1, 2}, {3, 4}}));
  std::remove(path.c_str());
}

TEST(TextEdgeListTest, MalformedLineIsError) {
  const std::string path = TempPath("malformed.txt");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("1 2\nhello world\n", f);
  std::fclose(f);

  auto edges_or = ReadTextEdgeList(path);
  ASSERT_FALSE(edges_or.ok());
  EXPECT_EQ(edges_or.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(TextEdgeListTest, OversizedIdIsError) {
  const std::string path = TempPath("oversized.txt");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("1 99999999999\n", f);
  std::fclose(f);

  auto edges_or = ReadTextEdgeList(path);
  ASSERT_FALSE(edges_or.ok());
  EXPECT_EQ(edges_or.status().code(), StatusCode::kOutOfRange);
  std::remove(path.c_str());
}

TEST(TextEdgeListTest, MissingFileIsNotFound) {
  auto edges_or = ReadTextEdgeList(TempPath("missing.txt"));
  ASSERT_FALSE(edges_or.ok());
  EXPECT_EQ(edges_or.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace tpsl

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "util/logging.h"
#include "util/memory.h"
#include "util/random.h"
#include "util/status.h"
#include "util/timer.h"

namespace tpsl {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::IoError("disk on fire");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_EQ(status.message(), "disk on fire");
  EXPECT_EQ(status.ToString(), "IoError: disk on fire");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) {
    return Status::InvalidArgument("not positive");
  }
  return x;
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = ParsePositive(7);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 7);
  EXPECT_EQ(result.value(), 7);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = ParsePositive(-1);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

Status ChainWithMacro(int x, int* out) {
  TPSL_ASSIGN_OR_RETURN(*out, ParsePositive(x));
  return Status::OK();
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(ChainWithMacro(5, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_FALSE(ChainWithMacro(-5, &out).ok());
}

Status FailThenSucceed(bool fail) {
  TPSL_RETURN_IF_ERROR(fail ? Status::Internal("boom") : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(FailThenSucceed(false).ok());
  EXPECT_EQ(FailThenSucceed(true).code(), StatusCode::kInternal);
}

TEST(RandomTest, SplitMixIsDeterministic) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RandomTest, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (a.Next() == b.Next()) ? 1 : 0;
  }
  EXPECT_EQ(same, 0);
}

TEST(RandomTest, BoundedStaysInRange) {
  SplitMix64 rng(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RandomTest, BoundedCoversRange) {
  SplitMix64 rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    seen.insert(rng.NextBounded(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RandomTest, DoubleInUnitInterval) {
  SplitMix64 rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, Mix64IsBijectiveish) {
  // Distinct inputs should give distinct outputs (bijective finalizer).
  std::set<uint64_t> outputs;
  for (uint64_t x = 0; x < 1000; ++x) {
    outputs.insert(Mix64(x));
  }
  EXPECT_EQ(outputs.size(), 1000u);
}

TEST(TimerTest, ElapsedIsMonotonic) {
  WallTimer timer;
  const double t1 = timer.ElapsedSeconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const double t2 = timer.ElapsedSeconds();
  EXPECT_GE(t2, t1);
  EXPECT_GT(t2, 0.0);
}

TEST(TimerTest, ScopedTimerAccumulates) {
  double sink = 0.0;
  {
    ScopedTimer timer(&sink);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(sink, 0.0);
  const double first = sink;
  {
    ScopedTimer timer(&sink);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(sink, first);
}

TEST(MemoryTest, RssIsReported) {
  // On Linux /proc/self/status always exists; both values are nonzero
  // for a running process.
  EXPECT_GT(CurrentRssBytes(), 0u);
  EXPECT_GE(PeakRssBytes(), CurrentRssBytes() / 2);
}

TEST(MemoryTest, GetrusageMaxRssIsReported) {
  // getrusage is POSIX and works even where /proc is masked off.
  const uint64_t max_rss = GetrusageMaxRssBytes();
  EXPECT_GT(max_rss, 0u);
  // Sanity bounds: bigger than a page, smaller than a terabyte.
  EXPECT_GE(max_rss, 4096u);
  EXPECT_LT(max_rss, uint64_t{1} << 40);
}

TEST(MemoryTest, PeakRssTracksAllocationHighWaterMark) {
  const uint64_t before = PeakRssBytes();
  {
    // Touch every page so the allocation actually becomes resident.
    std::vector<char> block(32 << 20);
    for (size_t i = 0; i < block.size(); i += 4096) {
      block[i] = static_cast<char>(i);
    }
    // Defeat dead-store elimination of the whole block.
    volatile char sink = block[block.size() - 1];
    (void)sink;
  }
  const uint64_t current = CurrentRssBytes();
  const uint64_t peak = PeakRssBytes();
  // The high-water mark survives the deallocation and never reads
  // below what is resident right now.
  EXPECT_GE(peak, before);
  EXPECT_GE(peak, current);
  EXPECT_GE(peak, uint64_t{32 << 20});
}

TEST(MemoryTest, ResetPeakRssScopesTheHighWaterMark) {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  GTEST_SKIP() << "sanitizer allocators keep freed pages resident";
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
  GTEST_SKIP() << "sanitizer allocators keep freed pages resident";
#endif
#endif
  // Inflate the peak well above steady state, then reset: the
  // high-water mark must come back down near the current RSS instead
  // of sticking at the lifetime maximum.
  {
    std::vector<char> block(64 << 20);
    for (size_t i = 0; i < block.size(); i += 4096) {
      block[i] = static_cast<char>(i);
    }
    volatile char sink = block[block.size() - 1];
    (void)sink;
  }
  const uint64_t lifetime_peak = PeakRssBytes();
  if (!ResetPeakRss()) {
    GTEST_SKIP() << "/proc/self/clear_refs not writable here";
  }
  const uint64_t scoped_peak = PeakRssBytes();
  EXPECT_GT(scoped_peak, 0u);
  // The freed 64 MiB block must no longer count against the peak.
  EXPECT_LT(scoped_peak, lifetime_peak);
}

TEST(LoggingTest, SeverityThresholdRoundtrips) {
  const LogSeverity original = MinLogSeverity();
  SetMinLogSeverity(LogSeverity::kError);
  EXPECT_EQ(MinLogSeverity(), LogSeverity::kError);
  SetMinLogSeverity(original);
}

}  // namespace
}  // namespace tpsl

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "benchkit/json.h"
#include "exec/thread_pool.h"
#include "graph/types.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "partition/partitioner.h"
#include "partition/sink_pipeline.h"
#include "util/random.h"

namespace tpsl {
namespace obs {
namespace {

/// Every test leaves the process-wide trace layer the way it found it:
/// tracing off and rings empty, so suites interleave cleanly.
class TraceQuiescent : public ::testing::Test {
 protected:
  void SetUp() override {
    SetTracingEnabled(false);
    ResetTrace();
  }
  void TearDown() override {
    SetTracingEnabled(false);
    ResetTrace();
  }
};

using TraceSpanTest = TraceQuiescent;
using TraceExportTest = TraceQuiescent;
using ObsConcurrencyTest = TraceQuiescent;

TEST_F(TraceSpanTest, DisabledTracingEmitsNothing) {
  const uint64_t before = GetTraceStats().emitted;
  for (int i = 0; i < 1000; ++i) {
    TraceSpan span("obs_test.noop", "test");
  }
  EmitComplete("obs_test.noop", "test", 0, 1);
  EmitCounter("obs_test.noop_counter", 1.0);
  EXPECT_EQ(GetTraceStats().emitted, before);
  const std::string json = ChromeTraceJson();
  EXPECT_EQ(json.find("obs_test.noop"), std::string::npos);
}

TEST_F(TraceSpanTest, EnabledSpanRecordsOneCompleteEvent) {
  SetTracingEnabled(true);
  const uint64_t before = GetTraceStats().emitted;
  {
    TraceSpan span("obs_test.one", "test");
  }
  const TraceStats stats = GetTraceStats();
  EXPECT_EQ(stats.emitted, before + 1);
  EXPECT_GE(stats.threads, 1u);
}

TEST_F(TraceSpanTest, StraddlingSpansEmitOnlyWhenOnAtBothEnds) {
  // The documented flip contract: a span emits only when tracing was
  // on at its open AND its close, so a mid-span disable suppresses the
  // partial event and a mid-span enable cannot fabricate one.
  SetTracingEnabled(true);
  const uint64_t before = GetTraceStats().emitted;
  {
    TraceSpan span("obs_test.straddle", "test");
    SetTracingEnabled(false);
  }
  EXPECT_EQ(GetTraceStats().emitted, before);
  {
    TraceSpan span("obs_test.straddle_off", "test");  // opened while off
  }
  EXPECT_EQ(GetTraceStats().emitted, before);
  SetTracingEnabled(false);
  {
    TraceSpan span("obs_test.straddle_on", "test");
    SetTracingEnabled(true);
  }
  EXPECT_EQ(GetTraceStats().emitted, before);
}

/// The golden export test: known events in, Chrome trace-event JSON
/// out, validated through benchkit's (independent) JSON parser the way
/// Perfetto would read it.
TEST_F(TraceExportTest, WriteChromeTraceProducesLoadableJson) {
  SetTracingEnabled(true);
  EmitComplete("obs_test.golden_span", "test_cat", 1000, 2500);
  EmitCounter("obs_test.golden_counter", 3.5);
  {
    TraceSpan span("obs_test.golden_scope", "test_cat");
  }
  SetTracingEnabled(false);

  const std::string path =
      (std::filesystem::temp_directory_path() / "tpsl_obs_test_trace.json")
          .string();
  ASSERT_TRUE(WriteChromeTrace(path).ok());

  std::string text;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      text.append(buf, n);
    }
    std::fclose(f);
  }
  std::remove(path.c_str());

  auto parsed = benchkit::ParseJson(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const benchkit::JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_GE(events->array().size(), 3u);

  bool saw_golden_span = false;
  bool saw_counter = false;
  for (const benchkit::JsonValue& event : events->array()) {
    ASSERT_TRUE(event.is_object());
    const benchkit::JsonValue* name = event.Find("name");
    const benchkit::JsonValue* ph = event.Find("ph");
    const benchkit::JsonValue* ts = event.Find("ts");
    const benchkit::JsonValue* pid = event.Find("pid");
    const benchkit::JsonValue* tid = event.Find("tid");
    ASSERT_NE(name, nullptr);
    ASSERT_NE(ph, nullptr);
    ASSERT_NE(ts, nullptr);
    ASSERT_NE(pid, nullptr);
    ASSERT_NE(tid, nullptr);
    ASSERT_TRUE(name->is_string());
    ASSERT_TRUE(ph->is_string());
    ASSERT_TRUE(ts->is_number());
    const std::string& phase = ph->string_value();
    ASSERT_TRUE(phase == "X" || phase == "C") << phase;
    if (phase == "X") {
      const benchkit::JsonValue* dur = event.Find("dur");
      const benchkit::JsonValue* cat = event.Find("cat");
      ASSERT_NE(dur, nullptr);
      ASSERT_NE(cat, nullptr);
      ASSERT_TRUE(dur->is_number());
      if (name->string_value() == "obs_test.golden_span") {
        saw_golden_span = true;
        EXPECT_EQ(cat->string_value(), "test_cat");
        // ts/dur are microseconds: 1000ns start, 2500ns duration.
        EXPECT_DOUBLE_EQ(ts->number_value(), 1.0);
        EXPECT_DOUBLE_EQ(dur->number_value(), 2.5);
      }
    } else {
      const benchkit::JsonValue* args = event.Find("args");
      ASSERT_NE(args, nullptr);
      const benchkit::JsonValue* value = args->Find("value");
      ASSERT_NE(value, nullptr);
      ASSERT_TRUE(value->is_number());
      if (name->string_value() == "obs_test.golden_counter") {
        saw_counter = true;
        EXPECT_DOUBLE_EQ(value->number_value(), 3.5);
      }
    }
  }
  EXPECT_TRUE(saw_golden_span);
  EXPECT_TRUE(saw_counter);
}

TEST_F(TraceExportTest, ResetTraceDropsRecordedEvents) {
  SetTracingEnabled(true);
  EmitComplete("obs_test.discard", "test", 0, 1);
  SetTracingEnabled(false);
  EXPECT_NE(ChromeTraceJson().find("obs_test.discard"), std::string::npos);
  ResetTrace();
  EXPECT_EQ(ChromeTraceJson().find("obs_test.discard"), std::string::npos);
  EXPECT_EQ(GetTraceStats().recorded, 0u);
}

TEST_F(TraceExportTest, RingWrapKeepsNewestAndCountsDropped) {
  SetTracingEnabled(true);
  // Far more events than one ring holds: the oldest are overwritten,
  // the stats ledger must account for every one.
  constexpr int kEvents = 20000;
  for (int i = 0; i < kEvents; ++i) {
    EmitComplete("obs_test.wrap", "test", i, 1);
  }
  SetTracingEnabled(false);
  const TraceStats stats = GetTraceStats();
  EXPECT_EQ(stats.emitted, static_cast<uint64_t>(kEvents));
  EXPECT_LT(stats.recorded, static_cast<uint64_t>(kEvents));
  EXPECT_EQ(stats.dropped, stats.emitted - stats.recorded);
  // The survivors are the newest events.
  auto parsed = benchkit::ParseJson(ChromeTraceJson());
  ASSERT_TRUE(parsed.ok());
  const benchkit::JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->array().size(), stats.recorded);
}

TEST(CounterTest, ShardedSumIsExact) {
  Counter counter;
  counter.Add(7);
  counter.Increment();
  EXPECT_EQ(counter.Total(), 8u);
  counter.Reset();
  EXPECT_EQ(counter.Total(), 0u);
}

TEST(CounterTest, ConcurrentAddsFromManyThreadsSumExactly) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter]() {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        counter.Increment();
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter.Total(), kThreads * kPerThread);
}

TEST(GaugeTest, SetAndReadRoundTripsDoubles) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0.0);
  gauge.Set(3.25);
  EXPECT_EQ(gauge.Value(), 3.25);
  gauge.Set(-1e-300);
  EXPECT_EQ(gauge.Value(), -1e-300);
  gauge.Reset();
  EXPECT_EQ(gauge.Value(), 0.0);
}

/// Property test: the histogram's percentiles must land in the same
/// log2 bucket as a sorted-vector oracle's ceil(q*n)-th sample, for
/// randomized log-uniform workloads.
TEST(HistogramTest, PercentilesMatchSortedOracleBucket) {
  SplitMix64 rng(0xb0b5eed);
  for (int trial = 0; trial < 20; ++trial) {
    Histogram hist;
    const size_t n = 1 + static_cast<size_t>(rng.Next() % 5000);
    std::vector<uint64_t> samples(n);
    for (uint64_t& sample : samples) {
      // Log-uniform nanoseconds over buckets 0..48: exercises many
      // buckets while keeping the seconds->nanos round trip in the
      // test's oracle comparison exact in double precision.
      sample = (rng.Next() & ((uint64_t{1} << 48) - 1)) >> (rng.Next() % 49);
      hist.RecordNanos(sample);
    }
    std::sort(samples.begin(), samples.end());
    const Histogram::Summary summary = hist.Summarize();
    ASSERT_EQ(summary.count, n);
    const auto oracle_bucket = [&](double q) {
      const size_t rank = static_cast<size_t>(
          std::ceil(q * static_cast<double>(n)));
      return Histogram::BucketOf(samples[(rank == 0 ? 1 : rank) - 1]);
    };
    const auto estimate_bucket = [](double estimate_seconds) {
      return Histogram::BucketOf(static_cast<uint64_t>(
          std::llround(estimate_seconds * 1e9)));
    };
    EXPECT_EQ(estimate_bucket(summary.p50), oracle_bucket(0.50))
        << "p50, n=" << n;
    EXPECT_EQ(estimate_bucket(summary.p90), oracle_bucket(0.90))
        << "p90, n=" << n;
    EXPECT_EQ(estimate_bucket(summary.p99), oracle_bucket(0.99))
        << "p99, n=" << n;
  }
}

TEST(HistogramTest, RecordSecondsClampsNonPositive) {
  Histogram hist;
  hist.RecordSeconds(-1.0);
  hist.RecordSeconds(0.0);
  const Histogram::Summary summary = hist.Summarize();
  EXPECT_EQ(summary.count, 2u);
  EXPECT_EQ(summary.p99, 0.0);  // bucket 0's representative
}

TEST(MetricsRegistryTest, HandlesAreStableAndResetKeepsThem) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("obs_test.counter");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter, registry.GetCounter("obs_test.counter"));
  counter->Add(5);
  Gauge* gauge = registry.GetGauge("obs_test.gauge");
  gauge->Set(2.0);
  registry.GetHistogram("obs_test.hist")->RecordNanos(100);

  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 1u);
  EXPECT_EQ(snapshot.counters[0].first, "obs_test.counter");
  EXPECT_EQ(snapshot.counters[0].second, 5u);
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_EQ(snapshot.gauges[0].second, 2.0);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].summary.count, 1u);

  registry.Reset();
  EXPECT_EQ(counter->Total(), 0u);      // same handle, zeroed
  EXPECT_EQ(gauge->Value(), 0.0);
  EXPECT_EQ(registry.Snapshot().histograms[0].summary.count, 0u);
}

/// The tsan target: spans, counter adds and histogram records pouring
/// out of pool workers while the main thread snapshots both the
/// metrics registry and the trace rings mid-write. The final totals
/// must still be exact; the concurrent reads must merely be torn-free
/// (which tsan + the seqlock check enforce).
TEST_F(ObsConcurrencyTest, SnapshotWhileWritingIsCleanAndExact) {
  SetTracingEnabled(true);
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("obs_test.hammer");
  Histogram* hist = registry.GetHistogram("obs_test.hammer_ns");

  constexpr int kTasks = 64;
  constexpr uint64_t kItersPerTask = 2000;
  std::atomic<bool> done{false};
  std::thread reader([&]() {
    uint64_t snapshots = 0;
    while (!done.load(std::memory_order_acquire)) {
      const MetricsSnapshot snapshot = registry.Snapshot();
      ASSERT_LE(snapshot.counters[0].second, kTasks * kItersPerTask);
      const std::string json = ChromeTraceJson();
      ASSERT_FALSE(json.empty());
      ++snapshots;
    }
    EXPECT_GT(snapshots, 0u);
  });

  {
    exec::ThreadPool pool(8);
    for (int task = 0; task < kTasks; ++task) {
      pool.Submit([counter, hist, task]() {
        for (uint64_t i = 0; i < kItersPerTask; ++i) {
          TraceSpan span("obs_test.hammer_span", "test");
          counter->Increment();
          hist->RecordNanos(i * (task + 1));
        }
      });
    }
    pool.Wait();
  }
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(counter->Total(), kTasks * kItersPerTask);
  EXPECT_EQ(hist->Summarize().count, kTasks * kItersPerTask);
  const TraceStats stats = GetTraceStats();
  EXPECT_GE(stats.emitted, kTasks * kItersPerTask);
}

TEST(MergeWorkersTest, SingleWorkerIsIdentity) {
  PartitionStats worker;
  worker.phase_seconds["degree"] = 1.5;
  worker.phase_seconds["partitioning"] = 2.25;
  worker.stream_passes = 2;
  worker.state_bytes = 4096;
  worker.prepartitioned_edges = 10;
  worker.remaining_edges = 20;
  const PartitionStats merged = PartitionStats::MergeWorkers({worker});
  EXPECT_EQ(merged.phase_seconds, worker.phase_seconds);
  EXPECT_EQ(merged.stream_passes, worker.stream_passes);
  EXPECT_EQ(merged.state_bytes, worker.state_bytes);
  EXPECT_EQ(merged.prepartitioned_edges, worker.prepartitioned_edges);
  EXPECT_EQ(merged.remaining_edges, worker.remaining_edges);
  EXPECT_DOUBLE_EQ(merged.TotalSeconds(), worker.TotalSeconds());
}

TEST(MergeWorkersTest, ParallelPhasesMaxTimesAndSumCounts) {
  // Two workers overlapping in wall-clock: the merged phase time is
  // the slowest worker's (they ran concurrently), while disjoint
  // per-worker tallies add up.
  PartitionStats a;
  a.phase_seconds["partitioning"] = 2.0;
  a.phase_seconds["degree"] = 0.5;
  a.stream_passes = 2;
  a.state_bytes = 100;
  a.prepartitioned_edges = 7;
  a.remaining_edges = 3;
  PartitionStats b;
  b.phase_seconds["partitioning"] = 3.0;
  b.stream_passes = 2;
  b.state_bytes = 50;
  b.prepartitioned_edges = 5;
  b.remaining_edges = 9;
  const PartitionStats merged = PartitionStats::MergeWorkers({a, b});
  EXPECT_DOUBLE_EQ(merged.phase_seconds.at("partitioning"), 3.0);
  EXPECT_DOUBLE_EQ(merged.phase_seconds.at("degree"), 0.5);
  EXPECT_EQ(merged.stream_passes, 2u);
  EXPECT_EQ(merged.state_bytes, 150u);
  EXPECT_EQ(merged.prepartitioned_edges, 12u);
  EXPECT_EQ(merged.remaining_edges, 12u);
}

TEST(StreamingQualitySinkTest, SampledGaugesPublishRunningQuality) {
  Gauge* rf_gauge =
      MetricsRegistry::Default().GetGauge("quality.replication_factor");
  Gauge* skew_gauge =
      MetricsRegistry::Default().GetGauge("quality.max_load_skew");
  rf_gauge->Reset();
  skew_gauge->Reset();
  // Sample every 4 assignments so a small stream crosses the interval
  // many times.
  StreamingQualitySink sink(/*num_partitions=*/4,
                            /*sample_interval_log2=*/2);
  for (uint32_t i = 0; i < 100; ++i) {
    sink.Assign(Edge{i, i + 1}, static_cast<PartitionId>(i % 4));
  }
  EXPECT_GT(rf_gauge->Value(), 0.0);
  EXPECT_GT(skew_gauge->Value(), 0.0);
  // The last published sample agrees with the sink's own quality view
  // at the final sampling point (assignment 100, a multiple of 4 — so
  // the gauge is current).
  EXPECT_DOUBLE_EQ(rf_gauge->Value(), sink.Quality().replication_factor);
}

}  // namespace
}  // namespace obs
}  // namespace tpsl

#ifndef TPSL_EXEC_PARALLEL_FOR_EDGES_H_
#define TPSL_EXEC_PARALLEL_FOR_EDGES_H_

#include <cstdint>
#include <functional>

#include "exec/thread_pool.h"
#include "graph/edge_stream.h"
#include "util/status.h"

namespace tpsl {
namespace exec {

struct ParallelForEdgesOptions {
  /// Edges per dispatched batch.
  uint32_t batch_size = 8192;
  /// Concurrency bound: at most this many batches are in flight at
  /// once, so at most this many pool workers serve this stream (the
  /// pool may be bigger and shared). 0 = the pool's thread count;
  /// 1 = the deterministic inline path. Clamped to the pool's thread
  /// count — extra in-flight batches beyond the pool cannot run
  /// anyway, and the clamp lets a single-threaded pool skip the
  /// dispatch machinery entirely (the fast-path bypass).
  uint32_t workers = 0;
};

/// The per-batch worker callback: `edges[0..count)` is one batch, valid
/// for the duration of the call. Called concurrently from pool threads
/// (once per batch, no two calls share a batch); a non-OK return stops
/// the driver from dispatching further batches and is returned from
/// ParallelForEdges. Exceptions are caught and converted to an
/// internal-error Status.
using EdgeBatchFn = std::function<Status(const Edge* edges, size_t count)>;

/// One full pass over `stream`, fanned out to `pool` workers in
/// batches — the shared stream driver under the parallel partitioners.
///
/// The calling thread is the single reader: it Reset()s the stream and
/// pulls batches in order, so any EdgeStream works, including the
/// ingest layer's PrefetchingEdgeStream (whose background reader then
/// overlaps disk I/O with worker compute). In-flight batches are
/// bounded by `workers` buffers, so memory is O(workers × batch_size)
/// regardless of stream length.
///
/// Error handling mirrors EdgeStream's sticky-Health contract: a
/// stream failing mid-pass looks like a short EOF to the reader, so
/// after the pass the stream's Health() is checked and returned.
/// Worker Status failures are latched first-wins and win over Health.
///
/// With an effective worker count of 1 the pool is bypassed entirely:
/// batches are processed inline, in stream order — bit-deterministic,
/// which the threads=1 parallel partitioners rely on.
Status ParallelForEdges(EdgeStream& stream, ThreadPool& pool,
                        const ParallelForEdgesOptions& options,
                        const EdgeBatchFn& fn);

}  // namespace exec
}  // namespace tpsl

#endif  // TPSL_EXEC_PARALLEL_FOR_EDGES_H_

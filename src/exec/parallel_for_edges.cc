#include "exec/parallel_for_edges.h"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <utility>
#include <vector>

namespace tpsl {
namespace exec {
namespace {

Status StatusFromCurrentException() {
  try {
    throw;
  } catch (const std::exception& e) {
    return Status::Internal(std::string("worker task threw: ") + e.what());
  } catch (...) {
    return Status::Internal("worker task threw a non-std exception");
  }
}

/// The sequential path: no pool, no buffers beyond one, batches
/// processed in stream order on the calling thread.
Status InlineForEdges(EdgeStream& stream, uint32_t batch_size,
                      const EdgeBatchFn& fn) {
  TPSL_RETURN_IF_ERROR(stream.Reset());
  std::vector<Edge> buffer(batch_size);
  size_t n;
  while ((n = stream.Next(buffer.data(), buffer.size())) > 0) {
    Status status;
    try {
      status = fn(buffer.data(), n);
    } catch (...) {
      status = StatusFromCurrentException();
    }
    TPSL_RETURN_IF_ERROR(status);
  }
  return stream.Health();
}

/// The block fast path for compressed streams: the reader hands out
/// raw encoded blocks (a pointer into the mapped file — no copy) and
/// each worker decodes its block into a private buffer before running
/// `fn`, so decompression scales with the worker count instead of
/// serializing on the reading thread. The batch size is the on-disk
/// block size; the free list bounds in-flight blocks exactly like the
/// generic path bounds batches. The stream must already be Reset().
Status BlockForEdges(EdgeStream& stream, BlockEdgeStream& blocks,
                     ThreadPool& pool, uint32_t workers,
                     const EdgeBatchFn& fn) {
  std::vector<std::vector<Edge>> buffers(
      workers, std::vector<Edge>(blocks.MaxBlockEdges()));
  std::mutex mutex;
  std::condition_variable buffer_free_cv;
  std::vector<uint32_t> free_ids;
  free_ids.reserve(workers);
  for (uint32_t id = 0; id < workers; ++id) {
    free_ids.push_back(id);
  }
  Status first_error;

  TaskGroup group(pool);
  for (;;) {
    uint32_t id;
    {
      std::unique_lock<std::mutex> lock(mutex);
      buffer_free_cv.wait(lock, [&] { return !free_ids.empty(); });
      if (!first_error.ok()) {
        break;
      }
      id = free_ids.back();
      free_ids.pop_back();
    }
    BlockEdgeStream::EncodedBlock block;
    if (!blocks.NextEncodedBlock(&block)) {
      std::lock_guard<std::mutex> lock(mutex);
      free_ids.push_back(id);
      break;
    }
    group.Submit([&, id, block]() {
      Status status = blocks.DecodeBlock(block, buffers[id].data());
      if (status.ok()) {
        try {
          status = fn(buffers[id].data(), block.num_edges);
        } catch (...) {
          status = StatusFromCurrentException();
        }
      }
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (!status.ok() && first_error.ok()) {
          first_error = std::move(status);
        }
        free_ids.push_back(id);
      }
      buffer_free_cv.notify_one();
    });
  }
  group.Wait();

  if (!first_error.ok()) {
    return first_error;
  }
  return stream.Health();
}

}  // namespace

Status ParallelForEdges(EdgeStream& stream, ThreadPool& pool,
                        const ParallelForEdgesOptions& options,
                        const EdgeBatchFn& fn) {
  if (options.batch_size == 0) {
    return Status::InvalidArgument("batch_size must be positive");
  }
  // Clamp to the pool: more in-flight batches than pool threads buys
  // no concurrency, only queue/buffer overhead — and on a one-thread
  // pool it would pay the full dispatch machinery for a sequential
  // run. The clamp makes any single-threaded pool take the
  // deterministic inline path regardless of the requested count.
  const uint32_t requested =
      options.workers != 0 ? options.workers : pool.num_threads();
  const uint32_t workers = std::min(requested, pool.num_threads());
  if (workers <= 1) {
    return InlineForEdges(stream, options.batch_size, fn);
  }

  TPSL_RETURN_IF_ERROR(stream.Reset());

  // Compressed block streams skip the Next() funnel entirely: encoded
  // blocks go to the workers and are decoded there (same edges, same
  // per-batch grouping as the stream's own block decode, so threads=1
  // equivalence is preserved by the inline path above, not here).
  if (auto* blocks = dynamic_cast<BlockEdgeStream*>(&stream)) {
    return BlockForEdges(stream, *blocks, pool, workers, fn);
  }

  // One reusable buffer per in-flight batch. The free list doubles as
  // the in-flight bound: the reader blocks when all buffers are out.
  std::vector<std::vector<Edge>> buffers(
      workers, std::vector<Edge>(options.batch_size));
  std::mutex mutex;
  std::condition_variable buffer_free_cv;
  std::vector<uint32_t> free_ids;
  free_ids.reserve(workers);
  for (uint32_t id = 0; id < workers; ++id) {
    free_ids.push_back(id);
  }
  Status first_error;  // latched by whichever worker fails first

  TaskGroup group(pool);
  for (;;) {
    uint32_t id;
    {
      std::unique_lock<std::mutex> lock(mutex);
      buffer_free_cv.wait(lock, [&] { return !free_ids.empty(); });
      if (!first_error.ok()) {
        break;  // stop dispatching; in-flight batches drain below
      }
      id = free_ids.back();
      free_ids.pop_back();
    }
    const size_t n =
        stream.Next(buffers[id].data(), buffers[id].size());
    if (n == 0) {
      std::lock_guard<std::mutex> lock(mutex);
      free_ids.push_back(id);
      break;
    }
    group.Submit([&, id, n]() {
      Status status;
      try {
        status = fn(buffers[id].data(), n);
      } catch (...) {
        status = StatusFromCurrentException();
      }
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (!status.ok() && first_error.ok()) {
          first_error = std::move(status);
        }
        free_ids.push_back(id);
      }
      buffer_free_cv.notify_one();
    });
  }
  group.Wait();

  if (!first_error.ok()) {
    return first_error;
  }
  return stream.Health();
}

}  // namespace exec
}  // namespace tpsl

#ifndef TPSL_EXEC_EXEC_CONTEXT_H_
#define TPSL_EXEC_EXEC_CONTEXT_H_

#include <cstdint>

#include "exec/thread_pool.h"

namespace tpsl {
namespace exec {

/// How much parallelism a run may use and where it comes from. Carried
/// through PartitionConfig so one knob reaches every parallel
/// partitioner (parallel 2PS-L/2PS-HDRF, DNE) and the ingest scenario
/// runner; tools expose it as --threads.
struct ExecContext {
  /// Worker threads; 0 = one per hardware thread. 1 makes every
  /// engine-driven partitioner run sequentially (and deterministically:
  /// ParallelForEdges degrades to an in-order inline loop).
  uint32_t threads = 0;

  /// Edges per dispatched work unit of ParallelForEdges.
  uint32_t batch_size = 8192;

  /// The pool to run on; nullptr = the lazily started process-wide
  /// ThreadPool::Global(). Tests and embedders substitute an owned pool
  /// here.
  ThreadPool* pool = nullptr;

  ThreadPool& pool_or_global() const {
    return pool != nullptr ? *pool : ThreadPool::Global();
  }

  /// The effective worker count (see ResolveThreadCount).
  uint32_t ResolveThreads(uint32_t cap = 0) const {
    return ResolveThreadCount(threads, cap);
  }
};

}  // namespace exec
}  // namespace tpsl

#endif  // TPSL_EXEC_EXEC_CONTEXT_H_

#ifndef TPSL_EXEC_THREAD_POOL_H_
#define TPSL_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tpsl {
namespace exec {

/// Resolves a requested worker count to an actual one: 0 means "one per
/// hardware thread" (never less than 1 — hardware_concurrency may
/// report 0), and a non-zero `cap` bounds the result (e.g. DNE never
/// needs more workers than partitions). The single place for the
/// hardware-concurrency-with-cap logic that the parallel partitioners
/// used to duplicate.
uint32_t ResolveThreadCount(uint32_t requested, uint32_t cap = 0);

/// A lazily started fixed-size worker pool with one FIFO task queue —
/// the shared execution engine under the parallel partitioners and the
/// ingest scenario runner (see README "Parallel execution").
///
/// Lifecycle: constructing a pool spawns nothing; the workers start on
/// the first Submit(). Destruction drains the queue (every submitted
/// task runs) and joins the workers, so shutdown under pending work is
/// a wait, never a drop or a detach.
///
/// Exception propagation: a task that throws does not take down the
/// worker (or the process). The first exception is captured and
/// rethrown from the next Wait() — after which the pool is usable
/// again. Callers that need per-task error handling (ParallelForEdges)
/// catch inside the task and report Status instead.
///
/// Submit() and Wait() are thread-safe; tasks may not Submit() to or
/// Wait() on their own pool (a task waiting on its own pool deadlocks
/// a worker slot).
class ThreadPool {
 public:
  /// `num_threads` as understood by ResolveThreadCount (0 = hardware).
  explicit ThreadPool(uint32_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  uint32_t num_threads() const { return num_threads_; }

  /// Enqueues a task; workers are spawned on the first call.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished, then
  /// rethrows the first exception any of them threw (clearing it).
  void Wait();

  /// The process-wide shared pool, sized to hardware concurrency and
  /// constructed (but not started) on first use. Partitioners reach it
  /// through ExecContext::pool_or_global(), so tests can substitute an
  /// owned pool.
  static ThreadPool& Global();

 private:
  void EnsureStartedLocked();
  void WorkerLoop();

  const uint32_t num_threads_;

  /// A queued task plus its enqueue timestamp, so the worker that
  /// dequeues it can attribute queue-wait vs. run time (obs
  /// histograms "exec.queue_wait_seconds" / "exec.task_run_seconds").
  struct QueuedTask {
    std::function<void()> fn;
    int64_t enqueue_ns = 0;
  };

  std::mutex mutex_;
  std::condition_variable work_cv_;  // pool -> workers: task available
  std::condition_variable idle_cv_;  // workers -> Wait(): all done
  std::deque<QueuedTask> queue_;
  uint64_t pending_ = 0;  // queued + currently running tasks
  bool stop_ = false;
  bool started_ = false;
  std::exception_ptr first_exception_;
  std::vector<std::thread> workers_;
};

/// Tracks completion of one caller's tasks on a (possibly shared)
/// pool: Submit() wraps the task with a pending counter, Wait() blocks
/// on this group's tasks only — unlike ThreadPool::Wait(), which waits
/// for everyone's. The destructor waits too (without rethrowing), so a
/// group can never outlive the state its tasks capture.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void Submit(std::function<void()> task);

  /// Blocks until this group's tasks have finished; rethrows the first
  /// exception one of them threw (clearing it).
  void Wait();

 private:
  ThreadPool& pool_;
  std::mutex mutex_;
  std::condition_variable done_cv_;
  uint64_t pending_ = 0;
  std::exception_ptr first_exception_;
};

}  // namespace exec
}  // namespace tpsl

#endif  // TPSL_EXEC_THREAD_POOL_H_

#include "exec/thread_pool.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace tpsl {
namespace exec {

namespace {

// Pool-wide instrumentation: where tasks spend their time (queued vs.
// running) and how deep the queue runs. Handles are registered once;
// the per-task cost is two clock reads and three relaxed adds.
obs::Histogram* QueueWaitHist() {
  static obs::Histogram* hist = obs::MetricsRegistry::Default().GetHistogram(
      "exec.queue_wait_seconds");
  return hist;
}

obs::Histogram* TaskRunHist() {
  static obs::Histogram* hist =
      obs::MetricsRegistry::Default().GetHistogram("exec.task_run_seconds");
  return hist;
}

obs::Counter* TasksCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Default().GetCounter("exec.tasks");
  return counter;
}

obs::Gauge* QueueDepthGauge() {
  static obs::Gauge* gauge =
      obs::MetricsRegistry::Default().GetGauge("exec.queue_depth");
  return gauge;
}

}  // namespace

uint32_t ResolveThreadCount(uint32_t requested, uint32_t cap) {
  uint32_t threads =
      requested != 0 ? requested : std::thread::hardware_concurrency();
  threads = std::max<uint32_t>(1, threads);
  if (cap != 0) {
    threads = std::min(threads, cap);
  }
  return threads;
}

ThreadPool::ThreadPool(uint32_t num_threads)
    : num_threads_(ResolveThreadCount(num_threads)) {}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::EnsureStartedLocked() {
  if (started_) {
    return;
  }
  started_ = true;
  workers_.reserve(num_threads_);
  for (uint32_t t = 0; t < num_threads_; ++t) {
    workers_.emplace_back(&ThreadPool::WorkerLoop, this);
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  TPSL_CHECK(task != nullptr);
  const int64_t enqueue_ns = obs::TraceNowNanos();
  size_t depth;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    TPSL_CHECK(!stop_);  // Submit after destruction began is a bug.
    queue_.push_back({std::move(task), enqueue_ns});
    depth = queue_.size();
    ++pending_;
    EnsureStartedLocked();
  }
  QueueDepthGauge()->Set(static_cast<double>(depth));
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::exception_ptr exception;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock, [&] { return pending_ == 0; });
    std::swap(exception, first_exception_);
  }
  if (exception) {
    std::rethrow_exception(exception);
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop_ with a drained queue: clean exit
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    const int64_t start_ns = obs::TraceNowNanos();
    QueueWaitHist()->RecordNanos(
        start_ns > task.enqueue_ns
            ? static_cast<uint64_t>(start_ns - task.enqueue_ns)
            : 0);
    obs::EmitComplete("exec.queue_wait", "exec", task.enqueue_ns,
                      start_ns - task.enqueue_ns);
    try {
      task.fn();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_exception_) {
        first_exception_ = std::current_exception();
      }
    }
    const int64_t end_ns = obs::TraceNowNanos();
    TaskRunHist()->RecordNanos(static_cast<uint64_t>(end_ns - start_ns));
    TasksCounter()->Increment();
    obs::EmitComplete("exec.task", "exec", start_ns, end_ns - start_ns);
    // Drop the task's captures before reporting completion: once
    // pending_ hits 0 a Wait()er may destroy whatever they reference.
    task.fn = nullptr;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --pending_;
      if (pending_ == 0) {
        idle_cv_.notify_all();
      }
    }
  }
}

ThreadPool& ThreadPool::Global() {
  // A function-local static (not a leaked pointer) so the workers are
  // joined at exit and sanitizer runs end with no live threads.
  static ThreadPool pool(0);
  return pool;
}

TaskGroup::~TaskGroup() {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return pending_ == 0; });
}

void TaskGroup::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++pending_;
  }
  pool_.Submit([this, task = std::move(task)]() mutable {
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_exception_) {
        first_exception_ = std::current_exception();
      }
    }
    // As in ThreadPool::WorkerLoop: release the task's captures before
    // the group's Wait()er can return and destroy what they reference.
    task = nullptr;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --pending_;
      if (pending_ == 0) {
        done_cv_.notify_all();
      }
    }
  });
}

void TaskGroup::Wait() {
  std::exception_ptr exception;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return pending_ == 0; });
    std::swap(exception, first_exception_);
  }
  if (exception) {
    std::rethrow_exception(exception);
  }
}

}  // namespace exec
}  // namespace tpsl

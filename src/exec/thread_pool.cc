#include "exec/thread_pool.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace tpsl {
namespace exec {

uint32_t ResolveThreadCount(uint32_t requested, uint32_t cap) {
  uint32_t threads =
      requested != 0 ? requested : std::thread::hardware_concurrency();
  threads = std::max<uint32_t>(1, threads);
  if (cap != 0) {
    threads = std::min(threads, cap);
  }
  return threads;
}

ThreadPool::ThreadPool(uint32_t num_threads)
    : num_threads_(ResolveThreadCount(num_threads)) {}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::EnsureStartedLocked() {
  if (started_) {
    return;
  }
  started_ = true;
  workers_.reserve(num_threads_);
  for (uint32_t t = 0; t < num_threads_; ++t) {
    workers_.emplace_back(&ThreadPool::WorkerLoop, this);
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  TPSL_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    TPSL_CHECK(!stop_);  // Submit after destruction began is a bug.
    queue_.push_back(std::move(task));
    ++pending_;
    EnsureStartedLocked();
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::exception_ptr exception;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock, [&] { return pending_ == 0; });
    std::swap(exception, first_exception_);
  }
  if (exception) {
    std::rethrow_exception(exception);
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop_ with a drained queue: clean exit
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_exception_) {
        first_exception_ = std::current_exception();
      }
    }
    // Drop the task's captures before reporting completion: once
    // pending_ hits 0 a Wait()er may destroy whatever they reference.
    task = nullptr;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --pending_;
      if (pending_ == 0) {
        idle_cv_.notify_all();
      }
    }
  }
}

ThreadPool& ThreadPool::Global() {
  // A function-local static (not a leaked pointer) so the workers are
  // joined at exit and sanitizer runs end with no live threads.
  static ThreadPool pool(0);
  return pool;
}

TaskGroup::~TaskGroup() {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return pending_ == 0; });
}

void TaskGroup::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++pending_;
  }
  pool_.Submit([this, task = std::move(task)]() mutable {
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_exception_) {
        first_exception_ = std::current_exception();
      }
    }
    // As in ThreadPool::WorkerLoop: release the task's captures before
    // the group's Wait()er can return and destroy what they reference.
    task = nullptr;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --pending_;
      if (pending_ == 0) {
        done_cv_.notify_all();
      }
    }
  });
}

void TaskGroup::Wait() {
  std::exception_ptr exception;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return pending_ == 0; });
    std::swap(exception, first_exception_);
  }
  if (exception) {
    std::rethrow_exception(exception);
  }
}

}  // namespace exec
}  // namespace tpsl

#ifndef TPSL_INGEST_CHECKSUM_H_
#define TPSL_INGEST_CHECKSUM_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace tpsl {
namespace ingest {

/// Incremental FNV-1a (64-bit) over raw bytes. Used to fingerprint
/// on-disk datasets: fast enough to run at generation speed, stable
/// across platforms, and strong enough to catch corruption/truncation
/// (the catalog's --verify), which is all it is for — it is not a
/// cryptographic hash.
class Fnv1a64 {
 public:
  void Update(const void* data, size_t bytes);
  uint64_t digest() const { return state_; }

 private:
  uint64_t state_ = 0xcbf29ce484222325ULL;
};

/// Renders a digest as the catalog's checksum string,
/// "fnv1a64:<16 lowercase hex digits>". Checksums travel as strings
/// because JSON numbers are doubles and cannot round-trip 64 bits.
std::string FormatChecksum(uint64_t digest);

/// Streams `path` through Fnv1a64 with a bounded buffer and returns
/// the formatted checksum.
StatusOr<std::string> ChecksumFile(const std::string& path);

}  // namespace ingest
}  // namespace tpsl

#endif  // TPSL_INGEST_CHECKSUM_H_

#include "ingest/catalog.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "graph/types.h"
#include "ingest/checksum.h"
#include "io/mmap_edge_stream.h"

namespace tpsl {
namespace ingest {
namespace {

using benchkit::JsonValue;
using benchkit::ParseJson;

constexpr int kCatalogVersion = 1;
constexpr int kManifestVersion = 1;

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) {
    return Status::NotFound("cannot open: " + path + ": " +
                            std::strerror(errno));
  }
  std::string text;
  char buffer[4096];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    text.append(buffer, n);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    return Status::IoError("read failed: " + path);
  }
  return text;
}

Status WriteStringToFile(const std::string& text, const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::IoError("cannot open for writing: " + path + ": " +
                           std::strerror(errno));
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), file);
  const bool close_ok = std::fclose(file) == 0;
  if (written != text.size() || !close_ok) {
    return Status::IoError("short write: " + path);
  }
  return Status::OK();
}

StatusOr<double> RequireNumber(const JsonValue& json, const char* key) {
  const JsonValue* value = json.Find(key);
  if (value == nullptr || !value->is_number()) {
    return Status::InvalidArgument(std::string("missing numeric '") + key +
                                   "'");
  }
  return value->number_value();
}

StatusOr<std::string> RequireString(const JsonValue& json, const char* key) {
  const JsonValue* value = json.Find(key);
  if (value == nullptr || !value->is_string()) {
    return Status::InvalidArgument(std::string("missing string '") + key +
                                   "'");
  }
  return value->string_value();
}

/// Integral field guard: hand-edited catalogs can hold anything, and
/// casting an unchecked double out of range is UB.
StatusOr<double> RequireIntegral(const JsonValue& json, const char* key,
                                 double min, double max) {
  TPSL_ASSIGN_OR_RETURN(const double value, RequireNumber(json, key));
  if (!(value >= min && value <= max) ||
      value != static_cast<double>(static_cast<uint64_t>(value))) {
    return Status::InvalidArgument(std::string("field '") + key +
                                   "' must be an integer in [" +
                                   std::to_string(min) + ", " +
                                   std::to_string(max) + "]");
  }
  return value;
}

uint64_t FileSizeOrZero(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0 || st.st_size < 0) {
    return 0;
  }
  return static_cast<uint64_t>(st.st_size);
}

}  // namespace

const CatalogEntry* Catalog::Find(const std::string& name) const {
  for (const CatalogEntry& entry : entries) {
    if (entry.recipe.name == name) {
      return &entry;
    }
  }
  return nullptr;
}

JsonValue CatalogEntryToJson(const CatalogEntry& entry) {
  JsonValue json = JsonValue::Object();
  json.Set("name", JsonValue::String(entry.recipe.name));
  json.Set("kind", JsonValue::String(entry.recipe.kind));
  json.Set("scale", JsonValue::Number(entry.recipe.scale));
  json.Set("edge_factor", JsonValue::Number(entry.recipe.edge_factor));
  json.Set("skew", JsonValue::Number(entry.recipe.skew));
  json.Set("communities", JsonValue::Number(entry.recipe.communities));
  // Seeds round-trip through a JSON double, so the catalog contract is
  // seeds <= 2^53 (enforced on read).
  json.Set("seed", JsonValue::Number(static_cast<double>(entry.recipe.seed)));
  json.Set("format_version",
           JsonValue::Number(static_cast<double>(entry.format_version)));
  json.Set("expected_edges",
           JsonValue::Number(static_cast<double>(entry.expected_edges)));
  json.Set("expected_checksum", JsonValue::String(entry.expected_checksum));
  json.Set("expected_file_checksum",
           JsonValue::String(entry.expected_file_checksum));
  return json;
}

StatusOr<CatalogEntry> CatalogEntryFromJson(const JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("catalog entry must be a JSON object");
  }
  CatalogEntry entry;
  TPSL_ASSIGN_OR_RETURN(entry.recipe.name, RequireString(json, "name"));
  TPSL_ASSIGN_OR_RETURN(entry.recipe.kind, RequireString(json, "kind"));
  TPSL_ASSIGN_OR_RETURN(const double scale,
                        RequireIntegral(json, "scale", 1, 30));
  entry.recipe.scale = static_cast<uint32_t>(scale);
  TPSL_ASSIGN_OR_RETURN(const double edge_factor,
                        RequireIntegral(json, "edge_factor", 1, 4096));
  entry.recipe.edge_factor = static_cast<uint32_t>(edge_factor);
  TPSL_ASSIGN_OR_RETURN(entry.recipe.skew, RequireNumber(json, "skew"));
  TPSL_ASSIGN_OR_RETURN(const double communities,
                        RequireIntegral(json, "communities", 0, 4294967295.0));
  entry.recipe.communities = static_cast<uint32_t>(communities);
  TPSL_ASSIGN_OR_RETURN(
      const double seed,
      RequireIntegral(json, "seed", 0, 9007199254740992.0));
  entry.recipe.seed = static_cast<uint64_t>(seed);
  // Pre-format catalogs have neither field: raw encoding, no physical
  // pin (for raw the logical pin already covers the file bytes).
  if (json.Find("format_version") != nullptr) {
    TPSL_ASSIGN_OR_RETURN(const double format_version,
                          RequireIntegral(json, "format_version", 0, 1));
    entry.format_version = static_cast<uint32_t>(format_version);
  }
  TPSL_ASSIGN_OR_RETURN(
      const double expected_edges,
      RequireIntegral(json, "expected_edges", 0, 9007199254740992.0));
  entry.expected_edges = static_cast<uint64_t>(expected_edges);
  TPSL_ASSIGN_OR_RETURN(entry.expected_checksum,
                        RequireString(json, "expected_checksum"));
  if (json.Find("expected_file_checksum") != nullptr) {
    TPSL_ASSIGN_OR_RETURN(entry.expected_file_checksum,
                          RequireString(json, "expected_file_checksum"));
  }
  if (entry.recipe.name.empty() ||
      entry.recipe.name.find('/') != std::string::npos) {
    return Status::InvalidArgument("dataset name '" + entry.recipe.name +
                                   "' must be a non-empty file stem");
  }
  if (!IsStreamableKind(entry.recipe.kind)) {
    return Status::InvalidArgument("dataset '" + entry.recipe.name +
                                   "': unknown generator kind '" +
                                   entry.recipe.kind + "'");
  }
  return entry;
}

StatusOr<Catalog> LoadCatalog(const std::string& path) {
  TPSL_ASSIGN_OR_RETURN(const std::string text, ReadFileToString(path));
  auto json_or = ParseJson(text);
  if (!json_or.ok()) {
    return Status(json_or.status().code(),
                  path + ": " + json_or.status().message());
  }
  const JsonValue& json = *json_or;
  TPSL_ASSIGN_OR_RETURN(
      const double version,
      RequireIntegral(json, "ingest_catalog_version", 1, 1000));
  if (version != kCatalogVersion) {
    return Status::InvalidArgument(path + ": unsupported catalog version " +
                                   std::to_string(version));
  }
  const JsonValue* datasets = json.Find("datasets");
  if (datasets == nullptr || !datasets->is_array()) {
    return Status::InvalidArgument(path + ": missing 'datasets' array");
  }
  Catalog catalog;
  for (const JsonValue& element : datasets->array()) {
    auto entry = CatalogEntryFromJson(element);
    if (!entry.ok()) {
      return Status(entry.status().code(),
                    path + ": " + entry.status().message());
    }
    if (catalog.Find(entry->recipe.name) != nullptr) {
      return Status::InvalidArgument(path + ": duplicate dataset '" +
                                     entry->recipe.name + "'");
    }
    catalog.entries.push_back(std::move(entry).value());
  }
  return catalog;
}

Status SaveCatalog(const Catalog& catalog, const std::string& path) {
  JsonValue json = JsonValue::Object();
  json.Set("ingest_catalog_version", JsonValue::Number(kCatalogVersion));
  JsonValue datasets = JsonValue::Array();
  for (const CatalogEntry& entry : catalog.entries) {
    datasets.Append(CatalogEntryToJson(entry));
  }
  json.Set("datasets", std::move(datasets));
  return WriteStringToFile(json.Write() + "\n", path);
}

std::string DatasetPath(const std::string& dir, const std::string& name) {
  return (std::filesystem::path(dir) / (name + ".bin")).string();
}

std::string ManifestPath(const std::string& dir, const std::string& name) {
  return (std::filesystem::path(dir) / (name + ".manifest.json")).string();
}

namespace {

struct Manifest {
  DatasetRecipe recipe;
  uint32_t format_version = 0;
  uint64_t num_edges = 0;
  uint64_t file_bytes = 0;
  std::string checksum;       // logical (decoded-edge) digest
  std::string file_checksum;  // on-disk byte digest
};

StatusOr<Manifest> LoadManifest(const std::string& path) {
  TPSL_ASSIGN_OR_RETURN(const std::string text, ReadFileToString(path));
  auto json_or = ParseJson(text);
  if (!json_or.ok()) {
    return Status(json_or.status().code(),
                  path + ": " + json_or.status().message());
  }
  const JsonValue& json = *json_or;
  TPSL_ASSIGN_OR_RETURN(
      const double version,
      RequireIntegral(json, "ingest_manifest_version", 1, 1000));
  if (version != kManifestVersion) {
    return Status::InvalidArgument(path + ": unsupported manifest version");
  }
  // The manifest embeds the recipe in catalog-entry form (expected_*
  // holding the actual generated values), so the parsers are shared.
  TPSL_ASSIGN_OR_RETURN(CatalogEntry entry, CatalogEntryFromJson(json));
  TPSL_ASSIGN_OR_RETURN(
      const double file_bytes,
      RequireIntegral(json, "file_bytes", 0, 9007199254740992.0));
  Manifest manifest;
  manifest.recipe = entry.recipe;
  manifest.format_version = entry.format_version;
  manifest.num_edges = entry.expected_edges;
  manifest.checksum = entry.expected_checksum;
  manifest.file_checksum = entry.expected_file_checksum;
  manifest.file_bytes = static_cast<uint64_t>(file_bytes);
  return manifest;
}

Status SaveManifest(const Manifest& manifest, const std::string& path) {
  CatalogEntry entry;
  entry.recipe = manifest.recipe;
  entry.format_version = manifest.format_version;
  entry.expected_edges = manifest.num_edges;
  entry.expected_checksum = manifest.checksum;
  entry.expected_file_checksum = manifest.file_checksum;
  JsonValue json = CatalogEntryToJson(entry);
  json.Set("ingest_manifest_version", JsonValue::Number(kManifestVersion));
  json.Set("file_bytes",
           JsonValue::Number(static_cast<double>(manifest.file_bytes)));
  return WriteStringToFile(json.Write() + "\n", path);
}

/// Does the cached copy satisfy the entry? (Trusts the manifest's
/// checksum; VerifyDataset re-reads the bytes.)
bool CacheIsFresh(const CatalogEntry& entry, const Manifest& manifest,
                  uint64_t actual_file_bytes) {
  if (manifest.recipe != entry.recipe) {
    return false;  // recipe drift: regenerate
  }
  if (manifest.format_version != entry.format_version) {
    return false;  // cached in the other encoding: re-encode
  }
  if (actual_file_bytes == 0 || actual_file_bytes != manifest.file_bytes) {
    return false;  // missing or truncated file
  }
  // Raw files have no framing, so size implies edge count; compressed
  // sizes are format-dependent and covered by the file_bytes equality.
  if (entry.format_version == 0 &&
      actual_file_bytes != manifest.num_edges * sizeof(Edge)) {
    return false;
  }
  if (entry.expected_edges != 0 &&
      entry.expected_edges != manifest.num_edges) {
    return false;  // stale pin
  }
  if (!entry.expected_checksum.empty() &&
      entry.expected_checksum != manifest.checksum) {
    return false;  // stale pin
  }
  if (!entry.expected_file_checksum.empty() &&
      entry.expected_file_checksum != manifest.file_checksum) {
    return false;  // stale physical pin
  }
  return true;
}

}  // namespace

StatusOr<EnsureResult> EnsureDataset(const CatalogEntry& entry,
                                     const std::string& dir,
                                     size_t chunk_edges) {
  const std::string path = DatasetPath(dir, entry.recipe.name);
  const std::string manifest_path = ManifestPath(dir, entry.recipe.name);

  auto manifest_or = LoadManifest(manifest_path);
  if (manifest_or.ok() &&
      CacheIsFresh(entry, *manifest_or, FileSizeOrZero(path))) {
    EnsureResult result;
    result.path = path;
    result.generated = false;
    result.num_edges = manifest_or->num_edges;
    result.file_bytes = manifest_or->file_bytes;
    result.checksum = manifest_or->checksum;
    result.file_checksum = manifest_or->file_checksum;
    return result;
  }

  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create dataset dir " + dir + ": " +
                           ec.message());
  }
  TPSL_ASSIGN_OR_RETURN(
      const GenerateFileResult generated,
      GenerateDatasetFile(entry.recipe, path, chunk_edges,
                          entry.format_version == 1
                              ? io::EdgeFileFormat::kCompressedBlocks
                              : io::EdgeFileFormat::kRaw));

  // A fresh generation that contradicts the pin means the generator's
  // behavior drifted — the one failure mode a seed-deterministic
  // catalog exists to catch. Never paper over it.
  if (entry.expected_edges != 0 && generated.num_edges != entry.expected_edges) {
    return Status::FailedPrecondition(
        "dataset '" + entry.recipe.name + "': generated " +
        std::to_string(generated.num_edges) + " edges but the catalog pins " +
        std::to_string(entry.expected_edges) +
        " (generator drift — re-pin with tools/ingest --pin if intended)");
  }
  if (!entry.expected_checksum.empty() &&
      generated.checksum != entry.expected_checksum) {
    return Status::FailedPrecondition(
        "dataset '" + entry.recipe.name + "': generated checksum " +
        generated.checksum + " but the catalog pins " +
        entry.expected_checksum +
        " (generator drift — re-pin with tools/ingest --pin if intended)");
  }
  if (!entry.expected_file_checksum.empty() &&
      generated.file_checksum != entry.expected_file_checksum) {
    return Status::FailedPrecondition(
        "dataset '" + entry.recipe.name + "': generated file checksum " +
        generated.file_checksum + " but the catalog pins " +
        entry.expected_file_checksum +
        " (encoder drift — re-pin with tools/ingest --pin if intended)");
  }

  Manifest manifest;
  manifest.recipe = entry.recipe;
  manifest.format_version = entry.format_version;
  manifest.num_edges = generated.num_edges;
  manifest.file_bytes = generated.file_bytes;
  manifest.checksum = generated.checksum;
  manifest.file_checksum = generated.file_checksum;
  TPSL_RETURN_IF_ERROR(SaveManifest(manifest, manifest_path));

  EnsureResult result;
  result.path = path;
  result.generated = true;
  result.num_edges = generated.num_edges;
  result.file_bytes = generated.file_bytes;
  result.checksum = generated.checksum;
  result.file_checksum = generated.file_checksum;
  result.generate_seconds = generated.generate_seconds;
  return result;
}

namespace {

/// The compressed verify: physical digest against the file pin, then a
/// full decode — exercising every block checksum — with the decoded
/// count and digest checked against the logical pins.
Status VerifyCompressedDataset(const CatalogEntry& entry,
                               const std::string& path) {
  if (!entry.expected_file_checksum.empty()) {
    TPSL_ASSIGN_OR_RETURN(const std::string file_checksum,
                          ChecksumFile(path));
    if (file_checksum != entry.expected_file_checksum) {
      return Status::IoError("dataset '" + entry.recipe.name +
                             "': file checksum " + file_checksum +
                             " does not match pinned " +
                             entry.expected_file_checksum +
                             " (corrupt file?)");
    }
  }
  io::MmapEdgeStream::Options options;
  options.decode_ahead = false;
  TPSL_ASSIGN_OR_RETURN(std::unique_ptr<io::MmapEdgeStream> stream,
                        io::MmapEdgeStream::Open(path, options));
  Fnv1a64 hash;
  uint64_t count = 0;
  TPSL_RETURN_IF_ERROR(ForEachEdge(*stream, [&](const Edge& edge) {
    hash.Update(&edge, sizeof(edge));
    ++count;
  }));
  if (entry.expected_edges != 0 && count != entry.expected_edges) {
    return Status::IoError("dataset '" + entry.recipe.name + "': decoded " +
                           std::to_string(count) + " edges, expected " +
                           std::to_string(entry.expected_edges));
  }
  const std::string checksum = FormatChecksum(hash.digest());
  if (checksum != entry.expected_checksum) {
    return Status::IoError("dataset '" + entry.recipe.name +
                           "': decoded checksum " + checksum +
                           " does not match pinned " +
                           entry.expected_checksum + " (corrupt file?)");
  }
  return Status::OK();
}

}  // namespace

Status VerifyDataset(const CatalogEntry& entry, const std::string& dir) {
  if (entry.expected_checksum.empty()) {
    return Status::FailedPrecondition(
        "dataset '" + entry.recipe.name +
        "' has no pinned checksum; pin it with tools/ingest --pin");
  }
  const std::string path = DatasetPath(dir, entry.recipe.name);
  if (entry.format_version == 1) {
    return VerifyCompressedDataset(entry, path);
  }
  if (entry.expected_edges != 0 &&
      FileSizeOrZero(path) != entry.expected_edges * sizeof(Edge)) {
    return Status::IoError("dataset '" + entry.recipe.name + "': " + path +
                           " is " + std::to_string(FileSizeOrZero(path)) +
                           " bytes, expected " +
                           std::to_string(entry.expected_edges *
                                          sizeof(Edge)));
  }
  TPSL_ASSIGN_OR_RETURN(const std::string checksum, ChecksumFile(path));
  if (checksum != entry.expected_checksum) {
    return Status::IoError("dataset '" + entry.recipe.name + "': checksum " +
                           checksum + " does not match pinned " +
                           entry.expected_checksum + " (corrupt file?)");
  }
  return Status::OK();
}

}  // namespace ingest
}  // namespace tpsl

#include "ingest/scenario_runner.h"

#include <memory>
#include <utility>

#include "baselines/registry.h"
#include "exec/thread_pool.h"
#include "graph/binary_edge_list.h"
#include "benchkit/micro_kernels.h"
#include "benchkit/obs_kernels.h"
#include "benchkit/runner.h"
#include "ingest/catalog.h"
#include "io/edge_file.h"
#include "io/mmap_edge_stream.h"
#include "obs/metrics.h"
#include "ingest/prefetching_edge_stream.h"
#include "partition/runner.h"
#include "serve/serve_scenario.h"
#include "util/memory.h"
#include "util/timer.h"

namespace tpsl {
namespace ingest {
namespace {

using benchkit::BenchRecord;
using benchkit::Scenario;
using benchkit::ScenarioKind;

/// Catalog lookup + get-or-generate for the scenario's dataset.
StatusOr<EnsureResult> EnsureScenarioDataset(const Scenario& scenario,
                                             const ScenarioRunContext& context) {
  TPSL_ASSIGN_OR_RETURN(const Catalog catalog,
                        LoadCatalog(context.catalog_path));
  const CatalogEntry* entry = catalog.Find(scenario.dataset);
  if (entry == nullptr) {
    return Status::NotFound("scenario '" + scenario.name +
                            "' references dataset '" + scenario.dataset +
                            "' which is not in " + context.catalog_path);
  }
  return EnsureDataset(*entry, context.dataset_dir);
}

/// The effective worker count: the tools' --threads override wins over
/// the scenario's pinned count (and shows up in the record, so --check
/// flags the drift). Resolved through the engine helper because the
/// record's threads dimension must be a concrete count — FromJson
/// rejects 0, so an unresolved value would emit an unreadable baseline.
uint32_t EffectiveThreads(const Scenario& scenario,
                          const ScenarioRunContext& context) {
  return exec::ResolveThreadCount(context.options.threads_override != 0
                                      ? context.options.threads_override
                                      : scenario.threads);
}

BenchRecord MakeRecordShell(const Scenario& scenario,
                            const ScenarioRunContext& context) {
  BenchRecord record;
  record.scenario = scenario.name;
  record.partitioner = scenario.partitioner;
  record.dataset = scenario.dataset;
  record.k = scenario.k;
  // Disk datasets are pinned by the catalog recipe; the smoke run's
  // extra_scale_shift deliberately does not apply.
  record.scale_shift = scenario.scale_shift;
  record.seed = scenario.seed;
  record.threads = EffectiveThreads(scenario, context);
  return record;
}

/// Opens the dataset with overlap appropriate to its sniffed format:
/// compressed files get the decode-ahead mmap reader (decode of block
/// i+1 overlaps consumption of block i, and under a parallel engine
/// the workers decode blocks themselves); raw files keep the
/// prefetching double-buffer reader over fread.
StatusOr<std::unique_ptr<EdgeStream>> OpenDiskStream(const std::string& path,
                                                     size_t buffer_edges) {
  TPSL_ASSIGN_OR_RETURN(const io::EdgeFileFormat format,
                        io::SniffEdgeFileFormat(path));
  if (format == io::EdgeFileFormat::kCompressedBlocks) {
    TPSL_ASSIGN_OR_RETURN(std::unique_ptr<io::MmapEdgeStream> stream,
                          io::MmapEdgeStream::Open(path));
    return std::unique_ptr<EdgeStream>(std::move(stream));
  }
  TPSL_ASSIGN_OR_RETURN(std::unique_ptr<BinaryFileEdgeStream> file_stream,
                        BinaryFileEdgeStream::Open(path));
  return std::unique_ptr<EdgeStream>(std::make_unique<PrefetchingEdgeStream>(
      std::move(file_stream), buffer_edges));
}

/// The stream's on-disk I/O account folded into record metrics:
/// per-pass and per-run byte totals (compressed bytes for compressed
/// files — the bytes that actually crossed the storage boundary) plus
/// the decoded/on-disk ratio for context.
void AttachIoMetrics(BenchRecord* record, const StreamIoStats& io,
                     uint64_t num_edges, int repeats) {
  const double passes = static_cast<double>(io.passes);
  record->SetMetric("io_bytes_per_pass",
                    passes > 0.0
                        ? static_cast<double>(io.disk_bytes_total) / passes
                        : 0.0);
  record->SetMetric("io_passes", passes / repeats);
  // Gated (upper-only): the whole point of the compressed format is
  // that a run reads strictly fewer bytes than edges * 8 * passes.
  record->SetMetric("bytes_read",
                    static_cast<double>(io.disk_bytes_total) / repeats);
  if (io.disk_bytes_total > 0) {
    record->SetMetric("compression_ratio",
                      static_cast<double>(num_edges) * sizeof(Edge) * passes /
                          static_cast<double>(io.disk_bytes_total));
  }
}

StatusOr<BenchRecord> RunDiskPartition(const Scenario& scenario,
                                       const ScenarioRunContext& context) {
  TPSL_ASSIGN_OR_RETURN(const EnsureResult dataset,
                        EnsureScenarioDataset(scenario, context));
  const bool rss_scoped = ResetPeakRss();
  obs::MetricsRegistry::Default().Reset();
  TPSL_ASSIGN_OR_RETURN(
      std::unique_ptr<EdgeStream> stream,
      OpenDiskStream(dataset.path, context.prefetch_buffer_edges));

  PartitionConfig config;
  config.num_partitions = scenario.k;
  config.seed = scenario.seed;
  // The execution engine under the partitioner: its workers pull
  // batches off the prefetching reader, so disk I/O overlaps scoring.
  config.exec.threads = EffectiveThreads(scenario, context);

  // Spill scenarios run the paper's full out-of-core loop: the
  // streaming sink pipeline writes assignments straight back to disk
  // (one binary edge list per partition) instead of keeping anything
  // edge-sized resident.
  RunOptions run_options;
  if (scenario.spill) {
    run_options.spill_dir = context.spill_dir;
    run_options.spill_stem = scenario.name;
  }

  const int repeats = context.options.repeats > 0 ? context.options.repeats
                                                  : 1;
  RunResult best;
  for (int repeat = 0; repeat < repeats; ++repeat) {
    // Fresh partitioner per repeat (they are single-shot); the stream
    // is reused — each pass re-reads the file, so every repeat pays
    // full I/O, matching the paper's dropped-cache discipline. Spill
    // repeats overwrite the same files.
    TPSL_ASSIGN_OR_RETURN(std::unique_ptr<Partitioner> partitioner,
                          MakePartitioner(scenario.partitioner));
    TPSL_ASSIGN_OR_RETURN(
        RunResult result,
        RunPartitioner(*partitioner, *stream, config, run_options));
    if (repeat == 0 ||
        result.stats.TotalSeconds() < best.stats.TotalSeconds()) {
      // Deterministic metrics are identical across repeats; keep the
      // fastest timing like benchkit's in-memory runner.
      std::swap(best, result);
    }
  }

  BenchRecord record = MakeRecordShell(scenario, context);
  record.SetMetric("seconds", best.stats.TotalSeconds());
  record.SetMetric("replication_factor", best.quality.replication_factor);
  record.SetMetric("measured_alpha", best.quality.measured_alpha);
  record.SetMetric("state_bytes",
                   static_cast<double>(best.stats.state_bytes));
  record.SetMetric("num_edges", static_cast<double>(dataset.num_edges));
  const double rss = static_cast<double>(PeakRssBytes());
  record.SetMetric("peak_rss_bytes", rss);
  // Gated (upper-only): a disk-backed run whose resident memory starts
  // scaling with |E| again fails --check — the out-of-core honesty
  // contract this subsystem exists to keep. Only emitted when the RSS
  // high-water mark could be scoped to this scenario; the unsupported
  // fallback is the process-lifetime peak, which would gate on
  // whichever scenario ran earlier, not on this one.
  if (rss_scoped) {
    record.SetMetric("max_rss_bytes", rss);
  }
  if (scenario.spill) {
    record.SetMetric("spill_bytes_written",
                     static_cast<double>(best.spill.bytes_written));
    RemoveSpilledFiles(best.spill);
  }
  // Deterministic I/O shape: bytes per pass is the on-disk file size
  // (compressed for block files), and the pass count is the
  // partitioner's streaming structure (2 for 2PS-L).
  AttachIoMetrics(&record, stream->Io(), dataset.num_edges, repeats);
  for (const auto& [phase, seconds] : best.stats.phase_seconds) {
    record.SetMetric("phase_seconds/" + phase, seconds);
    // Phase throughput over the full edge set, matching the in-memory
    // runner; "partitioning" is the gated hot-loop rate.
    if (seconds > 0.0 && dataset.num_edges > 0) {
      record.SetMetric("edges_per_sec/" + phase,
                       static_cast<double>(dataset.num_edges) / seconds);
    }
  }
  benchkit::AttachObsMetrics(&record);
  benchkit::AttachHostMetrics(&record);
  return record;
}

StatusOr<BenchRecord> RunIngestScan(const Scenario& scenario,
                                    const ScenarioRunContext& context) {
  TPSL_ASSIGN_OR_RETURN(const EnsureResult dataset,
                        EnsureScenarioDataset(scenario, context));
  ResetPeakRss();
  obs::MetricsRegistry::Default().Reset();

  const int repeats = context.options.repeats > 0 ? context.options.repeats
                                                  : 1;
  // Baseline for comparison: the same scan without prefetching. Runs
  // first so the prefetched number cannot be flattered by a cold page
  // cache on the plain pass.
  double plain_seconds = 0.0;
  {
    // Sniffing open: a synchronous reader for either format (raw fread
    // or mmap block decode, no overlap).
    TPSL_ASSIGN_OR_RETURN(std::unique_ptr<EdgeStream> plain,
                          io::OpenEdgeFile(dataset.path));
    for (int repeat = 0; repeat < repeats; ++repeat) {
      uint64_t count = 0;
      WallTimer timer;
      TPSL_RETURN_IF_ERROR(
          ForEachEdge(*plain, [&count](const Edge&) { ++count; }));
      const double elapsed = timer.ElapsedSeconds();
      if (repeat == 0 || elapsed < plain_seconds) {
        plain_seconds = elapsed;
      }
      if (count != dataset.num_edges) {
        return Status::Internal("plain scan of " + dataset.path +
                                " delivered " + std::to_string(count) +
                                " of " + std::to_string(dataset.num_edges) +
                                " edges");
      }
    }
  }

  TPSL_ASSIGN_OR_RETURN(
      std::unique_ptr<EdgeStream> stream,
      OpenDiskStream(dataset.path, context.prefetch_buffer_edges));
  double seconds = 0.0;
  for (int repeat = 0; repeat < repeats; ++repeat) {
    uint64_t count = 0;
    WallTimer timer;
    TPSL_RETURN_IF_ERROR(
        ForEachEdge(*stream, [&count](const Edge&) { ++count; }));
    const double elapsed = timer.ElapsedSeconds();
    if (repeat == 0 || elapsed < seconds) {
      seconds = elapsed;
    }
    if (count != dataset.num_edges) {
      return Status::Internal("prefetched scan of " + dataset.path +
                              " delivered " + std::to_string(count) + " of " +
                              std::to_string(dataset.num_edges) + " edges");
    }
  }

  BenchRecord record = MakeRecordShell(scenario, context);
  record.SetMetric("seconds", seconds);
  record.SetMetric("num_edges", static_cast<double>(dataset.num_edges));
  record.SetMetric("file_bytes", static_cast<double>(dataset.file_bytes));
  record.SetMetric("edges_per_second",
                   seconds > 0.0 ? dataset.num_edges / seconds : 0.0);
  record.SetMetric(
      "mb_per_second",
      seconds > 0.0 ? dataset.file_bytes / (1e6 * seconds) : 0.0);
  record.SetMetric("plain_seconds", plain_seconds);
  record.SetMetric("peak_rss_bytes", static_cast<double>(PeakRssBytes()));
  AttachIoMetrics(&record, stream->Io(), dataset.num_edges, repeats);
  benchkit::AttachObsMetrics(&record);
  benchkit::AttachHostMetrics(&record);
  return record;
}

}  // namespace

StatusOr<BenchRecord> RunScenarioWithIngest(const Scenario& scenario,
                                            const ScenarioRunContext& context) {
  switch (scenario.kind) {
    case ScenarioKind::kInMemory:
      return benchkit::RunScenario(scenario, context.options);
    case ScenarioKind::kDiskPartition:
      return RunDiskPartition(scenario, context);
    case ScenarioKind::kIngestScan:
      return RunIngestScan(scenario, context);
    case ScenarioKind::kMicroKernel:
      // No dataset, no ingest: synthetic seeded state, timed in
      // benchkit itself.
      return benchkit::RunMicroKernels(scenario, context.options);
    case ScenarioKind::kMicroObs:
      return benchkit::RunObsKernels(scenario, context.options);
    case ScenarioKind::kServe:
      // Serving traffic over the in-memory dataset loader (serve
      // scenarios pin Table III codes, not catalog recipes).
      return serve::RunServeScenario(scenario, context.options);
  }
  return Status::Internal("unhandled scenario kind");
}

}  // namespace ingest
}  // namespace tpsl

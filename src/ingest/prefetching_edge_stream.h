#ifndef TPSL_INGEST_PREFETCHING_EDGE_STREAM_H_
#define TPSL_INGEST_PREFETCHING_EDGE_STREAM_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "graph/edge_stream.h"
#include "graph/types.h"
#include "util/status.h"

namespace tpsl {
namespace ingest {

/// Double-buffered, background-thread reader over any EdgeStream.
///
/// A worker thread keeps pulling batches from the inner stream into
/// two fixed buffers while the consumer drains the other one, so disk
/// I/O overlaps partitioning compute — the out-of-core configuration
/// the paper's linear-run-time claim depends on. Memory footprint is
/// exactly two buffers of `buffer_edges` edges, independent of graph
/// size.
///
/// Composes with the rest of the stream stack: it is an EdgeStream, so
/// it can wrap a BinaryFileEdgeStream and be wrapped by a
/// ThrottledEdgeStream (whose virtual-I/O accounting then sees the
/// same bytes this reader reports via bytes_read()/bytes_this_pass()).
///
/// Reset() stops the worker, resets the inner stream, and restarts
/// prefetching — each pass re-reads the file, matching the paper's
/// dropped-page-cache discipline. Inner-stream failures (see
/// EdgeStream::Health) surface through Health() here.
///
/// Thread model: Next()/Reset()/Health() must be called from one
/// consumer thread; the worker is internal.
class PrefetchingEdgeStream : public EdgeStream {
 public:
  explicit PrefetchingEdgeStream(std::unique_ptr<EdgeStream> inner,
                                 size_t buffer_edges = 256 * 1024);
  ~PrefetchingEdgeStream() override;

  PrefetchingEdgeStream(const PrefetchingEdgeStream&) = delete;
  PrefetchingEdgeStream& operator=(const PrefetchingEdgeStream&) = delete;

  Status Reset() override;
  size_t Next(Edge* out, size_t capacity) override;
  uint64_t NumEdgesHint() const override { return inner_->NumEdgesHint(); }
  Status Health() const override;

  /// Forwards the inner stream's on-disk byte account (compressed
  /// bytes for block-compressed files). While a pass is in flight the
  /// inner stream is worker-owned, so the consumer sees the snapshot
  /// taken when the last fully drained slot was filled — consistent
  /// with what has been delivered, at slot granularity. Once the pass
  /// completes the account is exact.
  StreamIoStats Io() const override;

  /// Total bytes delivered to the consumer across all passes.
  uint64_t bytes_read() const { return bytes_read_; }
  /// Bytes delivered since the last Reset().
  uint64_t bytes_this_pass() const { return bytes_this_pass_; }
  /// Number of Reset() calls (≈ passes started).
  uint64_t passes() const { return passes_; }

 private:
  /// One of the two ping-pong slots. `filled` is valid edges in
  /// `edges`; `ready` flips producer -> consumer, `consumed` back.
  struct Slot {
    std::vector<Edge> edges;
    size_t filled = 0;
    bool ready = false;
    /// Inner Io() snapshot taken when the slot was filled.
    StreamIoStats inner_io;
  };

  void StartWorker();
  void StopWorker();
  void WorkerLoop();

  std::unique_ptr<EdgeStream> inner_;
  const size_t buffer_edges_;

  Slot slots_[2];
  mutable std::mutex mutex_;
  std::condition_variable slot_ready_cv_;    // worker -> consumer
  std::condition_variable slot_free_cv_;     // consumer -> worker
  bool producer_done_ = false;  // worker hit EOF (or error) this pass
  bool stop_ = false;           // tells the worker to exit
  Status worker_status_;        // inner Health captured at pass end
  std::thread worker_;
  bool worker_running_ = false;

  // Consumer-side cursor into the slot currently being drained.
  size_t consume_slot_ = 0;
  size_t consume_pos_ = 0;
  bool consumer_holds_slot_ = false;

  uint64_t bytes_read_ = 0;
  uint64_t bytes_this_pass_ = 0;
  uint64_t passes_ = 0;
  /// Inner Io() as of the last slot the consumer fully drained.
  StreamIoStats drained_inner_io_;
};

}  // namespace ingest
}  // namespace tpsl

#endif  // TPSL_INGEST_PREFETCHING_EDGE_STREAM_H_

#ifndef TPSL_INGEST_CATALOG_H_
#define TPSL_INGEST_CATALOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "benchkit/json.h"
#include "ingest/external_generator.h"
#include "util/status.h"

namespace tpsl {
namespace ingest {

/// One catalog dataset: a recipe plus pinned expectations. The pinned
/// edge count and checksum make the catalog a contract — a generator
/// whose output drifts (seed handling change, RNG change, edge-loop
/// reorder) fails get-or-generate loudly instead of silently shifting
/// every disk-backed benchmark. Empty expectations mean "not pinned
/// yet"; `tools/ingest --pin` fills them in.
/// The checksum contract is two-level. `expected_checksum` is the
/// *logical* pin: FNV-1a over the decoded (uint32, uint32) edge bytes,
/// independent of on-disk encoding — re-encoding a dataset in another
/// format never moves it (for raw files it coincides with the file
/// digest, which is why pre-format catalogs keep working unchanged).
/// `expected_file_checksum` is the *physical* pin over the on-disk
/// bytes of the pinned format, catching bit-rot in the compressed file
/// itself.
struct CatalogEntry {
  DatasetRecipe recipe;
  /// On-disk encoding this entry is pinned in: 0 = raw u32 pairs,
  /// 1 = compressed edge blocks (io/edge_block_format.h). Absent in
  /// pre-format catalog JSON, which defaults to raw.
  uint32_t format_version = 0;
  uint64_t expected_edges = 0;         // 0 = unpinned
  std::string expected_checksum;       // logical; "" = unpinned
  std::string expected_file_checksum;  // physical; "" = unpinned

  bool operator==(const CatalogEntry& other) const = default;
};

/// The dataset catalog, persisted as a JSON file (the checked-in
/// source of truth is bench/catalog.json; CI keys its dataset cache on
/// that file's hash).
struct Catalog {
  std::vector<CatalogEntry> entries;

  const CatalogEntry* Find(const std::string& name) const;
};

StatusOr<Catalog> LoadCatalog(const std::string& path);
Status SaveCatalog(const Catalog& catalog, const std::string& path);

/// JSON forms, exposed for the manifest sidecars and tests.
benchkit::JsonValue CatalogEntryToJson(const CatalogEntry& entry);
StatusOr<CatalogEntry> CatalogEntryFromJson(const benchkit::JsonValue& json);

/// Paths inside a dataset directory: "<dir>/<name>.bin" and its
/// manifest sidecar "<dir>/<name>.manifest.json".
std::string DatasetPath(const std::string& dir, const std::string& name);
std::string ManifestPath(const std::string& dir, const std::string& name);

struct EnsureResult {
  std::string path;          // the dataset file
  bool generated = false;    // false = served from cache
  uint64_t num_edges = 0;
  uint64_t file_bytes = 0;        // on-disk (compressed) bytes
  std::string checksum;           // logical (decoded-edge) digest
  std::string file_checksum;      // on-disk byte digest
  double generate_seconds = 0.0;  // 0 when cached
};

/// Get-or-generate: returns the dataset file for `entry` inside `dir`
/// (created if missing). The cached copy is reused only when its
/// manifest sidecar exists, records the same recipe, matches the
/// file's size, and agrees with the entry's pinned expectations;
/// anything else — missing file, recipe drift, truncation, stale
/// pin — regenerates. A freshly generated file that contradicts a
/// pinned expectation is an error (generator drift), never silently
/// accepted.
StatusOr<EnsureResult> EnsureDataset(const CatalogEntry& entry,
                                     const std::string& dir,
                                     size_t chunk_edges = 1 << 20);

/// Fully re-reads the on-disk file against the entry's pins
/// (get-or-generate trusts manifests for speed; this does not).
/// Raw files are re-checksummed byte-for-byte. Compressed files are
/// verified at both levels: the file digest against the physical pin,
/// then a full decode — every block checksum — with the decoded edge
/// count and digest checked against the logical pins. Unpinned entries
/// and missing files are errors.
Status VerifyDataset(const CatalogEntry& entry, const std::string& dir);

}  // namespace ingest
}  // namespace tpsl

#endif  // TPSL_INGEST_CATALOG_H_

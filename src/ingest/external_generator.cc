#include "ingest/external_generator.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "graph/generators.h"
#include "ingest/checksum.h"
#include "io/compressed_edge_writer.h"
#include "util/timer.h"

namespace tpsl {
namespace ingest {
namespace {

/// Sink that forwards chunks to fwrite + the running checksum. Errors
/// are latched (std::function sinks cannot return Status) and checked
/// once generation finishes.
class FileSink {
 public:
  explicit FileSink(std::FILE* file) : file_(file) {}

  void Consume(const Edge* edges, size_t count) {
    if (!status_.ok()) {
      return;  // already failed; drain the rest of the generation
    }
    const size_t written = std::fwrite(edges, sizeof(Edge), count, file_);
    if (written != count) {
      status_ = Status::IoError(std::string("short write: ") +
                                std::strerror(errno));
      return;
    }
    hash_.Update(edges, count * sizeof(Edge));
    num_edges_ += count;
  }

  const Status& status() const { return status_; }
  uint64_t num_edges() const { return num_edges_; }
  uint64_t digest() const { return hash_.digest(); }

 private:
  std::FILE* file_;
  Status status_;
  Fnv1a64 hash_;
  uint64_t num_edges_ = 0;
};

Status RunGenerator(const DatasetRecipe& recipe, size_t chunk_edges,
                    const EdgeChunkSink& sink) {
  if (recipe.scale == 0 || recipe.scale > 30) {
    return Status::InvalidArgument("recipe '" + recipe.name +
                                   "': scale must be in [1, 30]");
  }
  if (recipe.kind == "rmat") {
    if (!(recipe.skew > 0.0 && recipe.skew < 1.0)) {
      return Status::InvalidArgument("recipe '" + recipe.name +
                                     "': rmat skew (a) must be in (0, 1)");
    }
    RmatConfig config;
    config.scale = recipe.scale;
    config.edge_factor = recipe.edge_factor;
    config.a = recipe.skew;
    config.b = (1.0 - recipe.skew) / 3.0;
    config.c = (1.0 - recipe.skew) / 3.0;
    config.seed = recipe.seed;
    GenerateRmatChunked(config, chunk_edges, sink);
    return Status::OK();
  }
  if (recipe.kind == "erdos_renyi") {
    ErdosRenyiConfig config;
    config.num_vertices = VertexId{1} << recipe.scale;
    config.num_edges = static_cast<uint64_t>(recipe.edge_factor)
                       << recipe.scale;
    config.seed = recipe.seed;
    GenerateErdosRenyiChunked(config, chunk_edges, sink);
    return Status::OK();
  }
  if (recipe.kind == "planted_partition") {
    if (recipe.communities < 2) {
      return Status::InvalidArgument(
          "recipe '" + recipe.name +
          "': planted_partition needs communities >= 2");
    }
    if (!(recipe.skew >= 0.0 && recipe.skew <= 1.0)) {
      return Status::InvalidArgument(
          "recipe '" + recipe.name +
          "': planted_partition skew (intra_fraction) must be in [0, 1]");
    }
    PlantedPartitionConfig config;
    config.num_vertices = VertexId{1} << recipe.scale;
    config.num_edges = static_cast<uint64_t>(recipe.edge_factor)
                       << recipe.scale;
    config.num_communities = recipe.communities;
    config.intra_fraction = recipe.skew;
    config.size_skew = 1.0;
    config.seed = recipe.seed;
    GeneratePlantedPartitionChunked(config, chunk_edges, sink);
    return Status::OK();
  }
  return Status::InvalidArgument(
      "recipe '" + recipe.name + "': unknown generator kind '" + recipe.kind +
      "' (streamable kinds: rmat, erdos_renyi, planted_partition)");
}

}  // namespace

bool IsStreamableKind(const std::string& kind) {
  return kind == "rmat" || kind == "erdos_renyi" ||
         kind == "planted_partition";
}

namespace {

/// Commits `tmp_path` into `path`, or cleans up on failure.
Status RenameOrRemove(const Status& status, const std::string& tmp_path,
                      const std::string& path) {
  if (!status.ok()) {
    std::remove(tmp_path.c_str());
    return status;
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    const Status rename_status = Status::IoError(
        "rename " + tmp_path + " -> " + path + ": " + std::strerror(errno));
    std::remove(tmp_path.c_str());
    return rename_status;
  }
  return Status::OK();
}

StatusOr<GenerateFileResult> GenerateRawFile(const DatasetRecipe& recipe,
                                             const std::string& path,
                                             size_t chunk_edges) {
  const std::string tmp_path = path + ".tmp";
  std::FILE* file = std::fopen(tmp_path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("cannot open for writing: " + tmp_path + ": " +
                           std::strerror(errno));
  }

  WallTimer timer;
  FileSink sink(file);
  const Status generate_status = RunGenerator(
      recipe, chunk_edges,
      [&sink](const Edge* edges, size_t count) { sink.Consume(edges, count); });
  const int close_rc = std::fclose(file);

  Status status = generate_status;
  if (status.ok()) {
    status = sink.status();
  }
  if (status.ok() && close_rc != 0) {
    // The final flush inside fclose can fail (ENOSPC) even when every
    // fwrite succeeded.
    status = Status::IoError("close failed for " + tmp_path + ": " +
                             std::strerror(errno));
  }
  TPSL_RETURN_IF_ERROR(RenameOrRemove(status, tmp_path, path));

  GenerateFileResult result;
  result.num_edges = sink.num_edges();
  result.file_bytes = sink.num_edges() * sizeof(Edge);
  result.checksum = FormatChecksum(sink.digest());
  // The raw file *is* the edge bytes, so the two digests coincide.
  result.file_checksum = result.checksum;
  result.peak_buffer_bytes = chunk_edges * sizeof(Edge);
  result.generate_seconds = timer.ElapsedSeconds();
  return result;
}

StatusOr<GenerateFileResult> GenerateCompressedFile(
    const DatasetRecipe& recipe, const std::string& path, size_t chunk_edges) {
  const std::string tmp_path = path + ".tmp";
  TPSL_ASSIGN_OR_RETURN(std::unique_ptr<io::CompressedEdgeWriter> writer,
                        io::CompressedEdgeWriter::Open(tmp_path));

  WallTimer timer;
  const Status generate_status =
      RunGenerator(recipe, chunk_edges,
                   [&writer](const Edge* edges, size_t count) {
                     writer->Append(edges, count);
                   });
  // The writer tracks the logical (decoded-edge) digest itself; grab
  // the totals before Finish() seals the file.
  Status status = generate_status;
  const Status finish_status = writer->Finish();
  if (status.ok()) {
    status = finish_status;
  }
  const uint64_t num_edges = writer->edges_written();
  const uint64_t file_bytes = writer->bytes_written();
  const uint64_t edge_digest = writer->edge_checksum();
  writer.reset();

  GenerateFileResult result;
  if (status.ok()) {
    // One buffered re-read (cache-warm) fingerprints the on-disk bytes
    // for the catalog's physical pin.
    auto file_checksum_or = ChecksumFile(tmp_path);
    if (!file_checksum_or.ok()) {
      status = file_checksum_or.status();
    } else {
      result.file_checksum = *file_checksum_or;
    }
  }
  TPSL_RETURN_IF_ERROR(RenameOrRemove(status, tmp_path, path));

  result.num_edges = num_edges;
  result.file_bytes = file_bytes;
  result.checksum = FormatChecksum(edge_digest);
  result.peak_buffer_bytes = chunk_edges * sizeof(Edge);
  result.generate_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace

StatusOr<GenerateFileResult> GenerateDatasetFile(const DatasetRecipe& recipe,
                                                 const std::string& path,
                                                 size_t chunk_edges,
                                                 io::EdgeFileFormat format) {
  if (chunk_edges == 0) {
    return Status::InvalidArgument("chunk_edges must be positive");
  }
  return format == io::EdgeFileFormat::kCompressedBlocks
             ? GenerateCompressedFile(recipe, path, chunk_edges)
             : GenerateRawFile(recipe, path, chunk_edges);
}

}  // namespace ingest
}  // namespace tpsl

#include "ingest/prefetching_edge_stream.h"

#include <cstring>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace tpsl {
namespace ingest {

namespace {

// Reader instrumentation: was the next buffer ready when the consumer
// arrived (hit) or did compute outrun I/O (miss + stall time), and how
// long the producer sat blocked on a full ring. All per-slot (256K
// edges by default), so the cost is invisible next to the memcpy.
obs::Counter* PrefetchHits() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Default().GetCounter("ingest.prefetch_hit");
  return counter;
}

obs::Counter* PrefetchMisses() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Default().GetCounter("ingest.prefetch_miss");
  return counter;
}

obs::Counter* EdgesPrefetched() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Default().GetCounter("ingest.edges_prefetched");
  return counter;
}

obs::Histogram* ConsumerWaitHist() {
  static obs::Histogram* hist = obs::MetricsRegistry::Default().GetHistogram(
      "ingest.consumer_wait_seconds");
  return hist;
}

obs::Histogram* ProducerWaitHist() {
  static obs::Histogram* hist = obs::MetricsRegistry::Default().GetHistogram(
      "ingest.producer_wait_seconds");
  return hist;
}

}  // namespace

PrefetchingEdgeStream::PrefetchingEdgeStream(
    std::unique_ptr<EdgeStream> inner, size_t buffer_edges)
    : inner_(std::move(inner)), buffer_edges_(buffer_edges) {
  TPSL_CHECK(inner_ != nullptr);
  TPSL_CHECK(buffer_edges_ > 0);
  slots_[0].edges.resize(buffer_edges_);
  slots_[1].edges.resize(buffer_edges_);
}

PrefetchingEdgeStream::~PrefetchingEdgeStream() { StopWorker(); }

void PrefetchingEdgeStream::StartWorker() {
  worker_ = std::thread(&PrefetchingEdgeStream::WorkerLoop, this);
  worker_running_ = true;
}

void PrefetchingEdgeStream::StopWorker() {
  if (!worker_running_) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  slot_free_cv_.notify_all();
  slot_ready_cv_.notify_all();
  worker_.join();
  stop_ = false;
  worker_running_ = false;
}

void PrefetchingEdgeStream::WorkerLoop() {
  size_t produce_slot = 0;
  bool eof = false;
  while (!eof) {
    Slot& slot = slots_[produce_slot];
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (!stop_ && slot.ready) {
        // Both buffers full: compute is the bottleneck here. Record how
        // long the producer sat blocked.
        const int64_t wait_start_ns = obs::TraceNowNanos();
        slot_free_cv_.wait(lock, [&] { return stop_ || !slot.ready; });
        ProducerWaitHist()->RecordNanos(
            static_cast<uint64_t>(obs::TraceNowNanos() - wait_start_ns));
      }
      if (stop_) {
        return;
      }
    }
    // Fill outside the lock: the consumer never touches a slot that is
    // not ready, and the inner stream is worker-owned during a pass.
    size_t filled = 0;
    {
      obs::TraceSpan span("ingest.fill", "ingest");
      while (filled < buffer_edges_) {
        const size_t n = inner_->Next(slot.edges.data() + filled,
                                      buffer_edges_ - filled);
        if (n == 0) {
          eof = true;
          break;
        }
        filled += n;
      }
    }
    EdgesPrefetched()->Add(filled);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      slot.filled = filled;
      slot.ready = true;
      slot.inner_io = inner_->Io();
      if (eof) {
        producer_done_ = true;
        // An inner failure looks like EOF (Next() == 0); capture its
        // sticky health here so the consumer can tell the difference.
        worker_status_ = inner_->Health();
      }
    }
    slot_ready_cv_.notify_all();
    produce_slot ^= 1;
  }
}

Status PrefetchingEdgeStream::Reset() {
  StopWorker();
  for (Slot& slot : slots_) {
    slot.filled = 0;
    slot.ready = false;
  }
  producer_done_ = false;
  worker_status_ = Status::OK();
  consume_slot_ = 0;
  consume_pos_ = 0;
  consumer_holds_slot_ = false;
  bytes_this_pass_ = 0;
  drained_inner_io_.disk_bytes_this_pass = 0;
  passes_ += 1;
  TPSL_RETURN_IF_ERROR(inner_->Reset());
  StartWorker();
  return Status::OK();
}

size_t PrefetchingEdgeStream::Next(Edge* out, size_t capacity) {
  if (!worker_running_) {
    // First use without a Reset(): the inner stream is still at its
    // start, so just begin prefetching.
    StartWorker();
  }
  size_t delivered = 0;
  while (delivered < capacity) {
    if (!consumer_holds_slot_) {
      std::unique_lock<std::mutex> lock(mutex_);
      Slot& slot = slots_[consume_slot_];
      if (slot.ready) {
        PrefetchHits()->Increment();
      } else if (!producer_done_) {
        // Compute outran the disk: this wait is the ingest stall the
        // paper's overlap design exists to hide.
        PrefetchMisses()->Increment();
        const int64_t wait_start_ns = obs::TraceNowNanos();
        slot_ready_cv_.wait(lock,
                            [&] { return slot.ready || producer_done_; });
        const int64_t wait_ns = obs::TraceNowNanos() - wait_start_ns;
        ConsumerWaitHist()->RecordNanos(static_cast<uint64_t>(wait_ns));
        obs::EmitComplete("ingest.stall", "ingest", wait_start_ns, wait_ns);
      }
      if (!slot.ready) {
        break;  // producer finished and this slot was never filled
      }
      consumer_holds_slot_ = true;
      consume_pos_ = 0;
    }
    Slot& slot = slots_[consume_slot_];
    const size_t available = slot.filled - consume_pos_;
    if (available == 0) {
      // Hand the drained slot back and move to the other one.
      bool done;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        slot.ready = false;
        slot.filled = 0;
        drained_inner_io_ = slot.inner_io;
        done = producer_done_;
      }
      slot_free_cv_.notify_all();
      consumer_holds_slot_ = false;
      consume_slot_ ^= 1;
      if (done && slot.filled == 0 && !slots_[consume_slot_].ready) {
        // Fast path out: producer is done and nothing is pending.
        break;
      }
      continue;
    }
    const size_t n = std::min(capacity - delivered, available);
    std::memcpy(out + delivered, slot.edges.data() + consume_pos_,
                n * sizeof(Edge));
    consume_pos_ += n;
    delivered += n;
  }
  bytes_read_ += delivered * sizeof(Edge);
  bytes_this_pass_ += delivered * sizeof(Edge);
  return delivered;
}

StreamIoStats PrefetchingEdgeStream::Io() const {
  std::lock_guard<std::mutex> lock(mutex_);
  StreamIoStats io;
  if (!worker_running_ || producer_done_) {
    // No fill in flight (idle, or the pass hit EOF): the inner stream
    // is quiescent, read the exact account.
    io = inner_->Io();
  } else {
    io = drained_inner_io_;
  }
  io.passes = passes_;
  return io;
}

Status PrefetchingEdgeStream::Health() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!worker_status_.ok()) {
    return worker_status_;
  }
  if (!worker_running_) {
    // No pass in flight: the inner stream is safe to inspect directly.
    return inner_->Health();
  }
  return Status::OK();
}

}  // namespace ingest
}  // namespace tpsl

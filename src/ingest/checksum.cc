#include "ingest/checksum.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace tpsl {
namespace ingest {

void Fnv1a64::Update(const void* data, size_t bytes) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t state = state_;
  for (size_t i = 0; i < bytes; ++i) {
    state ^= p[i];
    state *= 0x100000001b3ULL;
  }
  state_ = state;
}

std::string FormatChecksum(uint64_t digest) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "fnv1a64:%016llx",
                static_cast<unsigned long long>(digest));
  return buf;
}

StatusOr<std::string> ChecksumFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("cannot open: " + path + ": " +
                            std::strerror(errno));
  }
  Fnv1a64 hash;
  char buffer[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    hash.Update(buffer, n);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    return Status::IoError("read failed while checksumming: " + path);
  }
  return FormatChecksum(hash.digest());
}

}  // namespace ingest
}  // namespace tpsl

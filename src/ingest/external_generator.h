#ifndef TPSL_INGEST_EXTERNAL_GENERATOR_H_
#define TPSL_INGEST_EXTERNAL_GENERATOR_H_

#include <cstdint>
#include <string>

#include "io/edge_file.h"
#include "util/status.h"

namespace tpsl {
namespace ingest {

/// Recipe for a seed-deterministic on-disk dataset. Only the
/// streamable generator families are allowed (each edge drawn
/// independently), because the whole point of external generation is
/// bounded memory: the writer holds one chunk buffer, never the graph.
///
/// Field use per kind:
///   "rmat"               scale, edge_factor, skew (= R-MAT `a`,
///                        b = c = (1-a)/3), seed
///   "erdos_renyi"        scale (|V| = 2^scale), edge_factor, seed
///   "planted_partition"  scale, edge_factor, skew (= intra_fraction),
///                        communities, seed
struct DatasetRecipe {
  std::string name;           // catalog key; also the file stem
  std::string kind;           // one of the kinds above
  uint32_t scale = 16;        // |V| = 2^scale
  uint32_t edge_factor = 16;  // target |E| = edge_factor * |V|
  double skew = 0.57;
  uint32_t communities = 0;
  uint64_t seed = 1;

  bool operator==(const DatasetRecipe& other) const = default;
};

/// True for the generator kinds GenerateDatasetFile understands.
bool IsStreamableKind(const std::string& kind);

struct GenerateFileResult {
  uint64_t num_edges = 0;
  uint64_t file_bytes = 0;     // on-disk bytes (compressed when blocks)
  /// Logical checksum, "fnv1a64:<hex>" over the decoded edge bytes —
  /// format-independent, so re-encoding a dataset never moves this pin.
  std::string checksum;
  /// Checksum over the on-disk file bytes. Equal to `checksum` for the
  /// raw format (the file *is* the edge bytes); differs for compressed.
  std::string file_checksum;
  /// Size of the single chunk buffer the writer held — the bound on
  /// generation memory regardless of dataset size (tests assert on
  /// this, and on the chunk deliveries never exceeding it).
  uint64_t peak_buffer_bytes = 0;
  double generate_seconds = 0.0;
};

/// Streams the recipe's edges straight to `path`, using one chunk
/// buffer of `chunk_edges` edges. `format` picks the on-disk encoding:
/// the raw (uint32, uint32) edge list, or the compressed edge-block
/// format (io/edge_block_format.h) through the double-buffered async
/// CompressedEdgeWriter. Writes to `path + ".tmp"` and renames on
/// success, so a crashed or failed generation never leaves a
/// plausible-looking partial dataset behind.
StatusOr<GenerateFileResult> GenerateDatasetFile(
    const DatasetRecipe& recipe, const std::string& path,
    size_t chunk_edges = 1 << 20,
    io::EdgeFileFormat format = io::EdgeFileFormat::kRaw);

}  // namespace ingest
}  // namespace tpsl

#endif  // TPSL_INGEST_EXTERNAL_GENERATOR_H_

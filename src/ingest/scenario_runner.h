#ifndef TPSL_INGEST_SCENARIO_RUNNER_H_
#define TPSL_INGEST_SCENARIO_RUNNER_H_

#include <cstddef>
#include <string>

#include "benchkit/record.h"
#include "benchkit/runner.h"
#include "benchkit/scenario.h"
#include "util/status.h"

namespace tpsl {
namespace ingest {

/// Everything a disk-backed scenario needs to find its bytes. The
/// catalog file is the checked-in contract (bench/catalog.json); the
/// dataset dir is a cache — missing datasets are generated on demand
/// (get-or-generate), so a fresh checkout can run --check end to end.
struct ScenarioRunContext {
  std::string catalog_path = "bench/catalog.json";
  std::string dataset_dir = "bench/.datasets";
  benchkit::RunScenarioOptions options;
  /// Per-buffer size of the double-buffered prefetching reader.
  size_t prefetch_buffer_edges = 256 * 1024;
  /// Where spill-to-disk scenarios write their partition files
  /// (deleted after measurement). Deliberately not under dataset_dir:
  /// CI caches the dataset dir and must not cache transient spill.
  std::string spill_dir = "bench/.spill";
};

/// Kind-dispatching scenario runner: in-memory scenarios delegate to
/// benchkit::RunScenario; kDiskPartition streams the catalog dataset
/// through BinaryFileEdgeStream + PrefetchingEdgeStream into the
/// partitioner; kIngestScan measures raw prefetched scan throughput
/// (and a plain unprefetched scan for comparison).
///
/// Disk records add metrics on top of benchkit's usual set:
///   kDiskPartition: "io_bytes_per_pass" (= file bytes, deterministic),
///     "io_passes" (partitioner passes over the file, deterministic),
///     "max_rss_bytes" (gated upper-only — the out-of-core honesty
///     check that resident memory stays bounded), and for spill
///     scenarios "spill_bytes_written" (informational)
///   kIngestScan: "seconds" (fastest prefetched scan), "num_edges",
///     "file_bytes" (deterministic), "edges_per_second",
///     "mb_per_second", "plain_seconds" (informational)
StatusOr<benchkit::BenchRecord> RunScenarioWithIngest(
    const benchkit::Scenario& scenario, const ScenarioRunContext& context);

}  // namespace ingest
}  // namespace tpsl

#endif  // TPSL_INGEST_SCENARIO_RUNNER_H_

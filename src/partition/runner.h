#ifndef TPSL_PARTITION_RUNNER_H_
#define TPSL_PARTITION_RUNNER_H_

#include <memory>
#include <string>
#include <vector>

#include "graph/edge_stream.h"
#include "partition/metrics.h"
#include "partition/partitioner.h"
#include "util/status.h"

namespace tpsl {

/// Where a spilled run's partitions landed on disk: one binary edge
/// list per partition plus a plain-text manifest, written by the
/// PartitionedWriter spill sink as assignments streamed through.
struct SpillInfo {
  /// `<spill_dir>/<spill_stem>`; files are `<prefix>.part<i>.bin` and
  /// `<prefix>.manifest`. Empty when the run did not spill.
  std::string prefix;
  std::vector<std::string> partition_paths;
  std::vector<uint64_t> edge_counts;
  uint64_t bytes_written = 0;

  bool spilled() const { return !prefix.empty(); }
};

/// One timed, measured partitioning run: what every experiment and
/// example needs. Wraps Partitioner::Partition with a wall timer and a
/// composable sink pipeline — streaming quality metrics and contract
/// validation by default (O(|V|·k) state, never an edge list), plus
/// opt-in materialization and disk spill sinks.
struct RunResult {
  std::string partitioner_name;
  PartitionQuality quality;
  PartitionStats stats;
  double wall_seconds = 0.0;
  /// Per-partition edge lists (moved out of the sink). Empty unless
  /// `keep_partitions` was set.
  std::vector<std::vector<Edge>> partitions;
  /// On-disk partition files. Unset unless `spill_dir` was set.
  SpillInfo spill;
};

struct RunOptions {
  /// Add an EdgeListSink to the pipeline and retain the materialized
  /// partitions in the result. Explicit opt-in: costs O(|E|) memory,
  /// which defeats the out-of-core measurement path — prefer
  /// `spill_dir` + OpenSpilledPartitions for downstream processing.
  bool keep_partitions = false;
  /// Fail the run if an edge is lost/duplicated or the hard balance
  /// cap is violated (checked online as assignments arrive when the
  /// stream publishes an edge-count hint).
  bool validate = true;
  /// Non-empty: add a PartitionedWriter spill sink that streams every
  /// assignment to one binary edge list per partition under this
  /// directory (created if missing). RunResult::spill describes the
  /// files.
  std::string spill_dir;
  /// File-name stem for the spilled partition files.
  std::string spill_stem = "partitions";
};

/// Runs `partitioner` on `stream` and returns measurements. Quality
/// and validation are computed single-pass by StreamingQualitySink /
/// ValidatingSink while assignments stream through — the default path
/// holds no edge lists, so out-of-core runs stay out of core end to
/// end. `stats.state_bytes` covers the whole run: partitioner state
/// plus sink-side state (replication bitsets, writer buffers,
/// opted-in edge lists).
StatusOr<RunResult> RunPartitioner(Partitioner& partitioner,
                                   EdgeStream& stream,
                                   const PartitionConfig& config,
                                   const RunOptions& options = {});

/// Opens every spilled partition file as a buffered EdgeStream, in
/// partition order — the hand-off from a spilled run to disk-backed
/// distributed processing (procsim).
StatusOr<std::vector<std::unique_ptr<EdgeStream>>> OpenSpilledPartitions(
    const SpillInfo& spill);

/// Non-owning view for APIs that take a span of streams.
std::vector<EdgeStream*> StreamPointers(
    const std::vector<std::unique_ptr<EdgeStream>>& streams);

/// Best-effort deletion of the spilled files and manifest.
void RemoveSpilledFiles(const SpillInfo& spill);

}  // namespace tpsl

#endif  // TPSL_PARTITION_RUNNER_H_

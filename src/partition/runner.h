#ifndef TPSL_PARTITION_RUNNER_H_
#define TPSL_PARTITION_RUNNER_H_

#include <string>

#include "graph/edge_stream.h"
#include "partition/metrics.h"
#include "partition/partitioner.h"
#include "util/status.h"

namespace tpsl {

/// One timed, measured partitioning run: what every experiment and
/// example needs. Wraps Partitioner::Partition with a wall timer, an
/// EdgeListSink, from-scratch quality metrics and contract validation.
struct RunResult {
  std::string partitioner_name;
  PartitionQuality quality;
  PartitionStats stats;
  double wall_seconds = 0.0;
  /// Per-partition edge lists (moved out of the sink). Empty if
  /// `keep_partitions` was false.
  std::vector<std::vector<Edge>> partitions;
};

struct RunOptions {
  /// Retain the materialized partitions in the result (needed by the
  /// processing simulator; costs O(|E|) memory).
  bool keep_partitions = false;
  /// Fail the run if the hard balance cap is violated.
  bool validate = true;
};

/// Runs `partitioner` on `stream` and returns measurements. The
/// validation step recomputes all quality metrics from the produced
/// edge lists, never trusting partitioner-internal state.
StatusOr<RunResult> RunPartitioner(Partitioner& partitioner,
                                   EdgeStream& stream,
                                   const PartitionConfig& config,
                                   const RunOptions& options = {});

}  // namespace tpsl

#endif  // TPSL_PARTITION_RUNNER_H_

#include "partition/replication_table.h"

namespace tpsl {

ReplicationTable::ReplicationTable(VertexId num_vertices,
                                   uint32_t num_partitions)
    : num_vertices_(num_vertices),
      num_partitions_(num_partitions),
      bits_(static_cast<uint64_t>(num_vertices) * num_partitions),
      cover_sizes_(num_partitions, 0),
      replica_counts_(num_vertices, 0) {}

DenseBitset ReplicationTable::CoverBitset(PartitionId p) const {
  DenseBitset cover(num_vertices_);
  for (VertexId v = 0; v < num_vertices_; ++v) {
    if (Test(v, p)) {
      cover.Set(v);
    }
  }
  return cover;
}

double ReplicationTable::ReplicationFactor() const {
  const uint64_t covered = CoveredVertices();
  if (covered == 0) {
    return 0.0;
  }
  return static_cast<double>(TotalReplicas()) / static_cast<double>(covered);
}

uint64_t ReplicationTable::CoveredVertices() const {
  uint64_t covered = 0;
  for (uint32_t count : replica_counts_) {
    covered += (count > 0) ? 1 : 0;
  }
  return covered;
}

}  // namespace tpsl

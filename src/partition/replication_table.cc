#include "partition/replication_table.h"

namespace tpsl {

ReplicationTable::ReplicationTable(VertexId num_vertices,
                                   uint32_t num_partitions)
    : num_vertices_(num_vertices),
      num_partitions_(num_partitions),
      bits_((static_cast<uint64_t>(num_vertices) * num_partitions + 63) / 64,
            0),
      cover_sizes_(num_partitions, 0),
      replica_counts_(num_vertices, 0) {}

double ReplicationTable::ReplicationFactor() const {
  const uint64_t covered = CoveredVertices();
  if (covered == 0) {
    return 0.0;
  }
  uint64_t total_replicas = 0;
  for (uint64_t size : cover_sizes_) {
    total_replicas += size;
  }
  return static_cast<double>(total_replicas) / static_cast<double>(covered);
}

uint64_t ReplicationTable::CoveredVertices() const {
  uint64_t covered = 0;
  for (uint32_t count : replica_counts_) {
    covered += (count > 0) ? 1 : 0;
  }
  return covered;
}

}  // namespace tpsl

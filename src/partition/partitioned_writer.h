#ifndef TPSL_PARTITION_PARTITIONED_WRITER_H_
#define TPSL_PARTITION_PARTITIONED_WRITER_H_

#include <cstdio>
#include <string>
#include <vector>

#include "partition/assignment_sink.h"
#include "util/status.h"

namespace tpsl {

/// Streams edge assignments straight to one binary edge-list file per
/// partition — the paper's write-back step ("writes back the
/// partitioned graph data to storage") without materializing the
/// partitions in memory. Files are named
/// `<prefix>.part<id>.bin`; Finish() flushes, closes and writes a
/// plain-text manifest `<prefix>.manifest` with per-partition edge
/// counts.
class PartitionedWriter : public AssignmentSink {
 public:
  /// Opens `num_partitions` output files. Check status() before use.
  PartitionedWriter(const std::string& prefix, uint32_t num_partitions);
  ~PartitionedWriter() override;

  PartitionedWriter(const PartitionedWriter&) = delete;
  PartitionedWriter& operator=(const PartitionedWriter&) = delete;

  /// Non-OK if any file failed to open or a write failed so far.
  const Status& status() const { return status_; }

  void Assign(const Edge& edge, PartitionId partition) override;

  /// Flushes and closes all files and writes the manifest. Must be
  /// called exactly once; returns the terminal status.
  Status Finish();

  /// Path of partition p's file.
  std::string PartitionPath(PartitionId p) const;

  const std::vector<uint64_t>& edge_counts() const { return edge_counts_; }

  /// Total payload bytes streamed to disk so far.
  uint64_t bytes_written() const {
    uint64_t edges = 0;
    for (uint64_t count : edge_counts_) edges += count;
    return edges * sizeof(Edge);
  }

  /// The writer's resident state: one stdio buffer per open partition
  /// file plus the count vector — O(k), independent of |E|. Part of the
  /// whole-run state accounting when the writer is the spill sink.
  uint64_t StateBytes() const override;

 private:
  std::string prefix_;
  std::vector<std::FILE*> files_;
  std::vector<uint64_t> edge_counts_;
  Status status_;
  bool finished_ = false;
};

}  // namespace tpsl

#endif  // TPSL_PARTITION_PARTITIONED_WRITER_H_

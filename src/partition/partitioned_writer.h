#ifndef TPSL_PARTITION_PARTITIONED_WRITER_H_
#define TPSL_PARTITION_PARTITIONED_WRITER_H_

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "io/edge_block_format.h"
#include "partition/assignment_sink.h"
#include "util/status.h"

namespace tpsl {

/// Streams edge assignments straight to one compressed edge-block file
/// per partition (io/edge_block_format.h) — the paper's write-back
/// step ("writes back the partitioned graph data to storage") without
/// materializing the partitions in memory, and without paying
/// full-width I/O for them either. Files are named
/// `<prefix>.part<id>.bin`; Finish() seals each file with its trailer,
/// closes it, and writes a plain-text manifest `<prefix>.manifest`
/// with per-partition edge counts.
///
/// Assignments accumulate into one block buffer per partition; a full
/// block is encoded on the assigning thread and handed to a single
/// background writer thread, so encoding the next block overlaps the
/// fwrite of the previous one (double-buffered through a small pool of
/// encoded-block buffers shared across partitions).
///
/// Every fwrite/fclose result is checked; the first failure (e.g. a
/// full disk) latches into sticky Health(), further assignments are
/// dropped, and Finish() reports the error — a spill that lost edges
/// can never look like a successful run.
class PartitionedWriter : public AssignmentSink {
 public:
  /// Opens `num_partitions` output files. Check status() before use.
  /// `block_edges` is the compression block capacity per partition.
  PartitionedWriter(const std::string& prefix, uint32_t num_partitions,
                    uint32_t block_edges = io::kSpillBlockEdges);
  ~PartitionedWriter() override;

  PartitionedWriter(const PartitionedWriter&) = delete;
  PartitionedWriter& operator=(const PartitionedWriter&) = delete;

  /// Non-OK if any file failed to open or a write failed so far.
  Status status() const { return Health(); }

  /// Sticky spill health (open/write/close failures, including those
  /// observed on the background writer thread).
  Status Health() const override;

  void Assign(const Edge& edge, PartitionId partition) override;

  /// Flushes tail blocks, seals every file with its trailer, closes
  /// them and writes the manifest. Must be called exactly once;
  /// returns the terminal status.
  Status Finish();

  /// Path of partition p's file.
  std::string PartitionPath(PartitionId p) const;

  const std::vector<uint64_t>& edge_counts() const { return edge_counts_; }

  /// Compressed bytes streamed to disk so far (headers and, after
  /// Finish(), trailers included) — the bytes the device actually saw.
  uint64_t bytes_written() const { return bytes_written_; }

  /// The writer's resident state: one stdio buffer and one block
  /// buffer per partition plus the shared encoded-buffer pool — O(k),
  /// independent of |E|. Part of the whole-run state accounting when
  /// the writer is the spill sink.
  uint64_t StateBytes() const override;

 private:
  struct Part {
    std::FILE* file = nullptr;
    std::vector<Edge> block;
    size_t fill = 0;
    uint64_t edge_checksum = io::kFnv1a64OffsetBasis;
  };

  struct Pending {
    uint32_t part;
    size_t buffer;
    size_t bytes;
  };

  void FlushPart(PartitionId p);
  size_t AcquireBuffer();
  void WriterLoop();
  void StopWriterThread();

  std::string prefix_;
  const uint32_t block_edges_;
  std::vector<Part> parts_;
  std::vector<uint64_t> edge_counts_;
  uint64_t bytes_written_ = 0;
  bool finished_ = false;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable free_cv_;
  std::vector<std::vector<uint8_t>> buffers_;
  std::vector<size_t> free_buffers_;
  std::deque<Pending> queue_;
  bool stop_ = false;
  Status status_;  // sticky; guarded by mutex_
  /// Lock-free mirror of "status_ is non-OK" for the per-edge path.
  std::atomic<bool> failed_{false};
  std::thread writer_;
  bool writer_running_ = false;
};

}  // namespace tpsl

#endif  // TPSL_PARTITION_PARTITIONED_WRITER_H_

#ifndef TPSL_PARTITION_ASSIGNMENT_SINK_H_
#define TPSL_PARTITION_ASSIGNMENT_SINK_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/types.h"

namespace tpsl {

/// Receives the (edge -> partition) decisions of a partitioner as they
/// are made. Mirrors the paper's implementation note: the partitioner
/// "writes back the partitioned graph data to storage" — a sink is the
/// seam where that write-back (or any consumer) plugs in.
class AssignmentSink {
 public:
  virtual ~AssignmentSink() = default;

  virtual void Assign(const Edge& edge, PartitionId partition) = 0;
};

/// Counts edges per partition; the cheapest sink for quality metrics.
class CountingSink : public AssignmentSink {
 public:
  explicit CountingSink(uint32_t num_partitions) : loads_(num_partitions, 0) {}

  void Assign(const Edge& /*edge*/, PartitionId partition) override {
    ++loads_[partition];
  }

  const std::vector<uint64_t>& loads() const { return loads_; }

  uint64_t total() const {
    uint64_t sum = 0;
    for (uint64_t load : loads_) sum += load;
    return sum;
  }

 private:
  std::vector<uint64_t> loads_;
};

/// Materializes per-partition edge lists; used by the distributed
/// processing simulator and by partitioned-output writers.
class EdgeListSink : public AssignmentSink {
 public:
  explicit EdgeListSink(uint32_t num_partitions) : partitions_(num_partitions) {}

  void Assign(const Edge& edge, PartitionId partition) override {
    partitions_[partition].push_back(edge);
  }

  const std::vector<std::vector<Edge>>& partitions() const {
    return partitions_;
  }

  /// Moves the materialized partitions out; the sink is empty after.
  std::vector<std::vector<Edge>> TakePartitions() {
    return std::move(partitions_);
  }

 private:
  std::vector<std::vector<Edge>> partitions_;
};

/// Fans one assignment out to several sinks.
class TeeSink : public AssignmentSink {
 public:
  TeeSink(AssignmentSink* a, AssignmentSink* b) : a_(a), b_(b) {}

  void Assign(const Edge& edge, PartitionId partition) override {
    a_->Assign(edge, partition);
    b_->Assign(edge, partition);
  }

 private:
  AssignmentSink* a_;
  AssignmentSink* b_;
};

}  // namespace tpsl

#endif  // TPSL_PARTITION_ASSIGNMENT_SINK_H_

#ifndef TPSL_PARTITION_ASSIGNMENT_SINK_H_
#define TPSL_PARTITION_ASSIGNMENT_SINK_H_

#include <cstdint>
#include <initializer_list>
#include <utility>
#include <vector>

#include "graph/types.h"
#include "util/status.h"

namespace tpsl {

/// One (edge -> partition) decision, the unit of the batched sink
/// protocol below.
struct Assignment {
  Edge edge;
  PartitionId partition;
};

/// Receives the (edge -> partition) decisions of a partitioner as they
/// are made. Mirrors the paper's implementation note: the partitioner
/// "writes back the partitioned graph data to storage" — a sink is the
/// seam where that write-back (or any consumer) plugs in.
///
/// Sinks compose into a pipeline: the runner fans one assignment out to
/// several sinks through a TeeSink (quality, validation, spill-to-disk,
/// optional in-memory materialization), so measurement never forces
/// edge-set materialization.
class AssignmentSink {
 public:
  virtual ~AssignmentSink() = default;

  virtual void Assign(const Edge& edge, PartitionId partition) = 0;

  /// Batched variant: one scored batch delivered in one virtual call,
  /// so a parallel scoring pass amortizes the dispatch and a
  /// concurrent-safe sink can absorb the whole batch into one shard.
  /// Default forwards per edge, preserving Assign()'s exact semantics
  /// and ordering for sequential sinks.
  virtual void AssignBatch(const Assignment* batch, size_t count) {
    for (size_t i = 0; i < count; ++i) {
      Assign(batch[i].edge, batch[i].partition);
    }
  }

  /// Whether AssignBatch may be called concurrently from multiple
  /// threads. Sinks that return true are the fast path of a parallel
  /// partitioner: the scoring pass skips its serializing sink mutex
  /// entirely. Default false: the runner (or the partitioner's mutex)
  /// guarantees single-threaded delivery.
  virtual bool ConcurrentSafe() const { return false; }

  /// Bytes of heap memory this sink holds. Feeds the whole-run
  /// state-bytes accounting (paper Fig. 4 memory column): partitioner
  /// state alone under-reports a run whose sinks keep replication
  /// bitsets or writer buffers alive.
  virtual uint64_t StateBytes() const { return 0; }

  /// Sticky sink health. Assign()/AssignBatch() have no error channel
  /// (scoring cannot abort mid-batch), so sinks that can fail — a
  /// spill writer hitting a full disk, an async handoff whose
  /// downstream died — latch the first failure here. The runner checks
  /// every pipeline sink after the pass; a run whose spill silently
  /// dropped edges must not report success.
  virtual Status Health() const { return Status::OK(); }
};

/// Counts edges per partition; the cheapest sink for quality metrics.
class CountingSink : public AssignmentSink {
 public:
  explicit CountingSink(uint32_t num_partitions) : loads_(num_partitions, 0) {}

  void Assign(const Edge& /*edge*/, PartitionId partition) override {
    ++loads_[partition];
  }

  const std::vector<uint64_t>& loads() const { return loads_; }

  uint64_t total() const {
    uint64_t sum = 0;
    for (uint64_t load : loads_) sum += load;
    return sum;
  }

  uint64_t StateBytes() const override {
    return loads_.capacity() * sizeof(uint64_t);
  }

 private:
  std::vector<uint64_t> loads_;
};

/// Materializes per-partition edge lists; used by the distributed
/// processing simulator and by partitioned-output writers. Costs
/// O(|E|) memory — the runner only adds it to the pipeline when the
/// caller explicitly opts in (RunOptions::keep_partitions).
class EdgeListSink : public AssignmentSink {
 public:
  explicit EdgeListSink(uint32_t num_partitions) : partitions_(num_partitions) {}

  void Assign(const Edge& edge, PartitionId partition) override {
    partitions_[partition].push_back(edge);
  }

  const std::vector<std::vector<Edge>>& partitions() const {
    return partitions_;
  }

  /// Moves the materialized partitions out; the sink is empty after.
  std::vector<std::vector<Edge>> TakePartitions() {
    return std::move(partitions_);
  }

  uint64_t StateBytes() const override {
    uint64_t bytes = partitions_.capacity() * sizeof(std::vector<Edge>);
    for (const std::vector<Edge>& part : partitions_) {
      bytes += part.capacity() * sizeof(Edge);
    }
    return bytes;
  }

 private:
  std::vector<std::vector<Edge>> partitions_;
};

/// Fans one assignment out to any number of sinks, in order. The
/// runner's pipeline hub: quality, validation, spill and optional
/// materialization all hang off one TeeSink.
class TeeSink : public AssignmentSink {
 public:
  TeeSink() = default;
  explicit TeeSink(std::vector<AssignmentSink*> sinks)
      : sinks_(std::move(sinks)) {}
  TeeSink(std::initializer_list<AssignmentSink*> sinks) : sinks_(sinks) {}

  void Add(AssignmentSink* sink) { sinks_.push_back(sink); }

  void Assign(const Edge& edge, PartitionId partition) override {
    for (AssignmentSink* sink : sinks_) {
      sink->Assign(edge, partition);
    }
  }

  void AssignBatch(const Assignment* batch, size_t count) override {
    for (AssignmentSink* sink : sinks_) {
      sink->AssignBatch(batch, count);
    }
  }

  /// A tee is only as concurrent as its least concurrent child.
  bool ConcurrentSafe() const override {
    for (const AssignmentSink* sink : sinks_) {
      if (!sink->ConcurrentSafe()) {
        return false;
      }
    }
    return true;
  }

  /// Sum over the attached sinks (the tee itself holds only pointers).
  uint64_t StateBytes() const override {
    uint64_t bytes = sinks_.capacity() * sizeof(AssignmentSink*);
    for (const AssignmentSink* sink : sinks_) {
      bytes += sink->StateBytes();
    }
    return bytes;
  }

  /// First non-OK child wins (delivery order, same as Assign()).
  Status Health() const override {
    for (const AssignmentSink* sink : sinks_) {
      Status status = sink->Health();
      if (!status.ok()) {
        return status;
      }
    }
    return Status::OK();
  }

  size_t num_sinks() const { return sinks_.size(); }

 private:
  std::vector<AssignmentSink*> sinks_;
};

}  // namespace tpsl

#endif  // TPSL_PARTITION_ASSIGNMENT_SINK_H_

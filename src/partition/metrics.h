#ifndef TPSL_PARTITION_METRICS_H_
#define TPSL_PARTITION_METRICS_H_

#include <cstdint>
#include <vector>

#include "graph/types.h"
#include "util/status.h"

namespace tpsl {

/// Quality of a finished edge partitioning, recomputed from scratch
/// from the materialized per-partition edge lists (independent of any
/// partitioner-internal bookkeeping, so it doubles as an oracle in
/// tests).
struct PartitionQuality {
  /// RF = (1/|V|) Σ_i |V(p_i)| over non-isolated vertices (paper §II-A).
  double replication_factor = 0.0;

  /// Measured balance: max_i |p_i| / (|E| / k). The paper reports this
  /// as α when a partitioner misses the configured bound.
  double measured_alpha = 0.0;

  uint64_t num_edges = 0;
  uint64_t num_covered_vertices = 0;
  uint64_t max_partition_size = 0;
  uint64_t min_partition_size = 0;
  std::vector<uint64_t> partition_sizes;
};

/// Computes quality from per-partition edge lists.
PartitionQuality ComputeQuality(const std::vector<std::vector<Edge>>& parts);

/// Validates the partitioning contract: every partition within
/// `capacity`, total edges equals `expected_edges`. Returns an error
/// describing the first violation.
Status ValidatePartitioning(const std::vector<std::vector<Edge>>& parts,
                            uint64_t expected_edges, uint64_t capacity);

}  // namespace tpsl

#endif  // TPSL_PARTITION_METRICS_H_

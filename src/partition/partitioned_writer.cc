#include "partition/partitioned_writer.h"

#include <cerrno>
#include <cstring>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace tpsl {

namespace {

obs::Counter* SpillBytesCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Default().GetCounter("spill.bytes_written");
  return counter;
}

obs::Histogram* SpillFlushHist() {
  static obs::Histogram* hist = obs::MetricsRegistry::Default().GetHistogram(
      "spill.flush_seconds");
  return hist;
}

}  // namespace

PartitionedWriter::PartitionedWriter(const std::string& prefix,
                                     uint32_t num_partitions)
    : prefix_(prefix),
      files_(num_partitions, nullptr),
      edge_counts_(num_partitions, 0) {
  for (uint32_t p = 0; p < num_partitions; ++p) {
    const std::string path = PartitionPath(p);
    files_[p] = std::fopen(path.c_str(), "wb");
    if (files_[p] == nullptr) {
      status_ = Status::IoError("cannot open " + path + ": " +
                                std::strerror(errno));
      return;
    }
  }
}

PartitionedWriter::~PartitionedWriter() {
  for (std::FILE* file : files_) {
    if (file != nullptr) {
      std::fclose(file);
    }
  }
}

std::string PartitionedWriter::PartitionPath(PartitionId p) const {
  return prefix_ + ".part" + std::to_string(p) + ".bin";
}

void PartitionedWriter::Assign(const Edge& edge, PartitionId partition) {
  if (!status_.ok()) {
    return;
  }
  if (std::fwrite(&edge, sizeof(Edge), 1, files_[partition]) != 1) {
    status_ = Status::IoError("short write to " + PartitionPath(partition));
    return;
  }
  ++edge_counts_[partition];
}

uint64_t PartitionedWriter::StateBytes() const {
  uint64_t open_files = 0;
  for (const std::FILE* file : files_) {
    open_files += file != nullptr ? 1 : 0;
  }
  // stdio allocates one BUFSIZ buffer per stream on first write.
  return open_files * static_cast<uint64_t>(BUFSIZ) +
         files_.capacity() * sizeof(std::FILE*) +
         edge_counts_.capacity() * sizeof(uint64_t);
}

Status PartitionedWriter::Finish() {
  if (finished_) {
    return Status::FailedPrecondition("Finish() called twice");
  }
  finished_ = true;
  obs::TraceSpan span("spill.finish", "sink");
  SpillBytesCounter()->Add(bytes_written());
  for (size_t p = 0; p < files_.size(); ++p) {
    if (files_[p] != nullptr) {
      // Per-partition flush+close latency: the write-back tail the
      // paper's out-of-core loop pays after the last edge is assigned.
      const int64_t flush_start_ns = obs::TraceNowNanos();
      if (std::fclose(files_[p]) != 0 && status_.ok()) {
        status_ = Status::IoError("close failed for " +
                                  PartitionPath(static_cast<PartitionId>(p)));
      }
      SpillFlushHist()->RecordNanos(
          static_cast<uint64_t>(obs::TraceNowNanos() - flush_start_ns));
      files_[p] = nullptr;
    }
  }
  if (!status_.ok()) {
    return status_;
  }
  const std::string manifest_path = prefix_ + ".manifest";
  std::FILE* manifest = std::fopen(manifest_path.c_str(), "w");
  if (manifest == nullptr) {
    return Status::IoError("cannot open " + manifest_path);
  }
  std::fprintf(manifest, "partitions %zu\n", files_.size());
  for (size_t p = 0; p < files_.size(); ++p) {
    std::fprintf(manifest, "part %zu edges %llu file %s\n", p,
                 static_cast<unsigned long long>(edge_counts_[p]),
                 PartitionPath(static_cast<PartitionId>(p)).c_str());
  }
  if (std::fclose(manifest) != 0) {
    return Status::IoError("close failed for " + manifest_path);
  }
  return Status::OK();
}

}  // namespace tpsl

#include "partition/partitioned_writer.h"

#include <cerrno>
#include <cstring>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace tpsl {

namespace {

/// Encoded-block buffers rotating between the assigning thread and the
/// writer thread. Two keeps the classic double buffer; a couple more
/// absorb bursts where several partitions fill their block at once.
constexpr size_t kWriteBuffers = 4;

obs::Counter* SpillBytesCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Default().GetCounter("spill.bytes_written");
  return counter;
}

obs::Histogram* SpillFlushHist() {
  static obs::Histogram* hist = obs::MetricsRegistry::Default().GetHistogram(
      "spill.flush_seconds");
  return hist;
}

}  // namespace

PartitionedWriter::PartitionedWriter(const std::string& prefix,
                                     uint32_t num_partitions,
                                     uint32_t block_edges)
    : prefix_(prefix),
      block_edges_(block_edges),
      parts_(num_partitions),
      edge_counts_(num_partitions, 0) {
  uint8_t header[io::kEdgeFileHeaderBytes];
  io::EdgeFileHeader file_header;
  file_header.max_block_edges = block_edges_;
  io::EncodeFileHeader(file_header, header);
  for (uint32_t p = 0; p < num_partitions; ++p) {
    const std::string path = PartitionPath(p);
    parts_[p].file = std::fopen(path.c_str(), "wb");
    if (parts_[p].file == nullptr) {
      status_ = Status::IoError("cannot open " + path + ": " +
                                std::strerror(errno));
      failed_.store(true, std::memory_order_relaxed);
      return;
    }
    if (std::fwrite(header, 1, sizeof(header), parts_[p].file) !=
        sizeof(header)) {
      status_ = Status::IoError("header write failed for " + path + ": " +
                                std::strerror(errno));
      failed_.store(true, std::memory_order_relaxed);
      return;
    }
    parts_[p].block.resize(block_edges_);
    bytes_written_ += sizeof(header);
  }
  buffers_.resize(kWriteBuffers);
  for (size_t i = 0; i < kWriteBuffers; ++i) {
    buffers_[i].resize(io::MaxEncodedBlockBytes(block_edges_));
    free_buffers_.push_back(i);
  }
  writer_ = std::thread([this] { WriterLoop(); });
  writer_running_ = true;
}

PartitionedWriter::~PartitionedWriter() {
  StopWriterThread();
  for (Part& part : parts_) {
    if (part.file != nullptr) {
      std::fclose(part.file);
    }
  }
}

void PartitionedWriter::StopWriterThread() {
  if (!writer_running_) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  writer_.join();
  writer_running_ = false;
}

void PartitionedWriter::WriterLoop() {
  for (;;) {
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop with a drained queue
      }
      pending = queue_.front();
      queue_.pop_front();
    }
    const bool ok =
        std::fwrite(buffers_[pending.buffer].data(), 1, pending.bytes,
                    parts_[pending.part].file) == pending.bytes;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!ok && status_.ok()) {
        status_ = Status::IoError("block write failed for " +
                                  PartitionPath(pending.part) + ": " +
                                  std::strerror(errno));
        failed_.store(true, std::memory_order_relaxed);
      }
      free_buffers_.push_back(pending.buffer);
    }
    free_cv_.notify_all();
  }
}

size_t PartitionedWriter::AcquireBuffer() {
  std::unique_lock<std::mutex> lock(mutex_);
  free_cv_.wait(lock, [this] { return !free_buffers_.empty(); });
  const size_t buffer = free_buffers_.back();
  free_buffers_.pop_back();
  return buffer;
}

std::string PartitionedWriter::PartitionPath(PartitionId p) const {
  return prefix_ + ".part" + std::to_string(p) + ".bin";
}

void PartitionedWriter::FlushPart(PartitionId p) {
  Part& part = parts_[p];
  if (part.fill == 0) {
    return;
  }
  // The per-partition digest over decoded edge bytes seals into the
  // trailer; one resumable FNV pass per block keeps it off the
  // per-edge path.
  part.edge_checksum = io::Fnv1a64(part.block.data(),
                                   part.fill * sizeof(Edge),
                                   part.edge_checksum);
  const size_t buffer = AcquireBuffer();
  const size_t bytes =
      io::EncodeEdgeBlock(part.block.data(), part.fill,
                          buffers_[buffer].data());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(Pending{p, buffer, bytes});
  }
  work_cv_.notify_all();
  bytes_written_ += bytes;
  part.fill = 0;
}

void PartitionedWriter::Assign(const Edge& edge, PartitionId partition) {
  if (failed_.load(std::memory_order_relaxed)) {
    return;
  }
  Part& part = parts_[partition];
  part.block[part.fill++] = edge;
  ++edge_counts_[partition];
  if (part.fill == block_edges_) {
    FlushPart(partition);
  }
}

uint64_t PartitionedWriter::StateBytes() const {
  uint64_t open_files = 0;
  uint64_t block_bytes = 0;
  for (const Part& part : parts_) {
    open_files += part.file != nullptr ? 1 : 0;
    block_bytes += part.block.capacity() * sizeof(Edge);
  }
  uint64_t pool_bytes = 0;
  for (const std::vector<uint8_t>& buffer : buffers_) {
    pool_bytes += buffer.capacity();
  }
  // stdio allocates one BUFSIZ buffer per stream on first write.
  return open_files * static_cast<uint64_t>(BUFSIZ) + block_bytes +
         pool_bytes + parts_.capacity() * sizeof(Part) +
         edge_counts_.capacity() * sizeof(uint64_t);
}

Status PartitionedWriter::Health() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return status_;
}

Status PartitionedWriter::Finish() {
  if (finished_) {
    return Status::FailedPrecondition("Finish() called twice");
  }
  finished_ = true;
  obs::TraceSpan span("spill.finish", "sink");
  for (PartitionId p = 0; p < parts_.size(); ++p) {
    FlushPart(p);
  }
  // Tail blocks must be on disk before the trailers go in behind them.
  StopWriterThread();
  for (size_t p = 0; p < parts_.size(); ++p) {
    Part& part = parts_[p];
    if (part.file == nullptr) {
      continue;
    }
    // Per-partition seal+close latency: the write-back tail the
    // paper's out-of-core loop pays after the last edge is assigned.
    const int64_t flush_start_ns = obs::TraceNowNanos();
    io::EdgeFileTrailer trailer;
    trailer.num_edges = edge_counts_[p];
    trailer.edge_checksum = part.edge_checksum;
    uint8_t bytes[io::kEdgeFileTrailerBytes];
    io::EncodeFileTrailer(trailer, bytes);
    std::lock_guard<std::mutex> lock(mutex_);
    if (std::fwrite(bytes, 1, sizeof(bytes), part.file) != sizeof(bytes) &&
        status_.ok()) {
      status_ = Status::IoError(
          "trailer write failed for " +
          PartitionPath(static_cast<PartitionId>(p)) + ": " +
          std::strerror(errno));
      failed_.store(true, std::memory_order_relaxed);
    }
    bytes_written_ += sizeof(bytes);
    if (std::fclose(part.file) != 0 && status_.ok()) {
      status_ = Status::IoError("close failed for " +
                                PartitionPath(static_cast<PartitionId>(p)));
      failed_.store(true, std::memory_order_relaxed);
    }
    part.file = nullptr;
    SpillFlushHist()->RecordNanos(
        static_cast<uint64_t>(obs::TraceNowNanos() - flush_start_ns));
  }
  SpillBytesCounter()->Add(bytes_written_);
  Status status = Health();
  if (!status.ok()) {
    return status;
  }
  const std::string manifest_path = prefix_ + ".manifest";
  std::FILE* manifest = std::fopen(manifest_path.c_str(), "w");
  if (manifest == nullptr) {
    return Status::IoError("cannot open " + manifest_path);
  }
  std::fprintf(manifest, "partitions %zu\n", parts_.size());
  std::fprintf(manifest, "format blocks1\n");
  for (size_t p = 0; p < parts_.size(); ++p) {
    std::fprintf(manifest, "part %zu edges %llu file %s\n", p,
                 static_cast<unsigned long long>(edge_counts_[p]),
                 PartitionPath(static_cast<PartitionId>(p)).c_str());
  }
  if (std::fclose(manifest) != 0) {
    return Status::IoError("close failed for " + manifest_path);
  }
  return Status::OK();
}

}  // namespace tpsl

#ifndef TPSL_PARTITION_PARTITIONER_H_
#define TPSL_PARTITION_PARTITIONER_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "exec/exec_context.h"
#include "graph/edge_stream.h"
#include "graph/types.h"
#include "obs/trace.h"
#include "partition/assignment_sink.h"
#include "util/status.h"
#include "util/timer.h"

namespace tpsl {

/// User-facing configuration of an edge-partitioning run, matching the
/// paper's problem statement (§II-A): k partitions, balance factor α.
struct PartitionConfig {
  /// Number of partitions (k > 1 in the paper; we also accept k == 1).
  uint32_t num_partitions = 32;

  /// Imbalance factor α >= 1: no partition may exceed α·|E|/k edges.
  double balance_factor = 1.05;

  /// Seed for every randomized decision (hashing, tie-breaking).
  uint64_t seed = 42;

  /// Execution engine settings (worker threads, batch size, pool) for
  /// partitioners with parallel paths — parallel 2PS-L/2PS-HDRF and
  /// DNE run on exec.threads workers from exec.pool_or_global();
  /// sequential partitioners ignore it. The defaults (threads=0 =
  /// hardware concurrency) preserve the old behavior.
  exec::ExecContext exec;

  /// Maximum edge capacity of one partition for a graph with
  /// `num_edges` edges: ceil(α·|E|/k), but never below ceil(|E|/k) so a
  /// feasible assignment always exists.
  uint64_t PartitionCapacity(uint64_t num_edges) const {
    const double cap = balance_factor * static_cast<double>(num_edges) /
                       num_partitions;
    uint64_t capacity = static_cast<uint64_t>(cap);
    if (static_cast<double>(capacity) < cap) {
      ++capacity;
    }
    const uint64_t floor_cap =
        (num_edges + num_partitions - 1) / num_partitions;
    return capacity < floor_cap ? floor_cap : capacity;
  }
};

/// Run-time / state accounting emitted by every partitioner; feeds the
/// paper's Fig. 4 (run-time, memory) and Fig. 5 (phase breakdown).
struct PartitionStats {
  /// Wall-clock seconds per named phase, e.g. "degree", "clustering",
  /// "partitioning". Sum = total partitioning time.
  std::map<std::string, double> phase_seconds;

  /// Number of full passes over the edge stream performed.
  uint32_t stream_passes = 0;

  /// Bytes of algorithm state held at peak (replication tables, degree
  /// arrays, cluster maps, buffers, adjacency if in-memory).
  uint64_t state_bytes = 0;

  /// 2PS-specific: edges assigned in the pre-partitioning step vs the
  /// scoring pass (paper Fig. 6). Zero for other partitioners.
  uint64_t prepartitioned_edges = 0;
  uint64_t remaining_edges = 0;

  double TotalSeconds() const {
    double total = 0;
    for (const auto& [name, seconds] : phase_seconds) {
      total += seconds;
    }
    return total;
  }

  /// Aggregates per-worker stats from a parallel pass into one record
  /// whose phase_seconds stay wall-clock: concurrent workers overlap,
  /// so a phase takes as long as its slowest worker (max), not the sum
  /// of their CPU time. Counts (passes are shared; state and edge
  /// tallies are disjoint) sum where disjoint, max where shared. With
  /// one worker this is the identity.
  static PartitionStats MergeWorkers(
      const std::vector<PartitionStats>& workers) {
    PartitionStats merged;
    for (const PartitionStats& worker : workers) {
      for (const auto& [name, seconds] : worker.phase_seconds) {
        double& slot = merged.phase_seconds[name];
        slot = std::max(slot, seconds);
      }
      merged.stream_passes = std::max(merged.stream_passes,
                                      worker.stream_passes);
      merged.state_bytes += worker.state_bytes;
      merged.prepartitioned_edges += worker.prepartitioned_edges;
      merged.remaining_edges += worker.remaining_edges;
    }
    return merged;
  }
};

/// Times one named partitioner phase: accumulates wall seconds into
/// stats->phase_seconds[phase] (the paper's Fig. 5 breakdown) and, when
/// tracing is on, emits a matching "phase"-category trace span. The
/// single phase-accounting primitive for every partitioner; `phase`
/// must be a string literal (the tracer stores the pointer).
class PhaseTimer {
 public:
  PhaseTimer(PartitionStats* stats, const char* phase)
      : sink_(stats != nullptr ? &stats->phase_seconds[phase] : nullptr),
        span_(phase, "phase") {}
  ~PhaseTimer() {
    if (sink_ != nullptr) {
      *sink_ += timer_.ElapsedSeconds();
    }
  }

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  double* sink_;
  obs::TraceSpan span_;
  WallTimer timer_;
};

/// Abstract edge partitioner. Implementations must
///  * assign every edge of the stream exactly once via `sink`,
///  * never exceed config.PartitionCapacity(|E|) edges per partition,
///  * touch the graph only through `stream` (multi-pass sequential).
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// Human-readable identifier used in experiment output ("2PS-L",
  /// "HDRF", ...).
  virtual std::string name() const = 0;

  /// Whether this partitioner guarantees the hard α·|E|/k cap. Pure
  /// hashing partitioners (DBH, Grid, uniform hash) do not — the paper
  /// annotates their measured α in the plots instead (Fig. 4).
  virtual bool enforces_balance_cap() const { return true; }

  /// Partitions `stream` into `config.num_partitions` parts, reporting
  /// assignments to `sink`. `stats` may be null.
  virtual Status Partition(EdgeStream& stream, const PartitionConfig& config,
                           AssignmentSink& sink, PartitionStats* stats) = 0;
};

}  // namespace tpsl

#endif  // TPSL_PARTITION_PARTITIONER_H_

#include "partition/sink_pipeline.h"

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace tpsl {

namespace {

obs::Gauge* ReplicationFactorGauge() {
  static obs::Gauge* gauge = obs::MetricsRegistry::Default().GetGauge(
      "quality.replication_factor");
  return gauge;
}

obs::Gauge* MaxLoadSkewGauge() {
  static obs::Gauge* gauge =
      obs::MetricsRegistry::Default().GetGauge("quality.max_load_skew");
  return gauge;
}

obs::Histogram* QualitySampleHist() {
  static obs::Histogram* hist = obs::MetricsRegistry::Default().GetHistogram(
      "sink.quality_sample_seconds");
  return hist;
}

}  // namespace

void StreamingQualitySink::SampleQuality() const {
  const int64_t start_ns = obs::TraceNowNanos();
  const double rf = table_.ReplicationFactor();
  uint64_t max_load = 0;
  uint64_t total = 0;
  for (uint64_t load : loads_) {
    max_load = std::max(max_load, load);
    total += load;
  }
  const double expected =
      static_cast<double>(total) / static_cast<double>(loads_.size());
  const double skew =
      expected > 0.0 ? static_cast<double>(max_load) / expected : 0.0;
  ReplicationFactorGauge()->Set(rf);
  MaxLoadSkewGauge()->Set(skew);
  obs::EmitCounter("quality.replication_factor", rf);
  obs::EmitCounter("quality.max_load_skew", skew);
  QualitySampleHist()->RecordNanos(
      static_cast<uint64_t>(obs::TraceNowNanos() - start_ns));
}

PartitionQuality StreamingQualitySink::Quality() const {
  PartitionQuality quality;
  quality.partition_sizes = loads_;
  for (uint64_t load : loads_) {
    quality.num_edges += load;
  }
  quality.num_covered_vertices = table_.CoveredVertices();
  quality.replication_factor = table_.ReplicationFactor();
  if (!loads_.empty()) {
    quality.max_partition_size =
        *std::max_element(loads_.begin(), loads_.end());
    quality.min_partition_size =
        *std::min_element(loads_.begin(), loads_.end());
    if (quality.num_edges > 0) {
      const double expected = static_cast<double>(quality.num_edges) /
                              static_cast<double>(loads_.size());
      quality.measured_alpha =
          static_cast<double>(quality.max_partition_size) / expected;
    }
  }
  return quality;
}

ShardedQualitySink::ShardedQualitySink(uint32_t num_partitions,
                                       uint32_t num_shards)
    : num_partitions_(num_partitions) {
  shards_.reserve(num_shards > 0 ? num_shards : 1);
  for (uint32_t s = 0; s < (num_shards > 0 ? num_shards : 1); ++s) {
    auto shard = std::make_unique<Shard>();
    shard->loads.assign(num_partitions, 0);
    shards_.push_back(std::move(shard));
  }
}

void ShardedQualitySink::AssignBatch(const Assignment* batch, size_t count) {
  if (count == 0) {
    return;
  }
  // Lease any free shard: with one shard per worker a free one always
  // exists when callers are the scoring workers, so the scan is one
  // probe in the common case; the wrap-around spin is a safety net for
  // oversubscribed callers.
  Shard* shard = nullptr;
  for (size_t i = 0;; ++i) {
    Shard& candidate = *shards_[i % shards_.size()];
    if (!candidate.in_use.exchange(true, std::memory_order_acquire)) {
      shard = &candidate;
      break;
    }
  }
  for (size_t i = 0; i < count; ++i) {
    const Edge& e = batch[i].edge;
    const PartitionId p = batch[i].partition;
    const VertexId top = std::max(e.first, e.second);
    if (top >= shard->num_vertices) {
      shard->num_vertices = top + 1;
      shard->bits.Resize(static_cast<uint64_t>(shard->num_vertices) *
                         num_partitions_);
    }
    shard->bits.Set(static_cast<uint64_t>(e.first) * num_partitions_ + p);
    shard->bits.Set(static_cast<uint64_t>(e.second) * num_partitions_ + p);
    ++shard->loads[p];
  }
  shard->in_use.store(false, std::memory_order_release);
}

PartitionQuality ShardedQualitySink::Quality() const {
  // Word-parallel merge: one OR per shard into a bitset sized for the
  // largest shard, then a single ascending set-bit scan yields both
  // integer terms of the replication factor.
  VertexId num_vertices = 0;
  for (const auto& shard : shards_) {
    num_vertices = std::max(num_vertices, shard->num_vertices);
  }
  DenseBitset merged(static_cast<uint64_t>(num_vertices) * num_partitions_);
  std::vector<uint64_t> loads(num_partitions_, 0);
  for (const auto& shard : shards_) {
    merged.InplaceOr(shard->bits);
    for (uint32_t p = 0; p < num_partitions_; ++p) {
      loads[p] += shard->loads[p];
    }
  }
  // total replicas = set bits (a (v,p) bit is one replica); covered
  // vertices = rows with any bit. ForEachSetBit ascends, so a new row
  // shows up as a jump in bit/k — the same integers the sequential
  // sink's incremental counters hold at the end of the stream.
  uint64_t total_replicas = 0;
  uint64_t covered = 0;
  uint64_t last_row = ~uint64_t{0};
  merged.ForEachSetBit([&](uint64_t bit) {
    ++total_replicas;
    const uint64_t row = bit / num_partitions_;
    if (row != last_row) {
      ++covered;
      last_row = row;
    }
  });

  // From here on: field-for-field the arithmetic of
  // StreamingQualitySink::Quality() / ReplicationTable, so the two
  // sinks agree to the last bit on identical assignments.
  PartitionQuality quality;
  quality.partition_sizes = loads;
  for (uint64_t load : loads) {
    quality.num_edges += load;
  }
  quality.num_covered_vertices = covered;
  quality.replication_factor =
      covered == 0 ? 0.0
                   : static_cast<double>(total_replicas) /
                         static_cast<double>(covered);
  if (!loads.empty()) {
    quality.max_partition_size = *std::max_element(loads.begin(), loads.end());
    quality.min_partition_size = *std::min_element(loads.begin(), loads.end());
    if (quality.num_edges > 0) {
      const double expected = static_cast<double>(quality.num_edges) /
                              static_cast<double>(loads.size());
      quality.measured_alpha =
          static_cast<double>(quality.max_partition_size) / expected;
    }
  }
  return quality;
}

uint64_t ShardedQualitySink::StateBytes() const {
  uint64_t bytes = shards_.capacity() * sizeof(std::unique_ptr<Shard>);
  for (const auto& shard : shards_) {
    bytes += sizeof(Shard) + shard->bits.HeapBytes() +
             shard->loads.capacity() * sizeof(uint64_t);
  }
  return bytes;
}

AsyncHandoffSink::AsyncHandoffSink(AssignmentSink* downstream,
                                   size_t max_queued_chunks)
    : downstream_(downstream),
      max_queued_chunks_(max_queued_chunks > 0 ? max_queued_chunks : 1) {}

AsyncHandoffSink::~AsyncHandoffSink() { Finish(); }

void AsyncHandoffSink::AssignBatch(const Assignment* batch, size_t count) {
  if (count == 0) {
    return;
  }
  std::vector<Assignment> chunk(batch, batch + count);
  std::unique_lock<std::mutex> lock(mutex_);
  if (!started_) {
    started_ = true;
    drainer_ = std::thread([this]() { DrainLoop(); });
  }
  producer_cv_.wait(lock, [this]() {
    return queue_.size() < max_queued_chunks_;
  });
  queue_.push_back(std::move(chunk));
  lock.unlock();
  drainer_cv_.notify_one();
}

void AsyncHandoffSink::DrainLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    drainer_cv_.wait(lock, [this]() { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      return;  // stop_ and drained: everything delivered
    }
    std::vector<Assignment> chunk = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    producer_cv_.notify_one();
    downstream_->AssignBatch(chunk.data(), chunk.size());
    lock.lock();
    if (health_.ok()) {
      // The drainer is the only thread touching the downstream during
      // a pass, so this is the one place its failure can be observed
      // promptly.
      health_ = downstream_->Health();
    }
  }
}

Status AsyncHandoffSink::Health() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!health_.ok()) {
    return health_;
  }
  if (!started_) {
    // No drainer in flight (never started, or joined by Finish): the
    // downstream is quiescent and safe to inspect directly.
    return downstream_->Health();
  }
  return health_;
}

void AsyncHandoffSink::Finish() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
    if (started_) {
      to_join = std::move(drainer_);
      started_ = false;
    }
  }
  drainer_cv_.notify_one();
  if (to_join.joinable()) {
    to_join.join();
  }
  // A late AssignBatch after Finish (none in the runner's sequencing)
  // still delivers: it restarts the drainer, which drains and exits on
  // the sticky stop_; the destructor's Finish joins it.
}

uint64_t AsyncHandoffSink::StateBytes() const {
  // The queue is transient back-pressure memory, not algorithm state;
  // report the downstream sinks, which are the pipeline's real
  // footprint.
  return downstream_->StateBytes();
}

void ValidatingSink::Assign(const Edge& /*edge*/, PartitionId partition) {
  const uint64_t load = ++loads_[partition];
  if (load > capacity_ && status_.ok()) {
    status_ = Status::FailedPrecondition(
        "partition " + std::to_string(partition) + " exceeded capacity " +
        std::to_string(capacity_) + " mid-stream");
  }
}

Status ValidatingSink::Finish(uint64_t expected_edges,
                              uint64_t capacity) const {
  TPSL_RETURN_IF_ERROR(status_);
  uint64_t total = 0;
  for (size_t p = 0; p < loads_.size(); ++p) {
    if (loads_[p] > capacity) {
      return Status::FailedPrecondition(
          "partition " + std::to_string(p) + " holds " +
          std::to_string(loads_[p]) + " edges, capacity " +
          std::to_string(capacity));
    }
    total += loads_[p];
  }
  if (total != expected_edges) {
    return Status::FailedPrecondition(
        "assigned " + std::to_string(total) + " edges, expected " +
        std::to_string(expected_edges));
  }
  return Status::OK();
}

}  // namespace tpsl

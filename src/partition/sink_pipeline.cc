#include "partition/sink_pipeline.h"

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace tpsl {

namespace {

obs::Gauge* ReplicationFactorGauge() {
  static obs::Gauge* gauge = obs::MetricsRegistry::Default().GetGauge(
      "quality.replication_factor");
  return gauge;
}

obs::Gauge* MaxLoadSkewGauge() {
  static obs::Gauge* gauge =
      obs::MetricsRegistry::Default().GetGauge("quality.max_load_skew");
  return gauge;
}

obs::Histogram* QualitySampleHist() {
  static obs::Histogram* hist = obs::MetricsRegistry::Default().GetHistogram(
      "sink.quality_sample_seconds");
  return hist;
}

}  // namespace

void StreamingQualitySink::SampleQuality() const {
  const int64_t start_ns = obs::TraceNowNanos();
  const double rf = table_.ReplicationFactor();
  uint64_t max_load = 0;
  uint64_t total = 0;
  for (uint64_t load : loads_) {
    max_load = std::max(max_load, load);
    total += load;
  }
  const double expected =
      static_cast<double>(total) / static_cast<double>(loads_.size());
  const double skew =
      expected > 0.0 ? static_cast<double>(max_load) / expected : 0.0;
  ReplicationFactorGauge()->Set(rf);
  MaxLoadSkewGauge()->Set(skew);
  obs::EmitCounter("quality.replication_factor", rf);
  obs::EmitCounter("quality.max_load_skew", skew);
  QualitySampleHist()->RecordNanos(
      static_cast<uint64_t>(obs::TraceNowNanos() - start_ns));
}

PartitionQuality StreamingQualitySink::Quality() const {
  PartitionQuality quality;
  quality.partition_sizes = loads_;
  for (uint64_t load : loads_) {
    quality.num_edges += load;
  }
  quality.num_covered_vertices = table_.CoveredVertices();
  quality.replication_factor = table_.ReplicationFactor();
  if (!loads_.empty()) {
    quality.max_partition_size =
        *std::max_element(loads_.begin(), loads_.end());
    quality.min_partition_size =
        *std::min_element(loads_.begin(), loads_.end());
    if (quality.num_edges > 0) {
      const double expected = static_cast<double>(quality.num_edges) /
                              static_cast<double>(loads_.size());
      quality.measured_alpha =
          static_cast<double>(quality.max_partition_size) / expected;
    }
  }
  return quality;
}

void ValidatingSink::Assign(const Edge& /*edge*/, PartitionId partition) {
  const uint64_t load = ++loads_[partition];
  if (load > capacity_ && status_.ok()) {
    status_ = Status::FailedPrecondition(
        "partition " + std::to_string(partition) + " exceeded capacity " +
        std::to_string(capacity_) + " mid-stream");
  }
}

Status ValidatingSink::Finish(uint64_t expected_edges,
                              uint64_t capacity) const {
  TPSL_RETURN_IF_ERROR(status_);
  uint64_t total = 0;
  for (size_t p = 0; p < loads_.size(); ++p) {
    if (loads_[p] > capacity) {
      return Status::FailedPrecondition(
          "partition " + std::to_string(p) + " holds " +
          std::to_string(loads_[p]) + " edges, capacity " +
          std::to_string(capacity));
    }
    total += loads_[p];
  }
  if (total != expected_edges) {
    return Status::FailedPrecondition(
        "assigned " + std::to_string(total) + " edges, expected " +
        std::to_string(expected_edges));
  }
  return Status::OK();
}

}  // namespace tpsl

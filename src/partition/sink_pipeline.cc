#include "partition/sink_pipeline.h"

#include <string>

namespace tpsl {

PartitionQuality StreamingQualitySink::Quality() const {
  PartitionQuality quality;
  quality.partition_sizes = loads_;
  for (uint64_t load : loads_) {
    quality.num_edges += load;
  }
  quality.num_covered_vertices = table_.CoveredVertices();
  quality.replication_factor = table_.ReplicationFactor();
  if (!loads_.empty()) {
    quality.max_partition_size =
        *std::max_element(loads_.begin(), loads_.end());
    quality.min_partition_size =
        *std::min_element(loads_.begin(), loads_.end());
    if (quality.num_edges > 0) {
      const double expected = static_cast<double>(quality.num_edges) /
                              static_cast<double>(loads_.size());
      quality.measured_alpha =
          static_cast<double>(quality.max_partition_size) / expected;
    }
  }
  return quality;
}

void ValidatingSink::Assign(const Edge& /*edge*/, PartitionId partition) {
  const uint64_t load = ++loads_[partition];
  if (load > capacity_ && status_.ok()) {
    status_ = Status::FailedPrecondition(
        "partition " + std::to_string(partition) + " exceeded capacity " +
        std::to_string(capacity_) + " mid-stream");
  }
}

Status ValidatingSink::Finish(uint64_t expected_edges,
                              uint64_t capacity) const {
  TPSL_RETURN_IF_ERROR(status_);
  uint64_t total = 0;
  for (size_t p = 0; p < loads_.size(); ++p) {
    if (loads_[p] > capacity) {
      return Status::FailedPrecondition(
          "partition " + std::to_string(p) + " holds " +
          std::to_string(loads_[p]) + " edges, capacity " +
          std::to_string(capacity));
    }
    total += loads_[p];
  }
  if (total != expected_edges) {
    return Status::FailedPrecondition(
        "assigned " + std::to_string(total) + " edges, expected " +
        std::to_string(expected_edges));
  }
  return Status::OK();
}

}  // namespace tpsl

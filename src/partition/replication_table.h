#ifndef TPSL_PARTITION_REPLICATION_TABLE_H_
#define TPSL_PARTITION_REPLICATION_TABLE_H_

#include <cstdint>
#include <vector>

#include "graph/types.h"
#include "partition/dense_bitset.h"

namespace tpsl {

/// Vertex-to-partition replication bit matrix — the `v2p` state of
/// paper Algorithm 2, and the dominant O(|V|·k) space term of every
/// stateful streaming partitioner (Table II).
///
/// Hosted on the kernel's DenseBitset, vertex-major: row v is the k
/// consecutive bits starting at v·k, so one cache line holds a whole
/// row for k <= 512 and a scoring loop touches exactly one line per
/// endpoint. Maintains per-partition vertex-cover counts |V(p_i)|
/// incrementally so the replication factor is available in O(k) at any
/// time.
class ReplicationTable {
 public:
  ReplicationTable(VertexId num_vertices, uint32_t num_partitions);

  VertexId num_vertices() const { return num_vertices_; }
  uint32_t num_partitions() const { return num_partitions_; }

  /// Whether vertex v is replicated on partition p.
  bool Test(VertexId v, PartitionId p) const { return bits_.Test(Index(v, p)); }

  /// Extends the table to cover vertices up to `new_num_vertices - 1`
  /// (no-op if already large enough). Rows are vertex-major, so growth
  /// is a cheap append; used by the incremental partitioner when a
  /// dynamic graph introduces unseen vertices.
  void GrowVertices(VertexId new_num_vertices) {
    if (new_num_vertices <= num_vertices_) {
      return;
    }
    num_vertices_ = new_num_vertices;
    bits_.Resize(static_cast<uint64_t>(num_vertices_) * num_partitions_);
    replica_counts_.resize(num_vertices_, 0);
  }

  /// Marks v as replicated on p (idempotent).
  void Set(VertexId v, PartitionId p) {
    if (bits_.TestAndSet(Index(v, p))) {
      ++cover_sizes_[p];
      ++replica_counts_[v];
    }
  }

  /// Pulls vertex v's replica row (and its replica count) toward the
  /// cache; scoring loops call this a few edges ahead of the test.
  void PrefetchRow(VertexId v) const {
    bits_.Prefetch(Index(v, 0));
  }

  /// Number of partitions vertex v is replicated on.
  uint32_t ReplicaCount(VertexId v) const { return replica_counts_[v]; }

  /// |V(p)| — size of partition p's vertex cover set.
  uint64_t CoverSize(PartitionId p) const { return cover_sizes_[p]; }

  /// Partition p's full vertex cover as a standalone DenseBitset over
  /// [0, num_vertices). An O(|V|·k / 64) gather — for mirror-overlap
  /// queries (FSM split/merge matching), not for per-edge loops.
  DenseBitset CoverBitset(PartitionId p) const;

  /// Replication factor over the `num_covered` vertices that actually
  /// appear in the graph: (1/|V|) Σ_i |V(p_i)|. Computed against the
  /// number of vertices with at least one replica.
  double ReplicationFactor() const;

  /// Total vertices with >= 1 replica (i.e., non-isolated vertices).
  uint64_t CoveredVertices() const;

  /// Σ_v replicas(v), from the incremental cover counts (O(k)).
  uint64_t TotalReplicas() const {
    uint64_t total = 0;
    for (const uint64_t size : cover_sizes_) {
      total += size;
    }
    return total;
  }

  /// Bytes of heap memory held (for the paper's memory accounting).
  /// Exact: the bit matrix plus both count arrays — the Table II space
  /// term stays honest after the DenseBitset rehost.
  uint64_t HeapBytes() const {
    return bits_.HeapBytes() + cover_sizes_.size() * sizeof(uint64_t) +
           replica_counts_.size() * sizeof(uint32_t);
  }

 private:
  uint64_t Index(VertexId v, PartitionId p) const {
    return static_cast<uint64_t>(v) * num_partitions_ + p;
  }

  VertexId num_vertices_;
  uint32_t num_partitions_;
  DenseBitset bits_;
  std::vector<uint64_t> cover_sizes_;
  std::vector<uint32_t> replica_counts_;
};

}  // namespace tpsl

#endif  // TPSL_PARTITION_REPLICATION_TABLE_H_

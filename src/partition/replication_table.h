#ifndef TPSL_PARTITION_REPLICATION_TABLE_H_
#define TPSL_PARTITION_REPLICATION_TABLE_H_

#include <cstdint>
#include <vector>

#include "graph/types.h"

namespace tpsl {

/// Vertex-to-partition replication bit matrix — the `v2p` state of
/// paper Algorithm 2, and the dominant O(|V|·k) space term of every
/// stateful streaming partitioner (Table II).
///
/// Maintains per-partition vertex-cover counts |V(p_i)| incrementally
/// so the replication factor is available in O(k) at any time.
class ReplicationTable {
 public:
  ReplicationTable(VertexId num_vertices, uint32_t num_partitions);

  VertexId num_vertices() const { return num_vertices_; }
  uint32_t num_partitions() const { return num_partitions_; }

  /// Whether vertex v is replicated on partition p.
  bool Test(VertexId v, PartitionId p) const {
    const uint64_t bit = Index(v, p);
    return (bits_[bit >> 6] >> (bit & 63)) & 1;
  }

  /// Extends the table to cover vertices up to `new_num_vertices - 1`
  /// (no-op if already large enough). Rows are vertex-major, so growth
  /// is a cheap append; used by the incremental partitioner when a
  /// dynamic graph introduces unseen vertices.
  void GrowVertices(VertexId new_num_vertices) {
    if (new_num_vertices <= num_vertices_) {
      return;
    }
    num_vertices_ = new_num_vertices;
    bits_.resize(
        (static_cast<uint64_t>(num_vertices_) * num_partitions_ + 63) / 64,
        0);
    replica_counts_.resize(num_vertices_, 0);
  }

  /// Marks v as replicated on p (idempotent).
  void Set(VertexId v, PartitionId p) {
    const uint64_t bit = Index(v, p);
    uint64_t& word = bits_[bit >> 6];
    const uint64_t mask = uint64_t{1} << (bit & 63);
    if ((word & mask) == 0) {
      word |= mask;
      ++cover_sizes_[p];
      ++replica_counts_[v];
    }
  }

  /// Number of partitions vertex v is replicated on.
  uint32_t ReplicaCount(VertexId v) const { return replica_counts_[v]; }

  /// |V(p)| — size of partition p's vertex cover set.
  uint64_t CoverSize(PartitionId p) const { return cover_sizes_[p]; }

  /// Replication factor over the `num_covered` vertices that actually
  /// appear in the graph: (1/|V|) Σ_i |V(p_i)|. Computed against the
  /// number of vertices with at least one replica.
  double ReplicationFactor() const;

  /// Total vertices with >= 1 replica (i.e., non-isolated vertices).
  uint64_t CoveredVertices() const;

  /// Bytes of heap memory held (for the paper's memory accounting).
  uint64_t HeapBytes() const {
    return bits_.size() * sizeof(uint64_t) +
           cover_sizes_.size() * sizeof(uint64_t) +
           replica_counts_.size() * sizeof(uint32_t);
  }

 private:
  uint64_t Index(VertexId v, PartitionId p) const {
    return static_cast<uint64_t>(v) * num_partitions_ + p;
  }

  VertexId num_vertices_;
  uint32_t num_partitions_;
  std::vector<uint64_t> bits_;
  std::vector<uint64_t> cover_sizes_;
  std::vector<uint32_t> replica_counts_;
};

}  // namespace tpsl

#endif  // TPSL_PARTITION_REPLICATION_TABLE_H_

#ifndef TPSL_PARTITION_DENSE_BITSET_H_
#define TPSL_PARTITION_DENSE_BITSET_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace tpsl {

/// Word-parallel dense bitset — the shared bit-storage primitive of the
/// partitioner-state kernel. Hosts the `v2p` replication matrix
/// (ReplicationTable), per-partition vertex covers (hypergraph quality,
/// procsim topology), and claimed-edge masks (NE/SNE expansion).
///
/// Flat uint64_t words, no bounds checks beyond the vector's own, and
/// word-at-a-time bulk operations (popcount, and/or/andnot,
/// intersection counts, set-bit iteration) so mirror-overlap style
/// queries run at memory bandwidth instead of hash-set speed.
class DenseBitset {
 public:
  DenseBitset() = default;
  explicit DenseBitset(uint64_t num_bits)
      : num_bits_(num_bits), words_(NumWords(num_bits), 0) {}

  uint64_t size() const { return num_bits_; }

  /// Grows (or shrinks) to `num_bits`, preserving existing bits and
  /// zeroing any new tail. Bits past a shrink are discarded; the last
  /// partial word is masked so popcounts stay exact.
  void Resize(uint64_t num_bits) {
    words_.resize(NumWords(num_bits), 0);
    num_bits_ = num_bits;
    MaskTail();
  }

  bool Test(uint64_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void Set(uint64_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }

  void Reset(uint64_t i) { words_[i >> 6] &= ~(uint64_t{1} << (i & 63)); }

  /// Sets bit i; returns true iff it was previously clear. The
  /// test-and-set idiom every incremental cover/replica counter needs.
  bool TestAndSet(uint64_t i) {
    uint64_t& word = words_[i >> 6];
    const uint64_t mask = uint64_t{1} << (i & 63);
    if (word & mask) {
      return false;
    }
    word |= mask;
    return true;
  }

  void ClearAll() {
    for (uint64_t& word : words_) {
      word = 0;
    }
  }

  /// Number of set bits (word-parallel popcount).
  uint64_t Count() const {
    uint64_t total = 0;
    for (const uint64_t word : words_) {
      total += static_cast<uint64_t>(std::popcount(word));
    }
    return total;
  }

  bool Any() const {
    for (const uint64_t word : words_) {
      if (word != 0) {
        return true;
      }
    }
    return false;
  }

  /// |this ∩ other| without materializing the intersection — the
  /// mirror-overlap query of FSM-style split/merge matching. Sizes may
  /// differ; the shorter operand zero-extends.
  uint64_t IntersectionCount(const DenseBitset& other) const {
    const size_t n = words_.size() < other.words_.size()
                         ? words_.size()
                         : other.words_.size();
    uint64_t total = 0;
    for (size_t w = 0; w < n; ++w) {
      total += static_cast<uint64_t>(
          std::popcount(words_[w] & other.words_[w]));
    }
    return total;
  }

  /// this |= other. `other` must not be larger than this.
  void InplaceOr(const DenseBitset& other) {
    for (size_t w = 0; w < other.words_.size(); ++w) {
      words_[w] |= other.words_[w];
    }
  }

  /// this &= other (bits past other's size clear, matching
  /// zero-extension).
  void InplaceAnd(const DenseBitset& other) {
    size_t w = 0;
    for (; w < other.words_.size() && w < words_.size(); ++w) {
      words_[w] &= other.words_[w];
    }
    for (; w < words_.size(); ++w) {
      words_[w] = 0;
    }
  }

  /// this &= ~other. `other` may be any size.
  void InplaceAndNot(const DenseBitset& other) {
    const size_t n = words_.size() < other.words_.size()
                         ? words_.size()
                         : other.words_.size();
    for (size_t w = 0; w < n; ++w) {
      words_[w] &= ~other.words_[w];
    }
  }

  /// Invokes fn(index) for every set bit, ascending, via
  /// count-trailing-zeros word scanning.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t word = words_[w];
      while (word != 0) {
        const int bit = std::countr_zero(word);
        fn(static_cast<uint64_t>(w) * 64 + bit);
        word &= word - 1;
      }
    }
  }

  /// Software-prefetches the cache line holding bit `i` (read intent).
  /// A scoring loop calls this a few edges ahead so the replica words
  /// are resident by the time they are tested.
  void Prefetch(uint64_t i) const {
    __builtin_prefetch(words_.data() + (i >> 6), /*rw=*/0, /*locality=*/3);
  }

  uint64_t HeapBytes() const { return words_.size() * sizeof(uint64_t); }

  const std::vector<uint64_t>& words() const { return words_; }

 private:
  static uint64_t NumWords(uint64_t num_bits) { return (num_bits + 63) / 64; }

  /// Clears bits beyond num_bits_ in the last word so Count() and
  /// IntersectionCount() never see stale bits after a shrink.
  void MaskTail() {
    const uint64_t tail = num_bits_ & 63;
    if (tail != 0 && !words_.empty()) {
      words_.back() &= (uint64_t{1} << tail) - 1;
    }
  }

  uint64_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace tpsl

#endif  // TPSL_PARTITION_DENSE_BITSET_H_

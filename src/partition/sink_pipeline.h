#ifndef TPSL_PARTITION_SINK_PIPELINE_H_
#define TPSL_PARTITION_SINK_PIPELINE_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "graph/types.h"
#include "partition/assignment_sink.h"
#include "partition/dense_bitset.h"
#include "partition/metrics.h"
#include "partition/replication_table.h"
#include "util/status.h"

namespace tpsl {

/// Computes PartitionQuality online, one assignment at a time: per
/// partition edge loads plus vertex replication through a
/// ReplicationTable (per-vertex partition bitsets). O(|V|·k / 8 + |V|)
/// state, never an edge list — the streaming replacement for running
/// ComputeQuality over materialized partitions. ComputeQuality stays
/// as the independent test oracle; the property suite asserts exact
/// (bit-level) agreement on every registry partitioner.
class StreamingQualitySink : public AssignmentSink {
 public:
  /// Every 2^sample_interval_log2 assignments the sink publishes the
  /// running replication factor and max-load skew to obs gauges (and,
  /// when tracing, counter events) — quality *convergence over the
  /// stream*, not just the end state. The per-edge cost of sampling is
  /// one increment and a mask test.
  explicit StreamingQualitySink(uint32_t num_partitions,
                                uint32_t sample_interval_log2 = 16)
      : table_(0, num_partitions),
        loads_(num_partitions, 0),
        sample_mask_((uint64_t{1} << sample_interval_log2) - 1) {}

  void Assign(const Edge& edge, PartitionId partition) override {
    const VertexId top = std::max(edge.first, edge.second);
    table_.GrowVertices(top + 1);
    table_.Set(edge.first, partition);
    table_.Set(edge.second, partition);
    ++loads_[partition];
    if (((++assigned_) & sample_mask_) == 0) {
      SampleQuality();
    }
  }

  /// The quality of everything assigned so far. Field-for-field the
  /// same arithmetic as ComputeQuality, so the two agree exactly.
  PartitionQuality Quality() const;

  const std::vector<uint64_t>& loads() const { return loads_; }

  uint64_t StateBytes() const override {
    return table_.HeapBytes() + loads_.capacity() * sizeof(uint64_t);
  }

 private:
  /// O(k) + replication-factor scan, every 2^16 edges by default.
  void SampleQuality() const;

  ReplicationTable table_;
  std::vector<uint64_t> loads_;
  const uint64_t sample_mask_;
  uint64_t assigned_ = 0;
};

/// The concurrent-safe replacement for StreamingQualitySink under a
/// parallel scoring pass: per-shard replication bitsets and load
/// counters, merged word-parallel when the quality is read. Each
/// AssignBatch call leases one shard (spinning over a fixed pool of
/// try-locks), absorbs the whole batch into it, and releases it — no
/// shared mutable word is ever touched by two threads at once, so the
/// scoring pass never serializes on quality bookkeeping.
///
/// Exactness: a replication bit is idempotent and a load is a sum, so
/// the merged state is independent of which shard saw which edge and
/// of arrival order. Quality() computes total replicas as the merged
/// popcount and covered vertices as the count of non-empty rows —
/// integer-for-integer the state StreamingQualitySink accumulates — and
/// then applies field-for-field the same floating-point arithmetic, so
/// the result matches the sequential oracle to the last bit (the
/// property suite asserts exact equality).
class ShardedQualitySink : public AssignmentSink {
 public:
  ShardedQualitySink(uint32_t num_partitions, uint32_t num_shards);

  void Assign(const Edge& edge, PartitionId partition) override {
    const Assignment one{edge, partition};
    AssignBatch(&one, 1);
  }

  void AssignBatch(const Assignment* batch, size_t count) override;

  bool ConcurrentSafe() const override { return true; }

  /// Merged quality over everything assigned so far. Not thread-safe
  /// against concurrent AssignBatch calls: call after the pass ends.
  PartitionQuality Quality() const;

  uint64_t StateBytes() const override;

  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards_.size());
  }

 private:
  /// One worker's private slice of the replication state. The bitset is
  /// vertex-major like ReplicationTable (row v = k bits at v*k), grown
  /// lazily, so the merge is a straight word-wise OR.
  struct Shard {
    std::atomic<bool> in_use{false};
    DenseBitset bits;
    std::vector<uint64_t> loads;
    VertexId num_vertices = 0;
  };

  const uint32_t num_partitions_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Decouples a parallel scoring pass from sequential sink consumers
/// (validation, spill writers, materialization) with a bounded handoff
/// queue: producers enqueue assignment chunks from any thread; a
/// dedicated drainer thread delivers them downstream one chunk at a
/// time, so the downstream sinks keep their single-threaded contract
/// while their work overlaps the scoring pass instead of serializing
/// it. Back-pressure: when the queue is full, producers block until
/// the drainer frees a slot, bounding memory at O(queue × chunk).
///
/// Finish() flushes the queue and joins the drainer; the runner calls
/// it before reading any downstream state (validation status, spill
/// manifests). The destructor also joins, so an error return that
/// skips Finish() cannot leak the thread.
class AsyncHandoffSink : public AssignmentSink {
 public:
  /// `downstream` must outlive the sink; `max_queued_chunks` bounds
  /// the handoff queue (chunks are one AssignBatch call each).
  explicit AsyncHandoffSink(AssignmentSink* downstream,
                            size_t max_queued_chunks = 64);
  ~AsyncHandoffSink() override;

  void Assign(const Edge& edge, PartitionId partition) override {
    const Assignment one{edge, partition};
    AssignBatch(&one, 1);
  }

  void AssignBatch(const Assignment* batch, size_t count) override;

  bool ConcurrentSafe() const override { return true; }

  /// Drains everything enqueued so far into the downstream sink and
  /// stops the drainer thread. Idempotent; after Finish() the
  /// downstream state is complete and safe to read single-threaded.
  void Finish();

  /// Downstream failures propagate through the handoff: the drainer
  /// re-checks the downstream's Health() after every delivered chunk
  /// and latches the first error here, so a producer polling mid-pass
  /// (or the runner after the pass) sees a spill-writer failure even
  /// though delivery happens on another thread. When no drainer is in
  /// flight the downstream is quiescent and is queried directly.
  Status Health() const override;

  uint64_t StateBytes() const override;

 private:
  void DrainLoop();

  AssignmentSink* const downstream_;
  const size_t max_queued_chunks_;

  mutable std::mutex mutex_;
  Status health_;  // first downstream error seen by the drainer
  std::condition_variable producer_cv_;  // queue has space
  std::condition_variable drainer_cv_;   // queue has work (or stop)
  std::deque<std::vector<Assignment>> queue_;
  bool stop_ = false;
  bool started_ = false;
  std::thread drainer_;
};

/// Enforces the partitioning contract as assignments arrive: when the
/// per-partition capacity is known up front (the stream published an
/// edge-count hint), the first over-capacity assignment latches a
/// FailedPrecondition, pinning the violation to the exact assignment
/// that caused it. Sinks cannot abort the partitioner, so the pass
/// still completes; the runner reports the latched status as soon as
/// the pass ends (before finalizing any spill output). Finish()
/// settles the parts that need the final totals: every edge assigned
/// exactly once, and the capacity re-check for hint-less streams
/// whose cap could only be computed at the end.
class ValidatingSink : public AssignmentSink {
 public:
  /// `streaming_capacity` is the hard per-partition cap to enforce
  /// online, or kNoCapacity when it cannot be known before the end of
  /// the stream.
  static constexpr uint64_t kNoCapacity = ~uint64_t{0};

  ValidatingSink(uint32_t num_partitions, uint64_t streaming_capacity)
      : capacity_(streaming_capacity), loads_(num_partitions, 0) {}

  void Assign(const Edge& edge, PartitionId partition) override;

  /// First violation observed while streaming (sticky), OK otherwise.
  const Status& status() const { return status_; }

  /// Final contract check: total assignments equal `expected_edges`
  /// and every partition is within `capacity`. Returns the sticky
  /// streaming violation first if one was latched.
  Status Finish(uint64_t expected_edges, uint64_t capacity) const;

  const std::vector<uint64_t>& loads() const { return loads_; }

  uint64_t total() const {
    uint64_t sum = 0;
    for (uint64_t load : loads_) sum += load;
    return sum;
  }

  uint64_t StateBytes() const override {
    return loads_.capacity() * sizeof(uint64_t);
  }

 private:
  uint64_t capacity_;
  std::vector<uint64_t> loads_;
  Status status_;
};

}  // namespace tpsl

#endif  // TPSL_PARTITION_SINK_PIPELINE_H_

#ifndef TPSL_PARTITION_SINK_PIPELINE_H_
#define TPSL_PARTITION_SINK_PIPELINE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/types.h"
#include "partition/assignment_sink.h"
#include "partition/metrics.h"
#include "partition/replication_table.h"
#include "util/status.h"

namespace tpsl {

/// Computes PartitionQuality online, one assignment at a time: per
/// partition edge loads plus vertex replication through a
/// ReplicationTable (per-vertex partition bitsets). O(|V|·k / 8 + |V|)
/// state, never an edge list — the streaming replacement for running
/// ComputeQuality over materialized partitions. ComputeQuality stays
/// as the independent test oracle; the property suite asserts exact
/// (bit-level) agreement on every registry partitioner.
class StreamingQualitySink : public AssignmentSink {
 public:
  /// Every 2^sample_interval_log2 assignments the sink publishes the
  /// running replication factor and max-load skew to obs gauges (and,
  /// when tracing, counter events) — quality *convergence over the
  /// stream*, not just the end state. The per-edge cost of sampling is
  /// one increment and a mask test.
  explicit StreamingQualitySink(uint32_t num_partitions,
                                uint32_t sample_interval_log2 = 16)
      : table_(0, num_partitions),
        loads_(num_partitions, 0),
        sample_mask_((uint64_t{1} << sample_interval_log2) - 1) {}

  void Assign(const Edge& edge, PartitionId partition) override {
    const VertexId top = std::max(edge.first, edge.second);
    table_.GrowVertices(top + 1);
    table_.Set(edge.first, partition);
    table_.Set(edge.second, partition);
    ++loads_[partition];
    if (((++assigned_) & sample_mask_) == 0) {
      SampleQuality();
    }
  }

  /// The quality of everything assigned so far. Field-for-field the
  /// same arithmetic as ComputeQuality, so the two agree exactly.
  PartitionQuality Quality() const;

  const std::vector<uint64_t>& loads() const { return loads_; }

  uint64_t StateBytes() const override {
    return table_.HeapBytes() + loads_.capacity() * sizeof(uint64_t);
  }

 private:
  /// O(k) + replication-factor scan, every 2^16 edges by default.
  void SampleQuality() const;

  ReplicationTable table_;
  std::vector<uint64_t> loads_;
  const uint64_t sample_mask_;
  uint64_t assigned_ = 0;
};

/// Enforces the partitioning contract as assignments arrive: when the
/// per-partition capacity is known up front (the stream published an
/// edge-count hint), the first over-capacity assignment latches a
/// FailedPrecondition, pinning the violation to the exact assignment
/// that caused it. Sinks cannot abort the partitioner, so the pass
/// still completes; the runner reports the latched status as soon as
/// the pass ends (before finalizing any spill output). Finish()
/// settles the parts that need the final totals: every edge assigned
/// exactly once, and the capacity re-check for hint-less streams
/// whose cap could only be computed at the end.
class ValidatingSink : public AssignmentSink {
 public:
  /// `streaming_capacity` is the hard per-partition cap to enforce
  /// online, or kNoCapacity when it cannot be known before the end of
  /// the stream.
  static constexpr uint64_t kNoCapacity = ~uint64_t{0};

  ValidatingSink(uint32_t num_partitions, uint64_t streaming_capacity)
      : capacity_(streaming_capacity), loads_(num_partitions, 0) {}

  void Assign(const Edge& edge, PartitionId partition) override;

  /// First violation observed while streaming (sticky), OK otherwise.
  const Status& status() const { return status_; }

  /// Final contract check: total assignments equal `expected_edges`
  /// and every partition is within `capacity`. Returns the sticky
  /// streaming violation first if one was latched.
  Status Finish(uint64_t expected_edges, uint64_t capacity) const;

  const std::vector<uint64_t>& loads() const { return loads_; }

  uint64_t total() const {
    uint64_t sum = 0;
    for (uint64_t load : loads_) sum += load;
    return sum;
  }

  uint64_t StateBytes() const override {
    return loads_.capacity() * sizeof(uint64_t);
  }

 private:
  uint64_t capacity_;
  std::vector<uint64_t> loads_;
  Status status_;
};

}  // namespace tpsl

#endif  // TPSL_PARTITION_SINK_PIPELINE_H_

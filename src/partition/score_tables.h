#ifndef TPSL_PARTITION_SCORE_TABLES_H_
#define TPSL_PARTITION_SCORE_TABLES_H_

#include <cstdint>
#include <vector>

#include "core/scoring.h"
#include "graph/edge_stream.h"
#include "graph/types.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "partition/replication_table.h"
#include "util/status.h"

namespace tpsl {

/// The shared partitioner-state kernel: every stateful scoring loop in
/// the repo (2PS-L/2PS-HDRF cores, the HDRF/Greedy/ADWISE/HEP/SNE/DNE
/// baselines, the hypergraph path) scores against this one struct
/// instead of carrying its own ad-hoc copies of the same arrays.
///
/// Layout is deliberately flat — the HDRF idiom (Petroni et al.,
/// CIKM'15) where the score decomposes into per-partition arrays:
///   * `v2p` replication bit matrix (ReplicationTable on DenseBitset),
///     with per-partition cover counts |V(p_i)|,
///   * per-partition edge loads |p_i| with the running max,
///   * optional non-owning views of the degree and cluster-volume
///     arrays (owned by DegreeTable / Clustering).
/// Scoring helpers preserve each caller's exact iteration order and
/// tie-breaking, so migrating a partitioner onto the kernel is
/// byte-identical (enforced by the state_kernel_identity_test golden
/// checksums).
class ScoreTables {
 public:
  /// `capacity` is the hard per-partition edge cap (kUncapped when the
  /// caller enforces balance elsewhere).
  static constexpr uint64_t kUncapped = ~uint64_t{0};

  ScoreTables(VertexId num_vertices, uint32_t num_partitions,
              uint64_t capacity)
      : replicas_(num_vertices, num_partitions),
        loads_(num_partitions, 0),
        capacity_(capacity) {}

  uint32_t num_partitions() const {
    return static_cast<uint32_t>(loads_.size());
  }
  uint64_t capacity() const { return capacity_; }

  ReplicationTable& replicas() { return replicas_; }
  const ReplicationTable& replicas() const { return replicas_; }

  const std::vector<uint64_t>& loads() const { return loads_; }
  uint64_t load(PartitionId p) const { return loads_[p]; }
  bool IsFull(PartitionId p) const { return loads_[p] >= capacity_; }

  /// Running maximum load, maintained incrementally by Commit — always
  /// equal to max(loads), without the O(k) rescan per edge.
  uint64_t max_load() const { return max_load_; }

  /// Minimum load, O(k) scan (the minimum can move on any commit).
  uint64_t MinLoad() const {
    uint64_t min_load = loads_[0];
    for (const uint64_t load : loads_) {
      if (load < min_load) {
        min_load = load;
      }
    }
    return min_load;
  }

  /// Least-loaded partition, ignoring capacity (first minimum wins).
  PartitionId LeastLoaded() const {
    PartitionId best = 0;
    for (PartitionId p = 1; p < loads_.size(); ++p) {
      if (loads_[p] < loads_[best]) {
        best = p;
      }
    }
    return best;
  }

  /// Least-loaded partition with remaining capacity; kInvalidPartition
  /// when every partition is full.
  PartitionId LeastLoadedOpen() const {
    PartitionId best = kInvalidPartition;
    for (PartitionId p = 0; p < loads_.size(); ++p) {
      if (loads_[p] >= capacity_) {
        continue;
      }
      if (best == kInvalidPartition || loads_[p] < loads_[best]) {
        best = p;
      }
    }
    return best;
  }

  /// Records edge e on partition p: both endpoint replicas, the load,
  /// and the running max.
  void Commit(const Edge& e, PartitionId p) {
    replicas_.Set(e.first, p);
    replicas_.Set(e.second, p);
    if (++loads_[p] > max_load_) {
      max_load_ = loads_[p];
    }
  }

  /// Load-only commit for callers whose replica updates happen
  /// elsewhere (expander slots, redirect sinks).
  void AddLoad(PartitionId p) {
    if (++loads_[p] > max_load_) {
      max_load_ = loads_[p];
    }
  }

  /// Removes one edge from p (DNE-style over-claim rebalancing). After
  /// a SubLoad, max_load() is an upper bound rather than exact; only
  /// callers that never score against max_load may use this.
  void SubLoad(PartitionId p) { --loads_[p]; }

  /// Pulls both endpoints' replica rows toward the cache; scoring
  /// loops issue this a few edges ahead (see ForEachEdgePrefetched).
  void PrefetchEdge(const Edge& e) const {
    replicas_.PrefetchRow(e.first);
    replicas_.PrefetchRow(e.second);
  }

  // --- Optional flat views of sibling state (non-owning). ---

  void AttachDegrees(const uint32_t* degrees) { degrees_ = degrees; }
  void AttachClusterVolumes(const uint64_t* volumes) {
    cluster_volumes_ = volumes;
  }
  uint32_t degree(VertexId v) const { return degrees_[v]; }
  uint64_t cluster_volume(ClusterId c) const { return cluster_volumes_[c]; }
  void PrefetchDegree(VertexId v) const {
    __builtin_prefetch(degrees_ + v, /*rw=*/0, /*locality=*/3);
  }

  // --- Score-then-assign helpers (exact legacy arithmetic). ---

  struct Choice {
    PartitionId partition = kInvalidPartition;
    double score = -1.0;
  };

  /// HDRF argmax over all k partitions: replication score plus balance
  /// term against (running max, scanned min). `respect_capacity`
  /// skips full partitions (the HDRF/HEP/ADWISE hard-cap convention);
  /// the 2PS-HDRF core passes false and resolves overflow afterwards.
  Choice PickHdrf(const Edge& e, uint32_t du, uint32_t dv, double lambda,
                  bool respect_capacity) const {
    const uint64_t min_load = MinLoad();
    Choice choice;
    for (PartitionId p = 0; p < loads_.size(); ++p) {
      if (respect_capacity && loads_[p] >= capacity_) {
        continue;
      }
      const double score =
          HdrfReplicationScore(replicas_.Test(e.first, p),
                               replicas_.Test(e.second, p), du, dv) +
          HdrfBalanceScore(loads_[p], max_load_, min_load, lambda);
      if (score > choice.score) {
        choice.score = score;
        choice.partition = p;
      }
    }
    return choice;
  }

  /// PowerGraph greedy cascade (one O(k) scan): least-loaded partition
  /// holding both endpoints, else either endpoint, else least-loaded
  /// open partition. Full partitions are never candidates.
  PartitionId PickGreedy(const Edge& e) const {
    PartitionId best_common = kInvalidPartition;
    PartitionId best_either = kInvalidPartition;
    PartitionId best_any = kInvalidPartition;
    for (PartitionId p = 0; p < loads_.size(); ++p) {
      if (loads_[p] >= capacity_) {
        continue;
      }
      const bool u_on = replicas_.Test(e.first, p);
      const bool v_on = replicas_.Test(e.second, p);
      if (u_on && v_on &&
          (best_common == kInvalidPartition ||
           loads_[p] < loads_[best_common])) {
        best_common = p;
      }
      if ((u_on || v_on) &&
          (best_either == kInvalidPartition ||
           loads_[p] < loads_[best_either])) {
        best_either = p;
      }
      if (best_any == kInvalidPartition || loads_[p] < loads_[best_any]) {
        best_any = p;
      }
    }
    if (best_common != kInvalidPartition) {
      return best_common;
    }
    return best_either != kInvalidPartition ? best_either : best_any;
  }

  /// Exact bytes held by the kernel state (replication matrix + cover
  /// counts + loads). Attached views are owned elsewhere and counted
  /// by their owners.
  uint64_t HeapBytes() const {
    return replicas_.HeapBytes() + loads_.size() * sizeof(uint64_t);
  }

 private:
  ReplicationTable replicas_;
  std::vector<uint64_t> loads_;
  uint64_t capacity_;
  uint64_t max_load_ = 0;
  const uint32_t* degrees_ = nullptr;
  const uint64_t* cluster_volumes_ = nullptr;
};

/// 2PS-L constant-time pick: scores exactly the two candidate
/// partitions (§III-B Step 3) and keeps the sequential tie-break
/// (score1 >= score2 → p1). Templated over the replica view so the
/// sequential ReplicationTable and the parallel core's atomic bit
/// matrix share one formula.
template <typename ReplicaView>
PartitionId PickTwoPhaseLinear(const ReplicaView& replicas, const Edge& e,
                               uint32_t du, uint32_t dv, uint64_t vol1,
                               uint64_t vol2, PartitionId p1,
                               PartitionId p2) {
  const uint64_t degree_sum = static_cast<uint64_t>(du) + dv;
  const uint64_t volume_sum = vol1 + vol2;
  const double score1 =
      TwopsReplicationTerm(replicas.Test(e.first, p1), du, degree_sum) +
      TwopsReplicationTerm(replicas.Test(e.second, p1), dv, degree_sum) +
      TwopsClusterTerm(true, vol1, volume_sum);
  const double score2 =
      TwopsReplicationTerm(replicas.Test(e.first, p2), du, degree_sum) +
      TwopsReplicationTerm(replicas.Test(e.second, p2), dv, degree_sum) +
      TwopsClusterTerm(true, vol2, volume_sum);
  return score1 >= score2 ? p1 : p2;
}

/// How many edges ahead the batched loops prefetch. Far enough to beat
/// a memory round-trip at a few ns per scored edge, near enough that
/// the lines are still resident when used.
inline constexpr size_t kScorePrefetchDistance = 8;

/// The shared per-batch throughput counter behind every sequential
/// scoring loop: one relaxed Add per 4096-edge batch, so obs snapshots
/// can report edges scored without touching the per-edge path.
inline obs::Counter* ScoredEdgesCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Default().GetCounter("partition.edges_scored");
  return counter;
}

/// One full pass in stream order — the batched score-then-assign
/// driver. `prefetch(edge)` is issued kScorePrefetchDistance edges
/// ahead of `process(edge)`; processing order is exactly stream order,
/// so the pass is byte-identical to a plain ForEachEdge.
template <typename PrefetchFn, typename ProcessFn>
Status ForEachEdgePrefetched(EdgeStream& stream, PrefetchFn&& prefetch,
                             ProcessFn&& process) {
  TPSL_RETURN_IF_ERROR(stream.Reset());
  constexpr size_t kBatch = 4096;
  Edge buffer[kBatch];
  size_t n;
  while ((n = stream.Next(buffer, kBatch)) > 0) {
    obs::TraceSpan span("score.batch", "partition");
    const size_t lead = n < kScorePrefetchDistance ? n : kScorePrefetchDistance;
    for (size_t i = 0; i < lead; ++i) {
      prefetch(buffer[i]);
    }
    for (size_t i = 0; i < n; ++i) {
      if (i + lead < n) {
        prefetch(buffer[i + lead]);
      }
      process(buffer[i]);
    }
    ScoredEdgesCounter()->Add(n);
  }
  return stream.Health();
}

}  // namespace tpsl

#endif  // TPSL_PARTITION_SCORE_TABLES_H_

#include "partition/metrics.h"

#include <algorithm>
#include <unordered_set>

namespace tpsl {

PartitionQuality ComputeQuality(const std::vector<std::vector<Edge>>& parts) {
  PartitionQuality quality;
  quality.partition_sizes.reserve(parts.size());

  uint64_t total_cover = 0;
  std::unordered_set<VertexId> global_vertices;
  std::unordered_set<VertexId> cover;
  for (const std::vector<Edge>& part : parts) {
    cover.clear();
    for (const Edge& e : part) {
      cover.insert(e.first);
      cover.insert(e.second);
      global_vertices.insert(e.first);
      global_vertices.insert(e.second);
    }
    total_cover += cover.size();
    quality.partition_sizes.push_back(part.size());
    quality.num_edges += part.size();
  }

  quality.num_covered_vertices = global_vertices.size();
  if (!global_vertices.empty()) {
    quality.replication_factor =
        static_cast<double>(total_cover) /
        static_cast<double>(global_vertices.size());
  }
  if (!quality.partition_sizes.empty()) {
    quality.max_partition_size = *std::max_element(
        quality.partition_sizes.begin(), quality.partition_sizes.end());
    quality.min_partition_size = *std::min_element(
        quality.partition_sizes.begin(), quality.partition_sizes.end());
    if (quality.num_edges > 0) {
      const double expected = static_cast<double>(quality.num_edges) /
                              static_cast<double>(parts.size());
      quality.measured_alpha =
          static_cast<double>(quality.max_partition_size) / expected;
    }
  }
  return quality;
}

Status ValidatePartitioning(const std::vector<std::vector<Edge>>& parts,
                            uint64_t expected_edges, uint64_t capacity) {
  uint64_t total = 0;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (parts[i].size() > capacity) {
      return Status::FailedPrecondition(
          "partition " + std::to_string(i) + " holds " +
          std::to_string(parts[i].size()) + " edges, capacity " +
          std::to_string(capacity));
    }
    total += parts[i].size();
  }
  if (total != expected_edges) {
    return Status::FailedPrecondition(
        "assigned " + std::to_string(total) + " edges, expected " +
        std::to_string(expected_edges));
  }
  return Status::OK();
}

}  // namespace tpsl

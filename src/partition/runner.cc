#include "partition/runner.h"

#include <limits>
#include <utility>

#include "partition/assignment_sink.h"
#include "util/timer.h"

namespace tpsl {

StatusOr<RunResult> RunPartitioner(Partitioner& partitioner,
                                   EdgeStream& stream,
                                   const PartitionConfig& config,
                                   const RunOptions& options) {
  RunResult result;
  result.partitioner_name = partitioner.name();

  EdgeListSink sink(config.num_partitions);
  WallTimer timer;
  TPSL_RETURN_IF_ERROR(
      partitioner.Partition(stream, config, sink, &result.stats));
  // Some partitioners drive Next() manually instead of via ForEachEdge;
  // a stream that failed mid-pass looks like a short EOF to them.
  TPSL_RETURN_IF_ERROR(stream.Health());
  result.wall_seconds = timer.ElapsedSeconds();

  result.quality = ComputeQuality(sink.partitions());
  if (options.validate) {
    // Always check that every edge was assigned; check the hard cap
    // only for partitioners that promise it (stateless hashing does
    // not — the paper reports their measured α instead).
    const uint64_t expected_edges = stream.NumEdgesHint() != 0
                                        ? stream.NumEdgesHint()
                                        : result.quality.num_edges;
    const uint64_t capacity =
        partitioner.enforces_balance_cap()
            ? config.PartitionCapacity(expected_edges)
            : std::numeric_limits<uint64_t>::max();
    TPSL_RETURN_IF_ERROR(ValidatePartitioning(sink.partitions(),
                                              expected_edges, capacity));
  }
  if (options.keep_partitions) {
    result.partitions = sink.TakePartitions();
  }
  return result;
}

}  // namespace tpsl

#include "partition/runner.h"

#include <cstdio>
#include <filesystem>
#include <optional>
#include <utility>

#include "graph/binary_edge_list.h"
#include "io/edge_file.h"
#include "obs/trace.h"
#include "partition/assignment_sink.h"
#include "partition/partitioned_writer.h"
#include "partition/sink_pipeline.h"
#include "util/timer.h"

namespace tpsl {

StatusOr<RunResult> RunPartitioner(Partitioner& partitioner,
                                   EdgeStream& stream,
                                   const PartitionConfig& config,
                                   const RunOptions& options) {
  RunResult result;
  result.partitioner_name = partitioner.name();

  const uint32_t k = config.num_partitions;
  const uint64_t hint = stream.NumEdgesHint();
  const bool cap_enforced = partitioner.enforces_balance_cap();

  // The sink pipeline: quality always, validation unless disabled,
  // materialization and spill on request. Everything is single-pass —
  // each assignment fans out once through the tee as it is made.
  //
  // Shape depends on the run's parallelism. threads == 1: the sinks
  // hang directly off one tee, delivered in stream order (the
  // byte-identity contract). threads > 1: quality bookkeeping moves to
  // the concurrent-safe sharded sink and every sequential consumer
  // moves behind a bounded handoff queue, so the whole pipeline
  // reports ConcurrentSafe and the scoring pass never takes a sink
  // mutex — sink consumption overlaps scoring instead of serializing
  // it.
  const uint32_t threads = config.exec.ResolveThreads();
  StreamingQualitySink quality_sink(k);
  std::optional<ShardedQualitySink> sharded_quality;
  ValidatingSink validating_sink(
      k, options.validate && cap_enforced && hint != 0
             ? config.PartitionCapacity(hint)
             : ValidatingSink::kNoCapacity);
  TeeSink pipeline;
  TeeSink sequential_sinks;  // threads > 1: consumers behind the queue
  TeeSink& direct = threads > 1 ? sequential_sinks : pipeline;
  if (threads > 1) {
    sharded_quality.emplace(k, threads);
    pipeline.Add(&*sharded_quality);
  } else {
    pipeline.Add(&quality_sink);
  }
  if (options.validate) {
    direct.Add(&validating_sink);
  }
  std::optional<EdgeListSink> keep_sink;
  if (options.keep_partitions) {
    keep_sink.emplace(k);
    direct.Add(&*keep_sink);
  }
  // A failed spill run must not leave partial partition files behind:
  // the error Status carries no SpillInfo, so no caller could clean
  // them up. Armed on spill creation, disarmed on success; declared
  // before the writer so it fires after the files are closed.
  struct SpillCleanup {
    SpillInfo files;
    bool armed = false;
    ~SpillCleanup() {
      if (armed) {
        RemoveSpilledFiles(files);
      }
    }
  } spill_cleanup;
  std::optional<PartitionedWriter> spill_sink;
  if (!options.spill_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options.spill_dir, ec);
    if (ec) {
      return Status::IoError("cannot create spill dir " + options.spill_dir +
                             ": " + ec.message());
    }
    const std::string prefix =
        (std::filesystem::path(options.spill_dir) / options.spill_stem)
            .string();
    spill_sink.emplace(prefix, k);
    TPSL_RETURN_IF_ERROR(spill_sink->status());
    direct.Add(&*spill_sink);
    spill_cleanup.files.prefix = prefix;
    for (PartitionId p = 0; p < k; ++p) {
      spill_cleanup.files.partition_paths.push_back(
          spill_sink->PartitionPath(p));
    }
    spill_cleanup.armed = true;
  }
  std::optional<AsyncHandoffSink> handoff;
  if (threads > 1 && sequential_sinks.num_sinks() > 0) {
    // Bound the queue at a few chunks per worker: enough slack that a
    // slow spill write does not stall scoring, small enough that
    // back-pressure (not memory) absorbs a persistently slow consumer.
    handoff.emplace(&sequential_sinks, /*max_queued_chunks=*/4 * threads);
    pipeline.Add(&*handoff);
  }

  WallTimer timer;
  {
    obs::TraceSpan span("partition.run", "partition");
    TPSL_RETURN_IF_ERROR(
        partitioner.Partition(stream, config, pipeline, &result.stats));
  }
  if (handoff) {
    // Drain the queue and park the drainer before any downstream state
    // (validation status, spill manifests, materialized partitions) is
    // read. Part of the measured run: the work was deferred, not free.
    obs::TraceSpan span("partition.handoff_drain", "partition");
    handoff->Finish();
  }
  // Some partitioners drive Next() manually instead of via ForEachEdge;
  // a stream that failed mid-pass looks like a short EOF to them.
  TPSL_RETURN_IF_ERROR(stream.Health());
  // Same for the sinks: Assign() has no error channel, so a spill
  // writer that hit a full disk (or an async handoff whose downstream
  // died) latched the failure in Health(). Check before trusting any
  // downstream state.
  TPSL_RETURN_IF_ERROR(pipeline.Health());
  // Whole-run state: the partitioner's own accounting plus the live
  // sink-side state (replication bitsets, writer buffers, any opted-in
  // edge lists) — snapshot before Finish() releases the writer.
  result.stats.state_bytes += pipeline.StateBytes();
  // Report a mid-stream capacity violation before paying for the spill
  // manifest: the run is already known invalid.
  if (options.validate) {
    TPSL_RETURN_IF_ERROR(validating_sink.status());
  }
  if (spill_sink) {
    obs::TraceSpan span("partition.finish", "partition");
    TPSL_RETURN_IF_ERROR(spill_sink->Finish());
  }
  result.wall_seconds = timer.ElapsedSeconds();

  result.quality =
      sharded_quality ? sharded_quality->Quality() : quality_sink.Quality();
  if (options.validate) {
    // Always check that every edge was assigned; check the hard cap
    // only for partitioners that promise it (stateless hashing does
    // not — the paper reports their measured α instead).
    const uint64_t expected_edges =
        hint != 0 ? hint : result.quality.num_edges;
    const uint64_t capacity = cap_enforced
                                  ? config.PartitionCapacity(expected_edges)
                                  : ValidatingSink::kNoCapacity;
    TPSL_RETURN_IF_ERROR(validating_sink.Finish(expected_edges, capacity));
  }
  if (keep_sink) {
    result.partitions = keep_sink->TakePartitions();
  }
  if (spill_sink) {
    spill_cleanup.armed = false;  // success: the files are the result
    result.spill = std::move(spill_cleanup.files);
    result.spill.edge_counts = spill_sink->edge_counts();
    result.spill.bytes_written = spill_sink->bytes_written();
  }
  return result;
}

StatusOr<std::vector<std::unique_ptr<EdgeStream>>> OpenSpilledPartitions(
    const SpillInfo& spill) {
  if (!spill.spilled()) {
    return Status::FailedPrecondition(
        "run did not spill (set RunOptions::spill_dir)");
  }
  std::vector<std::unique_ptr<EdgeStream>> streams;
  streams.reserve(spill.partition_paths.size());
  for (const std::string& path : spill.partition_paths) {
    // Sniffing open: spilled files are compressed edge-block files
    // today, but manifests written by older runs (raw fixed-width
    // pairs) stay readable.
    TPSL_ASSIGN_OR_RETURN(std::unique_ptr<EdgeStream> stream,
                          io::OpenEdgeFile(path));
    streams.push_back(std::move(stream));
  }
  return streams;
}

std::vector<EdgeStream*> StreamPointers(
    const std::vector<std::unique_ptr<EdgeStream>>& streams) {
  std::vector<EdgeStream*> pointers;
  pointers.reserve(streams.size());
  for (const std::unique_ptr<EdgeStream>& stream : streams) {
    pointers.push_back(stream.get());
  }
  return pointers;
}

void RemoveSpilledFiles(const SpillInfo& spill) {
  for (const std::string& path : spill.partition_paths) {
    std::remove(path.c_str());
  }
  if (spill.spilled()) {
    std::remove((spill.prefix + ".manifest").c_str());
  }
}

}  // namespace tpsl

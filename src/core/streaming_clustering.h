#ifndef TPSL_CORE_STREAMING_CLUSTERING_H_
#define TPSL_CORE_STREAMING_CLUSTERING_H_

#include <cstdint>
#include <vector>

#include "exec/exec_context.h"
#include "graph/degrees.h"
#include "graph/edge_stream.h"
#include "graph/types.h"
#include "util/status.h"

namespace tpsl {

/// Configuration of 2PS-L Phase 1 (paper Algorithm 1): a streaming
/// vertex-clustering pass extending Hollocou et al. with (a) exact
/// upfront degrees, (b) a hard cluster-volume cap and (c) optional
/// re-streaming.
struct ClusteringConfig {
  /// Number of streaming passes (paper default: 1, i.e. no
  /// re-streaming; Figs. 7-8 sweep 1..8).
  uint32_t num_passes = 1;

  /// Cluster volume cap as a multiple of the average partition volume
  /// 2|E|/k. The paper mandates a cap but leaves the value open
  /// (§III-A2); our ablation (bench/ablation_design_choices) shows
  /// sub-partition-sized clusters (0.25x) partition best, because they
  /// bound the damage of volume-greedy mis-migrations and give the
  /// scheduler packing freedom.
  double volume_cap_factor = 0.25;

  /// Disables the volume cap entirely (ablation: original Hollocou
  /// behaviour, unbounded clusters).
  bool enforce_volume_cap = true;
};

/// Result of the clustering phase; all arrays are the shared state
/// reused by Phase 2 (the paper stresses clustering adds no memory
/// beyond partitioning state).
struct Clustering {
  /// Vertex -> cluster id, compacted to [0, num_clusters).
  std::vector<ClusterId> vertex_cluster;

  /// Cluster volumes: sum of (full) degrees of member vertices.
  std::vector<uint64_t> cluster_volumes;

  uint32_t num_clusters() const {
    return static_cast<uint32_t>(cluster_volumes.size());
  }

  uint64_t HeapBytes() const {
    return vertex_cluster.size() * sizeof(ClusterId) +
           cluster_volumes.size() * sizeof(uint64_t);
  }
};

/// Runs Algorithm 1. `degrees` must cover every vertex id that appears
/// in `stream`. `num_partitions` is only used to derive the volume cap.
/// Deterministic; performs `config.num_passes` passes over the stream.
StatusOr<Clustering> StreamingClustering(EdgeStream& stream,
                                         const DegreeTable& degrees,
                                         uint32_t num_partitions,
                                         const ClusteringConfig& config);

/// Algorithm 1 on the execution engine: the streaming passes ride
/// exec::ParallelForEdges with the clustering state held in relaxed
/// atomics, so the clustering phase scales with the same worker pool
/// as Phase 2 instead of bounding the parallel partitioners at
/// Amdahl's sequential fraction.
///
/// Labeling: clusters are labeled by founding vertex id (v2c[v] = v on
/// first touch) instead of allocation order, so label assignment needs
/// no shared counter and no ordering. Migration decisions read only
/// volumes and degrees — never label values — and compaction renumbers
/// by first member in vertex-scan order, so with exec.threads == 1
/// (the engine's in-order inline path) the compacted result is
/// byte-identical to StreamingClustering.
///
/// With threads > 1, workers race on volumes and membership with
/// relaxed atomics: decisions may use stale volumes and the cap can be
/// transiently overshot (bounded by one migration per in-flight
/// worker), which drifts *quality*, never correctness — the returned
/// cluster_volumes are recomputed exactly from final membership, and
/// every streamed vertex ends up in exactly one cluster.
StatusOr<Clustering> ParallelStreamingClustering(
    EdgeStream& stream, const DegreeTable& degrees, uint32_t num_partitions,
    const ClusteringConfig& config, const exec::ExecContext& exec);

}  // namespace tpsl

#endif  // TPSL_CORE_STREAMING_CLUSTERING_H_

#ifndef TPSL_CORE_SCORING_H_
#define TPSL_CORE_SCORING_H_

#include <cstdint>

#include "graph/types.h"
#include "partition/replication_table.h"

namespace tpsl {

/// Scoring functions for stateful streaming edge partitioning.
///
/// TwopsScore implements the paper's new constant-time scoring function
/// (§III-B Step 3): degree-weighted replication affinity plus a
/// cluster-volume affinity, evaluated on exactly two candidate
/// partitions. HdrfScore implements the classic HDRF function (Petroni
/// et al., CIKM'15), evaluated on all k partitions; it is shared by the
/// HDRF baseline and the 2PS-HDRF variant.

/// Per-endpoint replication term of the 2PS-L score:
/// g = 1 + (1 - d_self / (d_u + d_v)) if the vertex is replicated on p.
inline double TwopsReplicationTerm(bool replicated_on_p, uint32_t own_degree,
                                   uint64_t degree_sum) {
  if (!replicated_on_p) {
    return 0.0;
  }
  return 1.0 + (1.0 - static_cast<double>(own_degree) /
                          static_cast<double>(degree_sum));
}

/// Per-endpoint cluster-volume term of the 2PS-L score:
/// sc = vol(c_self) / (vol(c_u) + vol(c_v)) if c_self maps to p.
inline double TwopsClusterTerm(bool cluster_on_p, uint64_t own_volume,
                               uint64_t volume_sum) {
  if (!cluster_on_p || volume_sum == 0) {
    return 0.0;
  }
  return static_cast<double>(own_volume) / static_cast<double>(volume_sum);
}

/// Full 2PS-L score s(u, v, p) for one candidate partition.
inline double TwopsScore(const ReplicationTable& replicas, VertexId u,
                         VertexId v, uint32_t du, uint32_t dv,
                         uint64_t vol_cu, uint64_t vol_cv, bool cu_on_p,
                         bool cv_on_p, PartitionId p) {
  const uint64_t degree_sum = static_cast<uint64_t>(du) + dv;
  const uint64_t volume_sum = vol_cu + vol_cv;
  return TwopsReplicationTerm(replicas.Test(u, p), du, degree_sum) +
         TwopsReplicationTerm(replicas.Test(v, p), dv, degree_sum) +
         TwopsClusterTerm(cu_on_p, vol_cu, volume_sum) +
         TwopsClusterTerm(cv_on_p, vol_cv, volume_sum);
}

/// HDRF degree-weighted replication score C_REP(u, v, p).
/// θ_u = d_u / (d_u + d_v); an endpoint replicated on p contributes
/// 1 + (1 - θ_self).
inline double HdrfReplicationScore(bool u_on_p, bool v_on_p, uint32_t du,
                                   uint32_t dv) {
  const double degree_sum = static_cast<double>(du) + dv;
  double score = 0.0;
  if (u_on_p) {
    score += degree_sum > 0 ? 1.0 + (1.0 - du / degree_sum) : 1.0;
  }
  if (v_on_p) {
    score += degree_sum > 0 ? 1.0 + (1.0 - dv / degree_sum) : 1.0;
  }
  return score;
}

/// HDRF balance score C_BAL(p) = λ · (maxsize − |p|) / (ε + maxsize −
/// minsize).
inline double HdrfBalanceScore(uint64_t partition_size, uint64_t max_size,
                               uint64_t min_size, double lambda,
                               double epsilon = 1.0) {
  return lambda * static_cast<double>(max_size - partition_size) /
         (epsilon + static_cast<double>(max_size - min_size));
}

}  // namespace tpsl

#endif  // TPSL_CORE_SCORING_H_

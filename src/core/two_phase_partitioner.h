#ifndef TPSL_CORE_TWO_PHASE_PARTITIONER_H_
#define TPSL_CORE_TWO_PHASE_PARTITIONER_H_

#include <string>

#include "core/streaming_clustering.h"
#include "partition/partitioner.h"

namespace tpsl {

/// The paper's contribution: 2PS-L, a two-phase out-of-core edge
/// partitioner with O(|E|) run-time and O(|V|·k) space.
///
/// Phase 1 clusters vertices with a bounded-volume streaming pass
/// (Algorithm 1). Phase 2 (Algorithm 2) maps clusters to partitions
/// with Graham's LPT scheduling, pre-partitions all intra-cluster /
/// co-located-cluster edges, and streams the remaining edges scoring
/// only the two partitions associated with the endpoints' clusters.
///
/// The same class implements 2PS-HDRF (paper §V-D): identical Phase 1
/// and pre-partitioning, but the remaining edges are scored with the
/// HDRF function over all k partitions (O(|E|·k) worst case).
class TwoPhasePartitioner : public Partitioner {
 public:
  enum class ScoringMode {
    kLinear,  // 2PS-L: two candidate partitions, constant-time score
    kHdrf,    // 2PS-HDRF: all k partitions, HDRF score
  };

  enum class SchedulingMode {
    kGraham,      // sorted list scheduling (paper default)
    kRoundRobin,  // ablation: volume-oblivious mapping
  };

  struct Options {
    ClusteringConfig clustering;
    ScoringMode scoring = ScoringMode::kLinear;
    SchedulingMode scheduling = SchedulingMode::kGraham;

    /// λ of the HDRF balance term (only used in kHdrf mode; the paper
    /// uses 1.1).
    double hdrf_lambda = 1.1;

    /// Ablation: drop the cluster-volume terms (sc_u + sc_v) from the
    /// linear score, reducing it to pure degree-weighted replication.
    bool use_cluster_volume_term = true;
  };

  TwoPhasePartitioner() = default;
  explicit TwoPhasePartitioner(Options options) : options_(options) {}

  std::string name() const override;

  Status Partition(EdgeStream& stream, const PartitionConfig& config,
                   AssignmentSink& sink, PartitionStats* stats) override;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace tpsl

#endif  // TPSL_CORE_TWO_PHASE_PARTITIONER_H_

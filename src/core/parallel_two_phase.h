#ifndef TPSL_CORE_PARALLEL_TWO_PHASE_H_
#define TPSL_CORE_PARALLEL_TWO_PHASE_H_

#include <string>

#include "core/streaming_clustering.h"
#include "partition/partitioner.h"

namespace tpsl {

/// Parallel 2PS-L — the CuSP-style parallelization the paper sketches
/// in its related-work discussion: the degree count stays sequential
/// (one cheap counting pass), while the Phase-1 clustering pass and
/// both Phase-2 streaming passes run on the shared execution engine
/// (exec::ParallelForEdges over config.exec's thread pool) — clustering
/// over relaxed-atomic volume/membership state, scoring against a
/// shared atomic replication table.
///
/// Thread count and batch size come from PartitionConfig::exec; with
/// exec.threads == 1 the engine degrades to an in-order inline loop and
/// the partitioner's per-edge decisions match sequential
/// TwoPhasePartitioner bit for bit (the determinism test relies on
/// this).
///
/// As the paper notes, "staleness in state synchronization of multiple
/// partitioner instances can lead to lower partitioning quality": with
/// threads > 1, workers observe slightly stale replication bits, so the
/// replication factor is marginally above the sequential algorithm's,
/// and the assignment emission order is nondeterministic. The hard
/// balance cap is still enforced exactly (loads are claimed with CAS
/// before an edge is committed).
class ParallelTwoPhasePartitioner : public Partitioner {
 public:
  enum class ScoringMode {
    kLinear,  // 2PS-L two-candidate score: ns per edge, little to gain
    kHdrf,    // 2PS-HDRF all-k score: O(k) per edge, parallelizes well
  };

  struct Options {
    ClusteringConfig clustering;
    bool use_cluster_volume_term = true;
    /// Which scoring runs in the parallel pass. Linear scoring is so
    /// cheap that the serialized stream reader bounds throughput
    /// (Amdahl); HDRF scoring is where parallel workers pay off — the
    /// regime CuSP targets.
    ScoringMode scoring = ScoringMode::kLinear;
    /// λ of the HDRF balance term (kHdrf mode).
    double hdrf_lambda = 1.1;
  };

  ParallelTwoPhasePartitioner() = default;
  explicit ParallelTwoPhasePartitioner(Options options) : options_(options) {}

  std::string name() const override {
    return options_.scoring == ScoringMode::kLinear ? "2PS-L(par)"
                                                    : "2PS-HDRF(par)";
  }

  Status Partition(EdgeStream& stream, const PartitionConfig& config,
                   AssignmentSink& sink, PartitionStats* stats) override;

 private:
  Options options_;
};

}  // namespace tpsl

#endif  // TPSL_CORE_PARALLEL_TWO_PHASE_H_

#ifndef TPSL_CORE_CLUSTER_SCHEDULE_H_
#define TPSL_CORE_CLUSTER_SCHEDULE_H_

#include <cstdint>
#include <vector>

#include "graph/types.h"

namespace tpsl {

/// Cluster -> partition mapping (Step 1 of paper Algorithm 2), solved
/// as Makespan Scheduling on Identical Machines: clusters are jobs
/// whose run-time is their volume, partitions are machines.
struct ClusterSchedule {
  /// c2p in the paper: cluster id -> partition id.
  std::vector<PartitionId> cluster_partition;

  /// vol_p in the paper: total volume of clusters mapped to each
  /// partition.
  std::vector<uint64_t> partition_volumes;

  uint64_t HeapBytes() const {
    return cluster_partition.size() * sizeof(PartitionId) +
           partition_volumes.size() * sizeof(uint64_t);
  }
};

/// Graham's sorted list scheduling (LPT): sort clusters by decreasing
/// volume, repeatedly assign to the least-loaded partition. 4/3 -
/// 1/(3k) approximation of the optimal makespan.
ClusterSchedule ScheduleClustersGraham(const std::vector<uint64_t>& volumes,
                                       uint32_t num_partitions);

/// Naive round-robin mapping, ignoring volumes. Ablation baseline for
/// the scheduling design choice.
ClusterSchedule ScheduleClustersRoundRobin(const std::vector<uint64_t>& volumes,
                                           uint32_t num_partitions);

}  // namespace tpsl

#endif  // TPSL_CORE_CLUSTER_SCHEDULE_H_

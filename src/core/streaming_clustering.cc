#include "core/streaming_clustering.h"

#include <atomic>
#include <limits>

#include "exec/parallel_for_edges.h"
#include "partition/score_tables.h"

namespace tpsl {
namespace {

/// Mutable clustering state shared across streaming passes (the d[],
/// vol[] and v2c[] arrays of paper Algorithm 1).
struct ClusteringState {
  const DegreeTable* degrees;
  std::vector<ClusterId> v2c;
  std::vector<uint64_t> vol;
  uint64_t max_volume;

  void EnsureCluster(VertexId v) {
    if (v2c[v] == kInvalidCluster) {
      v2c[v] = static_cast<ClusterId>(vol.size());
      vol.push_back(degrees->degree(v));
    }
  }

  /// One edge of one streaming pass: lines 11-22 of Algorithm 1.
  void ProcessEdge(const Edge& e) {
    EnsureCluster(e.first);
    EnsureCluster(e.second);

    const ClusterId cu = v2c[e.first];
    const ClusterId cv = v2c[e.second];
    if (cu == cv) {
      return;  // Migration between identical clusters is a no-op.
    }
    // Line 16: both clusters must currently respect the volume bound.
    if (vol[cu] > max_volume || vol[cv] > max_volume) {
      return;
    }
    // Line 17: the vertex whose cluster has the smaller volume
    // (excluding the vertex's own degree) migrates.
    const uint32_t du = degrees->degree(e.first);
    const uint32_t dv = degrees->degree(e.second);
    const int64_t residual_u = static_cast<int64_t>(vol[cu]) - du;
    const int64_t residual_v = static_cast<int64_t>(vol[cv]) - dv;

    VertexId small_vertex;
    uint32_t small_degree;
    ClusterId small_cluster, large_cluster;
    if (residual_u <= residual_v) {
      small_vertex = e.first;
      small_degree = du;
      small_cluster = cu;
      large_cluster = cv;
    } else {
      small_vertex = e.second;
      small_degree = dv;
      small_cluster = cv;
      large_cluster = cu;
    }
    // Line 19: migrate only if the target stays within the bound.
    if (vol[large_cluster] + small_degree <= max_volume) {
      vol[large_cluster] += small_degree;
      vol[small_cluster] -= small_degree;
      v2c[small_vertex] = large_cluster;
    }
  }
};

}  // namespace

StatusOr<Clustering> StreamingClustering(EdgeStream& stream,
                                         const DegreeTable& degrees,
                                         uint32_t num_partitions,
                                         const ClusteringConfig& config) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  if (config.num_passes == 0) {
    return Status::InvalidArgument("num_passes must be positive");
  }

  ClusteringState state;
  state.degrees = &degrees;
  state.v2c.assign(degrees.degrees.size(), kInvalidCluster);
  if (config.enforce_volume_cap) {
    const double cap = config.volume_cap_factor *
                       static_cast<double>(degrees.TotalVolume()) /
                       num_partitions;
    state.max_volume = static_cast<uint64_t>(cap);
  } else {
    state.max_volume = std::numeric_limits<uint64_t>::max();
  }

  // The per-edge random accesses are the v2c rows (and the degree
  // entries behind EnsureCluster); run the passes through the kernel's
  // prefetching driver so those lines are in flight a few edges ahead.
  const auto prefetch = [&](const Edge& e) {
    __builtin_prefetch(state.v2c.data() + e.first, /*rw=*/0, /*locality=*/3);
    __builtin_prefetch(state.v2c.data() + e.second, /*rw=*/0, /*locality=*/3);
    __builtin_prefetch(degrees.degrees.data() + e.first, /*rw=*/0,
                       /*locality=*/3);
    __builtin_prefetch(degrees.degrees.data() + e.second, /*rw=*/0,
                       /*locality=*/3);
  };
  for (uint32_t pass = 0; pass < config.num_passes; ++pass) {
    TPSL_RETURN_IF_ERROR(ForEachEdgePrefetched(
        stream, prefetch, [&state](const Edge& e) { state.ProcessEdge(e); }));
  }

  // Compact cluster ids to a dense range and recompute volumes from
  // member degrees (drops clusters emptied by migration).
  Clustering result;
  result.vertex_cluster.assign(state.v2c.size(), kInvalidCluster);
  std::vector<ClusterId> remap(state.vol.size(), kInvalidCluster);
  for (VertexId v = 0; v < state.v2c.size(); ++v) {
    const ClusterId old_id = state.v2c[v];
    if (old_id == kInvalidCluster) {
      continue;  // Vertex never appeared in the stream.
    }
    if (remap[old_id] == kInvalidCluster) {
      remap[old_id] = static_cast<ClusterId>(result.cluster_volumes.size());
      result.cluster_volumes.push_back(0);
    }
    const ClusterId new_id = remap[old_id];
    result.vertex_cluster[v] = new_id;
    result.cluster_volumes[new_id] += degrees.degree(v);
  }
  return result;
}

namespace {

/// Shared-state variant of ClusteringState for the engine-driven
/// passes: cluster labels are founding-vertex ids (no shared allocation
/// counter), volumes live in one relaxed-atomic array indexed by label.
/// vol[v] is pre-seeded with degree(v) — exactly the volume of the
/// singleton cluster {v} — so first touch needs only the v2c CAS.
struct AtomicClusteringState {
  const DegreeTable* degrees;
  std::vector<std::atomic<ClusterId>> v2c;
  std::vector<std::atomic<uint64_t>> vol;
  uint64_t max_volume;

  void EnsureCluster(VertexId v) {
    // Check-then-CAS: after warm-up almost every vertex is labeled, and
    // the plain load keeps the hot path free of lock-prefixed RMWs (an
    // unconditional CAS halves inline clustering throughput). The CAS
    // stays authoritative for the cold first touch.
    if (v2c[v].load(std::memory_order_relaxed) != kInvalidCluster) {
      return;
    }
    ClusterId expected = kInvalidCluster;
    v2c[v].compare_exchange_strong(expected, v, std::memory_order_relaxed);
  }

  /// Same decision sequence as ClusteringState::ProcessEdge; reads are
  /// relaxed snapshots, so under concurrency a decision may be made on
  /// stale volumes (benign drift — see header comment). Run inline in
  /// stream order, every snapshot is the exact current value and the
  /// decisions match the sequential pass step for step.
  void ProcessEdge(const Edge& e) {
    EnsureCluster(e.first);
    EnsureCluster(e.second);

    const ClusterId cu = v2c[e.first].load(std::memory_order_relaxed);
    const ClusterId cv = v2c[e.second].load(std::memory_order_relaxed);
    if (cu == cv) {
      return;
    }
    const uint64_t vol_u = vol[cu].load(std::memory_order_relaxed);
    const uint64_t vol_v = vol[cv].load(std::memory_order_relaxed);
    if (vol_u > max_volume || vol_v > max_volume) {
      return;
    }
    const uint32_t du = degrees->degree(e.first);
    const uint32_t dv = degrees->degree(e.second);
    const int64_t residual_u = static_cast<int64_t>(vol_u) - du;
    const int64_t residual_v = static_cast<int64_t>(vol_v) - dv;

    VertexId small_vertex;
    uint32_t small_degree;
    ClusterId small_cluster, large_cluster;
    uint64_t large_volume;
    if (residual_u <= residual_v) {
      small_vertex = e.first;
      small_degree = du;
      small_cluster = cu;
      large_cluster = cv;
      large_volume = vol_v;
    } else {
      small_vertex = e.second;
      small_degree = dv;
      small_cluster = cv;
      large_cluster = cu;
      large_volume = vol_u;
    }
    if (large_volume + small_degree <= max_volume) {
      vol[large_cluster].fetch_add(small_degree, std::memory_order_relaxed);
      vol[small_cluster].fetch_sub(small_degree, std::memory_order_relaxed);
      v2c[small_vertex].store(large_cluster, std::memory_order_relaxed);
    }
  }
};

}  // namespace

StatusOr<Clustering> ParallelStreamingClustering(
    EdgeStream& stream, const DegreeTable& degrees, uint32_t num_partitions,
    const ClusteringConfig& config, const exec::ExecContext& exec) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  if (config.num_passes == 0) {
    return Status::InvalidArgument("num_passes must be positive");
  }
  if (exec.batch_size == 0) {
    return Status::InvalidArgument("exec.batch_size must be positive");
  }

  const VertexId num_vertices =
      static_cast<VertexId>(degrees.degrees.size());
  AtomicClusteringState state;
  state.degrees = &degrees;
  state.v2c = std::vector<std::atomic<ClusterId>>(num_vertices);
  state.vol = std::vector<std::atomic<uint64_t>>(num_vertices);
  for (VertexId v = 0; v < num_vertices; ++v) {
    state.v2c[v].store(kInvalidCluster, std::memory_order_relaxed);
    state.vol[v].store(degrees.degree(v), std::memory_order_relaxed);
  }
  if (config.enforce_volume_cap) {
    const double cap = config.volume_cap_factor *
                       static_cast<double>(degrees.TotalVolume()) /
                       num_partitions;
    state.max_volume = static_cast<uint64_t>(cap);
  } else {
    state.max_volume = std::numeric_limits<uint64_t>::max();
  }

  exec::ParallelForEdgesOptions options;
  options.batch_size = exec.batch_size;
  options.workers = exec.ResolveThreads();
  exec::ThreadPool& pool = exec.pool_or_global();
  for (uint32_t pass = 0; pass < config.num_passes; ++pass) {
    TPSL_RETURN_IF_ERROR(exec::ParallelForEdges(
        stream, pool, options,
        [&state](const Edge* edges, size_t count) -> Status {
          // In-batch software prefetch: the random accesses are the
          // v2c/vol rows of both endpoints a few edges ahead, same
          // distance as the sequential kernel driver.
          constexpr size_t kPrefetchDistance = 8;
          for (size_t i = 0; i < count; ++i) {
            if (i + kPrefetchDistance < count) {
              const Edge& ahead = edges[i + kPrefetchDistance];
              __builtin_prefetch(state.v2c.data() + ahead.first, 0, 3);
              __builtin_prefetch(state.v2c.data() + ahead.second, 0, 3);
            }
            state.ProcessEdge(edges[i]);
          }
          return Status::OK();
        }));
  }

  // Compaction is shared with the sequential pass: renumber labels by
  // first member in vertex-scan order and recompute volumes from
  // member degrees. Labels here are vertex ids, but the renumbering
  // only depends on which vertices share a label, so the output is the
  // same dense Clustering either way.
  Clustering result;
  result.vertex_cluster.assign(num_vertices, kInvalidCluster);
  std::vector<ClusterId> remap(num_vertices, kInvalidCluster);
  for (VertexId v = 0; v < num_vertices; ++v) {
    const ClusterId old_id = state.v2c[v].load(std::memory_order_relaxed);
    if (old_id == kInvalidCluster) {
      continue;  // Vertex never appeared in the stream.
    }
    if (remap[old_id] == kInvalidCluster) {
      remap[old_id] = static_cast<ClusterId>(result.cluster_volumes.size());
      result.cluster_volumes.push_back(0);
    }
    const ClusterId new_id = remap[old_id];
    result.vertex_cluster[v] = new_id;
    result.cluster_volumes[new_id] += degrees.degree(v);
  }
  return result;
}

}  // namespace tpsl

#include "core/streaming_clustering.h"

#include <limits>

#include "partition/score_tables.h"

namespace tpsl {
namespace {

/// Mutable clustering state shared across streaming passes (the d[],
/// vol[] and v2c[] arrays of paper Algorithm 1).
struct ClusteringState {
  const DegreeTable* degrees;
  std::vector<ClusterId> v2c;
  std::vector<uint64_t> vol;
  uint64_t max_volume;

  void EnsureCluster(VertexId v) {
    if (v2c[v] == kInvalidCluster) {
      v2c[v] = static_cast<ClusterId>(vol.size());
      vol.push_back(degrees->degree(v));
    }
  }

  /// One edge of one streaming pass: lines 11-22 of Algorithm 1.
  void ProcessEdge(const Edge& e) {
    EnsureCluster(e.first);
    EnsureCluster(e.second);

    const ClusterId cu = v2c[e.first];
    const ClusterId cv = v2c[e.second];
    if (cu == cv) {
      return;  // Migration between identical clusters is a no-op.
    }
    // Line 16: both clusters must currently respect the volume bound.
    if (vol[cu] > max_volume || vol[cv] > max_volume) {
      return;
    }
    // Line 17: the vertex whose cluster has the smaller volume
    // (excluding the vertex's own degree) migrates.
    const uint32_t du = degrees->degree(e.first);
    const uint32_t dv = degrees->degree(e.second);
    const int64_t residual_u = static_cast<int64_t>(vol[cu]) - du;
    const int64_t residual_v = static_cast<int64_t>(vol[cv]) - dv;

    VertexId small_vertex;
    uint32_t small_degree;
    ClusterId small_cluster, large_cluster;
    if (residual_u <= residual_v) {
      small_vertex = e.first;
      small_degree = du;
      small_cluster = cu;
      large_cluster = cv;
    } else {
      small_vertex = e.second;
      small_degree = dv;
      small_cluster = cv;
      large_cluster = cu;
    }
    // Line 19: migrate only if the target stays within the bound.
    if (vol[large_cluster] + small_degree <= max_volume) {
      vol[large_cluster] += small_degree;
      vol[small_cluster] -= small_degree;
      v2c[small_vertex] = large_cluster;
    }
  }
};

}  // namespace

StatusOr<Clustering> StreamingClustering(EdgeStream& stream,
                                         const DegreeTable& degrees,
                                         uint32_t num_partitions,
                                         const ClusteringConfig& config) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  if (config.num_passes == 0) {
    return Status::InvalidArgument("num_passes must be positive");
  }

  ClusteringState state;
  state.degrees = &degrees;
  state.v2c.assign(degrees.degrees.size(), kInvalidCluster);
  if (config.enforce_volume_cap) {
    const double cap = config.volume_cap_factor *
                       static_cast<double>(degrees.TotalVolume()) /
                       num_partitions;
    state.max_volume = static_cast<uint64_t>(cap);
  } else {
    state.max_volume = std::numeric_limits<uint64_t>::max();
  }

  // The per-edge random accesses are the v2c rows (and the degree
  // entries behind EnsureCluster); run the passes through the kernel's
  // prefetching driver so those lines are in flight a few edges ahead.
  const auto prefetch = [&](const Edge& e) {
    __builtin_prefetch(state.v2c.data() + e.first, /*rw=*/0, /*locality=*/3);
    __builtin_prefetch(state.v2c.data() + e.second, /*rw=*/0, /*locality=*/3);
    __builtin_prefetch(degrees.degrees.data() + e.first, /*rw=*/0,
                       /*locality=*/3);
    __builtin_prefetch(degrees.degrees.data() + e.second, /*rw=*/0,
                       /*locality=*/3);
  };
  for (uint32_t pass = 0; pass < config.num_passes; ++pass) {
    TPSL_RETURN_IF_ERROR(ForEachEdgePrefetched(
        stream, prefetch, [&state](const Edge& e) { state.ProcessEdge(e); }));
  }

  // Compact cluster ids to a dense range and recompute volumes from
  // member degrees (drops clusters emptied by migration).
  Clustering result;
  result.vertex_cluster.assign(state.v2c.size(), kInvalidCluster);
  std::vector<ClusterId> remap(state.vol.size(), kInvalidCluster);
  for (VertexId v = 0; v < state.v2c.size(); ++v) {
    const ClusterId old_id = state.v2c[v];
    if (old_id == kInvalidCluster) {
      continue;  // Vertex never appeared in the stream.
    }
    if (remap[old_id] == kInvalidCluster) {
      remap[old_id] = static_cast<ClusterId>(result.cluster_volumes.size());
      result.cluster_volumes.push_back(0);
    }
    const ClusterId new_id = remap[old_id];
    result.vertex_cluster[v] = new_id;
    result.cluster_volumes[new_id] += degrees.degree(v);
  }
  return result;
}

}  // namespace tpsl

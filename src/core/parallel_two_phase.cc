#include "core/parallel_two_phase.h"

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "core/cluster_schedule.h"
#include "core/scoring.h"
#include "graph/degrees.h"
#include "util/random.h"
#include "util/timer.h"

namespace tpsl {
namespace {

/// Lock-free vertex-to-partition replication bit matrix. Readers may
/// observe slightly stale bits (benign: only affects scoring quality,
/// never correctness).
class AtomicReplicationBits {
 public:
  AtomicReplicationBits(VertexId num_vertices, uint32_t num_partitions)
      : num_partitions_(num_partitions),
        words_((static_cast<uint64_t>(num_vertices) * num_partitions + 63) /
               64) {
    for (auto& word : words_) {
      word.store(0, std::memory_order_relaxed);
    }
  }

  bool Test(VertexId v, PartitionId p) const {
    const uint64_t bit = Index(v, p);
    return (words_[bit >> 6].load(std::memory_order_relaxed) >> (bit & 63)) &
           1;
  }

  void Set(VertexId v, PartitionId p) {
    const uint64_t bit = Index(v, p);
    words_[bit >> 6].fetch_or(uint64_t{1} << (bit & 63),
                              std::memory_order_relaxed);
  }

  uint64_t HeapBytes() const {
    return words_.size() * sizeof(std::atomic<uint64_t>);
  }

 private:
  uint64_t Index(VertexId v, PartitionId p) const {
    return static_cast<uint64_t>(v) * num_partitions_ + p;
  }

  uint32_t num_partitions_;
  std::vector<std::atomic<uint64_t>> words_;
};

/// Claims one load slot of `partition` if it is below `capacity`.
bool TryClaim(std::atomic<uint64_t>& load, uint64_t capacity) {
  uint64_t current = load.load(std::memory_order_relaxed);
  while (current < capacity) {
    if (load.compare_exchange_weak(current, current + 1,
                                   std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

struct SharedState {
  const DegreeTable* degrees;
  const Clustering* clustering;
  const ClusterSchedule* schedule;
  AtomicReplicationBits* replicas;
  std::vector<std::atomic<uint64_t>>* loads;
  uint64_t capacity;
  uint64_t seed;
  bool use_volume_term;

  /// Claims a partition for `e`, preferring `preferred`, then
  /// degree-hash, then any open partition. Always succeeds while total
  /// capacity remains.
  PartitionId ClaimWithOverflow(const Edge& e, PartitionId preferred) const {
    if (TryClaim((*loads)[preferred], capacity)) {
      return preferred;
    }
    const VertexId pivot =
        degrees->degree(e.first) >= degrees->degree(e.second) ? e.first
                                                              : e.second;
    const uint32_t k = static_cast<uint32_t>(loads->size());
    const PartitionId hashed =
        static_cast<PartitionId>(Mix64(HashCombine(seed, pivot)) % k);
    if (hashed != preferred && TryClaim((*loads)[hashed], capacity)) {
      return hashed;
    }
    // Linear probe from the hash position; guaranteed to find an open
    // partition because k * capacity >= |E|.
    for (uint32_t step = 1; step <= k; ++step) {
      const PartitionId p = (hashed + step) % k;
      if (TryClaim((*loads)[p], capacity)) {
        return p;
      }
    }
    return kInvalidPartition;  // Unreachable.
  }

  void Commit(const Edge& e, PartitionId p) const {
    replicas->Set(e.first, p);
    replicas->Set(e.second, p);
  }
};

/// Runs one parallelized pass over the stream: the dispatcher thread
/// reads batches; workers process them via `process(edge)` returning
/// the chosen partition or kInvalidPartition to skip; assignments are
/// flushed to the sink under a mutex.
template <typename ProcessFn>
Status ParallelPass(EdgeStream& stream, uint32_t num_threads,
                    uint32_t batch_size, AssignmentSink& sink,
                    const ProcessFn& process) {
  TPSL_RETURN_IF_ERROR(stream.Reset());

  std::mutex stream_mutex;
  std::mutex sink_mutex;
  std::atomic<bool> done{false};

  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  for (uint32_t t = 0; t < num_threads; ++t) {
    workers.emplace_back([&]() {
      std::vector<Edge> batch(batch_size);
      std::vector<std::pair<Edge, PartitionId>> results;
      results.reserve(batch_size);
      while (true) {
        size_t n;
        {
          std::lock_guard<std::mutex> lock(stream_mutex);
          if (done.load(std::memory_order_relaxed)) {
            return;
          }
          n = stream.Next(batch.data(), batch.size());
          if (n == 0) {
            done.store(true, std::memory_order_relaxed);
            return;
          }
        }
        results.clear();
        for (size_t i = 0; i < n; ++i) {
          const PartitionId p = process(batch[i]);
          if (p != kInvalidPartition) {
            results.emplace_back(batch[i], p);
          }
        }
        if (!results.empty()) {
          std::lock_guard<std::mutex> lock(sink_mutex);
          for (const auto& [edge, partition] : results) {
            sink.Assign(edge, partition);
          }
        }
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  return Status::OK();
}

}  // namespace

Status ParallelTwoPhasePartitioner::Partition(EdgeStream& stream,
                                              const PartitionConfig& config,
                                              AssignmentSink& sink,
                                              PartitionStats* stats) {
  if (config.num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  if (options_.batch_size == 0) {
    return Status::InvalidArgument("batch_size must be positive");
  }
  PartitionStats local_stats;
  PartitionStats& out = stats != nullptr ? *stats : local_stats;

  // --- Sequential Phase 1 (cheap; see class comment). ---
  DegreeTable degrees;
  {
    ScopedTimer timer(&out.phase_seconds["degree"]);
    TPSL_ASSIGN_OR_RETURN(degrees, ComputeDegrees(stream));
  }
  out.stream_passes += 1;

  Clustering clustering;
  {
    ScopedTimer timer(&out.phase_seconds["clustering"]);
    TPSL_ASSIGN_OR_RETURN(
        clustering, StreamingClustering(stream, degrees,
                                        config.num_partitions,
                                        options_.clustering));
  }
  out.stream_passes += options_.clustering.num_passes;

  // --- Parallel Phase 2. ---
  ScopedTimer partition_timer(&out.phase_seconds["partitioning"]);
  const ClusterSchedule schedule = ScheduleClustersGraham(
      clustering.cluster_volumes, config.num_partitions);

  AtomicReplicationBits replicas(degrees.num_vertices(),
                                 config.num_partitions);
  std::vector<std::atomic<uint64_t>> loads(config.num_partitions);
  for (auto& load : loads) {
    load.store(0, std::memory_order_relaxed);
  }

  SharedState shared;
  shared.degrees = &degrees;
  shared.clustering = &clustering;
  shared.schedule = &schedule;
  shared.replicas = &replicas;
  shared.loads = &loads;
  shared.capacity = config.PartitionCapacity(degrees.num_edges);
  shared.seed = config.seed;
  shared.use_volume_term = options_.use_cluster_volume_term;

  out.state_bytes = degrees.degrees.size() * sizeof(uint32_t) +
                    clustering.HeapBytes() + schedule.HeapBytes() +
                    replicas.HeapBytes() +
                    loads.size() * sizeof(std::atomic<uint64_t>);

  uint32_t num_threads = options_.num_threads != 0
                             ? options_.num_threads
                             : std::thread::hardware_concurrency();
  num_threads = std::max<uint32_t>(1, num_threads);

  std::atomic<uint64_t> prepartitioned{0};
  std::atomic<uint64_t> remaining{0};

  // Pass A: pre-partition co-located edges.
  TPSL_RETURN_IF_ERROR(ParallelPass(
      stream, num_threads, options_.batch_size, sink,
      [&](const Edge& e) -> PartitionId {
        const ClusterId c1 = clustering.vertex_cluster[e.first];
        const ClusterId c2 = clustering.vertex_cluster[e.second];
        const PartitionId p1 = schedule.cluster_partition[c1];
        const PartitionId p2 = schedule.cluster_partition[c2];
        if (c1 != c2 && p1 != p2) {
          return kInvalidPartition;  // Scoring pass handles it.
        }
        const PartitionId target = shared.ClaimWithOverflow(e, p1);
        shared.Commit(e, target);
        prepartitioned.fetch_add(1, std::memory_order_relaxed);
        return target;
      }));
  out.stream_passes += 1;

  // Pass B: score the remaining edges — on their two candidates
  // (kLinear) or on all k partitions with HDRF scoring (kHdrf; the
  // expensive regime where the worker pool actually pays off).
  const bool linear = options_.scoring == ScoringMode::kLinear;
  const double lambda = options_.hdrf_lambda;
  TPSL_RETURN_IF_ERROR(ParallelPass(
      stream, num_threads, options_.batch_size, sink,
      [&](const Edge& e) -> PartitionId {
        const ClusterId c1 = clustering.vertex_cluster[e.first];
        const ClusterId c2 = clustering.vertex_cluster[e.second];
        const PartitionId p1 = schedule.cluster_partition[c1];
        const PartitionId p2 = schedule.cluster_partition[c2];
        if (c1 == c2 || p1 == p2) {
          return kInvalidPartition;  // Already pre-partitioned.
        }
        const uint32_t du = degrees.degree(e.first);
        const uint32_t dv = degrees.degree(e.second);
        PartitionId preferred;
        if (linear) {
          const uint64_t degree_sum = static_cast<uint64_t>(du) + dv;
          const uint64_t vol1 =
              shared.use_volume_term ? clustering.cluster_volumes[c1] : 0;
          const uint64_t vol2 =
              shared.use_volume_term ? clustering.cluster_volumes[c2] : 0;
          const uint64_t volume_sum = vol1 + vol2;
          const double score1 =
              TwopsReplicationTerm(replicas.Test(e.first, p1), du,
                                   degree_sum) +
              TwopsReplicationTerm(replicas.Test(e.second, p1), dv,
                                   degree_sum) +
              TwopsClusterTerm(true, vol1, volume_sum);
          const double score2 =
              TwopsReplicationTerm(replicas.Test(e.first, p2), du,
                                   degree_sum) +
              TwopsReplicationTerm(replicas.Test(e.second, p2), dv,
                                   degree_sum) +
              TwopsClusterTerm(true, vol2, volume_sum);
          preferred = score1 >= score2 ? p1 : p2;
        } else {
          // HDRF over all k with relaxed (stale-tolerant) load reads.
          const uint32_t k = static_cast<uint32_t>(loads.size());
          uint64_t max_load = 0;
          uint64_t min_load = UINT64_MAX;
          for (const auto& load : loads) {
            const uint64_t value = load.load(std::memory_order_relaxed);
            max_load = std::max(max_load, value);
            min_load = std::min(min_load, value);
          }
          double best_score = -1.0;
          preferred = 0;
          for (PartitionId p = 0; p < k; ++p) {
            // Re-reads may exceed the max snapshot under concurrency;
            // clamp so the balance term never underflows.
            const uint64_t load = std::min(
                loads[p].load(std::memory_order_relaxed), max_load);
            const double score =
                HdrfReplicationScore(replicas.Test(e.first, p),
                                     replicas.Test(e.second, p), du, dv) +
                HdrfBalanceScore(load, max_load, min_load, lambda);
            if (score > best_score) {
              best_score = score;
              preferred = p;
            }
          }
        }
        const PartitionId target = shared.ClaimWithOverflow(e, preferred);
        shared.Commit(e, target);
        remaining.fetch_add(1, std::memory_order_relaxed);
        return target;
      }));
  out.stream_passes += 1;

  out.prepartitioned_edges = prepartitioned.load();
  out.remaining_edges = remaining.load();
  return Status::OK();
}

}  // namespace tpsl

#include "core/parallel_two_phase.h"

#include <atomic>
#include <mutex>
#include <utility>
#include <vector>

#include "core/cluster_schedule.h"
#include "core/scoring.h"
#include "exec/parallel_for_edges.h"
#include "partition/score_tables.h"
#include "graph/degrees.h"
#include "util/random.h"
#include "util/timer.h"

namespace tpsl {
namespace {

/// Lock-free vertex-to-partition replication bit matrix. Readers may
/// observe slightly stale bits (benign: only affects scoring quality,
/// never correctness).
class AtomicReplicationBits {
 public:
  AtomicReplicationBits(VertexId num_vertices, uint32_t num_partitions)
      : num_partitions_(num_partitions),
        words_((static_cast<uint64_t>(num_vertices) * num_partitions + 63) /
               64) {
    for (auto& word : words_) {
      word.store(0, std::memory_order_relaxed);
    }
  }

  bool Test(VertexId v, PartitionId p) const {
    const uint64_t bit = Index(v, p);
    return (words_[bit >> 6].load(std::memory_order_relaxed) >> (bit & 63)) &
           1;
  }

  void Set(VertexId v, PartitionId p) {
    const uint64_t bit = Index(v, p);
    words_[bit >> 6].fetch_or(uint64_t{1} << (bit & 63),
                              std::memory_order_relaxed);
  }

  uint64_t HeapBytes() const {
    return words_.size() * sizeof(std::atomic<uint64_t>);
  }

 private:
  uint64_t Index(VertexId v, PartitionId p) const {
    return static_cast<uint64_t>(v) * num_partitions_ + p;
  }

  uint32_t num_partitions_;
  std::vector<std::atomic<uint64_t>> words_;
};

/// Claims one load slot of `partition` if it is below `capacity`.
bool TryClaim(std::atomic<uint64_t>& load, uint64_t capacity) {
  uint64_t current = load.load(std::memory_order_relaxed);
  while (current < capacity) {
    if (load.compare_exchange_weak(current, current + 1,
                                   std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

struct SharedState {
  const DegreeTable* degrees;
  const Clustering* clustering;
  const ClusterSchedule* schedule;
  AtomicReplicationBits* replicas;
  std::vector<std::atomic<uint64_t>>* loads;
  uint64_t capacity;
  uint64_t seed;
  bool use_volume_term;

  /// Claims a partition for `e`: `preferred`, then the sequential
  /// algorithm's overflow chain — degree-hash on the higher-degree
  /// endpoint, then least-loaded. The chain matches
  /// TwoPhasePartitioner's Phase2Context::OverflowTarget step for
  /// step, so a single-threaded run makes identical decisions; the
  /// CAS retry loop only matters under concurrency. Always succeeds
  /// while total capacity remains (k * capacity >= |E|).
  PartitionId ClaimWithOverflow(const Edge& e, PartitionId preferred) const {
    if (TryClaim((*loads)[preferred], capacity)) {
      return preferred;
    }
    const VertexId pivot =
        degrees->degree(e.first) >= degrees->degree(e.second) ? e.first
                                                              : e.second;
    const uint32_t k = static_cast<uint32_t>(loads->size());
    const PartitionId hashed =
        static_cast<PartitionId>(Mix64(HashCombine(seed, pivot)) % k);
    if (hashed != preferred && TryClaim((*loads)[hashed], capacity)) {
      return hashed;
    }
    // Last resort, as in the sequential algorithm: the least-loaded
    // partition (re-scanned on CAS failure; some partition is always
    // open while edges remain).
    for (;;) {
      PartitionId best = 0;
      uint64_t best_load = (*loads)[0].load(std::memory_order_relaxed);
      for (PartitionId p = 1; p < k; ++p) {
        const uint64_t load = (*loads)[p].load(std::memory_order_relaxed);
        if (load < best_load) {
          best = p;
          best_load = load;
        }
      }
      if (TryClaim((*loads)[best], capacity)) {
        return best;
      }
    }
  }

  void Commit(const Edge& e, PartitionId p) const {
    replicas->Set(e.first, p);
    replicas->Set(e.second, p);
  }
};

/// Runs one engine-driven pass over the stream: ParallelForEdges pulls
/// batches and fans them out; workers process them via `process(edge)`
/// returning the chosen partition or kInvalidPartition to skip.
/// Assignments are flushed batch-at-a-time through the batched sink
/// protocol: a ConcurrentSafe pipeline (the runner's threads>1
/// assembly) absorbs batches lock-free from every worker; anything
/// else is serialized under a mutex, as before.
template <typename ProcessFn>
Status ParallelPass(EdgeStream& stream, exec::ThreadPool& pool,
                    uint32_t workers, uint32_t batch_size,
                    AssignmentSink& sink, const ProcessFn& process) {
  std::mutex sink_mutex;
  const bool concurrent_sink = sink.ConcurrentSafe();
  exec::ParallelForEdgesOptions options;
  options.batch_size = batch_size;
  options.workers = workers;
  return exec::ParallelForEdges(
      stream, pool, options,
      [&](const Edge* edges, size_t count) -> Status {
        obs::TraceSpan span("score.batch", "partition");
        std::vector<Assignment> results;
        results.reserve(count);
        for (size_t i = 0; i < count; ++i) {
          const PartitionId p = process(edges[i]);
          if (p != kInvalidPartition) {
            results.push_back({edges[i], p});
          }
        }
        if (!results.empty()) {
          if (concurrent_sink) {
            sink.AssignBatch(results.data(), results.size());
          } else {
            std::lock_guard<std::mutex> lock(sink_mutex);
            sink.AssignBatch(results.data(), results.size());
          }
        }
        ScoredEdgesCounter()->Add(count);
        return Status::OK();
      });
}

}  // namespace

Status ParallelTwoPhasePartitioner::Partition(EdgeStream& stream,
                                              const PartitionConfig& config,
                                              AssignmentSink& sink,
                                              PartitionStats* stats) {
  if (config.num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  if (config.exec.batch_size == 0) {
    return Status::InvalidArgument("exec.batch_size must be positive");
  }
  PartitionStats local_stats;
  PartitionStats& out = stats != nullptr ? *stats : local_stats;

  // --- Phase 1: degrees (sequential, one counting pass) + clustering
  // on the engine (same worker pool as Phase 2; see
  // ParallelStreamingClustering for the threads=1 identity argument).
  DegreeTable degrees;
  {
    PhaseTimer timer(&out, "degree");
    TPSL_ASSIGN_OR_RETURN(degrees, ComputeDegrees(stream));
  }
  out.stream_passes += 1;

  Clustering clustering;
  {
    PhaseTimer timer(&out, "clustering");
    TPSL_ASSIGN_OR_RETURN(
        clustering, ParallelStreamingClustering(stream, degrees,
                                                config.num_partitions,
                                                options_.clustering,
                                                config.exec));
  }
  out.stream_passes += options_.clustering.num_passes;

  // --- Parallel Phase 2 on the execution engine. ---
  PhaseTimer partition_timer(&out, "partitioning");
  const ClusterSchedule schedule = ScheduleClustersGraham(
      clustering.cluster_volumes, config.num_partitions);

  AtomicReplicationBits replicas(degrees.num_vertices(),
                                 config.num_partitions);
  std::vector<std::atomic<uint64_t>> loads(config.num_partitions);
  for (auto& load : loads) {
    load.store(0, std::memory_order_relaxed);
  }

  SharedState shared;
  shared.degrees = &degrees;
  shared.clustering = &clustering;
  shared.schedule = &schedule;
  shared.replicas = &replicas;
  shared.loads = &loads;
  shared.capacity = config.PartitionCapacity(degrees.num_edges);
  shared.seed = config.seed;
  shared.use_volume_term = options_.use_cluster_volume_term;

  out.state_bytes = degrees.degrees.size() * sizeof(uint32_t) +
                    clustering.HeapBytes() + schedule.HeapBytes() +
                    replicas.HeapBytes() +
                    loads.size() * sizeof(std::atomic<uint64_t>);

  const uint32_t workers = config.exec.ResolveThreads();
  const uint32_t batch_size = config.exec.batch_size;
  exec::ThreadPool& pool = config.exec.pool_or_global();

  std::atomic<uint64_t> prepartitioned{0};
  std::atomic<uint64_t> remaining{0};

  // Pass A: pre-partition co-located edges.
  TPSL_RETURN_IF_ERROR(ParallelPass(
      stream, pool, workers, batch_size, sink,
      [&](const Edge& e) -> PartitionId {
        const ClusterId c1 = clustering.vertex_cluster[e.first];
        const ClusterId c2 = clustering.vertex_cluster[e.second];
        const PartitionId p1 = schedule.cluster_partition[c1];
        const PartitionId p2 = schedule.cluster_partition[c2];
        if (c1 != c2 && p1 != p2) {
          return kInvalidPartition;  // Scoring pass handles it.
        }
        const PartitionId target = shared.ClaimWithOverflow(e, p1);
        shared.Commit(e, target);
        prepartitioned.fetch_add(1, std::memory_order_relaxed);
        return target;
      }));
  out.stream_passes += 1;

  // Pass B: score the remaining edges — on their two candidates
  // (kLinear) or on all k partitions with HDRF scoring (kHdrf; the
  // expensive regime where the worker pool actually pays off).
  const bool linear = options_.scoring == ScoringMode::kLinear;
  const double lambda = options_.hdrf_lambda;
  TPSL_RETURN_IF_ERROR(ParallelPass(
      stream, pool, workers, batch_size, sink,
      [&](const Edge& e) -> PartitionId {
        const ClusterId c1 = clustering.vertex_cluster[e.first];
        const ClusterId c2 = clustering.vertex_cluster[e.second];
        const PartitionId p1 = schedule.cluster_partition[c1];
        const PartitionId p2 = schedule.cluster_partition[c2];
        if (c1 == c2 || p1 == p2) {
          return kInvalidPartition;  // Already pre-partitioned.
        }
        const uint32_t du = degrees.degree(e.first);
        const uint32_t dv = degrees.degree(e.second);
        PartitionId preferred;
        if (linear) {
          // Shared kernel helper, instantiated over the atomic replica
          // view; the formula and tie-break are the sequential core's,
          // so a threads=1 run makes identical decisions.
          const uint64_t vol1 =
              shared.use_volume_term ? clustering.cluster_volumes[c1] : 0;
          const uint64_t vol2 =
              shared.use_volume_term ? clustering.cluster_volumes[c2] : 0;
          preferred =
              PickTwoPhaseLinear(replicas, e, du, dv, vol1, vol2, p1, p2);
        } else {
          // HDRF over all k with relaxed (stale-tolerant) load reads.
          const uint32_t k = static_cast<uint32_t>(loads.size());
          uint64_t max_load = 0;
          uint64_t min_load = UINT64_MAX;
          for (const auto& load : loads) {
            const uint64_t value = load.load(std::memory_order_relaxed);
            max_load = std::max(max_load, value);
            min_load = std::min(min_load, value);
          }
          double best_score = -1.0;
          preferred = 0;
          for (PartitionId p = 0; p < k; ++p) {
            // Re-reads may exceed the max snapshot under concurrency;
            // clamp so the balance term never underflows.
            const uint64_t load = std::min(
                loads[p].load(std::memory_order_relaxed), max_load);
            const double score =
                HdrfReplicationScore(replicas.Test(e.first, p),
                                     replicas.Test(e.second, p), du, dv) +
                HdrfBalanceScore(load, max_load, min_load, lambda);
            if (score > best_score) {
              best_score = score;
              preferred = p;
            }
          }
        }
        const PartitionId target = shared.ClaimWithOverflow(e, preferred);
        shared.Commit(e, target);
        remaining.fetch_add(1, std::memory_order_relaxed);
        return target;
      }));
  out.stream_passes += 1;

  out.prepartitioned_edges = prepartitioned.load();
  out.remaining_edges = remaining.load();
  return Status::OK();
}

}  // namespace tpsl

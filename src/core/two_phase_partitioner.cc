#include "core/two_phase_partitioner.h"

#include <vector>

#include "core/cluster_schedule.h"
#include "core/scoring.h"
#include "graph/degrees.h"
#include "partition/score_tables.h"
#include "util/random.h"
#include "util/timer.h"

namespace tpsl {
namespace {

/// Overflow chain of Algorithm 2: degree-based hashing on the
/// higher-degree endpoint (line 41), then least-loaded as the last
/// resort described in the paper's prose.
PartitionId OverflowTarget(const ScoreTables& tables,
                           const DegreeTable& degrees, const Edge& e,
                           uint64_t seed) {
  const VertexId pivot = degrees.degree(e.first) >= degrees.degree(e.second)
                             ? e.first
                             : e.second;
  const PartitionId hashed = static_cast<PartitionId>(
      Mix64(HashCombine(seed, pivot)) % tables.num_partitions());
  if (!tables.IsFull(hashed)) {
    return hashed;
  }
  return tables.LeastLoaded();
}

}  // namespace

std::string TwoPhasePartitioner::name() const {
  return options_.scoring == ScoringMode::kLinear ? "2PS-L" : "2PS-HDRF";
}

Status TwoPhasePartitioner::Partition(EdgeStream& stream,
                                      const PartitionConfig& config,
                                      AssignmentSink& sink,
                                      PartitionStats* stats) {
  if (config.num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  PartitionStats local_stats;
  PartitionStats& out = stats != nullptr ? *stats : local_stats;

  // --- Degree pass (reported separately, as in paper Fig. 5). ---
  DegreeTable degrees;
  {
    PhaseTimer timer(&out, "degree");
    TPSL_ASSIGN_OR_RETURN(degrees, ComputeDegrees(stream));
  }
  out.stream_passes += 1;

  // --- Phase 1: streaming clustering. ---
  Clustering clustering;
  {
    PhaseTimer timer(&out, "clustering");
    TPSL_ASSIGN_OR_RETURN(
        clustering, StreamingClustering(stream, degrees,
                                        config.num_partitions,
                                        options_.clustering));
  }
  out.stream_passes += options_.clustering.num_passes;

  // --- Phase 2: mapping, pre-partitioning, scoring pass. ---
  PhaseTimer partition_timer(&out, "partitioning");

  const ClusterSchedule schedule =
      options_.scheduling == SchedulingMode::kGraham
          ? ScheduleClustersGraham(clustering.cluster_volumes,
                                   config.num_partitions)
          : ScheduleClustersRoundRobin(clustering.cluster_volumes,
                                       config.num_partitions);

  ScoreTables tables(degrees.num_vertices(), config.num_partitions,
                     config.PartitionCapacity(degrees.num_edges));
  tables.AttachDegrees(degrees.degrees.data());
  tables.AttachClusterVolumes(clustering.cluster_volumes.data());

  out.state_bytes = degrees.degrees.size() * sizeof(uint32_t) +
                    clustering.HeapBytes() + schedule.HeapBytes() +
                    tables.HeapBytes();

  const auto cluster_of = [&clustering](VertexId v) {
    return clustering.vertex_cluster[v];
  };
  const auto partition_of_cluster = [&schedule](ClusterId c) {
    return schedule.cluster_partition[c];
  };
  const auto commit = [&](const Edge& e, PartitionId target) {
    if (tables.IsFull(target)) {
      target = OverflowTarget(tables, degrees, e, config.seed);
    }
    tables.Commit(e, target);
    sink.Assign(e, target);
  };
  const auto prefetch = [&](const Edge& e) { tables.PrefetchEdge(e); };

  // Step 2: pre-partition edges whose endpoints share a cluster or
  // whose clusters are mapped to the same partition (lines 16-26).
  TPSL_RETURN_IF_ERROR(
      ForEachEdgePrefetched(stream, prefetch, [&](const Edge& e) {
        const ClusterId c1 = cluster_of(e.first);
        const ClusterId c2 = cluster_of(e.second);
        const PartitionId p1 = partition_of_cluster(c1);
        const PartitionId p2 = partition_of_cluster(c2);
        if (c1 != c2 && p1 != p2) {
          return;  // Handled by the scoring pass.
        }
        commit(e, p1);
        ++out.prepartitioned_edges;
      }));
  out.stream_passes += 1;

  // Step 3: stream the remaining edges (lines 27-44).
  const bool linear = options_.scoring == ScoringMode::kLinear;
  TPSL_RETURN_IF_ERROR(
      ForEachEdgePrefetched(stream, prefetch, [&](const Edge& e) {
        const ClusterId c1 = cluster_of(e.first);
        const ClusterId c2 = cluster_of(e.second);
        const PartitionId p1 = partition_of_cluster(c1);
        const PartitionId p2 = partition_of_cluster(c2);
        if (c1 == c2 || p1 == p2) {
          return;  // Already pre-partitioned.
        }

        const uint32_t du = tables.degree(e.first);
        const uint32_t dv = tables.degree(e.second);
        PartitionId target;
        if (linear) {
          // 2PS-L: score exactly the two candidate partitions.
          const uint64_t vol1 =
              options_.use_cluster_volume_term ? tables.cluster_volume(c1) : 0;
          const uint64_t vol2 =
              options_.use_cluster_volume_term ? tables.cluster_volume(c2) : 0;
          target = PickTwoPhaseLinear(tables.replicas(), e, du, dv, vol1, vol2,
                                      p1, p2);
        } else {
          // 2PS-HDRF: HDRF scoring over all k partitions; capacity is
          // resolved by the overflow chain, not by skipping here.
          target = tables
                       .PickHdrf(e, du, dv, options_.hdrf_lambda,
                                 /*respect_capacity=*/false)
                       .partition;
        }

        commit(e, target);
        ++out.remaining_edges;
      }));
  out.stream_passes += 1;

  return Status::OK();
}

}  // namespace tpsl

#include "core/two_phase_partitioner.h"

#include <algorithm>
#include <vector>

#include "core/cluster_schedule.h"
#include "core/scoring.h"
#include "graph/degrees.h"
#include "partition/replication_table.h"
#include "util/random.h"
#include "util/timer.h"

namespace tpsl {
namespace {

/// Shared context of the Phase 2 streaming passes.
struct Phase2Context {
  const DegreeTable* degrees;
  const Clustering* clustering;
  const ClusterSchedule* schedule;
  ReplicationTable* replicas;
  std::vector<uint64_t>* loads;
  uint64_t capacity;
  uint64_t seed;

  bool IsFull(PartitionId p) const { return (*loads)[p] >= capacity; }

  PartitionId LeastLoaded() const {
    PartitionId best = 0;
    for (PartitionId p = 1; p < loads->size(); ++p) {
      if ((*loads)[p] < (*loads)[best]) {
        best = p;
      }
    }
    return best;
  }

  /// Overflow chain of Algorithm 2: degree-based hashing on the
  /// higher-degree endpoint (line 41), then least-loaded as the last
  /// resort described in the paper's prose.
  PartitionId OverflowTarget(const Edge& e) const {
    const VertexId pivot = degrees->degree(e.first) >= degrees->degree(e.second)
                               ? e.first
                               : e.second;
    const PartitionId hashed = static_cast<PartitionId>(
        Mix64(HashCombine(seed, pivot)) % loads->size());
    if (!IsFull(hashed)) {
      return hashed;
    }
    return LeastLoaded();
  }

  void Commit(const Edge& e, PartitionId p, AssignmentSink& sink) {
    replicas->Set(e.first, p);
    replicas->Set(e.second, p);
    ++(*loads)[p];
    sink.Assign(e, p);
  }
};

}  // namespace

std::string TwoPhasePartitioner::name() const {
  return options_.scoring == ScoringMode::kLinear ? "2PS-L" : "2PS-HDRF";
}

Status TwoPhasePartitioner::Partition(EdgeStream& stream,
                                      const PartitionConfig& config,
                                      AssignmentSink& sink,
                                      PartitionStats* stats) {
  if (config.num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  PartitionStats local_stats;
  PartitionStats& out = stats != nullptr ? *stats : local_stats;

  // --- Degree pass (reported separately, as in paper Fig. 5). ---
  DegreeTable degrees;
  {
    ScopedTimer timer(&out.phase_seconds["degree"]);
    TPSL_ASSIGN_OR_RETURN(degrees, ComputeDegrees(stream));
  }
  out.stream_passes += 1;

  // --- Phase 1: streaming clustering. ---
  Clustering clustering;
  {
    ScopedTimer timer(&out.phase_seconds["clustering"]);
    TPSL_ASSIGN_OR_RETURN(
        clustering, StreamingClustering(stream, degrees,
                                        config.num_partitions,
                                        options_.clustering));
  }
  out.stream_passes += options_.clustering.num_passes;

  // --- Phase 2: mapping, pre-partitioning, scoring pass. ---
  ScopedTimer partition_timer(&out.phase_seconds["partitioning"]);

  const ClusterSchedule schedule =
      options_.scheduling == SchedulingMode::kGraham
          ? ScheduleClustersGraham(clustering.cluster_volumes,
                                   config.num_partitions)
          : ScheduleClustersRoundRobin(clustering.cluster_volumes,
                                       config.num_partitions);

  const VertexId num_vertices = degrees.num_vertices();
  ReplicationTable replicas(num_vertices, config.num_partitions);
  std::vector<uint64_t> loads(config.num_partitions, 0);

  Phase2Context ctx;
  ctx.degrees = &degrees;
  ctx.clustering = &clustering;
  ctx.schedule = &schedule;
  ctx.replicas = &replicas;
  ctx.loads = &loads;
  ctx.capacity = config.PartitionCapacity(degrees.num_edges);
  ctx.seed = config.seed;

  out.state_bytes = degrees.degrees.size() * sizeof(uint32_t) +
                    clustering.HeapBytes() + schedule.HeapBytes() +
                    replicas.HeapBytes() + loads.size() * sizeof(uint64_t);

  const auto cluster_of = [&clustering](VertexId v) {
    return clustering.vertex_cluster[v];
  };
  const auto partition_of_cluster = [&schedule](ClusterId c) {
    return schedule.cluster_partition[c];
  };

  // Step 2: pre-partition edges whose endpoints share a cluster or
  // whose clusters are mapped to the same partition (lines 16-26).
  TPSL_RETURN_IF_ERROR(ForEachEdge(stream, [&](const Edge& e) {
    const ClusterId c1 = cluster_of(e.first);
    const ClusterId c2 = cluster_of(e.second);
    const PartitionId p1 = partition_of_cluster(c1);
    const PartitionId p2 = partition_of_cluster(c2);
    if (c1 != c2 && p1 != p2) {
      return;  // Handled by the scoring pass.
    }
    PartitionId target = p1;
    if (ctx.IsFull(target)) {
      target = ctx.OverflowTarget(e);
    }
    ctx.Commit(e, target, sink);
    ++out.prepartitioned_edges;
  }));
  out.stream_passes += 1;

  // Step 3: stream the remaining edges (lines 27-44).
  const bool linear = options_.scoring == ScoringMode::kLinear;
  TPSL_RETURN_IF_ERROR(ForEachEdge(stream, [&](const Edge& e) {
    const ClusterId c1 = cluster_of(e.first);
    const ClusterId c2 = cluster_of(e.second);
    const PartitionId p1 = partition_of_cluster(c1);
    const PartitionId p2 = partition_of_cluster(c2);
    if (c1 == c2 || p1 == p2) {
      return;  // Already pre-partitioned.
    }

    PartitionId target;
    if (linear) {
      // 2PS-L: score exactly the two candidate partitions.
      const uint32_t du = degrees.degree(e.first);
      const uint32_t dv = degrees.degree(e.second);
      const uint64_t vol1 =
          options_.use_cluster_volume_term ? clustering.cluster_volumes[c1]
                                           : 0;
      const uint64_t vol2 =
          options_.use_cluster_volume_term ? clustering.cluster_volumes[c2]
                                           : 0;
      const double score1 = TwopsScore(replicas, e.first, e.second, du, dv,
                                       vol1, vol2, /*cu_on_p=*/true,
                                       /*cv_on_p=*/false, p1);
      const double score2 = TwopsScore(replicas, e.first, e.second, du, dv,
                                       vol1, vol2, /*cu_on_p=*/false,
                                       /*cv_on_p=*/true, p2);
      target = score1 >= score2 ? p1 : p2;
    } else {
      // 2PS-HDRF: HDRF scoring over all k partitions.
      const uint32_t du = degrees.degree(e.first);
      const uint32_t dv = degrees.degree(e.second);
      uint64_t max_load = 0, min_load = loads[0];
      for (const uint64_t load : loads) {
        max_load = std::max(max_load, load);
        min_load = std::min(min_load, load);
      }
      double best_score = -1.0;
      target = 0;
      for (PartitionId p = 0; p < config.num_partitions; ++p) {
        const double score =
            HdrfReplicationScore(replicas.Test(e.first, p),
                                 replicas.Test(e.second, p), du, dv) +
            HdrfBalanceScore(loads[p], max_load, min_load,
                             options_.hdrf_lambda);
        if (score > best_score) {
          best_score = score;
          target = p;
        }
      }
    }

    if (ctx.IsFull(target)) {
      target = ctx.OverflowTarget(e);
    }
    ctx.Commit(e, target, sink);
    ++out.remaining_edges;
  }));
  out.stream_passes += 1;

  return Status::OK();
}

}  // namespace tpsl

#include "core/cluster_schedule.h"

#include <algorithm>
#include <numeric>
#include <queue>
#include <utility>

namespace tpsl {

ClusterSchedule ScheduleClustersGraham(const std::vector<uint64_t>& volumes,
                                       uint32_t num_partitions) {
  ClusterSchedule schedule;
  schedule.cluster_partition.assign(volumes.size(), kInvalidPartition);
  schedule.partition_volumes.assign(num_partitions, 0);

  // Sort cluster indices by decreasing volume (stable on ties for
  // determinism).
  std::vector<ClusterId> order(volumes.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&volumes](ClusterId a, ClusterId b) {
                     return volumes[a] > volumes[b];
                   });

  // Min-heap of (volume, partition): assignment of all clusters is
  // O(|C| log k), matching the paper's complexity analysis.
  using HeapEntry = std::pair<uint64_t, PartitionId>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap;
  for (PartitionId p = 0; p < num_partitions; ++p) {
    heap.push({0, p});
  }
  for (ClusterId c : order) {
    auto [volume, partition] = heap.top();
    heap.pop();
    schedule.cluster_partition[c] = partition;
    volume += volumes[c];
    schedule.partition_volumes[partition] = volume;
    heap.push({volume, partition});
  }
  return schedule;
}

ClusterSchedule ScheduleClustersRoundRobin(
    const std::vector<uint64_t>& volumes, uint32_t num_partitions) {
  ClusterSchedule schedule;
  schedule.cluster_partition.resize(volumes.size());
  schedule.partition_volumes.assign(num_partitions, 0);
  for (ClusterId c = 0; c < volumes.size(); ++c) {
    const PartitionId p = c % num_partitions;
    schedule.cluster_partition[c] = p;
    schedule.partition_volumes[p] += volumes[c];
  }
  return schedule;
}

}  // namespace tpsl

#ifndef TPSL_PROCSIM_PARTITION_STREAMS_H_
#define TPSL_PROCSIM_PARTITION_STREAMS_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

#include "graph/edge_stream.h"
#include "graph/types.h"
#include "util/status.h"

namespace tpsl {

/// Non-owning EdgeStream view over a materialized partition; lets the
/// in-memory procsim entry points reuse the stream-based simulators
/// without copying the edge lists.
class VectorEdgeStream : public EdgeStream {
 public:
  explicit VectorEdgeStream(const std::vector<Edge>& edges)
      : edges_(&edges) {}

  Status Reset() override {
    position_ = 0;
    return Status::OK();
  }

  size_t Next(Edge* out, size_t capacity) override {
    const size_t n = std::min(capacity, edges_->size() - position_);
    if (n > 0) {
      std::memcpy(out, edges_->data() + position_, n * sizeof(Edge));
      position_ += n;
    }
    return n;
  }

  uint64_t NumEdgesHint() const override { return edges_->size(); }

 private:
  const std::vector<Edge>* edges_;
  size_t position_ = 0;
};

/// What one discovery pass over the partition streams learns: the
/// vertex universe, per-partition edge counts, the replica structure
/// that drives simulated sync traffic, and (optionally) degrees. All
/// O(|V| + k) state — the pass never materializes an edge.
struct PartitionTopology {
  VertexId num_vertices = 0;  // max vertex id + 1; 0 when no edges
  uint64_t num_edges = 0;
  std::vector<uint64_t> partition_edges;
  /// Undirected degree per vertex; filled only when requested.
  std::vector<uint32_t> degree;
  /// Σ_v max(replicas(v) - 1, 0): replicas beyond the master.
  uint64_t mirrors = 0;
  /// Σ_v replicas(v).
  uint64_t total_replicas = 0;
};

/// One sequential pass per partition stream. Streams are Reset() by
/// the pass; a failing stream surfaces its Health() error.
StatusOr<PartitionTopology> DiscoverTopology(
    const std::vector<EdgeStream*>& partitions, bool with_degrees);

}  // namespace tpsl

#endif  // TPSL_PROCSIM_PARTITION_STREAMS_H_

#include "procsim/distributed_pagerank.h"

#include <algorithm>

namespace tpsl {

StatusOr<DistributedRunResult> SimulateDistributedPageRank(
    const std::vector<std::vector<Edge>>& partitions,
    const PageRankConfig& pagerank, const ClusterModel& cluster) {
  if (partitions.empty()) {
    return Status::InvalidArgument("no partitions");
  }
  if (cluster.num_workers == 0) {
    return Status::InvalidArgument("num_workers must be positive");
  }

  DistributedRunResult result;

  // Discover the vertex universe, degrees, and the replica structure.
  VertexId max_id = 0;
  for (const auto& part : partitions) {
    for (const Edge& e : part) {
      max_id = std::max({max_id, e.first, e.second});
      result.num_edges += 1;
    }
  }
  if (result.num_edges == 0) {
    return Status::InvalidArgument("empty partitioning");
  }
  const VertexId n = max_id + 1;

  std::vector<uint32_t> degree(n, 0);
  std::vector<uint32_t> replicas(n, 0);
  {
    std::vector<uint32_t> seen_in(n, UINT32_MAX);
    for (uint32_t p = 0; p < partitions.size(); ++p) {
      for (const Edge& e : partitions[p]) {
        ++degree[e.first];
        ++degree[e.second];
        for (const VertexId v : {e.first, e.second}) {
          if (seen_in[v] != p) {
            seen_in[v] = p;
            ++replicas[v];
          }
        }
      }
    }
  }
  for (const uint32_t r : replicas) {
    result.total_replicas += r;
  }
  // Mirror sync: every replica beyond the master exchanges 2 messages
  // per iteration (partial sum up, fresh rank down).
  uint64_t mirrors = 0;
  for (const uint32_t r : replicas) {
    mirrors += r > 0 ? r - 1 : 0;
  }
  const uint64_t messages_per_iteration = 2 * mirrors;

  // The slowest worker bounds per-iteration compute (workers hold
  // whole partitions; with k > workers, partitions are distributed
  // round-robin).
  std::vector<uint64_t> worker_edges(cluster.num_workers, 0);
  for (uint32_t p = 0; p < partitions.size(); ++p) {
    worker_edges[p % cluster.num_workers] += partitions[p].size();
  }
  const uint64_t max_worker_edges =
      *std::max_element(worker_edges.begin(), worker_edges.end());

  const double compute_seconds_per_iter =
      static_cast<double>(max_worker_edges) * cluster.per_edge_ns * 1e-9;
  const double network_seconds_per_iter =
      static_cast<double>(messages_per_iteration) * cluster.per_message_ns *
      1e-9 / cluster.num_workers;
  const double overhead_seconds_per_iter = cluster.per_iteration_ms * 1e-3;

  // --- Execute the actual PageRank math (real values, edge-parallel
  // gather per partition == master-side aggregation). ---
  std::vector<double> rank(n, 1.0 / n);
  std::vector<double> acc(n, 0.0);
  const double base = (1.0 - pagerank.damping) / n;
  for (uint32_t iter = 0; iter < pagerank.iterations; ++iter) {
    std::fill(acc.begin(), acc.end(), 0.0);
    for (const auto& part : partitions) {
      for (const Edge& e : part) {
        // Undirected gather: both endpoints contribute to each other.
        acc[e.second] += rank[e.first] / degree[e.first];
        acc[e.first] += rank[e.second] / degree[e.second];
      }
    }
    for (VertexId v = 0; v < n; ++v) {
      rank[v] = base + pagerank.damping * acc[v];
    }
  }

  result.ranks = std::move(rank);
  result.total_messages =
      static_cast<uint64_t>(messages_per_iteration) * pagerank.iterations;
  result.simulated_seconds =
      pagerank.iterations * (compute_seconds_per_iter +
                             network_seconds_per_iter +
                             overhead_seconds_per_iter);
  return result;
}

}  // namespace tpsl

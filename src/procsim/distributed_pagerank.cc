#include "procsim/distributed_pagerank.h"

#include <algorithm>

#include "procsim/partition_streams.h"

namespace tpsl {

StatusOr<DistributedRunResult> SimulateDistributedPageRank(
    const std::vector<EdgeStream*>& partitions, const PageRankConfig& pagerank,
    const ClusterModel& cluster) {
  if (partitions.empty()) {
    return Status::InvalidArgument("no partitions");
  }
  if (cluster.num_workers == 0) {
    return Status::InvalidArgument("num_workers must be positive");
  }

  // Discovery pass: vertex universe, degrees, replica structure. O(|V|)
  // state; the edges stay on whatever storage backs the streams.
  TPSL_ASSIGN_OR_RETURN(const PartitionTopology topology,
                        DiscoverTopology(partitions, /*with_degrees=*/true));
  if (topology.num_edges == 0) {
    return Status::InvalidArgument("empty partitioning");
  }
  const VertexId n = topology.num_vertices;

  DistributedRunResult result;
  result.num_edges = topology.num_edges;
  result.total_replicas = topology.total_replicas;
  // Mirror sync: every replica beyond the master exchanges 2 messages
  // per iteration (partial sum up, fresh rank down).
  const uint64_t messages_per_iteration = 2 * topology.mirrors;

  // The slowest worker bounds per-iteration compute (workers hold
  // whole partitions; with k > workers, partitions are distributed
  // round-robin).
  std::vector<uint64_t> worker_edges(cluster.num_workers, 0);
  for (uint32_t p = 0; p < partitions.size(); ++p) {
    worker_edges[p % cluster.num_workers] += topology.partition_edges[p];
  }
  const uint64_t max_worker_edges =
      *std::max_element(worker_edges.begin(), worker_edges.end());

  const double compute_seconds_per_iter =
      static_cast<double>(max_worker_edges) * cluster.per_edge_ns * 1e-9;
  const double network_seconds_per_iter =
      static_cast<double>(messages_per_iteration) * cluster.per_message_ns *
      1e-9 / cluster.num_workers;
  const double overhead_seconds_per_iter = cluster.per_iteration_ms * 1e-3;

  // --- Execute the actual PageRank math (real values, edge-parallel
  // gather per partition == master-side aggregation). Each iteration
  // re-streams every partition — the out-of-core access pattern of a
  // disk-backed deployment. ---
  std::vector<double> rank(n, 1.0 / n);
  std::vector<double> acc(n, 0.0);
  const std::vector<uint32_t>& degree = topology.degree;
  const double base = (1.0 - pagerank.damping) / n;
  for (uint32_t iter = 0; iter < pagerank.iterations; ++iter) {
    std::fill(acc.begin(), acc.end(), 0.0);
    for (EdgeStream* part : partitions) {
      TPSL_RETURN_IF_ERROR(ForEachEdge(*part, [&](const Edge& e) {
        // Undirected gather: both endpoints contribute to each other.
        acc[e.second] += rank[e.first] / degree[e.first];
        acc[e.first] += rank[e.second] / degree[e.second];
      }));
    }
    for (VertexId v = 0; v < n; ++v) {
      rank[v] = base + pagerank.damping * acc[v];
    }
  }

  result.ranks = std::move(rank);
  result.total_messages =
      static_cast<uint64_t>(messages_per_iteration) * pagerank.iterations;
  result.simulated_seconds =
      pagerank.iterations * (compute_seconds_per_iter +
                             network_seconds_per_iter +
                             overhead_seconds_per_iter);
  return result;
}

StatusOr<DistributedRunResult> SimulateDistributedPageRank(
    const std::vector<std::vector<Edge>>& partitions,
    const PageRankConfig& pagerank, const ClusterModel& cluster) {
  std::vector<VectorEdgeStream> streams;
  streams.reserve(partitions.size());
  for (const std::vector<Edge>& part : partitions) {
    streams.emplace_back(part);
  }
  std::vector<EdgeStream*> pointers;
  pointers.reserve(streams.size());
  for (VectorEdgeStream& stream : streams) {
    pointers.push_back(&stream);
  }
  return SimulateDistributedPageRank(pointers, pagerank, cluster);
}

}  // namespace tpsl

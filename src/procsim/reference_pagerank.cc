#include "procsim/reference_pagerank.h"

namespace tpsl {

std::vector<double> ReferencePageRank(const CsrGraph& graph,
                                      const PageRankConfig& config) {
  const VertexId n = graph.num_vertices();
  if (n == 0) {
    return {};
  }
  std::vector<double> rank(n, 1.0 / n);
  std::vector<double> next(n, 0.0);
  const double base = (1.0 - config.damping) / n;

  for (uint32_t iter = 0; iter < config.iterations; ++iter) {
    for (VertexId v = 0; v < n; ++v) {
      next[v] = 0.0;
    }
    for (VertexId u = 0; u < n; ++u) {
      const uint32_t deg = graph.degree(u);
      if (deg == 0) {
        continue;
      }
      const double share = rank[u] / deg;
      for (const VertexId v : graph.neighbors(u)) {
        next[v] += share;
      }
    }
    for (VertexId v = 0; v < n; ++v) {
      rank[v] = base + config.damping * next[v];
    }
  }
  return rank;
}

}  // namespace tpsl

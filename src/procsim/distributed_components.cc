#include "procsim/distributed_components.h"

#include <algorithm>
#include <numeric>

#include "procsim/partition_streams.h"

namespace tpsl {

std::vector<VertexId> ReferenceComponents(const std::vector<Edge>& edges,
                                          VertexId num_vertices) {
  std::vector<VertexId> parent(num_vertices);
  std::iota(parent.begin(), parent.end(), 0);
  const auto find = [&parent](VertexId v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };
  for (const Edge& e : edges) {
    const VertexId a = find(e.first);
    const VertexId b = find(e.second);
    if (a != b) {
      parent[std::max(a, b)] = std::min(a, b);
    }
  }
  // Canonicalize: label = min id in component.
  std::vector<VertexId> labels(num_vertices);
  for (VertexId v = 0; v < num_vertices; ++v) {
    labels[v] = find(v);
  }
  return labels;
}

StatusOr<ComponentsResult> SimulateDistributedComponents(
    const std::vector<EdgeStream*>& partitions, const ClusterModel& cluster) {
  if (partitions.empty()) {
    return Status::InvalidArgument("no partitions");
  }
  if (cluster.num_workers == 0) {
    return Status::InvalidArgument("num_workers must be positive");
  }

  // Replica structure drives the per-iteration sync cost, exactly as
  // in the PageRank simulator.
  TPSL_ASSIGN_OR_RETURN(const PartitionTopology topology,
                        DiscoverTopology(partitions, /*with_degrees=*/false));
  if (topology.num_edges == 0) {
    return Status::InvalidArgument("empty partitioning");
  }
  const VertexId n = topology.num_vertices;

  std::vector<uint64_t> worker_edges(cluster.num_workers, 0);
  for (uint32_t p = 0; p < partitions.size(); ++p) {
    worker_edges[p % cluster.num_workers] += topology.partition_edges[p];
  }
  const uint64_t max_worker_edges =
      *std::max_element(worker_edges.begin(), worker_edges.end());
  const double seconds_per_iteration =
      static_cast<double>(max_worker_edges) * cluster.per_edge_ns * 1e-9 +
      static_cast<double>(2 * topology.mirrors) * cluster.per_message_ns *
          1e-9 / cluster.num_workers +
      cluster.per_iteration_ms * 1e-3;

  ComponentsResult result;
  result.labels.resize(n);
  std::iota(result.labels.begin(), result.labels.end(), 0);

  // Min-label propagation until a fixed point; each round re-streams
  // every partition from its backing storage.
  bool changed = true;
  while (changed) {
    changed = false;
    ++result.iterations;
    for (EdgeStream* part : partitions) {
      TPSL_RETURN_IF_ERROR(ForEachEdge(*part, [&](const Edge& e) {
        const VertexId lo =
            std::min(result.labels[e.first], result.labels[e.second]);
        if (result.labels[e.first] != lo) {
          result.labels[e.first] = lo;
          changed = true;
        }
        if (result.labels[e.second] != lo) {
          result.labels[e.second] = lo;
          changed = true;
        }
      }));
    }
  }
  result.simulated_seconds = result.iterations * seconds_per_iteration;
  result.total_messages =
      static_cast<uint64_t>(2 * topology.mirrors) * result.iterations;
  return result;
}

StatusOr<ComponentsResult> SimulateDistributedComponents(
    const std::vector<std::vector<Edge>>& partitions,
    const ClusterModel& cluster) {
  std::vector<VectorEdgeStream> streams;
  streams.reserve(partitions.size());
  for (const std::vector<Edge>& part : partitions) {
    streams.emplace_back(part);
  }
  std::vector<EdgeStream*> pointers;
  pointers.reserve(streams.size());
  for (VectorEdgeStream& stream : streams) {
    pointers.push_back(&stream);
  }
  return SimulateDistributedComponents(pointers, cluster);
}

}  // namespace tpsl

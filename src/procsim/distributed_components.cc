#include "procsim/distributed_components.h"

#include <algorithm>
#include <numeric>

namespace tpsl {

std::vector<VertexId> ReferenceComponents(const std::vector<Edge>& edges,
                                          VertexId num_vertices) {
  std::vector<VertexId> parent(num_vertices);
  std::iota(parent.begin(), parent.end(), 0);
  const auto find = [&parent](VertexId v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };
  for (const Edge& e : edges) {
    const VertexId a = find(e.first);
    const VertexId b = find(e.second);
    if (a != b) {
      parent[std::max(a, b)] = std::min(a, b);
    }
  }
  // Canonicalize: label = min id in component.
  std::vector<VertexId> labels(num_vertices);
  for (VertexId v = 0; v < num_vertices; ++v) {
    labels[v] = find(v);
  }
  return labels;
}

StatusOr<ComponentsResult> SimulateDistributedComponents(
    const std::vector<std::vector<Edge>>& partitions,
    const ClusterModel& cluster) {
  if (partitions.empty()) {
    return Status::InvalidArgument("no partitions");
  }
  if (cluster.num_workers == 0) {
    return Status::InvalidArgument("num_workers must be positive");
  }

  VertexId max_id = 0;
  uint64_t num_edges = 0;
  for (const auto& part : partitions) {
    for (const Edge& e : part) {
      max_id = std::max({max_id, e.first, e.second});
      ++num_edges;
    }
  }
  if (num_edges == 0) {
    return Status::InvalidArgument("empty partitioning");
  }
  const VertexId n = max_id + 1;

  // Replica structure drives the per-iteration sync cost, exactly as
  // in the PageRank simulator.
  uint64_t mirrors = 0;
  {
    std::vector<uint32_t> replicas(n, 0);
    std::vector<uint32_t> seen_in(n, UINT32_MAX);
    for (uint32_t p = 0; p < partitions.size(); ++p) {
      for (const Edge& e : partitions[p]) {
        for (const VertexId v : {e.first, e.second}) {
          if (seen_in[v] != p) {
            seen_in[v] = p;
            ++replicas[v];
          }
        }
      }
    }
    for (const uint32_t r : replicas) {
      mirrors += r > 0 ? r - 1 : 0;
    }
  }

  std::vector<uint64_t> worker_edges(cluster.num_workers, 0);
  for (uint32_t p = 0; p < partitions.size(); ++p) {
    worker_edges[p % cluster.num_workers] += partitions[p].size();
  }
  const uint64_t max_worker_edges =
      *std::max_element(worker_edges.begin(), worker_edges.end());
  const double seconds_per_iteration =
      static_cast<double>(max_worker_edges) * cluster.per_edge_ns * 1e-9 +
      static_cast<double>(2 * mirrors) * cluster.per_message_ns * 1e-9 /
          cluster.num_workers +
      cluster.per_iteration_ms * 1e-3;

  ComponentsResult result;
  result.labels.resize(n);
  std::iota(result.labels.begin(), result.labels.end(), 0);

  bool changed = true;
  while (changed) {
    changed = false;
    ++result.iterations;
    for (const auto& part : partitions) {
      for (const Edge& e : part) {
        const VertexId lo =
            std::min(result.labels[e.first], result.labels[e.second]);
        if (result.labels[e.first] != lo) {
          result.labels[e.first] = lo;
          changed = true;
        }
        if (result.labels[e.second] != lo) {
          result.labels[e.second] = lo;
          changed = true;
        }
      }
    }
  }
  result.simulated_seconds = result.iterations * seconds_per_iteration;
  result.total_messages =
      static_cast<uint64_t>(2 * mirrors) * result.iterations;
  return result;
}

}  // namespace tpsl

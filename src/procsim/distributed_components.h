#ifndef TPSL_PROCSIM_DISTRIBUTED_COMPONENTS_H_
#define TPSL_PROCSIM_DISTRIBUTED_COMPONENTS_H_

#include <cstdint>
#include <vector>

#include "graph/edge_stream.h"
#include "graph/types.h"
#include "procsim/distributed_pagerank.h"
#include "util/status.h"

namespace tpsl {

/// Distributed Connected Components by iterative min-label propagation
/// — the second classical workload the paper's introduction names
/// ("PageRank or Connected Components"). Unlike PageRank's fixed
/// iteration count, CC runs until no label changes, so the simulated
/// time additionally depends on the graph diameter.
struct ComponentsResult {
  /// Component label per vertex (the minimum vertex id of the
  /// component). Vertices absent from all partitions keep their own id.
  std::vector<VertexId> labels;
  uint32_t iterations = 0;
  double simulated_seconds = 0.0;
  uint64_t total_messages = 0;
};

/// Stream-based core: partitions as restartable edge streams (e.g. the
/// spilled partition files of a RunPartitioner run), re-read each
/// label-propagation round — O(|V|) resident state.
StatusOr<ComponentsResult> SimulateDistributedComponents(
    const std::vector<EdgeStream*>& partitions, const ClusterModel& cluster);

/// In-memory adapter over the stream-based core; results are identical
/// for the same partitioning.
StatusOr<ComponentsResult> SimulateDistributedComponents(
    const std::vector<std::vector<Edge>>& partitions,
    const ClusterModel& cluster);

/// Single-machine reference (union-find), for validating the simulator.
std::vector<VertexId> ReferenceComponents(const std::vector<Edge>& edges,
                                          VertexId num_vertices);

}  // namespace tpsl

#endif  // TPSL_PROCSIM_DISTRIBUTED_COMPONENTS_H_

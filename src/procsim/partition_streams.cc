#include "procsim/partition_streams.h"

#include <cstdint>

namespace tpsl {

StatusOr<PartitionTopology> DiscoverTopology(
    const std::vector<EdgeStream*>& partitions, bool with_degrees) {
  PartitionTopology topology;
  topology.partition_edges.assign(partitions.size(), 0);
  std::vector<uint32_t> replicas;
  std::vector<uint32_t> seen_in;
  for (uint32_t p = 0; p < partitions.size(); ++p) {
    TPSL_RETURN_IF_ERROR(ForEachEdge(*partitions[p], [&](const Edge& e) {
      const VertexId top = std::max(e.first, e.second);
      if (static_cast<size_t>(top) >= replicas.size()) {
        replicas.resize(top + 1, 0);
        seen_in.resize(top + 1, UINT32_MAX);
        if (with_degrees) {
          topology.degree.resize(top + 1, 0);
        }
      }
      ++topology.partition_edges[p];
      if (with_degrees) {
        ++topology.degree[e.first];
        ++topology.degree[e.second];
      }
      for (const VertexId v : {e.first, e.second}) {
        if (seen_in[v] != p) {
          seen_in[v] = p;
          ++replicas[v];
        }
      }
    }));
    topology.num_edges += topology.partition_edges[p];
  }
  topology.num_vertices = static_cast<VertexId>(replicas.size());
  for (const uint32_t r : replicas) {
    topology.total_replicas += r;
    topology.mirrors += r > 0 ? r - 1 : 0;
  }
  return topology;
}

}  // namespace tpsl

#include "procsim/partition_streams.h"

#include <cstdint>

#include "partition/replication_table.h"

namespace tpsl {

StatusOr<PartitionTopology> DiscoverTopology(
    const std::vector<EdgeStream*>& partitions, bool with_degrees) {
  PartitionTopology topology;
  topology.partition_edges.assign(partitions.size(), 0);
  // Mirror accounting on the kernel's replication matrix: Set() is
  // idempotent per (vertex, partition), so each partition's pass can
  // just mark both endpoints; replicas, covered vertices and mirrors
  // fall out of the incremental counts.
  ReplicationTable replicas(0, static_cast<uint32_t>(partitions.size()));
  for (uint32_t p = 0; p < partitions.size(); ++p) {
    TPSL_RETURN_IF_ERROR(ForEachEdge(*partitions[p], [&](const Edge& e) {
      const VertexId top = std::max(e.first, e.second);
      if (top >= replicas.num_vertices()) {
        replicas.GrowVertices(top + 1);
        if (with_degrees) {
          topology.degree.resize(top + 1, 0);
        }
      }
      ++topology.partition_edges[p];
      if (with_degrees) {
        ++topology.degree[e.first];
        ++topology.degree[e.second];
      }
      replicas.Set(e.first, p);
      replicas.Set(e.second, p);
    }));
    topology.num_edges += topology.partition_edges[p];
  }
  topology.num_vertices = replicas.num_vertices();
  topology.total_replicas = replicas.TotalReplicas();
  // Each covered vertex has one master; every further replica is a
  // mirror.
  topology.mirrors = topology.total_replicas - replicas.CoveredVertices();
  return topology;
}

}  // namespace tpsl

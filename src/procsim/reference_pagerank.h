#ifndef TPSL_PROCSIM_REFERENCE_PAGERANK_H_
#define TPSL_PROCSIM_REFERENCE_PAGERANK_H_

#include <cstdint>
#include <vector>

#include "graph/csr.h"

namespace tpsl {

/// Single-machine PageRank on an undirected graph (each edge treated
/// as two directed edges), used as the correctness oracle for the
/// distributed processing simulator:
///   pr'[v] = (1 - damping)/N + damping · Σ_{u ∈ N(v)} pr[u]/deg(u).
/// Runs a fixed number of power iterations (the paper's workload is
/// static PageRank with 100 iterations).
struct PageRankConfig {
  uint32_t iterations = 100;
  double damping = 0.85;
};

std::vector<double> ReferencePageRank(const CsrGraph& graph,
                                      const PageRankConfig& config);

}  // namespace tpsl

#endif  // TPSL_PROCSIM_REFERENCE_PAGERANK_H_

#ifndef TPSL_PROCSIM_DISTRIBUTED_PAGERANK_H_
#define TPSL_PROCSIM_DISTRIBUTED_PAGERANK_H_

#include <cstdint>
#include <vector>

#include "graph/edge_stream.h"
#include "graph/types.h"
#include "procsim/reference_pagerank.h"
#include "util/status.h"

namespace tpsl {

/// Cost model of the simulated processing cluster — the stand-in for
/// the paper's 8-machine Spark/GraphX deployment (Table IV). Defaults
/// are calibrated so that laptop-scale graphs produce processing times
/// with the paper's ordering: partitionings with lower replication
/// factors finish PageRank faster, and the partitioning + processing
/// total decides the winner.
struct ClusterModel {
  uint32_t num_workers = 32;
  /// Compute cost per edge per gather iteration.
  double per_edge_ns = 25.0;
  /// Network cost per replica-synchronization message.
  double per_message_ns = 800.0;
  /// Fixed scheduling overhead per iteration (job dispatch, barriers).
  /// Kept small so that replication-driven sync traffic, not constant
  /// overhead, dominates modeled processing time (as at paper scale).
  double per_iteration_ms = 1.0;
};

/// Result of a simulated distributed PageRank execution. Rank values
/// are numerically real (they match ReferencePageRank up to FP
/// reordering); only the time is simulated.
struct DistributedRunResult {
  std::vector<double> ranks;
  double simulated_seconds = 0.0;
  /// Mirror->master partial-sum messages plus master->mirror rank
  /// broadcasts, summed over all iterations.
  uint64_t total_messages = 0;
  /// Σ_v replicas(v): the replication that drives the sync traffic.
  uint64_t total_replicas = 0;
  uint64_t num_edges = 0;
};

/// Executes vertex-centric PageRank over an edge partitioning: each
/// worker gathers along its own edges, mirrors push partial sums to
/// masters, masters apply the PageRank update and broadcast new ranks
/// back. Per iteration the simulated time is
///   max_w(edges_w · per_edge) + messages · per_message / num_workers
///   + per_iteration overhead,
/// which makes processing time a direct function of the replication
/// factor — the coupling the paper's Table IV demonstrates.
///
/// Partitions arrive as restartable edge streams — typically the
/// spilled per-partition files of a RunPartitioner run
/// (OpenSpilledPartitions), so processing holds O(|V|) state and
/// re-reads edges from storage each iteration, never materializing a
/// partition in memory.
StatusOr<DistributedRunResult> SimulateDistributedPageRank(
    const std::vector<EdgeStream*>& partitions, const PageRankConfig& pagerank,
    const ClusterModel& cluster);

/// In-memory adapter: wraps each materialized partition in a
/// non-owning stream and runs the same simulation — results are
/// bit-identical to the disk-backed path for the same partitioning.
StatusOr<DistributedRunResult> SimulateDistributedPageRank(
    const std::vector<std::vector<Edge>>& partitions,
    const PageRankConfig& pagerank, const ClusterModel& cluster);

}  // namespace tpsl

#endif  // TPSL_PROCSIM_DISTRIBUTED_PAGERANK_H_

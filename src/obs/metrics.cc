#include "obs/metrics.h"

#include <cstdio>

namespace tpsl {
namespace obs {

namespace internal {

uint32_t ThreadShardId() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace internal

Histogram::Summary Histogram::Summarize() const {
  std::array<uint64_t, kBuckets> merged{};
  Summary summary;
  for (const Cell& cell : cells_) {
    for (uint32_t b = 0; b < kBuckets; ++b) {
      merged[b] += cell.buckets[b].load(std::memory_order_relaxed);
    }
  }
  for (uint64_t count : merged) {
    summary.count += count;
  }
  if (summary.count == 0) {
    return summary;
  }
  const auto percentile = [&](double q) {
    const uint64_t rank = static_cast<uint64_t>(
        std::ceil(q * static_cast<double>(summary.count)));
    const uint64_t target = rank == 0 ? 1 : rank;
    uint64_t cumulative = 0;
    for (uint32_t b = 0; b < kBuckets; ++b) {
      cumulative += merged[b];
      if (cumulative >= target) {
        return BucketLowerSeconds(b);
      }
    }
    return BucketLowerSeconds(kBuckets - 1);
  };
  summary.p50 = percentile(0.50);
  summary.p90 = percentile(0.90);
  summary.p99 = percentile(0.99);
  return summary;
}

std::string MetricsSnapshot::ToString() const {
  std::string out;
  char buf[256];
  for (const auto& [name, value] : counters) {
    std::snprintf(buf, sizeof(buf), "counter  %-36s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    out.append(buf);
  }
  for (const auto& [name, value] : gauges) {
    std::snprintf(buf, sizeof(buf), "gauge    %-36s %.6g\n", name.c_str(),
                  value);
    out.append(buf);
  }
  for (const HistogramRow& row : histograms) {
    std::snprintf(buf, sizeof(buf),
                  "hist     %-36s n=%llu p50=%.3gs p90=%.3gs p99=%.3gs\n",
                  row.name.c_str(),
                  static_cast<unsigned long long>(row.summary.count),
                  row.summary.p50, row.summary.p90, row.summary.p99);
    out.append(buf);
  }
  return out;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
  }
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->Total());
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->Value());
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.push_back({name, histogram->Summarize()});
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    counter->Reset();
  }
  for (const auto& [name, gauge] : gauges_) {
    gauge->Reset();
  }
  for (const auto& [name, histogram] : histograms_) {
    histogram->Reset();
  }
}

MetricsRegistry& MetricsRegistry::Default() {
  // Leaked on purpose: instrumentation in statics destroyed after this
  // one (the global thread pool's workers) must never observe a dead
  // registry. LeakSanitizer treats a reachable static as not-a-leak.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace obs
}  // namespace tpsl

#ifndef TPSL_OBS_TRACE_H_
#define TPSL_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace tpsl {
namespace obs {

namespace internal {
extern std::atomic<bool> g_tracing_enabled;
}  // namespace internal

/// Whether span/counter recording is on. The single runtime flag every
/// instrumentation site branches on: when false, a TraceSpan is one
/// relaxed atomic load and nothing else — no allocation, no clock read.
inline bool TracingEnabled() {
  return internal::g_tracing_enabled.load(std::memory_order_relaxed);
}

/// Flips recording globally. Thread-safe. A span whose scope straddles
/// a flip emits only when tracing was on at both its open and its
/// close (the open snapshots the timestamp, the close re-checks before
/// writing), so flipping off mid-span suppresses the partial event.
void SetTracingEnabled(bool enabled);

/// Monotonic nanoseconds since a process-wide anchor (the first call).
/// All trace timestamps share this origin, so events from different
/// threads line up on one timeline.
int64_t TraceNowNanos();

/// Records a complete ("X") event on the calling thread's ring. `name`
/// and `category` must point at storage that outlives the trace export
/// (string literals in practice — the ring stores the pointer, not a
/// copy). No-op while tracing is disabled.
void EmitComplete(const char* name, const char* category, int64_t start_ns,
                  int64_t duration_ns);

/// Records a counter ("C") sample — a named time series the trace
/// viewer plots, e.g. replication factor over the stream. Same lifetime
/// contract as EmitComplete; no-op while tracing is disabled.
void EmitCounter(const char* name, double value);

/// RAII span: captures the start time at construction and emits one
/// complete event for the enclosing scope at destruction. Disabled
/// tracing costs exactly the TracingEnabled() branch.
class TraceSpan {
 public:
  TraceSpan(const char* name, const char* category) {
    if (TracingEnabled()) {
      name_ = name;
      category_ = category;
      start_ns_ = TraceNowNanos();
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr) {
      EmitComplete(name_, category_, start_ns_, TraceNowNanos() - start_ns_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  const char* category_ = nullptr;
  int64_t start_ns_ = 0;
};

/// Recording accounting across every thread ring that ever registered.
struct TraceStats {
  uint64_t threads = 0;    // rings registered (threads that emitted)
  uint64_t recorded = 0;   // events currently held in the rings
  uint64_t emitted = 0;    // events ever written (recorded + overwritten)
  uint64_t dropped = 0;    // emitted - recorded: lost to ring wrap
};
TraceStats GetTraceStats();

/// The current ring contents as Chrome trace-event JSON
/// ({"traceEvents":[...]}, ts/dur in microseconds) — loadable by
/// Perfetto / chrome://tracing. Safe to call while other threads are
/// still emitting: slots caught mid-write are skipped, never torn.
std::string ChromeTraceJson();

/// Writes ChromeTraceJson() to `path`.
Status WriteChromeTrace(const std::string& path);

/// Discards all recorded events (thread rings stay registered). Meant
/// for quiescent points between benchmark scenarios; events emitted
/// concurrently with a reset may survive it.
void ResetTrace();

}  // namespace obs
}  // namespace tpsl

#endif  // TPSL_OBS_TRACE_H_

#ifndef TPSL_OBS_METRICS_H_
#define TPSL_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tpsl {
namespace obs {

namespace internal {
/// Stable small id for the calling thread, used to pick a metric shard.
/// Distinct live threads land on distinct shards until the shard count
/// is exceeded, after which they wrap.
uint32_t ThreadShardId();
}  // namespace internal

/// Shards per counter/histogram. Power of two; 32 covers every pool
/// size this repo runs (hardware threads + ingest worker + main).
constexpr uint32_t kMetricShards = 32;

/// Monotonic event counter, sharded across cache-line-padded cells so
/// concurrent Add() from pool workers never contends on one line.
/// Add() is wait-free (one relaxed fetch_add); Total() merges shards.
class Counter {
 public:
  void Add(uint64_t n) {
    cells_[internal::ThreadShardId() & (kMetricShards - 1)].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  uint64_t Total() const {
    uint64_t total = 0;
    for (const Cell& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (Cell& cell : cells_) {
      cell.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> value{0};
  };
  std::array<Cell, kMetricShards> cells_;
};

/// Last-write-wins instantaneous value (e.g. queue depth, running
/// replication factor). One atomic word holding the double's bits.
class Gauge {
 public:
  void Set(double value) {
    bits_.store(std::bit_cast<uint64_t>(value), std::memory_order_relaxed);
  }
  double Value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }
  void Reset() { Set(0.0); }

 private:
  std::atomic<uint64_t> bits_{std::bit_cast<uint64_t>(0.0)};
};

/// Log2-bucketed latency histogram: bucket b holds samples whose
/// nanosecond value has bit width b, i.e. [2^(b-1), 2^b). Recording is
/// one relaxed fetch_add on the calling thread's shard; Summarize()
/// merges shards and extracts percentiles. Resolution is a factor of
/// two — exactly what "is the p99 queue wait microseconds or
/// milliseconds" questions need, at a cost that is safe inside the
/// hot paths being measured.
class Histogram {
 public:
  static constexpr uint32_t kBuckets = 64;

  /// The bucket a nanosecond sample falls into. bit_width is 64 for
  /// samples with the top bit set, so the last bucket is a clamp
  /// catch-all: [2^62, 2^64).
  static uint32_t BucketOf(uint64_t nanos) {
    const uint32_t width = static_cast<uint32_t>(std::bit_width(nanos));
    return width < kBuckets ? width : kBuckets - 1;
  }

  /// A representative value (the inclusive lower bound) of `bucket`,
  /// in seconds. Percentile estimates are representatives, so they are
  /// exact up to bucket resolution.
  static double BucketLowerSeconds(uint32_t bucket) {
    return bucket == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(bucket) - 1) *
                                   1e-9;
  }

  void RecordNanos(uint64_t nanos) {
    cells_[internal::ThreadShardId() & (kMetricShards - 1)]
        .buckets[BucketOf(nanos)]
        .fetch_add(1, std::memory_order_relaxed);
  }
  void RecordSeconds(double seconds) {
    RecordNanos(seconds <= 0.0 ? 0 : static_cast<uint64_t>(seconds * 1e9));
  }

  struct Summary {
    uint64_t count = 0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
  };

  /// Merged view of all shards. Percentile q is the representative
  /// value of the first bucket whose cumulative count reaches
  /// ceil(q * count) — the same bucket a sorted-vector oracle's
  /// ceil(q*n)-th sample lands in.
  Summary Summarize() const;

  void Reset() {
    for (Cell& cell : cells_) {
      for (std::atomic<uint64_t>& bucket : cell.buckets) {
        bucket.store(0, std::memory_order_relaxed);
      }
    }
  }

 private:
  struct alignas(64) Cell {
    std::array<std::atomic<uint64_t>, kBuckets> buckets{};
  };
  std::array<Cell, kMetricShards> cells_;
};

/// Point-in-time merged view of a registry.
struct MetricsSnapshot {
  struct HistogramRow {
    std::string name;
    Histogram::Summary summary;
  };
  std::vector<std::pair<std::string, uint64_t>> counters;  // name-sorted
  std::vector<std::pair<std::string, double>> gauges;      // name-sorted
  std::vector<HistogramRow> histograms;                    // name-sorted

  /// Human-readable multi-line dump for tool output.
  std::string ToString() const;
};

/// Name -> metric map with stable handles: Get*() registers on first
/// use and always returns the same pointer afterwards, so hot paths
/// can cache it in a function-local static. Reset() zeroes values but
/// never invalidates handles.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Safe while other threads are mid-Add: relaxed merges, values may
  /// trail in-flight increments by a few.
  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered metric (handles stay valid).
  void Reset();

  /// The process-wide registry every instrumentation site uses.
  static MetricsRegistry& Default();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace tpsl

#endif  // TPSL_OBS_METRICS_H_

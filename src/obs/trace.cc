#include "obs/trace.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

namespace tpsl {
namespace obs {

namespace internal {
std::atomic<bool> g_tracing_enabled{false};
}  // namespace internal

namespace {

// Per-thread ring capacity (power of two). 8192 events x 5 atomic
// words = 320 KiB per emitting thread, allocated lazily on the first
// emit so a tracing-off run never pays for it.
constexpr uint64_t kRingCapacity = 8192;
constexpr uint64_t kRingMask = kRingCapacity - 1;

enum EventKind : uint64_t { kComplete = 0, kCounter = 1 };

/// One seqlock-protected event slot. Every field is a relaxed atomic,
/// so a reader racing the owning writer sees values, never torn bytes;
/// the odd/even `seq` protocol tells it which values are consistent.
struct Slot {
  std::atomic<uint64_t> seq{0};  // 2h+1 while writing entry h, 2h+2 after
  std::atomic<uint64_t> kind{0};
  std::atomic<uint64_t> name{0};      // const char* bits (static storage)
  std::atomic<uint64_t> category{0};  // const char* bits, 0 for counters
  std::atomic<int64_t> start_ns{0};
  std::atomic<int64_t> extra{0};  // kComplete: duration ns; kCounter:
                                  // double value bit pattern
};

/// One thread's ring. Written only by the owning thread; `head` and the
/// slot seqlocks make concurrent snapshots safe.
struct ThreadRing {
  explicit ThreadRing(uint64_t tid_in) : tid(tid_in), slots(kRingCapacity) {}

  void Write(EventKind event_kind, const char* name, const char* category,
             int64_t start_ns, int64_t extra) {
    const uint64_t h = head.load(std::memory_order_relaxed);
    Slot& slot = slots[h & kRingMask];
    slot.seq.store(2 * h + 1, std::memory_order_relaxed);
    slot.kind.store(event_kind, std::memory_order_relaxed);
    slot.name.store(reinterpret_cast<uintptr_t>(name),
                    std::memory_order_relaxed);
    slot.category.store(reinterpret_cast<uintptr_t>(category),
                        std::memory_order_relaxed);
    slot.start_ns.store(start_ns, std::memory_order_relaxed);
    slot.extra.store(extra, std::memory_order_relaxed);
    slot.seq.store(2 * h + 2, std::memory_order_release);
    head.store(h + 1, std::memory_order_release);
  }

  const uint64_t tid;
  std::atomic<uint64_t> head{0};  // entries ever written to this ring
  std::vector<Slot> slots;
};

struct Registry {
  std::mutex mutex;
  std::vector<std::unique_ptr<ThreadRing>> rings;  // grow-only
};

/// Intentionally leaked so instrumentation in late-destroyed statics
/// (e.g. the global thread pool joining its workers at exit) never
/// touches a destroyed registry.
Registry& GlobalRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

ThreadRing& RingForThisThread() {
  thread_local ThreadRing* ring = nullptr;
  if (ring == nullptr) {
    Registry& registry = GlobalRegistry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    registry.rings.push_back(
        std::make_unique<ThreadRing>(registry.rings.size() + 1));
    ring = registry.rings.back().get();
  }
  return *ring;
}

/// A consistent copy of one slot, or nullopt-style failure via the
/// return flag. Seqlock read: seq before, fields, fence, seq after.
struct EventCopy {
  uint64_t kind;
  const char* name;
  const char* category;
  int64_t start_ns;
  int64_t extra;
  uint64_t tid;
};

bool ReadSlot(Slot& slot, uint64_t entry, EventCopy* out) {
  const uint64_t seq_before = slot.seq.load(std::memory_order_acquire);
  if (seq_before != 2 * entry + 2) {
    return false;  // mid-write, overwritten, or never written
  }
  out->kind = slot.kind.load(std::memory_order_relaxed);
  out->name = reinterpret_cast<const char*>(
      static_cast<uintptr_t>(slot.name.load(std::memory_order_relaxed)));
  out->category = reinterpret_cast<const char*>(
      static_cast<uintptr_t>(slot.category.load(std::memory_order_relaxed)));
  out->start_ns = slot.start_ns.load(std::memory_order_relaxed);
  out->extra = slot.extra.load(std::memory_order_relaxed);
  // Seqlock validity re-check. A no-op RMW instead of the classic
  // acquire fence + relaxed load: its release half keeps the field
  // loads above from sinking past the re-read, and tsan models RMWs
  // precisely where it rejects atomic_thread_fence outright.
  return slot.seq.fetch_add(0, std::memory_order_acq_rel) == seq_before;
}

void AppendJsonString(const char* s, std::string* out) {
  out->push_back('"');
  for (; *s != '\0'; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(static_cast<char>(c));
    } else if (c < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(static_cast<char>(c));
    }
  }
  out->push_back('"');
}

std::vector<EventCopy> SnapshotEvents() {
  std::vector<EventCopy> events;
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  for (const std::unique_ptr<ThreadRing>& ring : registry.rings) {
    const uint64_t end = ring->head.load(std::memory_order_acquire);
    const uint64_t begin = end > kRingCapacity ? end - kRingCapacity : 0;
    for (uint64_t entry = begin; entry < end; ++entry) {
      EventCopy copy;
      if (ReadSlot(ring->slots[entry & kRingMask], entry, &copy)) {
        copy.tid = ring->tid;
        events.push_back(copy);
      }
    }
  }
  return events;
}

}  // namespace

void SetTracingEnabled(bool enabled) {
  internal::g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

int64_t TraceNowNanos() {
  static const std::chrono::steady_clock::time_point anchor =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - anchor)
      .count();
}

void EmitComplete(const char* name, const char* category, int64_t start_ns,
                  int64_t duration_ns) {
  if (!TracingEnabled()) {
    return;
  }
  RingForThisThread().Write(kComplete, name, category, start_ns, duration_ns);
}

void EmitCounter(const char* name, double value) {
  if (!TracingEnabled()) {
    return;
  }
  RingForThisThread().Write(kCounter, name, nullptr, TraceNowNanos(),
                            static_cast<int64_t>(std::bit_cast<uint64_t>(value)));
}

TraceStats GetTraceStats() {
  TraceStats stats;
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  for (const std::unique_ptr<ThreadRing>& ring : registry.rings) {
    const uint64_t emitted = ring->head.load(std::memory_order_acquire);
    ++stats.threads;
    stats.emitted += emitted;
    stats.recorded += std::min(emitted, kRingCapacity);
  }
  stats.dropped = stats.emitted - stats.recorded;
  return stats;
}

std::string ChromeTraceJson() {
  std::vector<EventCopy> events = SnapshotEvents();
  std::sort(events.begin(), events.end(),
            [](const EventCopy& a, const EventCopy& b) {
              return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                              : a.tid < b.tid;
            });
  std::string json = "{\"traceEvents\":[";
  char buf[160];
  bool first = true;
  for (const EventCopy& event : events) {
    if (!first) {
      json.push_back(',');
    }
    first = false;
    json.append("\n{\"name\":");
    AppendJsonString(event.name != nullptr ? event.name : "?", &json);
    if (event.kind == kCounter) {
      const double value =
          std::bit_cast<double>(static_cast<uint64_t>(event.extra));
      std::snprintf(buf, sizeof(buf),
                    ",\"ph\":\"C\",\"pid\":1,\"tid\":%llu,\"ts\":%.3f,"
                    "\"args\":{\"value\":%.9g}}",
                    static_cast<unsigned long long>(event.tid),
                    static_cast<double>(event.start_ns) / 1000.0, value);
      json.append(buf);
    } else {
      json.append(",\"cat\":");
      AppendJsonString(event.category != nullptr ? event.category : "?",
                       &json);
      std::snprintf(buf, sizeof(buf),
                    ",\"ph\":\"X\",\"pid\":1,\"tid\":%llu,\"ts\":%.3f,"
                    "\"dur\":%.3f}",
                    static_cast<unsigned long long>(event.tid),
                    static_cast<double>(event.start_ns) / 1000.0,
                    static_cast<double>(event.extra) / 1000.0);
      json.append(buf);
    }
  }
  json.append("\n]}\n");
  return json;
}

Status WriteChromeTrace(const std::string& path) {
  const std::string json = ChromeTraceJson();
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("cannot open trace file " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const int close_rc = std::fclose(file);
  if (written != json.size() || close_rc != 0) {
    return Status::IoError("short write to trace file " + path);
  }
  return Status::OK();
}

void ResetTrace() {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  for (const std::unique_ptr<ThreadRing>& ring : registry.rings) {
    for (Slot& slot : ring->slots) {
      slot.seq.store(0, std::memory_order_relaxed);
    }
    ring->head.store(0, std::memory_order_release);
  }
}

}  // namespace obs
}  // namespace tpsl

#include "util/memory.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#ifndef _WIN32
#include <sys/resource.h>
#endif

namespace tpsl {
namespace {

/// Parses a "<Field>:   <kB> kB" line value from /proc/self/status.
uint64_t ReadProcStatusKb(const char* field) {
  std::FILE* file = std::fopen("/proc/self/status", "r");
  if (file == nullptr) {
    return 0;
  }
  char line[256];
  uint64_t result = 0;
  const size_t field_len = std::strlen(field);
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0 && line[field_len] == ':') {
      unsigned long long kb = 0;
      if (std::sscanf(line + field_len + 1, "%llu", &kb) == 1) {
        result = static_cast<uint64_t>(kb) * 1024;
      }
      break;
    }
  }
  std::fclose(file);
  return result;
}

}  // namespace

uint64_t CurrentRssBytes() { return ReadProcStatusKb("VmRSS"); }

uint64_t GetrusageMaxRssBytes() {
#ifndef _WIN32
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0 || usage.ru_maxrss < 0) {
    return 0;
  }
#if defined(__APPLE__)
  return static_cast<uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<uint64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

uint64_t PeakRssBytes() {
  // Prefer VmHWM: unlike ru_maxrss it can be reset (ResetPeakRss), so
  // per-phase peaks are measurable. getrusage covers containers that
  // mask /proc; current RSS is the lower bound of last resort.
  const uint64_t hwm = ReadProcStatusKb("VmHWM");
  if (hwm != 0) {
    return hwm;
  }
  const uint64_t rusage = GetrusageMaxRssBytes();
  return rusage != 0 ? rusage : CurrentRssBytes();
}

bool ResetPeakRss() {
  std::FILE* file = std::fopen("/proc/self/clear_refs", "w");
  if (file == nullptr) {
    return false;
  }
  const bool wrote = std::fwrite("5", 1, 1, file) == 1;
  return std::fclose(file) == 0 && wrote;
}

}  // namespace tpsl

#include "util/memory.h"

#include <cstdio>
#include <cstring>

namespace tpsl {
namespace {

/// Parses a "<Field>:   <kB> kB" line value from /proc/self/status.
uint64_t ReadProcStatusKb(const char* field) {
  std::FILE* file = std::fopen("/proc/self/status", "r");
  if (file == nullptr) {
    return 0;
  }
  char line[256];
  uint64_t result = 0;
  const size_t field_len = std::strlen(field);
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0 && line[field_len] == ':') {
      unsigned long long kb = 0;
      if (std::sscanf(line + field_len + 1, "%llu", &kb) == 1) {
        result = static_cast<uint64_t>(kb) * 1024;
      }
      break;
    }
  }
  std::fclose(file);
  return result;
}

}  // namespace

uint64_t CurrentRssBytes() { return ReadProcStatusKb("VmRSS"); }

uint64_t PeakRssBytes() {
  const uint64_t peak = ReadProcStatusKb("VmHWM");
  // Some kernels/containers do not report a high-water mark; fall back
  // to the current RSS so callers always get a usable lower bound.
  return peak != 0 ? peak : CurrentRssBytes();
}

}  // namespace tpsl

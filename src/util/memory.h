#ifndef TPSL_UTIL_MEMORY_H_
#define TPSL_UTIL_MEMORY_H_

#include <cstdint>

namespace tpsl {

/// Current resident set size of this process in bytes, or 0 if the
/// platform does not expose it (/proc/self/status on Linux).
uint64_t CurrentRssBytes();

/// Peak RSS reported by getrusage(RUSAGE_SELF).ru_maxrss in bytes, or
/// 0 if unavailable. Works in containers that mask /proc.
uint64_t GetrusageMaxRssBytes();

/// Peak resident set size (high-water mark) of this process in bytes:
/// /proc/self/status VmHWM when available (it honors ResetPeakRss),
/// else the getrusage value, else the current RSS — so callers always
/// get a usable lower bound. Used for the memory columns of the
/// paper's Fig. 4 and the benchkit runner's peak_rss_bytes metric.
uint64_t PeakRssBytes();

/// Resets the kernel's RSS high-water mark (Linux: writes "5" to
/// /proc/self/clear_refs) so PeakRssBytes() measures the peak of the
/// work that follows, not of the whole process lifetime. Returns false
/// where unsupported (non-Linux, restricted /proc) — there
/// PeakRssBytes() keeps reporting the lifetime peak.
bool ResetPeakRss();

}  // namespace tpsl

#endif  // TPSL_UTIL_MEMORY_H_

#ifndef TPSL_UTIL_MEMORY_H_
#define TPSL_UTIL_MEMORY_H_

#include <cstdint>

namespace tpsl {

/// Current resident set size of this process in bytes, or 0 if the
/// platform does not expose it (/proc/self/status on Linux).
uint64_t CurrentRssBytes();

/// Peak resident set size (VmHWM) of this process in bytes, or 0 if
/// unavailable. Used to report the "memory overhead" columns of the
/// paper's Fig. 4.
uint64_t PeakRssBytes();

}  // namespace tpsl

#endif  // TPSL_UTIL_MEMORY_H_

#ifndef TPSL_UTIL_STATUS_H_
#define TPSL_UTIL_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace tpsl {

/// Error categories used across the library. Modeled after the
/// Arrow/Abseil status idiom: functions that can fail return a Status
/// (or StatusOr<T>) instead of throwing exceptions across the public
/// API boundary.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kIoError,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
};

/// Returns a stable human-readable name for a status code.
const char* StatusCodeName(StatusCode code);

/// A cheap value type carrying an error code and message. The OK state
/// carries no message and is trivially copyable in practice.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Union of a Status and a value: either holds a value (and an OK
/// status) or an error status. Mirrors arrow::Result / absl::StatusOr.
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value or an error keeps call sites
  /// terse: `return 42;` or `return Status::IoError(...)`.
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}
  StatusOr(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace tpsl

/// Propagates a non-OK status to the caller. Usable in any function
/// returning Status.
#define TPSL_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::tpsl::Status _tpsl_status = (expr);     \
    if (!_tpsl_status.ok()) {                 \
      return _tpsl_status;                    \
    }                                         \
  } while (0)

/// Evaluates a StatusOr expression, propagating errors, otherwise
/// moving the value into `lhs`.
#define TPSL_ASSIGN_OR_RETURN(lhs, expr)               \
  TPSL_ASSIGN_OR_RETURN_IMPL_(                         \
      TPSL_STATUS_MACRO_CONCAT_(_tpsl_or, __LINE__), lhs, expr)

#define TPSL_ASSIGN_OR_RETURN_IMPL_(var, lhs, expr) \
  auto var = (expr);                                \
  if (!var.ok()) {                                  \
    return var.status();                            \
  }                                                 \
  lhs = std::move(var).value()

#define TPSL_STATUS_MACRO_CONCAT_INNER_(a, b) a##b
#define TPSL_STATUS_MACRO_CONCAT_(a, b) TPSL_STATUS_MACRO_CONCAT_INNER_(a, b)

#endif  // TPSL_UTIL_STATUS_H_

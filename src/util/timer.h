#ifndef TPSL_UTIL_TIMER_H_
#define TPSL_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace tpsl {

/// Monotonic wall-clock stopwatch used for all run-time measurements in
/// the experiment harness.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed seconds into a double on destruction; used to
/// attribute run-time to algorithm phases (paper Fig. 5).
class ScopedTimer {
 public:
  explicit ScopedTimer(double* sink) : sink_(sink) {}
  ~ScopedTimer() { *sink_ += timer_.ElapsedSeconds(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double* sink_;
  WallTimer timer_;
};

}  // namespace tpsl

#endif  // TPSL_UTIL_TIMER_H_

#ifndef TPSL_UTIL_LOGGING_H_
#define TPSL_UTIL_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace tpsl {

enum class LogSeverity { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Sets the minimum severity that is emitted to stderr. Defaults to
/// kInfo. Thread-safe to call concurrently with logging.
void SetMinLogSeverity(LogSeverity severity);
LogSeverity MinLogSeverity();

namespace internal {

/// Stream-style log message collector. Emits on destruction; aborts the
/// process for kFatal messages.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace tpsl

#define TPSL_LOG(severity)                                             \
  ::tpsl::internal::LogMessage(::tpsl::LogSeverity::k##severity,       \
                               __FILE__, __LINE__)

/// Fatal-on-failure invariant check, enabled in all build types.
#define TPSL_CHECK(condition)                                          \
  if (!(condition))                                                    \
  TPSL_LOG(Fatal) << "Check failed: " #condition " "

#define TPSL_CHECK_OK(expr)                                            \
  do {                                                                 \
    ::tpsl::Status _tpsl_check_status = (expr);                        \
    if (!_tpsl_check_status.ok()) {                                    \
      TPSL_LOG(Fatal) << "Status not OK: "                             \
                      << _tpsl_check_status.ToString();                \
    }                                                                  \
  } while (0)

#define TPSL_DCHECK(condition) TPSL_CHECK(condition)

#endif  // TPSL_UTIL_LOGGING_H_

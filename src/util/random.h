#ifndef TPSL_UTIL_RANDOM_H_
#define TPSL_UTIL_RANDOM_H_

#include <cstdint>

namespace tpsl {

/// SplitMix64: a tiny, fast, high-quality 64-bit PRNG used to seed and
/// drive all randomized components. Every experiment in the repository
/// is deterministic given a seed.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    // Lemire's multiply-shift rejection-free mapping; the tiny modulo
    // bias is irrelevant for graph generation.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * 0x1.0p-53; }

 private:
  uint64_t state_;
};

/// Stateless 64-bit mix (Murmur3 finalizer). Used for hash-based
/// partitioners (DBH, Grid, uniform hashing) so that assignments are a
/// pure function of (vertex id, seed).
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Combines a value into a running hash (boost-style).
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (Mix64(value) + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                 (seed >> 2));
}

}  // namespace tpsl

#endif  // TPSL_UTIL_RANDOM_H_

#ifndef TPSL_HYPERGRAPH_HYPERGRAPH_PARTITIONER_H_
#define TPSL_HYPERGRAPH_HYPERGRAPH_PARTITIONER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "hypergraph/hypergraph.h"
#include "util/status.h"

namespace tpsl {

/// Hyperedge partitioning: split the hyperedge set into k parts of at
/// most alpha * |E| / k hyperedges, minimizing pin replication
/// RF = (1/|V|) Σ_i |V(p_i)| — the natural generalization of the
/// paper's problem statement (a graph edge is a 2-pin hyperedge).
struct HypergraphPartitionConfig {
  uint32_t num_partitions = 32;
  double balance_factor = 1.05;
  uint64_t seed = 42;

  uint64_t PartitionCapacity(uint64_t num_hyperedges) const {
    const double cap = balance_factor * static_cast<double>(num_hyperedges) /
                       num_partitions;
    uint64_t capacity = static_cast<uint64_t>(cap);
    if (static_cast<double>(capacity) < cap) {
      ++capacity;
    }
    const uint64_t floor_cap =
        (num_hyperedges + num_partitions - 1) / num_partitions;
    return capacity < floor_cap ? floor_cap : capacity;
  }
};

struct HypergraphQuality {
  double replication_factor = 0.0;
  double measured_alpha = 0.0;
  uint64_t num_hyperedges = 0;
  std::vector<uint64_t> partition_sizes;
};

/// Quality recomputed from scratch from the assignment vector
/// (assignment[i] = partition of hypergraph.edges[i]).
HypergraphQuality ComputeHypergraphQuality(
    const Hypergraph& hypergraph, const std::vector<PartitionId>& assignment,
    uint32_t num_partitions);

/// Stateless baseline: hyperedge hashed on its first pin.
StatusOr<std::vector<PartitionId>> HashPartitionHypergraph(
    const Hypergraph& hypergraph, const HypergraphPartitionConfig& config);

/// Stateful streaming baseline in the spirit of streaming min-max
/// hypergraph partitioning (Alistarh et al., NIPS'15): each hyperedge
/// goes to the non-full partition already holding the most of its
/// pins (ties: least loaded). O(|pins| * k) per hyperedge.
StatusOr<std::vector<PartitionId>> MinMaxPartitionHypergraph(
    const Hypergraph& hypergraph, const HypergraphPartitionConfig& config);

/// 2PS-H: the two-phase linear-time scheme lifted to hypergraphs.
/// Phase 1 runs the paper's streaming clustering on the star expansion;
/// Phase 2 maps clusters to partitions (Graham), pre-partitions
/// hyperedges whose pins' clusters are co-located, and scores the rest
/// only on the candidate partitions of the pins' clusters — at most
/// |pins| candidates instead of k, preserving the run-time independence
/// from k that defines 2PS-L.
struct TwoPhaseHypergraphOptions {
  uint32_t clustering_passes = 1;
  double volume_cap_factor = 0.25;
};

StatusOr<std::vector<PartitionId>> TwoPhasePartitionHypergraph(
    const Hypergraph& hypergraph, const HypergraphPartitionConfig& config,
    const TwoPhaseHypergraphOptions& options = {});

}  // namespace tpsl

#endif  // TPSL_HYPERGRAPH_HYPERGRAPH_PARTITIONER_H_

#ifndef TPSL_HYPERGRAPH_HYPERGRAPH_H_
#define TPSL_HYPERGRAPH_HYPERGRAPH_H_

#include <cstdint>
#include <vector>

#include "graph/edge_stream.h"
#include "graph/types.h"

namespace tpsl {

/// Hypergraph support — the generalization the paper names as future
/// work ("we plan to investigate the generalization of 2PS-L to
/// hypergraphs"). A hyperedge connects an arbitrary set of pins
/// (vertices); hyperedge partitioning splits the hyperedge set into k
/// balanced parts minimizing pin replication.
struct Hyperedge {
  std::vector<VertexId> pins;

  friend bool operator==(const Hyperedge& a, const Hyperedge& b) {
    return a.pins == b.pins;
  }
};

struct Hypergraph {
  std::vector<Hyperedge> edges;

  /// Max pin id + 1 over all hyperedges.
  VertexId NumVertices() const;

  /// Total pin count Σ|e| (the hypergraph "volume").
  uint64_t NumPins() const;
};

/// Planted-community hypergraph generator: pins of an intra hyperedge
/// come from one community; otherwise pins are sampled globally.
/// Deterministic in the seed.
struct PlantedHypergraphConfig {
  VertexId num_vertices = 1 << 14;
  uint64_t num_hyperedges = 1 << 16;
  uint32_t min_pins = 2;
  uint32_t max_pins = 8;
  uint32_t num_communities = 256;
  double intra_fraction = 0.9;
  uint64_t seed = 1;
};

Hypergraph GeneratePlantedHypergraph(const PlantedHypergraphConfig& config);

/// Star-expansion view of a hypergraph as an EdgeStream: hyperedge
/// {p0, p1, ..., pn} is emitted as edges (p0,p1), (p0,p2), ..., (p0,pn).
/// This lets the plain-graph streaming clustering (paper Algorithm 1)
/// run unchanged on hypergraphs, which is exactly the reuse the
/// two-phase design enables.
class StarExpansionStream : public EdgeStream {
 public:
  explicit StarExpansionStream(const Hypergraph* hypergraph)
      : hypergraph_(hypergraph) {}

  Status Reset() override {
    edge_index_ = 0;
    pin_index_ = 1;
    return Status::OK();
  }

  size_t Next(Edge* out, size_t capacity) override;

  uint64_t NumEdgesHint() const override;

 private:
  const Hypergraph* hypergraph_;
  size_t edge_index_ = 0;
  size_t pin_index_ = 1;
};

}  // namespace tpsl

#endif  // TPSL_HYPERGRAPH_HYPERGRAPH_H_

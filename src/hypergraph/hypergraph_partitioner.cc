#include "hypergraph/hypergraph_partitioner.h"

#include <algorithm>

#include "core/cluster_schedule.h"
#include "core/streaming_clustering.h"
#include "graph/degrees.h"
#include "partition/score_tables.h"
#include "util/random.h"

namespace tpsl {

HypergraphQuality ComputeHypergraphQuality(
    const Hypergraph& hypergraph, const std::vector<PartitionId>& assignment,
    uint32_t num_partitions) {
  HypergraphQuality quality;
  quality.partition_sizes.assign(num_partitions, 0);
  quality.num_hyperedges = hypergraph.edges.size();

  // Dense vertex covers on the kernel's bit matrix: Set() is
  // idempotent and maintains per-partition cover counts and the
  // covered-vertex count incrementally, so no hash sets are needed.
  ReplicationTable covers(hypergraph.NumVertices(), num_partitions);
  for (size_t i = 0; i < hypergraph.edges.size(); ++i) {
    const PartitionId p = assignment[i];
    ++quality.partition_sizes[p];
    for (const VertexId pin : hypergraph.edges[i].pins) {
      covers.Set(pin, p);
    }
  }
  if (covers.CoveredVertices() > 0) {
    quality.replication_factor = covers.ReplicationFactor();
  }
  if (quality.num_hyperedges > 0) {
    const uint64_t max_size = *std::max_element(
        quality.partition_sizes.begin(), quality.partition_sizes.end());
    quality.measured_alpha =
        static_cast<double>(max_size) * num_partitions /
        static_cast<double>(quality.num_hyperedges);
  }
  return quality;
}

StatusOr<std::vector<PartitionId>> HashPartitionHypergraph(
    const Hypergraph& hypergraph, const HypergraphPartitionConfig& config) {
  if (config.num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  std::vector<PartitionId> assignment(hypergraph.edges.size());
  for (size_t i = 0; i < hypergraph.edges.size(); ++i) {
    const VertexId pivot =
        hypergraph.edges[i].pins.empty() ? 0 : hypergraph.edges[i].pins[0];
    assignment[i] = static_cast<PartitionId>(
        Mix64(HashCombine(config.seed, pivot)) % config.num_partitions);
  }
  return assignment;
}

StatusOr<std::vector<PartitionId>> MinMaxPartitionHypergraph(
    const Hypergraph& hypergraph, const HypergraphPartitionConfig& config) {
  if (config.num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  const uint32_t k = config.num_partitions;

  ScoreTables tables(hypergraph.NumVertices(), k,
                     config.PartitionCapacity(hypergraph.edges.size()));
  std::vector<PartitionId> assignment(hypergraph.edges.size());
  std::vector<uint32_t> overlap(k);

  for (size_t i = 0; i < hypergraph.edges.size(); ++i) {
    const Hyperedge& edge = hypergraph.edges[i];
    std::fill(overlap.begin(), overlap.end(), 0);
    for (const VertexId pin : edge.pins) {
      for (PartitionId p = 0; p < k; ++p) {
        overlap[p] += tables.replicas().Test(pin, p) ? 1 : 0;
      }
    }
    PartitionId best = kInvalidPartition;
    for (PartitionId p = 0; p < k; ++p) {
      if (tables.IsFull(p)) {
        continue;
      }
      if (best == kInvalidPartition || overlap[p] > overlap[best] ||
          (overlap[p] == overlap[best] && tables.load(p) < tables.load(best))) {
        best = p;
      }
    }
    assignment[i] = best;
    tables.AddLoad(best);
    for (const VertexId pin : edge.pins) {
      tables.replicas().Set(pin, best);
    }
  }
  return assignment;
}

StatusOr<std::vector<PartitionId>> TwoPhasePartitionHypergraph(
    const Hypergraph& hypergraph, const HypergraphPartitionConfig& config,
    const TwoPhaseHypergraphOptions& options) {
  if (config.num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  const uint32_t k = config.num_partitions;

  // --- Phase 1: plain-graph streaming clustering on the star
  // expansion (reuses paper Algorithm 1 verbatim). ---
  StarExpansionStream star(&hypergraph);
  DegreeTable degrees;
  TPSL_ASSIGN_OR_RETURN(degrees, ComputeDegrees(star));
  ClusteringConfig clustering_config;
  clustering_config.num_passes = options.clustering_passes;
  clustering_config.volume_cap_factor = options.volume_cap_factor;
  Clustering clustering;
  TPSL_ASSIGN_OR_RETURN(
      clustering, StreamingClustering(star, degrees, k, clustering_config));
  const ClusterSchedule schedule =
      ScheduleClustersGraham(clustering.cluster_volumes, k);

  ScoreTables tables(degrees.num_vertices(), k,
                     config.PartitionCapacity(hypergraph.edges.size()));
  std::vector<PartitionId> assignment(hypergraph.edges.size(),
                                      kInvalidPartition);

  const auto partition_of_pin = [&](VertexId pin) {
    const ClusterId c = clustering.vertex_cluster[pin];
    return c == kInvalidCluster ? kInvalidPartition
                                : schedule.cluster_partition[c];
  };

  const auto commit = [&](size_t index, PartitionId target) {
    assignment[index] = target;
    tables.AddLoad(target);
    for (const VertexId pin : hypergraph.edges[index].pins) {
      tables.replicas().Set(pin, target);
    }
  };

  // --- Phase 2a: pre-partition hyperedges whose pins' clusters map to
  // a single partition. ---
  std::vector<size_t> remaining;
  for (size_t i = 0; i < hypergraph.edges.size(); ++i) {
    const Hyperedge& edge = hypergraph.edges[i];
    PartitionId common = partition_of_pin(edge.pins[0]);
    bool unanimous = true;
    for (const VertexId pin : edge.pins) {
      if (partition_of_pin(pin) != common) {
        unanimous = false;
        break;
      }
    }
    if (!unanimous) {
      remaining.push_back(i);
      continue;
    }
    PartitionId target = common;
    if (tables.IsFull(target)) {
      target = tables.LeastLoadedOpen();
    }
    commit(i, target);
  }

  // --- Phase 2b: score each remaining hyperedge only on the distinct
  // partitions of its pins' clusters (<= |pins| candidates). ---
  std::vector<PartitionId> candidates;
  for (const size_t i : remaining) {
    const Hyperedge& edge = hypergraph.edges[i];
    candidates.clear();
    uint64_t volume_sum = 0;
    uint64_t degree_sum = 0;
    for (const VertexId pin : edge.pins) {
      const PartitionId p = partition_of_pin(pin);
      if (std::find(candidates.begin(), candidates.end(), p) ==
          candidates.end()) {
        candidates.push_back(p);
      }
      degree_sum += degrees.degree(pin);
      volume_sum +=
          clustering.cluster_volumes[clustering.vertex_cluster[pin]];
    }

    PartitionId target = kInvalidPartition;
    double best_score = -1.0;
    for (const PartitionId p : candidates) {
      double score = 0.0;
      for (const VertexId pin : edge.pins) {
        if (tables.replicas().Test(pin, p)) {
          score += 1.0 + (1.0 - static_cast<double>(degrees.degree(pin)) /
                                    static_cast<double>(degree_sum));
        }
        if (partition_of_pin(pin) == p && volume_sum > 0) {
          score += static_cast<double>(
                       clustering.cluster_volumes
                           [clustering.vertex_cluster[pin]]) /
                   static_cast<double>(volume_sum);
        }
      }
      if (score > best_score) {
        best_score = score;
        target = p;
      }
    }
    if (target == kInvalidPartition || tables.IsFull(target)) {
      target = tables.LeastLoadedOpen();
    }
    commit(i, target);
  }
  return assignment;
}

}  // namespace tpsl

#include "hypergraph/hypergraph.h"

#include <algorithm>

#include "util/logging.h"
#include "util/random.h"

namespace tpsl {

VertexId Hypergraph::NumVertices() const {
  VertexId max_id = 0;
  bool any = false;
  for (const Hyperedge& e : edges) {
    for (const VertexId pin : e.pins) {
      max_id = std::max(max_id, pin);
      any = true;
    }
  }
  return any ? max_id + 1 : 0;
}

uint64_t Hypergraph::NumPins() const {
  uint64_t pins = 0;
  for (const Hyperedge& e : edges) {
    pins += e.pins.size();
  }
  return pins;
}

Hypergraph GeneratePlantedHypergraph(const PlantedHypergraphConfig& config) {
  TPSL_CHECK(config.min_pins >= 2);
  TPSL_CHECK(config.max_pins >= config.min_pins);
  TPSL_CHECK(config.num_communities > 0);
  TPSL_CHECK(config.num_vertices >= config.num_communities);
  SplitMix64 rng(config.seed);

  const VertexId community_size =
      config.num_vertices / config.num_communities;
  Hypergraph hypergraph;
  hypergraph.edges.reserve(config.num_hyperedges);
  for (uint64_t i = 0; i < config.num_hyperedges; ++i) {
    const uint32_t size = config.min_pins + static_cast<uint32_t>(rng.NextBounded(
                              config.max_pins - config.min_pins + 1));
    Hyperedge edge;
    edge.pins.reserve(size);
    const bool intra = rng.NextDouble() < config.intra_fraction;
    const VertexId lo =
        intra ? static_cast<VertexId>(
                    rng.NextBounded(config.num_communities)) *
                    community_size
              : 0;
    const VertexId range = intra ? community_size : config.num_vertices;
    for (uint32_t j = 0; j < size; ++j) {
      edge.pins.push_back(lo + static_cast<VertexId>(rng.NextBounded(range)));
    }
    // Duplicate pins within a hyperedge are legal but useless; drop
    // them while preserving order.
    std::vector<VertexId> unique_pins;
    for (const VertexId pin : edge.pins) {
      if (std::find(unique_pins.begin(), unique_pins.end(), pin) ==
          unique_pins.end()) {
        unique_pins.push_back(pin);
      }
    }
    edge.pins = std::move(unique_pins);
    if (edge.pins.size() >= 2) {
      hypergraph.edges.push_back(std::move(edge));
    }
  }
  return hypergraph;
}

size_t StarExpansionStream::Next(Edge* out, size_t capacity) {
  size_t produced = 0;
  while (produced < capacity && edge_index_ < hypergraph_->edges.size()) {
    const std::vector<VertexId>& pins =
        hypergraph_->edges[edge_index_].pins;
    if (pin_index_ >= pins.size()) {
      ++edge_index_;
      pin_index_ = 1;
      continue;
    }
    out[produced++] = Edge{pins[0], pins[pin_index_++]};
  }
  return produced;
}

uint64_t StarExpansionStream::NumEdgesHint() const {
  uint64_t total = 0;
  for (const Hyperedge& e : hypergraph_->edges) {
    total += e.pins.empty() ? 0 : e.pins.size() - 1;
  }
  return total;
}

}  // namespace tpsl

#include "baselines/greedy.h"

#include <vector>

#include "graph/degrees.h"
#include "partition/replication_table.h"
#include "util/timer.h"

namespace tpsl {

Status GreedyPartitioner::Partition(EdgeStream& stream,
                                    const PartitionConfig& config,
                                    AssignmentSink& sink,
                                    PartitionStats* stats) {
  if (config.num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  PartitionStats local;
  PartitionStats& out = stats != nullptr ? *stats : local;

  // Size the replication table with a degree pass (also yields |E| for
  // the capacity bound).
  DegreeTable degrees;
  {
    ScopedTimer timer(&out.phase_seconds["degree"]);
    TPSL_ASSIGN_OR_RETURN(degrees, ComputeDegrees(stream));
  }
  out.stream_passes += 1;

  ScopedTimer timer(&out.phase_seconds["partitioning"]);
  const uint32_t k = config.num_partitions;
  const uint64_t capacity = config.PartitionCapacity(degrees.num_edges);
  ReplicationTable replicas(degrees.num_vertices(), k);
  std::vector<uint64_t> loads(k, 0);
  out.state_bytes = replicas.HeapBytes() + loads.size() * sizeof(uint64_t) +
                    degrees.degrees.size() * sizeof(uint32_t);

  TPSL_RETURN_IF_ERROR(ForEachEdge(stream, [&](const Edge& e) {
    // One O(k) scan classifies every partition into the PowerGraph
    // cases; full partitions are skipped to honor the hard cap.
    PartitionId best_common = kInvalidPartition;
    PartitionId best_either = kInvalidPartition;
    PartitionId best_any = kInvalidPartition;
    for (PartitionId p = 0; p < k; ++p) {
      if (loads[p] >= capacity) {
        continue;
      }
      const bool u_on = replicas.Test(e.first, p);
      const bool v_on = replicas.Test(e.second, p);
      if (u_on && v_on &&
          (best_common == kInvalidPartition ||
           loads[p] < loads[best_common])) {
        best_common = p;
      }
      if ((u_on || v_on) &&
          (best_either == kInvalidPartition ||
           loads[p] < loads[best_either])) {
        best_either = p;
      }
      if (best_any == kInvalidPartition || loads[p] < loads[best_any]) {
        best_any = p;
      }
    }
    PartitionId target = best_common;
    if (target == kInvalidPartition) {
      target = best_either;
    }
    if (target == kInvalidPartition) {
      target = best_any;
    }
    replicas.Set(e.first, target);
    replicas.Set(e.second, target);
    ++loads[target];
    sink.Assign(e, target);
  }));
  out.stream_passes += 1;
  return Status::OK();
}

}  // namespace tpsl

#include "baselines/greedy.h"

#include "graph/degrees.h"
#include "partition/score_tables.h"
#include "util/timer.h"

namespace tpsl {

Status GreedyPartitioner::Partition(EdgeStream& stream,
                                    const PartitionConfig& config,
                                    AssignmentSink& sink,
                                    PartitionStats* stats) {
  if (config.num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  PartitionStats local;
  PartitionStats& out = stats != nullptr ? *stats : local;

  // Size the replication table with a degree pass (also yields |E| for
  // the capacity bound).
  DegreeTable degrees;
  {
    PhaseTimer timer(&out, "degree");
    TPSL_ASSIGN_OR_RETURN(degrees, ComputeDegrees(stream));
  }
  out.stream_passes += 1;

  PhaseTimer timer(&out, "partitioning");
  ScoreTables tables(degrees.num_vertices(), config.num_partitions,
                     config.PartitionCapacity(degrees.num_edges));
  out.state_bytes =
      tables.HeapBytes() + degrees.degrees.size() * sizeof(uint32_t);

  TPSL_RETURN_IF_ERROR(ForEachEdgePrefetched(
      stream, [&](const Edge& e) { tables.PrefetchEdge(e); },
      [&](const Edge& e) {
        const PartitionId target = tables.PickGreedy(e);
        tables.Commit(e, target);
        sink.Assign(e, target);
      }));
  out.stream_passes += 1;
  return Status::OK();
}

}  // namespace tpsl

#include "baselines/grid.h"

#include <cmath>
#include <vector>

#include "util/random.h"
#include "util/timer.h"

namespace tpsl {
namespace {

/// Largest factor r <= sqrt(k) such that r divides k, giving an r x
/// (k/r) grid. k prime degrades to a 1 x k grid (plain hashing).
uint32_t GridRows(uint32_t k) {
  uint32_t r = static_cast<uint32_t>(std::sqrt(static_cast<double>(k)));
  while (r > 1 && k % r != 0) {
    --r;
  }
  return r == 0 ? 1 : r;
}

}  // namespace

Status GridPartitioner::Partition(EdgeStream& stream,
                                  const PartitionConfig& config,
                                  AssignmentSink& sink,
                                  PartitionStats* stats) {
  if (config.num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  PartitionStats local;
  PartitionStats& out = stats != nullptr ? *stats : local;
  PhaseTimer timer(&out, "partitioning");

  const uint32_t k = config.num_partitions;
  const uint32_t rows = GridRows(k);
  const uint32_t cols = k / rows;
  const uint64_t seed = config.seed;
  std::vector<uint64_t> loads(k, 0);

  TPSL_RETURN_IF_ERROR(ForEachEdge(stream, [&](const Edge& e) {
    const uint64_t hu = Mix64(HashCombine(seed, e.first));
    const uint64_t hv = Mix64(HashCombine(seed, e.second));
    const uint32_t row_u = static_cast<uint32_t>(hu % rows);
    const uint32_t col_u = static_cast<uint32_t>((hu >> 32) % cols);
    const uint32_t row_v = static_cast<uint32_t>(hv % rows);
    const uint32_t col_v = static_cast<uint32_t>((hv >> 32) % cols);
    const PartitionId cell_a = row_u * cols + col_v;
    const PartitionId cell_b = row_v * cols + col_u;
    const PartitionId target =
        loads[cell_a] <= loads[cell_b] ? cell_a : cell_b;
    ++loads[target];
    sink.Assign(e, target);
  }));
  out.stream_passes += 1;
  out.state_bytes = loads.size() * sizeof(uint64_t);
  return Status::OK();
}

}  // namespace tpsl

#include "baselines/adwise.h"

#include <algorithm>
#include <vector>

#include "graph/degrees.h"
#include "partition/score_tables.h"
#include "util/timer.h"

namespace tpsl {
namespace {

struct ScoredEdge {
  Edge edge;
  PartitionId best_partition;
  double best_score;
};

}  // namespace

Status AdwisePartitioner::Partition(EdgeStream& stream,
                                    const PartitionConfig& config,
                                    AssignmentSink& sink,
                                    PartitionStats* stats) {
  if (config.num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  if (options_.window_size == 0) {
    return Status::InvalidArgument("window_size must be positive");
  }
  PartitionStats local;
  PartitionStats& out = stats != nullptr ? *stats : local;

  DegreeTable degrees;
  {
    PhaseTimer timer(&out, "degree");
    TPSL_ASSIGN_OR_RETURN(degrees, ComputeDegrees(stream));
  }
  out.stream_passes += 1;

  PhaseTimer timer(&out, "partitioning");
  ScoreTables tables(degrees.num_vertices(), config.num_partitions,
                     config.PartitionCapacity(degrees.num_edges));
  out.state_bytes = tables.HeapBytes() +
                    degrees.degrees.size() * sizeof(uint32_t) +
                    options_.window_size * sizeof(ScoredEdge);

  std::vector<ScoredEdge> window;
  window.reserve(options_.window_size);

  const auto score_edge = [&](const Edge& e) -> ScoredEdge {
    const ScoreTables::Choice choice =
        tables.PickHdrf(e, degrees.degree(e.first), degrees.degree(e.second),
                        options_.lambda, /*respect_capacity=*/true);
    return ScoredEdge{e, choice.partition, choice.score};
  };

  const auto assign = [&](const ScoredEdge& scored) {
    tables.Commit(scored.edge, scored.best_partition);
    sink.Assign(scored.edge, scored.best_partition);
  };

  // Drains the most confident half of the window: re-scores every
  // buffered edge against current state, sorts by descending score and
  // assigns the top `amount`.
  const auto drain = [&](size_t amount) {
    for (ScoredEdge& scored : window) {
      scored = score_edge(scored.edge);
    }
    std::stable_sort(window.begin(), window.end(),
                     [](const ScoredEdge& a, const ScoredEdge& b) {
                       return a.best_score > b.best_score;
                     });
    amount = std::min(amount, window.size());
    for (size_t i = 0; i < amount; ++i) {
      // Re-score lazily: loads move as the window drains, so the best
      // partition may have filled up.
      ScoredEdge fresh = score_edge(window[i].edge);
      assign(fresh);
    }
    window.erase(window.begin(), window.begin() + amount);
  };

  TPSL_RETURN_IF_ERROR(stream.Reset());
  constexpr size_t kBatch = 1024;
  Edge buffer[kBatch];
  size_t n;
  while ((n = stream.Next(buffer, kBatch)) > 0) {
    for (size_t i = 0; i < n; ++i) {
      window.push_back(ScoredEdge{buffer[i], kInvalidPartition, -1.0});
      if (window.size() >= options_.window_size) {
        drain(options_.window_size / 2 + 1);
      }
    }
  }
  while (!window.empty()) {
    drain(window.size());
  }
  out.stream_passes += 1;
  return Status::OK();
}

}  // namespace tpsl

#ifndef TPSL_BASELINES_GREEDY_H_
#define TPSL_BASELINES_GREEDY_H_

#include <string>

#include "partition/partitioner.h"

namespace tpsl {

/// PowerGraph's Greedy streaming heuristic (Gonzalez et al., OSDI'12).
/// Case analysis on the replica sets A(u), A(v) of an edge's endpoints:
///   1. A(u) ∩ A(v) != ∅  -> least-loaded common partition
///   2. both non-empty     -> least-loaded partition in A(u) ∪ A(v)
///   3. one non-empty      -> least-loaded partition in that set
///   4. both empty         -> least-loaded partition overall
/// Stateful, single pass, O(|E|·k) time, O(|V|·k) space. Enforces the
/// hard balance cap by excluding full partitions from every case.
class GreedyPartitioner : public Partitioner {
 public:
  std::string name() const override { return "Greedy"; }

  Status Partition(EdgeStream& stream, const PartitionConfig& config,
                   AssignmentSink& sink, PartitionStats* stats) override;
};

}  // namespace tpsl

#endif  // TPSL_BASELINES_GREEDY_H_

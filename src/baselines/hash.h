#ifndef TPSL_BASELINES_HASH_H_
#define TPSL_BASELINES_HASH_H_

#include <string>

#include "partition/partitioner.h"

namespace tpsl {

/// Uniform random hashing of whole edges — the weakest stateless
/// baseline, and the strategy production systems fall back to when
/// stateful partitioning is too slow (the paper's P3 example). One
/// streaming pass, O(1) state, no balance guarantee beyond hashing
/// uniformity.
class HashPartitioner : public Partitioner {
 public:
  std::string name() const override { return "Hash"; }
  bool enforces_balance_cap() const override { return false; }

  Status Partition(EdgeStream& stream, const PartitionConfig& config,
                   AssignmentSink& sink, PartitionStats* stats) override;
};

}  // namespace tpsl

#endif  // TPSL_BASELINES_HASH_H_

#include "baselines/hash.h"

#include "util/random.h"
#include "util/timer.h"

namespace tpsl {

Status HashPartitioner::Partition(EdgeStream& stream,
                                  const PartitionConfig& config,
                                  AssignmentSink& sink,
                                  PartitionStats* stats) {
  if (config.num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  PartitionStats local;
  PartitionStats& out = stats != nullptr ? *stats : local;
  PhaseTimer timer(&out, "partitioning");

  const uint32_t k = config.num_partitions;
  const uint64_t seed = config.seed;
  TPSL_RETURN_IF_ERROR(ForEachEdge(stream, [&](const Edge& e) {
    const uint64_t key =
        (static_cast<uint64_t>(e.first) << 32) | e.second;
    sink.Assign(e, static_cast<PartitionId>(Mix64(HashCombine(seed, key)) % k));
  }));
  out.stream_passes += 1;
  out.state_bytes = 0;
  return Status::OK();
}

}  // namespace tpsl

#ifndef TPSL_BASELINES_DBH_H_
#define TPSL_BASELINES_DBH_H_

#include <string>

#include "partition/partitioner.h"

namespace tpsl {

/// Degree-Based Hashing (Xie et al., NeurIPS'14): hashes each edge on
/// the ID of its lower-degree endpoint, cutting preferentially through
/// high-degree vertices of power-law graphs. The fastest streaming
/// baseline in the paper's evaluation (stateless, O(|V|) state for the
/// degree table).
///
/// This implementation computes exact degrees in an upfront streaming
/// pass (2 passes total), matching the paper's framework where all
/// partitioners ingest the same binary edge stream.
class DbhPartitioner : public Partitioner {
 public:
  std::string name() const override { return "DBH"; }
  bool enforces_balance_cap() const override { return false; }

  Status Partition(EdgeStream& stream, const PartitionConfig& config,
                   AssignmentSink& sink, PartitionStats* stats) override;
};

}  // namespace tpsl

#endif  // TPSL_BASELINES_DBH_H_

#ifndef TPSL_BASELINES_HEP_H_
#define TPSL_BASELINES_HEP_H_

#include <string>

#include "partition/partitioner.h"

namespace tpsl {

/// HEP — Hybrid Edge Partitioner (Mayer & Jacobsen, SIGMOD'21): splits
/// the edge set by vertex degree. Edges whose endpoints both have
/// degree <= τ · mean-degree are held in memory and partitioned with
/// neighborhood expansion; the remaining (high-degree) edges are
/// streamed with HDRF scoring against the shared replication state.
/// τ = 100 behaves like an in-memory partitioner; τ = 1 like a
/// streaming partitioner — exactly the HEP-100 / HEP-10 / HEP-1
/// configurations of the paper's evaluation.
class HepPartitioner : public Partitioner {
 public:
  struct Options {
    /// Degree threshold factor τ (relative to the mean degree).
    double tau = 10.0;
    /// λ of the HDRF scoring used for the streamed edges.
    double lambda = 1.1;
  };

  HepPartitioner() = default;
  explicit HepPartitioner(Options options) : options_(options) {}

  std::string name() const override {
    // Render τ compactly: HEP-1, HEP-10, HEP-100.
    const int tau = static_cast<int>(options_.tau);
    return "HEP-" + std::to_string(tau);
  }

  Status Partition(EdgeStream& stream, const PartitionConfig& config,
                   AssignmentSink& sink, PartitionStats* stats) override;

 private:
  Options options_;
};

}  // namespace tpsl

#endif  // TPSL_BASELINES_HEP_H_

#ifndef TPSL_BASELINES_MULTILEVEL_H_
#define TPSL_BASELINES_MULTILEVEL_H_

#include <string>

#include "partition/partitioner.h"

namespace tpsl {

/// Multilevel in-memory partitioner — the repository's METIS stand-in
/// (see DESIGN.md §4). Classic three-stage pipeline (Karypis & Kumar):
///   1. Coarsening by heavy-edge matching until the graph is small.
///   2. Greedy balanced initial partitioning of the coarsest graph.
///   3. Uncoarsening with boundary gain refinement at every level.
/// The vertex partition is converted to an edge partition by assigning
/// each edge to an endpoint's part (capacity permitting). Reproduces
/// METIS's qualitative profile in the paper's evaluation: strong
/// replication factors, but in-memory footprint and a run-time far
/// above streaming partitioners.
class MultilevelPartitioner : public Partitioner {
 public:
  struct Options {
    /// Stop coarsening when |V| falls below `coarsest_factor * k`.
    uint32_t coarsest_factor = 32;
    /// Refinement sweeps per level.
    uint32_t refine_passes = 4;
    /// Vertex-weight balance slack during refinement.
    double vertex_balance = 1.10;
  };

  MultilevelPartitioner() = default;
  explicit MultilevelPartitioner(Options options) : options_(options) {}

  std::string name() const override { return "METIS*"; }

  Status Partition(EdgeStream& stream, const PartitionConfig& config,
                   AssignmentSink& sink, PartitionStats* stats) override;

 private:
  Options options_;
};

}  // namespace tpsl

#endif  // TPSL_BASELINES_MULTILEVEL_H_

#include "baselines/hdrf.h"

#include <vector>

#include "graph/degrees.h"
#include "partition/score_tables.h"
#include "util/timer.h"

namespace tpsl {

Status HdrfPartitioner::Partition(EdgeStream& stream,
                                  const PartitionConfig& config,
                                  AssignmentSink& sink,
                                  PartitionStats* stats) {
  if (config.num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  PartitionStats local;
  PartitionStats& out = stats != nullptr ? *stats : local;

  // HDRF proper is single-pass with partial degrees; we only need a
  // cheap upfront pass to size the state arrays and learn |E| for the
  // hard capacity bound (the paper's framework streams a binary file
  // whose |E| is known from the file size).
  DegreeTable degrees;
  {
    PhaseTimer timer(&out, "degree");
    TPSL_ASSIGN_OR_RETURN(degrees, ComputeDegrees(stream));
  }
  out.stream_passes += 1;

  PhaseTimer timer(&out, "partitioning");
  const VertexId num_vertices = degrees.num_vertices();

  ScoreTables tables(num_vertices, config.num_partitions,
                     config.PartitionCapacity(degrees.num_edges));
  std::vector<uint32_t> partial_degree(num_vertices, 0);
  out.state_bytes =
      tables.HeapBytes() + partial_degree.size() * sizeof(uint32_t);

  TPSL_RETURN_IF_ERROR(ForEachEdgePrefetched(
      stream, [&](const Edge& e) { tables.PrefetchEdge(e); },
      [&](const Edge& e) {
        ++partial_degree[e.first];
        ++partial_degree[e.second];
        const PartitionId target =
            tables
                .PickHdrf(e, partial_degree[e.first], partial_degree[e.second],
                          options_.lambda, /*respect_capacity=*/true)
                .partition;
        tables.Commit(e, target);
        sink.Assign(e, target);
      }));
  out.stream_passes += 1;
  return Status::OK();
}

}  // namespace tpsl

#include "baselines/hdrf.h"

#include <algorithm>
#include <vector>

#include "core/scoring.h"
#include "graph/degrees.h"
#include "partition/replication_table.h"
#include "util/timer.h"

namespace tpsl {

Status HdrfPartitioner::Partition(EdgeStream& stream,
                                  const PartitionConfig& config,
                                  AssignmentSink& sink,
                                  PartitionStats* stats) {
  if (config.num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  PartitionStats local;
  PartitionStats& out = stats != nullptr ? *stats : local;

  // HDRF proper is single-pass with partial degrees; we only need a
  // cheap upfront pass to size the state arrays and learn |E| for the
  // hard capacity bound (the paper's framework streams a binary file
  // whose |E| is known from the file size).
  DegreeTable degrees;
  {
    ScopedTimer timer(&out.phase_seconds["degree"]);
    TPSL_ASSIGN_OR_RETURN(degrees, ComputeDegrees(stream));
  }
  out.stream_passes += 1;

  ScopedTimer timer(&out.phase_seconds["partitioning"]);
  const uint32_t k = config.num_partitions;
  const uint64_t capacity = config.PartitionCapacity(degrees.num_edges);
  const VertexId num_vertices = degrees.num_vertices();

  ReplicationTable replicas(num_vertices, k);
  std::vector<uint64_t> loads(k, 0);
  std::vector<uint32_t> partial_degree(num_vertices, 0);
  out.state_bytes = replicas.HeapBytes() + loads.size() * sizeof(uint64_t) +
                    partial_degree.size() * sizeof(uint32_t);

  uint64_t max_load = 0;
  TPSL_RETURN_IF_ERROR(ForEachEdge(stream, [&](const Edge& e) {
    ++partial_degree[e.first];
    ++partial_degree[e.second];
    const uint32_t du = partial_degree[e.first];
    const uint32_t dv = partial_degree[e.second];

    const uint64_t min_load = *std::min_element(loads.begin(), loads.end());
    double best_score = -1.0;
    PartitionId target = kInvalidPartition;
    for (PartitionId p = 0; p < k; ++p) {
      if (loads[p] >= capacity) {
        continue;  // Hard cap: full partitions are not candidates.
      }
      const double score =
          HdrfReplicationScore(replicas.Test(e.first, p),
                               replicas.Test(e.second, p), du, dv) +
          HdrfBalanceScore(loads[p], max_load, min_load, options_.lambda);
      if (score > best_score) {
        best_score = score;
        target = p;
      }
    }
    replicas.Set(e.first, target);
    replicas.Set(e.second, target);
    ++loads[target];
    max_load = std::max(max_load, loads[target]);
    sink.Assign(e, target);
  }));
  out.stream_passes += 1;
  return Status::OK();
}

}  // namespace tpsl

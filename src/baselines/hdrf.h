#ifndef TPSL_BASELINES_HDRF_H_
#define TPSL_BASELINES_HDRF_H_

#include <string>

#include "partition/partitioner.h"

namespace tpsl {

/// HDRF — High-Degree Replicated First (Petroni et al., CIKM'15), the
/// paper's primary stateful streaming baseline. Single pass; for every
/// edge, a degree-weighted replication score plus a balance score is
/// evaluated on all k partitions (the O(|E|·k) cost that 2PS-L
/// eliminates). Degrees are *partial* degrees observed so far in the
/// stream, exactly as in the original algorithm.
class HdrfPartitioner : public Partitioner {
 public:
  struct Options {
    /// Balance weight λ; the paper's appendix sets 1.1.
    double lambda = 1.1;
  };

  HdrfPartitioner() = default;
  explicit HdrfPartitioner(Options options) : options_(options) {}

  std::string name() const override { return "HDRF"; }

  Status Partition(EdgeStream& stream, const PartitionConfig& config,
                   AssignmentSink& sink, PartitionStats* stats) override;

 private:
  Options options_;
};

}  // namespace tpsl

#endif  // TPSL_BASELINES_HDRF_H_

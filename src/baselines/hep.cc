#include "baselines/hep.h"

#include <algorithm>
#include <vector>

#include "baselines/ne.h"
#include "graph/degrees.h"
#include "partition/score_tables.h"
#include "util/timer.h"

namespace tpsl {
namespace {

/// Forwards expansion assignments while maintaining the shared score
/// tables (replication matrix + loads) used by the streaming phase.
class StateTrackingSink : public AssignmentSink {
 public:
  StateTrackingSink(AssignmentSink* inner, ScoreTables* tables)
      : inner_(inner), tables_(tables) {}

  void Assign(const Edge& edge, PartitionId partition) override {
    tables_->Commit(edge, partition);
    inner_->Assign(edge, partition);
  }

 private:
  AssignmentSink* inner_;
  ScoreTables* tables_;
};

}  // namespace

Status HepPartitioner::Partition(EdgeStream& stream,
                                 const PartitionConfig& config,
                                 AssignmentSink& sink,
                                 PartitionStats* stats) {
  if (config.num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  if (options_.tau <= 0) {
    return Status::InvalidArgument("tau must be positive");
  }
  PartitionStats local;
  PartitionStats& out = stats != nullptr ? *stats : local;

  DegreeTable degrees;
  {
    PhaseTimer timer(&out, "degree");
    TPSL_ASSIGN_OR_RETURN(degrees, ComputeDegrees(stream));
  }
  out.stream_passes += 1;

  PhaseTimer timer(&out, "partitioning");
  const uint32_t k = config.num_partitions;
  const uint64_t capacity = config.PartitionCapacity(degrees.num_edges);

  uint64_t covered = 0;
  for (const uint32_t d : degrees.degrees) {
    covered += d > 0 ? 1 : 0;
  }
  const double mean_degree =
      covered > 0 ? static_cast<double>(degrees.TotalVolume()) / covered : 0;
  const double threshold = options_.tau * mean_degree;

  const auto is_low = [&](const Edge& e) {
    return degrees.degree(e.first) <= threshold &&
           degrees.degree(e.second) <= threshold;
  };

  ScoreTables tables(degrees.num_vertices(), k, capacity);
  StateTrackingSink tracking_sink(&sink, &tables);

  // --- In-memory phase: collect and expand the low-degree edges. ---
  std::vector<Edge> low_edges;
  TPSL_RETURN_IF_ERROR(ForEachEdge(stream, [&](const Edge& e) {
    if (is_low(e)) {
      low_edges.push_back(e);
    }
  }));
  out.stream_passes += 1;

  uint64_t expansion_bytes = 0;
  if (!low_edges.empty()) {
    VertexId max_id = 0;
    for (const Edge& e : low_edges) {
      max_id = std::max({max_id, e.first, e.second});
    }
    const expansion::IndexedAdjacency adjacency =
        expansion::IndexedAdjacency::Build(low_edges, max_id + 1,
                                           config.exec);
    expansion::Expander expander(&low_edges, &adjacency);
    expansion_bytes = low_edges.size() * sizeof(Edge) +
                      adjacency.HeapBytes() + expander.HeapBytes();

    const uint64_t share = (low_edges.size() + k - 1) / k;
    for (PartitionId p = 0; p < k; ++p) {
      expander.Expand(p, share, tracking_sink);
    }
    for (PartitionId p = 0; p < k && expander.UnclaimedEdges() > 0; ++p) {
      expander.Expand(p, capacity - tables.load(p), tracking_sink);
    }
  }

  // --- Streaming phase: HDRF over the high-degree edges, seeded with
  // the replication state of the in-memory phase. ---
  TPSL_RETURN_IF_ERROR(ForEachEdgePrefetched(
      stream, [&](const Edge& e) { tables.PrefetchEdge(e); },
      [&](const Edge& e) {
        if (is_low(e)) {
          return;  // Already assigned in the in-memory phase.
        }
        const PartitionId target =
            tables
                .PickHdrf(e, degrees.degree(e.first), degrees.degree(e.second),
                          options_.lambda, /*respect_capacity=*/true)
                .partition;
        tracking_sink.Assign(e, target);
      }));
  out.stream_passes += 1;

  out.state_bytes = tables.HeapBytes() +
                    degrees.degrees.size() * sizeof(uint32_t) +
                    expansion_bytes;
  return Status::OK();
}

}  // namespace tpsl

#include "baselines/dne.h"

#include <algorithm>
#include <atomic>
#include <queue>
#include <utility>
#include <vector>

#include "baselines/ne.h"
#include "exec/thread_pool.h"
#include "partition/score_tables.h"
#include "util/random.h"
#include "util/timer.h"

namespace tpsl {
namespace {

/// One partition's concurrent expansion over the shared owner array.
/// Claims up to `budget` edges for `partition`, starting from `seed`.
/// Heap priority is the static vertex degree (cheap and contention
/// free; the exact unclaimed degree is a sequential-NE luxury).
uint64_t ExpandConcurrent(const expansion::IndexedAdjacency& adjacency,
                          std::vector<std::atomic<PartitionId>>& owner,
                          PartitionId partition, VertexId seed,
                          uint64_t budget, uint64_t seed_salt) {
  using HeapEntry = std::pair<uint32_t, VertexId>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      boundary;
  boundary.push({adjacency.degree(seed), seed});
  SplitMix64 rng(seed_salt);

  uint64_t claimed = 0;
  while (claimed < budget) {
    if (boundary.empty()) {
      // Re-seed at a random vertex; skip a few collisions before
      // giving up so threads do not spin forever on a drained graph.
      bool found = false;
      for (int attempt = 0; attempt < 64 && !found; ++attempt) {
        const VertexId v = static_cast<VertexId>(
            rng.NextBounded(adjacency.num_vertices()));
        for (uint64_t i = adjacency.offsets[v]; i < adjacency.offsets[v + 1];
             ++i) {
          if (owner[adjacency.edge_ids[i]].load(std::memory_order_relaxed) ==
              kInvalidPartition) {
            boundary.push({adjacency.degree(v), v});
            found = true;
            break;
          }
        }
      }
      if (!found) {
        break;
      }
    }
    const auto [priority, v] = boundary.top();
    boundary.pop();
    for (uint64_t i = adjacency.offsets[v];
         i < adjacency.offsets[v + 1] && claimed < budget; ++i) {
      const uint64_t edge_id = adjacency.edge_ids[i];
      PartitionId expected = kInvalidPartition;
      if (owner[edge_id].compare_exchange_strong(expected, partition,
                                                 std::memory_order_relaxed)) {
        ++claimed;
        const VertexId other = adjacency.neighbors[i];
        if (other != v) {
          boundary.push({adjacency.degree(other), other});
        }
      }
    }
  }
  return claimed;
}

}  // namespace

Status DnePartitioner::Partition(EdgeStream& stream,
                                 const PartitionConfig& config,
                                 AssignmentSink& sink,
                                 PartitionStats* stats) {
  if (config.num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  PartitionStats local;
  PartitionStats& out = stats != nullptr ? *stats : local;

  std::vector<Edge> edges;
  VertexId max_id = 0;
  {
    PhaseTimer timer(&out, "load");
    edges.reserve(stream.NumEdgesHint());
    TPSL_RETURN_IF_ERROR(ForEachEdge(stream, [&](const Edge& e) {
      edges.push_back(e);
      max_id = std::max({max_id, e.first, e.second});
    }));
  }
  out.stream_passes += 1;

  PhaseTimer timer(&out, "partitioning");
  const uint32_t k = config.num_partitions;
  const VertexId num_vertices = edges.empty() ? 0 : max_id + 1;
  const expansion::IndexedAdjacency adjacency =
      expansion::IndexedAdjacency::Build(edges, num_vertices);

  std::vector<std::atomic<PartitionId>> owner(edges.size());
  for (auto& slot : owner) {
    slot.store(kInvalidPartition, std::memory_order_relaxed);
  }

  const uint64_t share = edges.empty() ? 0 : (edges.size() + k - 1) / k;
  // An explicit Options override wins; otherwise the run's ExecContext
  // decides. Either way the shared helper resolves 0 and caps at k (a
  // worker per partition is the most DNE can use).
  const uint32_t num_threads = exec::ResolveThreadCount(
      options_.num_threads != 0 ? options_.num_threads : config.exec.threads,
      /*cap=*/k);

  if (!edges.empty()) {
    // Deterministic spread of seeds over the id space; each engine task
    // expands the same stride-t partition set the dedicated threads
    // used to.
    exec::TaskGroup group(config.exec.pool_or_global());
    for (uint32_t t = 0; t < num_threads; ++t) {
      group.Submit([&, t]() {
        for (PartitionId p = t; p < k; p += num_threads) {
          const VertexId seed = static_cast<VertexId>(
              (static_cast<uint64_t>(p) * num_vertices) / k);
          ExpandConcurrent(adjacency, owner, p, seed, share,
                           config.seed + p);
        }
      });
    }
    group.Wait();
  }

  // Sequential epilogue: any edge left unclaimed (possible when
  // expansions exhausted their budgets around collisions) goes to the
  // least-loaded partition; then emit everything in edge order. Only
  // the load half of the kernel is needed (zero-vertex table).
  const uint64_t capacity = config.PartitionCapacity(edges.size());
  ScoreTables tables(0, k, capacity);
  for (const auto& slot : owner) {
    const PartitionId p = slot.load(std::memory_order_relaxed);
    if (p != kInvalidPartition) {
      tables.AddLoad(p);
    }
  }
  for (uint64_t id = 0; id < edges.size(); ++id) {
    PartitionId p = owner[id].load(std::memory_order_relaxed);
    if (p == kInvalidPartition || tables.load(p) > capacity) {
      if (p != kInvalidPartition) {
        tables.SubLoad(p);  // Over-claimed: move one edge out.
      }
      p = tables.LeastLoaded();
      tables.AddLoad(p);
      owner[id].store(p, std::memory_order_relaxed);
    }
    sink.Assign(edges[id], p);
  }

  out.state_bytes = edges.size() * sizeof(Edge) + adjacency.HeapBytes() +
                    owner.size() * sizeof(PartitionId) + tables.HeapBytes();
  return Status::OK();
}

}  // namespace tpsl

#ifndef TPSL_BASELINES_REGISTRY_H_
#define TPSL_BASELINES_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "partition/partitioner.h"

namespace tpsl {

/// Creates a partitioner by its evaluation name. Supported names:
/// "2PS-L", "2PS-HDRF", "2PS-L(par)", "2PS-HDRF(par)", "HDRF", "DBH",
/// "Grid", "Hash", "Greedy", "ADWISE", "NE", "SNE", "DNE", "HEP-1",
/// "HEP-10", "HEP-100", "METIS*". Returns NotFound for anything else.
StatusOr<std::unique_ptr<Partitioner>> MakePartitioner(
    const std::string& name);

/// The full baseline roster of the paper's Fig. 4, in plot order.
std::vector<std::string> Fig4PartitionerNames();

/// The streaming-only roster (out-of-core partitioners).
std::vector<std::string> StreamingPartitionerNames();

}  // namespace tpsl

#endif  // TPSL_BASELINES_REGISTRY_H_

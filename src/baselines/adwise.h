#ifndef TPSL_BASELINES_ADWISE_H_
#define TPSL_BASELINES_ADWISE_H_

#include <string>

#include "partition/partitioner.h"

namespace tpsl {

/// ADWISE (Mayer et al., ICDCS'18): window-based streaming edge
/// partitioning. A buffer of edges is kept; instead of assigning edges
/// in stream order, the partitioner repeatedly assigns the
/// highest-confidence edge in the window, allowing it to "look into the
/// future" of the stream and detect local clusters within the buffer.
///
/// Re-implementation notes (see DESIGN.md §4): the original adapts its
/// window size to a run-time bound; we expose the window size directly
/// and assign the top half of the window per scoring round, which
/// keeps the characteristic O(|E|·k·c) cost (c = amortized window
/// overhead) without the original's time-control machinery. As in the
/// paper's evaluation, ADWISE's quality advantage vanishes when the
/// window is small relative to the graph.
class AdwisePartitioner : public Partitioner {
 public:
  struct Options {
    /// Number of buffered edges.
    uint32_t window_size = 512;
    /// Balance weight of the scoring function (HDRF-style).
    double lambda = 1.1;
  };

  AdwisePartitioner() = default;
  explicit AdwisePartitioner(Options options) : options_(options) {}

  std::string name() const override { return "ADWISE"; }

  Status Partition(EdgeStream& stream, const PartitionConfig& config,
                   AssignmentSink& sink, PartitionStats* stats) override;

 private:
  Options options_;
};

}  // namespace tpsl

#endif  // TPSL_BASELINES_ADWISE_H_

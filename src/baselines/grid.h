#ifndef TPSL_BASELINES_GRID_H_
#define TPSL_BASELINES_GRID_H_

#include <string>

#include "partition/partitioner.h"

namespace tpsl {

/// Grid partitioning (GraphBuilder, Jain et al., GRADES'13): partitions
/// are arranged in an r × c grid; each vertex hashes to a (row, column)
/// shard, and an edge may only be placed in a cell shared by the
/// constraint sets of its endpoints. We consider the two crossing cells
/// (row_u, col_v) and (row_v, col_u) and take the less loaded one.
/// Stateless except for O(k) load counters.
class GridPartitioner : public Partitioner {
 public:
  std::string name() const override { return "Grid"; }
  bool enforces_balance_cap() const override { return false; }

  Status Partition(EdgeStream& stream, const PartitionConfig& config,
                   AssignmentSink& sink, PartitionStats* stats) override;
};

}  // namespace tpsl

#endif  // TPSL_BASELINES_GRID_H_

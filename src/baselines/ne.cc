#include "baselines/ne.h"

#include <algorithm>
#include <numeric>
#include <queue>
#include <utility>

#include "util/timer.h"

namespace tpsl {
namespace expansion {

namespace {

/// Edges below which the chunked build costs more than it saves.
constexpr size_t kParallelBuildMinEdges = 1 << 15;

}  // namespace

IndexedAdjacency IndexedAdjacency::Build(const std::vector<Edge>& edges,
                                         VertexId num_vertices,
                                         const exec::ExecContext& exec) {
  IndexedAdjacency adj;
  adj.offsets.assign(static_cast<size_t>(num_vertices) + 1, 0);

  const uint32_t threads = exec.ResolveThreads();
  if (threads <= 1 || edges.size() < kParallelBuildMinEdges) {
    for (const Edge& e : edges) {
      ++adj.offsets[e.first + 1];
      ++adj.offsets[e.second + 1];
    }
    for (VertexId v = 0; v < num_vertices; ++v) {
      adj.offsets[v + 1] += adj.offsets[v];
    }
    adj.neighbors.resize(adj.offsets[num_vertices]);
    adj.edge_ids.resize(adj.offsets[num_vertices]);
    std::vector<uint64_t> cursor(adj.offsets.begin(), adj.offsets.end() - 1);
    for (uint64_t id = 0; id < edges.size(); ++id) {
      const Edge& e = edges[id];
      adj.neighbors[cursor[e.first]] = e.second;
      adj.edge_ids[cursor[e.first]++] = id;
      adj.neighbors[cursor[e.second]] = e.first;
      adj.edge_ids[cursor[e.second]++] = id;
    }
    return adj;
  }

  // Stable parallel counting sort over contiguous edge-id chunks.
  // Chunk w counts its own per-vertex degrees; the sequential reduce
  // turns those into global offsets plus a per-chunk starting cursor
  // for every vertex, after which each chunk fills disjoint slots —
  // entry (v, id) lands at exactly the index the sequential loop gives
  // it, so the arrays are byte-identical at any thread count.
  const uint32_t chunks =
      static_cast<uint32_t>(std::min<uint64_t>(threads, edges.size()));
  const size_t per_chunk = (edges.size() + chunks - 1) / chunks;
  std::vector<std::vector<uint64_t>> chunk_cursor(
      chunks, std::vector<uint64_t>(num_vertices, 0));

  exec::ThreadPool& pool = exec.pool_or_global();
  {
    exec::TaskGroup group(pool);
    for (uint32_t w = 0; w < chunks; ++w) {
      group.Submit([&, w]() {
        std::vector<uint64_t>& counts = chunk_cursor[w];
        const size_t lo = w * per_chunk;
        const size_t hi = std::min(edges.size(), lo + per_chunk);
        for (size_t id = lo; id < hi; ++id) {
          ++counts[edges[id].first];
          ++counts[edges[id].second];
        }
      });
    }
    group.Wait();
  }

  // offsets[v+1] = Σ_w counts[w][v]; chunk w's cursor for v starts at
  // offsets[v] + counts of all earlier chunks (computed in place).
  for (VertexId v = 0; v < num_vertices; ++v) {
    uint64_t running = adj.offsets[v];
    for (uint32_t w = 0; w < chunks; ++w) {
      const uint64_t count = chunk_cursor[w][v];
      chunk_cursor[w][v] = running;
      running += count;
    }
    adj.offsets[v + 1] = running;
  }
  adj.neighbors.resize(adj.offsets[num_vertices]);
  adj.edge_ids.resize(adj.offsets[num_vertices]);

  {
    exec::TaskGroup group(pool);
    for (uint32_t w = 0; w < chunks; ++w) {
      group.Submit([&, w]() {
        std::vector<uint64_t>& cursor = chunk_cursor[w];
        const size_t lo = w * per_chunk;
        const size_t hi = std::min(edges.size(), lo + per_chunk);
        for (size_t id = lo; id < hi; ++id) {
          const Edge& e = edges[id];
          adj.neighbors[cursor[e.first]] = e.second;
          adj.edge_ids[cursor[e.first]++] = id;
          adj.neighbors[cursor[e.second]] = e.first;
          adj.edge_ids[cursor[e.second]++] = id;
        }
      });
    }
    group.Wait();
  }
  return adj;
}

Expander::Expander(const std::vector<Edge>* edges,
                   const IndexedAdjacency* adjacency)
    : edges_(edges),
      adjacency_(adjacency),
      num_edges_(edges->size()),
      edge_claimed_(edges->size()),
      unclaimed_degree_(adjacency->num_vertices(), 0),
      seed_order_(adjacency->num_vertices()) {
  for (VertexId v = 0; v < adjacency->num_vertices(); ++v) {
    unclaimed_degree_[v] = adjacency->degree(v);
  }
  std::iota(seed_order_.begin(), seed_order_.end(), 0);
  std::stable_sort(seed_order_.begin(), seed_order_.end(),
                   [this](VertexId a, VertexId b) {
                     return adjacency_->degree(a) < adjacency_->degree(b);
                   });
}

uint32_t Expander::UnclaimedDegree(VertexId v) const {
  return unclaimed_degree_[v];
}

uint64_t Expander::ClaimVertexEdges(VertexId v, PartitionId partition,
                                    uint64_t budget, AssignmentSink& sink,
                                    std::vector<VertexId>* discovered) {
  uint64_t claimed = 0;
  const uint64_t begin = adjacency_->offsets[v];
  const uint64_t end = adjacency_->offsets[v + 1];
  for (uint64_t i = begin; i < end && claimed < budget; ++i) {
    const uint64_t edge_id = adjacency_->edge_ids[i];
    if (!edge_claimed_.TestAndSet(edge_id)) {
      continue;  // Already claimed by an earlier expansion.
    }
    const Edge& e = (*edges_)[edge_id];
    --unclaimed_degree_[e.first];
    --unclaimed_degree_[e.second];
    sink.Assign(e, partition);
    ++claimed;
    const VertexId other = adjacency_->neighbors[i];
    if (other != v && unclaimed_degree_[other] > 0) {
      discovered->push_back(other);
    }
  }
  claimed_total_ += claimed;
  return claimed;
}

uint64_t Expander::Expand(PartitionId partition, uint64_t budget,
                          AssignmentSink& sink) {
  // Min-heap of (unclaimed degree at push time, vertex); entries are
  // validated lazily against the current unclaimed degree.
  using HeapEntry = std::pair<uint32_t, VertexId>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      boundary;
  std::vector<VertexId> discovered;

  uint64_t claimed = 0;
  while (claimed < budget && claimed_total_ < num_edges_) {
    VertexId next = kInvalidVertex;
    while (!boundary.empty()) {
      const auto [score, v] = boundary.top();
      if (score != unclaimed_degree_[v]) {
        boundary.pop();  // Stale entry.
        if (unclaimed_degree_[v] > 0) {
          boundary.push({unclaimed_degree_[v], v});
        }
        continue;
      }
      if (score == 0) {
        boundary.pop();
        continue;
      }
      next = v;
      boundary.pop();
      break;
    }
    if (next == kInvalidVertex) {
      // Boundary exhausted: restart from the lowest-degree vertex that
      // still has unclaimed edges.
      while (seed_cursor_ < seed_order_.size() &&
             unclaimed_degree_[seed_order_[seed_cursor_]] == 0) {
        ++seed_cursor_;
      }
      if (seed_cursor_ >= seed_order_.size()) {
        break;  // All edges claimed.
      }
      next = seed_order_[seed_cursor_];
    }

    discovered.clear();
    claimed += ClaimVertexEdges(next, partition, budget - claimed, sink,
                                &discovered);
    for (const VertexId v : discovered) {
      boundary.push({unclaimed_degree_[v], v});
    }
  }
  return claimed;
}

uint64_t Expander::HeapBytes() const {
  return edge_claimed_.HeapBytes() +
         unclaimed_degree_.size() * sizeof(uint32_t) +
         seed_order_.size() * sizeof(VertexId);
}

}  // namespace expansion

Status NePartitioner::Partition(EdgeStream& stream,
                                const PartitionConfig& config,
                                AssignmentSink& sink,
                                PartitionStats* stats) {
  if (config.num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  PartitionStats local;
  PartitionStats& out = stats != nullptr ? *stats : local;

  // In-memory by definition: materialize the edge list.
  std::vector<Edge> edges;
  VertexId max_id = 0;
  {
    PhaseTimer timer(&out, "load");
    edges.reserve(stream.NumEdgesHint());
    TPSL_RETURN_IF_ERROR(ForEachEdge(stream, [&](const Edge& e) {
      edges.push_back(e);
      max_id = std::max({max_id, e.first, e.second});
    }));
  }
  out.stream_passes += 1;

  PhaseTimer timer(&out, "partitioning");
  const VertexId num_vertices = edges.empty() ? 0 : max_id + 1;
  const expansion::IndexedAdjacency adjacency =
      expansion::IndexedAdjacency::Build(edges, num_vertices, config.exec);
  expansion::Expander expander(&edges, &adjacency);

  out.state_bytes = edges.size() * sizeof(Edge) + adjacency.HeapBytes() +
                    expander.HeapBytes();

  const uint64_t capacity = config.PartitionCapacity(edges.size());
  // Fill partitions round by round with a 1/k share each; since
  // capacity >= ceil(|E|/k), the shares cover all edges.
  const uint64_t share =
      (edges.size() + config.num_partitions - 1) / config.num_partitions;
  std::vector<uint64_t> claimed(config.num_partitions, 0);
  for (PartitionId p = 0; p < config.num_partitions; ++p) {
    claimed[p] = expander.Expand(p, share, sink);
  }
  // Defensive sweep into remaining capacity (unreachable with the
  // budgets above, but keeps the contract airtight).
  for (PartitionId p = 0;
       p < config.num_partitions && expander.UnclaimedEdges() > 0; ++p) {
    claimed[p] += expander.Expand(p, capacity - claimed[p], sink);
  }
  return Status::OK();
}

}  // namespace tpsl

#ifndef TPSL_BASELINES_NE_H_
#define TPSL_BASELINES_NE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "exec/exec_context.h"
#include "graph/types.h"
#include "partition/dense_bitset.h"
#include "partition/partitioner.h"

namespace tpsl {

namespace expansion {

/// Edge-indexed adjacency: like CSR, but every adjacency entry carries
/// the id of the underlying edge so that expansion can claim edges
/// exactly once. Each undirected edge appears in both endpoint lists.
struct IndexedAdjacency {
  std::vector<uint64_t> offsets;    // |V| + 1
  std::vector<VertexId> neighbors;  // 2|E|
  std::vector<uint64_t> edge_ids;   // 2|E|, parallel to neighbors

  /// Builds the adjacency. With a multi-thread ExecContext the count
  /// and fill passes fan out over contiguous edge-id chunks on the
  /// shared pool (a stable parallel counting sort: per-chunk counts
  /// are prefix-summed into per-chunk write cursors, so every entry
  /// lands exactly where the sequential build puts it). The result is
  /// byte-identical at any thread count — the profile-justified
  /// parallel stage of NE/SNE/HEP, whose expansion cores stay
  /// sequential (greedy, state-carrying).
  /// The default context is sequential; partitioners forward their
  /// PartitionConfig::exec to opt in.
  static IndexedAdjacency Build(const std::vector<Edge>& edges,
                                VertexId num_vertices,
                                const exec::ExecContext& exec =
                                    exec::ExecContext{/*threads=*/1});

  VertexId num_vertices() const {
    return static_cast<VertexId>(offsets.size() - 1);
  }
  uint32_t degree(VertexId v) const {
    return static_cast<uint32_t>(offsets[v + 1] - offsets[v]);
  }
  uint64_t HeapBytes() const {
    return offsets.size() * sizeof(uint64_t) +
           neighbors.size() * sizeof(VertexId) +
           edge_ids.size() * sizeof(uint64_t);
  }
};

/// Sequential neighborhood-expansion engine over an IndexedAdjacency.
/// Grows one partition at a time from low-degree seeds, repeatedly
/// absorbing the boundary vertex with the fewest unclaimed incident
/// edges (the min-external-degree heuristic of NE, Zhang et al.
/// KDD'17; see DESIGN.md §4 for simplifications).
class Expander {
 public:
  Expander(const std::vector<Edge>* edges, const IndexedAdjacency* adjacency);

  /// Claims up to `budget` so-far-unclaimed edges for `partition`,
  /// invoking `sink` for each. Returns the number claimed. Subsequent
  /// calls continue from the global claimed state.
  uint64_t Expand(PartitionId partition, uint64_t budget,
                  AssignmentSink& sink);

  /// Edges not claimed by any Expand() call so far.
  uint64_t UnclaimedEdges() const { return num_edges_ - claimed_total_; }

  uint64_t HeapBytes() const;

 private:
  /// Number of unclaimed edges incident to v.
  uint32_t UnclaimedDegree(VertexId v) const;

  /// Claims all unclaimed edges of `v`, stopping at the budget.
  uint64_t ClaimVertexEdges(VertexId v, PartitionId partition,
                            uint64_t budget, AssignmentSink& sink,
                            std::vector<VertexId>* discovered);

  const std::vector<Edge>* edges_;
  const IndexedAdjacency* adjacency_;
  uint64_t num_edges_;
  uint64_t claimed_total_ = 0;
  DenseBitset edge_claimed_;
  std::vector<uint32_t> unclaimed_degree_;
  // Vertices ordered by ascending (static) degree; seed cursor skips
  // exhausted ones.
  std::vector<VertexId> seed_order_;
  size_t seed_cursor_ = 0;
};

}  // namespace expansion

/// NE — Neighborhood Expansion (Zhang et al., KDD'17): the in-memory
/// quality leader of the paper's evaluation. Materializes the full
/// graph (O(|E|) memory, the cost the paper contrasts with 2PS-L's
/// 2.7 GB vs 28 GB example) and grows each partition greedily from
/// low-degree seeds.
class NePartitioner : public Partitioner {
 public:
  std::string name() const override { return "NE"; }

  Status Partition(EdgeStream& stream, const PartitionConfig& config,
                   AssignmentSink& sink, PartitionStats* stats) override;
};

}  // namespace tpsl

#endif  // TPSL_BASELINES_NE_H_

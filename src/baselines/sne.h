#ifndef TPSL_BASELINES_SNE_H_
#define TPSL_BASELINES_SNE_H_

#include <string>

#include "partition/partitioner.h"

namespace tpsl {

/// SNE — the streaming variant of NE used as a baseline in the paper.
/// The edge stream is consumed in bounded chunks (the paper configures
/// a cache of 2·|V| edges); neighborhood expansion runs inside each
/// chunk, distributing its edges over the globally least-loaded
/// partitions. Quality sits between HDRF and NE; run-time and memory
/// are significantly higher than pure streaming (matching the paper's
/// SNE observations, including its failures on big graphs at small
/// cache sizes).
class SnePartitioner : public Partitioner {
 public:
  struct Options {
    /// Chunk capacity as a multiple of |V| (paper setting: 2.0).
    double cache_factor = 2.0;
  };

  SnePartitioner() = default;
  explicit SnePartitioner(Options options) : options_(options) {}

  std::string name() const override { return "SNE"; }

  Status Partition(EdgeStream& stream, const PartitionConfig& config,
                   AssignmentSink& sink, PartitionStats* stats) override;

 private:
  Options options_;
};

}  // namespace tpsl

#endif  // TPSL_BASELINES_SNE_H_

#include "baselines/multilevel.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <vector>

#include "util/random.h"
#include "util/timer.h"

namespace tpsl {
namespace {

/// Fisher-Yates shuffle with the library's deterministic PRNG.
void ShuffleOrder(std::vector<VertexId>& order, uint64_t seed) {
  SplitMix64 rng(seed);
  for (size_t i = order.size(); i > 1; --i) {
    const size_t j = rng.NextBounded(i);
    std::swap(order[i - 1], order[j]);
  }
}

/// Weighted graph of one multilevel hierarchy level.
struct LevelGraph {
  std::vector<uint64_t> offsets;     // |V| + 1
  std::vector<VertexId> neighbors;   // directed copies of each edge
  std::vector<uint32_t> edge_weight;  // parallel to neighbors
  std::vector<uint32_t> vertex_weight;

  VertexId num_vertices() const {
    return static_cast<VertexId>(vertex_weight.size());
  }
  uint64_t HeapBytes() const {
    return offsets.size() * sizeof(uint64_t) +
           neighbors.size() * (sizeof(VertexId) + sizeof(uint32_t)) +
           vertex_weight.size() * sizeof(uint32_t);
  }
};

LevelGraph BuildLevelGraph(const std::vector<Edge>& edges,
                           VertexId num_vertices) {
  LevelGraph g;
  g.vertex_weight.assign(num_vertices, 1);
  g.offsets.assign(static_cast<size_t>(num_vertices) + 1, 0);
  for (const Edge& e : edges) {
    if (e.first == e.second) {
      continue;  // Self-loops are irrelevant for cuts.
    }
    ++g.offsets[e.first + 1];
    ++g.offsets[e.second + 1];
  }
  for (VertexId v = 0; v < num_vertices; ++v) {
    g.offsets[v + 1] += g.offsets[v];
  }
  g.neighbors.resize(g.offsets[num_vertices]);
  g.edge_weight.assign(g.offsets[num_vertices], 1);
  std::vector<uint64_t> cursor(g.offsets.begin(), g.offsets.end() - 1);
  for (const Edge& e : edges) {
    if (e.first == e.second) {
      continue;
    }
    g.neighbors[cursor[e.first]++] = e.second;
    g.neighbors[cursor[e.second]++] = e.first;
  }
  return g;
}

/// Heavy-edge matching; returns the coarse id of each fine vertex and
/// the number of coarse vertices.
std::vector<VertexId> HeavyEdgeMatching(const LevelGraph& g, uint64_t seed,
                                        VertexId* num_coarse) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> match(n, kInvalidVertex);
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  ShuffleOrder(order, seed);

  for (const VertexId v : order) {
    if (match[v] != kInvalidVertex) {
      continue;
    }
    VertexId best = kInvalidVertex;
    uint32_t best_weight = 0;
    for (uint64_t i = g.offsets[v]; i < g.offsets[v + 1]; ++i) {
      const VertexId u = g.neighbors[i];
      if (u == v || match[u] != kInvalidVertex) {
        continue;
      }
      if (g.edge_weight[i] > best_weight) {
        best_weight = g.edge_weight[i];
        best = u;
      }
    }
    if (best != kInvalidVertex) {
      match[v] = best;
      match[best] = v;
    } else {
      match[v] = v;
    }
  }

  std::vector<VertexId> coarse_id(n, kInvalidVertex);
  VertexId next = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (coarse_id[v] != kInvalidVertex) {
      continue;
    }
    coarse_id[v] = next;
    coarse_id[match[v]] = next;
    ++next;
  }
  *num_coarse = next;
  return coarse_id;
}

LevelGraph Contract(const LevelGraph& fine,
                    const std::vector<VertexId>& coarse_id,
                    VertexId num_coarse) {
  LevelGraph coarse;
  coarse.vertex_weight.assign(num_coarse, 0);
  for (VertexId v = 0; v < fine.num_vertices(); ++v) {
    coarse.vertex_weight[coarse_id[v]] += fine.vertex_weight[v];
  }

  // Aggregate parallel coarse edges with a per-vertex hash map.
  std::vector<std::unordered_map<VertexId, uint32_t>> adj(num_coarse);
  for (VertexId v = 0; v < fine.num_vertices(); ++v) {
    const VertexId cv = coarse_id[v];
    for (uint64_t i = fine.offsets[v]; i < fine.offsets[v + 1]; ++i) {
      const VertexId cu = coarse_id[fine.neighbors[i]];
      if (cu == cv) {
        continue;  // Internal edge disappears.
      }
      adj[cv][cu] += fine.edge_weight[i];
    }
  }

  coarse.offsets.assign(static_cast<size_t>(num_coarse) + 1, 0);
  for (VertexId v = 0; v < num_coarse; ++v) {
    coarse.offsets[v + 1] = coarse.offsets[v] + adj[v].size();
  }
  coarse.neighbors.resize(coarse.offsets[num_coarse]);
  coarse.edge_weight.resize(coarse.offsets[num_coarse]);
  for (VertexId v = 0; v < num_coarse; ++v) {
    uint64_t pos = coarse.offsets[v];
    for (const auto& [u, w] : adj[v]) {
      coarse.neighbors[pos] = u;
      coarse.edge_weight[pos] = w;
      ++pos;
    }
  }
  return coarse;
}

/// Greedy initial partition of the coarsest graph: vertices in
/// decreasing weight order to the least-loaded partition (LPT).
std::vector<PartitionId> InitialPartition(const LevelGraph& g, uint32_t k) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&g](VertexId a, VertexId b) {
    return g.vertex_weight[a] > g.vertex_weight[b];
  });
  std::vector<PartitionId> part(n, 0);
  std::vector<uint64_t> weight(k, 0);
  for (const VertexId v : order) {
    PartitionId best = 0;
    for (PartitionId p = 1; p < k; ++p) {
      if (weight[p] < weight[best]) {
        best = p;
      }
    }
    part[v] = best;
    weight[best] += g.vertex_weight[v];
  }
  return part;
}

/// Boundary refinement: move vertices to the neighboring partition with
/// the highest positive gain, subject to vertex-weight balance.
void Refine(const LevelGraph& g, uint32_t k, double balance,
            uint32_t passes, std::vector<PartitionId>* part) {
  const VertexId n = g.num_vertices();
  std::vector<uint64_t> weight(k, 0);
  uint64_t total_weight = 0;
  for (VertexId v = 0; v < n; ++v) {
    weight[(*part)[v]] += g.vertex_weight[v];
    total_weight += g.vertex_weight[v];
  }
  const uint64_t max_weight = static_cast<uint64_t>(
      balance * static_cast<double>(total_weight) / k) + 1;

  std::vector<int64_t> link(k, 0);  // edge weight from v to each part
  std::vector<PartitionId> touched;
  for (uint32_t pass = 0; pass < passes; ++pass) {
    uint64_t moves = 0;
    for (VertexId v = 0; v < n; ++v) {
      const PartitionId home = (*part)[v];
      touched.clear();
      for (uint64_t i = g.offsets[v]; i < g.offsets[v + 1]; ++i) {
        const PartitionId p = (*part)[g.neighbors[i]];
        if (link[p] == 0) {
          touched.push_back(p);
        }
        link[p] += g.edge_weight[i];
      }
      PartitionId best = home;
      int64_t best_gain = 0;
      for (const PartitionId p : touched) {
        if (p == home) {
          continue;
        }
        if (weight[p] + g.vertex_weight[v] > max_weight) {
          continue;
        }
        const int64_t gain = link[p] - link[home];
        if (gain > best_gain) {
          best_gain = gain;
          best = p;
        }
      }
      if (best != home) {
        weight[home] -= g.vertex_weight[v];
        weight[best] += g.vertex_weight[v];
        (*part)[v] = best;
        ++moves;
      }
      for (const PartitionId p : touched) {
        link[p] = 0;
      }
    }
    if (moves == 0) {
      break;
    }
  }
}

}  // namespace

Status MultilevelPartitioner::Partition(EdgeStream& stream,
                                        const PartitionConfig& config,
                                        AssignmentSink& sink,
                                        PartitionStats* stats) {
  if (config.num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  PartitionStats local;
  PartitionStats& out = stats != nullptr ? *stats : local;

  std::vector<Edge> edges;
  VertexId max_id = 0;
  {
    PhaseTimer timer(&out, "load");
    edges.reserve(stream.NumEdgesHint());
    TPSL_RETURN_IF_ERROR(ForEachEdge(stream, [&](const Edge& e) {
      edges.push_back(e);
      max_id = std::max({max_id, e.first, e.second});
    }));
  }
  out.stream_passes += 1;

  PhaseTimer timer(&out, "partitioning");
  const uint32_t k = config.num_partitions;
  const VertexId num_vertices = edges.empty() ? 0 : max_id + 1;

  std::vector<PartitionId> vertex_part(num_vertices, 0);
  uint64_t hierarchy_bytes = 0;
  if (num_vertices > 0) {
    // --- Coarsening. ---
    std::vector<LevelGraph> levels;
    std::vector<std::vector<VertexId>> mappings;
    levels.push_back(BuildLevelGraph(edges, num_vertices));
    const VertexId coarsest =
        std::max<VertexId>(64, options_.coarsest_factor * k);
    while (levels.back().num_vertices() > coarsest) {
      VertexId num_coarse = 0;
      std::vector<VertexId> mapping = HeavyEdgeMatching(
          levels.back(), config.seed + levels.size(), &num_coarse);
      // Stop when matching stalls (< 5% reduction).
      if (num_coarse >
          levels.back().num_vertices() -
              levels.back().num_vertices() / 20) {
        break;
      }
      levels.push_back(Contract(levels.back(), mapping, num_coarse));
      mappings.push_back(std::move(mapping));
    }
    for (const LevelGraph& level : levels) {
      hierarchy_bytes += level.HeapBytes();
    }

    // --- Initial partition + uncoarsening with refinement. ---
    std::vector<PartitionId> part = InitialPartition(levels.back(), k);
    Refine(levels.back(), k, options_.vertex_balance, options_.refine_passes,
           &part);
    for (size_t level = mappings.size(); level-- > 0;) {
      std::vector<PartitionId> fine_part(levels[level].num_vertices());
      for (VertexId v = 0; v < fine_part.size(); ++v) {
        fine_part[v] = part[mappings[level][v]];
      }
      part = std::move(fine_part);
      Refine(levels[level], k, options_.vertex_balance,
             options_.refine_passes, &part);
    }
    vertex_part = std::move(part);
  }

  // --- Derive the edge partition from the vertex partition. ---
  const uint64_t capacity = config.PartitionCapacity(edges.size());
  std::vector<uint64_t> loads(k, 0);
  for (const Edge& e : edges) {
    PartitionId target = vertex_part[e.first];
    if (loads[target] >= capacity) {
      target = vertex_part[e.second];
    }
    if (loads[target] >= capacity) {
      PartitionId best = 0;
      for (PartitionId p = 1; p < k; ++p) {
        if (loads[p] < loads[best]) {
          best = p;
        }
      }
      target = best;
    }
    ++loads[target];
    sink.Assign(e, target);
  }

  out.state_bytes = edges.size() * sizeof(Edge) + hierarchy_bytes +
                    vertex_part.size() * sizeof(PartitionId) +
                    loads.size() * sizeof(uint64_t);
  return Status::OK();
}

}  // namespace tpsl

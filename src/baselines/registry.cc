#include "baselines/registry.h"

#include "baselines/adwise.h"
#include "baselines/dbh.h"
#include "baselines/dne.h"
#include "baselines/greedy.h"
#include "baselines/grid.h"
#include "baselines/hash.h"
#include "baselines/hdrf.h"
#include "baselines/hep.h"
#include "baselines/multilevel.h"
#include "baselines/ne.h"
#include "baselines/sne.h"
#include "core/parallel_two_phase.h"
#include "core/two_phase_partitioner.h"

namespace tpsl {

StatusOr<std::unique_ptr<Partitioner>> MakePartitioner(
    const std::string& name) {
  if (name == "2PS-L") {
    return std::unique_ptr<Partitioner>(new TwoPhasePartitioner());
  }
  if (name == "2PS-HDRF") {
    TwoPhasePartitioner::Options options;
    options.scoring = TwoPhasePartitioner::ScoringMode::kHdrf;
    return std::unique_ptr<Partitioner>(new TwoPhasePartitioner(options));
  }
  if (name == "2PS-L(par)") {
    return std::unique_ptr<Partitioner>(new ParallelTwoPhasePartitioner());
  }
  if (name == "2PS-HDRF(par)") {
    ParallelTwoPhasePartitioner::Options options;
    options.scoring = ParallelTwoPhasePartitioner::ScoringMode::kHdrf;
    return std::unique_ptr<Partitioner>(
        new ParallelTwoPhasePartitioner(options));
  }
  if (name == "HDRF") {
    return std::unique_ptr<Partitioner>(new HdrfPartitioner());
  }
  if (name == "DBH") {
    return std::unique_ptr<Partitioner>(new DbhPartitioner());
  }
  if (name == "Grid") {
    return std::unique_ptr<Partitioner>(new GridPartitioner());
  }
  if (name == "Hash") {
    return std::unique_ptr<Partitioner>(new HashPartitioner());
  }
  if (name == "Greedy") {
    return std::unique_ptr<Partitioner>(new GreedyPartitioner());
  }
  if (name == "ADWISE") {
    return std::unique_ptr<Partitioner>(new AdwisePartitioner());
  }
  if (name == "NE") {
    return std::unique_ptr<Partitioner>(new NePartitioner());
  }
  if (name == "SNE") {
    return std::unique_ptr<Partitioner>(new SnePartitioner());
  }
  if (name == "DNE") {
    return std::unique_ptr<Partitioner>(new DnePartitioner());
  }
  if (name == "HEP-1" || name == "HEP-10" || name == "HEP-100") {
    HepPartitioner::Options options;
    options.tau = std::stod(name.substr(4));
    return std::unique_ptr<Partitioner>(new HepPartitioner(options));
  }
  if (name == "METIS*") {
    return std::unique_ptr<Partitioner>(new MultilevelPartitioner());
  }
  return Status::NotFound("unknown partitioner: " + name);
}

std::vector<std::string> Fig4PartitionerNames() {
  return {"2PS-L", "ADWISE", "HDRF",   "DBH", "SNE", "HEP-1",
          "HEP-10", "HEP-100", "NE",   "DNE", "METIS*"};
}

std::vector<std::string> StreamingPartitionerNames() {
  return {"2PS-L", "2PS-HDRF", "HDRF", "DBH", "Grid", "Greedy", "ADWISE",
          "SNE"};
}

}  // namespace tpsl

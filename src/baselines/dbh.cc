#include "baselines/dbh.h"

#include "graph/degrees.h"
#include "partition/score_tables.h"
#include "util/random.h"
#include "util/timer.h"

namespace tpsl {

Status DbhPartitioner::Partition(EdgeStream& stream,
                                 const PartitionConfig& config,
                                 AssignmentSink& sink,
                                 PartitionStats* stats) {
  if (config.num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  PartitionStats local;
  PartitionStats& out = stats != nullptr ? *stats : local;

  DegreeTable degrees;
  {
    PhaseTimer timer(&out, "degree");
    TPSL_ASSIGN_OR_RETURN(degrees, ComputeDegrees(stream));
  }
  out.stream_passes += 1;
  out.state_bytes = degrees.degrees.size() * sizeof(uint32_t);

  PhaseTimer timer(&out, "partitioning");
  const uint32_t k = config.num_partitions;
  const uint64_t seed = config.seed;
  // DBH carries no partition state — its only random access is the
  // degree table, so the kernel driver prefetches degree entries.
  const uint32_t* degree_data = degrees.degrees.data();
  TPSL_RETURN_IF_ERROR(ForEachEdgePrefetched(
      stream,
      [&](const Edge& e) {
        __builtin_prefetch(degree_data + e.first, /*rw=*/0, /*locality=*/3);
        __builtin_prefetch(degree_data + e.second, /*rw=*/0, /*locality=*/3);
      },
      [&](const Edge& e) {
        // Hash the endpoint with the smaller degree (ties: smaller id).
        const VertexId pivot =
            degrees.degree(e.first) <= degrees.degree(e.second) ? e.first
                                                                : e.second;
        sink.Assign(
            e, static_cast<PartitionId>(Mix64(HashCombine(seed, pivot)) % k));
      }));
  out.stream_passes += 1;
  return Status::OK();
}

}  // namespace tpsl

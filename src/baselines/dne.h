#ifndef TPSL_BASELINES_DNE_H_
#define TPSL_BASELINES_DNE_H_

#include <string>

#include "partition/partitioner.h"

namespace tpsl {

/// DNE — Distributed Neighborhood Expansion (Hanai et al., VLDB'19),
/// reproduced as a shared-memory parallel partitioner (see DESIGN.md
/// §4): all k partitions expand concurrently, claiming edges through
/// atomic compare-and-swap on a per-edge owner array. Quality is
/// slightly below sequential NE (concurrent expansions collide at
/// cluster borders), run-time is much lower, memory is O(|E|) — the
/// qualitative position DNE occupies in the paper's Fig. 4.
class DnePartitioner : public Partitioner {
 public:
  struct Options {
    /// Explicit worker override; 0 = follow PartitionConfig::exec.
    /// Either way the count resolves through exec::ResolveThreadCount
    /// (0 = one per hardware thread) capped at k, and the workers run
    /// on the run's exec pool.
    uint32_t num_threads = 0;
  };

  DnePartitioner() = default;
  explicit DnePartitioner(Options options) : options_(options) {}

  std::string name() const override { return "DNE"; }

  Status Partition(EdgeStream& stream, const PartitionConfig& config,
                   AssignmentSink& sink, PartitionStats* stats) override;

 private:
  Options options_;
};

}  // namespace tpsl

#endif  // TPSL_BASELINES_DNE_H_

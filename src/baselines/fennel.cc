#include "baselines/fennel.h"

#include <algorithm>
#include <cmath>

namespace tpsl {

StatusOr<VertexPartitioning> FennelPartition(const CsrGraph& graph,
                                             const FennelConfig& config) {
  if (config.num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  if (config.gamma <= 1.0) {
    return Status::InvalidArgument("gamma must exceed 1");
  }
  const uint32_t k = config.num_partitions;
  const VertexId n = graph.num_vertices();

  VertexPartitioning result;
  result.vertex_partition.assign(n, kInvalidPartition);
  result.partition_sizes.assign(k, 0);
  result.num_edges = graph.num_edges();

  const double alpha =
      n > 0 ? std::sqrt(static_cast<double>(k)) *
                  static_cast<double>(graph.num_edges()) /
                  std::pow(static_cast<double>(n), 1.5)
            : 0.0;
  const uint64_t capacity = static_cast<uint64_t>(
      config.balance_factor * (static_cast<double>(n) / k)) + 1;

  std::vector<uint32_t> neighbor_count(k);
  for (VertexId v = 0; v < n; ++v) {
    std::fill(neighbor_count.begin(), neighbor_count.end(), 0);
    for (const VertexId u : graph.neighbors(v)) {
      const PartitionId p = result.vertex_partition[u];
      if (p != kInvalidPartition) {
        ++neighbor_count[p];
      }
    }
    PartitionId best = kInvalidPartition;
    double best_score = 0.0;
    for (PartitionId p = 0; p < k; ++p) {
      if (result.partition_sizes[p] >= capacity) {
        continue;
      }
      // Marginal objective: neighbors gained minus the load penalty
      // derivative α·γ·|P|^(γ-1).
      const double score =
          static_cast<double>(neighbor_count[p]) -
          alpha * config.gamma *
              std::pow(static_cast<double>(result.partition_sizes[p]),
                       config.gamma - 1.0);
      if (best == kInvalidPartition || score > best_score) {
        best = p;
        best_score = score;
      }
    }
    result.vertex_partition[v] = best;
    ++result.partition_sizes[best];
  }

  // Cut size: every edge counted once via the adjacency of its lower
  // endpoint copy (each undirected edge appears twice in CSR).
  uint64_t cut_endpoints = 0;
  for (VertexId v = 0; v < n; ++v) {
    for (const VertexId u : graph.neighbors(v)) {
      if (result.vertex_partition[u] != result.vertex_partition[v]) {
        ++cut_endpoints;
      }
    }
  }
  result.cut_edges = cut_endpoints / 2;
  return result;
}

}  // namespace tpsl

#ifndef TPSL_BASELINES_FENNEL_H_
#define TPSL_BASELINES_FENNEL_H_

#include <cstdint>
#include <vector>

#include "graph/csr.h"
#include "graph/types.h"
#include "util/status.h"

namespace tpsl {

/// FENNEL streaming *vertex* partitioning (Tsourakakis et al.,
/// WSDM'14) — the other side of the paper's premise (§I, §II): vertex
/// partitioning cuts edges, edge partitioning cuts vertices, and on
/// power-law graphs edge partitioning finds better cuts (Bourse et
/// al., KDD'14). This module exists to reproduce that premise
/// empirically (bench/ext_vertex_vs_edge).
///
/// Vertices arrive in id order; each is placed on the partition
/// maximizing  |N(v) ∩ P_i| − α·γ·|P_i|^(γ−1)  subject to a hard
/// vertex-count cap, with the standard parameters γ = 1.5,
/// α = √k·|E| / |V|^1.5.
struct FennelConfig {
  uint32_t num_partitions = 32;
  double gamma = 1.5;
  /// Vertex-count balance slack (hard cap ν·|V|/k).
  double balance_factor = 1.10;
};

struct VertexPartitioning {
  std::vector<PartitionId> vertex_partition;
  /// Edges whose endpoints fall in different partitions — the
  /// communication cost proxy of vertex partitioning.
  uint64_t cut_edges = 0;
  uint64_t num_edges = 0;
  std::vector<uint64_t> partition_sizes;  // vertices per partition

  double CutFraction() const {
    return num_edges == 0
               ? 0.0
               : static_cast<double>(cut_edges) / static_cast<double>(num_edges);
  }
};

StatusOr<VertexPartitioning> FennelPartition(const CsrGraph& graph,
                                             const FennelConfig& config);

}  // namespace tpsl

#endif  // TPSL_BASELINES_FENNEL_H_

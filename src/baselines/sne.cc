#include "baselines/sne.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "baselines/ne.h"
#include "graph/degrees.h"
#include "partition/score_tables.h"
#include "util/timer.h"

namespace tpsl {
namespace {

/// Routes expansion output through a load-aware indirection: the
/// expander claims edges for a "slot", the adapter maps the slot to the
/// real partition chosen for this expansion round.
class RedirectSink : public AssignmentSink {
 public:
  RedirectSink(AssignmentSink* inner, ScoreTables* tables)
      : inner_(inner), tables_(tables) {}

  void SetTarget(PartitionId target) { target_ = target; }

  void Assign(const Edge& edge, PartitionId /*slot*/) override {
    inner_->Assign(edge, target_);
    tables_->AddLoad(target_);
  }

 private:
  AssignmentSink* inner_;
  ScoreTables* tables_;
  PartitionId target_ = 0;
};

}  // namespace

Status SnePartitioner::Partition(EdgeStream& stream,
                                 const PartitionConfig& config,
                                 AssignmentSink& sink,
                                 PartitionStats* stats) {
  if (config.num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  if (options_.cache_factor <= 0) {
    return Status::InvalidArgument("cache_factor must be positive");
  }
  PartitionStats local;
  PartitionStats& out = stats != nullptr ? *stats : local;

  DegreeTable degrees;
  {
    PhaseTimer timer(&out, "degree");
    TPSL_ASSIGN_OR_RETURN(degrees, ComputeDegrees(stream));
  }
  out.stream_passes += 1;

  PhaseTimer timer(&out, "partitioning");
  const uint32_t k = config.num_partitions;
  const uint64_t capacity = config.PartitionCapacity(degrees.num_edges);
  const VertexId num_vertices = degrees.num_vertices();
  const uint64_t chunk_capacity = std::max<uint64_t>(
      1024, static_cast<uint64_t>(options_.cache_factor * num_vertices));

  // Chunked expansion only needs the load half of the kernel; a
  // zero-vertex table keeps the replica matrix empty.
  ScoreTables tables(0, k, capacity);
  RedirectSink redirect(&sink, &tables);

  std::vector<Edge> chunk;
  chunk.reserve(chunk_capacity);
  uint64_t peak_chunk_bytes = 0;

  const auto flush_chunk = [&]() {
    if (chunk.empty()) {
      return;
    }
    VertexId max_id = 0;
    for (const Edge& e : chunk) {
      max_id = std::max({max_id, e.first, e.second});
    }
    const expansion::IndexedAdjacency adjacency =
        expansion::IndexedAdjacency::Build(chunk, max_id + 1, config.exec);
    expansion::Expander expander(&chunk, &adjacency);
    peak_chunk_bytes = std::max(
        peak_chunk_bytes, chunk.size() * sizeof(Edge) +
                              adjacency.HeapBytes() + expander.HeapBytes());

    // Expansion rounds: grow the least-loaded open partition by one
    // chunk share until the chunk is drained.
    const uint64_t round_share =
        std::max<uint64_t>(1, chunk.size() / k + 1);
    while (expander.UnclaimedEdges() > 0) {
      const PartitionId target = tables.LeastLoadedOpen();
      redirect.SetTarget(target);
      const uint64_t budget =
          std::min<uint64_t>(round_share, capacity - tables.load(target));
      const uint64_t claimed = expander.Expand(target, budget, redirect);
      if (claimed == 0) {
        break;  // Defensive: should not happen while edges remain.
      }
    }
    chunk.clear();
  };

  TPSL_RETURN_IF_ERROR(stream.Reset());
  constexpr size_t kBatch = 4096;
  Edge buffer[kBatch];
  size_t n;
  while ((n = stream.Next(buffer, kBatch)) > 0) {
    for (size_t i = 0; i < n; ++i) {
      chunk.push_back(buffer[i]);
      if (chunk.size() >= chunk_capacity) {
        flush_chunk();
      }
    }
  }
  flush_chunk();
  out.stream_passes += 1;
  out.state_bytes = degrees.degrees.size() * sizeof(uint32_t) +
                    tables.HeapBytes() + peak_chunk_bytes;
  return Status::OK();
}

}  // namespace tpsl

#ifndef TPSL_IO_EDGE_BLOCK_FORMAT_H_
#define TPSL_IO_EDGE_BLOCK_FORMAT_H_

#include <cstddef>
#include <cstdint>

#include "graph/types.h"
#include "util/status.h"

namespace tpsl {
namespace io {

/// The compressed on-disk edge format ("TPSL edge blocks, format 1").
///
/// The file is a sequence of fixed-capacity blocks, each independently
/// decodable so readers can mmap the file and decode blocks in worker
/// threads. Within a block the two endpoint columns are stored
/// separately; each column picks, per block, the cheaper of two
/// sort-free encodings:
///
///   - raw:   values bit-packed at the column's max bit width, or
///   - delta: zigzag(value - previous value) bit-packed at the max
///            zigzag width (previous resets to 0 at the block start,
///            which keeps blocks self-contained).
///
/// Bit widths are per block per column ("block varint"): locally
/// clustered ids cost only as many bits as their local range needs,
/// while a worst-case block degrades to ≤33 bits per value. Encoding
/// is a single streaming pass; decoding is a fixed-width unpack plus
/// an optional prefix sum — no per-byte branch chains.
///
/// File layout:
///   FileHeader   (24 bytes)  magic "TPSLEBF1", version, block size
///   Block*                   BlockHeader (24 bytes) + payload
///   FileTrailer  (32 bytes)  magic "TPSLEOF1", edge count + checksum
///
/// Every block carries its edge count and a fast word-at-a-time
/// checksum of its payload (verified on decode — corruption never
/// delivers edges silently). The trailer (rather than a patched
/// header) carries the
/// file totals, so writers are pure-append and a truncated file is
/// detected at open. The trailer's `edge_checksum` is FNV-1a over the
/// *decoded* Edge bytes — the same digest the ingest catalog pins for
/// raw files, which is what makes "byte-identical edge delivery"
/// checkable without decompressing twice.

inline constexpr char kEdgeFileMagic[8] = {'T', 'P', 'S', 'L',
                                           'E', 'B', 'F', '1'};
inline constexpr char kEdgeFileTrailerMagic[8] = {'T', 'P', 'S', 'L',
                                                  'E', 'O', 'F', '1'};
inline constexpr uint32_t kEdgeFileVersion = 1;

/// Default block capacity: 16Ki edges = 128 KiB decoded. Large enough
/// that per-block headers and width round-up are noise, small enough
/// that per-worker decode buffers stay cache-friendly.
inline constexpr uint32_t kDefaultBlockEdges = 1u << 14;
/// Spill files use smaller blocks: assignments fan out over k files,
/// so per-partition accumulation buffers stay modest.
inline constexpr uint32_t kSpillBlockEdges = 1u << 12;
/// Upper bound accepted from headers (corruption guard).
inline constexpr uint32_t kMaxBlockEdges = 1u << 24;

inline constexpr size_t kEdgeFileHeaderBytes = 24;
inline constexpr size_t kEdgeBlockHeaderBytes = 24;
inline constexpr size_t kEdgeFileTrailerBytes = 32;

struct EdgeFileHeader {
  uint32_t version = kEdgeFileVersion;
  uint32_t max_block_edges = kDefaultBlockEdges;
};

struct EdgeFileTrailer {
  uint64_t num_edges = 0;
  /// FNV-1a 64 over the decoded Edge bytes of the whole file.
  uint64_t edge_checksum = 0;
};

/// Per-column encoding mode.
inline constexpr uint8_t kColumnModeRaw = 0;
inline constexpr uint8_t kColumnModeZigZagDelta = 1;
/// Max packed width: zigzag of a delta in ±(2^32 - 1) needs 33 bits.
inline constexpr uint8_t kMaxColumnWidthBits = 33;

struct EdgeBlockHeader {
  uint32_t num_edges = 0;
  uint32_t payload_bytes = 0;
  /// Word-at-a-time 64-bit digest of the payload bytes (Murmur64A
  /// construction — corruption detection, deliberately not FNV: the
  /// byte-serial FNV multiply chain would dominate decode).
  uint64_t checksum = 0;
  uint8_t first_mode = kColumnModeRaw;
  uint8_t first_width = 0;
  uint8_t second_mode = kColumnModeRaw;
  uint8_t second_width = 0;
};

/// FNV-1a 64-bit, resumable via `seed` (pass a previous digest to
/// continue hashing). Matches the digest the ingest catalog pins.
inline constexpr uint64_t kFnv1a64OffsetBasis = 0xcbf29ce484222325ULL;
uint64_t Fnv1a64(const void* data, size_t bytes,
                 uint64_t seed = kFnv1a64OffsetBasis);

void EncodeFileHeader(const EdgeFileHeader& header, uint8_t* out);
Status DecodeFileHeader(const uint8_t* data, size_t bytes,
                        EdgeFileHeader* out);

void EncodeFileTrailer(const EdgeFileTrailer& trailer, uint8_t* out);
Status DecodeFileTrailer(const uint8_t* data, size_t bytes,
                         EdgeFileTrailer* out);

/// Worst-case encoded size (block header included) for `num_edges`
/// edges — the buffer size writers must provision per block.
size_t MaxEncodedBlockBytes(size_t num_edges);

/// Encodes `count` edges (1 ≤ count) as one block — header plus
/// payload — into `out`, which must hold MaxEncodedBlockBytes(count).
/// Returns the encoded size in bytes. Thread-safe.
size_t EncodeEdgeBlock(const Edge* edges, size_t count, uint8_t* out);

/// Parses and validates a block header sitting at `data` with `bytes`
/// of file remaining; on success the full block (header + payload)
/// occupies kEdgeBlockHeaderBytes + out->payload_bytes.
Status DecodeBlockHeader(const uint8_t* data, size_t bytes,
                         EdgeBlockHeader* out);

/// Verifies the payload checksum and decodes `header.num_edges` edges
/// from `payload` into `out`. Thread-safe.
Status DecodeBlockPayload(const EdgeBlockHeader& header,
                          const uint8_t* payload, Edge* out);

}  // namespace io
}  // namespace tpsl

#endif  // TPSL_IO_EDGE_BLOCK_FORMAT_H_

#ifndef TPSL_IO_COMPRESSED_EDGE_WRITER_H_
#define TPSL_IO_COMPRESSED_EDGE_WRITER_H_

#include <cstdint>
#include <cstdio>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "graph/types.h"
#include "io/edge_block_format.h"
#include "util/status.h"

namespace tpsl {
namespace io {

/// Streaming writer for the compressed edge-block format
/// (io/edge_block_format.h). Appends edges, cuts a block whenever the
/// accumulation buffer fills, and hands the encoded bytes to a
/// background thread for fwrite — so the producer encodes the next
/// block while the previous one is in flight to disk (double
/// buffering). Finish() flushes the tail block, writes the trailer,
/// and closes the file.
///
/// Write/close failures latch into sticky Health(); Append() becomes a
/// no-op once unhealthy and Finish() reports the first error. The
/// running FNV-1a digest over the decoded edge bytes (the catalog's
/// logical checksum) is maintained inline and sealed into the trailer.
class CompressedEdgeWriter {
 public:
  struct Options {
    uint32_t block_edges = kDefaultBlockEdges;
    /// Encoded buffers in rotation between producer and writer thread.
    /// 2 = classic double buffering.
    size_t write_buffers = 2;
  };

  static StatusOr<std::unique_ptr<CompressedEdgeWriter>> Open(
      const std::string& path, const Options& options);
  static StatusOr<std::unique_ptr<CompressedEdgeWriter>> Open(
      const std::string& path) {
    return Open(path, Options());
  }

  /// Joins the writer thread and closes the file. Prefer calling
  /// Finish() explicitly: a file abandoned without Finish() has no
  /// trailer and will not open.
  ~CompressedEdgeWriter();

  CompressedEdgeWriter(const CompressedEdgeWriter&) = delete;
  CompressedEdgeWriter& operator=(const CompressedEdgeWriter&) = delete;

  void Append(const Edge* edges, size_t count);
  void Append(const std::vector<Edge>& edges) {
    Append(edges.data(), edges.size());
  }

  /// Flushes, writes the trailer, closes. Exactly-once; returns the
  /// sticky health (first error wins).
  Status Finish();

  /// Sticky writer health: open/write/close errors observed so far.
  Status Health() const;

  uint64_t edges_written() const { return edges_written_; }
  /// Compressed bytes (header + blocks so far; after Finish() this is
  /// the final file size including the trailer).
  uint64_t bytes_written() const { return bytes_written_; }
  /// FNV-1a 64 digest of the decoded edge bytes appended so far.
  uint64_t edge_checksum() const { return edge_checksum_; }

 private:
  CompressedEdgeWriter(std::FILE* file, const Options& options);

  void FlushBlock();
  void WriterLoop();
  /// Blocks until a free encode buffer is available; returns its index.
  size_t AcquireBuffer();

  std::FILE* file_;
  const Options options_;

  std::vector<Edge> block_;  // accumulation buffer (decoded edges)
  size_t block_fill_ = 0;

  uint64_t edges_written_ = 0;
  uint64_t bytes_written_ = 0;
  uint64_t edge_checksum_ = kFnv1a64OffsetBasis;
  bool finished_ = false;

  // Producer/writer-thread handshake.
  struct Pending {
    size_t buffer;
    size_t bytes;
  };
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable free_cv_;
  std::vector<std::vector<uint8_t>> buffers_;
  std::vector<size_t> free_buffers_;
  std::deque<Pending> queue_;
  bool stop_ = false;
  Status status_;  // sticky; guarded by mutex_
  std::thread writer_;
};

}  // namespace io
}  // namespace tpsl

#endif  // TPSL_IO_COMPRESSED_EDGE_WRITER_H_

#include "io/edge_block_format.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <string>
#include <vector>

namespace tpsl {
namespace io {
namespace {

void StoreLe32(uint8_t* out, uint32_t v) { std::memcpy(out, &v, 4); }
void StoreLe64(uint8_t* out, uint64_t v) { std::memcpy(out, &v, 8); }

uint32_t LoadLe32(const uint8_t* in) {
  uint32_t v;
  std::memcpy(&v, in, 4);
  return v;
}

uint64_t LoadLe64(const uint8_t* in) {
  uint64_t v;
  std::memcpy(&v, in, 8);
  return v;
}

uint64_t ZigZag64(int64_t d) {
  return (static_cast<uint64_t>(d) << 1) ^ static_cast<uint64_t>(d >> 63);
}

int64_t UnZigZag64(uint64_t z) {
  return static_cast<int64_t>(z >> 1) ^ -static_cast<int64_t>(z & 1);
}

/// Packed byte size of one column: values are packed back to back at
/// `width` bits and flushed in whole little-endian 64-bit words.
size_t ColumnBytes(size_t count, uint32_t width) {
  return ((count * width + 63) / 64) * 8;
}

size_t PackColumn(const uint64_t* values, size_t count, uint32_t width,
                  uint8_t* out) {
  if (width == 0) {
    return 0;
  }
  uint64_t acc = 0;
  uint32_t bits = 0;
  uint8_t* p = out;
  for (size_t i = 0; i < count; ++i) {
    const uint64_t v = values[i];
    acc |= v << bits;
    bits += width;
    if (bits >= 64) {
      StoreLe64(p, acc);
      p += 8;
      bits -= 64;
      acc = v >> (width - bits);
    }
  }
  if (bits > 0) {
    StoreLe64(p, acc);
    p += 8;
  }
  return static_cast<size_t>(p - out);
}

void UnpackColumn(const uint8_t* in, size_t count, uint32_t width,
                  uint64_t* out) {
  if (width == 0) {
    std::memset(out, 0, count * sizeof(uint64_t));
    return;
  }
  const uint64_t mask = (1ull << width) - 1;  // width <= 33 (validated)
  const size_t bytes = ColumnBytes(count, width);
  // Branchless bulk: value i lives at bit offset i*width; an unaligned
  // 64-bit window load covers it whole since (bp & 7) + width <= 40.
  // Safe while the window's 8 bytes stay inside the column.
  size_t i = 0;
  if (bytes >= 8) {
    const size_t safe_bits = (bytes - 8) * 8;
    const size_t bulk = std::min(count, safe_bits / width + 1);
    for (; i < bulk; ++i) {
      const size_t bp = i * width;
      out[i] = (LoadLe64(in + (bp >> 3)) >> (bp & 7)) & mask;
    }
  }
  // Tail values whose window would read past the column: re-window
  // from a zero-padded copy of the last bytes.
  if (i < count) {
    uint8_t pad[24] = {0};
    const size_t tail_byte = bytes >= 16 ? bytes - 16 : 0;
    std::memcpy(pad, in + tail_byte, bytes - tail_byte);
    for (; i < count; ++i) {
      const size_t bp = i * width - tail_byte * 8;
      out[i] = (LoadLe64(pad + (bp >> 3)) >> (bp & 7)) & mask;
    }
  }
}

/// Word-at-a-time 64-bit hash (MurmurHash64A construction) for the
/// per-block payload checksums. FNV-1a is byte-serial (~0.7 GB/s, one
/// multiply per byte) and was the decode hot path's dominant cost;
/// this runs ~8x faster and corruption detection needs avalanche, not
/// a pinned digest — the trailer's edge_checksum stays FNV-1a because
/// it must coincide with the catalog's raw-file digest.
uint64_t HashBlockPayload(const void* data, size_t bytes) {
  constexpr uint64_t kMul = 0xc6a4a7935bd1e995ULL;
  constexpr int kShift = 47;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = 0x8445d61a4e774912ULL ^ (bytes * kMul);
  const size_t words = bytes / 8;
  for (size_t i = 0; i < words; ++i) {
    uint64_t k = LoadLe64(p + i * 8);
    k *= kMul;
    k ^= k >> kShift;
    k *= kMul;
    h ^= k;
    h *= kMul;
  }
  uint64_t tail = 0;
  for (size_t i = words * 8; i < bytes; ++i) {
    tail |= static_cast<uint64_t>(p[i]) << ((i % 8) * 8);
  }
  if (bytes % 8 != 0) {
    h ^= tail;
    h *= kMul;
  }
  h ^= h >> kShift;
  h *= kMul;
  h ^= h >> kShift;
  return h;
}

}  // namespace

uint64_t Fnv1a64(const void* data, size_t bytes, uint64_t seed) {
  constexpr uint64_t kPrime = 0x100000001b3ULL;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= kPrime;
  }
  return h;
}

void EncodeFileHeader(const EdgeFileHeader& header, uint8_t* out) {
  std::memcpy(out, kEdgeFileMagic, 8);
  StoreLe32(out + 8, header.version);
  StoreLe32(out + 12, header.max_block_edges);
  std::memset(out + 16, 0, 8);
}

Status DecodeFileHeader(const uint8_t* data, size_t bytes,
                        EdgeFileHeader* out) {
  if (bytes < kEdgeFileHeaderBytes ||
      std::memcmp(data, kEdgeFileMagic, 8) != 0) {
    return Status::InvalidArgument("not a TPSL edge-block file");
  }
  out->version = LoadLe32(data + 8);
  out->max_block_edges = LoadLe32(data + 12);
  if (out->version != kEdgeFileVersion) {
    return Status::InvalidArgument("unsupported edge-block format version " +
                                   std::to_string(out->version));
  }
  if (out->max_block_edges == 0 || out->max_block_edges > kMaxBlockEdges) {
    return Status::InvalidArgument("edge-block header: bad block size " +
                                   std::to_string(out->max_block_edges));
  }
  return Status::OK();
}

void EncodeFileTrailer(const EdgeFileTrailer& trailer, uint8_t* out) {
  std::memcpy(out, kEdgeFileTrailerMagic, 8);
  StoreLe64(out + 8, trailer.num_edges);
  StoreLe64(out + 16, trailer.edge_checksum);
  std::memset(out + 24, 0, 8);
}

Status DecodeFileTrailer(const uint8_t* data, size_t bytes,
                         EdgeFileTrailer* out) {
  if (bytes < kEdgeFileTrailerBytes ||
      std::memcmp(data, kEdgeFileTrailerMagic, 8) != 0) {
    return Status::IoError(
        "edge-block file trailer missing (truncated file?)");
  }
  out->num_edges = LoadLe64(data + 8);
  out->edge_checksum = LoadLe64(data + 16);
  return Status::OK();
}

size_t MaxEncodedBlockBytes(size_t num_edges) {
  return kEdgeBlockHeaderBytes +
         2 * ColumnBytes(num_edges, kMaxColumnWidthBits);
}

size_t EncodeEdgeBlock(const Edge* edges, size_t count, uint8_t* out) {
  thread_local std::vector<uint64_t> scratch;
  scratch.resize(count);

  EdgeBlockHeader header;
  header.num_edges = static_cast<uint32_t>(count);
  uint8_t* payload = out + kEdgeBlockHeaderBytes;
  size_t payload_bytes = 0;

  for (int col = 0; col < 2; ++col) {
    // One scan finds both candidate widths: the bit width of a max is
    // the bit width of the OR-accumulate.
    uint64_t or_raw = 0;
    uint64_t or_zz = 0;
    uint32_t prev = 0;
    for (size_t i = 0; i < count; ++i) {
      const uint32_t v = col == 0 ? edges[i].first : edges[i].second;
      or_raw |= v;
      or_zz |= ZigZag64(static_cast<int64_t>(v) - static_cast<int64_t>(prev));
      prev = v;
    }
    const uint32_t raw_width = static_cast<uint32_t>(std::bit_width(or_raw));
    const uint32_t zz_width = static_cast<uint32_t>(std::bit_width(or_zz));

    // Ties go to raw: same bits, cheaper decode (no prefix sum).
    uint8_t mode = kColumnModeRaw;
    uint32_t width = raw_width;
    if (zz_width < raw_width) {
      mode = kColumnModeZigZagDelta;
      width = zz_width;
    }

    if (mode == kColumnModeRaw) {
      for (size_t i = 0; i < count; ++i) {
        scratch[i] = col == 0 ? edges[i].first : edges[i].second;
      }
    } else {
      prev = 0;
      for (size_t i = 0; i < count; ++i) {
        const uint32_t v = col == 0 ? edges[i].first : edges[i].second;
        scratch[i] =
            ZigZag64(static_cast<int64_t>(v) - static_cast<int64_t>(prev));
        prev = v;
      }
    }
    payload_bytes +=
        PackColumn(scratch.data(), count, width, payload + payload_bytes);
    if (col == 0) {
      header.first_mode = mode;
      header.first_width = static_cast<uint8_t>(width);
    } else {
      header.second_mode = mode;
      header.second_width = static_cast<uint8_t>(width);
    }
  }

  header.payload_bytes = static_cast<uint32_t>(payload_bytes);
  header.checksum = HashBlockPayload(payload, payload_bytes);
  StoreLe32(out, header.num_edges);
  StoreLe32(out + 4, header.payload_bytes);
  StoreLe64(out + 8, header.checksum);
  out[16] = header.first_mode;
  out[17] = header.first_width;
  out[18] = header.second_mode;
  out[19] = header.second_width;
  std::memset(out + 20, 0, 4);
  return kEdgeBlockHeaderBytes + payload_bytes;
}

Status DecodeBlockHeader(const uint8_t* data, size_t bytes,
                         EdgeBlockHeader* out) {
  if (bytes < kEdgeBlockHeaderBytes) {
    return Status::IoError("edge block truncated mid-header");
  }
  out->num_edges = LoadLe32(data);
  out->payload_bytes = LoadLe32(data + 4);
  out->checksum = LoadLe64(data + 8);
  out->first_mode = data[16];
  out->first_width = data[17];
  out->second_mode = data[18];
  out->second_width = data[19];
  if (out->num_edges == 0 || out->num_edges > kMaxBlockEdges) {
    return Status::IoError("edge block header: bad edge count " +
                           std::to_string(out->num_edges));
  }
  if (out->first_mode > kColumnModeZigZagDelta ||
      out->second_mode > kColumnModeZigZagDelta ||
      out->first_width > kMaxColumnWidthBits ||
      out->second_width > kMaxColumnWidthBits) {
    return Status::IoError("edge block header: bad column encoding");
  }
  const size_t expected = ColumnBytes(out->num_edges, out->first_width) +
                          ColumnBytes(out->num_edges, out->second_width);
  if (out->payload_bytes != expected) {
    return Status::IoError("edge block header: payload size mismatch");
  }
  if (bytes < kEdgeBlockHeaderBytes + static_cast<size_t>(out->payload_bytes)) {
    return Status::IoError("edge block truncated mid-payload");
  }
  return Status::OK();
}

Status DecodeBlockPayload(const EdgeBlockHeader& header,
                          const uint8_t* payload, Edge* out) {
  if (HashBlockPayload(payload, header.payload_bytes) != header.checksum) {
    return Status::IoError("edge block checksum mismatch (corrupt block)");
  }
  const size_t count = header.num_edges;
  thread_local std::vector<uint64_t> scratch;
  scratch.resize(count);

  const uint8_t* col_data = payload;
  for (int col = 0; col < 2; ++col) {
    const uint8_t mode = col == 0 ? header.first_mode : header.second_mode;
    const uint32_t width = col == 0 ? header.first_width : header.second_width;
    UnpackColumn(col_data, count, width, scratch.data());
    col_data += ColumnBytes(count, width);
    if (mode == kColumnModeRaw) {
      for (size_t i = 0; i < count; ++i) {
        const uint32_t v = static_cast<uint32_t>(scratch[i]);
        if (col == 0) {
          out[i].first = v;
        } else {
          out[i].second = v;
        }
      }
    } else {
      int64_t prev = 0;
      for (size_t i = 0; i < count; ++i) {
        prev += UnZigZag64(scratch[i]);
        const uint32_t v = static_cast<uint32_t>(prev);
        if (col == 0) {
          out[i].first = v;
        } else {
          out[i].second = v;
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace io
}  // namespace tpsl

#include "io/mmap_edge_stream.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace tpsl {
namespace io {

StatusOr<std::unique_ptr<MmapEdgeStream>> MmapEdgeStream::Open(
    const std::string& path, const Options& options) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("open failed: " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status status = Status::IoError("stat failed: " + path + ": " +
                                          std::strerror(errno));
    ::close(fd);
    return status;
  }
  const uint64_t size = static_cast<uint64_t>(st.st_size);
  if (size < kEdgeFileHeaderBytes + kEdgeFileTrailerBytes) {
    ::close(fd);
    return Status::IoError("not a compressed edge file (too small): " + path);
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping holds its own reference
  if (map == MAP_FAILED) {
    return Status::IoError("mmap failed: " + path + ": " +
                           std::strerror(errno));
  }
#if defined(POSIX_MADV_SEQUENTIAL)
  ::posix_madvise(map, size, POSIX_MADV_SEQUENTIAL);
#endif

  std::unique_ptr<MmapEdgeStream> stream(new MmapEdgeStream());
  stream->path_ = path;
  stream->options_ = options;
  stream->base_ = static_cast<const uint8_t*>(map);
  stream->file_bytes_ = size;
  stream->blocks_end_ = size - kEdgeFileTrailerBytes;

  Status status = DecodeFileHeader(stream->base_, size, &stream->header_);
  if (status.ok()) {
    status = DecodeFileTrailer(stream->base_ + stream->blocks_end_,
                               kEdgeFileTrailerBytes, &stream->trailer_);
  }
  if (!status.ok()) {
    return Status(status.code(), path + ": " + status.message());
  }
  for (Slot& slot : stream->slots_) {
    slot.edges.resize(stream->header_.max_block_edges);
  }
  stream->decode_buf_.resize(stream->header_.max_block_edges);
  return stream;
}

MmapEdgeStream::~MmapEdgeStream() {
  StopWorker();
  if (base_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(base_), file_bytes_);
  }
}

Status MmapEdgeStream::Reset() {
  StopWorker();
  std::lock_guard<std::mutex> lock(mutex_);
  if (!status_.ok()) {
    // A failed stream stays failed: restarting could silently deliver
    // a different edge sequence than the first pass saw.
    return status_;
  }
  cursor_ = kEdgeFileHeaderBytes;
  taken_pass_edges_ = 0;
  pass_finalized_ = false;
  dropped_end_ = 0;
  disk_pass_bytes_ = 0;
  passes_ += 1;
  for (Slot& slot : slots_) {
    slot.filled = 0;
    slot.block_bytes = 0;
    slot.ready = false;
  }
  fill_slot_ = 0;
  consume_slot_ = 0;
  consume_pos_ = 0;
  producer_done_ = false;
  decode_fill_ = 0;
  decode_pos_ = 0;
  return Status::OK();
}

Status MmapEdgeStream::Health() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return status_;
}

StreamIoStats MmapEdgeStream::Io() const {
  std::lock_guard<std::mutex> lock(mutex_);
  StreamIoStats io;
  io.disk_backed = true;
  io.disk_bytes_this_pass = disk_pass_bytes_;
  io.disk_bytes_total = disk_total_bytes_;
  io.passes = passes_;
  return io;
}

bool MmapEdgeStream::TakeNextBlockLocked(EdgeBlockHeader* header,
                                         const uint8_t** block,
                                         size_t* block_bytes) {
  if (!status_.ok() || cursor_ >= blocks_end_) {
    return false;
  }
  const Status parsed =
      DecodeBlockHeader(base_ + cursor_, blocks_end_ - cursor_, header);
  if (!parsed.ok()) {
    status_ = Status(parsed.code(), path_ + ": " + parsed.message());
    return false;
  }
  if (header->num_edges > header_.max_block_edges) {
    // Decode buffers are provisioned from the file header; an
    // oversized block is corruption, not a bigger buffer request.
    status_ = Status::IoError(path_ + ": block exceeds declared block size");
    return false;
  }
  *block = base_ + cursor_;
  *block_bytes = kEdgeBlockHeaderBytes + header->payload_bytes;
  cursor_ += *block_bytes;
  taken_pass_edges_ += header->num_edges;
  FreeBehindLocked(cursor_);
  return true;
}

void MmapEdgeStream::FinalizePassLocked() {
  if (pass_finalized_) {
    return;
  }
  pass_finalized_ = true;
  if (status_.ok() && taken_pass_edges_ != trailer_.num_edges) {
    status_ = Status::IoError(
        path_ + ": decoded " + std::to_string(taken_pass_edges_) +
        " edges but the trailer promises " +
        std::to_string(trailer_.num_edges));
  }
  if (status_.ok()) {
    // Blocks were accounted as consumed; the fixed framing completes
    // the pass: a full pass reads exactly the file's bytes.
    const uint64_t framing = kEdgeFileHeaderBytes + kEdgeFileTrailerBytes;
    disk_pass_bytes_ += framing;
    disk_total_bytes_ += framing;
  }
}

void MmapEdgeStream::FreeBehindLocked(size_t consumed_offset) {
#if defined(MADV_DONTNEED)
  const size_t window = options_.madvise_window_bytes;
  if (window == 0) {
    return;
  }
  static const size_t kPage = static_cast<size_t>(::sysconf(_SC_PAGESIZE));
  const size_t floor = consumed_offset & ~(kPage - 1);
  if (floor > dropped_end_ && floor - dropped_end_ >= window) {
    ::madvise(const_cast<uint8_t*>(base_) + dropped_end_,
              floor - dropped_end_, MADV_DONTNEED);
    dropped_end_ = floor;
  }
#else
  (void)consumed_offset;
#endif
}

void MmapEdgeStream::EnsureWorkerStartedLocked() {
  if (worker_started_ || producer_done_ || !status_.ok()) {
    return;
  }
  worker_started_ = true;
  stop_worker_ = false;
  worker_ = std::thread([this] { WorkerLoop(); });
}

void MmapEdgeStream::StopWorker() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!worker_started_) {
      return;
    }
    stop_worker_ = true;
  }
  slot_free_cv_.notify_all();
  if (worker_.joinable()) {
    worker_.join();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  worker_started_ = false;
  stop_worker_ = false;
}

void MmapEdgeStream::WorkerLoop() {
  for (;;) {
    std::unique_lock<std::mutex> lock(mutex_);
    slot_free_cv_.wait(lock, [this] {
      return stop_worker_ || !slots_[fill_slot_].ready;
    });
    if (stop_worker_) {
      return;
    }
    Slot& slot = slots_[fill_slot_];
    EdgeBlockHeader header;
    const uint8_t* block = nullptr;
    size_t block_bytes = 0;
    if (!TakeNextBlockLocked(&header, &block, &block_bytes)) {
      producer_done_ = true;
      lock.unlock();
      slot_ready_cv_.notify_all();
      return;
    }
    lock.unlock();

    // The expensive part — checksum + unpack — runs without the lock,
    // overlapping the consumer's drain of the other slot.
    const Status decoded = DecodeBlockPayload(
        header, block + kEdgeBlockHeaderBytes, slot.edges.data());

    lock.lock();
    if (!decoded.ok()) {
      if (status_.ok()) {
        status_ = Status(decoded.code(), path_ + ": " + decoded.message());
      }
      producer_done_ = true;
      lock.unlock();
      slot_ready_cv_.notify_all();
      return;
    }
    slot.filled = header.num_edges;
    slot.block_bytes = block_bytes;
    slot.ready = true;
    fill_slot_ ^= 1;
    lock.unlock();
    slot_ready_cv_.notify_all();
  }
}

size_t MmapEdgeStream::Next(Edge* out, size_t capacity) {
  if (capacity == 0) {
    return 0;
  }
  return options_.decode_ahead ? NextDecodeAhead(out, capacity)
                               : NextSync(out, capacity);
}

size_t MmapEdgeStream::NextDecodeAhead(Edge* out, size_t capacity) {
  std::unique_lock<std::mutex> lock(mutex_);
  EnsureWorkerStartedLocked();
  size_t delivered = 0;
  while (delivered < capacity) {
    Slot& slot = slots_[consume_slot_];
    if (!slot.ready) {
      if (producer_done_) {
        break;
      }
      if (delivered > 0) {
        break;  // hand back what we have instead of stalling
      }
      slot_ready_cv_.wait(lock, [this, &slot] {
        return slot.ready || producer_done_;
      });
      continue;
    }
    const size_t available = slot.filled - consume_pos_;
    if (available == 0) {
      slot.ready = false;
      slot.filled = 0;
      disk_pass_bytes_ += slot.block_bytes;
      disk_total_bytes_ += slot.block_bytes;
      slot.block_bytes = 0;
      consume_pos_ = 0;
      consume_slot_ ^= 1;
      lock.unlock();
      slot_free_cv_.notify_all();
      lock.lock();
      continue;
    }
    const size_t take =
        available < capacity - delivered ? available : capacity - delivered;
    std::memcpy(out + delivered, slot.edges.data() + consume_pos_,
                take * sizeof(Edge));
    consume_pos_ += take;
    delivered += take;
  }
  if (delivered == 0) {
    FinalizePassLocked();
  }
  return delivered;
}

size_t MmapEdgeStream::NextSync(Edge* out, size_t capacity) {
  size_t delivered = 0;
  while (delivered < capacity) {
    if (decode_pos_ == decode_fill_) {
      std::lock_guard<std::mutex> lock(mutex_);
      EdgeBlockHeader header;
      const uint8_t* block = nullptr;
      size_t block_bytes = 0;
      if (!TakeNextBlockLocked(&header, &block, &block_bytes)) {
        break;
      }
      const Status decoded = DecodeBlockPayload(
          header, block + kEdgeBlockHeaderBytes, decode_buf_.data());
      if (!decoded.ok()) {
        if (status_.ok()) {
          status_ = Status(decoded.code(), path_ + ": " + decoded.message());
        }
        break;
      }
      decode_fill_ = header.num_edges;
      decode_pos_ = 0;
      disk_pass_bytes_ += block_bytes;
      disk_total_bytes_ += block_bytes;
    }
    const size_t available = decode_fill_ - decode_pos_;
    const size_t take =
        available < capacity - delivered ? available : capacity - delivered;
    std::memcpy(out + delivered, decode_buf_.data() + decode_pos_,
                take * sizeof(Edge));
    decode_pos_ += take;
    delivered += take;
  }
  if (delivered == 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    FinalizePassLocked();
  }
  return delivered;
}

bool MmapEdgeStream::NextEncodedBlock(EncodedBlock* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  EdgeBlockHeader header;
  const uint8_t* block = nullptr;
  size_t block_bytes = 0;
  if (!TakeNextBlockLocked(&header, &block, &block_bytes)) {
    FinalizePassLocked();
    return false;
  }
  out->data = block;
  out->bytes = block_bytes;
  out->num_edges = header.num_edges;
  disk_pass_bytes_ += block_bytes;
  disk_total_bytes_ += block_bytes;
  return true;
}

Status MmapEdgeStream::DecodeBlock(const EncodedBlock& block,
                                   Edge* out) const {
  EdgeBlockHeader header;
  TPSL_RETURN_IF_ERROR(DecodeBlockHeader(
      static_cast<const uint8_t*>(block.data), block.bytes, &header));
  if (header.num_edges != block.num_edges) {
    return Status::Internal("encoded block view out of sync with header");
  }
  return DecodeBlockPayload(
      header, static_cast<const uint8_t*>(block.data) + kEdgeBlockHeaderBytes,
      out);
}

}  // namespace io
}  // namespace tpsl

#ifndef TPSL_IO_MMAP_EDGE_STREAM_H_
#define TPSL_IO_MMAP_EDGE_STREAM_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "graph/edge_stream.h"
#include "graph/types.h"
#include "io/edge_block_format.h"
#include "util/status.h"

namespace tpsl {
namespace io {

/// Zero-copy reader for the compressed edge-block format: maps the
/// file (PROT_READ, advised POSIX_MADV_SEQUENTIAL) and decodes blocks
/// straight out of the mapping — no read syscalls, no staging copy of
/// the compressed bytes.
///
/// Three access modes share one pass cursor:
///  - decode-ahead (default): a background thread decodes the next
///    block into a two-slot ping-pong buffer while the consumer drains
///    the previous one — the PrefetchingEdgeStream design, with decode
///    taking the place of fread.
///  - synchronous (Options::decode_ahead = false): blocks decode
///    inline in Next(); deterministic and thread-free, for tests and
///    baseline comparisons.
///  - block-at-a-time (BlockEdgeStream): ParallelForEdges pulls raw
///    encoded blocks and decodes them in its worker threads.
///
/// Consumed map regions are released with madvise(MADV_DONTNEED) every
/// `madvise_window_bytes`, so resident memory stays bounded by the
/// window instead of growing toward the file size — mapped pages count
/// against the out-of-core RSS gate just like heap does. (The page
/// cache keeps the pages, so later passes refault cheaply.)
///
/// Corrupt blocks (checksum/bounds) and truncated files latch a sticky
/// error in Health(), and a finished pass whose decoded edge count
/// disagrees with the trailer does the same.
class MmapEdgeStream final : public EdgeStream, public BlockEdgeStream {
 public:
  struct Options {
    bool decode_ahead = true;
    /// Free-behind granularity; 0 keeps the whole file resident.
    size_t madvise_window_bytes = 8u << 20;
  };

  static StatusOr<std::unique_ptr<MmapEdgeStream>> Open(
      const std::string& path, const Options& options);
  static StatusOr<std::unique_ptr<MmapEdgeStream>> Open(
      const std::string& path) {
    return Open(path, Options());
  }

  ~MmapEdgeStream() override;

  MmapEdgeStream(const MmapEdgeStream&) = delete;
  MmapEdgeStream& operator=(const MmapEdgeStream&) = delete;

  Status Reset() override;
  size_t Next(Edge* out, size_t capacity) override;
  uint64_t NumEdgesHint() const override { return trailer_.num_edges; }
  Status Health() const override;
  StreamIoStats Io() const override;

  // BlockEdgeStream:
  uint32_t MaxBlockEdges() const override { return header_.max_block_edges; }
  bool NextEncodedBlock(EncodedBlock* out) override;
  Status DecodeBlock(const EncodedBlock& block, Edge* out) const override;

  const std::string& path() const { return path_; }
  uint64_t file_bytes() const { return file_bytes_; }

 private:
  MmapEdgeStream() = default;

  struct Slot {
    std::vector<Edge> edges;
    size_t filled = 0;
    size_t block_bytes = 0;
    bool ready = false;
  };

  // All Locked helpers require mutex_ held.
  bool TakeNextBlockLocked(EdgeBlockHeader* header, const uint8_t** block,
                           size_t* block_bytes);
  void FinalizePassLocked();
  void FreeBehindLocked(size_t consumed_offset);
  void EnsureWorkerStartedLocked();
  void StopWorker();
  void WorkerLoop();

  size_t NextDecodeAhead(Edge* out, size_t capacity);
  size_t NextSync(Edge* out, size_t capacity);

  std::string path_;
  Options options_;
  const uint8_t* base_ = nullptr;
  uint64_t file_bytes_ = 0;
  size_t blocks_end_ = 0;  // file offset where the trailer starts
  EdgeFileHeader header_;
  EdgeFileTrailer trailer_;

  mutable std::mutex mutex_;
  Status status_;               // sticky
  size_t cursor_ = kEdgeFileHeaderBytes;
  uint64_t taken_pass_edges_ = 0;  // decoded off the map this pass
  bool pass_finalized_ = false;
  size_t dropped_end_ = 0;  // free-behind watermark (file offset)

  uint64_t disk_pass_bytes_ = 0;
  uint64_t disk_total_bytes_ = 0;
  uint64_t passes_ = 0;

  // Decode-ahead state.
  std::condition_variable slot_ready_cv_;
  std::condition_variable slot_free_cv_;
  Slot slots_[2];
  size_t fill_slot_ = 0;
  size_t consume_slot_ = 0;
  size_t consume_pos_ = 0;
  bool producer_done_ = false;
  bool stop_worker_ = false;
  bool worker_started_ = false;
  std::thread worker_;

  // Synchronous-mode decode buffer (consumer thread only).
  std::vector<Edge> decode_buf_;
  size_t decode_fill_ = 0;
  size_t decode_pos_ = 0;
};

}  // namespace io
}  // namespace tpsl

#endif  // TPSL_IO_MMAP_EDGE_STREAM_H_

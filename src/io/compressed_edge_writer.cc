#include "io/compressed_edge_writer.h"

#include <cerrno>
#include <cstring>

namespace tpsl {
namespace io {

StatusOr<std::unique_ptr<CompressedEdgeWriter>> CompressedEdgeWriter::Open(
    const std::string& path, const Options& options) {
  if (options.block_edges == 0 || options.block_edges > kMaxBlockEdges) {
    return Status::InvalidArgument("CompressedEdgeWriter: bad block size");
  }
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("open for write failed: " + path + ": " +
                           std::strerror(errno));
  }
  std::unique_ptr<CompressedEdgeWriter> writer(
      new CompressedEdgeWriter(file, options));

  uint8_t header[kEdgeFileHeaderBytes];
  EdgeFileHeader file_header;
  file_header.max_block_edges = options.block_edges;
  EncodeFileHeader(file_header, header);
  if (std::fwrite(header, 1, sizeof(header), file) != sizeof(header)) {
    std::lock_guard<std::mutex> lock(writer->mutex_);
    writer->status_ = Status::IoError("write failed: " + path + ": " +
                                      std::strerror(errno));
  }
  writer->bytes_written_ = sizeof(header);
  return writer;
}

CompressedEdgeWriter::CompressedEdgeWriter(std::FILE* file,
                                           const Options& options)
    : file_(file), options_(options) {
  block_.resize(options_.block_edges);
  const size_t n_buffers = options_.write_buffers < 2 ? 2 : options_.write_buffers;
  buffers_.resize(n_buffers);
  for (size_t i = 0; i < n_buffers; ++i) {
    buffers_[i].resize(MaxEncodedBlockBytes(options_.block_edges));
    free_buffers_.push_back(i);
  }
  writer_ = std::thread([this] { WriterLoop(); });
}

CompressedEdgeWriter::~CompressedEdgeWriter() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  if (writer_.joinable()) {
    writer_.join();
  }
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

void CompressedEdgeWriter::WriterLoop() {
  for (;;) {
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop_ with a drained queue
      }
      pending = queue_.front();
      queue_.pop_front();
    }
    const bool ok = std::fwrite(buffers_[pending.buffer].data(), 1,
                                pending.bytes, file_) == pending.bytes;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!ok && status_.ok()) {
        status_ = Status::IoError(std::string("block write failed: ") +
                                  std::strerror(errno));
      }
      free_buffers_.push_back(pending.buffer);
    }
    free_cv_.notify_all();
  }
}

size_t CompressedEdgeWriter::AcquireBuffer() {
  std::unique_lock<std::mutex> lock(mutex_);
  free_cv_.wait(lock, [this] { return !free_buffers_.empty(); });
  const size_t buffer = free_buffers_.back();
  free_buffers_.pop_back();
  return buffer;
}

void CompressedEdgeWriter::FlushBlock() {
  if (block_fill_ == 0) {
    return;
  }
  const size_t buffer = AcquireBuffer();
  const size_t bytes =
      EncodeEdgeBlock(block_.data(), block_fill_, buffers_[buffer].data());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(Pending{buffer, bytes});
  }
  work_cv_.notify_all();
  bytes_written_ += bytes;
  block_fill_ = 0;
}

void CompressedEdgeWriter::Append(const Edge* edges, size_t count) {
  if (finished_ || !Health().ok()) {
    return;
  }
  edge_checksum_ = Fnv1a64(edges, count * sizeof(Edge), edge_checksum_);
  edges_written_ += count;
  while (count > 0) {
    const size_t room = block_.size() - block_fill_;
    const size_t take = count < room ? count : room;
    std::memcpy(block_.data() + block_fill_, edges, take * sizeof(Edge));
    block_fill_ += take;
    edges += take;
    count -= take;
    if (block_fill_ == block_.size()) {
      FlushBlock();
    }
  }
}

Status CompressedEdgeWriter::Finish() {
  if (finished_) {
    return Status::FailedPrecondition(
        "CompressedEdgeWriter: Finish() called twice");
  }
  finished_ = true;
  FlushBlock();
  // Drain the queue and park the writer thread before the synchronous
  // trailer write: blocks and trailer must land in order.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  writer_.join();

  EdgeFileTrailer trailer;
  trailer.num_edges = edges_written_;
  trailer.edge_checksum = edge_checksum_;
  uint8_t bytes[kEdgeFileTrailerBytes];
  EncodeFileTrailer(trailer, bytes);
  std::lock_guard<std::mutex> lock(mutex_);
  if (std::fwrite(bytes, 1, sizeof(bytes), file_) != sizeof(bytes) &&
      status_.ok()) {
    status_ = Status::IoError(std::string("trailer write failed: ") +
                              std::strerror(errno));
  }
  bytes_written_ += sizeof(bytes);
  if (std::fclose(file_) != 0 && status_.ok()) {
    status_ = Status::IoError(std::string("close failed: ") +
                              std::strerror(errno));
  }
  file_ = nullptr;
  return status_;
}

Status CompressedEdgeWriter::Health() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return status_;
}

}  // namespace io
}  // namespace tpsl

#ifndef TPSL_IO_THROTTLED_EDGE_STREAM_H_
#define TPSL_IO_THROTTLED_EDGE_STREAM_H_

#include <cstdint>

#include "graph/edge_stream.h"
#include "util/status.h"

namespace tpsl {

/// Storage-device profiles for the paper's Table V experiment
/// (partitioning from page cache vs SSD vs HDD). Bandwidths are the
/// fio-profiled sequential read speeds reported in the paper.
struct StorageProfile {
  const char* name;
  /// Sequential read bandwidth in bytes/second; 0 = unthrottled.
  uint64_t bytes_per_second;
};

inline constexpr StorageProfile kPageCacheProfile{"PageCache", 0};
inline constexpr StorageProfile kSsdProfile{"SSD", 938ull * 1000 * 1000};
inline constexpr StorageProfile kHddProfile{"HDD", 158ull * 1000 * 1000};

/// Wraps any EdgeStream and accounts the virtual I/O time a storage
/// device with the given sequential bandwidth would need to deliver the
/// bytes read so far. The wrapper never sleeps: benchmarks combine the
/// measured compute time with the simulated I/O stall time
/// (max(0, io_time - compute_time overlapped) — Table V reports the
/// conservative sum, see bench/table5_storage).
///
/// The byte account is the *on-disk* cost: for disk-backed inner
/// streams (StreamIoStats::disk_backed) it forwards the inner stream's
/// disk-byte account, so a block-compressed file charges its
/// compressed size — a compressed dataset really does cross the
/// simulated device more cheaply. In-memory inner streams fall back to
/// decoded bytes (8 per edge), the cost the raw format would pay.
///
/// Every Reset() models a dropped page cache (the paper drops caches
/// between passes), so each pass pays full I/O cost.
class ThrottledEdgeStream : public EdgeStream {
 public:
  ThrottledEdgeStream(EdgeStream* inner, StorageProfile profile)
      : inner_(inner), profile_(profile) {}

  Status Reset() override {
    passes_ += 1;
    // Dropped page cache: the new pass starts its byte account at zero
    // (the cumulative account keeps running — every pass pays full
    // I/O cost, which is exactly the cache-drop model).
    decoded_bytes_this_pass_ = 0;
    return inner_->Reset();
  }

  size_t Next(Edge* out, size_t capacity) override {
    const size_t n = inner_->Next(out, capacity);
    decoded_bytes_read_ += n * sizeof(Edge);
    decoded_bytes_this_pass_ += n * sizeof(Edge);
    return n;
  }

  uint64_t NumEdgesHint() const override { return inner_->NumEdgesHint(); }

  Status Health() const override { return inner_->Health(); }

  StreamIoStats Io() const override { return inner_->Io(); }

  /// Total on-disk bytes the device must move across all passes.
  uint64_t bytes_read() const {
    const StreamIoStats io = inner_->Io();
    return io.disk_backed ? io.disk_bytes_total : decoded_bytes_read_;
  }

  /// On-disk bytes since the last Reset() (current pass only).
  uint64_t bytes_this_pass() const {
    const StreamIoStats io = inner_->Io();
    return io.disk_backed ? io.disk_bytes_this_pass
                          : decoded_bytes_this_pass_;
  }

  /// Number of Reset() calls (≈ streaming passes started).
  uint64_t passes() const { return passes_; }

  /// Seconds the profiled device would need for the observed reads.
  double SimulatedIoSeconds() const {
    if (profile_.bytes_per_second == 0) {
      return 0.0;
    }
    return static_cast<double>(bytes_read()) /
           static_cast<double>(profile_.bytes_per_second);
  }

  /// I/O time the device needs beyond the compute time it can hide
  /// behind: max(0, io_seconds - compute_seconds). A reader that
  /// overlaps I/O with compute (src/ingest's PrefetchingEdgeStream)
  /// stalls only for this remainder; Table V's conservative variant
  /// instead reports the plain sum compute + io.
  double SimulatedStallSeconds(double compute_seconds) const {
    const double stall = SimulatedIoSeconds() - compute_seconds;
    return stall > 0.0 ? stall : 0.0;
  }

  const StorageProfile& profile() const { return profile_; }

 private:
  EdgeStream* inner_;
  StorageProfile profile_;
  uint64_t decoded_bytes_read_ = 0;
  uint64_t decoded_bytes_this_pass_ = 0;
  uint64_t passes_ = 0;
};

}  // namespace tpsl

#endif  // TPSL_IO_THROTTLED_EDGE_STREAM_H_

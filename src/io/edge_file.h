#ifndef TPSL_IO_EDGE_FILE_H_
#define TPSL_IO_EDGE_FILE_H_

#include <memory>
#include <string>
#include <vector>

#include "graph/edge_stream.h"
#include "graph/types.h"
#include "util/status.h"

namespace tpsl {
namespace io {

/// The two on-disk edge formats the library reads and writes. Both
/// keep the ".bin" extension; readers tell them apart by the 8-byte
/// magic that opens a compressed file (a raw file's first 8 bytes are
/// an edge, and no realistic edge collides with the magic — it decodes
/// to first = 0x4c535054, a vertex id above 2^30, paired with a
/// specific second endpoint).
enum class EdgeFileFormat {
  kRaw = 0,               // headerless u32 pairs (the paper's format)
  kCompressedBlocks = 1,  // block-compressed (io/edge_block_format.h)
};

const char* EdgeFileFormatName(EdgeFileFormat format);

/// Determines the format of an existing file from its leading bytes.
StatusOr<EdgeFileFormat> SniffEdgeFileFormat(const std::string& path);

/// Opens `path` with the reader matching its sniffed format: a
/// BinaryFileEdgeStream for raw files, a synchronous MmapEdgeStream
/// for compressed ones. Callers that want decode-ahead or prefetching
/// wrap or open the concrete type themselves.
StatusOr<std::unique_ptr<EdgeStream>> OpenEdgeFile(const std::string& path);

/// Reads a whole file of either format into memory.
StatusOr<std::vector<Edge>> ReadEdgeFile(const std::string& path);

/// Writes `edges` to `path` in the requested format.
Status WriteEdgeFile(const std::string& path, const std::vector<Edge>& edges,
                     EdgeFileFormat format);

}  // namespace io
}  // namespace tpsl

#endif  // TPSL_IO_EDGE_FILE_H_

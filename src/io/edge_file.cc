#include "io/edge_file.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "graph/binary_edge_list.h"
#include "io/compressed_edge_writer.h"
#include "io/edge_block_format.h"
#include "io/mmap_edge_stream.h"

namespace tpsl {
namespace io {

const char* EdgeFileFormatName(EdgeFileFormat format) {
  switch (format) {
    case EdgeFileFormat::kRaw:
      return "raw";
    case EdgeFileFormat::kCompressedBlocks:
      return "blocks1";
  }
  return "unknown";
}

StatusOr<EdgeFileFormat> SniffEdgeFileFormat(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IoError("open failed: " + path + ": " +
                           std::strerror(errno));
  }
  char magic[8] = {0};
  const size_t read = std::fread(magic, 1, sizeof(magic), file);
  std::fclose(file);
  // A shorter-than-magic file cannot be compressed; let the raw reader
  // judge it (an empty raw file is legal).
  if (read == sizeof(magic) && std::memcmp(magic, kEdgeFileMagic, 8) == 0) {
    return EdgeFileFormat::kCompressedBlocks;
  }
  return EdgeFileFormat::kRaw;
}

StatusOr<std::unique_ptr<EdgeStream>> OpenEdgeFile(const std::string& path) {
  TPSL_ASSIGN_OR_RETURN(const EdgeFileFormat format,
                        SniffEdgeFileFormat(path));
  if (format == EdgeFileFormat::kCompressedBlocks) {
    MmapEdgeStream::Options options;
    options.decode_ahead = false;
    TPSL_ASSIGN_OR_RETURN(std::unique_ptr<MmapEdgeStream> stream,
                          MmapEdgeStream::Open(path, options));
    return std::unique_ptr<EdgeStream>(std::move(stream));
  }
  TPSL_ASSIGN_OR_RETURN(std::unique_ptr<BinaryFileEdgeStream> stream,
                        BinaryFileEdgeStream::Open(path));
  return std::unique_ptr<EdgeStream>(std::move(stream));
}

StatusOr<std::vector<Edge>> ReadEdgeFile(const std::string& path) {
  TPSL_ASSIGN_OR_RETURN(std::unique_ptr<EdgeStream> stream,
                        OpenEdgeFile(path));
  std::vector<Edge> edges;
  const uint64_t hint = stream->NumEdgesHint();
  edges.reserve(static_cast<size_t>(hint));
  TPSL_RETURN_IF_ERROR(
      ForEachEdge(*stream, [&edges](const Edge& e) { edges.push_back(e); }));
  return edges;
}

Status WriteEdgeFile(const std::string& path, const std::vector<Edge>& edges,
                     EdgeFileFormat format) {
  if (format == EdgeFileFormat::kRaw) {
    return WriteBinaryEdgeList(path, edges);
  }
  TPSL_ASSIGN_OR_RETURN(std::unique_ptr<CompressedEdgeWriter> writer,
                        CompressedEdgeWriter::Open(path));
  writer->Append(edges);
  return writer->Finish();
}

}  // namespace io
}  // namespace tpsl

#include "serve/traffic.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

#include "exec/thread_pool.h"
#include "graph/in_memory_edge_stream.h"
#include "serve/partition_service.h"
#include "util/random.h"
#include "util/timer.h"

namespace tpsl {
namespace serve {

StatusOr<TrafficResult> RunTraffic(const std::vector<Edge>& edges,
                                   const TrafficOptions& options) {
  if (edges.empty()) {
    return Status::InvalidArgument("traffic run needs a non-empty graph");
  }
  if (options.mutation_fraction < 0.0 || options.mutation_fraction >= 1.0) {
    return Status::InvalidArgument("mutation_fraction must be in [0, 1)");
  }
  const uint32_t readers = exec::ResolveThreadCount(options.readers);

  size_t mutation_count = static_cast<size_t>(
      static_cast<double>(edges.size()) * options.mutation_fraction);
  mutation_count = std::min(mutation_count, edges.size() - 1);
  const size_t base_count = edges.size() - mutation_count;

  PartitionService::Options service_options;
  service_options.publish_batch_edges = options.publish_batch_edges;
  service_options.rebootstrap_threshold = options.rebootstrap_threshold;
  service_options.adopt_after_publishes = options.adopt_after_publishes;
  service_options.max_readers = readers;
  PartitionService service(options.config, service_options);

  {
    InMemoryEdgeStream base_stream(
        std::vector<Edge>(edges.begin(), edges.begin() + base_count));
    TPSL_RETURN_IF_ERROR(service.Bootstrap(base_stream));
  }

  VertexId max_vertex = 0;
  for (const Edge& e : edges) {
    max_vertex = std::max(max_vertex, std::max(e.first, e.second));
  }
  const uint64_t vertex_span = static_cast<uint64_t>(max_vertex) + 1;

  // Reader fan-out on an owned pool; the background re-bootstrap rides
  // the global pool, so it never queues behind reader tasks.
  struct ReaderResult {
    uint64_t lookups = 0;
    uint64_t hits = 0;
    double seconds = 0.0;
    bool failed = false;
  };
  std::vector<ReaderResult> per_reader(readers);
  exec::ThreadPool pool(readers);
  exec::TaskGroup group(pool);
  obs::Histogram* latency = options.lookup_histogram;
  for (uint32_t r = 0; r < readers; ++r) {
    group.Submit([&service, &per_reader, r, vertex_span, latency,
                  lookups = options.lookups_per_reader,
                  seed = options.seed] {
      auto reader_or = service.CreateReader();
      if (!reader_or.ok()) {
        per_reader[r].failed = true;
        return;
      }
      std::unique_ptr<PartitionService::Reader> reader =
          std::move(*reader_or);
      SplitMix64 rng(HashCombine(seed, static_cast<uint64_t>(r) + 1));
      uint64_t hits = 0;
      WallTimer total;
      for (uint64_t i = 0; i < lookups; ++i) {
        const uint64_t pick = rng.Next();
        WallTimer op;
        if ((i & 1) == 0) {
          hits += reader->LookupVertex(
                        static_cast<VertexId>(pick % vertex_span))
                      .found;
        } else {
          const Edge probe{static_cast<VertexId>(pick % vertex_span),
                           static_cast<VertexId>((pick >> 32) % vertex_span)};
          hits += reader->RouteEdge(probe) != kInvalidPartition;
        }
        if (latency != nullptr) {
          latency->RecordNanos(static_cast<uint64_t>(op.ElapsedNanos()));
        }
      }
      per_reader[r].seconds = total.ElapsedSeconds();
      per_reader[r].lookups = lookups;
      per_reader[r].hits = hits;
    });
  }

  // Writer: play the mutation tail on the calling thread. Deterministic
  // given (edges, options) — readers never influence placement.
  TrafficResult result;
  result.base_edges = base_count;
  std::vector<Edge> removable;
  removable.reserve(edges.size());
  for (size_t i = 0; i < base_count; ++i) {
    if (edges[i].first != edges[i].second) {
      removable.push_back(edges[i]);
    }
  }
  SplitMix64 removal_rng(HashCombine(options.seed, uint64_t{0xD1E}));
  Status writer_status = Status::OK();
  WallTimer writer_timer;
  for (size_t i = 0; i < mutation_count; ++i) {
    const bool remove = options.removal_interval > 0 &&
                        (i + 1) % options.removal_interval == 0 &&
                        !removable.empty();
    if (remove) {
      const size_t pick = static_cast<size_t>(
          removal_rng.NextBounded(removable.size()));
      const Edge victim = removable[pick];
      removable[pick] = removable.back();
      removable.pop_back();
      writer_status = service.RemoveEdge(victim);
      if (!writer_status.ok()) {
        break;
      }
      ++result.removals;
    } else {
      const Edge& e = edges[base_count + i];
      if (e.first == e.second) {
        ++result.skipped_mutations;
        continue;
      }
      StatusOr<PartitionId> placed = service.AddEdge(e);
      if (!placed.ok()) {
        writer_status = placed.status();
        break;
      }
      removable.push_back(e);
      ++result.adds;
    }
  }
  if (writer_status.ok()) {
    writer_status = service.Flush();
  }
  result.writer_seconds = writer_timer.ElapsedSeconds();

  group.Wait();
  TPSL_RETURN_IF_ERROR(writer_status);
  for (uint32_t r = 0; r < readers; ++r) {
    if (per_reader[r].failed) {
      return Status::Internal("reader failed to acquire a slot");
    }
    result.lookups += per_reader[r].lookups;
    result.lookup_hits += per_reader[r].hits;
    result.reader_seconds =
        std::max(result.reader_seconds, per_reader[r].seconds);
  }
  if (result.reader_seconds > 0.0) {
    result.lookup_qps =
        static_cast<double>(result.lookups) / result.reader_seconds;
  }
  const uint64_t mutations = result.adds + result.removals;
  if (result.writer_seconds > 0.0 && mutations > 0) {
    result.mutation_qps =
        static_cast<double>(mutations) / result.writer_seconds;
  }

  const PartitionService::Stats stats = service.GetStats();
  result.live_edges = stats.live_edges;
  result.epochs_published = stats.epochs_published;
  result.rebootstraps = stats.rebootstraps;
  result.replication_factor = stats.replication_factor;
  result.staleness_ratio = stats.staleness_ratio;
  result.state_bytes = stats.state_bytes;
  if (stats.live_edges > 0) {
    result.measured_alpha =
        static_cast<double>(stats.max_load) *
        static_cast<double>(options.config.num_partitions) /
        static_cast<double>(stats.live_edges);
  }
  return result;
}

}  // namespace serve
}  // namespace tpsl

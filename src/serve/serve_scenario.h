#ifndef TPSL_SERVE_SERVE_SCENARIO_H_
#define TPSL_SERVE_SERVE_SCENARIO_H_

#include "benchkit/record.h"
#include "benchkit/runner.h"
#include "benchkit/scenario.h"
#include "util/status.h"

namespace tpsl {
namespace serve {

/// Runs one ScenarioKind::kServe scenario: bootstrap a PartitionService
/// on the pinned dataset, then `scenario.threads` reader threads issue
/// sustained lookups while one writer plays the mutation tail (epoch
/// publishes + a deterministic re-bootstrap mid-run).
///
/// Record metrics: deterministic placement-side values (num_edges,
/// live_edges, replication_factor, measured_alpha, state_bytes,
/// epochs_published, rebootstraps, lookups, mutations — identical
/// across repeats, verified) from the first repeat, and wall-clock
/// values (seconds, lookup_qps, mutation_qps, lookup_p50_seconds /
/// lookup_p99_seconds from the obs "serve.lookup_seconds" histogram)
/// from the best-QPS repeat.
StatusOr<benchkit::BenchRecord> RunServeScenario(
    const benchkit::Scenario& scenario,
    const benchkit::RunScenarioOptions& options = {});

}  // namespace serve
}  // namespace tpsl

#endif  // TPSL_SERVE_SERVE_SCENARIO_H_

#include "serve/serve_scenario.h"

#include <algorithm>
#include <vector>

#include "benchkit/runner.h"
#include "exec/thread_pool.h"
#include "graph/datasets.h"
#include "graph/types.h"
#include "obs/metrics.h"
#include "serve/traffic.h"
#include "util/memory.h"

namespace tpsl {
namespace serve {
namespace {

/// Smoke-run shrink for the per-reader lookup count, mirroring the
/// micro-kernel ScaleOps convention (dataset shrink comes from
/// extra_scale_shift through LoadDataset; the lookup budget follows).
uint64_t ScaleLookups(uint64_t base, int extra_shift) {
  if (extra_shift <= 0) {
    return base;
  }
  const uint64_t scaled = base >> std::min(extra_shift, 16);
  return std::max<uint64_t>(scaled, 1024);
}

bool DeterministicFieldsMatch(const TrafficResult& a, const TrafficResult& b) {
  return a.adds == b.adds && a.removals == b.removals &&
         a.live_edges == b.live_edges &&
         a.epochs_published == b.epochs_published &&
         a.rebootstraps == b.rebootstraps && a.lookups == b.lookups &&
         a.replication_factor == b.replication_factor &&
         a.measured_alpha == b.measured_alpha;
}

}  // namespace

StatusOr<benchkit::BenchRecord> RunServeScenario(
    const benchkit::Scenario& scenario,
    const benchkit::RunScenarioOptions& options) {
  if (scenario.kind != benchkit::ScenarioKind::kServe) {
    return Status::FailedPrecondition("scenario '" + scenario.name +
                                      "' is not a serve scenario");
  }
  const int shift = scenario.scale_shift + options.extra_scale_shift;
  ResetPeakRss();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  registry.Reset();
  TPSL_ASSIGN_OR_RETURN(const std::vector<Edge> edges,
                        LoadDataset(scenario.dataset, shift));
  const uint32_t readers = exec::ResolveThreadCount(
      options.threads_override != 0 ? options.threads_override
                                    : scenario.threads);

  TrafficOptions traffic;
  traffic.config.num_partitions = scenario.k;
  traffic.config.seed = scenario.seed;
  traffic.config.exec.threads = 1;  // the writer path is sequential
  traffic.readers = readers;
  traffic.lookups_per_reader =
      ScaleLookups(uint64_t{1} << 18, options.extra_scale_shift);
  traffic.mutation_fraction = 0.2;
  traffic.removal_interval = 8;
  traffic.publish_batch_edges = 256;
  // Low enough that the 20% mutation tail crosses it mid-run (so every
  // baseline exercises a live re-bootstrap), and adoption is pinned a
  // fixed publish count after the fork to keep placements exact.
  traffic.rebootstrap_threshold = 0.1;
  traffic.adopt_after_publishes = 4;
  traffic.seed = scenario.seed;
  obs::Histogram* latency = registry.GetHistogram("serve.lookup_seconds");
  traffic.lookup_histogram = latency;

  TrafficResult first;
  TrafficResult best;
  obs::Histogram::Summary best_latency;
  const int repeats = std::max(options.repeats, 1);
  for (int repeat = 0; repeat < repeats; ++repeat) {
    latency->Reset();  // percentiles are per-repeat, not cumulative
    TPSL_ASSIGN_OR_RETURN(const TrafficResult result,
                          RunTraffic(edges, traffic));
    const obs::Histogram::Summary summary = latency->Summarize();
    if (repeat == 0) {
      first = result;
      best = result;
      best_latency = summary;
    } else {
      if (!DeterministicFieldsMatch(first, result)) {
        return Status::Internal("serve scenario '" + scenario.name +
                                "' nondeterministic across repeats");
      }
      if (result.lookup_qps > best.lookup_qps) {
        best = result;
        best_latency = summary;
      }
    }
  }

  benchkit::BenchRecord record;
  record.scenario = scenario.name;
  record.partitioner = scenario.partitioner;
  record.dataset = scenario.dataset;
  record.k = scenario.k;
  record.scale_shift = shift;
  record.seed = scenario.seed;
  record.threads = readers;
  record.SetMetric("seconds",
                   std::max(best.reader_seconds, best.writer_seconds));
  record.SetMetric("num_edges", static_cast<double>(edges.size()));
  record.SetMetric("live_edges", static_cast<double>(first.live_edges));
  record.SetMetric("replication_factor", first.replication_factor);
  record.SetMetric("measured_alpha", first.measured_alpha);
  record.SetMetric("state_bytes", static_cast<double>(first.state_bytes));
  record.SetMetric("lookup_qps", best.lookup_qps);
  record.SetMetric("mutation_qps", best.mutation_qps);
  record.SetMetric("lookup_p50_seconds", best_latency.p50);
  record.SetMetric("lookup_p99_seconds", best_latency.p99);
  record.SetMetric("epochs_published",
                   static_cast<double>(first.epochs_published));
  record.SetMetric("rebootstraps", static_cast<double>(first.rebootstraps));
  record.SetMetric("lookups", static_cast<double>(first.lookups));
  record.SetMetric("mutations",
                   static_cast<double>(first.adds + first.removals));
  record.SetMetric("peak_rss_bytes", static_cast<double>(PeakRssBytes()));
  record.SetMetric("phase_seconds/readers", best.reader_seconds);
  record.SetMetric("phase_seconds/writer", best.writer_seconds);
  benchkit::AttachObsMetrics(&record);
  benchkit::AttachHostMetrics(&record);
  return record;
}

}  // namespace serve
}  // namespace tpsl

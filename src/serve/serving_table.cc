#include "serve/serving_table.h"

#include <algorithm>
#include <bit>

#include "util/random.h"

namespace tpsl {
namespace serve {
namespace {

uint64_t EdgeRouteKey(const Edge& e) {
  const VertexId lo = e.first < e.second ? e.first : e.second;
  const VertexId hi = e.first < e.second ? e.second : e.first;
  return (static_cast<uint64_t>(lo) << 32) | hi;
}

PartitionId HashRoute(uint64_t seed, const Edge& e, uint32_t k) {
  return static_cast<PartitionId>(Mix64(HashCombine(seed, EdgeRouteKey(e))) %
                                  k);
}

/// Shared routing decision once both endpoints' lookups are known.
/// `common` is the lowest-id partition holding both endpoints, or
/// kInvalidPartition.
PartitionId RouteFromLookups(const VertexLookup& a, const VertexLookup& b,
                             PartitionId common, const Edge& e, uint64_t seed,
                             uint32_t k) {
  if (a.found && b.found) {
    if (common != kInvalidPartition) {
      return common;
    }
    if (a.replica_count != b.replica_count) {
      return a.replica_count < b.replica_count ? a.primary : b.primary;
    }
    return e.first <= e.second ? a.primary : b.primary;
  }
  if (a.found) {
    return a.primary;
  }
  if (b.found) {
    return b.primary;
  }
  return HashRoute(seed, e, k);
}

void WriteRowFromState(uint64_t* row, uint32_t words_per_row,
                       const ReplicationTable& replicas, VertexId v,
                       uint32_t k) {
  for (uint32_t w = 0; w < words_per_row; ++w) {
    row[w] = 0;
  }
  if (v >= replicas.num_vertices() || replicas.ReplicaCount(v) == 0) {
    return;
  }
  for (PartitionId p = 0; p < k; ++p) {
    if (replicas.Test(v, p)) {
      row[p >> 6] |= uint64_t{1} << (p & 63);
    }
  }
}

}  // namespace

ServingTable::ServingTable(uint64_t epoch, VertexId num_vertices,
                           uint32_t num_partitions, uint64_t seed)
    : epoch_(epoch),
      num_vertices_(num_vertices),
      k_(num_partitions),
      words_per_row_((num_partitions + 63) / 64),
      seed_(seed) {}

VertexLookup ServingTable::LookupVertex(VertexId v) const {
  VertexLookup result;
  if (v >= num_vertices_) {
    return result;
  }
  const uint64_t* row = Row(v);
  for (uint32_t w = 0; w < words_per_row_; ++w) {
    const uint64_t word = row[w];
    if (word == 0) {
      continue;
    }
    if (result.replica_count == 0) {
      result.primary = static_cast<PartitionId>(
          w * 64 + static_cast<uint32_t>(std::countr_zero(word)));
    }
    result.replica_count += static_cast<uint32_t>(std::popcount(word));
  }
  result.found = result.replica_count > 0;
  return result;
}

bool ServingTable::TestReplica(VertexId v, PartitionId p) const {
  if (v >= num_vertices_ || p >= k_) {
    return false;
  }
  return (Row(v)[p >> 6] >> (p & 63)) & 1;
}

PartitionId ServingTable::RouteEdge(const Edge& e) const {
  const VertexLookup a = LookupVertex(e.first);
  const VertexLookup b = LookupVertex(e.second);
  PartitionId common = kInvalidPartition;
  if (a.found && b.found) {
    const uint64_t* ra = Row(e.first);
    const uint64_t* rb = Row(e.second);
    for (uint32_t w = 0; w < words_per_row_; ++w) {
      const uint64_t both = ra[w] & rb[w];
      if (both != 0) {
        common = static_cast<PartitionId>(
            w * 64 + static_cast<uint32_t>(std::countr_zero(both)));
        break;
      }
    }
  }
  return RouteFromLookups(a, b, common, e, seed_, k_);
}

uint64_t ServingTable::HeapBytes() const {
  uint64_t bytes = loads_.capacity() * sizeof(uint64_t) +
                   chunks_.capacity() * sizeof(chunks_[0]);
  for (const auto& chunk : chunks_) {
    bytes += sizeof(ServingChunk) + chunk->words.capacity() * sizeof(uint64_t);
  }
  return bytes;
}

std::shared_ptr<const ServingTable> BuildServingTable(
    const IncrementalPartitioner& state, uint64_t epoch) {
  const ReplicationTable* replicas = state.replicas();
  const VertexId n = replicas == nullptr ? 0 : replicas->num_vertices();
  const uint32_t k = state.config().num_partitions;
  auto table = std::shared_ptr<ServingTable>(
      new ServingTable(epoch, n, k, state.config().seed));
  table->loads_ = state.loads();
  table->live_edges_ = state.num_edges();
  const size_t num_chunks =
      (static_cast<size_t>(n) + kServingChunkVertices - 1) >>
      kServingChunkShift;
  table->chunks_.reserve(num_chunks);
  for (size_t c = 0; c < num_chunks; ++c) {
    auto chunk = std::make_shared<ServingChunk>(table->words_per_row_);
    const VertexId base = static_cast<VertexId>(c << kServingChunkShift);
    const VertexId end =
        static_cast<VertexId>(std::min<uint64_t>(base + kServingChunkVertices,
                                                 n));
    for (VertexId v = base; v < end; ++v) {
      if (replicas->ReplicaCount(v) == 0) {
        continue;  // row is already zero
      }
      WriteRowFromState(chunk->words.data() +
                            static_cast<size_t>(v - base) *
                                table->words_per_row_,
                        table->words_per_row_, *replicas, v, k);
    }
    table->chunks_.push_back(std::move(chunk));
  }
  return table;
}

std::shared_ptr<const ServingTable> PatchServingTable(
    const std::shared_ptr<const ServingTable>& prev,
    const IncrementalPartitioner& state,
    const std::vector<VertexId>& dirty_vertices, uint64_t epoch) {
  const ReplicationTable* replicas = state.replicas();
  const VertexId n = replicas == nullptr ? 0 : replicas->num_vertices();
  const uint32_t k = state.config().num_partitions;
  auto table = std::shared_ptr<ServingTable>(
      new ServingTable(epoch, n, k, prev->seed_));
  table->loads_ = state.loads();
  table->live_edges_ = state.num_edges();
  const size_t num_chunks =
      (static_cast<size_t>(n) + kServingChunkVertices - 1) >>
      kServingChunkShift;
  const size_t shared_chunks = std::min(num_chunks, prev->chunks_.size());
  table->chunks_.reserve(num_chunks);
  table->chunks_.assign(prev->chunks_.begin(),
                        prev->chunks_.begin() + shared_chunks);
  // Vertex growth: fresh all-zero chunks (writable in place below).
  for (size_t c = shared_chunks; c < num_chunks; ++c) {
    table->chunks_.push_back(
        std::make_shared<ServingChunk>(table->words_per_row_));
  }
  size_t cloned_chunk = num_chunks;  // sentinel: nothing cloned yet
  for (const VertexId v : dirty_vertices) {
    const size_t c = v >> kServingChunkShift;
    ServingChunk* writable;
    if (c >= shared_chunks) {
      // Freshly appended chunk — ours alone, write directly.
      writable = const_cast<ServingChunk*>(table->chunks_[c].get());
    } else {
      if (c != cloned_chunk) {
        table->chunks_[c] = std::make_shared<ServingChunk>(*table->chunks_[c]);
        cloned_chunk = c;
      }
      writable = const_cast<ServingChunk*>(table->chunks_[c].get());
    }
    WriteRowFromState(writable->words.data() +
                          static_cast<size_t>(v & (kServingChunkVertices - 1)) *
                              table->words_per_row_,
                      table->words_per_row_, *replicas, v, k);
  }
  return table;
}

VertexLookup OracleLookupVertex(const ReplicationTable& replicas, VertexId v) {
  VertexLookup result;
  if (v >= replicas.num_vertices()) {
    return result;
  }
  for (PartitionId p = 0; p < replicas.num_partitions(); ++p) {
    if (replicas.Test(v, p)) {
      if (result.replica_count == 0) {
        result.primary = p;
      }
      ++result.replica_count;
    }
  }
  result.found = result.replica_count > 0;
  return result;
}

PartitionId OracleRouteEdge(const ReplicationTable& replicas, const Edge& e,
                            uint64_t seed) {
  const VertexLookup a = OracleLookupVertex(replicas, e.first);
  const VertexLookup b = OracleLookupVertex(replicas, e.second);
  PartitionId common = kInvalidPartition;
  if (a.found && b.found) {
    for (PartitionId p = 0; p < replicas.num_partitions(); ++p) {
      if (replicas.Test(e.first, p) && replicas.Test(e.second, p)) {
        common = p;
        break;
      }
    }
  }
  return RouteFromLookups(a, b, common, e, seed, replicas.num_partitions());
}

}  // namespace serve
}  // namespace tpsl

#ifndef TPSL_SERVE_SERVING_TABLE_H_
#define TPSL_SERVE_SERVING_TABLE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "dynamic/incremental_partitioner.h"
#include "graph/types.h"
#include "partition/replication_table.h"

namespace tpsl {
namespace serve {

/// The vertex space is split into fixed chunks so an epoch publish can
/// clone only the chunks a mutation batch dirtied and share the rest
/// with the previous snapshot (copy-on-write). 4096 rows keeps a k<=64
/// chunk at 32 KiB — cheap to clone, coarse enough that a 256-edge
/// batch rarely touches more than a handful.
inline constexpr uint32_t kServingChunkShift = 12;
inline constexpr uint32_t kServingChunkVertices = 1u << kServingChunkShift;

/// One chunk of vertex->partition-set rows: kServingChunkVertices rows
/// of words_per_row 64-bit words each, row-major. Immutable once its
/// owning ServingTable is published.
struct ServingChunk {
  explicit ServingChunk(uint32_t words_per_row)
      : words(static_cast<size_t>(kServingChunkVertices) * words_per_row, 0) {}
  std::vector<uint64_t> words;
};

struct VertexLookup {
  bool found = false;           // vertex has at least one replica
  uint32_t replica_count = 0;   // popcount of the partition set
  PartitionId primary = kInvalidPartition;  // lowest-id replica partition
};

/// Immutable, flat, read-optimized snapshot of "which partitions hold
/// vertex v" plus an edge-routing rule over it. Built by the
/// PartitionService writer from IncrementalPartitioner state and
/// published behind an atomic epoch pointer; readers touch nothing but
/// plain loads over const data, so lookups are wait-free.
class ServingTable {
 public:
  uint64_t epoch() const { return epoch_; }
  VertexId num_vertices() const { return num_vertices_; }
  uint32_t num_partitions() const { return k_; }
  uint64_t live_edges() const { return live_edges_; }
  const std::vector<uint64_t>& loads() const { return loads_; }

  VertexLookup LookupVertex(VertexId v) const;

  bool TestReplica(VertexId v, PartitionId p) const;

  /// Routes an edge to the partition that should serve it:
  ///  * both endpoints known with a common replica partition -> the
  ///    lowest-id common partition (the edge is local there),
  ///  * both known but disjoint -> the primary of the endpoint with
  ///    fewer replicas (cheaper side to extend; ties break on the
  ///    lower vertex id),
  ///  * one known -> that endpoint's primary,
  ///  * neither known -> seeded hash of the (min,max) vertex pair.
  /// Deterministic for a given snapshot; OracleRouteEdge() implements
  /// the identical rule over live ReplicationTable state.
  PartitionId RouteEdge(const Edge& e) const;

  /// Logical heap size of this snapshot (chunks counted in full even
  /// when shared with other epochs, i.e. the cost of holding this
  /// table alone).
  uint64_t HeapBytes() const;

 private:
  ServingTable(uint64_t epoch, VertexId num_vertices, uint32_t num_partitions,
               uint64_t seed);

  const uint64_t* Row(VertexId v) const {
    return chunks_[v >> kServingChunkShift]->words.data() +
           static_cast<size_t>(v & (kServingChunkVertices - 1)) *
               words_per_row_;
  }

  friend std::shared_ptr<const ServingTable> BuildServingTable(
      const IncrementalPartitioner& state, uint64_t epoch);
  friend std::shared_ptr<const ServingTable> PatchServingTable(
      const std::shared_ptr<const ServingTable>& prev,
      const IncrementalPartitioner& state,
      const std::vector<VertexId>& dirty_vertices, uint64_t epoch);

  uint64_t epoch_ = 0;
  VertexId num_vertices_ = 0;
  uint32_t k_ = 0;
  uint32_t words_per_row_ = 0;
  uint64_t seed_ = 0;
  uint64_t live_edges_ = 0;
  std::vector<uint64_t> loads_;
  std::vector<std::shared_ptr<const ServingChunk>> chunks_;
};

/// Full rebuild of a snapshot from partitioner state (bootstrap and
/// re-bootstrap adoption). O(|V| * k / 64).
std::shared_ptr<const ServingTable> BuildServingTable(
    const IncrementalPartitioner& state, uint64_t epoch);

/// Delta-patch: clones only the chunks containing `dirty_vertices`
/// (must be sorted and deduplicated), rewrites those rows from `state`,
/// and shares every clean chunk with `prev`. Always refreshes loads and
/// the live edge count. O(dirty chunks * chunk size).
std::shared_ptr<const ServingTable> PatchServingTable(
    const std::shared_ptr<const ServingTable>& prev,
    const IncrementalPartitioner& state,
    const std::vector<VertexId>& dirty_vertices, uint64_t epoch);

/// Reference implementations of the lookup/routing rules over live
/// ReplicationTable state — the oracle the property tests compare
/// ServingTable snapshots against.
VertexLookup OracleLookupVertex(const ReplicationTable& replicas, VertexId v);
PartitionId OracleRouteEdge(const ReplicationTable& replicas, const Edge& e,
                            uint64_t seed);

}  // namespace serve
}  // namespace tpsl

#endif  // TPSL_SERVE_SERVING_TABLE_H_

#ifndef TPSL_SERVE_TRAFFIC_H_
#define TPSL_SERVE_TRAFFIC_H_

#include <cstdint>
#include <vector>

#include "graph/types.h"
#include "obs/metrics.h"
#include "partition/partitioner.h"
#include "util/status.h"

namespace tpsl {
namespace serve {

/// One sustained serving-traffic run: N reader threads issue lookups
/// against a PartitionService while the calling thread plays a live
/// add/remove stream carved from the tail of the input graph.
struct TrafficOptions {
  PartitionConfig config;

  /// Reader threads (exec::ResolveThreadCount semantics; 0 = hardware).
  uint32_t readers = 4;

  /// Lookups each reader issues (alternating vertex lookups and edge
  /// routes over a seeded key stream).
  uint64_t lookups_per_reader = uint64_t{1} << 18;

  /// Fraction of the input edges held back from the bootstrap and fed
  /// through AddEdge() as the live stream.
  double mutation_fraction = 0.2;

  /// Every Nth mutation removes a random live edge instead of adding
  /// one (0 disables removals).
  uint32_t removal_interval = 8;

  /// Forwarded to PartitionService::Options.
  uint32_t publish_batch_edges = 256;
  double rebootstrap_threshold = 0.5;
  uint32_t adopt_after_publishes = 4;

  /// Seeds the reader key streams and the removal picker; independent
  /// of config.seed (which drives placement).
  uint64_t seed = 42;

  /// Per-lookup latency sink (null = skip per-op timing).
  obs::Histogram* lookup_histogram = nullptr;
};

/// Placement-side fields (mutations, live_edges, epochs_published,
/// rebootstraps, replication_factor, measured_alpha, lookups) are
/// deterministic for a given input + options; QPS, seconds, and
/// latency percentiles are wall-clock measurements.
struct TrafficResult {
  uint64_t base_edges = 0;
  uint64_t adds = 0;
  uint64_t removals = 0;
  uint64_t skipped_mutations = 0;  // self-loops in the mutation tail
  uint64_t lookups = 0;
  uint64_t lookup_hits = 0;  // timing-dependent: do not gate
  double reader_seconds = 0.0;  // slowest reader's wall time
  double writer_seconds = 0.0;  // mutation stream + final Flush()
  double lookup_qps = 0.0;
  double mutation_qps = 0.0;
  uint64_t live_edges = 0;
  uint64_t epochs_published = 0;
  uint64_t rebootstraps = 0;
  double replication_factor = 0.0;
  double measured_alpha = 0.0;
  double staleness_ratio = 0.0;
  uint64_t state_bytes = 0;
};

StatusOr<TrafficResult> RunTraffic(const std::vector<Edge>& edges,
                                   const TrafficOptions& options);

}  // namespace serve
}  // namespace tpsl

#endif  // TPSL_SERVE_TRAFFIC_H_

#include "serve/partition_service.h"

#include <algorithm>
#include <utility>

#include "graph/in_memory_edge_stream.h"
#include "partition/assignment_sink.h"
#include "util/timer.h"

namespace tpsl {
namespace serve {

/// Records every bootstrap placement into a ledger (edge -> partition
/// stack, LIFO so duplicate-edge removal is deterministic) and, when
/// given one, an ordered edge log.
class PartitionService::LedgerSink : public AssignmentSink {
 public:
  LedgerSink(std::unordered_map<Edge, std::vector<PartitionId>>* placements,
             std::vector<Edge>* edge_log)
      : placements_(placements), edge_log_(edge_log) {}

  void Assign(const Edge& edge, PartitionId partition) override {
    (*placements_)[edge].push_back(partition);
    if (edge_log_ != nullptr) {
      edge_log_->push_back(edge);
    }
  }

 private:
  std::unordered_map<Edge, std::vector<PartitionId>>* placements_;
  std::vector<Edge>* edge_log_;
};

PartitionService::PartitionService(const PartitionConfig& config,
                                   Options options)
    : config_(config), options_(options) {
  if (options_.max_readers == 0) {
    options_.max_readers = 1;
  }
  if (options_.publish_batch_edges == 0) {
    options_.publish_batch_edges = 1;
  }
  partitioner_ =
      std::make_unique<IncrementalPartitioner>(config_, options_.partitioner);
  slots_ = std::make_unique<ReaderSlot[]>(options_.max_readers);
  slot_used_.assign(options_.max_readers, false);

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  lookups_counter_ = registry.GetCounter("serve.lookups");
  mutations_counter_ = registry.GetCounter("serve.mutations");
  publishes_counter_ = registry.GetCounter("serve.publishes");
  rebootstraps_counter_ = registry.GetCounter("serve.rebootstraps");
  mutation_hist_ = registry.GetHistogram("serve.mutation_seconds");
  publish_hist_ = registry.GetHistogram("serve.publish_seconds");
  rebootstrap_hist_ = registry.GetHistogram("serve.rebootstrap_seconds");
  epoch_gauge_ = registry.GetGauge("serve.epoch");
  epoch_lag_gauge_ = registry.GetGauge("serve.epoch_lag");
  snapshot_bytes_gauge_ = registry.GetGauge("serve.snapshot_bytes");
  retired_snapshots_gauge_ = registry.GetGauge("serve.retired_snapshots");
  staleness_gauge_ = registry.GetGauge("serve.staleness_ratio");
  live_edges_gauge_ = registry.GetGauge("serve.live_edges");
}

PartitionService::~PartitionService() {
  // Drain an in-flight re-bootstrap: the job owns copies of everything
  // it touches, but letting it finish keeps teardown ordered and the
  // pool free of work referencing freed obs handles. Never adopt here.
  std::shared_ptr<RebootstrapJob> job;
  {
    std::lock_guard<std::mutex> lock(writer_mutex_);
    job = job_;
  }
  if (job != nullptr) {
    std::unique_lock<std::mutex> jl(job->mutex);
    job->done_cv.wait(jl, [&] { return job->done; });
  }
}

Status PartitionService::Bootstrap(EdgeStream& base_graph) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  if (!snapshots_.empty()) {
    return Status::FailedPrecondition("Bootstrap() called twice");
  }
  LedgerSink sink(&placements_, &edge_log_);
  TPSL_RETURN_IF_ERROR(partitioner_->Bootstrap(base_graph, sink));
  ledger_entries_ = edge_log_.size();
  InstallTableLocked(BuildServingTable(*partitioner_, 1));
  ++epochs_published_;
  publishes_counter_->Increment();
  return Status::OK();
}

StatusOr<PartitionId> PartitionService::AddEdge(const Edge& edge) {
  WallTimer timer;
  std::lock_guard<std::mutex> lock(writer_mutex_);
  if (snapshots_.empty()) {
    return Status::FailedPrecondition("AddEdge() before Bootstrap()");
  }
  StatusOr<PartitionId> placed = partitioner_->AddEdge(edge);
  if (!placed.ok()) {
    return placed;
  }
  placements_[edge].push_back(*placed);
  ++ledger_entries_;
  edge_log_.push_back(edge);
  RecordMutationLocked(edge, /*add=*/true);
  dirty_.push_back(edge.first);
  dirty_.push_back(edge.second);
  TPSL_RETURN_IF_ERROR(MaybePublishLocked());
  mutation_hist_->RecordSeconds(timer.ElapsedSeconds());
  return placed;
}

Status PartitionService::RemoveEdge(const Edge& edge) {
  WallTimer timer;
  std::lock_guard<std::mutex> lock(writer_mutex_);
  if (snapshots_.empty()) {
    return Status::FailedPrecondition("RemoveEdge() before Bootstrap()");
  }
  auto it = placements_.find(edge);
  if (it == placements_.end() || it->second.empty()) {
    return Status::NotFound("edge has no live placement");
  }
  const PartitionId partition = it->second.back();
  TPSL_RETURN_IF_ERROR(partitioner_->RemoveEdge(edge, partition));
  it->second.pop_back();
  --ledger_entries_;
  if (it->second.empty()) {
    placements_.erase(it);
  }
  ++removed_[edge];
  RecordMutationLocked(edge, /*add=*/false);
  // Replica bits shrink lazily, so no serving rows are dirtied — the
  // next publish refreshes loads and the live edge count.
  TPSL_RETURN_IF_ERROR(MaybePublishLocked());
  mutation_hist_->RecordSeconds(timer.ElapsedSeconds());
  return Status::OK();
}

StatusOr<PartitionId> PartitionService::LookupPlacement(
    const Edge& edge) const {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  auto it = placements_.find(edge);
  if (it == placements_.end() || it->second.empty()) {
    return Status::NotFound("edge has no live placement");
  }
  return it->second.back();
}

Status PartitionService::Flush() {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  if (snapshots_.empty()) {
    return Status::FailedPrecondition("Flush() before Bootstrap()");
  }
  if (job_ != nullptr) {
    return AdoptRebootstrapLocked();
  }
  if (pending_mutations_ > 0 || !dirty_.empty()) {
    return PublishLocked();
  }
  return Status::OK();
}

void PartitionService::RecordMutationLocked(const Edge& edge, bool add) {
  ++mutations_;
  ++pending_mutations_;
  mutations_counter_->Increment();
  if (job_ != nullptr) {
    replay_log_.push_back(ReplayOp{add, edge});
  }
}

Status PartitionService::MaybePublishLocked() {
  if (pending_mutations_ >= options_.publish_batch_edges) {
    return PublishLocked();
  }
  return Status::OK();
}

Status PartitionService::PublishLocked() {
  WallTimer timer;
  std::sort(dirty_.begin(), dirty_.end());
  dirty_.erase(std::unique(dirty_.begin(), dirty_.end()), dirty_.end());
  InstallTableLocked(PatchServingTable(snapshots_.back(), *partitioner_,
                                       dirty_,
                                       epoch_.load(std::memory_order_relaxed) +
                                           1));
  dirty_.clear();
  pending_mutations_ = 0;
  ++epochs_published_;
  publishes_counter_->Increment();
  publish_hist_->RecordSeconds(timer.ElapsedSeconds());

  if (job_ != nullptr) {
    ++publishes_since_fork_;
    bool adopt_now;
    if (options_.adopt_after_publishes == 0) {
      std::lock_guard<std::mutex> jl(job_->mutex);
      adopt_now = job_->done;
    } else {
      adopt_now = publishes_since_fork_ >= options_.adopt_after_publishes;
    }
    if (adopt_now) {
      return AdoptRebootstrapLocked();
    }
  } else {
    MaybeForkRebootstrapLocked();
  }
  return Status::OK();
}

void PartitionService::InstallTableLocked(
    std::shared_ptr<const ServingTable> table) {
  const ServingTable* raw = table.get();
  snapshots_.push_back(std::move(table));
  // Publish order matters: the table pointer must be visible before the
  // epoch that names it, so a reader that pins epoch e always loads a
  // table with epoch >= e (all four accesses are seq_cst; see Pin()).
  table_.store(raw, std::memory_order_seq_cst);
  epoch_.store(raw->epoch(), std::memory_order_seq_cst);
  ReclaimLocked();
  epoch_gauge_->Set(static_cast<double>(raw->epoch()));
  snapshot_bytes_gauge_->Set(static_cast<double>(raw->HeapBytes()));
  live_edges_gauge_->Set(static_cast<double>(raw->live_edges()));
  staleness_gauge_->Set(partitioner_->StalenessRatio());
}

void PartitionService::ReclaimLocked() {
  const uint64_t current = epoch_.load(std::memory_order_relaxed);
  uint64_t min_pinned = kIdleSlot;
  for (uint32_t i = 0; i < options_.max_readers; ++i) {
    const uint64_t pinned = slots_[i].pinned.load(std::memory_order_seq_cst);
    min_pinned = std::min(min_pinned, pinned);
  }
  const uint64_t bound = std::min(min_pinned, current);
  // snapshots_ is epoch-ordered; drop every snapshot no pinned reader
  // can still reach. The current table (epoch == current) always stays.
  size_t keep_from = 0;
  while (keep_from < snapshots_.size() &&
         snapshots_[keep_from]->epoch() < bound) {
    ++keep_from;
  }
  if (keep_from > 0) {
    snapshots_.erase(snapshots_.begin(),
                     snapshots_.begin() + static_cast<ptrdiff_t>(keep_from));
  }
  epoch_lag_gauge_->Set(
      min_pinned == kIdleSlot || min_pinned > current
          ? 0.0
          : static_cast<double>(current - min_pinned));
  retired_snapshots_gauge_->Set(static_cast<double>(snapshots_.size() - 1));
}

void PartitionService::MaybeForkRebootstrapLocked() {
  if (options_.rebootstrap_threshold == kNeverRebootstrap ||
      partitioner_->StalenessRatio() <= options_.rebootstrap_threshold) {
    return;
  }
  auto job = std::make_shared<RebootstrapJob>();
  // Compact the live edge set in placement order: skip each logged edge
  // as many times as it was removed. Deterministic, and the compacted
  // log becomes the adopted partitioner's new edge log.
  std::unordered_map<Edge, uint32_t> remaining = removed_;
  job->base_edges.reserve(partitioner_->num_edges());
  for (const Edge& e : edge_log_) {
    auto it = remaining.find(e);
    if (it != remaining.end() && it->second > 0) {
      --it->second;
      continue;
    }
    job->base_edges.push_back(e);
  }
  publishes_since_fork_ = 0;
  replay_log_.clear();
  job_ = job;
  job_active_.store(true, std::memory_order_release);

  exec::ThreadPool* pool =
      options_.pool != nullptr ? options_.pool : &exec::ThreadPool::Global();
  const PartitionConfig config = config_;
  const IncrementalPartitioner::Options popts = options_.partitioner;
  pool->Submit([job, config, popts] {
    WallTimer timer;
    auto partitioner = std::make_unique<IncrementalPartitioner>(config, popts);
    InMemoryEdgeStream stream(job->base_edges);  // copy: the job keeps the log
    LedgerSink sink(&job->placements, /*edge_log=*/nullptr);
    Status status = partitioner->Bootstrap(stream, sink);
    std::lock_guard<std::mutex> jl(job->mutex);
    job->status = status;
    job->partitioner = std::move(partitioner);
    job->fork_to_done_seconds = timer.ElapsedSeconds();
    job->done = true;
    job->done_cv.notify_all();
  });
}

Status PartitionService::AdoptRebootstrapLocked() {
  std::shared_ptr<RebootstrapJob> job = job_;
  double fork_to_done_seconds;
  Status status;
  {
    std::unique_lock<std::mutex> jl(job->mutex);
    job->done_cv.wait(jl, [&] { return job->done; });
    status = job->status;
    fork_to_done_seconds = job->fork_to_done_seconds;
  }
  if (!status.ok()) {
    // Keep serving the old state; the drift that triggered the fork is
    // still there, so a later publish will retry.
    job_.reset();
    replay_log_.clear();
    job_active_.store(false, std::memory_order_release);
    return status;
  }

  std::unique_ptr<IncrementalPartitioner> partitioner =
      std::move(job->partitioner);
  std::unordered_map<Edge, std::vector<PartitionId>> placements =
      std::move(job->placements);
  std::vector<Edge> edge_log = std::move(job->base_edges);
  std::unordered_map<Edge, uint32_t> removed;
  uint64_t ledger_entries = edge_log.size();

  // Replay every mutation made while the bootstrap ran.
  for (const ReplayOp& op : replay_log_) {
    if (op.add) {
      StatusOr<PartitionId> placed = partitioner->AddEdge(op.edge);
      if (!placed.ok()) {
        return Status::Internal("re-bootstrap replay rejected an add: " +
                                placed.status().message());
      }
      placements[op.edge].push_back(*placed);
      ++ledger_entries;
      edge_log.push_back(op.edge);
    } else {
      auto it = placements.find(op.edge);
      if (it == placements.end() || it->second.empty()) {
        return Status::Internal("re-bootstrap replay lost a removal target");
      }
      const PartitionId partition = it->second.back();
      TPSL_RETURN_IF_ERROR(partitioner->RemoveEdge(op.edge, partition));
      it->second.pop_back();
      --ledger_entries;
      if (it->second.empty()) {
        placements.erase(it);
      }
      ++removed[op.edge];
    }
  }

  partitioner_ = std::move(partitioner);
  placements_ = std::move(placements);
  edge_log_ = std::move(edge_log);
  removed_ = std::move(removed);
  ledger_entries_ = ledger_entries;
  dirty_.clear();
  pending_mutations_ = 0;
  replay_log_.clear();
  job_.reset();
  job_active_.store(false, std::memory_order_release);
  rebootstraps_done_.fetch_add(1, std::memory_order_release);
  rebootstraps_counter_->Increment();
  rebootstrap_hist_->RecordSeconds(fork_to_done_seconds);

  // The adopted state replaces every row, so publish a full rebuild.
  InstallTableLocked(BuildServingTable(
      *partitioner_, epoch_.load(std::memory_order_relaxed) + 1));
  ++epochs_published_;
  publishes_counter_->Increment();
  return Status::OK();
}

StatusOr<std::unique_ptr<PartitionService::Reader>>
PartitionService::CreateReader() {
  if (table_.load(std::memory_order_acquire) == nullptr) {
    return Status::FailedPrecondition("CreateReader() before Bootstrap()");
  }
  std::lock_guard<std::mutex> lock(reader_mutex_);
  for (uint32_t i = 0; i < options_.max_readers; ++i) {
    if (!slot_used_[i]) {
      slot_used_[i] = true;
      slots_[i].pinned.store(kIdleSlot, std::memory_order_release);
      return std::unique_ptr<Reader>(new Reader(this, i));
    }
  }
  return Status::OutOfRange("all reader slots in use (max_readers=" +
                            std::to_string(options_.max_readers) + ")");
}

PartitionService::Reader::~Reader() {
  std::lock_guard<std::mutex> lock(service_->reader_mutex_);
  service_->slots_[slot_].pinned.store(kIdleSlot, std::memory_order_release);
  service_->slot_used_[slot_] = false;
}

const ServingTable* PartitionService::Reader::Pin() const {
  ReaderSlot& slot = service_->slots_[slot_];
  // seq_cst protocol: (1) read the epoch, (2) publish it in our slot,
  // (3) load the table. In the seq_cst total order our table load
  // follows the store of whichever table the epoch read named, so the
  // table we get is never older than the epoch we pinned; and the
  // writer's reclaim scan either sees our pin (and keeps the table) or
  // precedes it (in which case we load the even-newer current table).
  slot.pinned.store(service_->epoch_.load(std::memory_order_seq_cst),
                    std::memory_order_seq_cst);
  return service_->table_.load(std::memory_order_seq_cst);
}

void PartitionService::Reader::Unpin() const {
  service_->slots_[slot_].pinned.store(kIdleSlot, std::memory_order_release);
}

VertexLookup PartitionService::Reader::LookupVertex(VertexId v) const {
  const ServingTable* table = Pin();
  const VertexLookup result = table->LookupVertex(v);
  Unpin();
  service_->lookups_counter_->Increment();
  return result;
}

PartitionId PartitionService::Reader::RouteEdge(const Edge& e) const {
  const ServingTable* table = Pin();
  const PartitionId result = table->RouteEdge(e);
  Unpin();
  service_->lookups_counter_->Increment();
  return result;
}

uint64_t PartitionService::WriterStateBytesLocked() const {
  // Ledger cost is estimated from entry counts (exact capacities would
  // cost an O(|E|) walk per Stats call): one map node + one partition
  // slot per live placement.
  constexpr uint64_t kNodeOverhead =
      sizeof(Edge) + sizeof(std::vector<PartitionId>) + 2 * sizeof(void*);
  return partitioner_->StateBytes() + edge_log_.capacity() * sizeof(Edge) +
         ledger_entries_ * (kNodeOverhead + sizeof(PartitionId)) +
         removed_.size() * (sizeof(Edge) + sizeof(uint32_t) +
                            2 * sizeof(void*)) +
         (snapshots_.empty() ? 0 : snapshots_.back()->HeapBytes());
}

PartitionService::Stats PartitionService::GetStats() const {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  Stats stats;
  stats.epoch = epoch_.load(std::memory_order_relaxed);
  stats.epochs_published = epochs_published_;
  stats.rebootstraps = rebootstraps_done_.load(std::memory_order_relaxed);
  stats.mutations = mutations_;
  stats.live_edges = partitioner_->num_edges();
  stats.live_snapshots = snapshots_.size();
  stats.staleness_ratio = partitioner_->StalenessRatio();
  stats.replication_factor = partitioner_->CurrentReplicationFactor();
  for (const uint64_t load : partitioner_->loads()) {
    stats.max_load = std::max(stats.max_load, load);
  }
  stats.state_bytes = WriterStateBytesLocked();
  return stats;
}

std::shared_ptr<const ServingTable> PartitionService::CurrentSnapshot() const {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  return snapshots_.empty() ? nullptr : snapshots_.back();
}

}  // namespace serve
}  // namespace tpsl

#ifndef TPSL_SERVE_PARTITION_SERVICE_H_
#define TPSL_SERVE_PARTITION_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "dynamic/incremental_partitioner.h"
#include "exec/thread_pool.h"
#include "graph/edge_stream.h"
#include "graph/types.h"
#include "obs/metrics.h"
#include "serve/serving_table.h"
#include "util/status.h"

namespace tpsl {
namespace serve {

/// Long-lived serving engine over the incremental partitioner — the
/// OSRM-style split: expensive re-partitioning stays offline, cheap
/// incremental "customization" keeps the serving tables fresh.
///
/// Concurrency model (single writer, many wait-free readers):
///  * One writer thread drives Bootstrap/AddEdge/RemoveEdge/Flush.
///    Mutations batch through the IncrementalPartitioner; every
///    `publish_batch_edges` mutations the writer publishes a new
///    epoch: a delta-patched ServingTable (copy-on-write chunks) is
///    swapped in behind one atomic pointer.
///  * Readers (one Reader handle per thread) pin the current epoch in
///    a private slot, load the table pointer, and run plain loads over
///    immutable data. No locks, no reference counting on the hot path
///    — a lookup never blocks on the writer, including while a
///    re-bootstrap is in flight.
///  * Reclamation is epoch-based: the writer retires superseded
///    snapshots and frees one only after every pinned reader epoch has
///    advanced past it.
///
/// When StalenessRatio() crosses `rebootstrap_threshold`, the writer
/// forks a compacted copy of the live edge log and re-bootstraps a
/// fresh partitioner on the exec ThreadPool while continuing to serve
/// and mutate the old state; mutations made in the interim are logged
/// and replayed into the new partitioner at adoption, which publishes
/// a fully rebuilt snapshot without ever dropping reads.
class PartitionService {
 public:
  struct Options {
    /// Mutations per epoch publish. Smaller = fresher reads, more
    /// chunk cloning.
    uint32_t publish_batch_edges = 256;

    /// StalenessRatio() trigger for the offline re-bootstrap.
    /// kNeverRebootstrap disables it.
    double rebootstrap_threshold = 0.5;

    /// Adoption discipline for a finished re-bootstrap. 0 = adopt at
    /// the first publish boundary after the background job completes
    /// (timing-dependent). N > 0 = adopt exactly N publishes after the
    /// fork, blocking the writer at that boundary if the job is still
    /// running — this keeps the full placement sequence deterministic,
    /// which the gated benchmark scenarios rely on.
    uint32_t adopt_after_publishes = 0;

    /// Reader slot capacity (one slot per live Reader handle).
    uint32_t max_readers = 64;

    /// Pool for the background re-bootstrap; null = ThreadPool::Global().
    exec::ThreadPool* pool = nullptr;

    IncrementalPartitioner::Options partitioner;
  };

  static constexpr double kNeverRebootstrap =
      std::numeric_limits<double>::infinity();

  struct Stats {
    uint64_t epoch = 0;
    uint64_t epochs_published = 0;
    uint64_t rebootstraps = 0;
    uint64_t mutations = 0;
    uint64_t live_edges = 0;
    uint64_t live_snapshots = 0;  // current + retired-but-still-pinned
    double staleness_ratio = 0.0;
    double replication_factor = 0.0;
    uint64_t max_load = 0;
    uint64_t state_bytes = 0;  // writer state + current snapshot
  };

  /// Wait-free lookup handle. One Reader per thread; a Reader is NOT
  /// thread-safe, and every Reader must be destroyed before the
  /// service. Lookups are served from the most recently published
  /// epoch visible to this thread.
  class Reader {
   public:
    ~Reader();
    Reader(const Reader&) = delete;
    Reader& operator=(const Reader&) = delete;

    VertexLookup LookupVertex(VertexId v) const;
    PartitionId RouteEdge(const Edge& e) const;

   private:
    friend class PartitionService;
    Reader(PartitionService* service, uint32_t slot)
        : service_(service), slot_(slot) {}

    const ServingTable* Pin() const;
    void Unpin() const;

    PartitionService* service_;
    uint32_t slot_;
  };

  explicit PartitionService(const PartitionConfig& config)
      : PartitionService(config, Options()) {}
  PartitionService(const PartitionConfig& config, Options options);
  ~PartitionService();

  PartitionService(const PartitionService&) = delete;
  PartitionService& operator=(const PartitionService&) = delete;

  /// Runs the full 2PS-L bootstrap over the base graph, records every
  /// placement in the serving ledger, and publishes epoch 1.
  Status Bootstrap(EdgeStream& base_graph);

  /// Places one new edge and returns its partition. Self-loops and
  /// sentinel vertex ids are rejected without mutating state.
  StatusOr<PartitionId> AddEdge(const Edge& edge);

  /// Removes one live occurrence of `edge` (the most recently placed
  /// one, so duplicate edges resolve deterministically), releasing its
  /// load slot. NotFound if no live occurrence exists.
  Status RemoveEdge(const Edge& edge);

  /// Exact placement of a live edge from the writer-side ledger (the
  /// most recently placed occurrence). Unlike Reader::RouteEdge this
  /// takes the writer lock — for admin/debug paths, not the hot path.
  StatusOr<PartitionId> LookupPlacement(const Edge& edge) const;

  /// Publishes any pending mutations and, if a re-bootstrap is in
  /// flight, waits for it and adopts it. After Flush() the current
  /// snapshot reflects every mutation.
  Status Flush();

  /// Allocates a reader slot. FailedPrecondition before Bootstrap(),
  /// OutOfRange beyond max_readers.
  StatusOr<std::unique_ptr<Reader>> CreateReader();

  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }
  bool RebootstrapInFlight() const {
    return job_active_.load(std::memory_order_acquire);
  }
  uint64_t Rebootstraps() const {
    return rebootstraps_done_.load(std::memory_order_acquire);
  }

  Stats GetStats() const;

  /// Writer-state introspection for tests; callers must guarantee the
  /// writer is quiescent (no concurrent mutations).
  const IncrementalPartitioner& partitioner_for_test() const {
    return *partitioner_;
  }
  std::shared_ptr<const ServingTable> CurrentSnapshot() const;

 private:
  static constexpr uint64_t kIdleSlot = ~uint64_t{0};

  struct alignas(64) ReaderSlot {
    std::atomic<uint64_t> pinned{kIdleSlot};
  };

  struct ReplayOp {
    bool add = false;
    Edge edge;
  };

  /// Background re-bootstrap: a fresh partitioner over the compacted
  /// live edge log, built off-thread while the writer keeps serving.
  struct RebootstrapJob {
    std::mutex mutex;
    std::condition_variable done_cv;
    bool done = false;
    Status status = Status::OK();
    std::unique_ptr<IncrementalPartitioner> partitioner;
    std::vector<Edge> base_edges;  // compacted log, placement order
    std::unordered_map<Edge, std::vector<PartitionId>> placements;
    double fork_to_done_seconds = 0.0;
  };

  /// Captures (edge -> partition) during a bootstrap into a ledger +
  /// ordered edge log.
  class LedgerSink;

  void InstallTableLocked(std::shared_ptr<const ServingTable> table);
  Status MaybePublishLocked();
  Status PublishLocked();
  void ReclaimLocked();
  void MaybeForkRebootstrapLocked();
  Status AdoptRebootstrapLocked();
  void RecordMutationLocked(const Edge& edge, bool add);
  uint64_t WriterStateBytesLocked() const;

  PartitionConfig config_;
  Options options_;

  // --- Reader-visible state (atomics; see class comment for the
  // seq_cst pin/publish/scan protocol). ---
  std::atomic<uint64_t> epoch_{0};
  std::atomic<const ServingTable*> table_{nullptr};
  std::unique_ptr<ReaderSlot[]> slots_;
  std::atomic<bool> job_active_{false};
  std::atomic<uint64_t> rebootstraps_done_{0};

  mutable std::mutex reader_mutex_;  // slot allocation only
  std::vector<bool> slot_used_;

  // --- Writer state (writer_mutex_). ---
  mutable std::mutex writer_mutex_;
  std::unique_ptr<IncrementalPartitioner> partitioner_;
  std::vector<Edge> edge_log_;  // placement order, removals not erased
  std::unordered_map<Edge, uint32_t> removed_;  // edge -> removed count
  std::unordered_map<Edge, std::vector<PartitionId>> placements_;
  uint64_t ledger_entries_ = 0;  // live placements across all ledger stacks
  std::vector<VertexId> dirty_;
  uint32_t pending_mutations_ = 0;
  uint64_t mutations_ = 0;
  uint64_t epochs_published_ = 0;
  std::vector<std::shared_ptr<const ServingTable>> snapshots_;  // back=current
  std::shared_ptr<RebootstrapJob> job_;
  uint64_t publishes_since_fork_ = 0;
  std::vector<ReplayOp> replay_log_;

  // --- Cached obs handles (registry-owned; see src/obs/). ---
  obs::Counter* lookups_counter_;
  obs::Counter* mutations_counter_;
  obs::Counter* publishes_counter_;
  obs::Counter* rebootstraps_counter_;
  obs::Histogram* mutation_hist_;
  obs::Histogram* publish_hist_;
  obs::Histogram* rebootstrap_hist_;
  obs::Gauge* epoch_gauge_;
  obs::Gauge* epoch_lag_gauge_;
  obs::Gauge* snapshot_bytes_gauge_;
  obs::Gauge* retired_snapshots_gauge_;
  obs::Gauge* staleness_gauge_;
  obs::Gauge* live_edges_gauge_;
};

}  // namespace serve
}  // namespace tpsl

#endif  // TPSL_SERVE_PARTITION_SERVICE_H_

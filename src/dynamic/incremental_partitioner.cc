#include "dynamic/incremental_partitioner.h"

#include <algorithm>

#include "core/scoring.h"
#include "util/random.h"

namespace tpsl {

Status IncrementalPartitioner::Bootstrap(EdgeStream& base_graph,
                                         AssignmentSink& sink) {
  if (bootstrapped_) {
    return Status::FailedPrecondition("Bootstrap() called twice");
  }
  if (config_.num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }

  // Phase 1: degrees + streaming clustering (paper Algorithm 1).
  DegreeTable degree_table;
  TPSL_ASSIGN_OR_RETURN(degree_table, ComputeDegrees(base_graph));
  Clustering clustering;
  TPSL_ASSIGN_OR_RETURN(
      clustering, StreamingClustering(base_graph, degree_table,
                                      config_.num_partitions,
                                      options_.clustering));
  const ClusterSchedule schedule = ScheduleClustersGraham(
      clustering.cluster_volumes, config_.num_partitions);

  // Adopt the state.
  degrees_ = std::move(degree_table.degrees);
  vertex_cluster_ = std::move(clustering.vertex_cluster);
  cluster_volumes_ = std::move(clustering.cluster_volumes);
  cluster_partition_ = schedule.cluster_partition;
  replicas_ = std::make_unique<ReplicationTable>(
      static_cast<VertexId>(degrees_.size()), config_.num_partitions);
  loads_.assign(config_.num_partitions, 0);
  num_edges_ = degree_table.num_edges;
  bootstrapped_ = true;

  // Phase 2 over the base graph, placing each edge through the same
  // scoring path that AddEdge() uses. Degrees and volumes are already
  // exact from Phase 1, so no maintenance happens here.
  uint64_t replayed = 0;
  Status status = ForEachEdge(base_graph, [&](const Edge& e) {
    ++replayed;
    auto placed = PlaceEdge(e);
    sink.Assign(e, *placed);
  });
  TPSL_RETURN_IF_ERROR(status);
  if (replayed != num_edges_) {
    return Status::Internal("stream size changed between passes");
  }
  added_since_bootstrap_ = 0;
  removed_since_bootstrap_ = 0;
  return Status::OK();
}

void IncrementalPartitioner::EnsureVertex(VertexId v) {
  if (v < degrees_.size()) {
    return;
  }
  degrees_.resize(static_cast<size_t>(v) + 1, 0);
  vertex_cluster_.resize(static_cast<size_t>(v) + 1, kInvalidCluster);
  replicas_->GrowVertices(v + 1);
}

StatusOr<PartitionId> IncrementalPartitioner::PlaceEdge(const Edge& e) {
  const ClusterId c1 = vertex_cluster_[e.first];
  const ClusterId c2 = vertex_cluster_[e.second];
  const PartitionId p1 = cluster_partition_[c1];
  const PartitionId p2 = cluster_partition_[c2];
  const uint64_t capacity = Capacity();

  PartitionId target;
  if (c1 == c2 || p1 == p2) {
    target = p1;  // Pre-partitioning case of Algorithm 2.
  } else {
    const uint32_t du = degrees_[e.first];
    const uint32_t dv = degrees_[e.second];
    const uint64_t vol1 =
        options_.use_cluster_volume_term ? cluster_volumes_[c1] : 0;
    const uint64_t vol2 =
        options_.use_cluster_volume_term ? cluster_volumes_[c2] : 0;
    const double score1 = TwopsScore(*replicas_, e.first, e.second, du, dv,
                                     vol1, vol2, true, false, p1);
    const double score2 = TwopsScore(*replicas_, e.first, e.second, du, dv,
                                     vol1, vol2, false, true, p2);
    target = score1 >= score2 ? p1 : p2;
  }
  if (loads_[target] >= capacity) {
    // Overflow chain: degree-based hash, then least loaded.
    const VertexId pivot =
        degrees_[e.first] >= degrees_[e.second] ? e.first : e.second;
    target = static_cast<PartitionId>(Mix64(HashCombine(config_.seed, pivot)) %
                                      config_.num_partitions);
    if (loads_[target] >= capacity) {
      target = 0;
      for (PartitionId p = 1; p < config_.num_partitions; ++p) {
        if (loads_[p] < loads_[target]) {
          target = p;
        }
      }
    }
  }
  replicas_->Set(e.first, target);
  replicas_->Set(e.second, target);
  ++loads_[target];
  return target;
}

StatusOr<PartitionId> IncrementalPartitioner::AddEdge(const Edge& edge) {
  if (!bootstrapped_) {
    return Status::FailedPrecondition("AddEdge() before Bootstrap()");
  }
  // Validate before touching any state: a rejected edge must leave the
  // partitioner exactly as it was (callers retry or drop the edge).
  if (edge.first == edge.second) {
    return Status::InvalidArgument("self-loop edges are not placeable");
  }
  if (edge.first == kInvalidVertex || edge.second == kInvalidVertex) {
    return Status::InvalidArgument("edge endpoint is the invalid-vertex sentinel");
  }
  ++num_edges_;
  ++added_since_bootstrap_;
  EnsureVertex(std::max(edge.first, edge.second));

  // Cluster maintenance: an unseen endpoint joins the other endpoint's
  // cluster (or founds a new one); volumes track degree growth.
  for (const VertexId v : {edge.first, edge.second}) {
    if (vertex_cluster_[v] == kInvalidCluster) {
      const VertexId other = v == edge.first ? edge.second : edge.first;
      if (vertex_cluster_[other] != kInvalidCluster) {
        vertex_cluster_[v] = vertex_cluster_[other];
      } else {
        vertex_cluster_[v] = static_cast<ClusterId>(cluster_volumes_.size());
        cluster_volumes_.push_back(0);
        // New clusters go to the least-loaded partition.
        PartitionId best = 0;
        for (PartitionId p = 1; p < config_.num_partitions; ++p) {
          if (loads_[p] < loads_[best]) {
            best = p;
          }
        }
        cluster_partition_.push_back(best);
      }
    }
    ++degrees_[v];
    ++cluster_volumes_[vertex_cluster_[v]];
  }
  return PlaceEdge(edge);
}

Status IncrementalPartitioner::RemoveEdge(const Edge& edge,
                                          PartitionId partition) {
  if (!bootstrapped_) {
    return Status::FailedPrecondition("RemoveEdge() before Bootstrap()");
  }
  if (partition >= config_.num_partitions) {
    return Status::InvalidArgument("bad partition id");
  }
  if (loads_[partition] == 0 || num_edges_ == 0) {
    return Status::FailedPrecondition("partition has no edges to remove");
  }
  const VertexId hi = std::max(edge.first, edge.second);
  if (hi >= degrees_.size() || degrees_[edge.first] == 0 ||
      degrees_[edge.second] == 0) {
    return Status::InvalidArgument("edge endpoints unknown");
  }
  --loads_[partition];
  --num_edges_;
  ++removed_since_bootstrap_;
  for (const VertexId v : {edge.first, edge.second}) {
    --degrees_[v];
    if (cluster_volumes_[vertex_cluster_[v]] > 0) {
      --cluster_volumes_[vertex_cluster_[v]];
    }
  }
  // Replication bits are shrunk lazily: stale replicas only make the
  // maintained RF an upper bound (see class comment).
  return Status::OK();
}

}  // namespace tpsl

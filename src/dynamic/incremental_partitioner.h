#ifndef TPSL_DYNAMIC_INCREMENTAL_PARTITIONER_H_
#define TPSL_DYNAMIC_INCREMENTAL_PARTITIONER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/cluster_schedule.h"
#include "core/streaming_clustering.h"
#include "graph/degrees.h"
#include "graph/edge_stream.h"
#include "partition/partitioner.h"
#include "partition/replication_table.h"
#include "util/status.h"

namespace tpsl {

/// Incremental 2PS-L for dynamic graphs — the extension the paper
/// sketches in its related work ("following the approach proposed by
/// Fan et al., 2PS-L could be transformed into an incremental algorithm
/// to efficiently handle dynamic graphs ... without recomputing the
/// complete partitioning from scratch").
///
/// Bootstrap() runs the full two-phase algorithm on a base graph and
/// retains all Phase-1/Phase-2 state (degrees, vertex clustering,
/// cluster-to-partition schedule, replication table, loads). AddEdge()
/// then places arriving edges in O(1):
///  * unseen vertices join the cluster of their first neighbor,
///  * the edge is scored on the two candidate partitions with the
///    2PS-L scoring function against the live replication state,
///  * the hard cap grows with |E| (capacity = alpha * |E_now| / k).
/// RemoveEdge() releases the load slot; replication state is shrunk
/// lazily (a removal never invalidates previous placements, it only
/// loosens future capacity — the standard conservative treatment).
///
/// Quality degrades gracefully as the graph drifts from the bootstrap
/// snapshot; StalenessRatio() tells callers when a re-bootstrap pays
/// off.
class IncrementalPartitioner {
 public:
  struct Options {
    ClusteringConfig clustering;
    bool use_cluster_volume_term = true;
  };

  explicit IncrementalPartitioner(const PartitionConfig& config)
      : config_(config) {}
  IncrementalPartitioner(const PartitionConfig& config, Options options)
      : config_(config), options_(options) {}

  /// Partitions the base graph with 2PS-L, reporting assignments to
  /// `sink`, and retains the state for incremental updates.
  Status Bootstrap(EdgeStream& base_graph, AssignmentSink& sink);

  /// Places one new edge; returns its partition. Must be called after
  /// Bootstrap().
  StatusOr<PartitionId> AddEdge(const Edge& edge);

  /// Records the removal of an edge previously placed on `partition`.
  Status RemoveEdge(const Edge& edge, PartitionId partition);

  /// Current number of live edges (base + added - removed).
  uint64_t num_edges() const { return num_edges_; }

  /// Drift since Bootstrap() as a fraction of the live edge count.
  /// Both additions and removals count as drift: a removal leaves the
  /// clustering, schedule, and (lazily shrunk) replication bits stale
  /// just like an addition does, so heavy churn with a near-constant
  /// edge count still pushes this toward (and past) 1.0. Callers
  /// typically re-bootstrap above ~0.5.
  double StalenessRatio() const {
    const uint64_t drift = added_since_bootstrap_ + removed_since_bootstrap_;
    if (num_edges_ == 0) {
      return drift == 0 ? 0.0 : 1.0;
    }
    return static_cast<double>(drift) / static_cast<double>(num_edges_);
  }

  /// Live replication factor from the maintained table.
  double CurrentReplicationFactor() const {
    return replicas_ == nullptr ? 0.0 : replicas_->ReplicationFactor();
  }

  const std::vector<uint64_t>& loads() const { return loads_; }

  bool bootstrapped() const { return bootstrapped_; }
  const PartitionConfig& config() const { return config_; }

  /// Maintained replication table; null before Bootstrap(). Rows are an
  /// upper bound after removals (bits are shrunk lazily).
  const ReplicationTable* replicas() const { return replicas_.get(); }

  /// Heap footprint of the retained incremental state.
  uint64_t StateBytes() const {
    return degrees_.capacity() * sizeof(uint32_t) +
           vertex_cluster_.capacity() * sizeof(ClusterId) +
           cluster_volumes_.capacity() * sizeof(uint64_t) +
           cluster_partition_.capacity() * sizeof(PartitionId) +
           loads_.capacity() * sizeof(uint64_t) +
           (replicas_ == nullptr ? 0 : replicas_->HeapBytes());
  }

 private:
  /// Ensures vertex state arrays cover `v`, growing them for vertices
  /// first seen after Bootstrap().
  void EnsureVertex(VertexId v);

  /// Shared placement path for bootstrap and incremental edges:
  /// cluster maintenance + two-candidate scoring + overflow chain.
  StatusOr<PartitionId> PlaceEdge(const Edge& e);

  uint64_t Capacity() const {
    const double cap = config_.balance_factor *
                       static_cast<double>(num_edges_) /
                       config_.num_partitions;
    const uint64_t capacity = static_cast<uint64_t>(cap) + 1;
    const uint64_t floor_cap =
        (num_edges_ + config_.num_partitions - 1) / config_.num_partitions;
    return capacity < floor_cap ? floor_cap : capacity;
  }

  PartitionConfig config_;
  Options options_;

  bool bootstrapped_ = false;
  uint64_t num_edges_ = 0;
  uint64_t added_since_bootstrap_ = 0;
  uint64_t removed_since_bootstrap_ = 0;

  std::vector<uint32_t> degrees_;
  std::vector<ClusterId> vertex_cluster_;
  std::vector<uint64_t> cluster_volumes_;
  std::vector<PartitionId> cluster_partition_;
  std::unique_ptr<ReplicationTable> replicas_;
  std::vector<uint64_t> loads_;
};

}  // namespace tpsl

#endif  // TPSL_DYNAMIC_INCREMENTAL_PARTITIONER_H_

#ifndef TPSL_BENCHKIT_COMPARATOR_H_
#define TPSL_BENCHKIT_COMPARATOR_H_

#include <string>
#include <vector>

#include "benchkit/record.h"
#include "benchkit/scenario.h"

namespace tpsl {
namespace benchkit {

/// Per-metric acceptance band for the baseline diff.
struct ToleranceSpec {
  /// Max allowed |current - baseline| / |baseline|.
  double rel = 0.05;
  /// Absolute deviations at or below this never fail — soaks up
  /// scheduler noise on metrics measured in fractions of a second.
  double abs_floor = 0.0;
  /// One-sided gate: only movement in the bad direction can fail; the
  /// good direction is reported as improved. The bad direction is
  /// "current > baseline" for cost metrics and flips for throughput
  /// metrics (see higher_is_better).
  bool upper_only = false;
  /// Recorded and reported but never gated (peak RSS depends on the
  /// allocator and platform; per-phase times are diagnostic detail —
  /// their sum is gated via "seconds").
  bool informational = false;
  /// Direction of goodness. false (default): smaller is better, a
  /// positive delta regresses (seconds, bytes). true: larger is
  /// better, a negative delta regresses (edges_per_sec throughput).
  bool higher_is_better = false;
};

/// The tolerance policy keyed by metric name: wall time gets a wide
/// upper-only band, deterministic quality metrics a tight two-sided
/// one, per-phase/RSS metrics are informational.
ToleranceSpec DefaultToleranceFor(const std::string& metric);

/// Thread-aware policy, keyed additionally by the record's worker
/// count. With threads > 1, wall time and hot-loop throughput stay
/// gated with the same one-sided bands as threads == 1: the engine
/// clamps workers to the pool, so any machine shape runs at worst the
/// sequential algorithm, and the generous rel tolerance absorbs
/// core-count differences. The gate exists to catch a re-serialized
/// parallel path (a reintroduced sink mutex), which shows up as a
/// multiple, not a percentage. Quality metrics stay gated two-sided
/// but with a wider band (±10%) because scoring against stale shared
/// state is scheduling-dependent, not seed-deterministic.
/// threads == 1 is exactly DefaultToleranceFor(metric).
ToleranceSpec DefaultToleranceFor(const std::string& metric,
                                  uint32_t threads);

/// The metrics --check actually gates for `scenario` (its emitted
/// metrics filtered through the thread-aware tolerance policy, in
/// emission order). Drives the --list table, so the registry
/// self-documents what each scenario's gate enforces.
std::vector<std::string> GatedMetricsForScenario(const Scenario& scenario);

enum class MetricStatus {
  kOk,        // within tolerance
  kImproved,  // beyond tolerance in the good direction of an
              // upper-only metric (passes)
  kRegressed,    // beyond tolerance in the failing direction
  kDrifted,      // two-sided metric moved beyond tolerance downward —
                 // behavior changed; update the baseline if intended
  kMissing,      // baseline has the metric, current run does not
  kNewMetric,    // current run has a metric the baseline lacks (note)
};

struct MetricCheck {
  std::string metric;
  double baseline = 0.0;
  double current = 0.0;
  /// Signed (current - baseline) / |baseline|; 0 when baseline is 0
  /// and current is 0.
  double rel_delta = 0.0;
  ToleranceSpec tolerance;
  MetricStatus status = MetricStatus::kOk;
  bool failed = false;
};

struct ScenarioComparison {
  std::string scenario;
  /// True when no baseline record exists yet: reported, not failed —
  /// run --emit into the baseline directory to pin it.
  bool is_new = false;
  bool passed = true;
  std::vector<MetricCheck> checks;
  /// Config-drift and other non-metric findings.
  std::vector<std::string> notes;
};

struct ComparisonReport {
  std::vector<ScenarioComparison> scenarios;
  /// Baseline records with no matching scenario in the current run
  /// (stale file or filtered run) — warned, not failed.
  std::vector<std::string> stale_baselines;
  bool passed = true;

  /// Human-readable multi-line report, one block per scenario.
  std::string ToString() const;
};

/// Diffs one scenario's current record against its baseline.
ScenarioComparison CompareRecord(const BenchRecord& baseline,
                                 const BenchRecord& current);

/// Diffs a full run: matches records by scenario name, flags new
/// scenarios and stale baselines.
ComparisonReport CompareRecords(const std::vector<BenchRecord>& baselines,
                                const std::vector<BenchRecord>& current);

}  // namespace benchkit
}  // namespace tpsl

#endif  // TPSL_BENCHKIT_COMPARATOR_H_

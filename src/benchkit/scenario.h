#ifndef TPSL_BENCHKIT_SCENARIO_H_
#define TPSL_BENCHKIT_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

namespace tpsl {
namespace benchkit {

/// Where a scenario's edges come from and what it measures.
enum class ScenarioKind {
  /// Materialize the dataset in RAM and partition it (the original
  /// benchkit path). `dataset` names a graph/datasets Table III code.
  kInMemory,
  /// Stream the dataset from disk through the ingest layer's
  /// prefetching reader and partition out-of-core. `dataset` names an
  /// ingest catalog recipe (bench/catalog.json); scale_shift is
  /// ignored (the recipe pins the size).
  kDiskPartition,
  /// Ingest throughput: full prefetched scans of the on-disk dataset,
  /// no partitioning. `dataset` names a catalog recipe; `partitioner`
  /// and `k` are placeholders for record identity.
  kIngestScan,
  /// Kernel-level throughput of the shared partitioner-state layer
  /// (ScoreTables picks, DenseBitset word ops, ReplicationTable
  /// set/test) on synthetic seeded state — no dataset, no partitioner;
  /// `partitioner` and `dataset` are placeholders for record identity.
  /// See benchkit/micro_kernels.h.
  kMicroKernel,
  /// Observability-layer overhead: span/counter/histogram hot paths in
  /// isolation plus a real tracing-off 2PS-L run, so --check catches
  /// instrumentation that starts taxing the numbers it reports. See
  /// benchkit/obs_kernels.h.
  kMicroObs,
  /// Serving traffic: bootstrap a PartitionService on the dataset, then
  /// drive `threads` reader threads (sustained lookups, p50/p99 latency
  /// from the obs histogram) against one writer playing a live
  /// add/remove stream with epoch publishes and a deterministic
  /// re-bootstrap. See serve/serve_scenario.h.
  kServe,
};

/// One pinned benchmark configuration: a named, seeded synthetic-graph
/// × partitioner × k combination. Everything that affects the measured
/// numbers is in the struct, so a scenario re-run on the same code is
/// bit-reproducible (modulo wall time) — the property the baseline
/// gate relies on.
struct Scenario {
  std::string name;         // stable id; keys the baseline file name
  std::string description;  // one line for --list
  std::string partitioner;  // baselines/registry evaluation name
  std::string dataset;      // graph/datasets Table III code, or the
                            // ingest catalog recipe for disk kinds
  uint32_t k = 32;
  /// Dataset shrink relative to the default bench size, pinned per
  /// scenario (deliberately independent of the TPSL_SCALE_SHIFT
  /// environment knob, which would unpin the baseline).
  int scale_shift = 2;
  uint64_t seed = 42;  // PartitionConfig seed
  /// Worker threads for the run (ExecContext::threads, resolved — a
  /// pinned scenario never uses 0/hardware-concurrency, which would
  /// unpin the baseline's machine shape). 1 for sequential
  /// partitioners; the 2psl_par_* scaling scenarios pin 1/2/4.
  uint32_t threads = 1;
  ScenarioKind kind = ScenarioKind::kInMemory;
  /// Larger-tier scenarios (multi-second, out-of-core scale): run by
  /// the CI perf gate under bench_runner's --time-budget, skipped by
  /// the tier-1 --smoke sweep unless explicitly selected.
  bool large = false;
  /// kDiskPartition only: stream the assignments back to disk through
  /// the PartitionedWriter spill sink (one binary edge list per
  /// partition) — the paper's full out-of-core loop, storage to
  /// storage. Spilled files are deleted after measurement; the record
  /// carries "spill_bytes_written".
  bool spill = false;
};

/// Short label for --list output ("memory", "disk", "ingest").
const char* ScenarioKindLabel(ScenarioKind kind);

/// The pinned perf-tracking roster: 2PS-L on diverse graph families
/// plus the headline streaming and in-memory baselines, all at a
/// laptop-friendly scale (each scenario runs in well under a second in
/// a release build).
const std::vector<Scenario>& PinnedScenarios();

/// Looks up a pinned scenario by name; nullptr when unknown.
const Scenario* FindScenario(const std::string& name);

/// Pinned scenario names closest to a (misspelled) `name`, best first —
/// the "did you mean" list bench_runner prints before exiting non-zero
/// on an unknown scenario. Case-insensitive edit distance; names that
/// contain `name` as a substring rank first. Returns at most
/// `max_suggestions`, and never anything hopelessly far away.
std::vector<std::string> SuggestScenarioNames(const std::string& name,
                                              size_t max_suggestions = 3);

}  // namespace benchkit
}  // namespace tpsl

#endif  // TPSL_BENCHKIT_SCENARIO_H_

#ifndef TPSL_BENCHKIT_MEASURE_H_
#define TPSL_BENCHKIT_MEASURE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/datasets.h"
#include "graph/types.h"
#include "partition/partitioner.h"
#include "partition/runner.h"
#include "util/status.h"

namespace tpsl {
namespace benchkit {

/// All experiment binaries shrink the paper's graphs by
/// 2^TPSL_SCALE_SHIFT (environment variable) relative to the repo's
/// default benchmark size; the default keeps every binary in the
/// seconds-to-minutes range on a laptop. Malformed or out-of-range
/// values ([0, 30]) are rejected with a warning and the default is
/// used, instead of atoi-style silent truncation to 0.
int ScaleShift(int default_shift);

/// Parses a --threads flag value: an integer in [1, 1024] (0 is
/// rejected — on the CLI an explicit worker count is wanted, not the
/// 0-means-hardware sentinel). Returns false on anything else. Shared
/// by tools/bench_runner and tools/ingest so the bound and the
/// accepted syntax cannot drift apart.
bool ParseThreadCount(const char* text, uint32_t* threads);

/// One partitioning measurement: quality + run-time as the paper
/// reports them (run-time is the partitioner's own phase accounting;
/// harness overheads like metric computation are excluded).
struct Measurement {
  std::string partitioner;
  std::string dataset;
  uint32_t k = 0;
  double replication_factor = 0.0;
  double seconds = 0.0;
  double measured_alpha = 0.0;
  uint64_t state_bytes = 0;
  PartitionStats stats;
};

/// Runs `partitioner` on an in-memory edge list with full control over
/// the partitioning config (k, balance factor, seed).
StatusOr<Measurement> MeasureOnEdges(const std::string& partitioner,
                                     const std::string& dataset,
                                     const std::vector<Edge>& edges,
                                     const PartitionConfig& config);

/// Same, with the default config at `k` partitions.
StatusOr<Measurement> MeasureOnEdges(const std::string& partitioner,
                                     const std::string& dataset,
                                     const std::vector<Edge>& edges,
                                     uint32_t k);

/// Materializes the named dataset at `scale_shift` and measures.
StatusOr<Measurement> Measure(const std::string& partitioner,
                              const std::string& dataset, uint32_t k,
                              int scale_shift);

/// Prints a header like the paper's experiment tables.
void PrintHeader(const std::string& title);
void PrintRowHeader();
void PrintRow(const Measurement& m);

}  // namespace benchkit
}  // namespace tpsl

#endif  // TPSL_BENCHKIT_MEASURE_H_

#ifndef TPSL_BENCHKIT_OBS_KERNELS_H_
#define TPSL_BENCHKIT_OBS_KERNELS_H_

#include <string>
#include <vector>

#include "benchkit/record.h"
#include "benchkit/runner.h"
#include "benchkit/scenario.h"
#include "util/status.h"

namespace tpsl {
namespace benchkit {

/// The observability overhead kernels, in the order micro_obs times
/// them:
///   span_off      - TraceSpan construct/destruct with tracing off:
///                   the cost every instrumented scope pays always.
///   span_on       - full span emit into the thread ring with tracing
///                   on (clock reads + seqlock slot write).
///   counter_add   - sharded Counter::Add on the default registry.
///   hist_record   - log-bucketed Histogram::RecordNanos.
///   partition_off - a real 2PS-L run (OK graph) with tracing off:
///                   end-to-end proof the disabled layer stays at
///                   noise level on actual partitioning work.
/// The rates of span_off / counter_add / hist_record are gated by
/// --check (see DefaultToleranceFor); span_on and partition_off are
/// informational context.
const std::vector<std::string>& ObsKernelNames();

/// Runs the kernels for a kMicroObs scenario and returns the record
/// (metrics shaped like RunMicroKernels: per-kernel phase_seconds and
/// edges_per_sec, total seconds/num_edges, folded checksum_low32).
StatusOr<BenchRecord> RunObsKernels(const Scenario& scenario,
                                    const RunScenarioOptions& options);

}  // namespace benchkit
}  // namespace tpsl

#endif  // TPSL_BENCHKIT_OBS_KERNELS_H_

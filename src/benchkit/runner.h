#ifndef TPSL_BENCHKIT_RUNNER_H_
#define TPSL_BENCHKIT_RUNNER_H_

#include "benchkit/record.h"
#include "benchkit/scenario.h"
#include "util/status.h"

namespace tpsl {
namespace benchkit {

struct RunScenarioOptions {
  /// Additional dataset shrink on top of the scenario's pinned
  /// scale_shift. Used by smoke runs to finish in milliseconds; must
  /// be 0 when the result is meant to be compared against baselines.
  int extra_scale_shift = 0;
  /// Timing repetitions; "seconds" and the per-phase times report the
  /// fastest repeat (a stable lower bound, standard bench practice —
  /// scheduler noise only ever adds time). Deterministic metrics are
  /// identical across repeats and taken from the first.
  int repeats = 3;
  /// Overrides the scenario's pinned worker count (tools expose it as
  /// --threads). The emitted record carries the effective count, so a
  /// --check against baselines pinned at a different count fails as
  /// config drift instead of comparing unlike runs. 0 = scenario's.
  uint32_t threads_override = 0;
};

/// Executes one scenario: materializes its dataset, runs the
/// partitioner, and returns a record with the gated metrics
/// ("seconds", "replication_factor", "measured_alpha", "state_bytes",
/// "num_edges") plus informational ones ("peak_rss_bytes",
/// "phase_seconds/<phase>").
StatusOr<BenchRecord> RunScenario(const Scenario& scenario,
                                  const RunScenarioOptions& options = {});

/// Folds the default obs::MetricsRegistry snapshot into `record` as
/// informational "obs/<name>" metrics (histograms expand to
/// /count,/p50,/p90,/p99; zero-valued metrics are skipped). Callers
/// Reset() the registry before the measured work so the snapshot is
/// scenario-scoped.
void AttachObsMetrics(BenchRecord* record);

/// Stamps host-environment context into `record` as informational
/// metrics — currently "hw_threads", the effective
/// std::thread::hardware_concurrency of the machine that produced the
/// record. Comparing a baseline pinned on one machine against a run on
/// another is legitimate (the time gates are sized for it); this makes
/// the shape difference visible in the records instead of leaving the
/// reader to guess.
void AttachHostMetrics(BenchRecord* record);

}  // namespace benchkit
}  // namespace tpsl

#endif  // TPSL_BENCHKIT_RUNNER_H_

#include "benchkit/record.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>

namespace tpsl {
namespace benchkit {
namespace {

constexpr int kRecordVersion = 1;
constexpr char kFilePrefix[] = "BENCH_";
constexpr char kFileSuffix[] = ".json";

StatusOr<double> RequireNumber(const JsonValue& json, const char* key) {
  const JsonValue* value = json.Find(key);
  if (value == nullptr || !value->is_number()) {
    return Status::InvalidArgument(std::string("record missing numeric '") +
                                   key + "'");
  }
  return value->number_value();
}

/// An integral field within [min, max] — hand-edited baselines can
/// hold anything, and casting an unchecked double to an integer type
/// is UB out of range.
StatusOr<double> RequireIntegral(const JsonValue& json, const char* key,
                                 double min, double max) {
  TPSL_ASSIGN_OR_RETURN(const double value, RequireNumber(json, key));
  if (!(value >= min && value <= max) || value != std::floor(value)) {
    return Status::InvalidArgument(std::string("field '") + key +
                                   "' must be an integer in [" +
                                   std::to_string(min) + ", " +
                                   std::to_string(max) + "]");
  }
  return value;
}

StatusOr<std::string> RequireString(const JsonValue& json, const char* key) {
  const JsonValue* value = json.Find(key);
  if (value == nullptr || !value->is_string()) {
    return Status::InvalidArgument(std::string("record missing string '") +
                                   key + "'");
  }
  return value->string_value();
}

}  // namespace

const double* BenchRecord::FindMetric(const std::string& name) const {
  for (const auto& [metric, value] : metrics) {
    if (metric == name) {
      return &value;
    }
  }
  return nullptr;
}

void BenchRecord::SetMetric(const std::string& name, double value) {
  for (auto& [metric, existing] : metrics) {
    if (metric == name) {
      existing = value;
      return;
    }
  }
  metrics.emplace_back(name, value);
}

JsonValue BenchRecord::ToJson() const {
  JsonValue json = JsonValue::Object();
  json.Set("benchkit_version", JsonValue::Number(kRecordVersion));
  json.Set("scenario", JsonValue::String(scenario));
  json.Set("partitioner", JsonValue::String(partitioner));
  json.Set("dataset", JsonValue::String(dataset));
  json.Set("k", JsonValue::Number(k));
  json.Set("scale_shift", JsonValue::Number(scale_shift));
  json.Set("seed", JsonValue::Number(static_cast<double>(seed)));
  json.Set("threads", JsonValue::Number(threads));
  JsonValue metric_object = JsonValue::Object();
  for (const auto& [name, value] : metrics) {
    metric_object.Set(name, JsonValue::Number(value));
  }
  json.Set("metrics", std::move(metric_object));
  return json;
}

StatusOr<BenchRecord> BenchRecord::FromJson(const JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("bench record must be a JSON object");
  }
  TPSL_ASSIGN_OR_RETURN(const double version,
                        RequireNumber(json, "benchkit_version"));
  if (version != kRecordVersion) {
    return Status::InvalidArgument("unsupported benchkit_version " +
                                   std::to_string(version));
  }
  BenchRecord record;
  TPSL_ASSIGN_OR_RETURN(record.scenario, RequireString(json, "scenario"));
  TPSL_ASSIGN_OR_RETURN(record.partitioner,
                        RequireString(json, "partitioner"));
  TPSL_ASSIGN_OR_RETURN(record.dataset, RequireString(json, "dataset"));
  TPSL_ASSIGN_OR_RETURN(const double k,
                        RequireIntegral(json, "k", 0, 4294967295.0));
  record.k = static_cast<uint32_t>(k);
  TPSL_ASSIGN_OR_RETURN(const double shift,
                        RequireIntegral(json, "scale_shift", -64, 64));
  record.scale_shift = static_cast<int>(shift);
  // Seeds round-trip through a double, so the exact range is [0, 2^53].
  TPSL_ASSIGN_OR_RETURN(
      const double seed,
      RequireIntegral(json, "seed", 0, 9007199254740992.0));
  record.seed = static_cast<uint64_t>(seed);
  // Optional for backward compatibility: records pinned before the
  // execution engine have no thread dimension and were single-threaded.
  if (json.Find("threads") != nullptr) {
    TPSL_ASSIGN_OR_RETURN(const double threads,
                          RequireIntegral(json, "threads", 1, 4294967295.0));
    record.threads = static_cast<uint32_t>(threads);
  }

  const JsonValue* metric_object = json.Find("metrics");
  if (metric_object == nullptr || !metric_object->is_object()) {
    return Status::InvalidArgument("record missing 'metrics' object");
  }
  for (const auto& [name, value] : metric_object->members()) {
    if (!value.is_number()) {
      return Status::InvalidArgument("metric '" + name + "' is not numeric");
    }
    record.metrics.emplace_back(name, value.number_value());
  }
  return record;
}

std::string RecordFileName(const std::string& scenario) {
  return kFilePrefix + scenario + kFileSuffix;
}

Status WriteRecordFile(const BenchRecord& record, const std::string& path) {
  const std::string text = record.ToJson().Write() + "\n";
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::IoError("cannot open for writing: " + path);
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), file);
  const bool close_ok = std::fclose(file) == 0;
  if (written != text.size() || !close_ok) {
    return Status::IoError("short write: " + path);
  }
  return Status::OK();
}

StatusOr<BenchRecord> ReadRecordFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) {
    return Status::IoError("cannot open: " + path);
  }
  std::string text;
  char buffer[4096];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    text.append(buffer, n);
  }
  // Distinguish a read error from EOF, or a truncated read surfaces as
  // a baffling "JSON parse error" pointing at a valid file.
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    return Status::IoError("read failed: " + path);
  }
  TPSL_ASSIGN_OR_RETURN(JsonValue json, ParseJson(text));
  auto record = BenchRecord::FromJson(json);
  if (!record.ok()) {
    return Status(record.status().code(),
                  path + ": " + record.status().message());
  }
  return record;
}

StatusOr<std::vector<BenchRecord>> ReadRecordDir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    return Status::IoError("cannot read baseline directory " + dir + ": " +
                           ec.message());
  }
  std::vector<std::string> paths;
  // Advance with the error_code overload: a range-for's operator++
  // throws on iteration errors (entry vanishing mid-scan, permission
  // flips), and this function's contract is Status, not exceptions.
  for (const std::filesystem::directory_iterator end; it != end;
       it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (name.starts_with(kFilePrefix) && name.ends_with(kFileSuffix)) {
      paths.push_back(it->path().string());
    }
  }
  if (ec) {  // increment() parks the iterator at end() on error
    return Status::IoError("error scanning " + dir + ": " + ec.message());
  }
  if (paths.empty()) {
    return Status::NotFound("no BENCH_*.json records in " + dir);
  }
  std::sort(paths.begin(), paths.end());
  std::vector<BenchRecord> records;
  records.reserve(paths.size());
  for (const std::string& path : paths) {
    TPSL_ASSIGN_OR_RETURN(BenchRecord record, ReadRecordFile(path));
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace benchkit
}  // namespace tpsl

#include "benchkit/obs_kernels.h"

#include <cstdint>
#include <vector>

#include "benchkit/measure.h"
#include "benchkit/runner.h"
#include "graph/datasets.h"
#include "graph/types.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/random.h"
#include "util/timer.h"

namespace tpsl {
namespace benchkit {
namespace {

// Op counts at shift 0, sized so the whole scenario stays tens of
// milliseconds in a release build; the same ScaleOps convention as
// micro_kernels.cc (each +1 halves, floored off zero).
constexpr uint64_t kSpanOffOps = 1u << 20;
constexpr uint64_t kSpanOnOps = 1u << 16;
constexpr uint64_t kCounterOps = 1u << 20;
constexpr uint64_t kHistOps = 1u << 19;
constexpr uint64_t kMinOps = 1u << 10;
// The tracing-off partitioner run: the OK graph four shifts below the
// bench size keeps this the most expensive kernel without dominating
// the scenario.
constexpr int kPartitionShift = 4;

uint64_t ScaleOps(uint64_t base, int shift) {
  const uint64_t scaled =
      shift >= 0 ? (shift < 63 ? base >> shift : 0) : base << (-shift);
  return scaled < kMinOps ? kMinOps : scaled;
}

struct KernelResult {
  double seconds = 0.0;
  uint64_t ops = 0;
  uint64_t checksum = 0;
};

/// Disabled-span hot path: exactly the branch every instrumented scope
/// pays when tracing is off. The checksum folds the ring-write delta,
/// which must be zero — a nonzero delta means the no-op path emitted.
KernelResult SpanOff(uint64_t ops) {
  const bool was_enabled = obs::TracingEnabled();
  obs::SetTracingEnabled(false);
  const uint64_t emitted_before = obs::GetTraceStats().emitted;
  WallTimer timer;
  for (uint64_t i = 0; i < ops; ++i) {
    obs::TraceSpan span("obs.kernel_span", "obs");
  }
  const double seconds = timer.ElapsedSeconds();
  const uint64_t delta = obs::GetTraceStats().emitted - emitted_before;
  obs::SetTracingEnabled(was_enabled);
  return {seconds, ops, HashCombine(ops, delta)};
}

/// Full emit path: clock reads plus the seqlock ring-slot write. Runs
/// with tracing forced on; if this kernel enabled it (normal --check
/// runs trace nothing), its spam is dropped again afterwards so a
/// later --trace export only holds real events.
KernelResult SpanOn(uint64_t ops) {
  const bool was_enabled = obs::TracingEnabled();
  obs::SetTracingEnabled(true);
  const uint64_t emitted_before = obs::GetTraceStats().emitted;
  WallTimer timer;
  for (uint64_t i = 0; i < ops; ++i) {
    obs::TraceSpan span("obs.kernel_span", "obs");
  }
  const double seconds = timer.ElapsedSeconds();
  const uint64_t delta = obs::GetTraceStats().emitted - emitted_before;
  obs::SetTracingEnabled(was_enabled);
  if (!was_enabled) {
    obs::ResetTrace();
  }
  return {seconds, ops, HashCombine(ops, delta)};
}

/// Sharded counter increment on the default registry — the per-batch
/// accounting cost inside every scoring loop.
KernelResult CounterAdd(uint64_t ops) {
  obs::Counter* counter =
      obs::MetricsRegistry::Default().GetCounter("obs.kernel_counter");
  const uint64_t before = counter->Total();
  WallTimer timer;
  for (uint64_t i = 0; i < ops; ++i) {
    counter->Increment();
  }
  const double seconds = timer.ElapsedSeconds();
  return {seconds, ops, HashCombine(ops, counter->Total() - before)};
}

/// Log-bucketed histogram record over a seeded log-uniform nanosecond
/// workload (values pre-generated outside the timed region).
KernelResult HistRecord(uint64_t seed, uint64_t ops) {
  obs::Histogram* hist =
      obs::MetricsRegistry::Default().GetHistogram("obs.kernel_hist");
  SplitMix64 rng(seed);
  std::vector<uint64_t> values(ops);
  for (uint64_t& value : values) {
    value = rng.Next() >> (rng.Next() & 63);
  }
  const uint64_t before = hist->Summarize().count;
  WallTimer timer;
  for (uint64_t value : values) {
    hist->RecordNanos(value);
  }
  const double seconds = timer.ElapsedSeconds();
  uint64_t checksum = HashCombine(ops, hist->Summarize().count - before);
  // Fold the percentile buckets too: a broken bucket function is a
  // behavioral change even if the count survives.
  const obs::Histogram::Summary summary = hist->Summarize();
  checksum = HashCombine(
      checksum, obs::Histogram::BucketOf(
                    static_cast<uint64_t>(summary.p50 * 1e9)));
  checksum = HashCombine(
      checksum, obs::Histogram::BucketOf(
                    static_cast<uint64_t>(summary.p99 * 1e9)));
  return {seconds, ops, checksum};
}

/// End-to-end disabled-tracing proof: a real 2PS-L run on the OK
/// graph. The gate on the scenario's total "seconds" (and this
/// kernel's informational rate) catches instrumentation whose
/// disabled path stopped being free on actual partitioning work.
StatusOr<KernelResult> PartitionOff(uint32_t k, uint64_t seed, int shift) {
  const bool was_enabled = obs::TracingEnabled();
  obs::SetTracingEnabled(false);
  TPSL_ASSIGN_OR_RETURN(const std::vector<Edge> edges,
                        LoadDataset("OK", kPartitionShift + shift));
  PartitionConfig config;
  config.num_partitions = k;
  config.seed = seed;
  config.exec.threads = 1;
  TPSL_ASSIGN_OR_RETURN(const Measurement measurement,
                        MeasureOnEdges("2PS-L", "OK", edges, config));
  obs::SetTracingEnabled(was_enabled);
  KernelResult result;
  result.seconds = measurement.seconds;
  result.ops = edges.size();
  result.checksum = HashCombine(
      edges.size(),
      static_cast<uint64_t>(measurement.replication_factor * 1e9));
  return result;
}

}  // namespace

const std::vector<std::string>& ObsKernelNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "span_off", "span_on", "counter_add", "hist_record", "partition_off"};
  return *names;
}

StatusOr<BenchRecord> RunObsKernels(const Scenario& scenario,
                                    const RunScenarioOptions& options) {
  if (scenario.kind != ScenarioKind::kMicroObs) {
    return Status::FailedPrecondition("scenario '" + scenario.name +
                                      "' is not an obs micro-kernel scenario");
  }
  const int shift = options.extra_scale_shift;
  const int repeats = options.repeats > 0 ? options.repeats : 1;

  struct KernelSpec {
    const std::string& name;
    StatusOr<KernelResult> (*run)(const Scenario&, int);
  };
  const KernelSpec kernels[] = {
      {ObsKernelNames()[0],
       [](const Scenario&, int s) -> StatusOr<KernelResult> {
         return SpanOff(ScaleOps(kSpanOffOps, s));
       }},
      {ObsKernelNames()[1],
       [](const Scenario&, int s) -> StatusOr<KernelResult> {
         return SpanOn(ScaleOps(kSpanOnOps, s));
       }},
      {ObsKernelNames()[2],
       [](const Scenario&, int s) -> StatusOr<KernelResult> {
         return CounterAdd(ScaleOps(kCounterOps, s));
       }},
      {ObsKernelNames()[3],
       [](const Scenario& sc, int s) -> StatusOr<KernelResult> {
         return HistRecord(sc.seed, ScaleOps(kHistOps, s));
       }},
      {ObsKernelNames()[4],
       [](const Scenario& sc, int s) -> StatusOr<KernelResult> {
         return PartitionOff(sc.k, sc.seed, s);
       }},
  };

  BenchRecord record;
  record.scenario = scenario.name;
  record.partitioner = scenario.partitioner;
  record.dataset = scenario.dataset;
  record.k = scenario.k;
  record.scale_shift = scenario.scale_shift + shift;
  record.seed = scenario.seed;
  record.threads = 1;  // kernels are single-threaded by construction

  double total_seconds = 0.0;
  uint64_t total_ops = 0;
  uint64_t folded_checksum = 0;
  for (const KernelSpec& kernel : kernels) {
    KernelResult best;
    for (int repeat = 0; repeat < repeats; ++repeat) {
      TPSL_ASSIGN_OR_RETURN(const KernelResult result,
                            kernel.run(scenario, shift));
      if (repeat == 0) {
        best = result;
      } else if (result.checksum != best.checksum) {
        return Status::Internal("obs kernel '" + kernel.name +
                                "' is nondeterministic across repeats");
      } else if (result.seconds < best.seconds) {
        best.seconds = result.seconds;
      }
    }
    total_seconds += best.seconds;
    total_ops += best.ops;
    folded_checksum = HashCombine(folded_checksum, best.checksum);
    record.SetMetric("phase_seconds/" + kernel.name, best.seconds);
    if (best.seconds > 0.0) {
      record.SetMetric("edges_per_sec/" + kernel.name,
                       static_cast<double>(best.ops) / best.seconds);
    }
  }
  record.SetMetric("seconds", total_seconds);
  record.SetMetric("num_edges", static_cast<double>(total_ops));
  // Deterministic fold (same convention as micro_kernels): ring-write
  // deltas, counter/histogram totals and the partitioner's replication
  // factor, truncated so the double holds it exactly.
  record.SetMetric("checksum_low32",
                   static_cast<double>(folded_checksum & 0xffffffffULL));
  AttachHostMetrics(&record);
  return record;
}

}  // namespace benchkit
}  // namespace tpsl

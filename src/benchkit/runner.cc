#include "benchkit/runner.h"

#include <thread>
#include <vector>

#include "benchkit/measure.h"
#include "exec/thread_pool.h"
#include "graph/datasets.h"
#include "graph/types.h"
#include "obs/metrics.h"
#include "partition/partitioner.h"
#include "util/memory.h"

namespace tpsl {
namespace benchkit {

void AttachObsMetrics(BenchRecord* record) {
  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::Default().Snapshot();
  for (const auto& [name, value] : snapshot.counters) {
    if (value != 0) {
      record->SetMetric("obs/" + name, static_cast<double>(value));
    }
  }
  for (const auto& [name, value] : snapshot.gauges) {
    if (value != 0.0) {
      record->SetMetric("obs/" + name, value);
    }
  }
  for (const obs::MetricsSnapshot::HistogramRow& row : snapshot.histograms) {
    if (row.summary.count == 0) {
      continue;
    }
    record->SetMetric("obs/" + row.name + "/count",
                      static_cast<double>(row.summary.count));
    record->SetMetric("obs/" + row.name + "/p50", row.summary.p50);
    record->SetMetric("obs/" + row.name + "/p90", row.summary.p90);
    record->SetMetric("obs/" + row.name + "/p99", row.summary.p99);
  }
}

void AttachHostMetrics(BenchRecord* record) {
  // hardware_concurrency() may return 0 when undeterminable; report it
  // as-is (0 reads as "unknown", and the metric is informational).
  record->SetMetric(
      "hw_threads",
      static_cast<double>(std::thread::hardware_concurrency()));
}

StatusOr<BenchRecord> RunScenario(const Scenario& scenario,
                                  const RunScenarioOptions& options) {
  if (scenario.kind != ScenarioKind::kInMemory) {
    // Disk-backed kinds live in the ingest layer (which depends on
    // benchkit, not the other way around); tools/bench_runner routes
    // every kind through ingest::RunScenarioWithIngest.
    return Status::FailedPrecondition(
        "scenario '" + scenario.name +
        "' streams from disk; run it through the ingest-aware runner "
        "(ingest::RunScenarioWithIngest / tools/bench_runner)");
  }
  const int shift = scenario.scale_shift + options.extra_scale_shift;
  // Scope the RSS high-water mark to this scenario; without the reset
  // every scenario after the first would inherit the largest earlier
  // peak (the kernel counter never decreases). Where the reset is
  // unsupported the metric degrades to the lifetime peak — still a
  // valid upper bound, and it is informational, never gated.
  ResetPeakRss();
  // Scenario-scoped obs snapshot: counters/histograms accumulated here
  // are attached to the record below, so each record describes its own
  // run, not the process lifetime.
  obs::MetricsRegistry::Default().Reset();
  TPSL_ASSIGN_OR_RETURN(std::vector<Edge> edges,
                        LoadDataset(scenario.dataset, shift));
  // Resolve 0-means-hardware here, not just inside the partitioner:
  // the record's threads field is an identity dimension and FromJson
  // (rightly) rejects 0, so an unresolved count would emit a baseline
  // file the next --check cannot read back.
  const uint32_t threads = exec::ResolveThreadCount(
      options.threads_override != 0 ? options.threads_override
                                    : scenario.threads);
  PartitionConfig config;
  config.num_partitions = scenario.k;
  config.seed = scenario.seed;
  config.exec.threads = threads;
  TPSL_ASSIGN_OR_RETURN(
      Measurement m,
      MeasureOnEdges(scenario.partitioner, scenario.dataset, edges, config));
  for (int repeat = 1; repeat < options.repeats; ++repeat) {
    TPSL_ASSIGN_OR_RETURN(
        const Measurement again,
        MeasureOnEdges(scenario.partitioner, scenario.dataset, edges,
                       config));
    if (again.seconds < m.seconds) {
      m.seconds = again.seconds;
      m.stats.phase_seconds = again.stats.phase_seconds;
    }
  }

  BenchRecord record;
  record.scenario = scenario.name;
  record.partitioner = scenario.partitioner;
  record.dataset = scenario.dataset;
  record.k = scenario.k;
  record.scale_shift = shift;
  record.seed = scenario.seed;
  record.threads = threads;
  record.SetMetric("seconds", m.seconds);
  record.SetMetric("replication_factor", m.replication_factor);
  record.SetMetric("measured_alpha", m.measured_alpha);
  record.SetMetric("state_bytes", static_cast<double>(m.state_bytes));
  record.SetMetric("num_edges", static_cast<double>(edges.size()));
  record.SetMetric("peak_rss_bytes", static_cast<double>(PeakRssBytes()));
  for (const auto& [phase, seconds] : m.stats.phase_seconds) {
    record.SetMetric("phase_seconds/" + phase, seconds);
    // Phase throughput: edges pushed through the phase's loop per
    // second. Every phase is one (or more) full passes over the edge
    // set, so |E| / phase time is the natural rate; "partitioning" is
    // the gated hot-loop number (see DefaultToleranceFor).
    if (seconds > 0.0 && !edges.empty()) {
      record.SetMetric("edges_per_sec/" + phase,
                       static_cast<double>(edges.size()) / seconds);
    }
  }
  AttachObsMetrics(&record);
  AttachHostMetrics(&record);
  return record;
}

}  // namespace benchkit
}  // namespace tpsl

#include "benchkit/measure.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "baselines/registry.h"
#include "graph/datasets.h"
#include "graph/in_memory_edge_stream.h"
#include "partition/runner.h"
#include "util/logging.h"

namespace tpsl {
namespace benchkit {

int ScaleShift(int default_shift) {
  const char* env = std::getenv("TPSL_SCALE_SHIFT");
  if (env == nullptr || *env == '\0') {
    return default_shift;
  }
  char* end = nullptr;
  errno = 0;
  const long value = std::strtol(env, &end, 10);
  if (errno != 0 || end == env || *end != '\0' || value < 0 || value > 30) {
    TPSL_LOG(Warning) << "Ignoring malformed TPSL_SCALE_SHIFT='" << env
                      << "' (expected an integer in [0, 30]); using default "
                      << default_shift;
    return default_shift;
  }
  return static_cast<int>(value);
}

bool ParseThreadCount(const char* text, uint32_t* threads) {
  if (text == nullptr || *text == '\0') {
    return false;
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long value = std::strtoul(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0' || value == 0 ||
      value > 1024) {
    return false;
  }
  *threads = static_cast<uint32_t>(value);
  return true;
}

StatusOr<Measurement> MeasureOnEdges(const std::string& partitioner,
                                     const std::string& dataset,
                                     const std::vector<Edge>& edges,
                                     const PartitionConfig& config) {
  TPSL_ASSIGN_OR_RETURN(std::unique_ptr<Partitioner> p,
                        MakePartitioner(partitioner));
  InMemoryEdgeStream stream(edges);
  TPSL_ASSIGN_OR_RETURN(RunResult result, RunPartitioner(*p, stream, config));

  Measurement m;
  m.partitioner = partitioner;
  m.dataset = dataset;
  m.k = config.num_partitions;
  m.replication_factor = result.quality.replication_factor;
  m.seconds = result.stats.TotalSeconds();
  m.measured_alpha = result.quality.measured_alpha;
  m.state_bytes = result.stats.state_bytes;
  m.stats = result.stats;
  return m;
}

StatusOr<Measurement> MeasureOnEdges(const std::string& partitioner,
                                     const std::string& dataset,
                                     const std::vector<Edge>& edges,
                                     uint32_t k) {
  PartitionConfig config;
  config.num_partitions = k;
  return MeasureOnEdges(partitioner, dataset, edges, config);
}

StatusOr<Measurement> Measure(const std::string& partitioner,
                              const std::string& dataset, uint32_t k,
                              int scale_shift) {
  TPSL_ASSIGN_OR_RETURN(std::vector<Edge> edges,
                        LoadDataset(dataset, scale_shift));
  return MeasureOnEdges(partitioner, dataset, edges, k);
}

void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

void PrintRowHeader() {
  std::printf("%-10s %-8s %6s %10s %12s %10s %14s\n", "partitioner",
              "dataset", "k", "rf", "time(s)", "alpha", "state(bytes)");
}

void PrintRow(const Measurement& m) {
  std::printf("%-10s %-8s %6u %10.3f %12.4f %10.3f %14llu\n",
              m.partitioner.c_str(), m.dataset.c_str(), m.k,
              m.replication_factor, m.seconds, m.measured_alpha,
              static_cast<unsigned long long>(m.state_bytes));
}

}  // namespace benchkit
}  // namespace tpsl

#include "benchkit/scenario.h"

namespace tpsl {
namespace benchkit {

const std::vector<Scenario>& PinnedScenarios() {
  // Coverage axes: 2PS-L across the three graph families (social
  // community, web/planted-partition, pure R-MAT) and across k; the
  // re-streaming variant (2PS-HDRF); and the paper's main comparison
  // points — HDRF (stateful streaming), DBH (stateless hashing),
  // Greedy (stateful greedy), NE (in-memory, best quality).
  static const std::vector<Scenario>* scenarios = new std::vector<Scenario>{
      {"2psl_ok_k32", "2PS-L on the social-community graph, headline config",
       "2PS-L", "OK", 32, 2, 42},
      {"2psl_ok_k128", "2PS-L at high partition count (flat-in-k claim)",
       "2PS-L", "OK", 128, 2, 42},
      {"2psl_it_k32", "2PS-L on a web graph (strong communities)", "2PS-L",
       "IT", 32, 3, 42},
      {"2psl_tw_k32", "2PS-L on pure R-MAT (adversarial skew)", "2PS-L",
       "TW", 32, 3, 42},
      {"2pshdrf_ok_k32", "2PS-HDRF re-streaming variant", "2PS-HDRF", "OK",
       32, 2, 42},
      {"hdrf_ok_k32", "HDRF streaming baseline", "HDRF", "OK", 32, 2, 42},
      {"dbh_ok_k32", "DBH stateless hashing baseline", "DBH", "OK", 32, 2,
       42},
      {"greedy_ok_k32", "Greedy stateful streaming baseline", "Greedy", "OK",
       32, 2, 42},
      {"ne_ok_k32", "NE in-memory quality baseline", "NE", "OK", 32, 2, 42},
  };
  return *scenarios;
}

const Scenario* FindScenario(const std::string& name) {
  for (const Scenario& scenario : PinnedScenarios()) {
    if (scenario.name == name) {
      return &scenario;
    }
  }
  return nullptr;
}

}  // namespace benchkit
}  // namespace tpsl

#include "benchkit/scenario.h"

namespace tpsl {
namespace benchkit {

const std::vector<Scenario>& PinnedScenarios() {
  // Coverage axes: 2PS-L across the three graph families (social
  // community, web/planted-partition, pure R-MAT) and across k; the
  // re-streaming variant (2PS-HDRF); and the paper's main comparison
  // points — HDRF (stateful streaming), DBH (stateless hashing),
  // Greedy (stateful greedy), NE (in-memory, best quality).
  static const std::vector<Scenario>* scenarios = new std::vector<Scenario>{
      {"2psl_ok_k32", "2PS-L on the social-community graph, headline config",
       "2PS-L", "OK", 32, 2, 42},
      {"2psl_ok_k128", "2PS-L at high partition count (flat-in-k claim)",
       "2PS-L", "OK", 128, 2, 42},
      {"2psl_it_k32", "2PS-L on a web graph (strong communities)", "2PS-L",
       "IT", 32, 3, 42},
      {"2psl_tw_k32", "2PS-L on pure R-MAT (adversarial skew)", "2PS-L",
       "TW", 32, 3, 42},
      {"2pshdrf_ok_k32", "2PS-HDRF re-streaming variant", "2PS-HDRF", "OK",
       32, 2, 42},
      {"hdrf_ok_k32", "HDRF streaming baseline", "HDRF", "OK", 32, 2, 42},
      {"dbh_ok_k32", "DBH stateless hashing baseline", "DBH", "OK", 32, 2,
       42},
      {"greedy_ok_k32", "Greedy stateful streaming baseline", "Greedy", "OK",
       32, 2, 42},
      {"ne_ok_k32", "NE in-memory quality baseline", "NE", "OK", 32, 2, 42},
      // Disk-backed scenarios (ingest subsystem): datasets are the
      // pinned recipes in bench/catalog.json, streamed from disk via
      // the prefetching reader — the out-of-core configuration the
      // paper's headline claim is about. scale_shift is 0: the recipe
      // pins the size.
      {"ingest_rmat_s16", "ingest throughput: prefetched scan, R-MAT file",
       "scan", "rmat_s16", 1, 0, 42, ScenarioKind::kIngestScan},
      {"ingest_web_s16", "ingest throughput: prefetched scan, web file",
       "scan", "web_s16", 1, 0, 42, ScenarioKind::kIngestScan},
      {"oocore_2psl_rmat_s16_k32", "out-of-core 2PS-L from the R-MAT file",
       "2PS-L", "rmat_s16", 32, 0, 42, ScenarioKind::kDiskPartition},
      {"oocore_2psl_web_s16_k32", "out-of-core 2PS-L from the web file",
       "2PS-L", "web_s16", 32, 0, 42, ScenarioKind::kDiskPartition},
  };
  return *scenarios;
}

const char* ScenarioKindLabel(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kInMemory:
      return "memory";
    case ScenarioKind::kDiskPartition:
      return "disk";
    case ScenarioKind::kIngestScan:
      return "ingest";
  }
  return "?";
}

const Scenario* FindScenario(const std::string& name) {
  for (const Scenario& scenario : PinnedScenarios()) {
    if (scenario.name == name) {
      return &scenario;
    }
  }
  return nullptr;
}

}  // namespace benchkit
}  // namespace tpsl

#include "benchkit/scenario.h"

#include <algorithm>
#include <cctype>
#include <utility>

namespace tpsl {
namespace benchkit {

const std::vector<Scenario>& PinnedScenarios() {
  // Coverage axes: 2PS-L across the three graph families (social
  // community, web/planted-partition, pure R-MAT) and across k; the
  // re-streaming variant (2PS-HDRF); and the paper's main comparison
  // points — HDRF (stateful streaming), DBH (stateless hashing),
  // Greedy (stateful greedy), NE (in-memory, best quality).
  static const std::vector<Scenario>* scenarios = new std::vector<Scenario>{
      {"2psl_ok_k32", "2PS-L on the social-community graph, headline config",
       "2PS-L", "OK", 32, 2, 42},
      {"2psl_ok_k128", "2PS-L at high partition count (flat-in-k claim)",
       "2PS-L", "OK", 128, 2, 42},
      {"2psl_it_k32", "2PS-L on a web graph (strong communities)", "2PS-L",
       "IT", 32, 3, 42},
      {"2psl_tw_k32", "2PS-L on pure R-MAT (adversarial skew)", "2PS-L",
       "TW", 32, 3, 42},
      {"2pshdrf_ok_k32", "2PS-HDRF re-streaming variant", "2PS-HDRF", "OK",
       32, 2, 42},
      {"hdrf_ok_k32", "HDRF streaming baseline", "HDRF", "OK", 32, 2, 42},
      {"dbh_ok_k32", "DBH stateless hashing baseline", "DBH", "OK", 32, 2,
       42},
      {"greedy_ok_k32", "Greedy stateful streaming baseline", "Greedy", "OK",
       32, 2, 42},
      {"ne_ok_k32", "NE in-memory quality baseline", "NE", "OK", 32, 2, 42},
      // Parallel-scaling scenarios (execution engine): the ported
      // ext_parallel_scaling sweep, pinned at 1/2/4 workers. threads=1
      // is byte-deterministic (the engine degrades to an inline loop);
      // threads>1 records wall time informationally and gates quality
      // with the widened parallel band (see DefaultToleranceFor).
      {"2psl_par_ok_k32_t1", "parallel 2PS-L, 1 worker (determinism anchor)",
       "2PS-L(par)", "OK", 32, 2, 42, 1},
      {"2psl_par_ok_k32_t2", "parallel 2PS-L scaling point, 2 workers",
       "2PS-L(par)", "OK", 32, 2, 42, 2},
      {"2psl_par_ok_k32_t4", "parallel 2PS-L scaling point, 4 workers",
       "2PS-L(par)", "OK", 32, 2, 42, 4},
      // Disk-backed scenarios (ingest subsystem): datasets are the
      // pinned recipes in bench/catalog.json, streamed from disk via
      // the prefetching reader — the out-of-core configuration the
      // paper's headline claim is about. scale_shift is 0: the recipe
      // pins the size.
      {"ingest_rmat_s16", "ingest throughput: prefetched scan, R-MAT file",
       "scan", "rmat_s16", 1, 0, 42, 1, ScenarioKind::kIngestScan},
      {"ingest_web_s16", "ingest throughput: prefetched scan, web file",
       "scan", "web_s16", 1, 0, 42, 1, ScenarioKind::kIngestScan},
      {"oocore_2psl_rmat_s16_k32", "out-of-core 2PS-L from the R-MAT file",
       "2PS-L", "rmat_s16", 32, 0, 42, 1, ScenarioKind::kDiskPartition},
      {"oocore_2psl_web_s16_k32", "out-of-core 2PS-L from the web file",
       "2PS-L", "web_s16", 32, 0, 42, 1, ScenarioKind::kDiskPartition},
      // Out-of-core parallel scaling: disk prefetch overlapping the
      // engine's scoring workers.
      {"2psl_par_rmat_s16_k32_t2", "out-of-core parallel 2PS-L, 2 workers",
       "2PS-L(par)", "rmat_s16", 32, 0, 42, 2, ScenarioKind::kDiskPartition},
      {"2psl_par_rmat_s16_k32_t4", "out-of-core parallel 2PS-L, 4 workers",
       "2PS-L(par)", "rmat_s16", 32, 0, 42, 4, ScenarioKind::kDiskPartition},
      // Larger tier (ROADMAP): an out-of-core run big enough that the
      // time axis means something, guarded by the perf job's
      // --time-budget; skipped by --smoke.
      {"2psl_par_rmat_s20_k32_t4",
       "larger-tier out-of-core parallel 2PS-L (8M edges), 4 workers",
       "2PS-L(par)", "rmat_s20", 32, 0, 42, 4, ScenarioKind::kDiskPartition,
       /*large=*/true},
      // Full out-of-core loop at the largest pinned tier: graph on
      // disk, streaming quality/validation sinks (no edge lists), and
      // partitions spilled back to disk through the writer sink. The
      // gated max_rss_bytes is the proof that resident memory stays
      // O(|V|·k) while 33M edges flow storage-to-storage.
      {"2psl_rmat_s22_k32_spill",
       "larger-tier out-of-core 2PS-L (33M edges), spill-to-disk",
       "2PS-L", "rmat_s22", 32, 0, 42, 1, ScenarioKind::kDiskPartition,
       /*large=*/true, /*spill=*/true},
      // Kernel-level perf gate: the state-kernel scoring loops
      // (ScoreTables picks, DenseBitset word ops, replication
      // set/test) timed in isolation on synthetic seeded state. Small
      // enough for --smoke; the CI perf gate diffs its throughput and
      // checksum against the pinned baseline.
      {"micro_state_kernel",
       "state-kernel scoring/bitset micro-benchmarks (hot-loop gate)",
       "micro", "synthetic", 32, 0, 42, 1, ScenarioKind::kMicroKernel},
      // Observability overhead gate: disabled-span / counter /
      // histogram hot paths, span throughput with tracing on, and a
      // real tracing-off 2PS-L run. Keeps the obs layer honest — the
      // disabled cost must stay at noise level.
      {"micro_obs",
       "observability span/counter/histogram overhead micro-benchmarks",
       "micro", "synthetic", 32, 0, 42, 1, ScenarioKind::kMicroObs},
      // Serving scenarios (src/serve/): the repo measured as a service.
      // `threads` is the reader count; one writer plays a 20% mutation
      // tail (1-in-8 removals) with 256-edge epoch publishes and a
      // deterministic re-bootstrap (threshold 0.1, adopted 4 publishes
      // after the fork), so every placement-side metric is exact while
      // lookup QPS and p50/p99 latency gate the read path.
      {"serve_ok_k32_r1",
       "PartitionService traffic, 1 reader (latency anchor)",
       "PartitionService", "OK", 32, 2, 42, 1, ScenarioKind::kServe},
      {"serve_ok_k32_r4", "PartitionService traffic, 4 readers",
       "PartitionService", "OK", 32, 2, 42, 4, ScenarioKind::kServe},
  };
  return *scenarios;
}

const char* ScenarioKindLabel(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kInMemory:
      return "memory";
    case ScenarioKind::kDiskPartition:
      return "disk";
    case ScenarioKind::kIngestScan:
      return "ingest";
    case ScenarioKind::kMicroKernel:
      return "micro";
    case ScenarioKind::kMicroObs:
      return "micro";
    case ScenarioKind::kServe:
      return "serve";
  }
  return "?";
}

const Scenario* FindScenario(const std::string& name) {
  for (const Scenario& scenario : PinnedScenarios()) {
    if (scenario.name == name) {
      return &scenario;
    }
  }
  return nullptr;
}

namespace {

std::string Lower(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

/// Classic two-row Levenshtein distance.
size_t EditDistance(const std::string& a, const std::string& b) {
  std::vector<size_t> prev(b.size() + 1);
  std::vector<size_t> curr(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) {
    prev[j] = j;
  }
  for (size_t i = 1; i <= a.size(); ++i) {
    curr[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      const size_t subst = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      curr[j] = std::min({prev[j] + 1, curr[j - 1] + 1, subst});
    }
    std::swap(prev, curr);
  }
  return prev[b.size()];
}

}  // namespace

std::vector<std::string> SuggestScenarioNames(const std::string& name,
                                              size_t max_suggestions) {
  const std::string needle = Lower(name);
  // Anything beyond ~a third of the name rewritten is noise, but always
  // allow a couple of typos for short names.
  const size_t cutoff = std::max<size_t>(3, needle.size() / 3);
  std::vector<std::pair<size_t, std::string>> ranked;
  for (const Scenario& scenario : PinnedScenarios()) {
    const std::string candidate = Lower(scenario.name);
    size_t distance = EditDistance(needle, candidate);
    const bool substring =
        !needle.empty() && candidate.find(needle) != std::string::npos;
    if (substring) {
      distance = 0;  // a prefix/substring hit is always worth showing
    } else if (distance > cutoff) {
      continue;
    }
    ranked.emplace_back(distance, scenario.name);
  }
  std::sort(ranked.begin(), ranked.end());
  std::vector<std::string> suggestions;
  for (const auto& [distance, candidate] : ranked) {
    if (suggestions.size() >= max_suggestions) {
      break;
    }
    suggestions.push_back(candidate);
  }
  return suggestions;
}

}  // namespace benchkit
}  // namespace tpsl

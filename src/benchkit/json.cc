#include "benchkit/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/logging.h"

namespace tpsl {
namespace benchkit {

JsonValue JsonValue::Bool(bool v) {
  JsonValue value;
  value.kind_ = Kind::kBool;
  value.bool_ = v;
  return value;
}

JsonValue JsonValue::Number(double v) {
  JsonValue value;
  value.kind_ = Kind::kNumber;
  value.number_ = v;
  return value;
}

JsonValue JsonValue::String(std::string v) {
  JsonValue value;
  value.kind_ = Kind::kString;
  value.string_ = std::move(v);
  return value;
}

JsonValue JsonValue::Array() {
  JsonValue value;
  value.kind_ = Kind::kArray;
  return value;
}

JsonValue JsonValue::Object() {
  JsonValue value;
  value.kind_ = Kind::kObject;
  return value;
}

bool JsonValue::bool_value() const {
  TPSL_CHECK(is_bool());
  return bool_;
}

double JsonValue::number_value() const {
  TPSL_CHECK(is_number());
  return number_;
}

const std::string& JsonValue::string_value() const {
  TPSL_CHECK(is_string());
  return string_;
}

const std::vector<JsonValue>& JsonValue::array() const {
  TPSL_CHECK(is_array());
  return array_;
}

const std::vector<JsonValue::Member>& JsonValue::members() const {
  TPSL_CHECK(is_object());
  return members_;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (!is_object()) {
    return nullptr;
  }
  for (const Member& member : members_) {
    if (member.first == key) {
      return &member.second;
    }
  }
  return nullptr;
}

void JsonValue::Set(std::string key, JsonValue value) {
  TPSL_CHECK(is_object());
  for (Member& member : members_) {
    if (member.first == key) {
      member.second = std::move(value);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
}

void JsonValue::Append(JsonValue value) {
  TPSL_CHECK(is_array());
  array_.push_back(std::move(value));
}

namespace {

/// Doubles that hold exact integers (the common case: k, byte counts)
/// print without a fractional part; everything else at 12 significant
/// digits, far below any comparator tolerance.
void AppendNumber(std::string* out, double v) {
  if (!std::isfinite(v)) {
    out->append("null");  // JSON has no NaN/Inf
    return;
  }
  char buf[40];
  if (v == std::floor(v) && std::fabs(v) < 9.0e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.12g", v);
  }
  out->append(buf);
}

void AppendQuoted(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\b':
        out->append("\\b");
        break;
      case '\f':
        out->append("\\f");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendIndent(std::string* out, int indent, int depth) {
  if (indent > 0) {
    out->push_back('\n');
    out->append(static_cast<size_t>(indent) * depth, ' ');
  }
}

void WriteValue(const JsonValue& value, std::string* out, int indent,
                int depth) {
  switch (value.kind()) {
    case JsonValue::Kind::kNull:
      out->append("null");
      break;
    case JsonValue::Kind::kBool:
      out->append(value.bool_value() ? "true" : "false");
      break;
    case JsonValue::Kind::kNumber:
      AppendNumber(out, value.number_value());
      break;
    case JsonValue::Kind::kString:
      AppendQuoted(out, value.string_value());
      break;
    case JsonValue::Kind::kArray: {
      if (value.array().empty()) {
        out->append("[]");
        break;
      }
      out->push_back('[');
      bool first = true;
      for (const JsonValue& element : value.array()) {
        if (!first) {
          out->push_back(',');
        }
        first = false;
        AppendIndent(out, indent, depth + 1);
        WriteValue(element, out, indent, depth + 1);
      }
      AppendIndent(out, indent, depth);
      out->push_back(']');
      break;
    }
    case JsonValue::Kind::kObject: {
      if (value.members().empty()) {
        out->append("{}");
        break;
      }
      out->push_back('{');
      bool first = true;
      for (const JsonValue::Member& member : value.members()) {
        if (!first) {
          out->push_back(',');
        }
        first = false;
        AppendIndent(out, indent, depth + 1);
        AppendQuoted(out, member.first);
        out->append(indent > 0 ? ": " : ":");
        WriteValue(member.second, out, indent, depth + 1);
      }
      AppendIndent(out, indent, depth);
      out->push_back('}');
      break;
    }
  }
}

/// Recursive-descent parser over the full input; no allocations beyond
/// the values it builds.
class Parser {
 public:
  explicit Parser(const std::string& text)
      : pos_(text.data()), end_(text.data() + text.size()) {}

  StatusOr<JsonValue> Parse() {
    JsonValue value;
    TPSL_RETURN_IF_ERROR(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != end_) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& message) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(offset_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ != end_ &&
           (*pos_ == ' ' || *pos_ == '\t' || *pos_ == '\n' || *pos_ == '\r')) {
      Advance();
    }
  }

  void Advance() {
    ++pos_;
    ++offset_;
  }

  bool ConsumeLiteral(const char* literal) {
    const size_t len = std::strlen(literal);
    if (static_cast<size_t>(end_ - pos_) < len ||
        std::strncmp(pos_, literal, len) != 0) {
      return false;
    }
    pos_ += len;
    offset_ += len;
    return true;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) {
      return Error("nesting deeper than 64 levels");
    }
    SkipWhitespace();
    if (pos_ == end_) {
      return Error("unexpected end of input");
    }
    switch (*pos_) {
      case 'n':
        if (!ConsumeLiteral("null")) {
          return Error("invalid literal");
        }
        *out = JsonValue::Null();
        return Status::OK();
      case 't':
        if (!ConsumeLiteral("true")) {
          return Error("invalid literal");
        }
        *out = JsonValue::Bool(true);
        return Status::OK();
      case 'f':
        if (!ConsumeLiteral("false")) {
          return Error("invalid literal");
        }
        *out = JsonValue::Bool(false);
        return Status::OK();
      case '"': {
        std::string s;
        TPSL_RETURN_IF_ERROR(ParseString(&s));
        *out = JsonValue::String(std::move(s));
        return Status::OK();
      }
      case '[':
        return ParseArray(out, depth);
      case '{':
        return ParseObject(out, depth);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseString(std::string* out) {
    Advance();  // opening quote
    while (true) {
      if (pos_ == end_) {
        return Error("unterminated string");
      }
      const char c = *pos_;
      if (c == '"') {
        Advance();
        return Status::OK();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        Advance();
        continue;
      }
      Advance();  // backslash
      if (pos_ == end_) {
        return Error("unterminated escape");
      }
      const char esc = *pos_;
      Advance();
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          uint32_t code = 0;
          TPSL_RETURN_IF_ERROR(ParseHex4(&code));
          // Combine a UTF-16 surrogate pair into one code point.
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (end_ - pos_ < 2 || pos_[0] != '\\' || pos_[1] != 'u') {
              return Error("unpaired high surrogate");
            }
            Advance();
            Advance();
            uint32_t low = 0;
            TPSL_RETURN_IF_ERROR(ParseHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return Error("unpaired low surrogate");
          }
          AppendUtf8(out, code);
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
  }

  Status ParseHex4(uint32_t* out) {
    if (end_ - pos_ < 4) {
      return Error("truncated \\u escape");
    }
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = *pos_;
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
      Advance();
    }
    *out = value;
    return Status::OK();
  }

  static void AppendUtf8(std::string* out, uint32_t code) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Status ParseNumber(JsonValue* out) {
    const char* start = pos_;
    if (pos_ != end_ && (*pos_ == '-' || *pos_ == '+')) {
      if (*pos_ == '+') {
        return Error("numbers may not start with '+'");
      }
      Advance();
    }
    bool digits = false;
    while (pos_ != end_ && ((*pos_ >= '0' && *pos_ <= '9') || *pos_ == '.' ||
                            *pos_ == 'e' || *pos_ == 'E' || *pos_ == '-' ||
                            *pos_ == '+')) {
      digits = digits || (*pos_ >= '0' && *pos_ <= '9');
      Advance();
    }
    if (!digits) {
      return Error("invalid value");
    }
    const std::string token(start, static_cast<size_t>(pos_ - start));
    char* parsed_end = nullptr;
    const double value = std::strtod(token.c_str(), &parsed_end);
    if (parsed_end != token.c_str() + token.size()) {
      return Error("malformed number '" + token + "'");
    }
    // Overflowed literals (1e999) would round-trip asymmetrically:
    // accepted as inf here, re-serialized as null by the writer.
    if (!std::isfinite(value)) {
      return Error("number out of double range '" + token + "'");
    }
    *out = JsonValue::Number(value);
    return Status::OK();
  }

  Status ParseArray(JsonValue* out, int depth) {
    Advance();  // '['
    JsonValue array = JsonValue::Array();
    SkipWhitespace();
    if (pos_ != end_ && *pos_ == ']') {
      Advance();
      *out = std::move(array);
      return Status::OK();
    }
    while (true) {
      JsonValue element;
      TPSL_RETURN_IF_ERROR(ParseValue(&element, depth + 1));
      array.Append(std::move(element));
      SkipWhitespace();
      if (pos_ == end_) {
        return Error("unterminated array");
      }
      if (*pos_ == ',') {
        Advance();
        continue;
      }
      if (*pos_ == ']') {
        Advance();
        *out = std::move(array);
        return Status::OK();
      }
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    Advance();  // '{'
    JsonValue object = JsonValue::Object();
    SkipWhitespace();
    if (pos_ != end_ && *pos_ == '}') {
      Advance();
      *out = std::move(object);
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      if (pos_ == end_ || *pos_ != '"') {
        return Error("expected string key in object");
      }
      std::string key;
      TPSL_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (pos_ == end_ || *pos_ != ':') {
        return Error("expected ':' after object key");
      }
      Advance();
      JsonValue value;
      TPSL_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      object.Set(std::move(key), std::move(value));
      SkipWhitespace();
      if (pos_ == end_) {
        return Error("unterminated object");
      }
      if (*pos_ == ',') {
        Advance();
        continue;
      }
      if (*pos_ == '}') {
        Advance();
        *out = std::move(object);
        return Status::OK();
      }
      return Error("expected ',' or '}' in object");
    }
  }

  const char* pos_;
  const char* end_;
  size_t offset_ = 0;
};

}  // namespace

std::string JsonValue::Write(int indent) const {
  std::string out;
  WriteValue(*this, &out, indent, 0);
  return out;
}

StatusOr<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace benchkit
}  // namespace tpsl

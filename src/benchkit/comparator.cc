#include "benchkit/comparator.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "benchkit/micro_kernels.h"
#include "benchkit/obs_kernels.h"

namespace tpsl {
namespace benchkit {
namespace {

const char* StatusLabel(MetricStatus status) {
  switch (status) {
    case MetricStatus::kOk:
      return "ok";
    case MetricStatus::kImproved:
      return "IMPROVED";
    case MetricStatus::kRegressed:
      return "REGRESSED";
    case MetricStatus::kDrifted:
      return "DRIFTED";
    case MetricStatus::kMissing:
      return "MISSING";
    case MetricStatus::kNewMetric:
      return "new";
  }
  return "?";
}

std::string FormatCheck(const MetricCheck& check) {
  char buf[256];
  if (check.status == MetricStatus::kMissing) {
    std::snprintf(buf, sizeof(buf),
                  "    %-28s baseline %.6g, absent from current run MISSING",
                  check.metric.c_str(), check.baseline);
  } else if (check.status == MetricStatus::kNewMetric) {
    std::snprintf(buf, sizeof(buf),
                  "    %-28s current %.6g, no baseline (new metric)",
                  check.metric.c_str(), check.current);
  } else {
    std::snprintf(
        buf, sizeof(buf),
        "    %-28s baseline %.6g -> current %.6g (%+.1f%%, tol %s%.0f%%%s) %s",
        check.metric.c_str(), check.baseline, check.current,
        100.0 * check.rel_delta,
        !check.tolerance.upper_only        ? "±"
        : check.tolerance.higher_is_better ? "-"
                                           : "+",
        100.0 * check.tolerance.rel,
        check.tolerance.informational ? ", informational" : "",
        StatusLabel(check.status));
  }
  return buf;
}

void AppendConfigNote(const BenchRecord& baseline, const BenchRecord& current,
                      ScenarioComparison* out) {
  auto mismatch = [&out](const std::string& field, const std::string& base,
                         const std::string& cur) {
    out->notes.push_back("config drift: " + field + " baseline=" + base +
                         " current=" + cur +
                         " (re-emit the baseline after intentional changes)");
    out->passed = false;
  };
  if (baseline.partitioner != current.partitioner) {
    mismatch("partitioner", baseline.partitioner, current.partitioner);
  }
  if (baseline.dataset != current.dataset) {
    mismatch("dataset", baseline.dataset, current.dataset);
  }
  if (baseline.k != current.k) {
    mismatch("k", std::to_string(baseline.k), std::to_string(current.k));
  }
  if (baseline.scale_shift != current.scale_shift) {
    mismatch("scale_shift", std::to_string(baseline.scale_shift),
             std::to_string(current.scale_shift));
  }
  if (baseline.seed != current.seed) {
    mismatch("seed", std::to_string(baseline.seed),
             std::to_string(current.seed));
  }
  if (baseline.threads != current.threads) {
    mismatch("threads", std::to_string(baseline.threads),
             std::to_string(current.threads));
  }
}

}  // namespace

ToleranceSpec DefaultToleranceFor(const std::string& metric) {
  if (metric.starts_with("obs/")) {
    // Observability snapshots (counters, gauges, histogram
    // percentiles) attached to the record for humans and dashboards:
    // run-shape diagnostics, never acceptance criteria.
    return {.rel = 0.0, .abs_floor = 0.0, .upper_only = false,
            .informational = true};
  }
  if (metric == "edges_per_sec/span_off" ||
      metric == "edges_per_sec/counter_add" ||
      metric == "edges_per_sec/hist_record") {
    // The micro_obs overhead gates: disabled-span, sharded-counter and
    // histogram hot paths must stay at noise-level cost. Same generous
    // one-sided band as the hot-loop throughput gate — it exists to
    // catch an accidentally heavyweight instrumentation path (a lock,
    // an allocation), not CI hardware jitter.
    return {.rel = 0.75, .abs_floor = 0.0, .upper_only = true,
            .informational = false, .higher_is_better = true};
  }
  if (metric == "seconds") {
    // CI hardware differs from the machine that pinned the baseline;
    // gate only gross slowdowns (>3x beyond a 0.05 s noise floor).
    // The floor can be this low because the runner reports the
    // fastest of several repeats, not a single noisy sample.
    return {.rel = 2.0, .abs_floor = 0.05, .upper_only = true,
            .informational = false};
  }
  if (metric == "max_rss_bytes") {
    // The out-of-core honesty gate (disk-backed scenarios only):
    // resident memory must be bounded by algorithm state + fixed
    // buffers, never by |E|. Upper-only with a generous band —
    // allocator arenas and libc versions move RSS by megabytes — but
    // an O(|E|) edge-set rematerialization blows far past +50% on the
    // pinned out-of-core tiers. Faster/leaner runs pass as IMPROVED.
    return {.rel = 0.5, .abs_floor = 16.0 * 1024 * 1024, .upper_only = true,
            .informational = false};
  }
  if (metric == "edges_per_sec/partitioning") {
    // The hot-loop throughput gate: edges scored and assigned per
    // second of the partitioning phase. One-sided — only slowdowns
    // fail — and generous (a 75% throughput drop is a 4x slowdown),
    // because absolute throughput is hardware-dependent; the gate
    // exists to catch a de-optimized scoring loop, not CI jitter.
    return {.rel = 0.75, .abs_floor = 0.0, .upper_only = true,
            .informational = false, .higher_is_better = true};
  }
  if (metric.starts_with("edges_per_sec/")) {
    // Other phases (degree, clustering, load, scan) are usually too
    // short for a stable rate; informational detail only.
    return {.rel = 0.0, .abs_floor = 0.0, .upper_only = false,
            .informational = true, .higher_is_better = true};
  }
  if (metric.starts_with("phase_seconds/") || metric == "peak_rss_bytes" ||
      metric == "spill_bytes_written") {
    return {.rel = 0.0, .abs_floor = 0.0, .upper_only = false,
            .informational = true};
  }
  if (metric == "bytes_read") {
    // The compressed-I/O gate (disk-backed scenarios): on-disk bytes
    // crossing the storage boundary per run. Deterministic given
    // (encoder, dataset), so the band is tight; one-sided, so a better
    // encoder passes as IMPROVED while a regression back toward
    // full-width I/O fails.
    return {.rel = 0.02, .abs_floor = 0.0, .upper_only = true,
            .informational = false};
  }
  if (metric == "compression_ratio" || metric == "hw_threads") {
    // Run-shape context: decoded/on-disk byte ratio, and the host's
    // effective hardware concurrency (machine-dependent by nature).
    return {.rel = 0.0, .abs_floor = 0.0, .upper_only = false,
            .informational = true};
  }
  if (metric == "edges_per_second" || metric == "mb_per_second" ||
      metric == "plain_seconds" || metric == "generate_seconds") {
    // Throughput diagnostics from the ingest scenarios: pure
    // derivatives of wall time on CI hardware. The time gate is
    // "seconds"; these are reported for humans reading the records.
    return {.rel = 0.0, .abs_floor = 0.0, .upper_only = false,
            .informational = true};
  }
  if (metric == "lookup_qps" || metric == "mutation_qps") {
    // Serving throughput gates (serve scenarios): one-sided and
    // generous for the same reason as the hot-loop gate — absolute QPS
    // is hardware-dependent, and the gate exists to catch a reader hot
    // path that grew a lock or an allocation (a >4x collapse), not CI
    // jitter. Faster runs pass as IMPROVED.
    return {.rel = 0.75, .abs_floor = 0.0, .upper_only = true,
            .informational = false, .higher_is_better = true};
  }
  if (metric == "lookup_p50_seconds" || metric == "lookup_p99_seconds") {
    // Upper-only latency gates from the log2-bucketed obs histogram:
    // bucket resolution is a factor of two, so the band admits a
    // single-bucket quantization jump (+100%) and still fails a >=8x
    // percentile blowup. The absolute floor forgives sub-50us noise
    // (scheduler wakeups land entire lookups in the next bucket).
    return {.rel = 3.0, .abs_floor = 5e-5, .upper_only = true,
            .informational = false};
  }
  if (metric == "replication_factor" || metric == "measured_alpha") {
    // Deterministic given (code, seed); 2% absorbs cross-platform
    // floating-point ordering differences, nothing more.
    return {.rel = 0.02, .abs_floor = 0.0, .upper_only = false,
            .informational = false};
  }
  if (metric == "state_bytes") {
    // Deterministic up to stdlib container growth policies.
    return {.rel = 0.25, .abs_floor = 0.0, .upper_only = false,
            .informational = false};
  }
  return {.rel = 0.05, .abs_floor = 0.0, .upper_only = false,
          .informational = false};
}

ToleranceSpec DefaultToleranceFor(const std::string& metric,
                                  uint32_t threads) {
  ToleranceSpec spec = DefaultToleranceFor(metric);
  if (threads <= 1) {
    return spec;
  }
  // Multi-threaded wall time and hot-loop throughput are gated with
  // the same one-sided bands as threads=1 now that the whole pipeline
  // (clustering, scoring, sinks) rides the engine: the engine clamps
  // workers to the pool, so a run on any machine shape is at worst the
  // sequential algorithm, and the generous rel tolerance absorbs
  // core-count differences between the pinning machine and CI. What
  // the gate catches is a parallel path that serializes again (a
  // reintroduced sink mutex, a sequentialized pass) — a multiple, not
  // a percentage.
  if (metric == "replication_factor" || metric == "measured_alpha") {
    // Parallel workers score against stale shared state, so quality is
    // scheduling-dependent: same class, not same bits. 10% catches a
    // broken scoring path while absorbing interleaving noise.
    spec.rel = 0.10;
  }
  return spec;
}

std::vector<std::string> GatedMetricsForScenario(const Scenario& scenario) {
  // The metrics each scenario kind emits that are candidates for
  // gating; the thread-aware tolerance policy below is the single
  // source of truth for which of them the gate actually enforces.
  std::vector<std::string> candidates;
  switch (scenario.kind) {
    case ScenarioKind::kInMemory:
    case ScenarioKind::kDiskPartition:
      candidates = {"seconds",     "replication_factor",
                    "measured_alpha", "state_bytes",
                    "num_edges",   "edges_per_sec/partitioning"};
      if (scenario.kind == ScenarioKind::kDiskPartition) {
        candidates.push_back("max_rss_bytes");
        candidates.push_back("bytes_read");
      }
      break;
    case ScenarioKind::kIngestScan:
      candidates = {"seconds", "num_edges", "file_bytes"};
      break;
    case ScenarioKind::kMicroKernel:
    case ScenarioKind::kMicroObs: {
      candidates = {"seconds", "num_edges", "checksum_low32"};
      const std::vector<std::string>& kernels =
          scenario.kind == ScenarioKind::kMicroKernel ? MicroKernelNames()
                                                      : ObsKernelNames();
      for (const std::string& kernel : kernels) {
        candidates.push_back("edges_per_sec/" + kernel);
      }
      break;
    }
    case ScenarioKind::kServe:
      // Placement-side metrics are deterministic (single writer,
      // deterministic re-bootstrap adoption) and sit under the default
      // two-sided band; QPS and latency carry the serve-specific
      // one-sided tolerances above.
      candidates = {"seconds",          "num_edges",
                    "live_edges",       "replication_factor",
                    "measured_alpha",   "state_bytes",
                    "lookup_qps",       "mutation_qps",
                    "lookup_p50_seconds", "lookup_p99_seconds",
                    "epochs_published", "rebootstraps",
                    "lookups",          "mutations"};
      break;
  }
  std::vector<std::string> gated;
  for (const std::string& metric : candidates) {
    if (!DefaultToleranceFor(metric, scenario.threads).informational) {
      gated.push_back(metric);
    }
  }
  return gated;
}

ScenarioComparison CompareRecord(const BenchRecord& baseline,
                                 const BenchRecord& current) {
  ScenarioComparison comparison;
  comparison.scenario = current.scenario;
  AppendConfigNote(baseline, current, &comparison);

  for (const auto& [name, base_value] : baseline.metrics) {
    MetricCheck check;
    check.metric = name;
    check.baseline = base_value;
    check.tolerance = DefaultToleranceFor(name, current.threads);

    const double* cur = current.FindMetric(name);
    if (cur == nullptr) {
      check.status = MetricStatus::kMissing;
      check.failed = !check.tolerance.informational;
    } else {
      check.current = *cur;
      const double abs_delta = std::fabs(check.current - check.baseline);
      check.rel_delta =
          abs_delta == 0.0
              ? 0.0
              : (check.current - check.baseline) /
                    std::max(std::fabs(check.baseline), 1e-12);
      const bool beyond =
          abs_delta > check.tolerance.abs_floor &&
          std::fabs(check.rel_delta) > check.tolerance.rel;
      // Which direction is a regression depends on the metric's
      // polarity: cost metrics fail upward, throughput metrics fail
      // downward.
      const bool bad_direction = check.tolerance.higher_is_better
                                     ? check.rel_delta < 0.0
                                     : check.rel_delta > 0.0;
      if (!beyond || check.tolerance.informational) {
        check.status = MetricStatus::kOk;
      } else if (bad_direction) {
        check.status = MetricStatus::kRegressed;
        check.failed = true;
      } else if (check.tolerance.upper_only) {
        check.status = MetricStatus::kImproved;
      } else {
        check.status = MetricStatus::kDrifted;
        check.failed = true;
      }
    }
    comparison.passed = comparison.passed && !check.failed;
    comparison.checks.push_back(std::move(check));
  }

  for (const auto& [name, cur_value] : current.metrics) {
    if (baseline.FindMetric(name) == nullptr) {
      MetricCheck check;
      check.metric = name;
      check.current = cur_value;
      check.tolerance = DefaultToleranceFor(name, current.threads);
      check.status = MetricStatus::kNewMetric;
      comparison.checks.push_back(std::move(check));
    }
  }
  return comparison;
}

ComparisonReport CompareRecords(const std::vector<BenchRecord>& baselines,
                                const std::vector<BenchRecord>& current) {
  ComparisonReport report;
  auto find_baseline = [&baselines](const std::string& scenario) {
    for (const BenchRecord& record : baselines) {
      if (record.scenario == scenario) {
        return &record;
      }
    }
    return static_cast<const BenchRecord*>(nullptr);
  };

  for (const BenchRecord& record : current) {
    const BenchRecord* baseline = find_baseline(record.scenario);
    if (baseline == nullptr) {
      ScenarioComparison comparison;
      comparison.scenario = record.scenario;
      comparison.is_new = true;
      comparison.notes.push_back(
          "no baseline record; pin one with --emit --out <baseline dir>");
      report.scenarios.push_back(std::move(comparison));
      continue;
    }
    report.scenarios.push_back(CompareRecord(*baseline, record));
  }

  for (const BenchRecord& record : baselines) {
    bool seen = false;
    for (const BenchRecord& cur : current) {
      seen = seen || cur.scenario == record.scenario;
    }
    if (!seen) {
      report.stale_baselines.push_back(record.scenario);
    }
  }

  for (const ScenarioComparison& comparison : report.scenarios) {
    report.passed = report.passed && comparison.passed;
  }
  return report;
}

std::string ComparisonReport::ToString() const {
  size_t ok = 0, failed = 0, fresh = 0;
  for (const ScenarioComparison& comparison : scenarios) {
    if (comparison.is_new) {
      ++fresh;
    } else if (comparison.passed) {
      ++ok;
    } else {
      ++failed;
    }
  }
  std::string out = "benchkit check: " + std::to_string(scenarios.size()) +
                    " scenarios — " + std::to_string(ok) + " ok, " +
                    std::to_string(failed) + " failed, " +
                    std::to_string(fresh) + " new, " +
                    std::to_string(stale_baselines.size()) + " stale\n";
  for (const ScenarioComparison& comparison : scenarios) {
    const char* tag = comparison.is_new ? "NEW "
                      : comparison.passed ? " ok "
                                          : "FAIL";
    out += "  [" + std::string(tag) + "] " + comparison.scenario + "\n";
    for (const std::string& note : comparison.notes) {
      out += "    note: " + note + "\n";
    }
    for (const MetricCheck& check : comparison.checks) {
      // Keep passing informational rows out of the report; they are in
      // the emitted JSON for anyone who wants the detail.
      if (check.status == MetricStatus::kOk && comparison.passed) {
        continue;
      }
      out += FormatCheck(check) + "\n";
    }
  }
  for (const std::string& stale : stale_baselines) {
    out += "  [stale] baseline " + stale +
           " matched no scenario in this run (delete or re-run without "
           "--scenario filters)\n";
  }
  out += passed ? "PASS\n" : "FAIL\n";
  return out;
}

}  // namespace benchkit
}  // namespace tpsl

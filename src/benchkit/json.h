#ifndef TPSL_BENCHKIT_JSON_H_
#define TPSL_BENCHKIT_JSON_H_

#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace tpsl {
namespace benchkit {

/// Minimal JSON value used for benchkit's measurement records and the
/// checked-in baseline files — deliberately dependency-free. Objects
/// preserve insertion order so emitted files are stable and diff
/// cleanly under version control.
///
/// Limits (fine for flat metric records, documented for hand-editors):
/// numbers are doubles, non-finite values serialize as null, and
/// duplicate object keys are rejected by Set() semantics (last wins).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  using Member = std::pair<std::string, JsonValue>;

  /// Default-constructs null; use the named factories for the rest.
  JsonValue() = default;
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool v);
  static JsonValue Number(double v);
  static JsonValue String(std::string v);
  static JsonValue Array();
  static JsonValue Object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; calling one on the wrong kind is a programming
  /// error (checked).
  bool bool_value() const;
  double number_value() const;
  const std::string& string_value() const;
  const std::vector<JsonValue>& array() const;
  const std::vector<Member>& members() const;

  /// Object lookup; nullptr when absent (or not an object).
  const JsonValue* Find(const std::string& key) const;
  /// Sets `key` on an object, replacing an existing member in place.
  void Set(std::string key, JsonValue value);
  /// Appends to an array.
  void Append(JsonValue value);

  /// Serializes with `indent` spaces per level (0 = compact one-line).
  /// Output always ends without a trailing newline.
  std::string Write(int indent = 2) const;

  bool operator==(const JsonValue& other) const = default;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<Member> members_;
};

/// Parses one JSON document; trailing non-whitespace is an error, as
/// is nesting deeper than 64 levels.
StatusOr<JsonValue> ParseJson(const std::string& text);

}  // namespace benchkit
}  // namespace tpsl

#endif  // TPSL_BENCHKIT_JSON_H_

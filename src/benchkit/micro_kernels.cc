#include "benchkit/micro_kernels.h"

#include <cstdint>
#include <vector>

#include "benchkit/runner.h"
#include "graph/types.h"
#include "partition/dense_bitset.h"
#include "partition/replication_table.h"
#include "partition/score_tables.h"
#include "util/random.h"
#include "util/timer.h"

namespace tpsl {
namespace benchkit {
namespace {

// Synthetic state shape shared by every kernel: enough vertices that
// the replication matrix misses L1/L2 (the real scoring regime), small
// enough that seeding it is milliseconds.
constexpr VertexId kNumVertices = 1u << 16;
// Per-kernel op counts at shift 0, sized so the whole scenario is
// tens of milliseconds in a release build on one core.
constexpr uint64_t kPickOps = 1u << 19;
constexpr uint64_t kHdrfOps = 1u << 16;  // O(k) per pick
constexpr uint64_t kBitsetBits = 1u << 20;
constexpr uint64_t kBitsetSweeps = 1u << 5;
constexpr uint64_t kSetTestOps = 1u << 19;
constexpr uint64_t kMinOps = 1u << 10;

/// Workload shrink for smoke runs, mirroring the dataset scale_shift
/// convention (each +1 halves the op count; floor keeps the timer off
/// zero).
uint64_t ScaleOps(uint64_t base, int shift) {
  const uint64_t scaled =
      shift >= 0 ? (shift < 63 ? base >> shift : 0) : base << (-shift);
  return scaled < kMinOps ? kMinOps : scaled;
}

struct KernelResult {
  double seconds = 0.0;
  uint64_t ops = 0;
  uint64_t checksum = 0;
};

/// 2PS-L hot loop: the constant-time two-candidate pick plus commit,
/// against pre-seeded replicas/degrees/volumes. The timed region is
/// exactly the per-edge work of the core's phase 2.
KernelResult TwopsPick(uint32_t k, uint64_t seed, uint64_t ops) {
  SplitMix64 rng(seed);
  ScoreTables tables(kNumVertices, k, ScoreTables::kUncapped);
  std::vector<uint32_t> degrees(kNumVertices);
  for (uint32_t& d : degrees) {
    d = 1 + static_cast<uint32_t>(rng.NextBounded(63));
  }
  std::vector<uint64_t> volumes(k);
  for (uint64_t& volume : volumes) {
    volume = 1 + rng.NextBounded(1u << 20);
  }
  for (VertexId v = 0; v < kNumVertices; ++v) {
    tables.replicas().Set(v, static_cast<PartitionId>(rng.NextBounded(k)));
  }
  struct Item {
    Edge e;
    PartitionId p1;
    PartitionId p2;
  };
  std::vector<Item> work(ops);
  for (Item& item : work) {
    item.e = {static_cast<VertexId>(rng.NextBounded(kNumVertices)),
              static_cast<VertexId>(rng.NextBounded(kNumVertices))};
    item.p1 = static_cast<PartitionId>(rng.NextBounded(k));
    item.p2 = static_cast<PartitionId>(rng.NextBounded(k));
  }

  uint64_t checksum = 0;
  WallTimer timer;
  for (const Item& item : work) {
    const PartitionId p = PickTwoPhaseLinear(
        tables.replicas(), item.e, degrees[item.e.first],
        degrees[item.e.second], volumes[item.p1], volumes[item.p2], item.p1,
        item.p2);
    tables.Commit(item.e, p);
    checksum = HashCombine(checksum, p);
  }
  return {timer.ElapsedSeconds(), ops, checksum};
}

/// HDRF hot loop: full-k argmax pick plus commit — the per-edge work
/// of the HDRF/ADWISE/HEP streaming phases.
KernelResult HdrfPick(uint32_t k, uint64_t seed, uint64_t ops) {
  SplitMix64 rng(seed);
  ScoreTables tables(kNumVertices, k, ScoreTables::kUncapped);
  std::vector<uint32_t> degrees(kNumVertices);
  for (uint32_t& d : degrees) {
    d = 1 + static_cast<uint32_t>(rng.NextBounded(63));
  }
  std::vector<Edge> work(ops);
  for (Edge& e : work) {
    e = {static_cast<VertexId>(rng.NextBounded(kNumVertices)),
         static_cast<VertexId>(rng.NextBounded(kNumVertices))};
  }
  constexpr double kLambda = 1.1;

  uint64_t checksum = 0;
  WallTimer timer;
  for (const Edge& e : work) {
    const ScoreTables::Choice choice =
        tables.PickHdrf(e, degrees[e.first], degrees[e.second], kLambda,
                        /*respect_capacity=*/true);
    tables.Commit(e, choice.partition);
    checksum = HashCombine(checksum, choice.partition);
  }
  return {timer.ElapsedSeconds(), ops, checksum};
}

/// DenseBitset word loops: population count, intersection count, and
/// in-place OR sweeps over three seeded bitsets. One "op" is one
/// 64-bit word visited, so the rate is directly words per second.
KernelResult BitsetOps(uint64_t seed, uint64_t sweeps) {
  SplitMix64 rng(seed);
  DenseBitset a(kBitsetBits);
  DenseBitset b(kBitsetBits);
  DenseBitset c(kBitsetBits);
  for (uint64_t i = 0; i < kBitsetBits / 8; ++i) {
    a.Set(rng.NextBounded(kBitsetBits));
    b.Set(rng.NextBounded(kBitsetBits));
    c.Set(rng.NextBounded(kBitsetBits));
  }

  uint64_t checksum = 0;
  WallTimer timer;
  for (uint64_t sweep = 0; sweep < sweeps; ++sweep) {
    checksum = HashCombine(checksum, a.IntersectionCount(b));
    checksum = HashCombine(checksum, b.IntersectionCount(c));
    a.InplaceOr(b);
    checksum = HashCombine(checksum, a.Count());
  }
  const double seconds = timer.ElapsedSeconds();
  // 4 word sweeps per iteration (two intersections, one OR, one count).
  return {seconds, sweeps * 4 * (kBitsetBits / 64), checksum};
}

/// ReplicationTable random set/test mix — the bit-matrix access
/// pattern of every stateful scoring loop, without the arithmetic.
KernelResult ReplicaSetTest(uint32_t k, uint64_t seed, uint64_t ops) {
  SplitMix64 rng(seed);
  ReplicationTable replicas(kNumVertices, k);
  struct Item {
    VertexId v;
    PartitionId set_p;
    PartitionId test_p;
  };
  std::vector<Item> work(ops);
  for (Item& item : work) {
    item.v = static_cast<VertexId>(rng.NextBounded(kNumVertices));
    item.set_p = static_cast<PartitionId>(rng.NextBounded(k));
    item.test_p = static_cast<PartitionId>(rng.NextBounded(k));
  }

  uint64_t checksum = 0;
  WallTimer timer;
  for (const Item& item : work) {
    replicas.Set(item.v, item.set_p);
    checksum = HashCombine(
        checksum, replicas.Test(item.v, item.test_p) ? item.v : item.test_p);
  }
  checksum = HashCombine(checksum, replicas.TotalReplicas());
  return {timer.ElapsedSeconds(), ops, checksum};
}

}  // namespace

const std::vector<std::string>& MicroKernelNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "twops_pick", "hdrf_pick", "bitset_ops", "replica_set_test"};
  return *names;
}

StatusOr<BenchRecord> RunMicroKernels(const Scenario& scenario,
                                      const RunScenarioOptions& options) {
  if (scenario.kind != ScenarioKind::kMicroKernel) {
    return Status::FailedPrecondition("scenario '" + scenario.name +
                                      "' is not a micro-kernel scenario");
  }
  const int shift = options.extra_scale_shift;
  const uint32_t k = scenario.k;
  const uint64_t seed = scenario.seed;
  const int repeats = options.repeats > 0 ? options.repeats : 1;

  // (name, single-run thunk) in MicroKernelNames() order. Each run
  // rebuilds its seeded state from scratch (outside the timed region),
  // so every repeat computes the identical checksum — a mismatch means
  // the kernel itself is nondeterministic, which the gate must not
  // paper over.
  struct KernelSpec {
    const std::string& name;
    KernelResult (*run)(uint32_t, uint64_t, uint64_t);
    uint64_t ops;
  };
  const KernelSpec kernels[] = {
      {MicroKernelNames()[0], &TwopsPick, ScaleOps(kPickOps, shift)},
      {MicroKernelNames()[1], &HdrfPick, ScaleOps(kHdrfOps, shift)},
      {MicroKernelNames()[2],
       [](uint32_t, uint64_t s, uint64_t sweeps) {
         return BitsetOps(s, sweeps);
       },
       ScaleOps(kBitsetSweeps, shift)},
      {MicroKernelNames()[3], &ReplicaSetTest, ScaleOps(kSetTestOps, shift)},
  };

  BenchRecord record;
  record.scenario = scenario.name;
  record.partitioner = scenario.partitioner;
  record.dataset = scenario.dataset;
  record.k = k;
  record.scale_shift = scenario.scale_shift + shift;
  record.seed = seed;
  record.threads = 1;  // kernels are single-threaded by construction

  double total_seconds = 0.0;
  uint64_t total_ops = 0;
  uint64_t folded_checksum = 0;
  for (const KernelSpec& kernel : kernels) {
    KernelResult best;
    for (int repeat = 0; repeat < repeats; ++repeat) {
      const KernelResult result = kernel.run(k, seed, kernel.ops);
      if (repeat == 0) {
        best = result;
      } else if (result.checksum != best.checksum) {
        return Status::Internal("micro-kernel '" + kernel.name +
                                "' is nondeterministic across repeats");
      } else if (result.seconds < best.seconds) {
        best.seconds = result.seconds;
      }
    }
    total_seconds += best.seconds;
    total_ops += best.ops;
    folded_checksum = HashCombine(folded_checksum, best.checksum);
    record.SetMetric("phase_seconds/" + kernel.name, best.seconds);
    if (best.seconds > 0.0) {
      record.SetMetric("edges_per_sec/" + kernel.name,
                       static_cast<double>(best.ops) / best.seconds);
    }
  }
  record.SetMetric("seconds", total_seconds);
  record.SetMetric("num_edges", static_cast<double>(total_ops));
  // Deterministic fold of every pick/count the kernels produced,
  // truncated so the double holds it exactly. Gated by the default
  // two-sided band, which an exact value always passes — so any drift
  // is a behavioral change in the state kernel, caught by --check
  // before the identity tests even run.
  record.SetMetric("checksum_low32",
                   static_cast<double>(folded_checksum & 0xffffffffULL));
  AttachHostMetrics(&record);
  return record;
}

}  // namespace benchkit
}  // namespace tpsl

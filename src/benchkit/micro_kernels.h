#ifndef TPSL_BENCHKIT_MICRO_KERNELS_H_
#define TPSL_BENCHKIT_MICRO_KERNELS_H_

#include "benchkit/record.h"
#include "benchkit/runner.h"
#include "benchkit/scenario.h"
#include "util/status.h"

namespace tpsl {
namespace benchkit {

/// Names of the micro-kernels run by RunMicroKernels, in run order.
/// Exposed so tools/bench_runner can assert the per-kernel metrics
/// exist ("phase_seconds/<name>" and "edges_per_sec/<name>").
///
///   twops_pick       2PS-L two-candidate pick + commit
///   hdrf_pick        HDRF full-k argmax pick + commit
///   bitset_ops       DenseBitset popcount / intersection / or sweeps
///   replica_set_test ReplicationTable random set/test mix
const std::vector<std::string>& MicroKernelNames();

/// Times the partitioner-state kernel's hot loops on synthetic seeded
/// state (no dataset, no partitioner): each kernel runs over a fixed
/// deterministic workload, repeats keep the fastest time. The record
/// carries "seconds" (sum of kernel times, gated upper-only like any
/// scenario), per-kernel "phase_seconds/<kernel>" and
/// "edges_per_sec/<kernel>" rates, and a "checksum_low32" folded from
/// every pick — deterministic, so the baseline gate doubles as a
/// behavioral identity check (and the fold defeats dead-code
/// elimination). options.extra_scale_shift shrinks the workloads for
/// smoke runs.
StatusOr<BenchRecord> RunMicroKernels(const Scenario& scenario,
                                      const RunScenarioOptions& options);

}  // namespace benchkit
}  // namespace tpsl

#endif  // TPSL_BENCHKIT_MICRO_KERNELS_H_

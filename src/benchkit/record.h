#ifndef TPSL_BENCHKIT_RECORD_H_
#define TPSL_BENCHKIT_RECORD_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "benchkit/json.h"
#include "util/status.h"

namespace tpsl {
namespace benchkit {

/// One scenario's pinned measurement, as persisted in
/// bench/baselines/BENCH_<scenario>.json. The identity fields
/// (partitioner, dataset, k, scale_shift, seed, threads) are stored
/// alongside the metrics so the comparator can refuse to diff two
/// records whose configuration silently drifted apart.
struct BenchRecord {
  std::string scenario;
  std::string partitioner;
  std::string dataset;
  uint32_t k = 0;
  int scale_shift = 0;
  uint64_t seed = 0;
  /// Worker threads of the run (ExecContext::threads as resolved for
  /// the scenario). A comparison dimension: with threads > 1 the
  /// comparator treats wall time as informational (machine-shape
  /// dependent) and widens the quality band (parallel staleness is
  /// nondeterministic). 1 for every sequential partitioner. Absent in
  /// pre-thread-aware record files; parsed as 1.
  uint32_t threads = 1;
  /// Flat metric map in emission order ("seconds",
  /// "replication_factor", "measured_alpha", "state_bytes",
  /// "peak_rss_bytes", "num_edges", "phase_seconds/<phase>"...).
  std::vector<std::pair<std::string, double>> metrics;

  const double* FindMetric(const std::string& name) const;
  void SetMetric(const std::string& name, double value);

  JsonValue ToJson() const;
  static StatusOr<BenchRecord> FromJson(const JsonValue& json);

  bool operator==(const BenchRecord& other) const = default;
};

/// "BENCH_<scenario>.json" — the naming contract shared by --emit,
/// --check, and the baseline directory.
std::string RecordFileName(const std::string& scenario);

Status WriteRecordFile(const BenchRecord& record, const std::string& path);
StatusOr<BenchRecord> ReadRecordFile(const std::string& path);

/// Reads every BENCH_*.json in `dir`, sorted by file name. A missing
/// or empty directory is an error (a perf gate with no baselines is a
/// misconfiguration, not a pass).
StatusOr<std::vector<BenchRecord>> ReadRecordDir(const std::string& dir);

}  // namespace benchkit
}  // namespace tpsl

#endif  // TPSL_BENCHKIT_RECORD_H_

#include "graph/binary_edge_list.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstring>

#include "util/logging.h"

namespace tpsl {

Status WriteBinaryEdgeList(const std::string& path,
                           const std::vector<Edge>& edges) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("cannot open for writing: " + path + ": " +
                           std::strerror(errno));
  }
  // An empty vector's data() may be null, and fwrite's first argument is
  // declared nonnull — skip the call rather than hand it a null pointer.
  const size_t written =
      edges.empty() ? 0
                    : std::fwrite(edges.data(), sizeof(Edge), edges.size(),
                                  file);
  // Capture errno before fclose, which may overwrite it even on success.
  const int write_errno = errno;
  const int close_rc = std::fclose(file);
  if (written != edges.size()) {
    return Status::IoError("short write to " + path + ": " +
                           std::strerror(write_errno));
  }
  if (close_rc != 0) {
    // The final flush inside fclose can fail (e.g. ENOSPC) even when every
    // fwrite succeeded.
    return Status::IoError("close failed for " + path + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

StatusOr<std::vector<Edge>> ReadBinaryEdgeList(const std::string& path) {
  auto stream_or = BinaryFileEdgeStream::Open(path);
  if (!stream_or.ok()) {
    return stream_or.status();
  }
  std::vector<Edge> edges;
  edges.reserve((*stream_or)->NumEdgesHint());
  Status status = ForEachEdge(**stream_or,
                              [&](const Edge& e) { edges.push_back(e); });
  if (!status.ok()) {
    return status;
  }
  return edges;
}

StatusOr<std::unique_ptr<BinaryFileEdgeStream>> BinaryFileEdgeStream::Open(
    const std::string& path, size_t buffer_edges) {
  if (buffer_edges == 0) {
    return Status::InvalidArgument("buffer_edges must be positive");
  }
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::NotFound("no such file: " + path);
  }
  if (st.st_size % sizeof(Edge) != 0) {
    return Status::IoError("file size " + std::to_string(st.st_size) +
                           " is not a multiple of 8 bytes (corrupt edge "
                           "list): " +
                           path);
  }
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IoError("cannot open: " + path + ": " +
                           std::strerror(errno));
  }
  const uint64_t num_edges = static_cast<uint64_t>(st.st_size) / sizeof(Edge);
  return std::unique_ptr<BinaryFileEdgeStream>(
      new BinaryFileEdgeStream(file, num_edges, buffer_edges));
}

BinaryFileEdgeStream::BinaryFileEdgeStream(std::FILE* file, uint64_t num_edges,
                                           size_t buffer_edges)
    : file_(file), num_edges_(num_edges), buffer_(buffer_edges) {}

BinaryFileEdgeStream::~BinaryFileEdgeStream() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

Status BinaryFileEdgeStream::Reset() {
  // The error is sticky: once a pass failed, every later pass would
  // silently read a different (shorter or corrupt) graph, so refuse.
  TPSL_RETURN_IF_ERROR(status_);
  if (std::fseek(file_, 0, SEEK_SET) != 0) {
    status_ = Status::IoError("fseek failed");
    return status_;
  }
  buffer_filled_ = 0;
  buffer_pos_ = 0;
  pass_delivered_ = 0;
  passes_ += 1;
  return Status::OK();
}

size_t BinaryFileEdgeStream::Next(Edge* out, size_t capacity) {
  if (!status_.ok()) {
    return 0;
  }
  size_t delivered = 0;
  while (delivered < capacity) {
    if (buffer_pos_ == buffer_filled_) {
      buffer_filled_ =
          std::fread(buffer_.data(), sizeof(Edge), buffer_.size(), file_);
      buffer_pos_ = 0;
      if (buffer_filled_ < buffer_.size() && std::ferror(file_) != 0) {
        status_ = Status::IoError("read error after " +
                                  std::to_string(pass_delivered_ + delivered +
                                                 buffer_filled_) +
                                  " edges: " + std::strerror(errno));
        TPSL_LOG(Error) << "BinaryFileEdgeStream: " << status_.message();
        buffer_filled_ = 0;
        return 0;
      }
      if (buffer_filled_ == 0) {
        // End of file — but is it the *right* end? A file truncated
        // after Open() hits EOF early without ever setting ferror.
        if (pass_delivered_ + delivered != num_edges_) {
          status_ = Status::IoError(
              "file ended after " +
              std::to_string(pass_delivered_ + delivered) + " of " +
              std::to_string(num_edges_) +
              " edges (truncated while reading?)");
          TPSL_LOG(Error) << "BinaryFileEdgeStream: " << status_.message();
          return 0;
        }
        break;
      }
    }
    const size_t n =
        std::min(capacity - delivered, buffer_filled_ - buffer_pos_);
    std::memcpy(out + delivered, buffer_.data() + buffer_pos_,
                n * sizeof(Edge));
    buffer_pos_ += n;
    delivered += n;
  }
  pass_delivered_ += delivered;
  total_delivered_ += delivered;
  return delivered;
}

}  // namespace tpsl

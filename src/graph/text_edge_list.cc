#include "graph/text_edge_list.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace tpsl {

Status WriteTextEdgeList(const std::string& path,
                         const std::vector<Edge>& edges) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::IoError("cannot open for writing: " + path + ": " +
                           std::strerror(errno));
  }
  for (const Edge& e : edges) {
    if (std::fprintf(file, "%u %u\n", e.first, e.second) < 0) {
      std::fclose(file);
      return Status::IoError("short write to " + path);
    }
  }
  if (std::fclose(file) != 0) {
    return Status::IoError("close failed for " + path);
  }
  return Status::OK();
}

StatusOr<std::vector<Edge>> ReadTextEdgeList(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) {
    return Status::NotFound("no such file: " + path);
  }
  std::vector<Edge> edges;
  char line[256];
  uint64_t line_no = 0;
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    ++line_no;
    // Skip comments and blank lines.
    const char* p = line;
    while (*p == ' ' || *p == '\t') ++p;
    if (*p == '#' || *p == '%' || *p == '\n' || *p == '\0') {
      continue;
    }
    uint64_t u = 0, v = 0;
    if (std::sscanf(p, "%" SCNu64 " %" SCNu64, &u, &v) != 2) {
      std::fclose(file);
      return Status::IoError("malformed line " + std::to_string(line_no) +
                             " in " + path);
    }
    if (u > kInvalidVertex - 1 || v > kInvalidVertex - 1) {
      std::fclose(file);
      return Status::OutOfRange("vertex id exceeds 32-bit range at line " +
                                std::to_string(line_no) + " in " + path);
    }
    edges.push_back(
        Edge{static_cast<VertexId>(u), static_cast<VertexId>(v)});
  }
  std::fclose(file);
  return edges;
}

}  // namespace tpsl

#ifndef TPSL_GRAPH_EDGE_STREAM_H_
#define TPSL_GRAPH_EDGE_STREAM_H_

#include <cstddef>
#include <cstdint>

#include "graph/types.h"
#include "util/status.h"

namespace tpsl {

/// Byte-level I/O accounting for storage-backed streams. Decoded edges
/// are always 8 bytes each, but the bytes that actually cross the
/// storage boundary differ once files are block-compressed — and disk
/// bandwidth, not decoded volume, is what bounds an out-of-core run.
/// `disk_bytes_*` therefore count on-disk (possibly compressed) bytes;
/// wrappers (prefetchers, throttles) forward their inner stream's
/// account instead of re-deriving it from delivered edge counts.
struct StreamIoStats {
  /// False for in-memory streams; their disk counters stay zero.
  bool disk_backed = false;
  /// On-disk bytes consumed since the last Reset(). Updated at batch
  /// (or block) granularity, so mid-pass reads lag delivery slightly;
  /// after a full pass the value equals the file bytes of that pass.
  uint64_t disk_bytes_this_pass = 0;
  /// On-disk bytes consumed across all passes.
  uint64_t disk_bytes_total = 0;
  /// Number of Reset() calls (≈ streaming passes started).
  uint64_t passes = 0;
};

/// Sequential, restartable edge stream — the out-of-core access model
/// of the paper. A stream can be consumed any number of times; each
/// pass starts with Reset() and pulls batches with Next() until it
/// returns 0. Implementations: in-memory vectors, binary files, and
/// bandwidth-throttled wrappers (storage simulation).
///
/// Streaming partitioners in this library interact with graphs only
/// through this interface, which keeps them honest: no random access,
/// no edge-set materialization.
class EdgeStream {
 public:
  virtual ~EdgeStream() = default;

  /// Rewinds the stream to the beginning for another pass.
  virtual Status Reset() = 0;

  /// Fills up to `capacity` edges into `out`; returns the number of
  /// edges delivered, 0 at end of stream.
  virtual size_t Next(Edge* out, size_t capacity) = 0;

  /// Total number of edges in the stream, if known up front (binary
  /// files and in-memory streams know it). Returns 0 when unknown.
  virtual uint64_t NumEdgesHint() const { return 0; }

  /// Sticky stream health. Next() has no error channel (it returns a
  /// count), so implementations that can fail mid-pass — file streams
  /// hitting a read error or a truncated file — latch the failure here
  /// and return 0 from Next() thereafter, making the early end of
  /// stream distinguishable from EOF. ForEachEdge checks it after
  /// every pass; consumers with manual Next() loops must do the same.
  virtual Status Health() const { return Status::OK(); }

  /// I/O accounting for this stream (see StreamIoStats). In-memory
  /// streams keep the default all-zero stats.
  virtual StreamIoStats Io() const { return {}; }
};

/// Optional capability interface for streams whose backing file is
/// made of independently decodable compressed blocks. A parallel
/// driver (exec/ParallelForEdges) can pull raw encoded blocks here and
/// decode them in worker threads, so the decompression cost scales
/// with the worker count instead of serializing on the reader.
///
/// NextEncodedBlock() shares the pass cursor with Next(): a pass uses
/// one access mode or the other, never both, and either is restarted
/// by Reset(). DecodeBlock() must be safe to call concurrently from
/// multiple threads on distinct blocks.
class BlockEdgeStream {
 public:
  /// A view of one encoded block (header + payload) inside the backing
  /// file. Valid until the next Reset() of the owning stream.
  struct EncodedBlock {
    const void* data = nullptr;
    size_t bytes = 0;
    uint32_t num_edges = 0;
  };

  virtual ~BlockEdgeStream() = default;

  /// Upper bound on edges per block — the decode-buffer size workers
  /// must provision.
  virtual uint32_t MaxBlockEdges() const = 0;

  /// Hands out the next encoded block of the current pass; returns
  /// false at end of stream (check the stream's Health() afterwards).
  virtual bool NextEncodedBlock(EncodedBlock* out) = 0;

  /// Decodes `block` into `out` (block.num_edges edges), verifying the
  /// block checksum. Thread-safe.
  virtual Status DecodeBlock(const EncodedBlock& block, Edge* out) const = 0;
};

/// Convenience: performs one full pass, invoking `fn(edge)` per edge.
/// Uses an internal batch buffer so virtual-call overhead is amortized.
template <typename Fn>
Status ForEachEdge(EdgeStream& stream, Fn&& fn) {
  TPSL_RETURN_IF_ERROR(stream.Reset());
  constexpr size_t kBatch = 4096;
  Edge buffer[kBatch];
  size_t n;
  while ((n = stream.Next(buffer, kBatch)) > 0) {
    for (size_t i = 0; i < n; ++i) {
      fn(buffer[i]);
    }
  }
  // A failed stream ends early and looks like EOF above; surface it.
  return stream.Health();
}

}  // namespace tpsl

#endif  // TPSL_GRAPH_EDGE_STREAM_H_

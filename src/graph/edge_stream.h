#ifndef TPSL_GRAPH_EDGE_STREAM_H_
#define TPSL_GRAPH_EDGE_STREAM_H_

#include <cstddef>
#include <cstdint>

#include "graph/types.h"
#include "util/status.h"

namespace tpsl {

/// Sequential, restartable edge stream — the out-of-core access model
/// of the paper. A stream can be consumed any number of times; each
/// pass starts with Reset() and pulls batches with Next() until it
/// returns 0. Implementations: in-memory vectors, binary files, and
/// bandwidth-throttled wrappers (storage simulation).
///
/// Streaming partitioners in this library interact with graphs only
/// through this interface, which keeps them honest: no random access,
/// no edge-set materialization.
class EdgeStream {
 public:
  virtual ~EdgeStream() = default;

  /// Rewinds the stream to the beginning for another pass.
  virtual Status Reset() = 0;

  /// Fills up to `capacity` edges into `out`; returns the number of
  /// edges delivered, 0 at end of stream.
  virtual size_t Next(Edge* out, size_t capacity) = 0;

  /// Total number of edges in the stream, if known up front (binary
  /// files and in-memory streams know it). Returns 0 when unknown.
  virtual uint64_t NumEdgesHint() const { return 0; }

  /// Sticky stream health. Next() has no error channel (it returns a
  /// count), so implementations that can fail mid-pass — file streams
  /// hitting a read error or a truncated file — latch the failure here
  /// and return 0 from Next() thereafter, making the early end of
  /// stream distinguishable from EOF. ForEachEdge checks it after
  /// every pass; consumers with manual Next() loops must do the same.
  virtual Status Health() const { return Status::OK(); }
};

/// Convenience: performs one full pass, invoking `fn(edge)` per edge.
/// Uses an internal batch buffer so virtual-call overhead is amortized.
template <typename Fn>
Status ForEachEdge(EdgeStream& stream, Fn&& fn) {
  TPSL_RETURN_IF_ERROR(stream.Reset());
  constexpr size_t kBatch = 4096;
  Edge buffer[kBatch];
  size_t n;
  while ((n = stream.Next(buffer, kBatch)) > 0) {
    for (size_t i = 0; i < n; ++i) {
      fn(buffer[i]);
    }
  }
  // A failed stream ends early and looks like EOF above; surface it.
  return stream.Health();
}

}  // namespace tpsl

#endif  // TPSL_GRAPH_EDGE_STREAM_H_
